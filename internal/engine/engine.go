// Package engine executes CacheBlend's fusion pipeline with real
// concurrency, implementing the three interfaces the paper's vLLM
// integration describes (§6):
//
//	fetch_kv(text, layer)  → a loader goroutine that brings one layer of a
//	                         chunk's KV cache "into GPU memory" (here: into
//	                         the fused cache), paying the storage device's
//	                         simulated read latency;
//	prefill_layer(...)     → the fusor running the selective recompute of
//	                         one layer on the transformer substrate;
//	synchronize()          → the per-layer barrier: the fusor blocks until
//	                         the layer's KV has finished loading.
//
// The loader stays exactly one layer ahead of the fusor (the paper's
// two-thread pipelining): while layer i is being recomputed, layer i+1 is
// being fetched, so whichever of loading and recompute is slower sets the
// pace and the other is hidden. The engine reports both the measured wall
// time and a per-layer timeline so tests can assert genuine overlap.
//
// Device read delays are simulated with a configurable time scale (real
// nanoseconds per simulated second) so tests run fast while the overlap
// behaviour stays observable.
package engine

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/device"
	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Config controls the pipelined execution.
type Config struct {
	// Model is the transformer to run.
	Model *model.Model
	// Device is the storage tier the chunk KV caches are read from.
	Device device.Device
	// RecomputeRatio is the target HKVD fraction per layer.
	RecomputeRatio float64
	// SelectionLayer as in blend.Options (0 = layer 1).
	SelectionLayer int
	// TimeScale converts simulated seconds of device delay into real
	// sleep time: realDelay = simSeconds × TimeScale. Zero disables
	// sleeping (pure functional execution).
	TimeScale time.Duration
	// Pipelined selects whether the loader runs ahead of the fusor
	// (true, the paper's design) or strictly before it (false — the
	// sequential baseline for measuring the benefit).
	Pipelined bool
}

// Request is one fusion job: pre-computed chunk caches plus fresh suffix.
type Request struct {
	Chunks       []*kvcache.Cache
	ChunkTokens  [][]int
	SuffixTokens []int
}

// LayerTiming records when one layer was loaded and computed (relative to
// the start of the request, in real time).
type LayerTiming struct {
	LoadDone    time.Duration
	ComputeDone time.Duration
}

// Result is the fused cache plus execution measurements.
type Result struct {
	// Cache is the fused full-sequence KV cache.
	Cache *kvcache.Cache
	// Hidden holds the suffix tokens' final residual rows.
	Hidden *tensor.Matrix
	// SuffixStart indexes the first suffix token.
	SuffixStart int
	// Tokens is the fused token sequence.
	Tokens []int
	// Wall is the end-to-end execution time.
	Wall time.Duration
	// Layers holds the per-layer timeline.
	Layers []LayerTiming
	// SelectedPerLayer counts recomputed context tokens per layer.
	SelectedPerLayer []int
}

// Run executes the fusion pipeline for one request.
func (cfg Config) Run(req Request) (*Result, error) {
	m := cfg.Model
	if m == nil {
		return nil, fmt.Errorf("engine: nil model")
	}
	if len(req.Chunks) != len(req.ChunkTokens) {
		return nil, fmt.Errorf("engine: %d caches vs %d token lists", len(req.Chunks), len(req.ChunkTokens))
	}
	mc := m.Cfg
	selLayer := cfg.SelectionLayer
	if selLayer <= 0 {
		selLayer = 1
	}
	if selLayer >= mc.Layers {
		selLayer = mc.Layers - 1
	}

	// Assemble the fused token sequence and allocate the (empty) fused
	// cache; the loader fills it layer by layer.
	var tokens []int
	type span struct{ start int }
	spans := make([]span, len(req.Chunks))
	off := 0
	for ci, cc := range req.Chunks {
		if cc.Tokens != len(req.ChunkTokens[ci]) {
			return nil, fmt.Errorf("engine: chunk %d cache/token mismatch", ci)
		}
		spans[ci] = span{start: off}
		tokens = append(tokens, req.ChunkTokens[ci]...)
		off += cc.Tokens
	}
	suffixStart := off
	tokens = append(tokens, req.SuffixTokens...)
	fused := m.NewCache(len(tokens))

	start := time.Now()
	timings := make([]LayerTiming, mc.Layers)

	// fetch_kv: copy one layer of every chunk's KV into the fused cache,
	// re-rotating keys to their fused positions, after the simulated
	// device read delay. loaded is closed per layer by the loader
	// goroutine; synchronize() is a receive on it.
	loaded := make([]chan struct{}, mc.Layers)
	for i := range loaded {
		loaded[i] = make(chan struct{})
	}
	fetchLayer := func(li int) {
		var bytes int64
		for _, cc := range req.Chunks {
			bytes += cc.LayerBytes()
		}
		if cfg.TimeScale > 0 && bytes > 0 {
			time.Sleep(time.Duration(cfg.Device.ReadTime(bytes) * float64(cfg.TimeScale)))
		}
		for ci, cc := range req.Chunks {
			base := spans[ci].start
			for j := 0; j < cc.Tokens; j++ {
				k := append([]float32(nil), cc.RowK(li, j)...)
				if m.Rope != nil {
					rot := mc.RotaryDims
					for h := 0; h < mc.KVHeads; h++ {
						m.Rope.Shift(k[h*mc.HeadDim:h*mc.HeadDim+rot], cc.BasePos+j, base+j)
					}
				}
				fused.SetToken(li, base+j, k, cc.RowV(li, j))
			}
		}
		timings[li].LoadDone = time.Since(start)
		close(loaded[li])
	}

	if cfg.Pipelined {
		// The loader goroutine streams layers in order, one ahead of the
		// fusor.
		go func() {
			for li := 0; li < mc.Layers; li++ {
				fetchLayer(li)
			}
		}()
	}

	synchronize := func(li int) {
		if !cfg.Pipelined {
			fetchLayer(li) // strictly sequential: load now, then compute
			return
		}
		<-loaded[li]
	}

	// The fusor: same algorithm as blend.Fuse, expressed against the
	// synchronize/prefill_layer interfaces.
	res := &Result{
		Cache:            fused,
		SuffixStart:      suffixStart,
		Tokens:           tokens,
		SelectedPerLayer: make([]int, mc.Layers),
	}
	ctxLen := suffixStart
	total := len(tokens)
	idx := allIdx(total)
	h := m.EmbedTokens(tokens)

	// Full recompute below the selection layer.
	for li := 0; li < selLayer; li++ {
		synchronize(li)
		h, _ = m.ForwardLayerPartial(li, h, idx, fused, false)
		res.SelectedPerLayer[li] = ctxLen
		timings[li].ComputeDone = time.Since(start)
	}

	// Selection layer: measure deviation, pick HKVD.
	synchronize(selLayer)
	preK := fused.K[selLayer].Clone()
	preV := fused.V[selLayer].Clone()
	m.ProjectKV(selLayer, h, idx, fused)
	dev := make([]float64, ctxLen)
	for j := 0; j < ctxLen; j++ {
		dev[j] = tensor.L2Diff(fused.K[selLayer].Row(j), preK.Row(j)) +
			tensor.L2Diff(fused.V[selLayer].Row(j), preV.Row(j))
	}
	keep := int(cfg.RecomputeRatio*float64(ctxLen) + 0.5)
	hkvd := kvcache.TopKIndices(dev, keep)
	sort.Ints(hkvd)

	sel := append(append([]int{}, hkvd...), suffixIdx(suffixStart, total)...)
	hs := rowsFor(h, idx, sel)
	hs, _ = m.ForwardLayerPartial(selLayer, hs, sel, fused, false)
	res.SelectedPerLayer[selLayer] = len(hkvd)
	timings[selLayer].ComputeDone = time.Since(start)

	// Remaining layers: recompute the fixed HKVD ∪ suffix set (the
	// engine demonstrates pipelining; gradual filtering lives in blend).
	for li := selLayer + 1; li < mc.Layers; li++ {
		synchronize(li)
		hs, _ = m.ForwardLayerPartial(li, hs, sel, fused, false)
		res.SelectedPerLayer[li] = len(hkvd)
		timings[li].ComputeDone = time.Since(start)
	}

	res.Hidden = rowsFor(hs, sel, suffixIdx(suffixStart, total))
	res.Wall = time.Since(start)
	res.Layers = timings
	return res, nil
}

// PipelineTime is the analytic twin of Run's goroutine pipeline: the
// completion time of a loader streaming `layers` layers at loadLayer
// seconds each, one ahead of a fusor spending compLayer seconds per
// layer, where layer i's recompute starts only after both its KV load
// and layer i-1's recompute finish. Whichever side is slower paces the
// pipeline and the other is hidden. The serving runtime uses this as the
// per-replica execution model for blended prefills.
func PipelineTime(layers int, loadLayer, compLayer float64) float64 {
	loadDone, compDone := 0.0, 0.0
	for i := 0; i < layers; i++ {
		loadDone += loadLayer
		start := loadDone
		if compDone > start {
			start = compDone
		}
		compDone = start + compLayer
	}
	return compDone
}

// DecodeStepTime is the analytic cost of one decode iteration over a
// batch of `width` sequences: perToken seconds for the pacing sequence,
// plus `marginal` of that for every additional sequence. Decode is
// memory-bandwidth-bound — each step streams the full weights once for
// the whole batch and only the per-sequence KV reads grow with width —
// so the marginal factor is far below prefill's FLOP-bound batch
// overhead (the serving runtime defaults it to 0.08 vs prefill's 0.35).
// Width below 1 is treated as 1. The serving runtime uses this as the
// per-step execution model for decode-only batches, the way it uses
// PipelineTime for blended prefills.
func DecodeStepTime(perToken float64, width int, marginal float64) float64 {
	if width < 1 {
		width = 1
	}
	return perToken * (1 + marginal*float64(width-1))
}

// ChunkedStepTime is the analytic cost of one budgeted mixed step — the
// Sarathi-style iteration a chunked-prefill scheduler runs: a bounded
// prefill slice (the longest prefilling member's share of the step's
// token budget, `slice` seconds) piggybacked on the batch's decode
// tokens. Whichever of the slice and the decode token is longer paces
// the step; each prefilling member beyond the pacing one adds the
// FLOP-bound prefill marginal and each decoding member the far smaller
// memory-bound decode marginal. With no prefiller the step is exactly
// DecodeStepTime; with no decoder it is a budgeted prefill batch. As
// long as the budget keeps the slice at or below a whole chunk's step,
// a budgeted mixed step never exceeds the unbudgeted one — the decoders
// it carries run near decode cadence instead of being stalled for the
// full chunk, which is the head-of-line blocking the policy removes.
func ChunkedStepTime(slice, decodeUnit float64, prefillers, decoders int, prefillMarginal, decodeMarginal float64) float64 {
	if prefillers <= 0 {
		return DecodeStepTime(decodeUnit, decoders, decodeMarginal)
	}
	pace := slice
	if decoders > 0 && decodeUnit > pace {
		pace = decodeUnit
	}
	return pace * (1 + prefillMarginal*float64(prefillers-1) + decodeMarginal*float64(decoders))
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func suffixIdx(start, total int) []int {
	idx := make([]int, total-start)
	for i := range idx {
		idx[i] = start + i
	}
	return idx
}

// rowsFor extracts the rows of h (rows keyed by sorted positions `from`)
// for positions `want` ⊆ from.
func rowsFor(h *tensor.Matrix, from, want []int) *tensor.Matrix {
	out := tensor.New(len(want), h.Cols)
	fi := 0
	for wi, w := range want {
		for fi < len(from) && from[fi] < w {
			fi++
		}
		if fi >= len(from) || from[fi] != w {
			panic(fmt.Sprintf("engine: position %d missing from row set", w))
		}
		copy(out.Row(wi), h.Row(fi))
	}
	return out
}
