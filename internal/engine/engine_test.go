package engine

import (
	"math"
	"testing"
	"time"

	"repro/internal/blend"
	"repro/internal/device"
	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/qamodel"
	"repro/internal/tensor"
)

var testCfg = model.Config{
	Name: "engine-test", Layers: 6, Heads: 4, KVHeads: 2, HeadDim: 8,
	FFNDim: 32, Vocab: 64, RotaryDims: 8, RopeBase: 10000, Norm: model.NormRMS, Eps: 1e-5,
}

func makeRequest(m *model.Model, nChunks, chunkLen, suffixLen int, seed int64) Request {
	g := tensor.NewRNG(seed)
	var req Request
	for c := 0; c < nChunks; c++ {
		toks := make([]int, chunkLen)
		for i := range toks {
			toks[i] = g.Intn(m.Cfg.Vocab)
		}
		req.ChunkTokens = append(req.ChunkTokens, toks)
		req.Chunks = append(req.Chunks, m.Prefill(toks, 0, false).Cache)
	}
	suffix := make([]int, suffixLen)
	for i := range suffix {
		suffix[i] = g.Intn(m.Cfg.Vocab)
	}
	req.SuffixTokens = suffix
	return req
}

func TestEngineMatchesBlendFusor(t *testing.T) {
	// The pipelined engine must produce the same fused cache and suffix
	// hidden states as the reference fusor run with the same (flat)
	// selection policy.
	m := model.NewRandom(testCfg, 1)
	req := makeRequest(m, 3, 10, 5, 2)

	eng := Config{Model: m, Device: device.CPURAM, RecomputeRatio: 0.2, Pipelined: true}
	got, err := eng.Run(req)
	if err != nil {
		t.Fatal(err)
	}

	ref := blend.Fuse(blend.Input{
		Model: m, Chunks: req.Chunks, ChunkTokens: req.ChunkTokens,
		SuffixTokens: req.SuffixTokens,
	}, blend.Options{
		Mode: blend.ModeBlend, RecomputeRatio: 0.2,
		ScheduleDecay: []float64{1.0}, DisableGradualFilter: true,
	})

	for li := 0; li < testCfg.Layers; li++ {
		if tensor.MaxAbsDiff(got.Cache.K[li].Data, ref.Cache.K[li].Data) > 1e-4 {
			t.Fatalf("layer %d keys differ from reference fusor", li)
		}
		if tensor.MaxAbsDiff(got.Cache.V[li].Data, ref.Cache.V[li].Data) > 1e-4 {
			t.Fatalf("layer %d values differ from reference fusor", li)
		}
	}
	if tensor.MaxAbsDiff(got.Hidden.Data, ref.Hidden.Data) > 1e-4 {
		t.Fatal("suffix hidden differs from reference fusor")
	}
	if got.SuffixStart != ref.SuffixStart {
		t.Fatal("suffix start mismatch")
	}
}

func TestEnginePipelinedEqualsSequentialOutput(t *testing.T) {
	m := model.NewRandom(testCfg, 3)
	req := makeRequest(m, 2, 8, 4, 4)
	pip, err := Config{Model: m, Device: device.NVMeSSD, RecomputeRatio: 0.3, Pipelined: true}.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Config{Model: m, Device: device.NVMeSSD, RecomputeRatio: 0.3, Pipelined: false}.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	for li := 0; li < testCfg.Layers; li++ {
		if tensor.MaxAbsDiff(pip.Cache.K[li].Data, seq.Cache.K[li].Data) != 0 {
			t.Fatalf("pipelining changed layer %d keys", li)
		}
	}
	if tensor.MaxAbsDiff(pip.Hidden.Data, seq.Hidden.Data) != 0 {
		t.Fatal("pipelining changed outputs")
	}
}

func TestEngineOverlapSavesWallTime(t *testing.T) {
	// With a slow simulated device, the pipelined engine must finish well
	// before the sequential one, and its layer timeline must show layer
	// i+1's load finishing before layer i's compute would have allowed a
	// sequential start.
	// Pipelining only pays when per-layer compute and per-layer loading
	// are on the same scale, so this test uses a wider model (real
	// compute in the tens of milliseconds per layer) and a device tuned
	// so loading takes a comparable time.
	bigCfg := model.Config{
		Name: "engine-overlap", Layers: 6, Heads: 8, KVHeads: 8, HeadDim: 32,
		FFNDim: 512, Vocab: 64, RotaryDims: 16, RopeBase: 10000,
		Norm: model.NormRMS, Eps: 1e-5,
	}
	m := model.NewRandom(bigCfg, 5)
	req := makeRequest(m, 3, 60, 8, 6)
	scale := time.Second
	var layerBytes int64
	for _, c := range req.Chunks {
		layerBytes += c.LayerBytes()
	}
	// Calibrate loading to the compute speed of this machine (and of this
	// build — the race detector slows compute ~10×): measure a pure
	// compute run, then tune the device so loading one layer takes about
	// one measured layer's compute. That keeps the two pipeline sides on
	// the same scale wherever the test runs.
	base, err := Config{Model: m, Device: device.CPURAM, RecomputeRatio: 0.2,
		Pipelined: false, TimeScale: 0}.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	layerComp := base.Wall / time.Duration(bigCfg.Layers)
	layerLoad := layerComp
	if layerLoad < 10*time.Millisecond {
		layerLoad = 10 * time.Millisecond // stay above sleep granularity
	}
	slow := device.Device{Name: "test-slow",
		ReadBW: float64(layerBytes) / layerLoad.Seconds(), WriteBW: 1e9, Latency: 0}

	pip, err := Config{Model: m, Device: slow, RecomputeRatio: 0.2,
		Pipelined: true, TimeScale: scale}.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Config{Model: m, Device: slow, RecomputeRatio: 0.2,
		Pipelined: false, TimeScale: scale}.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	// The schedule can hide up to (Layers-1)×min(load, compute) of the
	// sequential run; require at least half of that, so the bound scales
	// with however this machine's compute/load balance came out instead
	// of assuming a fixed ratio.
	hideable := layerLoad
	if layerComp < hideable {
		hideable = layerComp
	}
	gain := time.Duration(bigCfg.Layers-1) * hideable
	if pip.Wall >= seq.Wall-gain/2 {
		t.Fatalf("pipelining saved too little: pipelined %v vs sequential %v (expected ≥%v saved)",
			pip.Wall, seq.Wall, gain/2)
	}
	// Genuine overlap: some layer's load completed before the previous
	// layer's compute finished.
	overlapped := false
	for li := 1; li < testCfg.Layers; li++ {
		if pip.Layers[li].LoadDone < pip.Layers[li-1].ComputeDone {
			overlapped = true
		}
	}
	if !overlapped {
		t.Fatal("no overlap observed in the layer timeline")
	}
}

func TestEngineTimelineMonotone(t *testing.T) {
	m := model.NewRandom(testCfg, 7)
	req := makeRequest(m, 2, 8, 4, 8)
	res, err := Config{Model: m, Device: device.CPURAM, RecomputeRatio: 0.2, Pipelined: true}.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	for li := 0; li < testCfg.Layers; li++ {
		if res.Layers[li].ComputeDone < res.Layers[li].LoadDone {
			t.Fatalf("layer %d computed before its KV was loaded", li)
		}
		if li > 0 && res.Layers[li].ComputeDone < res.Layers[li-1].ComputeDone {
			t.Fatalf("layer %d finished before layer %d", li, li-1)
		}
	}
	if res.Wall < res.Layers[testCfg.Layers-1].ComputeDone {
		t.Fatal("wall time earlier than last layer completion")
	}
}

func TestEngineRecoversCrossChunkAnswer(t *testing.T) {
	// End-to-end on the constructed model: the pipelined engine performs
	// the same repair as the reference fusor.
	m, v := qamodel.Build()
	qent, bridge, ans := v.Entities[0], v.Entities[1], v.Entities[12]
	relA, relB := v.RelA[0], v.RelB[0]
	chunkA := append([]int{v.Period}, append(v.Anchor(1, relB, bridge), v.Fact(bridge, relA, qent)...)...)
	chunkB := append([]int{v.Period}, v.ValueHalf(ans, 1)...)
	var caches []*kvcache.Cache
	for _, c := range [][]int{chunkA, chunkB} {
		caches = append(caches, m.Prefill(c, 0, false).Cache)
	}
	res, err := Config{
		Model: m, Device: device.NVMeSSD, RecomputeRatio: 0.2,
		SelectionLayer: qamodel.SelectionLayer, Pipelined: true,
	}.Run(Request{
		Chunks: caches, ChunkTokens: [][]int{chunkA, chunkB},
		SuffixTokens: v.QueryTokens(relA, qent, relB),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := qamodel.Answer(m, res.Cache, res.Hidden.Row(res.Hidden.Rows-1))
	if got != ans {
		t.Fatalf("engine answered %q want %q", v.Name(got), v.Name(ans))
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := (Config{}).Run(Request{}); err == nil {
		t.Fatal("nil model must error")
	}
	m := model.NewRandom(testCfg, 9)
	req := makeRequest(m, 2, 8, 4, 10)
	req.ChunkTokens = req.ChunkTokens[:1]
	if _, err := (Config{Model: m, Device: device.CPURAM}).Run(req); err == nil {
		t.Fatal("mismatched chunks must error")
	}
	bad := makeRequest(m, 1, 8, 4, 11)
	bad.ChunkTokens[0] = bad.ChunkTokens[0][:4]
	if _, err := (Config{Model: m, Device: device.CPURAM}).Run(bad); err == nil {
		t.Fatal("cache/token length mismatch must error")
	}
}

func TestEngineInputsNotMutated(t *testing.T) {
	m := model.NewRandom(testCfg, 13)
	req := makeRequest(m, 2, 8, 4, 14)
	before := make([]*kvcache.Cache, len(req.Chunks))
	for i, c := range req.Chunks {
		before[i] = c.Clone()
	}
	if _, err := (Config{Model: m, Device: device.CPURAM, RecomputeRatio: 0.2, Pipelined: true}).Run(req); err != nil {
		t.Fatal(err)
	}
	for i, c := range req.Chunks {
		for li := 0; li < testCfg.Layers; li++ {
			if tensor.MaxAbsDiff(c.K[li].Data, before[i].K[li].Data) != 0 {
				t.Fatalf("chunk %d mutated", i)
			}
		}
	}
}

func TestPipelineTimeClosedForm(t *testing.T) {
	cases := []struct {
		name             string
		layers           int
		load, comp, want float64
	}{
		{"zero layers", 0, 1, 1, 0},
		{"load-bound: compute hides behind loading", 4, 2, 1, 9},    // 4×2 + final compute
		{"compute-bound: loading hides behind compute", 4, 1, 2, 9}, // first load + 4×2
		{"balanced", 3, 1, 1, 4},
		{"free loading degenerates to pure compute", 5, 0, 2, 10},
		{"free compute degenerates to pure loading", 5, 2, 0, 10},
	}
	for _, c := range cases {
		if got := PipelineTime(c.layers, c.load, c.comp); got != c.want {
			t.Fatalf("%s: PipelineTime(%d, %v, %v) = %v, want %v",
				c.name, c.layers, c.load, c.comp, got, c.want)
		}
	}
}

func TestChunkedStepTimeModel(t *testing.T) {
	const pm, dm = 0.35, 0.08
	// No prefiller: exactly the decode-step cost.
	if got, want := ChunkedStepTime(0, 0.025, 0, 4, pm, dm), DecodeStepTime(0.025, 4, dm); got != want {
		t.Fatalf("decode-only: %v, want %v", got, want)
	}
	// No decoder: a budgeted prefill batch — slice paced, prefill marginal.
	if got, want := ChunkedStepTime(0.1, 0, 3, 0, pm, dm), 0.1*(1+pm*2); got != want {
		t.Fatalf("prefill-only: %v, want %v", got, want)
	}
	// Pace is whichever of slice and decode token is longer.
	if got, want := ChunkedStepTime(0.01, 0.025, 1, 2, pm, dm), 0.025*(1+dm*2); math.Abs(got-want) > 1e-15 {
		t.Fatalf("decode-paced mixed step: %v, want %v", got, want)
	}
	if got, want := ChunkedStepTime(0.1, 0.025, 1, 2, pm, dm), 0.1*(1+dm*2); math.Abs(got-want) > 1e-15 {
		t.Fatalf("slice-paced mixed step: %v, want %v", got, want)
	}
	// Monotone in both width dimensions, and decoders are far cheaper to
	// add than prefillers (memory-bound vs FLOP-bound marginals).
	base := ChunkedStepTime(0.1, 0.025, 2, 3, pm, dm)
	if ChunkedStepTime(0.1, 0.025, 3, 3, pm, dm) <= base ||
		ChunkedStepTime(0.1, 0.025, 2, 4, pm, dm) <= base {
		t.Fatal("adding a member of either phase must lengthen the step")
	}
	dp := ChunkedStepTime(0.1, 0.025, 2, 4, pm, dm) - base
	pp := ChunkedStepTime(0.1, 0.025, 3, 3, pm, dm) - base
	if dp >= pp {
		t.Fatalf("marginal decoder %v not cheaper than marginal prefiller %v", dp, pp)
	}
	// The Sarathi claim the serving policy relies on: with the slice
	// bounded below the whole-chunk step, the budgeted mixed step never
	// exceeds the unbudgeted one (legacy prices every member with the
	// prefill marginal at the whole-chunk pace).
	for _, width := range []int{2, 4, 8} {
		legacy := 0.15 * (1 + pm*float64(width-1))
		budgeted := ChunkedStepTime(0.05, 0.025, 1, width-1, pm, dm)
		if budgeted >= legacy {
			t.Fatalf("width %d: budgeted mixed step %v not below whole-chunk step %v", width, budgeted, legacy)
		}
	}
}

func TestPipelineTimeBounds(t *testing.T) {
	// The pipelined schedule can never beat the slower side alone, nor be
	// worse than running both sides back to back.
	for _, layers := range []int{1, 8, 32, 80} {
		load, comp := 0.7, 0.3
		p := PipelineTime(layers, load, comp)
		slower := float64(layers) * load
		seq := float64(layers) * (load + comp)
		if p < slower || p > seq {
			t.Fatalf("layers=%d: pipeline %v outside [%v, %v]", layers, p, slower, seq)
		}
	}
}
