package model

import (
	"math"
	"testing"

	"repro/internal/kvcache"
	"repro/internal/tensor"
)

var testCfg = Config{
	Name: "test", Layers: 3, Heads: 4, KVHeads: 2, HeadDim: 8,
	FFNDim: 32, Vocab: 64, RotaryDims: 8, RopeBase: 10000, Norm: NormRMS, Eps: 1e-5,
}

func seqTokens(n, vocab int, seed int64) []int {
	g := tensor.NewRNG(seed)
	out := make([]int, n)
	for i := range out {
		out[i] = g.Intn(vocab)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	good := testCfg
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Layers = 0 },
		func(c *Config) { c.Heads = 0 },
		func(c *Config) { c.KVHeads = 3 }, // not a divisor of 4
		func(c *Config) { c.HeadDim = 0 },
		func(c *Config) { c.Vocab = 0 },
		func(c *Config) { c.RotaryDims = 10 }, // > HeadDim
		func(c *Config) { c.RotaryDims = 3 },  // odd
		func(c *Config) { c.RopeBase = 0 },    // rotary without base
		func(c *Config) { c.FFNDim = -1 },
	}
	for i, mutate := range cases {
		c := testCfg
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestSimConfigsValid(t *testing.T) {
	for _, c := range SimConfigs() {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}

func TestNewRandomDeterminism(t *testing.T) {
	a := NewRandom(testCfg, 7)
	b := NewRandom(testCfg, 7)
	if tensor.MaxAbsDiff(a.Layer[1].Wq.Data, b.Layer[1].Wq.Data) != 0 {
		t.Fatal("same seed must give identical weights")
	}
	c := NewRandom(testCfg, 8)
	if tensor.MaxAbsDiff(a.Layer[1].Wq.Data, c.Layer[1].Wq.Data) == 0 {
		t.Fatal("different seeds must differ")
	}
}

func TestPrefillShapes(t *testing.T) {
	m := NewRandom(testCfg, 1)
	toks := seqTokens(10, testCfg.Vocab, 2)
	res := m.Prefill(toks, 0, true)
	if res.Cache.Tokens != 10 || res.Cache.NumLayers != 3 {
		t.Fatalf("cache geometry wrong: %d tokens %d layers", res.Cache.Tokens, res.Cache.NumLayers)
	}
	if res.Hidden.Rows != 10 || res.Hidden.Cols != testCfg.Hidden() {
		t.Fatalf("hidden shape %dx%d", res.Hidden.Rows, res.Hidden.Cols)
	}
	if len(res.Attn) != 3 {
		t.Fatalf("want 3 attention matrices, got %d", len(res.Attn))
	}
	if res.Attn[0].Rows != 10 || res.Attn[0].Cols != testCfg.Heads*10 {
		t.Fatalf("attn shape %dx%d", res.Attn[0].Rows, res.Attn[0].Cols)
	}
}

func TestAttentionRowsAreCausalDistributions(t *testing.T) {
	m := NewRandom(testCfg, 3)
	toks := seqTokens(8, testCfg.Vocab, 4)
	res := m.Prefill(toks, 0, true)
	T := 8
	for li, attn := range res.Attn {
		for r := 0; r < T; r++ {
			row := attn.Row(r)
			for h := 0; h < testCfg.Heads; h++ {
				var sum float64
				for tt := 0; tt < T; tt++ {
					w := float64(row[h*T+tt])
					if tt > r && w != 0 {
						t.Fatalf("layer %d: token %d attends to future token %d", li, r, tt)
					}
					if w < 0 {
						t.Fatalf("negative attention weight %v", w)
					}
					sum += w
				}
				if math.Abs(sum-1) > 1e-4 {
					t.Fatalf("layer %d token %d head %d: attention sums to %v", li, r, h, sum)
				}
			}
		}
	}
}

func TestSelectiveAllTokensEqualsFullPrefill(t *testing.T) {
	// Running the partial path over a garbage-filled cache with every
	// token selected must overwrite everything and match full prefill
	// exactly — the core equivalence CacheBlend relies on.
	m := NewRandom(testCfg, 5)
	toks := seqTokens(12, testCfg.Vocab, 6)
	ref := m.Prefill(toks, 0, false)

	g := tensor.NewRNG(99)
	c := m.NewCache(len(toks))
	for i := 0; i < testCfg.Layers; i++ {
		g.FillNormal(c.K[i], 1)
		g.FillNormal(c.V[i], 1)
	}
	h := m.EmbedTokens(toks)
	idx := make([]int, len(toks))
	for i := range idx {
		idx[i] = i
	}
	for li := 0; li < testCfg.Layers; li++ {
		h, _ = m.ForwardLayerPartial(li, h, idx, c, false)
	}
	if tensor.MaxAbsDiff(h.Data, ref.Hidden.Data) > 1e-5 {
		t.Fatal("hidden states differ between full and all-selected partial prefill")
	}
	for i := 0; i < testCfg.Layers; i++ {
		if tensor.MaxAbsDiff(c.K[i].Data, ref.Cache.K[i].Data) > 1e-5 ||
			tensor.MaxAbsDiff(c.V[i].Data, ref.Cache.V[i].Data) > 1e-5 {
			t.Fatalf("layer %d KV differs", i)
		}
	}
}

func TestPrefixCacheReuseMatchesFullPrefill(t *testing.T) {
	// The defining property of prefix caching (§3.2): a prefix's KV is
	// independent of what follows, so prefill(prefix)+partial(suffix)
	// must equal prefill(prefix+suffix).
	m := NewRandom(testCfg, 11)
	full := seqTokens(14, testCfg.Vocab, 12)
	prefix, suffix := full[:9], full[9:]

	ref := m.Prefill(full, 0, false)

	pre := m.Prefill(prefix, 0, false)
	c := kvcache.Concat(pre.Cache, m.NewCache(len(suffix)))
	h := m.EmbedTokens(suffix)
	idx := make([]int, len(suffix))
	for i := range idx {
		idx[i] = 9 + i
	}
	for li := 0; li < testCfg.Layers; li++ {
		h, _ = m.ForwardLayerPartial(li, h, idx, c, false)
	}
	for r := range suffix {
		if tensor.MaxAbsDiff(h.Row(r), ref.Hidden.Row(9+r)) > 1e-4 {
			t.Fatalf("suffix token %d hidden differs from full prefill", r)
		}
	}
	for i := 0; i < testCfg.Layers; i++ {
		if tensor.MaxAbsDiff(c.K[i].Data, ref.Cache.K[i].Data) > 1e-4 {
			t.Fatalf("layer %d keys differ", i)
		}
	}
}

func TestChunkShiftEqualsPrefillAtOffset(t *testing.T) {
	// A chunk prefilled at base 0 and RoPE-shifted to base 20 must carry
	// the same keys as the chunk prefilled at base 20 directly (Appendix
	// A positional recovery). Values and hidden states are position-
	// independent under pure relative encoding.
	m := NewRandom(testCfg, 13)
	toks := seqTokens(6, testCfg.Vocab, 14)

	at0 := m.Prefill(toks, 0, false)
	at0.Cache.ShiftPositions(m.Rope, testCfg.KVHeads, testCfg.HeadDim, 20)
	at20 := m.Prefill(toks, 20, false)

	for i := 0; i < testCfg.Layers; i++ {
		if tensor.MaxAbsDiff(at0.Cache.K[i].Data, at20.Cache.K[i].Data) > 1e-3 {
			t.Fatalf("layer %d shifted keys differ from direct keys", i)
		}
		if tensor.MaxAbsDiff(at0.Cache.V[i].Data, at20.Cache.V[i].Data) > 1e-3 {
			t.Fatalf("layer %d values differ (should be position-independent)", i)
		}
	}
	if tensor.MaxAbsDiff(at0.Hidden.Data, at20.Hidden.Data) > 1e-3 {
		t.Fatal("hidden states should be invariant to absolute chunk position")
	}
}

func TestEmbedUnknownTokenIsZero(t *testing.T) {
	m := NewRandom(testCfg, 1)
	h := m.EmbedTokens([]int{-1, 3})
	for _, v := range h.Row(0) {
		if v != 0 {
			t.Fatal("unknown token must embed to zero")
		}
	}
	if tensor.L2(h.Row(1)) == 0 {
		t.Fatal("known token must embed to non-zero")
	}
}

func TestGenerateDeterministicAndGrowsCache(t *testing.T) {
	m := NewRandom(testCfg, 21)
	toks := seqTokens(5, testCfg.Vocab, 22)
	run := func() ([]int, int) {
		res := m.Prefill(toks, 0, false)
		out := m.Generate(res.Cache, res.Hidden.Row(4), 4, nil)
		return out, res.Cache.Tokens
	}
	a, an := run()
	b, bn := run()
	if len(a) != 4 {
		t.Fatalf("want 4 generated tokens, got %d", len(a))
	}
	if an != 9 || bn != 9 {
		t.Fatalf("cache should have grown to 9 tokens, got %d/%d", an, bn)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy decode must be deterministic")
		}
	}
}

func TestGenerateStopToken(t *testing.T) {
	m := NewRandom(testCfg, 21)
	toks := seqTokens(5, testCfg.Vocab, 22)
	res := m.Prefill(toks, 0, false)
	first := m.Generate(res.Cache.Clone(), res.Hidden.Row(4), 4, nil)
	stopped := m.Generate(res.Cache, res.Hidden.Row(4), 4, func(tok int) bool { return tok == first[0] })
	if len(stopped) != 0 {
		t.Fatalf("stop on first token must yield empty output, got %v", stopped)
	}
}

func TestGenerateMatchesPrefillConsistency(t *testing.T) {
	// Teacher forcing: prefilling [prompt ++ generated] must predict the
	// same continuation tokens at each position as incremental decode
	// produced — i.e. decode is consistent with prefill.
	m := NewRandom(testCfg, 31)
	prompt := seqTokens(6, testCfg.Vocab, 32)
	res := m.Prefill(prompt, 0, false)
	gen := m.Generate(res.Cache, res.Hidden.Row(5), 3, nil)
	if len(gen) != 3 {
		t.Fatalf("want 3 tokens, got %d", len(gen))
	}
	fullRes := m.Prefill(append(append([]int{}, prompt...), gen...), 0, false)
	for i := 0; i < 3; i++ {
		// Position 5+i predicts gen[i].
		logits := m.Logits(fullRes.Hidden.Row(5 + i))
		if got := tensor.Argmax(logits); got != gen[i] {
			t.Fatalf("prefill-predicted token %d = %d, decode said %d", i, got, gen[i])
		}
	}
}

func TestForwardLayerPartialPanics(t *testing.T) {
	m := NewRandom(testCfg, 1)
	c := m.NewCache(4)
	h := tensor.New(2, testCfg.Hidden())
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad layer", func() { m.ForwardLayerPartial(99, h, []int{0, 1}, c, false) })
	mustPanic("bad shape", func() { m.ForwardLayerPartial(0, h, []int{0}, c, false) })
	mustPanic("descending idx", func() { m.ForwardLayerPartial(0, h, []int{1, 0}, c, false) })
	mustPanic("idx out of range", func() { m.ForwardLayerPartial(0, h, []int{0, 9}, c, false) })
}

func TestNoRopeNoNormNoFFNConfig(t *testing.T) {
	cfg := Config{Name: "bare", Layers: 2, Heads: 2, KVHeads: 2, HeadDim: 4,
		FFNDim: 0, Vocab: 16, RotaryDims: 0, Norm: NormNone}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewRandom(cfg, 3)
	if m.Rope != nil {
		t.Fatal("RotaryDims=0 must not build a rope table")
	}
	toks := seqTokens(5, cfg.Vocab, 4)
	res := m.Prefill(toks, 0, false)
	if res.Cache.Tokens != 5 {
		t.Fatal("prefill failed on bare config")
	}
	// Without RoPE, prefill at different base positions is identical.
	res2 := m.Prefill(toks, 50, false)
	if tensor.MaxAbsDiff(res.Cache.K[0].Data, res2.Cache.K[0].Data) != 0 {
		t.Fatal("no-rope keys must be position independent")
	}
}

func TestNewZeroIsInert(t *testing.T) {
	m := NewZero(testCfg)
	toks := seqTokens(4, testCfg.Vocab, 1)
	res := m.Prefill(toks, 0, false)
	if tensor.L2(res.Hidden.Data) != 0 {
		t.Fatal("zero model must produce zero hidden states for zero embeddings")
	}
}

func TestGQADiffersFromMHA(t *testing.T) {
	// Same seed, different KVHeads → different behaviour (sanity that the
	// GQA grouping is actually wired through).
	cfgA := testCfg
	cfgA.KVHeads = 4
	cfgB := testCfg
	cfgB.KVHeads = 2
	toks := seqTokens(6, testCfg.Vocab, 3)
	ha := NewRandom(cfgA, 5).Prefill(toks, 0, false).Hidden
	hb := NewRandom(cfgB, 5).Prefill(toks, 0, false).Hidden
	if tensor.MaxAbsDiff(ha.Data, hb.Data) == 0 {
		t.Fatal("GQA grouping appears to have no effect")
	}
}
