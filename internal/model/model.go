package model

import (
	"fmt"
	"math"

	"repro/internal/kvcache"
	"repro/internal/rope"
	"repro/internal/tensor"
)

// LayerWeights holds the parameters of one transformer layer.
type LayerWeights struct {
	// AttnGain is the pre-attention RMS-norm gain (nil under NormNone).
	AttnGain []float32
	// Wq maps hidden → Heads×HeadDim, Wk/Wv map hidden → KVHeads×HeadDim.
	Wq, Wk, Wv *tensor.Matrix
	// Wo maps the concatenated head outputs back to hidden.
	Wo *tensor.Matrix
	// FFNGain is the pre-FFN RMS-norm gain (nil under NormNone).
	FFNGain []float32
	// W1 (gate) and W3 (up) map hidden → FFNDim; W2 (down) maps back.
	// All nil when FFNDim is 0.
	W1, W2, W3 *tensor.Matrix
}

// Model is a complete transformer: embeddings, layers and output head.
type Model struct {
	Cfg Config
	// Embed is the Vocab×Hidden token embedding table.
	Embed *tensor.Matrix
	// Layer holds per-layer weights.
	Layer []LayerWeights
	// FinalGain is the last RMS-norm gain (nil under NormNone).
	FinalGain []float32
	// LMHead maps hidden → vocab logits.
	LMHead *tensor.Matrix
	// Rope is the rotary table over the first RotaryDims of each head
	// (nil when RotaryDims is 0).
	Rope *rope.Table
}

// NewRandom builds a model with deterministic Xavier-style random weights
// derived from seed. Two calls with the same config and seed produce
// identical models.
func NewRandom(cfg Config, seed int64) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := tensor.NewRNG(seed)
	hidden := cfg.Hidden()
	m := &Model{Cfg: cfg}
	if cfg.RotaryDims > 0 {
		m.Rope = rope.NewTable(cfg.RotaryDims, cfg.RopeBase)
	}
	m.Embed = g.NewNormal(cfg.Vocab, hidden, 1.0/math.Sqrt(float64(hidden)))
	std := 1.0 / math.Sqrt(float64(hidden))
	qkScale := cfg.QKInitScale
	if qkScale == 0 {
		qkScale = 1
	}
	ones := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = 1
		}
		return v
	}
	for i := 0; i < cfg.Layers; i++ {
		lw := LayerWeights{
			Wq: g.NewNormal(hidden, cfg.Heads*cfg.HeadDim, std*qkScale),
			Wk: g.NewNormal(hidden, cfg.KVDim(), std*qkScale),
			Wv: g.NewNormal(hidden, cfg.KVDim(), std),
			Wo: g.NewNormal(cfg.Heads*cfg.HeadDim, hidden, std),
		}
		if cfg.FFNDim > 0 {
			lw.W1 = g.NewNormal(hidden, cfg.FFNDim, std)
			lw.W3 = g.NewNormal(hidden, cfg.FFNDim, std)
			lw.W2 = g.NewNormal(cfg.FFNDim, hidden, 1.0/math.Sqrt(float64(cfg.FFNDim)))
		}
		if cfg.Norm == NormRMS {
			lw.AttnGain = ones(hidden)
			lw.FFNGain = ones(hidden)
		}
		m.Layer = append(m.Layer, lw)
	}
	if cfg.Norm == NormRMS {
		m.FinalGain = ones(hidden)
	}
	m.LMHead = g.NewNormal(hidden, cfg.Vocab, std)
	return m
}

// NewZero builds a model whose weights are all zero — the starting point
// for constructed-weight models (package qamodel) that fill in exactly the
// blocks they need.
func NewZero(cfg Config) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	hidden := cfg.Hidden()
	m := &Model{Cfg: cfg}
	if cfg.RotaryDims > 0 {
		m.Rope = rope.NewTable(cfg.RotaryDims, cfg.RopeBase)
	}
	m.Embed = tensor.New(cfg.Vocab, hidden)
	for i := 0; i < cfg.Layers; i++ {
		lw := LayerWeights{
			Wq: tensor.New(hidden, cfg.Heads*cfg.HeadDim),
			Wk: tensor.New(hidden, cfg.KVDim()),
			Wv: tensor.New(hidden, cfg.KVDim()),
			Wo: tensor.New(cfg.Heads*cfg.HeadDim, hidden),
		}
		if cfg.FFNDim > 0 {
			lw.W1 = tensor.New(hidden, cfg.FFNDim)
			lw.W3 = tensor.New(hidden, cfg.FFNDim)
			lw.W2 = tensor.New(cfg.FFNDim, hidden)
		}
		m.Layer = append(m.Layer, lw)
	}
	m.LMHead = tensor.New(hidden, cfg.Vocab)
	return m
}

// NewCache returns an empty KV cache shaped for this model and sequence
// length.
func (m *Model) NewCache(tokens int) *kvcache.Cache {
	return kvcache.New(m.Cfg.Layers, m.Cfg.KVDim(), tokens)
}

// EmbedTokens returns the len(tokens)×hidden embedding matrix. Token id -1
// (unknown) embeds as the zero vector.
func (m *Model) EmbedTokens(tokens []int) *tensor.Matrix {
	h := tensor.New(len(tokens), m.Cfg.Hidden())
	for i, t := range tokens {
		if t < 0 {
			continue
		}
		if t >= m.Cfg.Vocab {
			panic(fmt.Sprintf("model: token %d out of vocab %d", t, m.Cfg.Vocab))
		}
		copy(h.Row(i), m.Embed.Row(t))
	}
	return h
}

func (m *Model) normInto(dst, x, gain []float32) {
	if m.Cfg.Norm == NormNone {
		copy(dst, x)
		return
	}
	tensor.RMSNorm(dst, x, gain, m.Cfg.Eps)
}

// ForwardLayerPartial computes layer li for the token positions listed in
// idx (strictly ascending). h holds the layer-li residual-stream rows for
// those positions (len(idx)×hidden). c is the full-sequence KV cache whose
// rows at idx are overwritten with freshly computed K/V before attention,
// so selected tokens see each other's updated keys and values exactly as
// they would under full prefill (paper Figure 5(b)). All other positions'
// K/V are reused from c as-is.
//
// Absolute positions are c.BasePos + index; rotary encoding (if enabled)
// is applied to the first RotaryDims of each head.
//
// The returned matrix holds the layer-(li+1) residual rows for idx. When
// wantAttn is true the second result holds the attention probabilities of
// the selected rows — len(idx) rows, Heads×c.Tokens columns — which is the
// "forward attention matrix" used for deviation measurements (§4.1);
// otherwise it is nil.
func (m *Model) ForwardLayerPartial(li int, h *tensor.Matrix, idx []int, c *kvcache.Cache, wantAttn bool) (*tensor.Matrix, *tensor.Matrix) {
	cfg := m.Cfg
	if h.Rows != len(idx) || h.Cols != cfg.Hidden() {
		panic(fmt.Sprintf("model: hidden shape %dx%d, want %dx%d", h.Rows, h.Cols, len(idx), cfg.Hidden()))
	}
	if li < 0 || li >= cfg.Layers {
		panic(fmt.Sprintf("model: layer %d out of range", li))
	}
	lw := &m.Layer[li]
	nSel := len(idx)
	headDim := cfg.HeadDim
	group := cfg.GroupSize()

	// Pass 1: project Q/K/V for the selected tokens and write K/V into
	// the cache so pass 2 attends over the updated entries.
	qs := tensor.New(nSel, cfg.Heads*headDim)
	normed := make([]float32, cfg.Hidden())
	for r, j := range idx {
		if r > 0 && idx[r-1] >= j {
			panic("model: idx must be strictly ascending")
		}
		if j < 0 || j >= c.Tokens {
			panic(fmt.Sprintf("model: token index %d out of cache range %d", j, c.Tokens))
		}
		m.normInto(normed, h.Row(r), lw.AttnGain)
		q := qs.Row(r)
		copy(q, tensor.VecMat(normed, lw.Wq))
		k := tensor.VecMat(normed, lw.Wk)
		v := tensor.VecMat(normed, lw.Wv)
		pos := c.BasePos + j
		if m.Rope != nil {
			rot := cfg.RotaryDims
			for hh := 0; hh < cfg.Heads; hh++ {
				m.Rope.Apply(q[hh*headDim:hh*headDim+rot], pos)
			}
			for hh := 0; hh < cfg.KVHeads; hh++ {
				m.Rope.Apply(k[hh*headDim:hh*headDim+rot], pos)
			}
		}
		c.SetToken(li, j, k, v)
	}

	// Pass 2: attention over the full (updated ∪ reused) KV, then FFN.
	var attn *tensor.Matrix
	if wantAttn {
		attn = tensor.New(nSel, cfg.Heads*c.Tokens)
	}
	out := tensor.New(nSel, cfg.Hidden())
	scale := float32(1.0 / math.Sqrt(float64(headDim)))
	scores := make([]float32, c.Tokens)
	headOut := make([]float32, cfg.Heads*headDim)
	K := c.K[li]
	V := c.V[li]
	for r, j := range idx {
		q := qs.Row(r)
		for i := range headOut {
			headOut[i] = 0
		}
		for hh := 0; hh < cfg.Heads; hh++ {
			g := hh / group
			qh := q[hh*headDim : (hh+1)*headDim]
			n := j + 1 // causal: attend to positions 0..j
			for t := 0; t < n; t++ {
				kt := K.Row(t)[g*headDim : (g+1)*headDim]
				scores[t] = tensor.Dot(qh, kt) * scale
			}
			tensor.Softmax(scores[:n])
			oh := headOut[hh*headDim : (hh+1)*headDim]
			for t := 0; t < n; t++ {
				w := scores[t]
				if w == 0 {
					continue
				}
				tensor.AXPY(w, V.Row(t)[g*headDim:(g+1)*headDim], oh)
			}
			if wantAttn {
				copy(attn.Row(r)[hh*c.Tokens:hh*c.Tokens+n], scores[:n])
			}
		}
		res := out.Row(r)
		copy(res, h.Row(r))
		tensor.Add(res, tensor.VecMat(headOut, lw.Wo))

		if cfg.FFNDim > 0 {
			m.normInto(normed, res, lw.FFNGain)
			gate := tensor.VecMat(normed, lw.W1)
			up := tensor.VecMat(normed, lw.W3)
			tensor.SiLU(gate)
			for i := range gate {
				gate[i] *= up[i]
			}
			tensor.Add(res, tensor.VecMat(gate, lw.W2))
		}
	}
	return out, attn
}

// ProjectKV computes and stores fresh K/V cache entries on layer li for
// the token positions in idx without running attention or the FFN. h holds
// the layer-li residual rows for idx. CacheBlend uses this on its HKVD
// selection layer: new K/V for every token are needed to measure KV
// deviation against the loaded cache, but attention only runs for the
// tokens that survive selection — so the projection cost is paid for all
// tokens on one layer while the quadratic attention cost is not.
func (m *Model) ProjectKV(li int, h *tensor.Matrix, idx []int, c *kvcache.Cache) {
	cfg := m.Cfg
	if h.Rows != len(idx) || h.Cols != cfg.Hidden() {
		panic(fmt.Sprintf("model: hidden shape %dx%d, want %dx%d", h.Rows, h.Cols, len(idx), cfg.Hidden()))
	}
	lw := &m.Layer[li]
	headDim := cfg.HeadDim
	normed := make([]float32, cfg.Hidden())
	for r, j := range idx {
		m.normInto(normed, h.Row(r), lw.AttnGain)
		k := tensor.VecMat(normed, lw.Wk)
		v := tensor.VecMat(normed, lw.Wv)
		pos := c.BasePos + j
		if m.Rope != nil {
			rot := cfg.RotaryDims
			for hh := 0; hh < cfg.KVHeads; hh++ {
				m.Rope.Apply(k[hh*headDim:hh*headDim+rot], pos)
			}
		}
		c.SetToken(li, j, k, v)
	}
}

// PrefillResult bundles the outputs of a prefill pass.
type PrefillResult struct {
	// Cache is the KV cache of the whole sequence.
	Cache *kvcache.Cache
	// Hidden is the final-layer residual stream (tokens×hidden).
	Hidden *tensor.Matrix
	// Attn, when requested, holds one forward-attention matrix per layer.
	Attn []*tensor.Matrix
}

// Prefill runs full prefill over tokens with the sequence starting at
// absolute position basePos. It is implemented as ForwardLayerPartial with
// every token selected, which keeps the full and selective paths
// bit-identical by construction.
func (m *Model) Prefill(tokens []int, basePos int, wantAttn bool) *PrefillResult {
	c := m.NewCache(len(tokens))
	c.BasePos = basePos
	h := m.EmbedTokens(tokens)
	idx := make([]int, len(tokens))
	for i := range idx {
		idx[i] = i
	}
	res := &PrefillResult{Cache: c}
	for li := 0; li < m.Cfg.Layers; li++ {
		var attn *tensor.Matrix
		h, attn = m.ForwardLayerPartial(li, h, idx, c, wantAttn)
		if wantAttn {
			res.Attn = append(res.Attn, attn)
		}
	}
	res.Hidden = h
	return res
}

// Logits applies the final norm and LM head to one residual-stream row.
func (m *Model) Logits(h []float32) []float32 {
	normed := make([]float32, len(h))
	m.normInto(normed, h, m.FinalGain)
	return tensor.VecMat(normed, m.LMHead)
}

// Generate decodes greedily from the cache. lastHidden must be the
// final-layer residual of the last prefilled token. Decoding appends each
// generated token's KV to c (which grows) and stops after maxNew tokens or
// when stop (if non-nil) returns true for a generated token; the stopping
// token is not included in the result.
func (m *Model) Generate(c *kvcache.Cache, lastHidden []float32, maxNew int, stop func(tok int) bool) []int {
	var out []int
	h := append([]float32(nil), lastHidden...)
	for n := 0; n < maxNew; n++ {
		tok := tensor.Argmax(m.Logits(h))
		if tok < 0 || (stop != nil && stop(tok)) {
			break
		}
		out = append(out, tok)
		// Append the new token's position and run all layers for it.
		c.Grow(1)
		j := c.Tokens - 1
		hm := m.EmbedTokens([]int{tok})
		for li := 0; li < m.Cfg.Layers; li++ {
			hm, _ = m.ForwardLayerPartial(li, hm, []int{j}, c, false)
		}
		h = hm.Row(0)
	}
	return out
}
