// Package model implements the transformer substrate that CacheBlend runs
// on: token embeddings, multi-head attention with grouped-query attention
// (GQA) and (optionally partial) rotary positional embeddings, a SwiGLU
// feed-forward block and RMS normalisation.
//
// The single load-bearing primitive is ForwardLayerPartial, which computes
// one layer for an arbitrary subset of token positions while attending
// over the full KV cache — exactly the masked partial-prefill step of
// CacheBlend (§4.2, Figure 5). Full prefill is the special case where the
// subset is every token, which gives a strong correctness anchor: the
// selective path with all tokens selected must reproduce full prefill
// bit-for-bit.
package model

import (
	"fmt"
)

// NormKind selects the pre-attention/pre-FFN normalisation.
type NormKind int

const (
	// NormRMS applies RMS normalisation with learned gains (Llama-style).
	NormRMS NormKind = iota
	// NormNone passes the residual stream through unchanged. The
	// constructed QA model uses this so hand-designed field magnitudes
	// survive across layers.
	NormNone
)

// Config describes a transformer architecture.
type Config struct {
	// Name identifies the configuration in experiment output.
	Name string
	// Layers is the number of transformer layers.
	Layers int
	// Heads is the number of query heads.
	Heads int
	// KVHeads is the number of key/value heads; Heads must be a multiple
	// (grouped-query attention). Equal to Heads for full multi-head.
	KVHeads int
	// HeadDim is the per-head dimension. Hidden size is Heads*HeadDim.
	HeadDim int
	// FFNDim is the SwiGLU inner dimension (0 disables the FFN block).
	FFNDim int
	// Vocab is the embedding-table size.
	Vocab int
	// RotaryDims is how many leading dims of each head's Q/K get rotary
	// position encoding. 0 disables RoPE entirely; HeadDim is full RoPE;
	// anything between is partial rotary (GPT-NeoX style).
	RotaryDims int
	// RopeBase is the rotary frequency base (10000 in Llama/Mistral).
	RopeBase float64
	// Norm selects the normalisation flavour.
	Norm NormKind
	// Eps is the normalisation epsilon.
	Eps float32
	// QKInitScale multiplies the random initialisation of Wq/Wk (0 means
	// 1). Trained transformers have much sharper attention than random
	// initialisation produces; the deviation studies (Figures 6-8) depend
	// on that sharpness — it is what concentrates cross-chunk influence
	// in a small fraction of tokens — so the sim models raise it.
	QKInitScale float64
}

// Hidden returns the residual-stream width.
func (c Config) Hidden() int { return c.Heads * c.HeadDim }

// KVDim returns the flattened per-token KV width.
func (c Config) KVDim() int { return c.KVHeads * c.HeadDim }

// GroupSize returns how many query heads share one KV head.
func (c Config) GroupSize() int { return c.Heads / c.KVHeads }

// Validate reports the first structural problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0:
		return fmt.Errorf("model %q: Layers must be positive, got %d", c.Name, c.Layers)
	case c.Heads <= 0 || c.KVHeads <= 0:
		return fmt.Errorf("model %q: Heads/KVHeads must be positive, got %d/%d", c.Name, c.Heads, c.KVHeads)
	case c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model %q: Heads (%d) must be a multiple of KVHeads (%d)", c.Name, c.Heads, c.KVHeads)
	case c.HeadDim <= 0:
		return fmt.Errorf("model %q: HeadDim must be positive, got %d", c.Name, c.HeadDim)
	case c.Vocab <= 0:
		return fmt.Errorf("model %q: Vocab must be positive, got %d", c.Name, c.Vocab)
	case c.RotaryDims < 0 || c.RotaryDims > c.HeadDim:
		return fmt.Errorf("model %q: RotaryDims %d out of range [0,%d]", c.Name, c.RotaryDims, c.HeadDim)
	case c.RotaryDims%2 != 0:
		return fmt.Errorf("model %q: RotaryDims must be even, got %d", c.Name, c.RotaryDims)
	case c.RotaryDims > 0 && c.RopeBase <= 0:
		return fmt.Errorf("model %q: RopeBase must be positive with rotary dims, got %v", c.Name, c.RopeBase)
	case c.FFNDim < 0:
		return fmt.Errorf("model %q: FFNDim must be non-negative, got %d", c.Name, c.FFNDim)
	}
	return nil
}

// Scaled-down stand-ins for the paper's three evaluation models. Depth,
// width and GQA factor differ so cross-model trends (Figures 6–8) are
// exercised on genuinely different architectures, while staying small
// enough to run full prefill references in tests.
var (
	// Mistral7BSim stands in for Mistral-7B (32 layers, 8 KV heads in
	// the real model).
	Mistral7BSim = Config{
		Name: "mistral7b-sim", Layers: 8, Heads: 8, KVHeads: 4, HeadDim: 16,
		FFNDim: 256, Vocab: 512, RotaryDims: 16, RopeBase: 10000, Norm: NormRMS, Eps: 1e-5,
		QKInitScale: 5,
	}
	// Yi34BSim stands in for Yi-34B (60 layers in the real model).
	Yi34BSim = Config{
		Name: "yi34b-sim", Layers: 12, Heads: 10, KVHeads: 5, HeadDim: 16,
		FFNDim: 320, Vocab: 512, RotaryDims: 16, RopeBase: 10000, Norm: NormRMS, Eps: 1e-5,
		QKInitScale: 5,
	}
	// Llama70BSim stands in for Llama-2-70B (80 layers, 8 KV heads in
	// the real model).
	Llama70BSim = Config{
		Name: "llama70b-sim", Layers: 16, Heads: 12, KVHeads: 4, HeadDim: 16,
		FFNDim: 384, Vocab: 512, RotaryDims: 16, RopeBase: 10000, Norm: NormRMS, Eps: 1e-5,
		QKInitScale: 5,
	}
)

// SimConfigs lists the three scaled-down model stand-ins in paper order.
func SimConfigs() []Config {
	return []Config{Mistral7BSim, Yi34BSim, Llama70BSim}
}
