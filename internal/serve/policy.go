// The pluggable scheduling-policy layer: a Policy controls the two
// decisions the replica loop makes at every step boundary — how many
// waiting requests may join the running batch (admission), and how much
// prefill work a step may spend (the per-step prefill token budget).
// The decode-phase telemetry from the decode refactor exposed the
// head-of-line blocking FIFO admission causes: any prefilling member
// paces every decoder in the batch for a whole chunk step, so one
// joining request inflates its neighbours' TBT by an order of
// magnitude. The policies here remove that blocking two different ways
// — Sarathi-style chunked prefill bounds the prefill slice a mixed step
// may run, decode-priority admission holds prefills at the door while
// the batch is decoding (with an aging bound so prefill delay stays
// finite at overload) — and the StallTime/PrefillDelay metrics in
// Result quantify what each removes.
package serve

import (
	"fmt"
	"sort"
)

// Scheduling policy names accepted by Config.Sched.
const (
	// SchedFIFO is the legacy policy: admit waiting requests whenever
	// the batch has room, run prefill in whole-chunk steps. An empty
	// Config.Sched selects it too (bit-identical to the pre-policy
	// runtime; naming it explicitly additionally populates the
	// scheduling telemetry in Result).
	SchedFIFO = "fifo"
	// SchedChunkedPrefill admits FIFO but caps the prefill tokens a
	// step may spend at Config.PrefillBudget, splitting a joining
	// request's prefill across steps so resident decoders keep emitting
	// tokens at near-decode cadence (Sarathi-style stall-free batching).
	SchedChunkedPrefill = "chunked-prefill"
	// SchedDecodePriority defers admitting new prefill work while any
	// batch member is decoding, admitting one aged request after
	// Config.StarveLimit consecutive deferred step boundaries so
	// prefill delay stays finite at overload.
	SchedDecodePriority = "decode-priority"
	// SchedSLO is deadline-aware admission against Config.SLOTTFT
	// (required) and SLOTBT: the replica pops the queue in SLO order —
	// aged requests first (waiting past StarveLimit×SLOTTFT, the
	// starvation bound), then still-feasible requests by at-risk-tenant
	// priority and earliest deadline, with already-late requests
	// deprioritised so they can't drag feasible ones past their targets
	// — and bounds per-step prefill like chunked-prefill (the budget
	// shared in the same SLO order) so resident decoders hold TBT.
	SchedSLO = "slo"
)

// Policy controls how a replica schedules its running batch. Every
// method must be pure: the runtime is a deterministic simulation, so a
// policy may not sample randomness or keep mutable state of its own.
type Policy interface {
	// Name identifies the policy in telemetry and errors.
	Name() string
	// AdmitQuota returns how many waiting requests the replica may
	// admit at this step boundary, given the batch's phase composition
	// (prefillers/decoders), the batch-cap headroom, and how many
	// consecutive boundaries admission has already been deferred while
	// work waited. The runtime clamps the quota to [0, headroom]; an
	// idle replica (empty batch) always admits its first request
	// directly from the shared queue, bypassing the quota.
	AdmitQuota(prefillers, decoders, headroom, deferred int) int
	// PrefillBudget returns the per-step prefill token budget shared by
	// the batch's prefilling members, 0 meaning whole-chunk steps (the
	// legacy granularity).
	PrefillBudget() int
}

// fifoPolicy is the legacy scheduler: greedy admission, no budget.
type fifoPolicy struct{}

func (fifoPolicy) Name() string                  { return SchedFIFO }
func (fifoPolicy) AdmitQuota(_, _, h, _ int) int { return h }
func (fifoPolicy) PrefillBudget() int            { return 0 }

// chunkedPolicy admits greedily but bounds per-step prefill work: the
// budget — not the door — is what protects decoders.
type chunkedPolicy struct{ budget int }

func (chunkedPolicy) Name() string                  { return SchedChunkedPrefill }
func (chunkedPolicy) AdmitQuota(_, _, h, _ int) int { return h }
func (p chunkedPolicy) PrefillBudget() int          { return p.budget }

// decodePriorityPolicy holds prefill admission while the batch decodes,
// with an aging bound: after starve consecutive deferred boundaries it
// admits one request regardless, so no prefill waits forever.
type decodePriorityPolicy struct{ starve int }

func (decodePriorityPolicy) Name() string { return SchedDecodePriority }
func (p decodePriorityPolicy) AdmitQuota(prefillers, decoders, headroom, deferred int) int {
	if decoders == 0 {
		return headroom
	}
	if deferred >= p.starve {
		return 1 // aged: admit one even over active decoders
	}
	return 0
}
func (decodePriorityPolicy) PrefillBudget() int { return 0 }

// sloPolicy admits greedily by count — which requests fill the quota is
// decided at the queue, where the replica pops in SLO order — and bounds
// per-step prefill like chunked-prefill: TBT is half the SLO, so a
// joining prefill must not stall resident decoders for a whole chunk.
type sloPolicy struct{ budget int }

func (sloPolicy) Name() string                  { return SchedSLO }
func (sloPolicy) AdmitQuota(_, _, h, _ int) int { return h }
func (p sloPolicy) PrefillBudget() int          { return p.budget }

// policy constructs the configured scheduling policy. Call after
// Validate: unknown names panic here.
func (c Config) policy() Policy {
	switch c.Sched {
	case "", SchedFIFO:
		return fifoPolicy{}
	case SchedChunkedPrefill:
		return chunkedPolicy{budget: c.prefillBudget()}
	case SchedDecodePriority:
		return decodePriorityPolicy{starve: c.starveLimit()}
	case SchedSLO:
		return sloPolicy{budget: c.prefillBudget()}
	}
	panic(fmt.Sprintf("serve: unknown scheduling policy %q", c.Sched))
}

// schedMetrics reports whether the run populates the scheduling
// telemetry (StallTime, prefill-delay percentiles) in Result. Gated on
// an explicit policy so legacy Results — goldens included — stay
// byte-identical under the default configuration.
func (c Config) schedMetrics() bool { return c.Sched != "" }

// allocPrefill grants this step's prefill token slices in batch
// (admission) order under a shared budget: the oldest prefilling member
// drains first, the next takes what is left. It writes each prefilling
// member's slice field (0 = resident but idle this step) and returns
// how many members prefill this step, how many decode, and the longest
// granted slice's duration. A positive budget always grants the oldest
// prefiller at least one token, so a batch with prefill work can never
// stall; slices never exceed a member's remaining tokens, so tokens are
// never double-counted.
func allocPrefill(batch []*member, budget int) (prefillers, decoders int, longest float64) {
	left := budget
	for _, m := range batch {
		if m.decoding {
			decoders++
			continue
		}
		m.slice = 0
		if left <= 0 {
			continue
		}
		grant := m.prefTotal - m.prefDone
		if grant > left {
			grant = left
		}
		m.slice = grant
		left -= grant
		prefillers++
		if t := float64(grant) * m.perTok; t > longest {
			longest = t
		}
	}
	return prefillers, decoders, longest
}

// SLO admission order. The slo policy pops the queue — and shares the
// per-step prefill budget — by a three-class key:
//
//	class 0 (aged):     waiting longer than StarveLimit×SLOTTFT. Front of
//	                    the line unconditionally, so the deprioritised
//	                    late class below can never starve — the wait of
//	                    any request is bounded by the aging threshold
//	                    plus one queue drain, mirroring decode-priority's
//	                    StarveLimit bound.
//	class 1 (feasible): still inside its TTFT target. Ordered by at-risk
//	                    tenant first (the tenant with the worst running
//	                    attainment — the per-tenant fairness the ISSUE's
//	                    multi-tenant sweeps measure), then earliest
//	                    arrival, i.e. earliest deadline first (uniform
//	                    targets make EDF and FIFO coincide within a
//	                    tenant).
//	class 2 (late):     past its target but not yet aged. Serving these
//	                    before feasible work converts near-miss requests
//	                    into violations one by one; holding them back is
//	                    what buys attainment and goodput at overload.
//
// sloClass computes the class of a queued request at virtual time now.
func (c *cluster) sloClass(r request, now float64) int {
	wait := now - r.arrival
	if wait > float64(c.starve)*c.sloTTFT {
		return 0
	}
	if wait <= c.sloTTFT {
		return 1
	}
	return 2
}

// sloLess is the admission order at virtual time now: class, then tenant
// risk (higher first), then arrival, then index — a strict weak order, so
// min-pops and sorts are deterministic.
func (c *cluster) sloLess(a, b request, now float64) bool {
	if ca, cb := c.sloClass(a, now), c.sloClass(b, now); ca != cb {
		return ca < cb
	}
	if ra, rb := c.tenantRisk(a.tenant), c.tenantRisk(b.tenant); ra != rb {
		return ra > rb
	}
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return a.idx < b.idx
}

// tenantRisk is the tenant's running SLO miss rate over every completion
// so far (warmup included — the scheduler needs signal from the start; the
// reported attainment telemetry stays post-warmup only). Tenants with no
// completions yet carry zero risk.
func (c *cluster) tenantRisk(t int) float64 {
	if t >= len(c.riskDone) || c.riskDone[t] == 0 {
		return 0
	}
	return 1 - float64(c.riskMet[t])/float64(c.riskDone[t])
}

// bumpRisk records one completed request's SLO outcome into its tenant's
// running risk, growing the dense counters on first sight of a tenant.
func (c *cluster) bumpRisk(t int, met bool) {
	if t >= len(c.riskDone) {
		done := make([]int64, t+1)
		metc := make([]int64, t+1)
		copy(done, c.riskDone)
		copy(metc, c.riskMet)
		c.riskDone, c.riskMet = done, metc
	}
	c.riskDone[t]++
	if met {
		c.riskMet[t]++
	}
}

// allocPrefillSLO is allocPrefill with the grant order decided by the SLO
// admission key instead of batch (admission) order: at a step boundary
// the budget drains into the most deadline-urgent resident prefiller
// first, so a request admitted early but still feasible cannot hold the
// whole budget while an aged or at-risk neighbour idles. Same contract
// otherwise: a positive budget always grants the first-ordered prefiller
// at least one token, slices never exceed remaining tokens.
func (c *cluster) allocPrefillSLO(batch []*member, budget int, now float64) (prefillers, decoders int, longest float64) {
	order := c.sloOrder[:0]
	for _, m := range batch {
		if m.decoding {
			decoders++
			continue
		}
		m.slice = 0
		order = append(order, m)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return c.sloLess(order[i].req, order[j].req, now)
	})
	left := budget
	for _, m := range order {
		if left <= 0 {
			break
		}
		grant := m.prefTotal - m.prefDone
		if grant > left {
			grant = left
		}
		m.slice = grant
		left -= grant
		prefillers++
		if t := float64(grant) * m.perTok; t > longest {
			longest = t
		}
	}
	c.sloOrder = order // hand the (possibly grown) scratch back
	return prefillers, decoders, longest
}
