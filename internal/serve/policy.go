// The pluggable scheduling-policy layer: a Policy controls the two
// decisions the replica loop makes at every step boundary — how many
// waiting requests may join the running batch (admission), and how much
// prefill work a step may spend (the per-step prefill token budget).
// The decode-phase telemetry from the decode refactor exposed the
// head-of-line blocking FIFO admission causes: any prefilling member
// paces every decoder in the batch for a whole chunk step, so one
// joining request inflates its neighbours' TBT by an order of
// magnitude. The policies here remove that blocking two different ways
// — Sarathi-style chunked prefill bounds the prefill slice a mixed step
// may run, decode-priority admission holds prefills at the door while
// the batch is decoding (with an aging bound so prefill delay stays
// finite at overload) — and the StallTime/PrefillDelay metrics in
// Result quantify what each removes.
package serve

import "fmt"

// Scheduling policy names accepted by Config.Sched.
const (
	// SchedFIFO is the legacy policy: admit waiting requests whenever
	// the batch has room, run prefill in whole-chunk steps. An empty
	// Config.Sched selects it too (bit-identical to the pre-policy
	// runtime; naming it explicitly additionally populates the
	// scheduling telemetry in Result).
	SchedFIFO = "fifo"
	// SchedChunkedPrefill admits FIFO but caps the prefill tokens a
	// step may spend at Config.PrefillBudget, splitting a joining
	// request's prefill across steps so resident decoders keep emitting
	// tokens at near-decode cadence (Sarathi-style stall-free batching).
	SchedChunkedPrefill = "chunked-prefill"
	// SchedDecodePriority defers admitting new prefill work while any
	// batch member is decoding, admitting one aged request after
	// Config.StarveLimit consecutive deferred step boundaries so
	// prefill delay stays finite at overload.
	SchedDecodePriority = "decode-priority"
	// SchedSLO is a stub for SLO-aware admission: it behaves like FIFO
	// today and reserves the name for per-tenant SLO targets (see the
	// ROADMAP closed-loop item), so configs and traces can already pin
	// the policy axis.
	SchedSLO = "slo"
)

// Policy controls how a replica schedules its running batch. Every
// method must be pure: the runtime is a deterministic simulation, so a
// policy may not sample randomness or keep mutable state of its own.
type Policy interface {
	// Name identifies the policy in telemetry and errors.
	Name() string
	// AdmitQuota returns how many waiting requests the replica may
	// admit at this step boundary, given the batch's phase composition
	// (prefillers/decoders), the batch-cap headroom, and how many
	// consecutive boundaries admission has already been deferred while
	// work waited. The runtime clamps the quota to [0, headroom]; an
	// idle replica (empty batch) always admits its first request
	// directly from the shared queue, bypassing the quota.
	AdmitQuota(prefillers, decoders, headroom, deferred int) int
	// PrefillBudget returns the per-step prefill token budget shared by
	// the batch's prefilling members, 0 meaning whole-chunk steps (the
	// legacy granularity).
	PrefillBudget() int
}

// fifoPolicy is the legacy scheduler: greedy admission, no budget.
type fifoPolicy struct{}

func (fifoPolicy) Name() string                  { return SchedFIFO }
func (fifoPolicy) AdmitQuota(_, _, h, _ int) int { return h }
func (fifoPolicy) PrefillBudget() int            { return 0 }

// chunkedPolicy admits greedily but bounds per-step prefill work: the
// budget — not the door — is what protects decoders.
type chunkedPolicy struct{ budget int }

func (chunkedPolicy) Name() string                  { return SchedChunkedPrefill }
func (chunkedPolicy) AdmitQuota(_, _, h, _ int) int { return h }
func (p chunkedPolicy) PrefillBudget() int          { return p.budget }

// decodePriorityPolicy holds prefill admission while the batch decodes,
// with an aging bound: after starve consecutive deferred boundaries it
// admits one request regardless, so no prefill waits forever.
type decodePriorityPolicy struct{ starve int }

func (decodePriorityPolicy) Name() string { return SchedDecodePriority }
func (p decodePriorityPolicy) AdmitQuota(prefillers, decoders, headroom, deferred int) int {
	if decoders == 0 {
		return headroom
	}
	if deferred >= p.starve {
		return 1 // aged: admit one even over active decoders
	}
	return 0
}
func (decodePriorityPolicy) PrefillBudget() int { return 0 }

// sloPolicy is the SLO-aware stub: FIFO behaviour under a reserved name.
type sloPolicy struct{}

func (sloPolicy) Name() string                  { return SchedSLO }
func (sloPolicy) AdmitQuota(_, _, h, _ int) int { return h }
func (sloPolicy) PrefillBudget() int            { return 0 }

// policy constructs the configured scheduling policy. Call after
// Validate: unknown names panic here.
func (c Config) policy() Policy {
	switch c.Sched {
	case "", SchedFIFO:
		return fifoPolicy{}
	case SchedChunkedPrefill:
		return chunkedPolicy{budget: c.prefillBudget()}
	case SchedDecodePriority:
		return decodePriorityPolicy{starve: c.starveLimit()}
	case SchedSLO:
		return sloPolicy{}
	}
	panic(fmt.Sprintf("serve: unknown scheduling policy %q", c.Sched))
}

// schedMetrics reports whether the run populates the scheduling
// telemetry (StallTime, prefill-delay percentiles) in Result. Gated on
// an explicit policy so legacy Results — goldens included — stay
// byte-identical under the default configuration.
func (c Config) schedMetrics() bool { return c.Sched != "" }

// allocPrefill grants this step's prefill token slices in batch
// (admission) order under a shared budget: the oldest prefilling member
// drains first, the next takes what is left. It writes each prefilling
// member's slice field (0 = resident but idle this step) and returns
// how many members prefill this step, how many decode, and the longest
// granted slice's duration. A positive budget always grants the oldest
// prefiller at least one token, so a batch with prefill work can never
// stall; slices never exceed a member's remaining tokens, so tokens are
// never double-counted.
func allocPrefill(batch []*member, budget int) (prefillers, decoders int, longest float64) {
	left := budget
	for _, m := range batch {
		if m.decoding {
			decoders++
			continue
		}
		m.slice = 0
		if left <= 0 {
			continue
		}
		grant := m.prefTotal - m.prefDone
		if grant > left {
			grant = left
		}
		m.slice = grant
		left -= grant
		prefillers++
		if t := float64(grant) * m.perTok; t > longest {
			longest = t
		}
	}
	return prefillers, decoders, longest
}
