package serve

import (
	"reflect"
	"testing"

	"repro/internal/baselines"
)

// TestReplicasSustainHigherRate is the scaling acceptance check: under
// the CacheBlend scheme, 4 replicas must sustain a strictly higher
// saturation rate than 1, and at a rate that saturates a single replica
// the 4-replica cluster must keep TTFT bounded.
func TestReplicasSustainHigherRate(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.MaxBatch = 4

	cfg.Replicas = 1
	sat1 := SaturationRate(cfg, 11)
	cfg.Replicas = 4
	sat4 := SaturationRate(cfg, 11)
	if sat4 <= sat1 {
		t.Fatalf("4 replicas saturate at %.2f req/s, not above 1 replica's %.2f", sat4, sat1)
	}
	if sat4 < 2*sat1 {
		t.Fatalf("4 replicas should at least double capacity: %.2f vs %.2f", sat4, sat1)
	}

	// Sweep a rate 1.5× past the single-replica saturation point: the
	// single replica drowns in queueing delay, the 4-replica cluster
	// absorbs it.
	rate := 1.5 * sat1
	cfg.Replicas = 1
	r1 := RateSweep(cfg, []float64{rate}, 600, 150, 11)[0]
	cfg.Replicas = 4
	r4 := RateSweep(cfg, []float64{rate}, 600, 150, 11)[0]
	if r4.MeanTTFT >= r1.MeanTTFT/2 {
		t.Fatalf("4 replicas at %.2f req/s: ttft %.3f should be far below 1 replica's %.3f",
			rate, r4.MeanTTFT, r1.MeanTTFT)
	}
	if r4.Throughput <= r1.Throughput {
		t.Fatalf("4-replica throughput %.2f not above 1-replica %.2f", r4.Throughput, r1.Throughput)
	}
}

// TestDeterministicResults asserts bit-identical Results — all fields,
// histograms and per-replica metrics included — for two runs with the
// same seed, the property the virtual-clock scheduler exists to provide.
func TestDeterministicResults(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.Replicas = 4
	cfg.MaxBatch = 4
	cfg.StoreCapacity = int64(64) * cfg.Spec.KVBytes(cfg.ChunkTokens)
	a := Run(cfg, 0.9, 500, 100, 99)
	b := Run(cfg, 0.9, 500, 100, 99)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c := Run(cfg, 0.9, 500, 100, 100)
	if reflect.DeepEqual(a.MeanTTFT, c.MeanTTFT) && reflect.DeepEqual(a.BatchSizes, c.BatchSizes) {
		t.Fatal("different seeds produced identical runs — seed is ignored")
	}
}

// TestContinuousBatchingJoinsUnderLoad checks the join side: with the
// queue backed up, replicas must fill batches past size 1; at a trickle
// rate every step must run solo.
func TestContinuousBatchingJoinsUnderLoad(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.MaxBatch = 4

	overloaded := Run(cfg, 20, 400, 100, 8)
	if overloaded.MeanBatch <= 1.5 {
		t.Fatalf("overloaded replica should batch: mean batch %.2f, sizes %v",
			overloaded.MeanBatch, overloaded.BatchSizes)
	}
	if overloaded.BatchSizes[cfg.MaxBatch] == 0 {
		t.Fatalf("never reached the batch cap %d: %v", cfg.MaxBatch, overloaded.BatchSizes)
	}
	if overloaded.MeanQueueDepth <= 1 {
		t.Fatalf("overloaded queue depth %.2f should exceed 1", overloaded.MeanQueueDepth)
	}

	idle := Run(cfg, 0.01, 200, 50, 8)
	for size := range idle.BatchSizes {
		if size != 1 {
			t.Fatalf("trickle load ran a batch of %d: %v", size, idle.BatchSizes)
		}
	}
}

// TestBatchingRaisesThroughput: same offered overload, bigger batch cap ⇒
// more completed requests per second (the amortisation that makes
// continuous batching worth having).
func TestBatchingRaisesThroughput(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.MaxBatch = 1
	solo := Run(cfg, 10, 400, 100, 9)
	cfg.MaxBatch = 8
	batched := Run(cfg, 10, 400, 100, 9)
	if batched.Throughput <= solo.Throughput {
		t.Fatalf("batch cap 8 throughput %.2f not above unbatched %.2f",
			batched.Throughput, solo.Throughput)
	}
}

// TestReplicaFairness: with the queue never empty, FIFO wakeups must keep
// every replica busy — no worker starves.
func TestReplicaFairness(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.Replicas = 4
	res := Run(cfg, 40, 600, 150, 10) // well past 4-replica saturation
	if len(res.ReplicaUtil) != 4 {
		t.Fatalf("want 4 utilization samples, got %v", res.ReplicaUtil)
	}
	lo, hi := 1.0, 0.0
	for i, u := range res.ReplicaUtil {
		if u < 0.7 {
			t.Fatalf("replica %d utilization %.2f — starved (all: %v)", i, u, res.ReplicaUtil)
		}
		if u > 1 {
			t.Fatalf("replica %d utilization %.2f above 1", i, u)
		}
		if u < lo {
			lo = u
		}
		if u > hi {
			hi = u
		}
	}
	if hi-lo > 0.1 {
		t.Fatalf("replica utilization spread %.2f too wide for FIFO admission: %v", hi-lo, res.ReplicaUtil)
	}
}

// TestRuntimeMetricsPopulated sanity-checks the new observability fields.
func TestRuntimeMetricsPopulated(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.Replicas = 2
	cfg.MaxBatch = 4
	res := Run(cfg, 2, 400, 100, 12)
	if res.Replicas != 2 {
		t.Fatalf("Replicas = %d", res.Replicas)
	}
	if res.MeanBatch < 1 {
		t.Fatalf("MeanBatch %.2f below 1", res.MeanBatch)
	}
	if res.MeanQueueDepth < 0 {
		t.Fatalf("MeanQueueDepth %.2f negative", res.MeanQueueDepth)
	}
	if len(res.BatchSizes) == 0 {
		t.Fatal("BatchSizes empty")
	}
	if res.Requests != 300 {
		t.Fatalf("Requests = %d, want 300", res.Requests)
	}
}

// TestTinyCapacityStillCaches: sharding must clamp so a bounded store
// holding just one context still caches chunks instead of splitting into
// shards too small to accept a single Put.
func TestTinyCapacityStillCaches(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.Replicas = 4 // defaults to 8 shards, > chunks-per-context
	cfg.StoreCapacity = cfg.Spec.KVBytes(cfg.ChunksPerRequest * cfg.ChunkTokens)
	res := Run(cfg, 0.5, 400, 100, 13)
	if res.HitRate <= 0 {
		t.Fatalf("one-context store served 0%% hits — shard slices too small for a chunk")
	}
}

// TestSingleReplicaUnbatchedMatchesFCFS: with one replica and no
// batching, the runtime must behave like the original single-server FCFS
// simulator — service times queue back to back, TTFT = wait + service.
func TestSingleReplicaUnbatchedMatchesFCFS(t *testing.T) {
	cfg := baseConfig(baselines.FullRecompute)
	// Deterministic service time S for full recompute (store-independent).
	S := cfg.Spec.FullPrefillTTFT(cfg.ChunksPerRequest*cfg.ChunkTokens + cfg.QueryTokens)
	res := Run(cfg, 1000, 50, 0, 3) // effectively simultaneous arrivals
	// Request i completes ≈ (i+1)×S after t≈0, so mean TTFT ≈ S×(n+1)/2.
	wantMean := S * float64(50+1) / 2
	if res.MeanTTFT < 0.9*wantMean || res.MeanTTFT > 1.1*wantMean {
		t.Fatalf("FCFS backlog mean TTFT %.3f, want ≈%.3f", res.MeanTTFT, wantMean)
	}
}
