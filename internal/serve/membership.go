// The membership-event layer: replica failure and scale-out for the
// routed cluster. Production node sets churn — a node dies mid-run, a
// fresh one joins under load — and the router item's two open follow-ups
// (ROADMAP) are exactly those transients: on a kill, the dead node's
// queued work must re-route to survivors and their caches must absorb
// the orphaned traffic (the re-warm transient); on a join, the new node
// starts cold and the router must migrate tenants onto it without
// thrashing the donors' tiers. Events are applied by the same clock
// process that dispatches arrivals, so a run with events is still a pure
// function of (config, stream) — membership churn is part of the input,
// not a source of nondeterminism.
package serve

import (
	"fmt"

	"repro/internal/kvstore"
	"repro/internal/sim"
)

// recoveryWindow is the TTFT-averaging window RecoveryTime is measured
// over: post-event first-token samples are bucketed into 1-second spans
// and the cluster counts as recovered at the end of the first span whose
// mean TTFT is back within recoveryBand of the pre-event mean.
const (
	recoveryWindow = 1.0
	recoveryBand   = 1.2
)

// MembershipEvent is one scheduled change to the replica set. Exactly
// one of Kill/Join is meaningful per event: Join > 0 adds that many
// fresh replicas (Kill must be 0), Join == 0 kills replica index Kill.
// Events fire in order at their virtual times; an event tying an
// arrival's timestamp applies before the arrival routes.
type MembershipEvent struct {
	// At is the virtual time (seconds) the event fires. Must be positive
	// and non-decreasing across the event list.
	At float64
	// Kill names the replica (node) index to fail. The index must be
	// live when the event fires, and the last live replica cannot be
	// killed. Under the routed policies the node goes dark: its queued
	// requests re-route to survivors, its vnodes leave the hash ring,
	// its loader stops and its in-flight transfers are drained. Under
	// the shared topology only the worker dies — the store is the
	// cluster's, so a kill is pure capacity loss.
	Kill int
	// Join is how many fresh replicas join (0 = this is a kill event).
	// A joined node starts cold: empty tiers, an empty popularity view,
	// and — under hash routing — exactly the vnodes newHashRing would
	// have given its index, so ownership moves only onto the newcomer.
	Join int
}

// hasEvents reports whether a membership-event schedule is configured.
func (c Config) hasEvents() bool { return len(c.Events) > 0 }

// validateEvents is the Config.Validate slice for the membership
// schedule: it replays the event list against a static model of the
// replica set so impossible schedules (killing a dead or unknown node,
// killing the last survivor) fail before the simulation starts.
func (c Config) validateEvents() error {
	if !c.hasEvents() {
		return nil
	}
	n := c.replicas()
	dead := make([]bool, n)
	alive := n
	prev := 0.0
	for i, ev := range c.Events {
		if ev.At <= 0 {
			return fmt.Errorf("membership event %d: time %v: must be positive", i, ev.At)
		}
		if ev.At < prev {
			return fmt.Errorf("membership event %d at t=%v: events must be time-ordered (previous at t=%v)", i, ev.At, prev)
		}
		prev = ev.At
		switch {
		case ev.Join < 0:
			return fmt.Errorf("membership event %d: join %d: negative", i, ev.Join)
		case ev.Join > 0:
			if ev.Kill != 0 {
				return fmt.Errorf("membership event %d: one of kill/join per event (got kill=%d join=%d)", i, ev.Kill, ev.Join)
			}
			n += ev.Join
			alive += ev.Join
			dead = append(dead, make([]bool, ev.Join)...)
		default:
			if ev.Kill < 0 || ev.Kill >= n {
				return fmt.Errorf("membership event %d: kill %d: no such replica (cluster has %d)", i, ev.Kill, n)
			}
			if dead[ev.Kill] {
				return fmt.Errorf("membership event %d: kill %d: replica already dead", i, ev.Kill)
			}
			dead[ev.Kill] = true
			if alive--; alive == 0 {
				return fmt.Errorf("membership event %d: kill %d would kill the last live replica", i, ev.Kill)
			}
		}
	}
	return nil
}

// applyEvent fires one membership event at the control process's current
// virtual time.
func (c *cluster) applyEvent(p *sim.Proc, ev MembershipEvent) {
	if ev.Join > 0 {
		for i := 0; i < ev.Join; i++ {
			c.join()
		}
		return
	}
	c.kill(ev.Kill, p.Now())
}

// kill fails replica k. Routed topologies lose the whole node: queued
// requests drain back through route (keeping their original arrivals, so
// the failover cost shows up as queueing delay, not dropped samples),
// the node's vnodes leave the hash ring, its admission and prefetch
// queues close (the worker and loader exit once their current work
// retires) and its in-flight transfers drain. The shared topology loses
// only the worker — the store belongs to the cluster.
func (c *cluster) kill(k int, now float64) {
	c.failovers++
	if c.firstKill < 0 {
		c.firstKill = now
	}
	c.dead[k] = true
	if c.ring != nil {
		c.ring.remove(k)
	}
	if !c.isRouted {
		return
	}
	q := c.queues[k]
	for {
		req, ok := q.TryPop()
		if !ok {
			break
		}
		c.inflight[k]--
		c.reroute(req, now)
	}
	q.Close()
	if c.pfQueues != nil {
		pq := c.pfQueues[k]
		for {
			if _, ok := pq.TryPop(); !ok {
				break
			}
		}
		c.predPend[k] = 0
		pq.Close()
		c.stores[k].Drain()
	}
}

// reroute sends one request orphaned by a kill back through the router.
// The surviving target also gets a prefetch job for it — the re-warm
// work the ReWarmStall telemetry measures.
func (c *cluster) reroute(req request, now float64) {
	c.reroutedN++
	c.rerouted[req.idx] = true
	t := c.route(req, now)
	c.inflight[t]++
	c.queues[t].Push(req)
	if c.pfQueues != nil {
		c.pfQueues[t].Push(prefetchJob{req: req.idx, ids: req.ids})
	}
}

// join adds one fresh replica at the current virtual time. Under the
// routed policies the newcomer is a full cold node — empty tier stack,
// empty popularity view, its own queue and loader, and its ring vnodes;
// under the shared topology it is one more worker on the shared queue.
// Spawning from the running control process is legal: clock.Go schedules
// the new processes at the current instant.
func (c *cluster) join() {
	r := len(c.busy)
	c.busy = append(c.busy, 0)
	c.dead = append(c.dead, false)
	if c.replicaReqs != nil {
		c.replicaReqs = append(c.replicaReqs, 0)
	}
	if c.isRouted {
		c.queues = append(c.queues, sim.NewQueue[request](c.clock))
		c.stores = append(c.stores, kvstore.MustTiered(c.buildTiers(), kvstore.LRU))
		c.inflight = append(c.inflight, 0)
		// Pre-join arrivals never saw this queue, so its depth sum starts
		// at zero — QueueSkew averages over the full measured window, the
		// cold start included.
		c.depthSums = append(c.depthSums, 0)
		if c.pops != nil {
			c.pops = append(c.pops, kvstore.NewPopularity(popHalflife, popMaxEntries))
		}
		if c.pfQueues != nil {
			c.pfQueues = append(c.pfQueues, sim.NewQueue[prefetchJob](c.clock))
			c.predPend = append(c.predPend, 0)
		}
		if c.ring != nil {
			c.ring.add(r)
		}
	}
	c.clock.Go(fmt.Sprintf("replica-%d", r), func(p *sim.Proc) {
		c.replica(p, r)
	})
	if c.pfQueues != nil {
		c.clock.Go(fmt.Sprintf("loader-%d", r), func(p *sim.Proc) {
			c.loader(p, r)
		})
	}
}

// recoveryTime measures the TTFT transient after the first kill: the
// time from the event until the first recoveryWindow-wide span of
// first-token samples whose mean TTFT is back within recoveryBand of
// the pre-event mean. A run that never gets back within the band (or
// has no pre-event baseline) reports the full remaining horizon —
// recovery never observed.
func (c *cluster) recoveryTime(end float64) float64 {
	if c.firstKill < 0 {
		return 0
	}
	var preSum float64
	preN := 0
	for i, at := range c.ttftAt {
		if at < c.firstKill {
			preSum += c.ttfts[i]
			preN++
		}
	}
	if preN == 0 {
		return end - c.firstKill
	}
	preMean := preSum / float64(preN)
	nw := int((end-c.firstKill)/recoveryWindow) + 1
	sums := make([]float64, nw)
	counts := make([]int, nw)
	for i, at := range c.ttftAt {
		if at < c.firstKill {
			continue
		}
		w := int((at - c.firstKill) / recoveryWindow)
		sums[w] += c.ttfts[i]
		counts[w]++
	}
	for w := range sums {
		if counts[w] == 0 {
			continue
		}
		if sums[w]/float64(counts[w]) <= recoveryBand*preMean {
			return float64(w+1) * recoveryWindow
		}
	}
	return end - c.firstKill
}
