package serve

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/timing"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace-replay results")

// goldenCase is one replayed serving trace: fixed seed, scheme, replica
// count, placement and workload. The full Result is compared against the
// checked-in golden, so any drift in the scheduler, the store's
// eviction/promotion order, the workload generators, or the timing model
// fails loudly.
type goldenCase struct {
	Name     string
	Scheme   baselines.Scheme
	Replicas int
	Tiered   bool
	Seed     int64
	// Workload selects the arrival generator: "" is the legacy Poisson
	// path through serve.Run (those goldens predate the workload
	// subsystem and double as its seed-compatibility check), "bursty" and
	// "multi-tenant" go through RunWorkload.
	Workload string
	// Sched selects the scheduling policy ("" = the legacy default; the
	// policy cases lock the chunked-prefill and decode-priority
	// schedules and their StallTime/PrefillDelay telemetry down the way
	// the legacy cases lock FIFO).
	Sched string
	// Prefetch selects the tier-prefetch policy ("" = legacy synchronous
	// loading; "off" locks the same schedule with the prefetch telemetry
	// on, the active policies lock the loader processes' transfer
	// schedules).
	Prefetch string
	// Router selects the replica-routing policy ("" = legacy shared
	// store; the routed cases lock the ring ownership and affinity-score
	// schedules plus the skew/duplication telemetry).
	Router string
	// Failover adds a membership schedule — kill one replica at ~40% of
	// the trace, join a cold one at ~70% — locking the drain/re-route
	// order and the failover telemetry (Failovers, ReroutedRequests,
	// ReWarmStall, RecoveryTime).
	Failover bool
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, scheme := range []baselines.Scheme{baselines.CacheBlend, baselines.PrefixCaching} {
		for _, replicas := range []int{1, 2, 4} {
			for _, tiered := range []bool{false, true} {
				for _, seed := range []int64{1, 7} {
					name := string(scheme) + "/r" + strconv.Itoa(replicas) + "/"
					if tiered {
						name += "tiered"
					} else {
						name += "flat"
					}
					name += "/seed" + strconv.FormatInt(seed, 10)
					cases = append(cases, goldenCase{Name: name, Scheme: scheme,
						Replicas: replicas, Tiered: tiered, Seed: seed})
				}
			}
		}
	}
	// Workload-subsystem cases: bursty on/off, multi-tenant mixes and
	// decode-enabled (two-phase prefill+decode) runs locked the same way.
	for _, wl := range []string{"bursty", "multi-tenant", "decode", "decode-tenants"} {
		for _, tiered := range []bool{false, true} {
			for _, seed := range []int64{1, 7} {
				name := "cacheblend/r2/"
				if tiered {
					name += "tiered"
				} else {
					name += "flat"
				}
				name += "/" + wl + "/seed" + strconv.FormatInt(seed, 10)
				cases = append(cases, goldenCase{Name: name, Scheme: baselines.CacheBlend,
					Replicas: 2, Tiered: tiered, Seed: seed, Workload: wl})
			}
		}
	}
	// Scheduling-policy cases on the decode workload (mixed batches are
	// where the policies differ): explicit fifo locks the scheduling
	// telemetry over the legacy schedule, chunked-prefill locks the
	// budgeted token-granularity stepping, decode-priority the deferred
	// admission with its aging bound.
	for _, sched := range []string{SchedFIFO, SchedChunkedPrefill, SchedDecodePriority} {
		for _, tiered := range []bool{false, true} {
			for _, seed := range []int64{1, 7} {
				name := "cacheblend/r2/"
				if tiered {
					name += "tiered"
				} else {
					name += "flat"
				}
				name += "/decode/" + sched + "/seed" + strconv.FormatInt(seed, 10)
				cases = append(cases, goldenCase{Name: name, Scheme: baselines.CacheBlend,
					Replicas: 2, Tiered: tiered, Seed: seed, Workload: "decode", Sched: sched})
			}
		}
	}
	// Prefetch cases on bursty tiered traffic with popularity drift —
	// queueing delay is the overlap the loaders exploit, drift is what
	// the predictive policy's decayed popularity ranking must follow.
	for _, pf := range []string{PrefetchOff, PrefetchOnEnqueue, PrefetchPredictive} {
		for _, seed := range []int64{1, 7} {
			name := "cacheblend/r2/tiered/bursty-drift/" + pf + "/seed" + strconv.FormatInt(seed, 10)
			cases = append(cases, goldenCase{Name: name, Scheme: baselines.CacheBlend,
				Replicas: 2, Tiered: true, Seed: seed, Workload: "bursty-drift", Prefetch: pf})
		}
	}
	// Router cases on the multi-tenant mix over tiered placement — the
	// workload whose per-tenant corpora the routed policies partition.
	// shared locks the telemetry over the legacy schedule; hash locks the
	// ring ownership, affinity the score/touch schedule, both with their
	// skew and duplication accounting.
	for _, router := range []string{RouterShared, RouterHash, RouterAffinity} {
		for _, seed := range []int64{1, 7} {
			name := "cacheblend/r4/tiered/multi-tenant/router-" + router + "/seed" + strconv.FormatInt(seed, 10)
			cases = append(cases, goldenCase{Name: name, Scheme: baselines.CacheBlend,
				Replicas: 4, Tiered: true, Seed: seed, Workload: "multi-tenant", Router: router})
		}
	}
	// Failover cases: the router cases re-run under a membership schedule
	// (kill + cold join), locking the queue-drain order, the ring surgery
	// and the re-warm/recovery accounting per policy.
	for _, router := range []string{RouterShared, RouterHash, RouterAffinity} {
		for _, seed := range []int64{1, 7} {
			name := "cacheblend/r4/tiered/multi-tenant/failover-" + router + "/seed" + strconv.FormatInt(seed, 10)
			cases = append(cases, goldenCase{Name: name, Scheme: baselines.CacheBlend,
				Replicas: 4, Tiered: true, Seed: seed, Workload: "multi-tenant", Router: router,
				Failover: true})
		}
	}
	return cases
}

// run executes the case: legacy cases through serve.Run, workload cases
// through RunWorkload.
func (gc goldenCase) run(t *testing.T) Result {
	t.Helper()
	cfg := gc.config()
	const rate, n, warmup = 0.5, 150, 50
	chunks := workload.Chunks{Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest, Skew: cfg.Skew}
	var w workload.Workload
	switch gc.Workload {
	case "":
		return Run(cfg, rate, n, warmup, gc.Seed)
	case "bursty":
		w = workload.Bursty{Rate: rate, Burst: 8, Chunks: chunks}
	case "bursty-drift":
		// Burstier than the plain bursty case: the prefetch policies only
		// differ when arrivals actually queue.
		drifting := chunks
		drifting.DriftPeriod = 60
		w = workload.Bursty{Rate: rate, Burst: 24, Chunks: drifting}
	case "multi-tenant":
		w = workload.TenantMix(3, rate, chunks, 120, workload.Decode{})
	case "decode":
		w = workload.Poisson{Rate: rate, Chunks: chunks, Decode: workload.Decode{Mean: 24}}
	case "decode-tenants":
		w = workload.TenantMix(3, rate, chunks, 120, workload.Decode{Mean: 16})
	default:
		t.Fatalf("unknown golden workload %q", gc.Workload)
	}
	res, err := RunWorkload(cfg, w, n, warmup, gc.Seed)
	if err != nil {
		t.Fatalf("%s: %v", gc.Name, err)
	}
	return res
}

func (gc goldenCase) config() Config {
	cfg := Config{
		Spec:             timing.Mistral7B,
		Scheme:           gc.Scheme,
		Ratio:            0.15,
		Device:           device.NVMeSSD,
		Replicas:         gc.Replicas,
		MaxBatch:         3,
		Sched:            gc.Sched,
		PrefetchPolicy:   gc.Prefetch,
		Router:           gc.Router,
		ChunkPool:        150,
		ChunksPerRequest: 6,
		ChunkTokens:      512,
		QueryTokens:      32,
		Skew:             0.9,
	}
	if gc.Failover {
		// ~285 s trace, warmup cutoff ~115 s: both events land in the
		// measured window.
		cfg.Events = []MembershipEvent{{At: 120, Kill: 1}, {At: 200, Join: 1}}
	}
	total := int64(60) * cfg.Spec.KVBytes(cfg.ChunkTokens)
	if gc.Tiered {
		cfg.Tiers = []TierConfig{
			{Device: device.GPUHBM, Capacity: total / 6},
			{Device: device.CPURAM, Capacity: total / 3},
			{Device: device.NVMeSSD, Capacity: total - total/6 - total/3},
		}
	} else {
		cfg.StoreCapacity = total
	}
	return cfg
}

// TestGoldenTraceReplay replays fixed serving traces across schemes ×
// replica counts × tiered/flat placement and compares every Result field
// against the checked-in goldens. Regenerate intentionally with
//
//	go test ./internal/serve -run TestGoldenTraceReplay -update
//
// and review the diff: a golden change IS a behaviour change.
func TestGoldenTraceReplay(t *testing.T) {
	results := map[string]Result{}
	for _, gc := range goldenCases() {
		results[gc.Name] = gc.run(t)
	}
	path := filepath.Join("testdata", "golden_trace_replay.json")
	if *updateGolden {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", path, len(results))
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldens (run with -update once): %v", err)
	}
	var want map[string]Result
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(results) {
		t.Fatalf("golden has %d cases, run produced %d — regenerate with -update", len(want), len(results))
	}
	for name, got := range results {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden entry — regenerate with -update", name)
			continue
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(w)
		if string(gj) != string(wj) {
			t.Errorf("%s drifted:\n got %s\nwant %s", name, gj, wj)
		}
	}
}

// TestGoldenReplayDeterministic: two in-process replays of the same case
// must agree bit-for-bit — the property the golden file relies on — for
// the legacy Poisson path and for each workload-generated path.
func TestGoldenReplayDeterministic(t *testing.T) {
	var cases []goldenCase
	for _, wl := range []string{"", "bursty", "multi-tenant", "decode", "decode-tenants"} {
		cases = append(cases, goldenCase{Name: "det/" + wl, Scheme: baselines.CacheBlend,
			Replicas: 4, Tiered: true, Seed: 3, Workload: wl})
	}
	for _, sched := range []string{SchedChunkedPrefill, SchedDecodePriority} {
		cases = append(cases, goldenCase{Name: "det/" + sched, Scheme: baselines.CacheBlend,
			Replicas: 4, Tiered: true, Seed: 3, Workload: "decode", Sched: sched})
	}
	for _, pf := range []string{PrefetchOff, PrefetchOnEnqueue, PrefetchPredictive} {
		cases = append(cases, goldenCase{Name: "det/prefetch-" + pf, Scheme: baselines.CacheBlend,
			Replicas: 4, Tiered: true, Seed: 3, Workload: "bursty-drift", Prefetch: pf})
	}
	for _, gc := range cases {
		a, _ := json.Marshal(gc.run(t))
		b, _ := json.Marshal(gc.run(t))
		if string(a) != string(b) {
			t.Fatalf("%s replay not deterministic:\n%s\n%s", gc.Name, a, b)
		}
	}
}
