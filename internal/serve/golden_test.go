package serve

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/timing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace-replay results")

// goldenCase is one replayed serving trace: fixed seed, scheme, replica
// count and placement. The full Result is compared against the
// checked-in golden, so any drift in the scheduler, the store's
// eviction/promotion order, or the timing model fails loudly.
type goldenCase struct {
	Name     string
	Scheme   baselines.Scheme
	Replicas int
	Tiered   bool
	Seed     int64
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, scheme := range []baselines.Scheme{baselines.CacheBlend, baselines.PrefixCaching} {
		for _, replicas := range []int{1, 2, 4} {
			for _, tiered := range []bool{false, true} {
				for _, seed := range []int64{1, 7} {
					name := string(scheme) + "/r" + strconv.Itoa(replicas) + "/"
					if tiered {
						name += "tiered"
					} else {
						name += "flat"
					}
					name += "/seed" + strconv.FormatInt(seed, 10)
					cases = append(cases, goldenCase{name, scheme, replicas, tiered, seed})
				}
			}
		}
	}
	return cases
}

func (gc goldenCase) config() Config {
	cfg := Config{
		Spec:             timing.Mistral7B,
		Scheme:           gc.Scheme,
		Ratio:            0.15,
		Device:           device.NVMeSSD,
		Replicas:         gc.Replicas,
		MaxBatch:         3,
		ChunkPool:        150,
		ChunksPerRequest: 6,
		ChunkTokens:      512,
		QueryTokens:      32,
		Skew:             0.9,
	}
	total := int64(60) * cfg.Spec.KVBytes(cfg.ChunkTokens)
	if gc.Tiered {
		cfg.Tiers = []TierConfig{
			{Device: device.GPUHBM, Capacity: total / 6},
			{Device: device.CPURAM, Capacity: total / 3},
			{Device: device.NVMeSSD, Capacity: total - total/6 - total/3},
		}
	} else {
		cfg.StoreCapacity = total
	}
	return cfg
}

// TestGoldenTraceReplay replays fixed serving traces across schemes ×
// replica counts × tiered/flat placement and compares every Result field
// against the checked-in goldens. Regenerate intentionally with
//
//	go test ./internal/serve -run TestGoldenTraceReplay -update
//
// and review the diff: a golden change IS a behaviour change.
func TestGoldenTraceReplay(t *testing.T) {
	results := map[string]Result{}
	for _, gc := range goldenCases() {
		results[gc.Name] = Run(gc.config(), 0.5, 150, 50, gc.Seed)
	}
	path := filepath.Join("testdata", "golden_trace_replay.json")
	if *updateGolden {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", path, len(results))
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldens (run with -update once): %v", err)
	}
	var want map[string]Result
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(results) {
		t.Fatalf("golden has %d cases, run produced %d — regenerate with -update", len(want), len(results))
	}
	for name, got := range results {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden entry — regenerate with -update", name)
			continue
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(w)
		if string(gj) != string(wj) {
			t.Errorf("%s drifted:\n got %s\nwant %s", name, gj, wj)
		}
	}
}

// TestGoldenReplayDeterministic: two in-process replays of the same trace
// must agree bit-for-bit — the property the golden file relies on.
func TestGoldenReplayDeterministic(t *testing.T) {
	gc := goldenCase{"det", baselines.CacheBlend, 4, true, 3}
	a, _ := json.Marshal(Run(gc.config(), 0.5, 150, 50, gc.Seed))
	b, _ := json.Marshal(Run(gc.config(), 0.5, 150, 50, gc.Seed))
	if string(a) != string(b) {
		t.Fatalf("replay not deterministic:\n%s\n%s", a, b)
	}
}
