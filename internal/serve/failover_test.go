package serve

import (
	"encoding/json"
	"testing"

	"repro/internal/chunk"
	"repro/internal/sim"
	"repro/internal/workload"
)

// failoverEvents is the canonical churn schedule for these tests: kill
// node 1 mid-run, join a cold node later. The failoverMix stream spans
// ~19 s for 300 requests, so both events land well inside the measured
// window. The rate is chosen hot enough that queues carry a backlog —
// a kill against an idle cluster has nothing to re-route, and a cold
// joined node only attracts traffic once the in-flight penalty on the
// incumbents outweighs their resident-chunk affinity.
func failoverEvents() []MembershipEvent {
	return []MembershipEvent{{At: 8, Kill: 1}, {At: 13, Join: 1}}
}

func failoverMix() workload.Workload { return routerTestMix(4.0) }

func TestMembershipEventValidate(t *testing.T) {
	cases := []struct {
		name   string
		events []MembershipEvent
	}{
		{"non-positive time", []MembershipEvent{{At: 0, Kill: 1}}},
		{"out of order", []MembershipEvent{{At: 20, Kill: 1}, {At: 10, Kill: 2}}},
		{"kill unknown replica", []MembershipEvent{{At: 5, Kill: 9}}},
		{"kill negative replica", []MembershipEvent{{At: 5, Kill: -1}}},
		{"double kill", []MembershipEvent{{At: 5, Kill: 1}, {At: 6, Kill: 1}}},
		{"negative join", []MembershipEvent{{At: 5, Join: -2}}},
		{"kill and join in one event", []MembershipEvent{{At: 5, Kill: 1, Join: 1}}},
		{"kill the last survivor", []MembershipEvent{
			{At: 1, Kill: 0}, {At: 2, Kill: 1}, {At: 3, Kill: 2}, {At: 4, Kill: 3}}},
	}
	for _, tc := range cases {
		cfg := routerTestConfig(RouterHash)
		cfg.Events = tc.events
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// A joined replica is killable, and a kill freeing the count keeps
	// later kills of other nodes legal.
	cfg := routerTestConfig(RouterAffinity)
	cfg.Events = []MembershipEvent{{At: 1, Join: 2}, {At: 2, Kill: 5}, {At: 3, Kill: 0}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

// TestFailoverKillJoinCompletes: a kill mid-run must lose no requests —
// the dead node's queue drains back through the router with original
// arrivals intact — and the telemetry must see the event on every
// policy.
func TestFailoverKillJoinCompletes(t *testing.T) {
	w := failoverMix()
	for _, router := range []string{RouterShared, RouterHash, RouterAffinity} {
		cfg := routerTestConfig(router)
		base, err := RunWorkload(cfg, w, 300, 50, 7)
		if err != nil {
			t.Fatalf("%s baseline: %v", router, err)
		}
		cfg.Events = failoverEvents()
		res, err := RunWorkload(cfg, w, 300, 50, 7)
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		if res.Failovers != 1 {
			t.Errorf("%s: Failovers = %d, want 1", router, res.Failovers)
		}
		if res.Requests != base.Requests {
			t.Errorf("%s: completed %d measured requests with churn, baseline %d — failover dropped samples",
				router, res.Requests, base.Requests)
		}
		if res.RecoveryTime <= 0 {
			t.Errorf("%s: RecoveryTime = %v, want > 0 after a kill", router, res.RecoveryTime)
		}
		if res.ReWarmStall < 0 {
			t.Errorf("%s: negative ReWarmStall %v", router, res.ReWarmStall)
		}
		if cfg.routed() {
			if res.ReroutedRequests <= 0 {
				t.Errorf("%s: ReroutedRequests = %d, want > 0 (the kill drains a backlogged queue)",
					router, res.ReroutedRequests)
			}
			if res.ReWarmStall <= 0 {
				t.Errorf("%s: ReWarmStall = %v, want > 0 for re-routed traffic hitting cold survivors",
					router, res.ReWarmStall)
			}
			// The joined node exists and served something.
			if len(res.ReplicaHitRates) != 5 {
				t.Errorf("%s: %d replica stores after a join, want 5", router, len(res.ReplicaHitRates))
			}
			if len(res.ReplicaRequests) != 5 || res.ReplicaRequests[4] == 0 {
				t.Errorf("%s: joined replica admitted %v requests, want some", router, res.ReplicaRequests)
			}
		}
		// The event fields must round-trip (omitempty drops them only when
		// zero) and legacy runs must omit them entirely.
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("%s: marshal: %v", router, err)
		}
		var back Result
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", router, err)
		}
		if back.Failovers != res.Failovers || back.ReroutedRequests != res.ReroutedRequests {
			t.Errorf("%s: event telemetry did not round-trip", router)
		}
		baseBlob, _ := json.Marshal(base)
		for _, field := range []string{"Failovers", "ReroutedRequests", "ReWarmStall", "RecoveryTime"} {
			if jsonHasField(baseBlob, field) {
				t.Errorf("%s: event-free Result serialises %s — legacy goldens would drift", router, field)
			}
		}
	}
}

func jsonHasField(blob []byte, field string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(blob, &m); err != nil {
		return false
	}
	_, ok := m[field]
	return ok
}

// TestFailoverDeterminism: same seed + same event list ⇒ byte-identical
// Result JSON, for every router policy. Membership churn is input, not
// nondeterminism.
func TestFailoverDeterminism(t *testing.T) {
	w := failoverMix()
	for _, router := range []string{RouterShared, RouterHash, RouterAffinity} {
		cfg := routerTestConfig(router)
		cfg.Events = failoverEvents()
		a, err := RunWorkload(cfg, w, 250, 40, 11)
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		b, err := RunWorkload(cfg, w, 250, 40, 11)
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("%s: failover run not deterministic:\n%s\n%s", router, aj, bj)
		}
	}
}

// TestFailoverRaceStress runs concurrent routed simulations containing
// kills and joins — the -race companion of the determinism test, catching
// any shared state the membership paths touch across cluster instances.
func TestFailoverRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("race stress in full mode only")
	}
	w := failoverMix()
	routers := []string{RouterShared, RouterHash, RouterAffinity}
	done := make(chan error, 2*len(routers))
	for i := 0; i < 2; i++ {
		for _, router := range routers {
			cfg := routerTestConfig(router)
			cfg.PrefetchPolicy = PrefetchOnEnqueue
			cfg.Events = failoverEvents()
			go func() {
				_, err := RunWorkload(cfg, w, 200, 30, 5)
				done <- err
			}()
		}
	}
	for i := 0; i < cap(done); i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestFailoverMarshalZeroTrafficReplica: a replica with zero measured
// traffic (killed almost immediately; another joined after the last
// arrival) must still produce a marshalable Result — NaN in the
// per-replica telemetry makes json.Marshal fail the whole run.
func TestFailoverMarshalZeroTrafficReplica(t *testing.T) {
	w := routerTestMix(2.0)
	for _, router := range []string{RouterHash, RouterAffinity} {
		cfg := routerTestConfig(router)
		cfg.Events = []MembershipEvent{{At: 0.001, Kill: 3}, {At: 10000, Join: 1}}
		res, err := RunWorkload(cfg, w, 120, 20, 2)
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		if _, err := json.Marshal(res); err != nil {
			t.Fatalf("%s: Result with zero-traffic replicas does not marshal: %v", router, err)
		}
		if got := len(res.ReplicaHitRates); got != 5 {
			t.Errorf("%s: %d replica hit rates, want 5 (dead and cold nodes included)", router, got)
		}
	}
}

// TestRouteHashChunklessLeastLoaded pins the satellite fix: a chunkless
// request must go to the least-loaded live node. The old fallback,
// req.idx % len(c.queues), ignored load entirely and — once membership
// events exist — could index a dead node and panic pushing to its closed
// queue.
func TestRouteHashChunklessLeastLoaded(t *testing.T) {
	cfg := routerTestConfig(RouterHash)
	c := newCluster(cfg, nil, 0)
	c.isRouted = true
	c.clock = sim.NewClock()
	c.queues = make([]*sim.Queue[request], 4)
	for i := range c.queues {
		c.queues[i] = sim.NewQueue[request](c.clock)
	}
	c.inflight = []int{3, 1, 2, 4}
	c.dead = make([]bool, 4)
	req := request{idx: 8} // the old modulo fallback would pick node 0
	if got := c.routeHash(req); got != 1 {
		t.Fatalf("chunkless request routed to node %d, want least-loaded node 1", got)
	}
	c.dead[1] = true
	if got := c.routeHash(req); got != 2 {
		t.Fatalf("chunkless request routed to node %d after kill of 1, want node 2", got)
	}
	c.dead[0], c.dead[2] = true, true
	// Node 0 — the modulo target — is now dead; only node 3 survives.
	if got := c.routeHash(req); got != 3 {
		t.Fatalf("chunkless request routed to node %d, want sole live node 3", got)
	}
}

// TestAffinityJoinNoThrash pins the scale-out property: adding a cold
// replica under load must not increase the donors' tier-demotion
// cascades — affinity migrates tenants by attracting their future
// requests, never by churning what the donors already hold.
func TestAffinityJoinNoThrash(t *testing.T) {
	w := failoverMix()
	reqs := w.Generate(300, 3)
	run := func(events []MembershipEvent) *cluster {
		cfg := routerTestConfig(RouterAffinity)
		cfg.Events = events
		c := newCluster(cfg, reqs, 50)
		c.run()
		return c
	}
	donorDemotions := func(c *cluster) int64 {
		var n int64
		for _, s := range c.stores[:4] {
			for _, ts := range s.TierStats() {
				n += ts.Demotions
			}
		}
		return n
	}
	base := run(nil)
	joined := run([]MembershipEvent{{At: 10, Join: 1}})
	if len(joined.stores) != 5 {
		t.Fatalf("join did not add a store: %d", len(joined.stores))
	}
	if joined.replicaReqs[4] == 0 {
		t.Fatal("joined replica attracted no traffic — affinity never migrated a tenant")
	}
	baseD, joinD := donorDemotions(base), donorDemotions(joined)
	if joinD > baseD {
		t.Fatalf("join increased donor demotions %d → %d — scale-out is thrashing the donors' tiers", baseD, joinD)
	}
}

// TestHashRingRemoveAdd: removing a replica moves only the chunks it
// owned (survivors keep theirs — the failover half of the stability
// property), and re-adding it restores the original ring exactly.
func TestHashRingRemoveAdd(t *testing.T) {
	ring := newHashRing(4)
	const total = 3000
	before := make([]int, total)
	for i := range before {
		before[i] = ring.owner(chunk.Hash("ring-failover", []int{i}))
	}
	ring.remove(2)
	moved := 0
	for i := range before {
		now := ring.owner(chunk.Hash("ring-failover", []int{i}))
		if before[i] != 2 {
			if now != before[i] {
				t.Fatalf("id %d moved between survivors %d→%d on kill", i, before[i], now)
			}
			continue
		}
		if now == 2 {
			t.Fatalf("id %d still owned by the removed replica", i)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("removed replica owned nothing — ring balance is broken")
	}
	ring.add(2)
	for i := range before {
		if now := ring.owner(chunk.Hash("ring-failover", []int{i})); now != before[i] {
			t.Fatalf("id %d owner %d after remove+add, want %d — ring not restored", i, now, before[i])
		}
	}
}

// TestSharedKillCapacityLoss: under the shared topology a kill takes
// only the worker — the store survives — so the run completes with pure
// capacity loss and the dead worker stops accumulating busy time.
func TestSharedKillCapacityLoss(t *testing.T) {
	cfg := routerTestConfig(RouterShared)
	cfg.Events = []MembershipEvent{{At: 15, Kill: 1}}
	res, err := RunWorkload(cfg, routerTestMix(2.0), 300, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", res.Failovers)
	}
	if res.ReplicaUtil[1] >= res.ReplicaUtil[0] {
		t.Errorf("dead worker utilization %.2f not below survivor's %.2f",
			res.ReplicaUtil[1], res.ReplicaUtil[0])
	}
}

// TestFailoverLegacyUnrouted: events on an unrouted (legacy "" router)
// config still work — kills are worker capacity loss, joins add workers
// — so elasticity is not tied to the router feature.
func TestFailoverLegacyUnrouted(t *testing.T) {
	cfg := routerTestConfig("")
	cfg.Events = []MembershipEvent{{At: 15, Kill: 0}, {At: 20, Join: 1}}
	res, err := RunWorkload(cfg, routerTestMix(2.0), 200, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", res.Failovers)
	}
	if len(res.ReplicaUtil) != 5 {
		t.Fatalf("%d replica slots after join, want 5", len(res.ReplicaUtil))
	}
}
