package serve

import (
	"testing"

	"repro/internal/tensor"
)

// FuzzPolicyStep throws random member phase/budget mixes at one
// scheduling step — the budget allocator plus every policy's admission
// quota — and checks the invariants the replica loop's liveness rests
// on: a step with prefill work always grants at least one token (the
// batch can never stall), granted slices never exceed a member's
// remaining tokens or collectively the budget (tokens are never
// double-counted), and admission quotas stay within the batch-cap
// headroom with decode-priority's aging guarantee intact.
func FuzzPolicyStep(f *testing.F) {
	f.Add(int64(1), uint8(4), uint16(256), uint8(2))
	f.Add(int64(7), uint8(1), uint16(1), uint8(0))
	f.Add(int64(42), uint8(12), uint16(512), uint8(9))
	f.Add(int64(-3), uint8(0), uint16(64), uint8(255))

	f.Fuzz(func(t *testing.T, seed int64, n uint8, rawBudget uint16, deferred uint8) {
		g := tensor.NewRNG(seed)
		budget := int(rawBudget%1024) + 1
		size := int(n%16) + 1
		batch := make([]*member, size)
		waiting := 0 // members with prefill tokens left
		for i := range batch {
			prefTotal := 1 + g.Intn(4096)
			m := &member{
				prefTotal: prefTotal,
				prefDone:  g.Intn(prefTotal), // < prefTotal: still prefilling
				perTok:    g.Float64(),
				slice:     g.Intn(100), // stale garbage the allocator must overwrite
				decoding:  g.Float64() < 0.5,
			}
			if !m.decoding {
				waiting++
			}
			batch[i] = m
		}

		prefillers, decoders, longest := allocPrefill(batch, budget)
		if prefillers+decoders > size || decoders < 0 || prefillers < 0 {
			t.Fatalf("phase counts out of range: %d prefillers + %d decoders of %d", prefillers, decoders, size)
		}
		granted, maxSlice := 0, 0.0
		for i, m := range batch {
			if m.decoding {
				continue
			}
			if m.slice < 0 || m.slice > m.prefTotal-m.prefDone {
				t.Fatalf("member %d: slice %d outside [0, %d remaining] — tokens double-counted",
					i, m.slice, m.prefTotal-m.prefDone)
			}
			granted += m.slice
			if s := float64(m.slice) * m.perTok; s > maxSlice {
				maxSlice = s
			}
		}
		if granted > budget {
			t.Fatalf("granted %d tokens over the %d budget", granted, budget)
		}
		if waiting > 0 && granted == 0 {
			t.Fatalf("batch with %d waiting prefillers granted nothing — the step would stall", waiting)
		}
		if waiting > 0 && batch[firstPrefiller(batch)].slice == 0 {
			t.Fatal("oldest prefiller skipped: admission-order allocation broken")
		}
		if longest != maxSlice {
			t.Fatalf("longest slice %v, members say %v", longest, maxSlice)
		}

		// Every policy's quota stays inside the headroom, and
		// decode-priority admits once aged past its limit.
		headroom := g.Intn(9)
		for _, sched := range []string{"", SchedFIFO, SchedChunkedPrefill, SchedDecodePriority, SchedSLO} {
			cfg := Config{Sched: sched, StarveLimit: 0, PrefillBudget: 0}
			p := cfg.policy()
			q := p.AdmitQuota(prefillers, decoders, headroom, int(deferred))
			if q < 0 || (q > headroom && !(sched == SchedDecodePriority && q == 1)) {
				t.Fatalf("%s: quota %d outside [0, %d]", sched, q, headroom)
			}
			if sched == SchedDecodePriority && decoders > 0 && int(deferred) >= cfg.starveLimit() && q < 1 {
				t.Fatalf("decode-priority aged %d boundaries but still defers", deferred)
			}
		}
	})
}

// firstPrefiller returns the index of the oldest still-prefilling member.
func firstPrefiller(batch []*member) int {
	for i, m := range batch {
		if !m.decoding {
			return i
		}
	}
	return -1
}
