// The concurrent serving runtime: one arrival process feeds a shared
// admission queue; N replica processes pull from it and execute requests
// with continuous batching. A request runs a two-phase lifecycle. Its
// prefill is decomposed into one equal step per retrieved context chunk
// plus one for the query suffix; the last prefill step emits the first
// token (TTFT). A request with a generation budget then switches to
// per-token decode steps — each emits one token, appends its KV bytes to
// the shared store, and batches freely with other members' prefill and
// decode steps, the way vLLM-style continuous batching interleaves
// phases at iteration boundaries. Replicas admit waiting requests and
// retire finished ones only at step boundaries. The request stream
// itself — arrival times, tenants, chunk ids, decode budgets — comes
// pre-materialised from an internal/workload generator or a replayed
// trace, so the runtime never samples randomness of its own and a run is
// a pure function of (config, stream).
package serve

import (
	"fmt"
	"math"

	"repro/internal/chunk"
	"repro/internal/engine"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// request is one queued serving request.
type request struct {
	idx     int
	arrival float64
	tenant  int
	ids     []int // retrieved chunk ids, from the workload stream
	decode  int   // decode steps after the first token, from the stream
	client  int   // issuing closed-loop client (0 under open-loop streams)
}

// member is a request resident in a replica's running batch: a two-phase
// state machine (prefill steps, then decode steps once decoding is set).
// Under the legacy whole-chunk policies prefill advances one equal step
// per chunk (unit/remaining); under a budgeted (chunked-prefill) policy
// it advances at token granularity instead (prefTotal/prefDone/perTok),
// the per-step slice set by allocPrefill from the shared budget.
type member struct {
	req           request
	unit          float64 // duration of one step in the current phase
	remaining     int     // steps left in the current phase
	prefTotal     int     // prefill tokens in total (budgeted stepping)
	prefDone      int     // prefill tokens already computed
	perTok        float64 // prefill seconds per token
	slice         int     // tokens granted for the current step
	decoding      bool    // prefill finished, decode phase entered
	lastToken     float64 // virtual time the latest token was emitted
	ttft          float64 // realised TTFT (recorded only when SLOs are evaluated)
	tbtSum        float64 // summed TBT samples (ditto), for the mean-TBT target
	si            int     // index of the store the request was admitted against
	genKey        chunk.ID
	genBytes      int64          // generated-KV footprint resident in the store
	genPayload    *kvstore.Bytes // reusable boxed payload for the per-token decode-KV Put
	lookups, hits int64          // its chunk-store lookup outcome at admission
	acc           *tenantAcc     // tenant accumulator, resolved once at admission (nil unless multi-tenant and measured)
}

// tenantAcc accumulates one tenant's post-warmup service statistics.
type tenantAcc struct {
	ttfts           []float64
	tbts            []float64
	e2es            []float64
	outTokens       int64
	lookups, hits   int64
	sloDone, sloMet int64 // completions SLO-evaluated / meeting every target
}

// cluster is the state of one simulated run. The store-shaped state —
// stores, admission queues, popularity views, loader queues — is sliced
// per replica: under the routed policies (hash, affinity) every replica
// owns index r of each slice, its own node; under the shared topology the
// slices have one element every replica shares, the legacy single node.
type cluster struct {
	cfg        Config
	reqs       []request
	warmup     int
	cutoff     float64 // virtual time the warmup period ends
	clock      *sim.Clock
	queues     []*sim.Queue[request]
	stores     []*kvstore.Tiered
	chunkBytes int64
	tokenBytes int64   // generated KV bytes per decoded token
	decodeUnit float64 // unbatched per-token decode step duration
	hasDecode  bool    // some request carries a generation budget
	policy     Policy
	budget     int  // the policy's per-step prefill token budget (0 = whole-chunk)
	schedOn    bool // scheduling telemetry requested (explicit Config.Sched)
	prefetchOn bool // prefetch telemetry requested (explicit Config.PrefetchPolicy)
	routerOn   bool // router telemetry requested (explicit Config.Router)
	isRouted   bool // per-replica stores with real routing (hash/affinity)
	ring       *hashRing
	pops       []*kvstore.Popularity
	pfQueues   []*sim.Queue[prefetchJob] // loader work queues (active policies only)
	admitted   []bool                    // request idx → already admitted (loader cancellation)
	predPend   []int                     // queued predictive jobs per loader queue (dedupe)
	inflight   []int                     // requests routed to each node, not yet retired
	eventsOn   bool                      // a membership-event schedule is configured
	dead       []bool                    // replica index → killed by a membership event
	rerouted   []bool                    // request idx → re-enqueued by a kill (events only)
	failovers  int                       // kill events fired
	reroutedN  int64                     // requests drained off dead nodes and re-routed
	firstKill  float64                   // virtual time of the first kill (-1 = none yet)
	ttftAt     []float64                 // first-token timestamps matching ttfts (events only)

	// Closed-loop drive: non-nil closed means arrivals come from the
	// workload session, fed each completion at retirement, instead of a
	// pre-materialised stream.
	closed     workload.Session
	closedN    int              // the session's total request budget
	initIssues []workload.Issue // the initial wave, arrival-ordered

	// SLO state. sloSched orders admission by deadline (the slo policy);
	// sloOn populates the attainment telemetry — either alone is valid
	// (slo scheduling is always target-driven, but fifo can be measured
	// against targets too).
	sloSched          bool
	sloOn             bool
	sloTTFT, sloTBT   float64
	starve            int                     // aging bound in TTFT targets (cfg.starveLimit())
	sloCmp            func(a, b request) bool // queue pop order at the current virtual time
	riskMet, riskDone []int64                 // per-tenant running SLO outcomes (all completions)
	sloOK             int64                   // measured completions meeting every target
	sloTTFTOK         int64                   // … meeting the TTFT target
	sloTBTOK          int64                   // … meeting the TBT target
	sloOrder          []*member               // allocPrefillSLO sort scratch

	ttfts         []float64
	tbts          []float64
	e2es          []float64
	prefillDelays []float64 // arrival → batch admission, post-warmup
	stallTime     float64   // decoder-seconds lost to prefill pacing
	tierStall     float64   // prefill seconds lost to non-HBM tier reads
	reWarmStall   float64   // tier stall paid by measured re-routed requests
	outTokens     int64
	completed     int
	lastDone      float64
	busy          []float64
	batchHist     metrics.Histogram
	depthSum      float64
	depthN        int
	depthSums     []float64 // per-replica depth sums at measured arrivals (routed)
	replicaReqs   []int64   // requests each replica admitted (router telemetry)
	// post-warmup step counts by batch composition
	stepsPrefill, stepsDecode, stepsMixed int64
	multiTenant                           bool
	tenants                               []*tenantAcc // dense, indexed by tenant id; nil = never measured

	// serviceTime scratch, reused across admissions. The single-token
	// scheduler discipline means at most one admission is in flight per
	// cluster, so per-call allocation buys nothing.
	tierScratch []int
	missScratch []chunk.ID
	dupScratch  []chunk.ID
	chunkSized  kvstore.Sized    // chunkBytes boxed once for every context-chunk Put
	keyCache    map[int]chunk.ID // chunk id → store key: one SHA-256 per distinct id per run
	keyScratch  []chunk.ID       // router scoring keys (used within one route call, no park inside)
	cntScratch  []int            // router per-node owner counts, same lifetime
	memberPool  []*member        // retired members recycled into the next admission
}

// chunkKeyOf memoises chunkKey: the serving hot loop hashes each distinct
// chunk id once per run instead of once per lookup.
func (c *cluster) chunkKeyOf(id int) chunk.ID {
	if k, ok := c.keyCache[id]; ok {
		return k
	}
	if c.keyCache == nil {
		c.keyCache = make(map[int]chunk.ID, 256)
	}
	k := chunkKey(c.cfg, id)
	c.keyCache[id] = k
	return k
}

// recycle zeroes a retired member (keeping its boxed payload for reuse)
// and returns it to the pool for the next admission.
func (c *cluster) recycle(m *member) {
	pay := m.genPayload
	*m = member{}
	m.genPayload = pay
	c.memberPool = append(c.memberPool, m)
}

// qi maps a replica index to its slot in the per-replica slices: its own
// index under the routed policies, the single shared slot otherwise.
func (c *cluster) qi(r int) int {
	if c.isRouted {
		return r
	}
	return 0
}

// measured reports whether a request belongs to the measured window. One
// rule for every per-request sample — TTFT, TBT, E2E, completion,
// prefill delay, tier stall, arrival-time queue depth: a request is
// measured iff it arrives at or after the cutoff (the first post-warmup
// request's arrival), so arrivals tying the cutoff timestamp are measured
// regardless of index, and a warmup request admitted late contributes
// nothing. Interval samples (observeStep) instead credit their
// post-cutoff overlap, since a step is not owned by one request.
//
// Closed-loop runs use dispatch order instead: requests materialise one
// at a time in nondecreasing arrival order, so "the first warmup
// requests" is exactly idx < warmup, and the cutoff timestamp (set when
// the warmup-th request is issued) only drives the interval metrics.
func (c *cluster) measured(req request) bool {
	if c.closed != nil {
		return req.idx >= c.warmup
	}
	return req.arrival >= c.cutoff
}

// newCluster adopts a validated, arrival-ordered request stream.
func newCluster(cfg Config, stream []workload.Request, warmup int) *cluster {
	c := &cluster{cfg: cfg, warmup: warmup}
	c.reqs = make([]request, len(stream))
	maxTenant := 0
	for i, r := range stream {
		c.reqs[i] = request{idx: i, arrival: r.Arrival, tenant: r.Tenant,
			ids: r.Chunks, decode: r.DecodeTokens}
		if r.Tenant != 0 {
			c.multiTenant = true
		}
		if r.Tenant > maxTenant {
			maxTenant = r.Tenant
		}
		if r.DecodeTokens > 0 {
			c.hasDecode = true
		}
	}
	if c.multiTenant {
		c.tenants = make([]*tenantAcc, maxTenant+1)
	}
	// The warmup period ends when the first measured request arrives:
	// every metric — TTFT, throughput, batch sizes, queue depth, replica
	// utilization, decode telemetry — applies this one cutoff.
	if warmup < len(c.reqs) {
		c.cutoff = c.reqs[warmup].arrival
	}
	return c
}

// newClosedCluster adopts a closed-loop session: the validated initial
// wave seeds the request slice (which grows as completions trigger new
// issues, up to the session's n budget) and the warmup cutoff timestamp
// stays +Inf until the warmup-th request is actually issued.
func newClosedCluster(cfg Config, sess workload.Session, init []workload.Issue, n, warmup int) *cluster {
	c := &cluster{cfg: cfg, warmup: warmup, closed: sess, closedN: n, initIssues: init}
	c.reqs = make([]request, 0, n)
	c.cutoff = math.Inf(1)
	maxTenant := 0
	// The wave covers every client that will ever issue (a client's later
	// requests come only through its own completions), so the stream-shape
	// flags derived here are exact even though most requests don't exist
	// yet; issueReq still re-checks to stay safe against other Session
	// implementations.
	for _, iss := range init {
		if iss.Req.Tenant != 0 {
			c.multiTenant = true
		}
		if iss.Req.Tenant > maxTenant {
			maxTenant = iss.Req.Tenant
		}
		if iss.Req.DecodeTokens > 0 {
			c.hasDecode = true
		}
	}
	if c.multiTenant {
		c.tenants = make([]*tenantAcc, maxTenant+1)
	}
	return c
}

// buildTiers maps the config's storage hierarchy (or its single-device
// fallback) onto kvstore tiers. Each tier is sharded like the flat store
// was, but never so finely that a shard can't hold one chunk — a tiny
// bounded shard would silently reject every Put and serve 0% hits.
func (c *cluster) buildTiers() []kvstore.Tier {
	cfgs := c.cfg.tierConfigs()
	tiers := make([]kvstore.Tier, len(cfgs))
	for i, tc := range cfgs {
		shards := c.cfg.shards()
		if tc.Capacity > 0 {
			if maxShards := int(tc.Capacity / c.chunkBytes); maxShards < shards {
				shards = maxShards
				if shards < 1 {
					shards = 1
				}
			}
		}
		tiers[i] = kvstore.Tier{Device: tc.Device, Capacity: tc.Capacity, Shards: shards}
	}
	return tiers
}

// run executes the simulation and aggregates the Result.
func (c *cluster) run() Result {
	cfg := c.cfg

	c.chunkBytes = cfg.Spec.KVBytes(cfg.ChunkTokens)
	c.tokenBytes = cfg.Spec.KVBytesPerToken()
	c.decodeUnit = cfg.Spec.DecodeSecPerToken
	c.policy = cfg.policy()
	c.budget = c.policy.PrefillBudget()
	c.schedOn = cfg.schedMetrics()
	c.sloSched = cfg.Sched == SchedSLO
	c.sloOn = cfg.sloOn()
	c.sloTTFT, c.sloTBT = cfg.SLOTTFT, cfg.SLOTBT
	c.starve = cfg.starveLimit()
	if c.sloSched {
		// One closure for the whole run: every min-pop orders the queue at
		// the popping replica's current virtual time.
		c.sloCmp = func(a, b request) bool { return c.sloLess(a, b, c.clock.Now()) }
	}
	c.prefetchOn = cfg.prefetchOn()
	c.routerOn = cfg.routerOn()
	c.isRouted = cfg.routed()
	nodes := 1 // store-shaped state slots: one shared node, or one per replica
	if c.isRouted {
		nodes = cfg.replicas()
	}
	c.stores = make([]*kvstore.Tiered, nodes)
	for i := range c.stores {
		// Every node gets the full configured tier stack: a routed cluster
		// is N nodes' worth of hardware, the shared baseline one node's.
		c.stores[i] = kvstore.MustTiered(c.buildTiers(), kvstore.LRU)
	}
	// One deferred sweep instead of per-store defers: membership joins
	// append stores mid-run, and those must close too.
	defer func() {
		for _, s := range c.stores {
			s.Close()
		}
	}()
	if c.prefetchOn || cfg.Router == RouterAffinity {
		// One popularity estimator per node feeds predictive prefetch and
		// affinity routing alike — the shared demand signal.
		c.pops = make([]*kvstore.Popularity, nodes)
		for i := range c.pops {
			c.pops[i] = kvstore.NewPopularity(popHalflife, popMaxEntries)
		}
	}
	if cfg.Router == RouterHash {
		c.ring = newHashRing(nodes)
	}

	c.clock = sim.NewClock()
	c.queues = make([]*sim.Queue[request], nodes)
	for i := range c.queues {
		c.queues[i] = sim.NewQueue[request](c.clock)
	}
	c.busy = make([]float64, cfg.replicas())
	if c.closed != nil {
		// The request slice grows as the session issues; size the
		// idx-keyed state from the budget instead.
		c.admitted = make([]bool, c.closedN)
	} else {
		c.admitted = make([]bool, len(c.reqs))
	}
	c.dead = make([]bool, cfg.replicas())
	c.eventsOn = cfg.hasEvents()
	c.firstKill = -1
	if c.eventsOn {
		c.rerouted = make([]bool, len(c.reqs))
	}
	if c.routerOn {
		c.replicaReqs = make([]int64, cfg.replicas())
	}
	if c.isRouted {
		c.depthSums = make([]float64, nodes)
		c.inflight = make([]int, nodes)
	}
	if cfg.prefetchActive() {
		c.pfQueues = make([]*sim.Queue[prefetchJob], nodes)
		for i := range c.pfQueues {
			c.pfQueues[i] = sim.NewQueue[prefetchJob](c.clock)
		}
		c.predPend = make([]int, nodes)
	}

	// Preallocate the metric slices from the stream: one TTFT/E2E per
	// measured request, one TBT per measured decode token. Appends in the
	// hot loop then never grow the backing arrays. A closed-loop stream's
	// decode budgets aren't known yet, so its TBT slice grows on demand.
	measuredN, tbtN := 0, 0
	if c.closed != nil {
		measuredN = c.closedN - c.warmup
	} else {
		for i := range c.reqs {
			if c.reqs[i].arrival >= c.cutoff {
				measuredN++
				tbtN += c.reqs[i].decode
			}
		}
	}
	c.ttfts = make([]float64, 0, measuredN)
	if c.hasDecode {
		c.tbts = make([]float64, 0, tbtN)
		c.e2es = make([]float64, 0, measuredN)
	}
	if c.schedOn {
		c.prefillDelays = make([]float64, 0, measuredN)
	}
	if c.eventsOn {
		c.ttftAt = make([]float64, 0, measuredN)
	}

	// The control process interleaves the two input streams in time
	// order: request arrivals and membership events. An event tying an
	// arrival's timestamp applies first, so the arrival routes against
	// the post-event replica set. With no events this is exactly the
	// legacy arrivals process. A closed-loop run only walks the initial
	// wave here — every later arrival is issued by the completion hook in
	// retire, on a process of its own (and membership events are rejected
	// up front in runClosedLoop).
	if c.closed != nil {
		c.clock.Go("arrivals", func(p *sim.Proc) {
			for _, iss := range c.initIssues {
				p.SleepUntil(iss.Req.Arrival)
				c.issueReq(iss, p.Now())
			}
		})
	} else {
		c.clock.Go("arrivals", func(p *sim.Proc) {
			events := cfg.Events
			ei := 0
			for _, r := range c.reqs {
				for ei < len(events) && events[ei].At <= r.arrival {
					p.SleepUntil(events[ei].At)
					c.applyEvent(p, events[ei])
					ei++
				}
				p.SleepUntil(r.arrival)
				c.dispatch(r, p.Now())
			}
			for ei < len(events) {
				p.SleepUntil(events[ei].At)
				c.applyEvent(p, events[ei])
				ei++
			}
			for _, q := range c.queues {
				q.Close()
			}
			for _, q := range c.pfQueues {
				q.Close()
			}
		})
	}
	for r := 0; r < cfg.replicas(); r++ {
		r := r
		c.clock.Go(fmt.Sprintf("replica-%d", r), func(p *sim.Proc) {
			c.replica(p, r)
		})
		if c.pfQueues != nil {
			c.clock.Go(fmt.Sprintf("loader-%d", r), func(p *sim.Proc) {
				c.loader(p, r)
			})
		}
	}
	end := c.clock.Run()

	res := Result{
		Requests:   c.completed,
		Replicas:   cfg.replicas(),
		MeanBatch:  c.batchHist.Mean(),
		BatchSizes: c.batchHist.Counts(),
	}
	res.MeanTTFT = metrics.Mean(c.ttfts)
	res.P95TTFT = metrics.Percentile(c.ttfts, 95)
	window := c.lastDone - c.cutoff
	if c.completed > 0 && window > 0 {
		res.Throughput = float64(c.completed) / window
	}
	// Store statistics aggregate across the nodes (a single shared store
	// reduces to the legacy numbers bit for bit); per-tier rows sum the
	// same tier index of every node's stack.
	var st kvstore.Stats
	for _, s := range c.stores {
		ss := s.Stats()
		st.Hits += ss.Hits
		st.Misses += ss.Misses
	}
	res.HitRate = st.HitRate()
	res.Lookups = st.Hits + st.Misses
	res.Misses = st.Misses
	for _, s := range c.stores {
		for i, ts := range s.TierStats() {
			if i == len(res.Tiers) {
				res.Tiers = append(res.Tiers, TierUsage{Device: ts.Device})
			}
			res.Tiers[i].Hits += ts.Hits
			res.Tiers[i].Promotions += ts.Promotions
			res.Tiers[i].Demotions += ts.Demotions
			res.Tiers[i].BytesResident += ts.BytesResident
		}
	}
	for i := range res.Tiers {
		res.Tiers[i].HitRate = metrics.Ratio(res.Tiers[i].Hits, res.Lookups)
	}
	if c.depthN > 0 {
		res.MeanQueueDepth = c.depthSum / float64(c.depthN)
	}
	res.ReplicaUtil = make([]float64, len(c.busy))
	for i, b := range c.busy {
		res.ReplicaUtil[i] = metrics.Utilization(b, end-c.cutoff)
	}
	if c.hasDecode {
		res.MeanTBT = metrics.Mean(c.tbts)
		res.P95TBT = metrics.Percentile(c.tbts, 95)
		res.MeanE2E = metrics.Mean(c.e2es)
		res.P95E2E = metrics.Percentile(c.e2es, 95)
		res.OutputTokens = c.outTokens
		if c.outTokens > 0 && window > 0 {
			res.TokenThroughput = float64(c.outTokens) / window
		}
		if steps := c.stepsPrefill + c.stepsDecode + c.stepsMixed; steps > 0 {
			res.PrefillStepShare = float64(c.stepsPrefill) / float64(steps)
			res.DecodeStepShare = float64(c.stepsDecode) / float64(steps)
			res.MixedStepShare = float64(c.stepsMixed) / float64(steps)
		}
	}
	if c.schedOn {
		res.StallTime = c.stallTime
		res.MeanPrefillDelay = metrics.Mean(c.prefillDelays)
		res.P95PrefillDelay = metrics.Percentile(c.prefillDelays, 95)
	}
	if c.sloOn {
		if c.completed > 0 {
			res.SLOAttainment = float64(c.sloOK) / float64(c.completed)
			if cfg.SLOTTFT > 0 {
				res.SLOTTFTAttainment = float64(c.sloTTFTOK) / float64(c.completed)
			}
			if cfg.SLOTBT > 0 {
				res.SLOTBTAttainment = float64(c.sloTBTOK) / float64(c.completed)
			}
		}
		res.SLOViolations = int64(c.completed) - c.sloOK
		if window > 0 {
			res.Goodput = float64(c.sloOK) / window
		}
	}
	if c.prefetchOn {
		var joins int64
		res.TierStallTime = c.tierStall
		for _, s := range c.stores {
			pf := s.PrefetchStats()
			res.PrefetchIssued += pf.Issued
			res.PrefetchHits += pf.Hits
			res.PrefetchWastedBytes += pf.BytesWasted
			joins += pf.InflightJoins
		}
		if len(res.Tiers) > 0 {
			res.HBMHitRate = metrics.Ratio(res.Tiers[0].Hits+joins, res.Lookups)
		}
	}
	if c.routerOn {
		res.Router = cfg.Router
		res.ReplicaHitRates = make([]float64, len(c.stores))
		for i, s := range c.stores {
			res.ReplicaHitRates[i] = s.Stats().HitRate()
		}
		res.ReplicaRequests = c.replicaReqs
		res.LoadSkew = metrics.CoefVar(c.busy)
		if c.isRouted {
			if c.depthN > 0 {
				means := make([]float64, len(c.depthSums))
				for i, s := range c.depthSums {
					means[i] = s / float64(c.depthN)
				}
				res.QueueSkew = metrics.CoefVar(means)
			}
			res.DuplicationBytes = c.duplicationBytes()
		}
	}
	if c.eventsOn {
		res.Failovers = c.failovers
		res.ReroutedRequests = c.reroutedN
		res.ReWarmStall = c.reWarmStall
		res.RecoveryTime = c.recoveryTime(end)
	}
	res.Tenants = c.tenantUsage()
	return res
}

// duplicationBytes is the routed cluster's redundancy bill at run end:
// the bytes resident beyond one copy per distinct chunk, summed across
// every node's tier stack. Hash routing duplicates the chunks a request
// straddles ownership over; affinity routing duplicates whatever two
// replicas' clienteles share.
func (c *cluster) duplicationBytes() int64 {
	var total, unique int64
	seen := make(map[chunk.ID]bool, c.stores[0].Len())
	for i, s := range c.stores {
		if c.dead[i] {
			continue // a dead node's residue is gone, not redundancy
		}
		s.Each(func(id chunk.ID, bytes int64) {
			total += bytes
			if !seen[id] {
				seen[id] = true
				unique += bytes
			}
		})
	}
	return total - unique
}

// tenantUsage renders the per-tenant accumulators, ordered by tenant id
// (the dense slice index). Single-tenant streams report nil, keeping
// legacy Results unchanged.
func (c *cluster) tenantUsage() []TenantUsage {
	if !c.multiTenant {
		return nil
	}
	var out []TenantUsage
	for id, acc := range c.tenants {
		if acc == nil {
			continue // tenant never recorded a measured sample
		}
		out = append(out, TenantUsage{
			Tenant:        id,
			Requests:      len(acc.ttfts),
			MeanTTFT:      metrics.Mean(acc.ttfts),
			P95TTFT:       metrics.Percentile(acc.ttfts, 95),
			HitRate:       metrics.Ratio(acc.hits, acc.lookups),
			Lookups:       acc.lookups,
			MeanTBT:       metrics.Mean(acc.tbts),
			P95TBT:        metrics.Percentile(acc.tbts, 95),
			MeanE2E:       metrics.Mean(acc.e2es),
			OutputTokens:  acc.outTokens,
			SLOAttainment: metrics.Ratio(acc.sloMet, acc.sloDone),
		})
	}
	return out
}

// issueReq materialises one closed-loop issue as the next request and
// dispatches it; the nth (budget-exhausting) dispatch closes the
// admission and loader queues, ending the run once in-flight work
// drains. Every arrival passes through here exactly once — from the
// arrivals process for the initial wave, from a per-issue client process
// afterwards — and both sleep to the issue's arrival first, so requests
// are dispatched in nondecreasing virtual-time order like an open-loop
// stream.
func (c *cluster) issueReq(iss workload.Issue, now float64) {
	idx := len(c.reqs)
	if idx >= c.closedN {
		panic(fmt.Sprintf("serve: closed-loop session issued request %d past its budget %d", idx, c.closedN))
	}
	r := request{idx: idx, arrival: iss.Req.Arrival, tenant: iss.Req.Tenant,
		ids: iss.Req.Chunks, decode: iss.Req.DecodeTokens, client: iss.Client}
	c.reqs = append(c.reqs, r)
	// Defensive against Session implementations whose later issues
	// broaden the stream beyond the initial wave (ClosedLoop's cannot).
	if r.tenant != 0 {
		c.multiTenant = true
	}
	if r.decode > 0 {
		c.hasDecode = true
	}
	if idx == c.warmup {
		// The warmup period ends here: interval metrics (step telemetry,
		// utilization, throughput windows) cut at this timestamp, matching
		// the idx-based per-request rule.
		c.cutoff = r.arrival
	}
	c.dispatch(r, now)
	if len(c.reqs) == c.closedN {
		for _, q := range c.queues {
			q.Close()
		}
		for _, q := range c.pfQueues {
			q.Close()
		}
	}
}

// dispatch routes one arriving request and hands it to its node: queue
// push, prefetch job, and the arrival-time depth sampling.
func (c *cluster) dispatch(r request, now float64) {
	t := c.route(r, now)
	if c.inflight != nil {
		c.inflight[t]++
	}
	// Sample the depth each measured arrival finds on the queue it
	// joins, excluding itself (arrivals see time averages — PASTA);
	// warmup-period arrivals are excluded like every other warmup
	// sample. Routed runs additionally sample every node's depth,
	// the balance snapshot QueueSkew summarises.
	if c.measured(r) {
		c.depthSum += float64(c.queues[t].Len())
		c.depthN++
		if c.depthSums != nil {
			for i, q := range c.queues {
				c.depthSums[i] += float64(q.Len())
			}
		}
	}
	c.queues[t].Push(r)
	if c.pfQueues != nil {
		// The node's loader starts moving this request's chunks
		// while it queues; under the predictive policy a backed-up
		// queue additionally triggers a popularity-driven promotion
		// — at most one queued per node (back-to-back triggers
		// would rank the same hot set and promote it twice).
		c.pfQueues[t].Push(prefetchJob{req: r.idx, ids: r.ids})
		if c.cfg.PrefetchPolicy == PrefetchPredictive &&
			c.queues[t].Len() > c.predDepth() && c.predPend[t] == 0 {
			c.predPend[t]++
			c.pfQueues[t].Push(prefetchJob{req: -1})
		}
	}
}

// predDepth is the queue depth that triggers a predictive promotion: a
// node's queue backed up past the workers draining it — every replica in
// the shared topology, exactly one under the routed policies.
func (c *cluster) predDepth() int {
	if c.isRouted {
		return 1
	}
	return c.cfg.replicas()
}

// replica is one worker process: it keeps a running batch, admitting from
// its node's admission queue (the shared queue in the legacy topology,
// its own under the routed policies) under the scheduling policy and
// stepping every member — prefilling or decoding — in lockstep, retiring
// completions at step boundaries.
func (c *cluster) replica(p *sim.Proc, r int) {
	queue := c.queues[c.qi(r)]
	var batch []*member
	deferred := 0 // consecutive boundaries the policy held the door while work waited
	for {
		if len(batch) == 0 {
			// Idle: block on the admission queue. Policies only gate
			// top-ups — an empty replica always takes the next request
			// (the slo policy takes the most deadline-urgent one).
			var req request
			var ok bool
			if c.sloSched {
				req, ok = queue.PopMin(p, c.sloCmp)
			} else {
				req, ok = queue.Pop(p)
			}
			if !ok {
				return // queue closed and drained, batch empty — done
			}
			if c.dead[r] && !queue.Closed() {
				// Killed while parked on the shared queue (routed queues
				// close at the kill, so Pop there never wakes a dead
				// worker with an item): hand the request back to the
				// tail for a live worker and exit. Once the queue is
				// closed the stream is over and survivors may already
				// have exited, so the item is served rather than risk
				// stranding it.
				c.reroutedN++
				c.rerouted[req.idx] = true
				queue.Push(req)
				return
			}
			batch = append(batch, c.admit(req, p.Now(), r))
			deferred = 0
		}
		// Continuous batching, join side: the policy decides how many of
		// the waiting requests may join at this step boundary (FIFO takes
		// everything that fits; decode-priority holds prefills while the
		// batch decodes). New requests only enter at a step boundary.
		prefillers, decoders := 0, 0
		for _, m := range batch {
			if m.decoding {
				decoders++
			} else {
				prefillers++
			}
		}
		headroom := c.cfg.maxBatch() - len(batch)
		quota := c.policy.AdmitQuota(prefillers, decoders, headroom, deferred)
		if quota > headroom {
			quota = headroom
		}
		if c.dead[r] {
			quota = 0 // a dead worker finishes its batch but admits nothing
		}
		admitted := 0
		for admitted < quota {
			var req request
			var ok bool
			if c.sloSched {
				req, ok = queue.TryPopMin(c.sloCmp)
			} else {
				req, ok = queue.TryPop()
			}
			if !ok {
				break
			}
			batch = append(batch, c.admit(req, p.Now(), r))
			admitted++
		}
		if admitted > 0 {
			deferred = 0
		} else if headroom > 0 && queue.Len() > 0 {
			deferred++ // work waited at an open door — age it
		}
		// Execute one step for every member in lockstep: the longest
		// member paces the step, each extra sequence adds the marginal
		// batching cost of the step's phase mix; budgeted policies bound
		// the prefill tokens the step may spend.
		step, stall := c.planStep(batch, p.Now())
		p.Sleep(step)
		now := p.Now()
		c.observeStep(batch, step, stall, now, r)
		// Advance every member one step; retire at phase ends.
		live := batch[:0]
		for _, m := range batch {
			if !m.decoding {
				var done bool
				if c.budget > 0 {
					if m.slice == 0 {
						// Resident but idle: this step's budget was
						// spent by members admitted ahead of it.
						live = append(live, m)
						continue
					}
					m.prefDone += m.slice
					m.slice = 0
					done = m.prefDone >= m.prefTotal
				} else {
					m.remaining--
					done = m.remaining == 0
				}
				if !done {
					live = append(live, m)
					continue
				}
				// Last prefill step: the first token is out.
				c.firstToken(m, now)
				if m.req.decode == 0 {
					c.retire(m, now) // legacy prefill-only request
					continue
				}
				m.decoding = true
				m.unit = c.decodeUnit
				m.remaining = m.req.decode
				live = append(live, m)
				continue
			}
			c.token(m, now)
			m.remaining--
			if m.remaining == 0 {
				c.retire(m, now)
				continue
			}
			live = append(live, m)
		}
		batch = live
	}
}

// planStep prices the batch's next step under the active policy and
// reports its decoder-seconds of stall. Whole-chunk policies price with
// stepTime (the legacy model, bit for bit); a budgeted policy allocates
// the step's prefill token slices first — in SLO order at the boundary
// time under the slo policy, admission order otherwise — and prices the
// bounded slice with the engine's chunked mixed-step model.
func (c *cluster) planStep(batch []*member, now float64) (step, stall float64) {
	if c.budget > 0 {
		var prefillers, decoders int
		var longest float64
		if c.sloSched {
			prefillers, decoders, longest = c.allocPrefillSLO(batch, c.budget, now)
		} else {
			prefillers, decoders, longest = allocPrefill(batch, c.budget)
		}
		if prefillers == 0 {
			return engine.DecodeStepTime(c.decodeUnit, len(batch), c.cfg.decodeOverhead()), 0
		}
		decodeUnit := 0.0
		if decoders > 0 {
			decodeUnit = c.decodeUnit
		}
		step = engine.ChunkedStepTime(longest, decodeUnit, prefillers, decoders,
			c.cfg.batchOverhead(), c.cfg.decodeOverhead())
		return step, c.stall(step, decoders, len(batch))
	}
	step = c.stepTime(batch)
	decoders := 0
	for _, m := range batch {
		if m.decoding {
			decoders++
		}
	}
	if decoders == len(batch) {
		return step, 0 // decode-only: nothing paced by prefill
	}
	return step, c.stall(step, decoders, len(batch))
}

// stall is the decoder-seconds a prefill-paced step costs beyond the
// decode-only step its decoders would have run at the same width — the
// head-of-line blocking the scheduling telemetry quantifies. Zero when
// the telemetry is off, so the legacy path computes nothing new.
func (c *cluster) stall(step float64, decoders, width int) float64 {
	if decoders == 0 || !c.schedOn {
		return 0
	}
	extra := step - engine.DecodeStepTime(c.decodeUnit, width, c.cfg.decodeOverhead())
	if extra <= 0 {
		return 0
	}
	return extra * float64(decoders)
}

// admit computes the request's per-scheme prefill service time against
// replica r's store at its current state and splits it into
// chunk-boundary steps — or, under a budgeted policy, into
// token-granularity progress over the same total service time; the decode
// budget rides along on the member. now is the admission instant, sampled
// for the prefill-delay telemetry. Marking the request admitted here is
// what cancels its still-queued prefetch job: the tier reads are paid
// now, so promoting its chunks afterwards could only waste transfers.
func (c *cluster) admit(req request, now float64, r int) *member {
	si := c.qi(r)
	c.admitted[req.idx] = true
	if c.replicaReqs != nil {
		c.replicaReqs[r]++
	}
	steps := len(req.ids) + 1 // one per chunk, one for the query
	service, lookups, hits, stall := c.serviceTime(si, req.ids, now)
	var m *member
	if n := len(c.memberPool); n > 0 {
		m = c.memberPool[n-1]
		c.memberPool = c.memberPool[:n-1]
	} else {
		m = &member{}
	}
	pay := m.genPayload
	*m = member{req: req, si: si, unit: service / float64(steps), remaining: steps,
		lookups: lookups, hits: hits}
	m.genPayload = pay
	if c.budget > 0 {
		m.prefTotal = len(req.ids)*c.cfg.ChunkTokens + c.cfg.QueryTokens
		m.perTok = service / float64(m.prefTotal)
	}
	if req.decode > 0 {
		m.genKey = genKey(c.cfg, req.idx)
		// One boxed payload per decoding member: every per-token Put
		// rewrites this value instead of boxing a fresh interface. Pooled
		// members carry theirs over.
		if m.genPayload == nil {
			m.genPayload = new(kvstore.Bytes)
		}
	}
	if c.multiTenant && c.measured(req) {
		// Resolve the tenant accumulator once here instead of on every
		// recorded TTFT/TBT/E2E sample. Only measured requests record, so
		// a warmup admission leaves no empty accumulator behind.
		m.acc = c.acc(req.tenant)
	}
	// Admission-time telemetry follows its request through the unified
	// warmup rule: measured iff the request arrived at or after the
	// cutoff, like TTFT — a warmup arrival admitted after the cutoff
	// contributes nothing, a cutoff-tying arrival contributes everywhere.
	if c.schedOn && c.measured(req) {
		c.prefillDelays = append(c.prefillDelays, now-req.arrival)
	}
	if c.prefetchOn && c.measured(req) {
		c.tierStall += stall
	}
	if c.eventsOn && c.rerouted != nil && c.rerouted[req.idx] && c.measured(req) {
		c.reWarmStall += stall
	}
	return m
}

// genKey is the store key of one request's generated (decode) KV — a
// namespace of its own, so generation growth can never alias a context
// chunk's cache entry.
func genKey(cfg Config, idx int) chunk.ID {
	return chunk.Hash(cfg.Spec.Name+"/gen", []int{idx})
}

// stepTime is the virtual duration of one batched step: the longest
// member paces it, every extra sequence adds a marginal cost. A step
// with any prefilling member is FLOP-bound and priced with the prefill
// batch overhead; a decode-only step runs at the engine's
// memory-bandwidth-bound decode-step cost, whose width factor is far
// smaller — which is exactly why decode-heavy batches sustain high token
// throughput while a single interleaved prefill stalls every decoder in
// the batch for a whole chunk step.
func (c *cluster) stepTime(batch []*member) float64 {
	longest := 0.0
	anyPrefill := false
	for _, m := range batch {
		if m.unit > longest {
			longest = m.unit
		}
		if !m.decoding {
			anyPrefill = true
		}
	}
	if anyPrefill {
		return longest * (1 + c.cfg.batchOverhead()*float64(len(batch)-1))
	}
	return engine.DecodeStepTime(longest, len(batch), c.cfg.decodeOverhead())
}

// observeStep records one executed step's telemetry — batch size, busy
// time, stall, phase composition — unless it ends inside the warmup
// period (one cutoff for every metric, the cutoff TTFT uses).
func (c *cluster) observeStep(batch []*member, step, stall, now float64, r int) {
	if now <= c.cutoff {
		return
	}
	// A step straddling the cutoff only credits its post-cutoff portion:
	// utilization's denominator starts at the cutoff, so crediting the
	// whole step would overstate busy time (and could push it past 1).
	// Stall is pro-rated the same way.
	if busy := now - c.cutoff; busy < step {
		stall *= busy / step
		step = busy
	}
	c.busy[r] += step
	c.stallTime += stall
	c.batchHist.Observe(len(batch))
	prefill, decode := false, false
	for _, m := range batch {
		if m.decoding {
			decode = true
		} else {
			prefill = true
		}
	}
	switch {
	case prefill && decode:
		c.stepsMixed++
	case decode:
		c.stepsDecode++
	default:
		c.stepsPrefill++
	}
}

// firstToken marks the prefill→decode transition: TTFT is recorded here,
// not at retirement, and the first token's KV lands in the member's
// node's store for requests that will keep generating.
func (c *cluster) firstToken(m *member, now float64) {
	m.lastToken = now
	if c.sloOn || c.sloSched {
		// Realised TTFT rides on the member for retirement-time SLO
		// evaluation — kept for every request, warmup included, because
		// the scheduler's tenant-risk signal wants the whole run.
		m.ttft = now - m.req.arrival
	}
	if m.req.decode > 0 {
		m.genBytes = c.tokenBytes
		*m.genPayload = kvstore.Bytes(m.genBytes)
		c.stores[m.si].Put(m.genKey, m.genPayload) //nolint:errcheck
	}
	if !c.measured(m.req) {
		return
	}
	ttft := now - m.req.arrival
	c.ttfts = append(c.ttfts, ttft)
	if c.eventsOn {
		// RecoveryTime needs to know when each sample was emitted, not
		// just its value — collected only under a membership schedule.
		c.ttftAt = append(c.ttftAt, now)
	}
	if m.acc != nil {
		m.acc.ttfts = append(m.acc.ttfts, ttft)
	}
}

// token records one decode step's emitted token: a time-between-tokens
// sample and another token's worth of KV appended to the request's
// growing entry in the shared store — generation competing with cached
// chunks for the fast tiers is what makes decode-phase KV pressure real.
func (c *cluster) token(m *member, now float64) {
	m.genBytes += c.tokenBytes
	*m.genPayload = kvstore.Bytes(m.genBytes)
	c.stores[m.si].Put(m.genKey, m.genPayload) //nolint:errcheck
	if c.sloOn || c.sloSched {
		m.tbtSum += now - m.lastToken
	}
	if c.measured(m.req) {
		tbt := now - m.lastToken
		c.tbts = append(c.tbts, tbt)
		if m.acc != nil {
			m.acc.tbts = append(m.acc.tbts, tbt)
		}
	}
	m.lastToken = now
}

// retire removes a finished request from the system: its generated KV is
// released from the store, and post-warmup requests contribute their
// completion statistics.
func (c *cluster) retire(m *member, now float64) {
	defer c.recycle(m) // the caller drops m from the batch after retire
	if m.req.decode > 0 {
		c.stores[m.si].Remove(m.genKey)
	}
	if c.inflight != nil {
		c.inflight[m.si]--
	}
	if c.sloOn || c.sloSched {
		c.sloOutcome(m)
	}
	if c.closed != nil {
		// Completion feedback: the issuing client thinks, then issues its
		// next request on a short-lived process of its own (mid-run Go is
		// the membership-join machinery, reused). The session guarantees
		// the next arrival is strictly after now, so the sleep is real and
		// the dispatch order stays nondecreasing in time.
		if iss, ok := c.closed.Complete(m.req.client, now); ok {
			c.clock.Go(fmt.Sprintf("client-%d", iss.Client), func(p *sim.Proc) {
				p.SleepUntil(iss.Req.Arrival)
				c.issueReq(iss, p.Now())
			})
		}
	}
	if !c.measured(m.req) {
		return
	}
	c.completed++
	if now > c.lastDone {
		c.lastDone = now
	}
	acc := m.acc
	if acc != nil {
		acc.lookups += m.lookups
		acc.hits += m.hits
	}
	if c.hasDecode {
		e2e := now - m.req.arrival
		tokens := int64(1 + m.req.decode)
		c.e2es = append(c.e2es, e2e)
		c.outTokens += tokens
		if acc != nil {
			acc.e2es = append(acc.e2es, e2e)
			acc.outTokens += tokens
		}
	}
}

// sloOutcome evaluates a completed request against the configured
// targets: it always feeds the scheduler's per-tenant risk signal (every
// completion, warmup included), and accumulates the reported attainment
// telemetry for measured completions when the telemetry is on. A request
// meets its SLO iff its TTFT is within SLOTTFT (when set) and its mean
// TBT is within SLOTBT (when set; prefill-only requests satisfy TBT
// trivially).
func (c *cluster) sloOutcome(m *member) {
	ttftOK := c.sloTTFT <= 0 || m.ttft <= c.sloTTFT
	tbtOK := c.sloTBT <= 0 || m.req.decode == 0 ||
		m.tbtSum/float64(m.req.decode) <= c.sloTBT
	met := ttftOK && tbtOK
	if c.sloSched {
		c.bumpRisk(m.req.tenant, met)
	}
	if !c.sloOn || !c.measured(m.req) {
		return
	}
	if ttftOK {
		c.sloTTFTOK++
	}
	if tbtOK {
		c.sloTBTOK++
	}
	if met {
		c.sloOK++
	}
	if m.acc != nil {
		m.acc.sloDone++
		if met {
			m.acc.sloMet++
		}
	}
}

// acc returns (allocating if needed) the tenant's accumulator. The dense
// slice is sized from the stream's maximum tenant id in newCluster (or a
// closed-loop run's initial wave — grown here should a session broaden
// its tenant set mid-run).
func (c *cluster) acc(tenant int) *tenantAcc {
	if tenant >= len(c.tenants) {
		grown := make([]*tenantAcc, tenant+1)
		copy(grown, c.tenants)
		c.tenants = grown
	}
	a := c.tenants[tenant]
	if a == nil {
		a = &tenantAcc{}
		c.tenants[tenant] = a
	}
	return a
}
