// The concurrent serving runtime: one arrival process feeds a shared
// admission queue; N replica processes pull from it and execute requests
// with continuous batching. A request's prefill is decomposed into one
// equal step per retrieved context chunk plus one for the query suffix;
// replicas admit waiting requests into the running batch and retire
// finished ones only at these chunk-granularity boundaries, the way
// vLLM-style continuous batching admits at iteration boundaries. The
// request stream itself — arrival times, tenants, chunk ids — comes
// pre-materialised from an internal/workload generator or a replayed
// trace, so the runtime never samples randomness of its own and a run is
// a pure function of (config, stream).
package serve

import (
	"fmt"
	"sort"

	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// request is one queued serving request.
type request struct {
	idx     int
	arrival float64
	tenant  int
	ids     []int // retrieved chunk ids, from the workload stream
}

// member is a request resident in a replica's running batch.
type member struct {
	req           request
	unit          float64 // duration of one of its steps
	remaining     int     // steps left
	lookups, hits int64   // its chunk-store lookup outcome at admission
}

// tenantAcc accumulates one tenant's post-warmup service statistics.
type tenantAcc struct {
	ttfts         []float64
	lookups, hits int64
}

// cluster is the state of one simulated run.
type cluster struct {
	cfg        Config
	reqs       []request
	warmup     int
	clock      *sim.Clock
	queue      *sim.Queue[request]
	store      *kvstore.Tiered
	chunkBytes int64

	ttfts       []float64
	completed   int
	lastDone    float64
	busy        []float64
	batchHist   metrics.Histogram
	depthSum    float64
	depthN      int
	multiTenant bool
	tenants     map[int]*tenantAcc
}

// newCluster adopts a validated, arrival-ordered request stream.
func newCluster(cfg Config, stream []workload.Request, warmup int) *cluster {
	c := &cluster{cfg: cfg, warmup: warmup, tenants: map[int]*tenantAcc{}}
	c.reqs = make([]request, len(stream))
	for i, r := range stream {
		c.reqs[i] = request{idx: i, arrival: r.Arrival, tenant: r.Tenant, ids: r.Chunks}
		if r.Tenant != 0 {
			c.multiTenant = true
		}
	}
	return c
}

// buildTiers maps the config's storage hierarchy (or its single-device
// fallback) onto kvstore tiers. Each tier is sharded like the flat store
// was, but never so finely that a shard can't hold one chunk — a tiny
// bounded shard would silently reject every Put and serve 0% hits.
func (c *cluster) buildTiers() []kvstore.Tier {
	cfgs := c.cfg.tierConfigs()
	tiers := make([]kvstore.Tier, len(cfgs))
	for i, tc := range cfgs {
		shards := c.cfg.shards()
		if tc.Capacity > 0 {
			if maxShards := int(tc.Capacity / c.chunkBytes); maxShards < shards {
				shards = maxShards
				if shards < 1 {
					shards = 1
				}
			}
		}
		tiers[i] = kvstore.Tier{Device: tc.Device, Capacity: tc.Capacity, Shards: shards}
	}
	return tiers
}

// run executes the simulation and aggregates the Result.
func (c *cluster) run() Result {
	cfg := c.cfg

	c.chunkBytes = cfg.Spec.KVBytes(cfg.ChunkTokens)
	c.store = kvstore.MustTiered(c.buildTiers(), kvstore.LRU)
	defer c.store.Close()

	c.clock = sim.NewClock()
	c.queue = sim.NewQueue[request](c.clock)
	c.busy = make([]float64, cfg.replicas())

	c.clock.Go("arrivals", func(p *sim.Proc) {
		for _, r := range c.reqs {
			p.SleepUntil(r.arrival)
			// Sample the depth each arrival finds, excluding itself
			// (arrivals see time averages — PASTA).
			c.depthSum += float64(c.queue.Len())
			c.depthN++
			c.queue.Push(r)
		}
		c.queue.Close()
	})
	for r := 0; r < cfg.replicas(); r++ {
		r := r
		c.clock.Go(fmt.Sprintf("replica-%d", r), func(p *sim.Proc) {
			c.replica(p, r)
		})
	}
	end := c.clock.Run()

	res := Result{
		Requests:   c.completed,
		Replicas:   cfg.replicas(),
		MeanBatch:  c.batchHist.Mean(),
		BatchSizes: c.batchHist.Counts(),
	}
	res.MeanTTFT = metrics.Mean(c.ttfts)
	res.P95TTFT = metrics.Percentile(c.ttfts, 95)
	if c.completed > 0 && c.warmup < len(c.reqs) && c.lastDone > c.reqs[c.warmup].arrival {
		res.Throughput = float64(c.completed) / (c.lastDone - c.reqs[c.warmup].arrival)
	}
	st := c.store.Stats()
	res.HitRate = st.HitRate()
	res.Lookups = st.Hits + st.Misses
	res.Misses = st.Misses
	for _, ts := range c.store.TierStats() {
		res.Tiers = append(res.Tiers, TierUsage{
			Device:        ts.Device,
			Hits:          ts.Hits,
			HitRate:       metrics.Ratio(ts.Hits, res.Lookups),
			Promotions:    ts.Promotions,
			Demotions:     ts.Demotions,
			BytesResident: ts.BytesResident,
		})
	}
	if c.depthN > 0 {
		res.MeanQueueDepth = c.depthSum / float64(c.depthN)
	}
	res.ReplicaUtil = make([]float64, len(c.busy))
	for i, b := range c.busy {
		res.ReplicaUtil[i] = metrics.Utilization(b, end)
	}
	res.Tenants = c.tenantUsage()
	return res
}

// tenantUsage renders the per-tenant accumulators, ordered by tenant id.
// Single-tenant streams report nil, keeping legacy Results unchanged.
func (c *cluster) tenantUsage() []TenantUsage {
	if !c.multiTenant {
		return nil
	}
	ids := make([]int, 0, len(c.tenants))
	for id := range c.tenants {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]TenantUsage, 0, len(ids))
	for _, id := range ids {
		acc := c.tenants[id]
		out = append(out, TenantUsage{
			Tenant:   id,
			Requests: len(acc.ttfts),
			MeanTTFT: metrics.Mean(acc.ttfts),
			P95TTFT:  metrics.Percentile(acc.ttfts, 95),
			HitRate:  metrics.Ratio(acc.hits, acc.lookups),
			Lookups:  acc.lookups,
		})
	}
	return out
}

// replica is one worker process: it keeps a running batch, admitting from
// the shared queue and retiring completions at step boundaries.
func (c *cluster) replica(p *sim.Proc, r int) {
	var batch []*member
	for {
		if len(batch) == 0 {
			// Idle: block on the admission queue.
			req, ok := c.queue.Pop(p)
			if !ok {
				return // queue closed and drained, batch empty — done
			}
			batch = append(batch, c.admit(req))
		}
		// Continuous batching, join side: top the batch up with whatever
		// is waiting, without blocking — new requests only enter at a
		// step boundary.
		for len(batch) < c.cfg.maxBatch() {
			req, ok := c.queue.TryPop()
			if !ok {
				break
			}
			batch = append(batch, c.admit(req))
		}
		// Execute one step for every member in lockstep: the longest
		// member paces the step, each extra sequence adds the marginal
		// batching cost.
		step := c.stepTime(batch)
		p.Sleep(step)
		c.busy[r] += step
		c.batchHist.Observe(len(batch))
		// Leave side: retire members whose last step just finished.
		live := batch[:0]
		for _, m := range batch {
			m.remaining--
			if m.remaining == 0 {
				c.complete(p, m)
			} else {
				live = append(live, m)
			}
		}
		batch = live
	}
}

// admit computes the request's per-scheme service time against the shared
// store's current state and splits it into chunk-boundary steps.
func (c *cluster) admit(req request) *member {
	steps := len(req.ids) + 1 // one per chunk, one for the query
	service, lookups, hits := serviceTime(c.cfg, c.store, req.ids, c.chunkBytes)
	return &member{req: req, unit: service / float64(steps), remaining: steps,
		lookups: lookups, hits: hits}
}

// stepTime is the virtual duration of one batched step.
func (c *cluster) stepTime(batch []*member) float64 {
	longest := 0.0
	for _, m := range batch {
		if m.unit > longest {
			longest = m.unit
		}
	}
	return longest * (1 + c.cfg.batchOverhead()*float64(len(batch)-1))
}

// complete records a finished request (post-warmup only).
func (c *cluster) complete(p *sim.Proc, m *member) {
	if m.req.idx < c.warmup {
		return
	}
	done := p.Now()
	ttft := done - m.req.arrival
	c.ttfts = append(c.ttfts, ttft)
	c.completed++
	if done > c.lastDone {
		c.lastDone = done
	}
	if c.multiTenant {
		acc := c.tenants[m.req.tenant]
		if acc == nil {
			acc = &tenantAcc{}
			c.tenants[m.req.tenant] = acc
		}
		acc.ttfts = append(acc.ttfts, ttft)
		acc.lookups += m.lookups
		acc.hits += m.hits
	}
}
