// The concurrent serving runtime: one arrival process feeds a shared
// admission queue; N replica processes pull from it and execute requests
// with continuous batching. A request runs a two-phase lifecycle. Its
// prefill is decomposed into one equal step per retrieved context chunk
// plus one for the query suffix; the last prefill step emits the first
// token (TTFT). A request with a generation budget then switches to
// per-token decode steps — each emits one token, appends its KV bytes to
// the shared store, and batches freely with other members' prefill and
// decode steps, the way vLLM-style continuous batching interleaves
// phases at iteration boundaries. Replicas admit waiting requests and
// retire finished ones only at step boundaries. The request stream
// itself — arrival times, tenants, chunk ids, decode budgets — comes
// pre-materialised from an internal/workload generator or a replayed
// trace, so the runtime never samples randomness of its own and a run is
// a pure function of (config, stream).
package serve

import (
	"fmt"
	"sort"

	"repro/internal/chunk"
	"repro/internal/engine"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// request is one queued serving request.
type request struct {
	idx     int
	arrival float64
	tenant  int
	ids     []int // retrieved chunk ids, from the workload stream
	decode  int   // decode steps after the first token, from the stream
}

// member is a request resident in a replica's running batch: a two-phase
// state machine (prefill steps, then decode steps once decoding is set).
// Under the legacy whole-chunk policies prefill advances one equal step
// per chunk (unit/remaining); under a budgeted (chunked-prefill) policy
// it advances at token granularity instead (prefTotal/prefDone/perTok),
// the per-step slice set by allocPrefill from the shared budget.
type member struct {
	req           request
	unit          float64 // duration of one step in the current phase
	remaining     int     // steps left in the current phase
	prefTotal     int     // prefill tokens in total (budgeted stepping)
	prefDone      int     // prefill tokens already computed
	perTok        float64 // prefill seconds per token
	slice         int     // tokens granted for the current step
	decoding      bool    // prefill finished, decode phase entered
	lastToken     float64 // virtual time the latest token was emitted
	genKey        chunk.ID
	genBytes      int64 // generated-KV footprint resident in the store
	lookups, hits int64 // its chunk-store lookup outcome at admission
}

// tenantAcc accumulates one tenant's post-warmup service statistics.
type tenantAcc struct {
	ttfts         []float64
	tbts          []float64
	e2es          []float64
	outTokens     int64
	lookups, hits int64
}

// cluster is the state of one simulated run.
type cluster struct {
	cfg        Config
	reqs       []request
	warmup     int
	cutoff     float64 // virtual time the warmup period ends
	clock      *sim.Clock
	queue      *sim.Queue[request]
	store      *kvstore.Tiered
	chunkBytes int64
	tokenBytes int64   // generated KV bytes per decoded token
	decodeUnit float64 // unbatched per-token decode step duration
	hasDecode  bool    // some request carries a generation budget
	policy     Policy
	budget     int  // the policy's per-step prefill token budget (0 = whole-chunk)
	schedOn    bool // scheduling telemetry requested (explicit Config.Sched)
	prefetchOn bool // prefetch telemetry requested (explicit Config.PrefetchPolicy)
	pop        *kvstore.Popularity
	pfQueue    *sim.Queue[prefetchJob] // loader work queue (active policies only)

	ttfts         []float64
	tbts          []float64
	e2es          []float64
	prefillDelays []float64 // arrival → batch admission, post-warmup
	stallTime     float64   // decoder-seconds lost to prefill pacing
	tierStall     float64   // prefill seconds lost to non-HBM tier reads
	outTokens     int64
	completed     int
	lastDone      float64
	busy          []float64
	batchHist     metrics.Histogram
	depthSum      float64
	depthN        int
	// post-warmup step counts by batch composition
	stepsPrefill, stepsDecode, stepsMixed int64
	multiTenant                           bool
	tenants                               map[int]*tenantAcc
}

// newCluster adopts a validated, arrival-ordered request stream.
func newCluster(cfg Config, stream []workload.Request, warmup int) *cluster {
	c := &cluster{cfg: cfg, warmup: warmup, tenants: map[int]*tenantAcc{}}
	c.reqs = make([]request, len(stream))
	for i, r := range stream {
		c.reqs[i] = request{idx: i, arrival: r.Arrival, tenant: r.Tenant,
			ids: r.Chunks, decode: r.DecodeTokens}
		if r.Tenant != 0 {
			c.multiTenant = true
		}
		if r.DecodeTokens > 0 {
			c.hasDecode = true
		}
	}
	// The warmup period ends when the first measured request arrives:
	// every metric — TTFT, throughput, batch sizes, queue depth, replica
	// utilization, decode telemetry — applies this one cutoff.
	if warmup < len(c.reqs) {
		c.cutoff = c.reqs[warmup].arrival
	}
	return c
}

// buildTiers maps the config's storage hierarchy (or its single-device
// fallback) onto kvstore tiers. Each tier is sharded like the flat store
// was, but never so finely that a shard can't hold one chunk — a tiny
// bounded shard would silently reject every Put and serve 0% hits.
func (c *cluster) buildTiers() []kvstore.Tier {
	cfgs := c.cfg.tierConfigs()
	tiers := make([]kvstore.Tier, len(cfgs))
	for i, tc := range cfgs {
		shards := c.cfg.shards()
		if tc.Capacity > 0 {
			if maxShards := int(tc.Capacity / c.chunkBytes); maxShards < shards {
				shards = maxShards
				if shards < 1 {
					shards = 1
				}
			}
		}
		tiers[i] = kvstore.Tier{Device: tc.Device, Capacity: tc.Capacity, Shards: shards}
	}
	return tiers
}

// run executes the simulation and aggregates the Result.
func (c *cluster) run() Result {
	cfg := c.cfg

	c.chunkBytes = cfg.Spec.KVBytes(cfg.ChunkTokens)
	c.tokenBytes = cfg.Spec.KVBytesPerToken()
	c.decodeUnit = cfg.Spec.DecodeSecPerToken
	c.policy = cfg.policy()
	c.budget = c.policy.PrefillBudget()
	c.schedOn = cfg.schedMetrics()
	c.prefetchOn = cfg.prefetchOn()
	c.store = kvstore.MustTiered(c.buildTiers(), kvstore.LRU)
	defer c.store.Close()
	if c.prefetchOn {
		c.pop = kvstore.NewPopularity(popHalflife, popMaxEntries)
	}

	c.clock = sim.NewClock()
	c.queue = sim.NewQueue[request](c.clock)
	c.busy = make([]float64, cfg.replicas())
	if cfg.prefetchActive() {
		c.pfQueue = sim.NewQueue[prefetchJob](c.clock)
	}

	c.clock.Go("arrivals", func(p *sim.Proc) {
		for _, r := range c.reqs {
			p.SleepUntil(r.arrival)
			// Sample the depth each post-warmup arrival finds, excluding
			// itself (arrivals see time averages — PASTA); warmup-period
			// arrivals are excluded like every other warmup sample.
			if r.idx >= c.warmup {
				c.depthSum += float64(c.queue.Len())
				c.depthN++
			}
			c.queue.Push(r)
			if c.pfQueue != nil {
				// The loaders start moving this request's chunks while it
				// queues; under the predictive policy a backed-up queue
				// additionally triggers a popularity-driven promotion.
				c.pfQueue.Push(prefetchJob{ids: r.ids})
				if cfg.PrefetchPolicy == PrefetchPredictive && c.queue.Len() > cfg.replicas() {
					c.pfQueue.Push(prefetchJob{})
				}
			}
		}
		c.queue.Close()
		if c.pfQueue != nil {
			c.pfQueue.Close()
		}
	})
	for r := 0; r < cfg.replicas(); r++ {
		r := r
		c.clock.Go(fmt.Sprintf("replica-%d", r), func(p *sim.Proc) {
			c.replica(p, r)
		})
		if c.pfQueue != nil {
			c.clock.Go(fmt.Sprintf("loader-%d", r), c.loader)
		}
	}
	end := c.clock.Run()

	res := Result{
		Requests:   c.completed,
		Replicas:   cfg.replicas(),
		MeanBatch:  c.batchHist.Mean(),
		BatchSizes: c.batchHist.Counts(),
	}
	res.MeanTTFT = metrics.Mean(c.ttfts)
	res.P95TTFT = metrics.Percentile(c.ttfts, 95)
	window := c.lastDone - c.cutoff
	if c.completed > 0 && window > 0 {
		res.Throughput = float64(c.completed) / window
	}
	st := c.store.Stats()
	res.HitRate = st.HitRate()
	res.Lookups = st.Hits + st.Misses
	res.Misses = st.Misses
	for _, ts := range c.store.TierStats() {
		res.Tiers = append(res.Tiers, TierUsage{
			Device:        ts.Device,
			Hits:          ts.Hits,
			HitRate:       metrics.Ratio(ts.Hits, res.Lookups),
			Promotions:    ts.Promotions,
			Demotions:     ts.Demotions,
			BytesResident: ts.BytesResident,
		})
	}
	if c.depthN > 0 {
		res.MeanQueueDepth = c.depthSum / float64(c.depthN)
	}
	res.ReplicaUtil = make([]float64, len(c.busy))
	for i, b := range c.busy {
		res.ReplicaUtil[i] = metrics.Utilization(b, end-c.cutoff)
	}
	if c.hasDecode {
		res.MeanTBT = metrics.Mean(c.tbts)
		res.P95TBT = metrics.Percentile(c.tbts, 95)
		res.MeanE2E = metrics.Mean(c.e2es)
		res.P95E2E = metrics.Percentile(c.e2es, 95)
		res.OutputTokens = c.outTokens
		if c.outTokens > 0 && window > 0 {
			res.TokenThroughput = float64(c.outTokens) / window
		}
		if steps := c.stepsPrefill + c.stepsDecode + c.stepsMixed; steps > 0 {
			res.PrefillStepShare = float64(c.stepsPrefill) / float64(steps)
			res.DecodeStepShare = float64(c.stepsDecode) / float64(steps)
			res.MixedStepShare = float64(c.stepsMixed) / float64(steps)
		}
	}
	if c.schedOn {
		res.StallTime = c.stallTime
		res.MeanPrefillDelay = metrics.Mean(c.prefillDelays)
		res.P95PrefillDelay = metrics.Percentile(c.prefillDelays, 95)
	}
	if c.prefetchOn {
		pf := c.store.PrefetchStats()
		res.TierStallTime = c.tierStall
		res.PrefetchIssued = pf.Issued
		res.PrefetchHits = pf.Hits
		res.PrefetchWastedBytes = pf.BytesWasted
		if len(res.Tiers) > 0 {
			res.HBMHitRate = metrics.Ratio(res.Tiers[0].Hits+pf.InflightJoins, res.Lookups)
		}
	}
	res.Tenants = c.tenantUsage()
	return res
}

// tenantUsage renders the per-tenant accumulators, ordered by tenant id.
// Single-tenant streams report nil, keeping legacy Results unchanged.
func (c *cluster) tenantUsage() []TenantUsage {
	if !c.multiTenant {
		return nil
	}
	ids := make([]int, 0, len(c.tenants))
	for id := range c.tenants {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]TenantUsage, 0, len(ids))
	for _, id := range ids {
		acc := c.tenants[id]
		out = append(out, TenantUsage{
			Tenant:       id,
			Requests:     len(acc.ttfts),
			MeanTTFT:     metrics.Mean(acc.ttfts),
			P95TTFT:      metrics.Percentile(acc.ttfts, 95),
			HitRate:      metrics.Ratio(acc.hits, acc.lookups),
			Lookups:      acc.lookups,
			MeanTBT:      metrics.Mean(acc.tbts),
			P95TBT:       metrics.Percentile(acc.tbts, 95),
			MeanE2E:      metrics.Mean(acc.e2es),
			OutputTokens: acc.outTokens,
		})
	}
	return out
}

// replica is one worker process: it keeps a running batch, admitting from
// the shared queue under the scheduling policy and stepping every member
// — prefilling or decoding — in lockstep, retiring completions at step
// boundaries.
func (c *cluster) replica(p *sim.Proc, r int) {
	var batch []*member
	deferred := 0 // consecutive boundaries the policy held the door while work waited
	for {
		if len(batch) == 0 {
			// Idle: block on the admission queue. Policies only gate
			// top-ups — an empty replica always takes the next request.
			req, ok := c.queue.Pop(p)
			if !ok {
				return // queue closed and drained, batch empty — done
			}
			batch = append(batch, c.admit(req, p.Now()))
			deferred = 0
		}
		// Continuous batching, join side: the policy decides how many of
		// the waiting requests may join at this step boundary (FIFO takes
		// everything that fits; decode-priority holds prefills while the
		// batch decodes). New requests only enter at a step boundary.
		prefillers, decoders := 0, 0
		for _, m := range batch {
			if m.decoding {
				decoders++
			} else {
				prefillers++
			}
		}
		headroom := c.cfg.maxBatch() - len(batch)
		quota := c.policy.AdmitQuota(prefillers, decoders, headroom, deferred)
		if quota > headroom {
			quota = headroom
		}
		admitted := 0
		for admitted < quota {
			req, ok := c.queue.TryPop()
			if !ok {
				break
			}
			batch = append(batch, c.admit(req, p.Now()))
			admitted++
		}
		if admitted > 0 {
			deferred = 0
		} else if headroom > 0 && c.queue.Len() > 0 {
			deferred++ // work waited at an open door — age it
		}
		// Execute one step for every member in lockstep: the longest
		// member paces the step, each extra sequence adds the marginal
		// batching cost of the step's phase mix; budgeted policies bound
		// the prefill tokens the step may spend.
		step, stall := c.planStep(batch)
		p.Sleep(step)
		now := p.Now()
		c.observeStep(batch, step, stall, now, r)
		// Advance every member one step; retire at phase ends.
		live := batch[:0]
		for _, m := range batch {
			if !m.decoding {
				var done bool
				if c.budget > 0 {
					if m.slice == 0 {
						// Resident but idle: this step's budget was
						// spent by members admitted ahead of it.
						live = append(live, m)
						continue
					}
					m.prefDone += m.slice
					m.slice = 0
					done = m.prefDone >= m.prefTotal
				} else {
					m.remaining--
					done = m.remaining == 0
				}
				if !done {
					live = append(live, m)
					continue
				}
				// Last prefill step: the first token is out.
				c.firstToken(m, now)
				if m.req.decode == 0 {
					c.retire(m, now) // legacy prefill-only request
					continue
				}
				m.decoding = true
				m.unit = c.decodeUnit
				m.remaining = m.req.decode
				live = append(live, m)
				continue
			}
			c.token(m, now)
			m.remaining--
			if m.remaining == 0 {
				c.retire(m, now)
				continue
			}
			live = append(live, m)
		}
		batch = live
	}
}

// planStep prices the batch's next step under the active policy and
// reports its decoder-seconds of stall. Whole-chunk policies price with
// stepTime (the legacy model, bit for bit); a budgeted policy allocates
// the step's prefill token slices first and prices the bounded slice
// with the engine's chunked mixed-step model.
func (c *cluster) planStep(batch []*member) (step, stall float64) {
	if c.budget > 0 {
		prefillers, decoders, longest := allocPrefill(batch, c.budget)
		if prefillers == 0 {
			return engine.DecodeStepTime(c.decodeUnit, len(batch), c.cfg.decodeOverhead()), 0
		}
		decodeUnit := 0.0
		if decoders > 0 {
			decodeUnit = c.decodeUnit
		}
		step = engine.ChunkedStepTime(longest, decodeUnit, prefillers, decoders,
			c.cfg.batchOverhead(), c.cfg.decodeOverhead())
		return step, c.stall(step, decoders, len(batch))
	}
	step = c.stepTime(batch)
	decoders := 0
	for _, m := range batch {
		if m.decoding {
			decoders++
		}
	}
	if decoders == len(batch) {
		return step, 0 // decode-only: nothing paced by prefill
	}
	return step, c.stall(step, decoders, len(batch))
}

// stall is the decoder-seconds a prefill-paced step costs beyond the
// decode-only step its decoders would have run at the same width — the
// head-of-line blocking the scheduling telemetry quantifies. Zero when
// the telemetry is off, so the legacy path computes nothing new.
func (c *cluster) stall(step float64, decoders, width int) float64 {
	if decoders == 0 || !c.schedOn {
		return 0
	}
	extra := step - engine.DecodeStepTime(c.decodeUnit, width, c.cfg.decodeOverhead())
	if extra <= 0 {
		return 0
	}
	return extra * float64(decoders)
}

// admit computes the request's per-scheme prefill service time against
// the shared store's current state and splits it into chunk-boundary
// steps — or, under a budgeted policy, into token-granularity progress
// over the same total service time; the decode budget rides along on
// the member. now is the admission instant, sampled for the
// prefill-delay telemetry.
func (c *cluster) admit(req request, now float64) *member {
	steps := len(req.ids) + 1 // one per chunk, one for the query
	service, lookups, hits, stall := c.serviceTime(req.ids, now)
	m := &member{req: req, unit: service / float64(steps), remaining: steps,
		lookups: lookups, hits: hits}
	if c.budget > 0 {
		m.prefTotal = len(req.ids)*c.cfg.ChunkTokens + c.cfg.QueryTokens
		m.perTok = service / float64(m.prefTotal)
	}
	if req.decode > 0 {
		m.genKey = genKey(c.cfg, req.idx)
	}
	// Telemetry sampled at admission uses the same unified time cutoff as
	// every other metric (a warmup-indexed request admitted after the
	// cutoff IS part of the measured window's load).
	if c.schedOn && now > c.cutoff {
		c.prefillDelays = append(c.prefillDelays, now-req.arrival)
	}
	if c.prefetchOn && now > c.cutoff {
		c.tierStall += stall
	}
	return m
}

// genKey is the store key of one request's generated (decode) KV — a
// namespace of its own, so generation growth can never alias a context
// chunk's cache entry.
func genKey(cfg Config, idx int) chunk.ID {
	return chunk.Hash(cfg.Spec.Name+"/gen", []int{idx})
}

// stepTime is the virtual duration of one batched step: the longest
// member paces it, every extra sequence adds a marginal cost. A step
// with any prefilling member is FLOP-bound and priced with the prefill
// batch overhead; a decode-only step runs at the engine's
// memory-bandwidth-bound decode-step cost, whose width factor is far
// smaller — which is exactly why decode-heavy batches sustain high token
// throughput while a single interleaved prefill stalls every decoder in
// the batch for a whole chunk step.
func (c *cluster) stepTime(batch []*member) float64 {
	longest := 0.0
	anyPrefill := false
	for _, m := range batch {
		if m.unit > longest {
			longest = m.unit
		}
		if !m.decoding {
			anyPrefill = true
		}
	}
	if anyPrefill {
		return longest * (1 + c.cfg.batchOverhead()*float64(len(batch)-1))
	}
	return engine.DecodeStepTime(longest, len(batch), c.cfg.decodeOverhead())
}

// observeStep records one executed step's telemetry — batch size, busy
// time, stall, phase composition — unless it ends inside the warmup
// period (one cutoff for every metric, the cutoff TTFT uses).
func (c *cluster) observeStep(batch []*member, step, stall, now float64, r int) {
	if now <= c.cutoff {
		return
	}
	// A step straddling the cutoff only credits its post-cutoff portion:
	// utilization's denominator starts at the cutoff, so crediting the
	// whole step would overstate busy time (and could push it past 1).
	// Stall is pro-rated the same way.
	if busy := now - c.cutoff; busy < step {
		stall *= busy / step
		step = busy
	}
	c.busy[r] += step
	c.stallTime += stall
	c.batchHist.Observe(len(batch))
	prefill, decode := false, false
	for _, m := range batch {
		if m.decoding {
			decode = true
		} else {
			prefill = true
		}
	}
	switch {
	case prefill && decode:
		c.stepsMixed++
	case decode:
		c.stepsDecode++
	default:
		c.stepsPrefill++
	}
}

// firstToken marks the prefill→decode transition: TTFT is recorded here,
// not at retirement, and the first token's KV lands in the shared store
// for requests that will keep generating.
func (c *cluster) firstToken(m *member, now float64) {
	m.lastToken = now
	if m.req.decode > 0 {
		m.genBytes = c.tokenBytes
		c.store.Put(m.genKey, kvstore.Bytes(m.genBytes)) //nolint:errcheck
	}
	if m.req.idx < c.warmup {
		return
	}
	ttft := now - m.req.arrival
	c.ttfts = append(c.ttfts, ttft)
	if c.multiTenant {
		c.acc(m.req.tenant).ttfts = append(c.acc(m.req.tenant).ttfts, ttft)
	}
}

// token records one decode step's emitted token: a time-between-tokens
// sample and another token's worth of KV appended to the request's
// growing entry in the shared store — generation competing with cached
// chunks for the fast tiers is what makes decode-phase KV pressure real.
func (c *cluster) token(m *member, now float64) {
	m.genBytes += c.tokenBytes
	c.store.Put(m.genKey, kvstore.Bytes(m.genBytes)) //nolint:errcheck
	if m.req.idx >= c.warmup {
		tbt := now - m.lastToken
		c.tbts = append(c.tbts, tbt)
		if c.multiTenant {
			c.acc(m.req.tenant).tbts = append(c.acc(m.req.tenant).tbts, tbt)
		}
	}
	m.lastToken = now
}

// retire removes a finished request from the system: its generated KV is
// released from the store, and post-warmup requests contribute their
// completion statistics.
func (c *cluster) retire(m *member, now float64) {
	if m.req.decode > 0 {
		c.store.Remove(m.genKey)
	}
	if m.req.idx < c.warmup {
		return
	}
	c.completed++
	if now > c.lastDone {
		c.lastDone = now
	}
	var acc *tenantAcc
	if c.multiTenant {
		acc = c.acc(m.req.tenant)
		acc.lookups += m.lookups
		acc.hits += m.hits
	}
	if c.hasDecode {
		e2e := now - m.req.arrival
		tokens := int64(1 + m.req.decode)
		c.e2es = append(c.e2es, e2e)
		c.outTokens += tokens
		if acc != nil {
			acc.e2es = append(acc.e2es, e2e)
			acc.outTokens += tokens
		}
	}
}

// acc returns (allocating if needed) the tenant's accumulator.
func (c *cluster) acc(tenant int) *tenantAcc {
	a := c.tenants[tenant]
	if a == nil {
		a = &tenantAcc{}
		c.tenants[tenant] = a
	}
	return a
}
