// Package serve simulates an LLM serving deployment end to end: a
// workload-generated (or trace-replayed) request stream into a shared
// admission queue, N replica workers with continuous batching (requests
// join and leave a running batch at step boundaries), a capacity-bounded
// sharded KV cache store shared by all replicas, and per-scheme prefill
// costs from the calibrated timing model. Requests run a two-phase
// lifecycle: chunk-granularity prefill steps, then — when the workload
// gives them a generation budget (workload.Request.DecodeTokens) —
// per-token decode steps that batch with other members' prefills and
// decodes the way a vLLM-style continuous-batching scheduler interleaves
// them, growing the request's KV footprint in the shared store as tokens
// are generated. It reproduces the paper's throughput study (Figure 14)
// — TTFT as a function of request rate for CacheBlend, full KV recompute
// and prefix caching — and extends it with the replica- and
// batch-scaling dimension a production deployment lives in, the bursty,
// diurnal and multi-tenant arrival patterns real RAG traffic shows
// (internal/workload), and the decode-phase contention (TBT, end-to-end
// latency, generation-aware KV pressure) that erodes prefill wins in
// real deployments.
//
// The runtime runs on sim.Clock: every replica is a real goroutine, but
// the virtual-time scheduler hands execution to one process at a time, so
// runs with the same seed are bit-identical while go test -race still
// observes every cross-replica hand-off.
package serve

import (
	"fmt"
	"math"

	"repro/internal/baselines"
	"repro/internal/chunk"
	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/kvstore"
	"repro/internal/timing"
	"repro/internal/workload"
)

// TierConfig places one level of the KV storage hierarchy, fastest first.
type TierConfig struct {
	// Device is the tier's storage device.
	Device device.Device
	// Capacity is the tier's byte budget; 0 = unbounded (bottom tier
	// only).
	Capacity int64
}

// Config describes one serving configuration.
type Config struct {
	// Spec is the served model's delay profile.
	Spec timing.Spec
	// Scheme selects the KV handling strategy (FullRecompute,
	// PrefixCaching, FullKVReuse or CacheBlend; the Map* schemes are
	// quality baselines, not serving modes).
	Scheme baselines.Scheme
	// Ratio is CacheBlend's recompute ratio. With Tiers configured it is
	// the quality floor r* instead: each chunk's ratio is picked by the
	// loading controller against the tier the chunk was found on, never
	// below Ratio (§5.1).
	Ratio float64
	// Device stores the KV caches.
	Device device.Device
	// StoreCapacity bounds the KV store (0 = unbounded).
	StoreCapacity int64
	// Tiers places the KV store across a storage hierarchy (e.g. GPU-HBM
	// → CPU-RAM → NVMe): lookups search top-down, hits promote hot
	// chunks upward, capacity pressure demotes LRU victims to the next
	// tier, and only the bottom tier evicts. Each tier is sharded like
	// the flat store. Empty means one tier on Device with StoreCapacity —
	// the original single-device runtime.
	Tiers []TierConfig
	// StoreShards splits the KV store into independently locked shards
	// keyed by chunk-ID hash. Each shard gets an equal slice of
	// StoreCapacity and runs its own LRU. 0 picks a default: 1 shard for
	// a single replica (exact global LRU, the paper's setup), 8 when
	// replicas share the store.
	StoreShards int
	// Replicas is the number of model replicas pulling from the shared
	// admission queue (0 = 1).
	Replicas int
	// MaxBatch caps how many requests one replica advances per step with
	// continuous batching (0 = 1, no batching).
	MaxBatch int
	// BatchOverhead is the marginal step-time factor of each additional
	// sequence in a batch: a step over B requests costs the longest
	// member step × (1 + BatchOverhead×(B−1)). Values below 1 make
	// batching pay (amortised weight loading, cf. Figure 15c); 0 uses
	// the default 0.35. It prices prefill-paced steps — any step whose
	// batch contains at least one prefilling member.
	BatchOverhead float64
	// DecodeOverhead is the marginal step-time factor of each additional
	// sequence in a decode-only step (engine.DecodeStepTime). Decode is
	// memory-bandwidth-bound — the batch shares one weight stream and only
	// per-sequence KV reads scale with width — so its marginal cost is far
	// below prefill's; 0 uses the default 0.08.
	DecodeOverhead float64
	// Sched selects the scheduling policy controlling batch admission
	// and per-step prefill budgets: "" or SchedFIFO (legacy greedy
	// admission, whole-chunk prefill steps), SchedChunkedPrefill
	// (per-step prefill token budget, see PrefillBudget),
	// SchedDecodePriority (defer prefill admission while the batch
	// decodes, see StarveLimit), or SchedSLO (reserved stub, FIFO
	// behaviour). The empty default is bit-identical to the pre-policy
	// runtime; any named policy — "fifo" included — additionally
	// populates the scheduling telemetry in Result.
	Sched string
	// PrefillBudget caps the prefill tokens one step may spend across
	// the batch's prefilling members under SchedChunkedPrefill,
	// splitting a joining request's prefill over multiple steps so
	// resident decoders keep near-decode cadence. 0 uses the default
	// 256; setting it with any other policy is a validation error.
	PrefillBudget int
	// StarveLimit bounds SchedDecodePriority's deferral: after this
	// many consecutive step boundaries where admission was deferred
	// while work waited, the replica admits one request regardless, so
	// prefill delay stays finite at overload. Under SchedSLO it is the
	// aging bound instead: a request waiting longer than
	// StarveLimit×SLOTTFT jumps to the front of the admission order, so
	// deprioritised late requests can't starve. 0 uses the default 8;
	// setting it with any other policy is a validation error.
	StarveLimit int
	// SLOTTFT is the per-request TTFT target in seconds: a request meets
	// its SLO only if its first token arrives within SLOTTFT of its
	// arrival. Required (> 0) by SchedSLO, whose admission order is
	// deadline-aware against this target; with any other explicit policy
	// it only turns on the SLO attainment/goodput telemetry in Result, so
	// sweeps can measure fifo or chunked-prefill against the same
	// targets. Setting it without an explicit Config.Sched is a
	// validation error (the legacy default stays byte-identical).
	SLOTTFT float64
	// SLOTBT is the per-request mean time-between-tokens target in
	// seconds: a decode-enabled request meets its SLO only if its mean
	// TBT is within SLOTBT (prefill-only requests satisfy it trivially).
	// 0 leaves TBT out of the SLO; like SLOTTFT it requires an explicit
	// scheduling policy.
	SLOTBT float64
	// PrefetchPolicy selects the asynchronous tier-prefetch behaviour:
	// "" (legacy synchronous loading, no prefetch telemetry), PrefetchOff
	// (same synchronous loading with the telemetry populated — the
	// baseline async policies are compared against), PrefetchOnEnqueue
	// (per-replica loaders promote each arriving request's chunks while
	// it queues) or PrefetchPredictive (on-enqueue plus popularity-driven
	// promotion of the hottest cold chunks on a queue-depth signal). The
	// active policies require a multi-tier hierarchy and a chunk-reusing
	// scheme (FullKVReuse or CacheBlend).
	PrefetchPolicy string
	// PrefetchBW is the loader's bandwidth budget as a fraction of the
	// source tier's read bandwidth, in (0, 1]; 0 uses the full device.
	// Setting it requires an active prefetch policy.
	PrefetchBW float64
	// Router selects the replica-routing topology: "" (legacy shared
	// store, no router telemetry), RouterShared (the same single-node
	// schedule with the router telemetry populated), RouterHash
	// (per-replica tier stacks, consistent chunk→replica hashing) or
	// RouterAffinity (per-replica tier stacks, overlap-scored routing
	// reusing the popularity estimator the predictive prefetcher ranks
	// with). The routed policies give every replica the full configured
	// tier stack — each replica models a node with its own hardware, so
	// a routed cluster has replicas× the shared baseline's aggregate
	// capacity, the way scaling out adds HBM — and require a
	// chunk-reusing scheme (FullKVReuse or CacheBlend).
	Router string
	// Events schedules replica-membership changes over the run: kills
	// (a node fails, its queued work re-routes to survivors) and joins
	// (a cold node is added under load). Events must be time-ordered;
	// see MembershipEvent for the per-event semantics. Empty keeps the
	// static replica set and every legacy Result byte-identical.
	Events []MembershipEvent
	// ChunkPool is the number of distinct chunks in the corpus.
	ChunkPool int
	// ChunksPerRequest is how many chunks each request retrieves.
	ChunksPerRequest int
	// ChunkTokens is the token length of each chunk.
	ChunkTokens int
	// QueryTokens is the fresh suffix length.
	QueryTokens int
	// Skew is the chunk popularity skew (sim.Zipf exponent).
	Skew float64
}

// replicas returns the effective replica count.
func (c Config) replicas() int {
	if c.Replicas <= 0 {
		return 1
	}
	return c.Replicas
}

// maxBatch returns the effective per-step batch cap.
func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 1
	}
	return c.MaxBatch
}

// batchOverhead returns the effective marginal batch cost factor.
func (c Config) batchOverhead() float64 {
	if c.BatchOverhead <= 0 {
		return 0.35
	}
	return c.BatchOverhead
}

// decodeOverhead returns the effective marginal decode-step width factor.
func (c Config) decodeOverhead() float64 {
	if c.DecodeOverhead <= 0 {
		return 0.08
	}
	return c.DecodeOverhead
}

// prefillBudget returns the effective chunked-prefill token budget.
func (c Config) prefillBudget() int {
	if c.PrefillBudget <= 0 {
		return 256
	}
	return c.PrefillBudget
}

// starveLimit returns the effective decode-priority aging bound.
func (c Config) starveLimit() int {
	if c.StarveLimit <= 0 {
		return 8
	}
	return c.StarveLimit
}

// sloOn reports whether the run populates the SLO attainment telemetry
// in Result: per-request targets configured alongside an explicit
// scheduling policy (so legacy Results stay byte-identical, and sweeps
// can measure any policy — fifo included — against the same targets).
func (c Config) sloOn() bool {
	return c.Sched != "" && (c.SLOTTFT > 0 || c.SLOTBT > 0)
}

// shards returns the effective store shard count.
func (c Config) shards() int {
	if c.StoreShards > 0 {
		return c.StoreShards
	}
	if c.replicas() == 1 {
		return 1 // exact global LRU when nothing contends
	}
	return 8
}

// tiered reports whether a multi-tier hierarchy is configured.
func (c Config) tiered() bool { return len(c.Tiers) > 0 }

// tierConfigs returns the effective hierarchy: the configured Tiers, or
// the single-device fallback built from Device and StoreCapacity.
func (c Config) tierConfigs() []TierConfig {
	if c.tiered() {
		return c.Tiers
	}
	return []TierConfig{{Device: c.Device, Capacity: c.StoreCapacity}}
}

// chunks returns the workload sampling parameters embedded in the config,
// for the Poisson wrapper and the CLI's generator construction.
func (c Config) chunks() workload.Chunks {
	return workload.Chunks{Pool: c.ChunkPool, PerRequest: c.ChunksPerRequest, Skew: c.Skew}
}

// Validate reports a descriptive error for configurations that used to
// panic deep inside the simulator (degenerate token counts, non-serving
// schemes, broken tier stacks). Workload sampling parameters (ChunkPool,
// ChunksPerRequest, Skew) are validated by the workload that uses them;
// here they only need to be non-negative.
func (c Config) Validate() error {
	switch c.Scheme {
	case baselines.FullRecompute, baselines.PrefixCaching, baselines.FullKVReuse, baselines.CacheBlend:
	default:
		return fmt.Errorf("scheme %q is not a serving mode", c.Scheme)
	}
	switch {
	case c.Spec.Layers <= 0:
		return fmt.Errorf("model spec %q: no layers", c.Spec.Name)
	case c.ChunkTokens <= 0:
		return fmt.Errorf("chunk tokens %d: must be positive", c.ChunkTokens)
	case c.QueryTokens < 0:
		return fmt.Errorf("query tokens %d: negative", c.QueryTokens)
	case c.Ratio < 0 || c.Ratio > 1:
		return fmt.Errorf("recompute ratio %v: must be in [0, 1]", c.Ratio)
	case c.ChunkPool < 0:
		return fmt.Errorf("chunk pool %d: negative", c.ChunkPool)
	case c.ChunksPerRequest < 0:
		return fmt.Errorf("chunks per request %d: negative", c.ChunksPerRequest)
	case c.Skew < 0:
		return fmt.Errorf("chunk skew %v: negative", c.Skew)
	case c.Replicas < 0:
		return fmt.Errorf("replicas %d: negative", c.Replicas)
	case c.MaxBatch < 0:
		return fmt.Errorf("max batch %d: negative", c.MaxBatch)
	case c.BatchOverhead < 0:
		return fmt.Errorf("batch overhead %v: negative", c.BatchOverhead)
	case c.DecodeOverhead < 0:
		return fmt.Errorf("decode overhead %v: negative", c.DecodeOverhead)
	case c.StoreShards < 0:
		return fmt.Errorf("store shards %d: negative", c.StoreShards)
	case c.StoreCapacity < 0:
		return fmt.Errorf("store capacity %d: negative", c.StoreCapacity)
	case c.PrefillBudget < 0:
		return fmt.Errorf("prefill budget %d: negative", c.PrefillBudget)
	case c.StarveLimit < 0:
		return fmt.Errorf("starve limit %d: negative", c.StarveLimit)
	}
	switch c.Sched {
	case "", SchedFIFO, SchedChunkedPrefill, SchedDecodePriority, SchedSLO:
	default:
		return fmt.Errorf("scheduling policy %q: want %s, %s, %s or %s",
			c.Sched, SchedFIFO, SchedChunkedPrefill, SchedDecodePriority, SchedSLO)
	}
	if c.PrefillBudget > 0 && c.Sched != SchedChunkedPrefill && c.Sched != SchedSLO {
		return fmt.Errorf("prefill budget %d requires the %s or %s policy (got %q)",
			c.PrefillBudget, SchedChunkedPrefill, SchedSLO, c.Sched)
	}
	if c.StarveLimit > 0 && c.Sched != SchedDecodePriority && c.Sched != SchedSLO {
		return fmt.Errorf("starve limit %d requires the %s or %s policy (got %q)",
			c.StarveLimit, SchedDecodePriority, SchedSLO, c.Sched)
	}
	switch {
	case math.IsNaN(c.SLOTTFT) || math.IsInf(c.SLOTTFT, 0) || c.SLOTTFT < 0:
		return fmt.Errorf("TTFT SLO target %v: must be finite and non-negative", c.SLOTTFT)
	case math.IsNaN(c.SLOTBT) || math.IsInf(c.SLOTBT, 0) || c.SLOTBT < 0:
		return fmt.Errorf("TBT SLO target %v: must be finite and non-negative", c.SLOTBT)
	}
	if (c.SLOTTFT > 0 || c.SLOTBT > 0) && c.Sched == "" {
		return fmt.Errorf("SLO targets require an explicit scheduling policy (set Config.Sched)")
	}
	if c.Sched == SchedSLO && c.SLOTTFT <= 0 {
		return fmt.Errorf("the %s policy requires a TTFT target (set Config.SLOTTFT)", SchedSLO)
	}
	if err := c.validatePrefetch(); err != nil {
		return err
	}
	if err := c.validateRouter(); err != nil {
		return err
	}
	if err := c.validateEvents(); err != nil {
		return err
	}
	tiers := c.tierConfigs()
	for i, tc := range tiers {
		if err := tc.Device.Validate(); err != nil {
			return fmt.Errorf("tier %d: %w", i, err)
		}
		if tc.Capacity < 0 {
			return fmt.Errorf("tier %d (%s): negative capacity %d", i, tc.Device.Name, tc.Capacity)
		}
		if tc.Capacity == 0 && i < len(tiers)-1 {
			return fmt.Errorf("tier %d (%s): capacity 0 (unbounded) is only allowed on the bottom tier", i, tc.Device.Name)
		}
	}
	return nil
}

// Result summarises one simulated run. TTFT is measured at the request's
// first token (the prefill→decode transition); the batch-size histogram,
// queue depth, replica utilization, throughput and every decode metric
// use the same warmup cutoff TTFT does — samples from the warmup period
// (before the first post-warmup request arrives) are excluded everywhere.
type Result struct {
	Rate       float64 // offered request rate (req/s)
	MeanTTFT   float64
	P95TTFT    float64
	Throughput float64 // completed requests/s over the run
	HitRate    float64 // KV store hit rate over chunk lookups
	Requests   int
	// Replicas is the replica count the run used.
	Replicas int
	// MeanBatch is the mean executed batch size across post-warmup
	// replica steps.
	MeanBatch float64
	// BatchSizes histograms executed batch sizes (size → step count).
	BatchSizes map[int]int64
	// MeanQueueDepth is the admission-queue depth each post-warmup
	// arrival found (excluding itself).
	MeanQueueDepth float64
	// ReplicaUtil is each replica's busy fraction of the post-warmup run.
	ReplicaUtil []float64
	// Decode-phase telemetry, populated only when the stream generates
	// output tokens (some request carries DecodeTokens > 0). Prefill-only
	// runs leave every field below zero, keeping their Results
	// byte-compatible with the pre-decode runtime.
	//
	// MeanTBT/P95TBT summarise time-between-tokens across all post-warmup
	// decode steps: the gap between one emitted token and the next, the
	// per-token latency a streaming client sees after the first token.
	MeanTBT float64 `json:",omitempty"`
	P95TBT  float64 `json:",omitempty"`
	// MeanE2E/P95E2E summarise end-to-end request latency (arrival to
	// last generated token).
	MeanE2E float64 `json:",omitempty"`
	P95E2E  float64 `json:",omitempty"`
	// OutputTokens counts post-warmup generated tokens (first tokens
	// included); TokenThroughput is OutputTokens per second over the
	// measured window.
	OutputTokens    int64   `json:",omitempty"`
	TokenThroughput float64 `json:",omitempty"`
	// PrefillStepShare, DecodeStepShare and MixedStepShare split the
	// post-warmup executed steps by batch composition: all members
	// prefilling, all decoding, or both phases interleaved (the
	// continuous-batching contention case where decode tokens are paced
	// by a neighbour's prefill chunk). They sum to 1.
	PrefillStepShare float64 `json:",omitempty"`
	DecodeStepShare  float64 `json:",omitempty"`
	MixedStepShare   float64 `json:",omitempty"`
	// Scheduling telemetry, populated only when Config.Sched names a
	// policy explicitly (the empty legacy default leaves all three
	// zero, keeping pre-policy Results byte-identical; naming "fifo"
	// measures the same schedule with the telemetry on).
	//
	// StallTime sums, over post-warmup mixed steps, the decoder-seconds
	// lost to prefill pacing: (step duration − what a decode-only step
	// of the same width would have cost) × resident decoders. It is the
	// head-of-line blocking a scheduling policy is supposed to remove.
	StallTime float64 `json:",omitempty"`
	// MeanPrefillDelay/P95PrefillDelay summarise the wait between a
	// post-warmup request's arrival and its admission into a replica
	// batch — pure queueing under FIFO, queueing plus deferred
	// admission under decode-priority (bounded by StarveLimit).
	MeanPrefillDelay float64 `json:",omitempty"`
	P95PrefillDelay  float64 `json:",omitempty"`
	// SLO telemetry, populated only when per-request targets
	// (Config.SLOTTFT/SLOTBT) are configured alongside an explicit
	// policy (legacy Results stay byte-identical; any policy — fifo
	// included — measures against the same targets, so SLO sweeps
	// compare like against like).
	//
	// SLOAttainment is the fraction of measured completed requests
	// meeting every configured target (TTFT ≤ SLOTTFT and mean TBT ≤
	// SLOTBT); SLOTTFTAttainment/SLOTBTAttainment split it by dimension
	// (each only when its target is set).
	SLOAttainment     float64 `json:",omitempty"`
	SLOTTFTAttainment float64 `json:",omitempty"`
	SLOTBTAttainment  float64 `json:",omitempty"`
	// Goodput is the SLO-met completion rate (requests/s over the
	// measured window) — the throughput that actually counts once
	// deadlines matter: a scheduler can buy throughput by finishing
	// hopeless requests ahead of feasible ones, and goodput is what that
	// trade destroys.
	Goodput float64 `json:",omitempty"`
	// SLOViolations counts measured completed requests that missed at
	// least one configured target.
	SLOViolations int64 `json:",omitempty"`
	// Prefetch telemetry, populated only when Config.PrefetchPolicy is
	// set ("off" included — the synchronous baseline with the telemetry
	// on, so sweeps compare like against like).
	//
	// TierStallTime sums, over post-warmup admissions, the prefill
	// seconds attributable to chunks not being HBM-resident: the
	// request's priced load/blend cost (residual transfer waits included)
	// minus what the same hits would have cost had every one been on the
	// top tier. It is the time asynchronous prefetch exists to remove.
	TierStallTime float64 `json:",omitempty"`
	// PrefetchIssued counts transfers the loaders started; PrefetchHits
	// how many lookups a prefetch served (in-flight joins plus first
	// reads of completed promotions); PrefetchWastedBytes the transfer
	// bytes that never served a read (cancelled, orphaned, or demoted
	// unread).
	PrefetchIssued      int64 `json:",omitempty"`
	PrefetchHits        int64 `json:",omitempty"`
	PrefetchWastedBytes int64 `json:",omitempty"`
	// HBMHitRate is the effective top-tier hit rate: lookups served from
	// HBM or from a transfer already flying toward it, over all lookups.
	HBMHitRate float64 `json:",omitempty"`
	// Cluster-routing telemetry, populated only when Config.Router names
	// a policy explicitly ("shared" included — the single-node baseline
	// with the telemetry on, so router sweeps compare like against like).
	//
	// Router echoes the policy the run used.
	Router string `json:",omitempty"`
	// ReplicaHitRates is each replica store's KV hit rate over its own
	// lookups — one entry per replica under the routed policies, a
	// single entry for the shared store otherwise.
	ReplicaHitRates []float64 `json:",omitempty"`
	// ReplicaRequests counts the requests each replica admitted into a
	// batch over the whole run (warmup included — it describes placement,
	// not service quality).
	ReplicaRequests []int64 `json:",omitempty"`
	// LoadSkew is the coefficient of variation of per-replica busy time
	// (0 = perfectly balanced). QueueSkew is the same statistic over the
	// per-replica mean queue depths sampled at each measured arrival —
	// routed policies only, the shared baseline has a single queue.
	LoadSkew  float64 `json:",omitempty"`
	QueueSkew float64 `json:",omitempty"`
	// DuplicationBytes is what the routed policies pay for per-replica
	// independence: bytes resident on more than one replica's tier stack
	// at run end, summed over the extra copies.
	DuplicationBytes int64 `json:",omitempty"`
	// Membership-event telemetry, populated only when Config.Events
	// schedules kills or joins (legacy and static-routing Results stay
	// byte-identical).
	//
	// Failovers counts the kill events that fired; ReroutedRequests the
	// requests a kill drained off a dead node's queue and re-routed to a
	// survivor (their original arrivals are kept, so the failover cost
	// appears as queueing delay in TTFT, never as dropped samples).
	Failovers        int   `json:",omitempty"`
	ReroutedRequests int64 `json:",omitempty"`
	// ReWarmStall sums, over measured re-routed requests, the tier-read
	// stall their admissions paid on the surviving node — the re-warm
	// transient of traffic whose cache locality died with its replica.
	ReWarmStall float64 `json:",omitempty"`
	// RecoveryTime is the transient length after the first kill: time
	// from the event until the 1-second-windowed mean TTFT is back
	// within 20% of the pre-event mean (the full remaining horizon when
	// that never happens).
	RecoveryTime float64 `json:",omitempty"`
	// Lookups is the total chunk-store lookup count; Misses is how many
	// missed every tier. Sum of per-tier Hits plus Misses equals Lookups.
	Lookups, Misses int64
	// Tiers is the per-tier placement telemetry, fastest tier first (one
	// entry even for an untiered run).
	Tiers []TierUsage
	// Tenants is the per-tenant service breakdown, present only when the
	// workload is multi-tenant (some request carries a non-zero tenant),
	// ordered by tenant id. Single-tenant runs leave it nil, keeping their
	// Results byte-compatible with the pre-workload runtime.
	Tenants []TenantUsage `json:",omitempty"`
}

// TenantUsage is one tenant's slice of a run's service quality, over its
// post-warmup completed requests.
type TenantUsage struct {
	// Tenant is the tenant id the workload stamped on its requests.
	Tenant int
	// Requests is the tenant's completed post-warmup request count.
	Requests int
	MeanTTFT float64
	P95TTFT  float64
	// HitRate is the tenant's KV hit rate over its own chunk lookups
	// (Lookups); tenants sharing a store contend for it, so a bursty or
	// low-skew neighbour shows up here as a depressed hit rate.
	HitRate float64
	Lookups int64
	// Decode-phase telemetry, populated only for decode-enabled streams
	// (zero and omitted otherwise, like the Result aggregates).
	MeanTBT      float64 `json:",omitempty"`
	P95TBT       float64 `json:",omitempty"`
	MeanE2E      float64 `json:",omitempty"`
	OutputTokens int64   `json:",omitempty"`
	// SLOAttainment is the tenant's fraction of measured completed
	// requests meeting every configured target — populated only when the
	// run's SLO telemetry is on (Config.SLOTTFT/SLOTBT with an explicit
	// policy), zero and omitted otherwise.
	SLOAttainment float64 `json:",omitempty"`
}

// TierUsage is one tier's share of a run's KV placement activity.
type TierUsage struct {
	// Device names the tier.
	Device string
	// Hits is how many lookups this tier served; HitRate is Hits over
	// all store lookups (hits and misses across the whole hierarchy).
	Hits    int64
	HitRate float64
	// Promotions counts chunks this tier lost upward on hit; Demotions
	// counts LRU victims it pushed down a tier.
	Promotions, Demotions int64
	// BytesResident is the tier's footprint when the run ended.
	BytesResident int64
}

// String renders the result as a table row; decode-enabled runs append
// the per-token and end-to-end latency columns.
func (r Result) String() string {
	s := fmt.Sprintf("rate=%.2f mean_ttft=%.3fs p95=%.3fs tput=%.2f hit=%.0f%% replicas=%d batch=%.1f qdepth=%.1f",
		r.Rate, r.MeanTTFT, r.P95TTFT, r.Throughput, r.HitRate*100, r.Replicas, r.MeanBatch, r.MeanQueueDepth)
	if r.OutputTokens > 0 {
		s += fmt.Sprintf(" tbt=%.3fs p95_tbt=%.3fs e2e=%.3fs tok/s=%.1f",
			r.MeanTBT, r.P95TBT, r.MeanE2E, r.TokenThroughput)
	}
	return s
}

// Run simulates n requests arriving at the given Poisson rate and returns
// aggregate TTFT/throughput statistics. The first warmup requests are
// excluded from statistics (the paper skips its first 1 000 queries while
// the store is cold). Same cfg, rate and seed ⇒ identical Result, bit
// compatible with the pre-workload runtime (the Poisson generator
// consumes the seed the same way the inlined sampling did).
//
// Run is the thin legacy wrapper: it builds a Poisson workload from the
// config's sampling fields and panics on invalid input — the validation
// errors are RunWorkload's, so the message still names the broken field.
func Run(cfg Config, rate float64, n, warmup int, seed int64) Result {
	w := workload.Poisson{Rate: rate, Chunks: cfg.chunks()}
	res, err := RunWorkload(cfg, w, n, warmup, seed)
	if err != nil {
		// Reject here, on the caller's goroutine, rather than mid-run on
		// a replica process.
		panic(err.Error())
	}
	res.Rate = rate // report the offered rate, not the realised one
	return res
}

// RunWorkload simulates the first n requests of the stream w yields and
// returns aggregate and per-tenant statistics, excluding the first warmup
// requests. Everything is validated up front with descriptive errors
// instead of panics. Result.Rate is the stream's realised mean arrival
// rate (so a replayed trace reproduces the generating run's Result field
// for field). Same cfg, workload and seed ⇒ identical Result.
//
// A workload implementing workload.ClosedLoopWorkload is driven in
// closed loop instead: arrivals come from the workload's Session, fed
// each request's completion at member retirement, so offered load
// self-throttles with service quality the way a finite client pool does.
// Open-loop workloads never hit that path — their runs (goldens
// included) stay byte-identical.
func RunWorkload(cfg Config, w workload.Workload, n, warmup int, seed int64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, fmt.Errorf("serve: %w", err)
	}
	if err := w.Validate(); err != nil {
		return Result{}, fmt.Errorf("serve: workload: %w", err)
	}
	if n <= 0 {
		return Result{}, fmt.Errorf("serve: n = %d: need at least one request", n)
	}
	if warmup < 0 {
		return Result{}, fmt.Errorf("serve: warmup = %d: negative", warmup)
	}
	if cw, ok := w.(workload.ClosedLoopWorkload); ok {
		return runClosedLoop(cfg, cw, n, warmup, seed)
	}
	reqs := w.Generate(n, seed)
	if len(reqs) == 0 {
		return Result{}, fmt.Errorf("serve: workload %s yielded no requests", w.Name())
	}
	if warmup >= len(reqs) {
		return Result{}, fmt.Errorf("serve: warmup %d must be below the stream's %d requests", warmup, len(reqs))
	}
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			return Result{}, fmt.Errorf("serve: workload %s: request %d: %w", w.Name(), i, err)
		}
		if i > 0 && reqs[i].Arrival < reqs[i-1].Arrival {
			return Result{}, fmt.Errorf("serve: workload %s: request %d arrives at %v, before request %d at %v",
				w.Name(), i, reqs[i].Arrival, i-1, reqs[i-1].Arrival)
		}
	}
	res := newCluster(cfg, reqs, warmup).run()
	if last := reqs[len(reqs)-1].Arrival; last > 0 {
		res.Rate = float64(len(reqs)) / last
	}
	return res, nil
}

// runClosedLoop drives a closed-loop session: the initial wave (each
// client's first request) is validated and dispatched like an open-loop
// stream, and every later arrival is issued by the session when the
// runtime reports a completion. Result.Rate is the realised arrival rate
// — under a closed loop it is an output of the run, not an input.
func runClosedLoop(cfg Config, w workload.ClosedLoopWorkload, n, warmup int, seed int64) (Result, error) {
	if warmup >= n {
		return Result{}, fmt.Errorf("serve: warmup %d must be below the run's %d requests", warmup, n)
	}
	if cfg.hasEvents() {
		// A kill re-queues in-flight work with original arrivals — under
		// feedback-driven arrivals that replay has no meaning yet.
		return Result{}, fmt.Errorf("serve: membership events are not supported with a closed-loop workload")
	}
	sess := w.Session(n, seed)
	init := sess.Initial()
	if len(init) == 0 {
		return Result{}, fmt.Errorf("serve: workload %s yielded no requests", w.Name())
	}
	for i, iss := range init {
		if err := iss.Req.Validate(); err != nil {
			return Result{}, fmt.Errorf("serve: workload %s: initial request %d: %w", w.Name(), i, err)
		}
		if iss.Client < 0 || iss.Client >= sess.Clients() {
			return Result{}, fmt.Errorf("serve: workload %s: initial request %d from unknown client %d",
				w.Name(), i, iss.Client)
		}
		if i > 0 && iss.Req.Arrival < init[i-1].Req.Arrival {
			return Result{}, fmt.Errorf("serve: workload %s: initial request %d arrives at %v, before request %d at %v",
				w.Name(), i, iss.Req.Arrival, i-1, init[i-1].Req.Arrival)
		}
	}
	c := newClosedCluster(cfg, sess, init, n, warmup)
	res := c.run()
	if last := c.reqs[len(c.reqs)-1].arrival; last > 0 {
		res.Rate = float64(len(c.reqs)) / last
	}
	return res, nil
}

// serviceTime computes one request's prefill service time under the
// scheme, updating replica si's KV store, and reports the request's store
// lookup and hit counts for per-tenant accounting plus its tier-read
// stall (the priced cost beyond an all-HBM request, computed only under a
// prefetch policy). It is evaluated when the request is admitted into a
// replica's batch, against the store's state at that moment, and sizes the prompt
// from the request's own chunk list — trace-replayed requests may
// retrieve any number of chunks. Hits are charged the read time of the
// tier the chunk was found on — or, for a chunk whose promotion is
// already in flight, the transfer's residual wait; for CacheBlend each
// tier's reused tokens recompute at the ratio the loading controller
// picks for that tier's device (§5.1).
//
// Lookups and inserts run in two passes — every lookup resolves against
// the store's pre-request state before any miss is inserted — so a
// miss-insert can no longer demote or evict a chunk the same request
// already counted (and priced) as a hit at a now-wrong tier.
func (c *cluster) serviceTime(si int, ids []int, now float64) (secs float64, lookups, hits int64, stall float64) {
	cfg, store, chunkBytes := c.cfg, c.stores[si], c.chunkBytes
	L := len(ids)*cfg.ChunkTokens + cfg.QueryTokens
	spec := cfg.Spec
	if c.chunkSized == nil {
		// Boxed once, shared by every context-chunk insert of the run.
		c.chunkSized = kvstore.Bytes(chunkBytes)
	}
	switch cfg.Scheme {
	case baselines.FullRecompute:
		return spec.FullPrefillTTFT(L), 0, 0, 0

	case baselines.PrefixCaching:
		// Only a position-0 hit helps (§3.2). Following the paper's
		// idealised assumption, loading the prefix KV is free.
		key := prefixKey(cfg, ids[0])
		_, _, hit := store.Get(key)
		if !hit {
			store.Put(key, c.chunkSized) //nolint:errcheck
			return spec.FullPrefillTTFT(L), 1, 0, 0
		}
		rest := L - cfg.ChunkTokens
		return spec.Prefill(rest) + spec.DecodeSecPerToken, 1, 1, 0

	case baselines.FullKVReuse, baselines.CacheBlend:
		found := 0
		// Cluster-owned scratch, reset per call: a request's chunk list is
		// short, so a linear scan of the pending misses replaces the old
		// per-call map, and the tier histogram and key slices are reused
		// across every admission of the run.
		depth := store.Depth()
		if cap(c.tierScratch) < depth {
			c.tierScratch = make([]int, depth)
		}
		tierChunks := c.tierScratch[:depth] // hit chunks per tier
		for i := range tierChunks {
			tierChunks[i] = 0
		}
		var waitCost float64 // residual in-flight transfer waits
		missKeys, dupKeys := c.missScratch[:0], c.dupScratch[:0]
		for _, id := range ids {
			key := c.chunkKeyOf(id)
			pending := false // key already missed by this request, awaiting insert
			for _, k := range missKeys {
				if k == key {
					pending = true
					break
				}
			}
			if pending {
				// A repeat of a key this request will insert: resolved in
				// the second pass, against the inserted copy.
				dupKeys = append(dupKeys, key)
				continue
			}
			tier, wait, ok := c.lookup(si, key, now)
			if !ok {
				missKeys = append(missKeys, key)
				continue
			}
			found++
			if wait > 0 && wait+c.chunkCost(si, 0) <= c.chunkCost(si, tier) {
				// In-flight join: pay the transfer's remaining time, then
				// read the chunk where it is landing — the top tier. Only
				// when that beats reading the source tier directly: the
				// engine can always fall back to the synchronous read a
				// transfer too far from arrival would lose to.
				waitCost += wait
				tier = 0
			}
			tierChunks[tier]++
		}
		for _, key := range missKeys {
			store.Put(key, c.chunkSized) //nolint:errcheck
		}
		for _, key := range dupKeys {
			if tier, _, ok := c.lookup(si, key, now); ok {
				found++
				tierChunks[tier]++
			}
		}
		// Hand the (possibly grown) scratch back for the next admission.
		c.missScratch, c.dupScratch = missKeys, dupKeys
		lookups, hits = int64(len(ids)), int64(found)
		missTokens := (len(ids)-found)*cfg.ChunkTokens + cfg.QueryTokens
		missCost := spec.Prefill(missTokens)
		if cfg.Scheme == baselines.FullKVReuse {
			var loadCost float64
			for tier, n := range tierChunks {
				loadCost += store.TierDevice(tier).ReadTime(int64(n) * chunkBytes)
			}
			loadCost += waitCost
			return loadCost + missCost + spec.DecodeSecPerToken, lookups, hits,
				c.reuseStall(si, loadCost, tierChunks, found)
		}
		// CacheBlend: selective recompute of the reused tokens, pipelined
		// with their loading (§5) per the engine's loader/fusor schedule,
		// tier by tier; missing chunks and the query are full prefill.
		var blendCost float64
		for tier, n := range tierChunks {
			if n == 0 {
				continue
			}
			d := store.TierDevice(tier)
			tokens := n * cfg.ChunkTokens
			blendCost += pipelineCost(spec, cfg.chunkRatio(tokens, d), tokens, d)
		}
		blendCost += waitCost
		return blendCost + missCost + spec.DecodeSecPerToken, lookups, hits,
			c.reuseStall(si, blendCost, tierChunks, found)

	default:
		panic(fmt.Sprintf("serve: scheme %q is not a serving mode", cfg.Scheme))
	}
}

// chunkCost prices reusing one resident chunk off the given tier of
// replica si's store under the config's scheme — the per-chunk comparison
// deciding whether an in-flight join beats a synchronous source-tier read.
func (c *cluster) chunkCost(si, tier int) float64 {
	d := c.stores[si].TierDevice(tier)
	if c.cfg.Scheme == baselines.FullKVReuse {
		return d.ReadTime(c.chunkBytes)
	}
	return pipelineCost(c.cfg.Spec, c.cfg.chunkRatio(c.cfg.ChunkTokens, d), c.cfg.ChunkTokens, d)
}

// reuseStall is the request's tier-read stall: its priced reuse cost
// (waits included) beyond what the same found chunks would have cost had
// every one been HBM-resident — the hypothetical cost is computed through
// the same per-tier pricing with all hits moved to tier 0, so fixed
// per-tier latency terms cancel. Zero when neither the prefetch
// telemetry nor a membership schedule (whose ReWarmStall sums the same
// quantity for re-routed requests) needs it.
func (c *cluster) reuseStall(si int, cost float64, tierChunks []int, found int) float64 {
	if !c.prefetchOn && !c.eventsOn {
		return 0
	}
	cfg, store := c.cfg, c.stores[si]
	hot := make([]int, len(tierChunks))
	hot[0] = found
	var hotCost float64
	if cfg.Scheme == baselines.FullKVReuse {
		for tier, n := range hot {
			hotCost += store.TierDevice(tier).ReadTime(int64(n) * c.chunkBytes)
		}
	} else if found > 0 {
		d := store.TierDevice(0)
		tokens := found * cfg.ChunkTokens
		hotCost = pipelineCost(cfg.Spec, cfg.chunkRatio(tokens, d), tokens, d)
	}
	if stall := cost - hotCost; stall > 0 {
		return stall
	}
	return 0
}

// chunkRatio is the recompute ratio for reusing `tokens` of KV resident
// on d. Untiered runs keep the configured fixed ratio (the paper's
// single-device setup); tiered runs ask the loading controller for the
// largest ratio the tier's loading delay hides, floored at cfg.Ratio.
func (c Config) chunkRatio(tokens int, d device.Device) float64 {
	if !c.tiered() {
		return c.Ratio
	}
	ctl := controller.Controller{Spec: c.Spec, QualityFloor: c.Ratio}
	return ctl.PickRatio(tokens, d)
}

// pipelineCost is the pipelined load+recompute time for reusing hitTokens
// of KV (zero when nothing is reused), per the engine's two-thread
// loader/fusor schedule.
func pipelineCost(spec timing.Spec, ratio float64, hitTokens int, d device.Device) float64 {
	if hitTokens == 0 {
		return 0
	}
	loadLayer := d.ReadTime(spec.LayerBytes(hitTokens))
	compLayer := spec.RecomputeLayer(ratio, hitTokens)
	return engine.PipelineTime(spec.Layers, loadLayer, compLayer)
}

func chunkKey(cfg Config, id int) chunk.ID {
	return chunk.Hash(cfg.Spec.Name, []int{id})
}

func prefixKey(cfg Config, id int) chunk.ID {
	return chunk.Hash(cfg.Spec.Name+"/prefix0", []int{id})
}

// RateSweep runs the simulation across request rates and returns one
// Result per rate — the data series of Figure 14, now per replica count.
func RateSweep(cfg Config, rates []float64, n, warmup int, seed int64) []Result {
	out := make([]Result, 0, len(rates))
	for _, r := range rates {
		out = append(out, Run(cfg, r, n, warmup, seed))
	}
	return out
}

// Capacity returns the maximum sustainable request rate of a single
// replica without batching: the reciprocal of the steady-state mean
// service time, measured by probing the simulator at a very low rate.
func Capacity(cfg Config, seed int64) float64 {
	probe := cfg
	probe.Replicas = 1
	probe.MaxBatch = 1
	res := Run(probe, 0.01, 400, 100, seed)
	if res.MeanTTFT <= 0 {
		return 0
	}
	return 1 / res.MeanTTFT
}

// SaturationRate measures the configuration's maximum sustained
// completion rate — replicas and continuous batching included — by
// offering far more load than one replica can absorb and measuring the
// completed-request throughput.
func SaturationRate(cfg Config, seed int64) float64 {
	perReplica := Capacity(cfg, seed)
	if perReplica <= 0 {
		return 0
	}
	overload := 4 * perReplica * float64(cfg.replicas()*cfg.maxBatch())
	res := Run(cfg, overload, 600, 150, seed)
	return res.Throughput
}
