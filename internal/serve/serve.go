// Package serve simulates an LLM serving deployment end to end: Poisson
// request arrivals, a FCFS GPU queue, a capacity-bounded KV cache store
// with chunk popularity, and per-scheme prefill costs from the calibrated
// timing model. It reproduces the paper's throughput study (Figure 14):
// TTFT as a function of request rate for CacheBlend, full KV recompute and
// prefix caching on the extended RAG datasets.
package serve

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/chunk"
	"repro/internal/device"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/timing"
)

// Config describes one serving configuration.
type Config struct {
	// Spec is the served model's delay profile.
	Spec timing.Spec
	// Scheme selects the KV handling strategy (FullRecompute,
	// PrefixCaching, FullKVReuse or CacheBlend; the Map* schemes are
	// quality baselines, not serving modes).
	Scheme baselines.Scheme
	// Ratio is CacheBlend's recompute ratio.
	Ratio float64
	// Device stores the KV caches.
	Device device.Device
	// StoreCapacity bounds the KV store (0 = unbounded).
	StoreCapacity int64
	// ChunkPool is the number of distinct chunks in the corpus.
	ChunkPool int
	// ChunksPerRequest is how many chunks each request retrieves.
	ChunksPerRequest int
	// ChunkTokens is the token length of each chunk.
	ChunkTokens int
	// QueryTokens is the fresh suffix length.
	QueryTokens int
	// Skew is the chunk popularity skew (sim.Zipf exponent).
	Skew float64
}

// Result summarises one simulated run.
type Result struct {
	Rate       float64 // offered request rate (req/s)
	MeanTTFT   float64
	P95TTFT    float64
	Throughput float64 // completed requests/s over the run
	HitRate    float64 // KV store hit rate over chunk lookups
	Requests   int
}

// String renders the result as a table row.
func (r Result) String() string {
	return fmt.Sprintf("rate=%.2f mean_ttft=%.3fs p95=%.3fs tput=%.2f hit=%.0f%%",
		r.Rate, r.MeanTTFT, r.P95TTFT, r.Throughput, r.HitRate*100)
}

// Run simulates n requests arriving at the given Poisson rate and returns
// aggregate TTFT/throughput statistics. The first warmup requests are
// excluded from statistics (the paper skips its first 1 000 queries while
// the store is cold).
func Run(cfg Config, rate float64, n, warmup int, seed int64) Result {
	if cfg.ChunksPerRequest <= 0 || cfg.ChunkTokens <= 0 || cfg.ChunkPool <= 0 {
		panic(fmt.Sprintf("serve: degenerate config %+v", cfg))
	}
	g := tensor.NewRNG(seed)
	arrivals := sim.PoissonArrivals(g, rate, n)
	store := kvstore.New(cfg.Device, cfg.StoreCapacity, kvstore.LRU)
	defer store.Close()

	eng := sim.NewEngine()
	serverFree := 0.0
	var ttfts []float64
	var lastDone float64
	completed := 0

	chunkBytes := cfg.Spec.KVBytes(cfg.ChunkTokens)
	for i := 0; i < n; i++ {
		i := i
		at := arrivals[i]
		// Sample the request's chunk ids up front (deterministic).
		ids := make([]int, cfg.ChunksPerRequest)
		for j := range ids {
			ids[j] = sim.Zipf(g, cfg.ChunkPool, cfg.Skew)
		}
		eng.At(at, func(now float64) {
			service := serviceTime(cfg, store, ids, chunkBytes)
			start := now
			if serverFree > start {
				start = serverFree
			}
			done := start + service
			serverFree = done
			if i >= warmup {
				ttfts = append(ttfts, done-at)
				completed++
				lastDone = done
			}
		})
	}
	eng.Run()

	res := Result{Rate: rate, Requests: completed}
	res.MeanTTFT = metrics.Mean(ttfts)
	res.P95TTFT = metrics.Percentile(ttfts, 95)
	if completed > 0 && lastDone > arrivals[warmup] {
		res.Throughput = float64(completed) / (lastDone - arrivals[warmup])
	}
	res.HitRate = store.Stats().HitRate()
	return res
}

// serviceTime computes one request's prefill service time under the
// scheme, updating the KV store.
func serviceTime(cfg Config, store *kvstore.Store, ids []int, chunkBytes int64) float64 {
	L := cfg.ChunksPerRequest*cfg.ChunkTokens + cfg.QueryTokens
	spec := cfg.Spec
	switch cfg.Scheme {
	case baselines.FullRecompute:
		return spec.FullPrefillTTFT(L)

	case baselines.PrefixCaching:
		// Only a position-0 hit helps (§3.2). Following the paper's
		// idealised assumption, loading the prefix KV is free.
		key := prefixKey(cfg, ids[0])
		_, hit := store.Get(key)
		if !hit {
			store.Put(key, kvstore.Bytes(chunkBytes)) //nolint:errcheck
		}
		rest := L - cfg.ChunkTokens
		if hit {
			return spec.Prefill(rest) + spec.DecodeSecPerToken
		}
		return spec.FullPrefillTTFT(L)

	case baselines.FullKVReuse, baselines.CacheBlend:
		hits := 0
		var loadBytes int64
		for _, id := range ids {
			key := chunkKey(cfg, id)
			if _, ok := store.Get(key); ok {
				hits++
				loadBytes += chunkBytes
			} else {
				store.Put(key, kvstore.Bytes(chunkBytes)) //nolint:errcheck
			}
		}
		missTokens := (cfg.ChunksPerRequest-hits)*cfg.ChunkTokens + cfg.QueryTokens
		missCost := spec.Prefill(missTokens)
		loadCost := cfg.Device.ReadTime(loadBytes)
		if cfg.Scheme == baselines.FullKVReuse {
			return loadCost + missCost + spec.DecodeSecPerToken
		}
		// CacheBlend: selective recompute of the reused tokens, pipelined
		// with their loading (§5); missing chunks and the query are full
		// prefill.
		hitTokens := hits * cfg.ChunkTokens
		blendCost := pipelineCost(spec, cfg.Ratio, hitTokens, cfg.Device)
		return blendCost + missCost + spec.DecodeSecPerToken

	default:
		panic(fmt.Sprintf("serve: scheme %q is not a serving mode", cfg.Scheme))
	}
}

// pipelineCost is the pipelined load+recompute time for reusing hitTokens
// of KV (zero when nothing is reused).
func pipelineCost(spec timing.Spec, ratio float64, hitTokens int, d device.Device) float64 {
	if hitTokens == 0 {
		return 0
	}
	loadLayer := d.ReadTime(spec.LayerBytes(hitTokens))
	compLayer := spec.RecomputeLayer(ratio, hitTokens)
	loadDone, compDone := 0.0, 0.0
	for i := 0; i < spec.Layers; i++ {
		loadDone += loadLayer
		start := loadDone
		if compDone > start {
			start = compDone
		}
		compDone = start + compLayer
	}
	return compDone
}

func chunkKey(cfg Config, id int) chunk.ID {
	return chunk.Hash(cfg.Spec.Name, []int{id})
}

func prefixKey(cfg Config, id int) chunk.ID {
	return chunk.Hash(cfg.Spec.Name+"/prefix0", []int{id})
}

// RateSweep runs the simulation across request rates and returns one
// Result per rate — the data series of Figure 14.
func RateSweep(cfg Config, rates []float64, n, warmup int, seed int64) []Result {
	out := make([]Result, 0, len(rates))
	for _, r := range rates {
		out = append(out, Run(cfg, r, n, warmup, seed))
	}
	return out
}

// Capacity returns the maximum sustainable request rate of the
// configuration: the reciprocal of the steady-state mean service time,
// measured by probing the simulator at a very low rate.
func Capacity(cfg Config, seed int64) float64 {
	probe := Run(cfg, 0.01, 400, 100, seed)
	if probe.MeanTTFT <= 0 {
		return 0
	}
	return 1 / probe.MeanTTFT
}
