package serve

import (
	"encoding/json"
	"testing"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/kvstore"
	"repro/internal/timing"
	"repro/internal/workload"
)

// prefetchConfig is the golden bursty-drift setup: tiered CacheBlend with
// a top tier far smaller than the working set, so cold-tier reads (and
// the transfers that hide them) actually happen.
func prefetchConfig(policy string) Config {
	cfg := Config{
		Spec:             timing.Mistral7B,
		Scheme:           baselines.CacheBlend,
		Ratio:            0.15,
		Replicas:         2,
		MaxBatch:         3,
		PrefetchPolicy:   policy,
		ChunkPool:        150,
		ChunksPerRequest: 6,
		ChunkTokens:      512,
		QueryTokens:      32,
		Skew:             0.9,
	}
	total := int64(60) * cfg.Spec.KVBytes(cfg.ChunkTokens)
	cfg.Tiers = []TierConfig{
		{Device: device.GPUHBM, Capacity: total / 6},
		{Device: device.CPURAM, Capacity: total / 3},
		{Device: device.NVMeSSD, Capacity: total - total/6 - total/3},
	}
	return cfg
}

func burstyDrift(rate float64, cfg Config) workload.Workload {
	return workload.Bursty{Rate: rate, Burst: 24, Chunks: workload.Chunks{
		Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest,
		Skew: cfg.Skew, DriftPeriod: 60,
	}}
}

func TestPrefetchValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"legacy-empty", func(c *Config) { c.PrefetchPolicy = "" }, true},
		{"off", func(c *Config) { c.PrefetchPolicy = PrefetchOff }, true},
		{"on-enqueue", func(c *Config) { c.PrefetchPolicy = PrefetchOnEnqueue }, true},
		{"predictive", func(c *Config) { c.PrefetchPolicy = PrefetchPredictive }, true},
		{"bw-fraction", func(c *Config) { c.PrefetchBW = 0.5 }, true},
		{"unknown-policy", func(c *Config) { c.PrefetchPolicy = "sometimes" }, false},
		{"bw-too-big", func(c *Config) { c.PrefetchBW = 1.5 }, false},
		{"bw-negative", func(c *Config) { c.PrefetchBW = -0.1 }, false},
		{"bw-without-active-policy", func(c *Config) {
			c.PrefetchPolicy = PrefetchOff
			c.PrefetchBW = 0.5
		}, false},
		{"active-needs-tiers", func(c *Config) {
			c.Tiers = nil
			c.Device = device.NVMeSSD
			c.StoreCapacity = 1 << 30
		}, false},
		{"active-needs-reuse-scheme", func(c *Config) { c.Scheme = baselines.PrefixCaching }, false},
	}
	for _, tc := range cases {
		cfg := prefetchConfig(PrefetchOnEnqueue)
		tc.mut(&cfg)
		err := cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: want validation error, got nil", tc.name)
		}
	}
}

// TestPrefetchTelemetryGating: the "off" policy is the legacy synchronous
// schedule with the telemetry turned on — every serving metric must be
// byte-identical to the legacy empty policy, and only the new fields may
// differ (populated vs zero).
func TestPrefetchTelemetryGating(t *testing.T) {
	cfgLegacy := prefetchConfig("")
	cfgOff := prefetchConfig(PrefetchOff)
	w := burstyDrift(0.5, cfgLegacy)
	legacy, err := RunWorkload(cfgLegacy, w, 150, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunWorkload(cfgOff, w, 150, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.TierStallTime != 0 || legacy.PrefetchIssued != 0 || legacy.HBMHitRate != 0 {
		t.Errorf("legacy policy populated prefetch telemetry: %+v", legacy)
	}
	if off.TierStallTime <= 0 {
		t.Errorf("off policy: want tier-read stall > 0, got %v", off.TierStallTime)
	}
	if off.HBMHitRate <= 0 {
		t.Errorf("off policy: want HBM hit rate > 0, got %v", off.HBMHitRate)
	}
	if off.PrefetchIssued != 0 {
		t.Errorf("off policy issued transfers without loaders: %d", off.PrefetchIssued)
	}
	// Zero the telemetry block and the rest must match exactly.
	off.TierStallTime, off.HBMHitRate = 0, 0
	lj, _ := json.Marshal(legacy)
	oj, _ := json.Marshal(off)
	if string(lj) != string(oj) {
		t.Errorf("off policy changed the schedule:\nlegacy %s\n   off %s", lj, oj)
	}
}

// TestPrefetchOverlapsQueueing: on bursty tiered traffic where requests
// queue, the loaders must turn queueing delay into transfer overlap —
// issuing real transfers, landing prefetch hits, and cutting both the
// tier-read stall and TTFT relative to the synchronous baseline.
func TestPrefetchOverlapsQueueing(t *testing.T) {
	// A longer horizon than the golden cases: single 150-request bursty
	// traces are noisy enough that one arrival pattern can swamp the
	// effect; 600 requests (≈10 drift periods) is where it is stable.
	run := func(policy string, seed int64) Result {
		cfg := prefetchConfig(policy)
		res, err := RunWorkload(cfg, burstyDrift(0.5, cfg), 600, 200, seed)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, seed := range []int64{1, 7} {
		off := run(PrefetchOff, seed)
		pred := run(PrefetchPredictive, seed)
		if pred.PrefetchIssued == 0 || pred.PrefetchHits == 0 {
			t.Fatalf("seed %d: predictive loaders idle: issued=%d hits=%d",
				seed, pred.PrefetchIssued, pred.PrefetchHits)
		}
		if pred.TierStallTime >= off.TierStallTime {
			t.Errorf("seed %d: predictive stall %v, want < synchronous %v",
				seed, pred.TierStallTime, off.TierStallTime)
		}
		if pred.MeanTTFT >= off.MeanTTFT {
			t.Errorf("seed %d: predictive TTFT %v, want < synchronous %v",
				seed, pred.MeanTTFT, off.MeanTTFT)
		}
		if pred.HBMHitRate <= off.HBMHitRate {
			t.Errorf("seed %d: predictive HBM hit rate %v, want > synchronous %v",
				seed, pred.HBMHitRate, off.HBMHitRate)
		}
	}
}

// TestServiceTimeTwoPassLookup is the regression test for the admission
// accounting bug: serviceTime used to interleave Gets and Puts over a
// request's chunk list, so inserting a missed chunk mid-scan could evict
// a later chunk of the same request that was resident when the request
// was admitted — the request was then charged a miss for a chunk it
// should have found. The two-pass form resolves every lookup against the
// pre-request store state before inserting anything.
func TestServiceTimeTwoPassLookup(t *testing.T) {
	cfg := prefetchConfig("")
	cfg.Replicas = 1
	// A single unsharded tier that holds exactly two chunks.
	cfg.Tiers = []TierConfig{{Device: device.GPUHBM, Capacity: 2 * cfg.Spec.KVBytes(cfg.ChunkTokens)}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	newStore := func() *kvstore.Tiered {
		c := &cluster{cfg: cfg}
		c.chunkBytes = cfg.Spec.KVBytes(cfg.ChunkTokens)
		ts := kvstore.MustTiered(c.buildTiers(), kvstore.LRU)
		// Pre-populate chunks 1 and 2; chunk 3 is absent.
		ts.Put(chunkKey(cfg, 1), kvstore.Bytes(c.chunkBytes))
		ts.Put(chunkKey(cfg, 2), kvstore.Bytes(c.chunkBytes))
		return ts
	}

	// The old interleaved scan over the request [2, 3, 1]: Get(2) hits,
	// the miss-insert of 3 evicts LRU chunk 1, Get(1) then misses — one
	// hit for a request that arrived with two of its chunks resident.
	old := newStore()
	defer old.Close()
	oldHits := 0
	for _, id := range []int{2, 3, 1} {
		key := chunkKey(cfg, id)
		if _, _, ok := old.Get(key); ok {
			oldHits++
		} else {
			old.Put(key, kvstore.Bytes(cfg.Spec.KVBytes(cfg.ChunkTokens)))
		}
	}
	if oldHits != 1 {
		t.Fatalf("interleaved scan: got %d hits, the historical bug produced 1", oldHits)
	}

	c := &cluster{cfg: cfg}
	c.chunkBytes = cfg.Spec.KVBytes(cfg.ChunkTokens)
	c.stores = []*kvstore.Tiered{newStore()}
	defer c.stores[0].Close()
	_, lookups, hits, _ := c.serviceTime(0, []int{2, 3, 1}, 0)
	if lookups != 3 {
		t.Fatalf("two-pass: got %d lookups, want 3", lookups)
	}
	if hits != 2 {
		t.Errorf("two-pass: got %d hits, want 2 (chunks 1 and 2 were resident at admission)", hits)
	}
	if st := c.stores[0].Stats(); st.Hits != 2 || st.Misses != 1 {
		t.Errorf("two-pass store stats: got %d hits / %d misses, want 2 / 1", st.Hits, st.Misses)
	}
}

// TestServiceTimeTwoPassDupKeys: repeated chunk ids in one request keep
// the legacy accounting — a repeat of a missed chunk finds the copy the
// first occurrence inserted.
func TestServiceTimeTwoPassDupKeys(t *testing.T) {
	cfg := prefetchConfig("")
	cfg.Replicas = 1
	cfg.Tiers = []TierConfig{{Device: device.GPUHBM, Capacity: 8 * cfg.Spec.KVBytes(cfg.ChunkTokens)}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	c := &cluster{cfg: cfg}
	c.chunkBytes = cfg.Spec.KVBytes(cfg.ChunkTokens)
	c.stores = []*kvstore.Tiered{kvstore.MustTiered(c.buildTiers(), kvstore.LRU)}
	defer c.stores[0].Close()
	_, lookups, hits, _ := c.serviceTime(0, []int{5, 5, 5}, 0)
	if lookups != 3 || hits != 2 {
		t.Errorf("dup request: got %d lookups / %d hits, want 3 / 2 (miss, then two hits on the inserted copy)",
			lookups, hits)
	}
}
