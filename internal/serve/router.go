// The cache-affinity replica router: the cluster-scale layer in front of
// admission. The legacy runtime models a single node — every replica
// pulls from one shared queue and hits one shared KV store. Production
// RAG serving partitions the cache instead (RAGCache's "knowledge caching
// as a service"): each replica is a node with its own tier hierarchy, and
// a router decides which node a request lands on. That decision is the
// lever deciding how often CacheBlend's fused-cache fast path fires at
// all: selective recompute only pays when the request reaches a replica
// that actually holds its chunks.
//
// Three policies are selectable via Config.Router:
//
//   - shared: the legacy single-store topology, byte-identical schedule;
//     naming it explicitly populates the router telemetry in Result.
//   - hash: consistent chunk→replica hashing. Each chunk id owns a point
//     set on a hash ring; a request routes to the replica owning the
//     plurality of its chunks. Stateless and balanced, but a request's
//     chunk set usually straddles owners, so the chunks the landing
//     replica does not own are re-inserted there — cross-replica
//     duplication the Result reports in DuplicationBytes.
//   - affinity: score every replica by overlap between the request's
//     chunk set and the replica's resident set, plus a decayed-popularity
//     estimate of what the replica has been serving (the same
//     kvstore.Popularity signal predictive prefetch ranks with), minus an
//     in-flight load penalty so a hot replica sheds load before it
//     melts. Routing a request then touches the winner's popularity view
//     with the request's chunks — the chunk→replica affinity map is built
//     from the workload itself.
package serve

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/baselines"
	"repro/internal/chunk"
)

// Router policy names accepted by Config.Router.
const (
	// RouterShared keeps the legacy topology: one KV store and one
	// admission queue shared by every replica (a single node). The empty
	// default is the same schedule with the router telemetry off, keeping
	// legacy Results byte-identical.
	RouterShared = "shared"
	// RouterHash partitions by consistent chunk→replica hashing: each
	// replica owns ringVnodes points on a hash ring, a chunk belongs to
	// the replica owning the next point clockwise of its id, and a
	// request routes to the plurality owner of its chunk set (lowest
	// replica index on ties).
	RouterHash = "hash"
	// RouterAffinity scores replicas by chunk-set overlap: resident
	// chunks count 1, non-resident chunks count their decayed popularity
	// on that replica (capped at 1) scaled by affinityPopWeight, and
	// each request in flight at the replica subtracts
	// affinityLoadPenalty. The highest score wins (lowest replica index
	// on ties).
	RouterAffinity = "affinity"
)

const (
	// ringVnodes is each replica's virtual-node count on the hash ring.
	// Enough points to smooth per-replica ownership to a few percent
	// without making owner lookup measurably slower.
	ringVnodes = 64
	// affinityPopWeight scales the popularity term of the affinity score:
	// a chunk the replica served recently but no longer holds (evicted,
	// demoted) still attracts its requests, which is what keeps a
	// tenant's traffic sticky through cache churn. Below 1 so a chunk
	// actually resident always outranks a remembered one.
	affinityPopWeight = 0.5
	// affinityLoadPenalty is the score cost of each request in flight at
	// a replica (routed there, not yet retired — queued and in-batch
	// alike), in chunk-overlap units: a replica ~2 requests deeper than a
	// rival forfeits one resident chunk's worth of affinity, so skewed
	// corpora spill to neighbours instead of piling onto one node
	// unboundedly, and an empty cluster spreads its first requests
	// round-robin-ish instead of dogpiling replica 0.
	affinityLoadPenalty = 0.5
)

// routerOn reports whether the router telemetry is active (any explicit
// policy, the single-node "shared" baseline included).
func (c Config) routerOn() bool { return c.Router != "" }

// routed reports whether requests are actually routed to per-replica
// stores and queues (hash or affinity).
func (c Config) routed() bool {
	return c.Router == RouterHash || c.Router == RouterAffinity
}

// validateRouter is the Config.Validate slice for the router fields.
func (c Config) validateRouter() error {
	switch c.Router {
	case "", RouterShared, RouterHash, RouterAffinity:
	default:
		return fmt.Errorf("router policy %q: want %s, %s or %s",
			c.Router, RouterShared, RouterHash, RouterAffinity)
	}
	if c.routed() {
		switch c.Scheme {
		case baselines.FullKVReuse, baselines.CacheBlend:
		default:
			return fmt.Errorf("router policy %q routes by chunk-set affinity and only applies to chunk-reusing schemes (got %q)",
				c.Router, c.Scheme)
		}
	}
	return nil
}

// ringPoint is one virtual node: a replica's claim on the hash ring.
type ringPoint struct {
	hash    uint64
	replica int
}

// hashRing is a consistent-hash ring over the replica set. A chunk id
// belongs to the replica owning the first point at or clockwise of the
// id's leading 8 hash bytes. Consistent hashing (rather than id mod N)
// keeps ownership stable when the replica set changes — the property the
// ROADMAP's scale-out item will lean on.
type hashRing struct {
	points []ringPoint
}

// newHashRing builds the ring for n replicas, deterministically: replica
// r's virtual points are the chunk hashes of ("router/vnode", [r, v]).
func newHashRing(n int) *hashRing {
	ring := &hashRing{points: make([]ringPoint, 0, n*ringVnodes)}
	for r := 0; r < n; r++ {
		for v := 0; v < ringVnodes; v++ {
			id := chunk.Hash("router/vnode", []int{r, v})
			ring.points = append(ring.points, ringPoint{
				hash:    binary.LittleEndian.Uint64(id[:8]),
				replica: r,
			})
		}
	}
	sort.Slice(ring.points, func(i, j int) bool {
		if ring.points[i].hash != ring.points[j].hash {
			return ring.points[i].hash < ring.points[j].hash
		}
		return ring.points[i].replica < ring.points[j].replica
	})
	return ring
}

// remove deletes replica r's virtual nodes from the ring — the
// membership-kill path. Only the dead replica's points leave, so every
// chunk a survivor owned keeps its owner (the stability property
// TestHashRingStability pins); chunks the dead replica owned fall to
// the next live point clockwise.
func (h *hashRing) remove(replica int) {
	pts := h.points[:0]
	for _, pt := range h.points {
		if pt.replica != replica {
			pts = append(pts, pt)
		}
	}
	h.points = pts
}

// add inserts replica r's virtual nodes — the membership-join path. The
// points are exactly the ones newHashRing would have given index r, so
// ownership moves only onto the newcomer and a ring that removes then
// re-adds a replica is restored bit for bit.
func (h *hashRing) add(replica int) {
	for v := 0; v < ringVnodes; v++ {
		id := chunk.Hash("router/vnode", []int{replica, v})
		h.points = append(h.points, ringPoint{
			hash:    binary.LittleEndian.Uint64(id[:8]),
			replica: replica,
		})
	}
	sort.Slice(h.points, func(i, j int) bool {
		if h.points[i].hash != h.points[j].hash {
			return h.points[i].hash < h.points[j].hash
		}
		return h.points[i].replica < h.points[j].replica
	})
}

// owner returns the replica owning id on the ring.
func (h *hashRing) owner(id chunk.ID) int {
	key := binary.LittleEndian.Uint64(id[:8])
	i := sort.Search(len(h.points), func(i int) bool { return h.points[i].hash >= key })
	if i == len(h.points) {
		i = 0 // wrap: past the highest point, ownership circles to the first
	}
	return h.points[i].replica
}

// route picks the replica (and with it the store, queue and loader) an
// arriving request is dispatched to. Unrouted topologies — the legacy
// default and the explicit shared baseline — use index 0, the single
// shared state.
func (c *cluster) route(req request, now float64) int {
	if len(c.queues) == 1 {
		return 0
	}
	switch c.cfg.Router {
	case RouterHash:
		return c.routeHash(req)
	case RouterAffinity:
		return c.routeAffinity(req, now)
	}
	return 0
}

// routeHash routes to the plurality owner of the request's chunk set,
// breaking ties toward the lowest live replica index. A chunkless
// request (possible in replayed traces) has no owner to hash toward and
// goes to the least-loaded live node — indexing by request count was
// both stale under membership change (the node count moves) and blind
// to load.
func (c *cluster) routeHash(req request) int {
	if len(req.ids) == 0 {
		return c.leastLoaded()
	}
	if cap(c.cntScratch) < len(c.queues) {
		c.cntScratch = make([]int, len(c.queues))
	}
	counts := c.cntScratch[:len(c.queues)]
	for i := range counts {
		counts[i] = 0
	}
	for _, id := range req.ids {
		counts[c.ring.owner(c.chunkKeyOf(id))]++
	}
	best := -1
	for r, n := range counts {
		if c.dead[r] {
			continue
		}
		if best < 0 || n > counts[best] {
			best = r
		}
	}
	return best
}

// leastLoaded returns the live node with the fewest requests in flight
// (routed, not yet retired), lowest index on ties — the placement for
// requests with no chunk set to route by.
func (c *cluster) leastLoaded() int {
	best := -1
	for r := range c.queues {
		if c.dead[r] {
			continue
		}
		if best < 0 || c.inflight[r] < c.inflight[best] {
			best = r
		}
	}
	return best
}

// routeAffinity scores every replica against the request's chunk set and
// routes to the argmax (lowest index on ties), then touches the winner's
// popularity view with the chunks — the routed-traffic history that makes
// future requests for the same corpus stick to the same replica even as
// individual chunks churn through the tiers.
func (c *cluster) routeAffinity(req request, now float64) int {
	keys := c.keyScratch[:0] // scratch: route runs without a park, so no aliasing
	for _, id := range req.ids {
		keys = append(keys, c.chunkKeyOf(id))
	}
	c.keyScratch = keys[:0]
	best, bestScore := -1, 0.0
	for r := range c.queues {
		if c.dead[r] {
			continue // a killed node never scores, whatever it still holds
		}
		score := -affinityLoadPenalty * float64(c.inflight[r])
		for _, key := range keys {
			if c.stores[r].Contains(key) {
				score++
				continue
			}
			if s := c.pops[r].Score(key, now); s > 0 {
				if s > 1 {
					s = 1
				}
				score += affinityPopWeight * s
			}
		}
		if best < 0 || score > bestScore {
			best, bestScore = r, score
		}
	}
	for _, key := range keys {
		c.pops[best].Touch(key, now)
	}
	return best
}
