package serve

import (
	"math"
	"testing"

	"repro/internal/baselines"
	"repro/internal/engine"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// stepCluster builds a bare cluster good enough to call stepTime.
func stepCluster(batchOverhead, decodeOverhead float64) *cluster {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.BatchOverhead = batchOverhead
	cfg.DecodeOverhead = decodeOverhead
	return &cluster{cfg: cfg}
}

// randomBatch draws a batch of members with random step units and phases.
func randomBatch(g *tensor.RNG, n int) []*member {
	batch := make([]*member, n)
	for i := range batch {
		batch[i] = &member{unit: 0.01 + g.Float64(), decoding: g.Float64() < 0.5}
	}
	return batch
}

// TestStepTimeProperties is the satellite property test: across random
// mixed prefill/decode batches, one replica step must (a) be dominated by
// the longest member — never shorter than its unit, (b) be monotone in
// batch size — adding any member never shortens the step, and (c) price a
// decode-only batch with the engine's decode-step cost and any prefill
// presence with the prefill batch overhead.
func TestStepTimeProperties(t *testing.T) {
	g := tensor.NewRNG(17)
	c := stepCluster(0, 0) // defaults: 0.35 prefill, 0.08 decode
	for trial := 0; trial < 2000; trial++ {
		n := 1 + g.Intn(12)
		batch := randomBatch(g, n)
		step := c.stepTime(batch)

		longest, anyPrefill := 0.0, false
		for _, m := range batch {
			if m.unit > longest {
				longest = m.unit
			}
			if !m.decoding {
				anyPrefill = true
			}
		}
		if step < longest {
			t.Fatalf("trial %d: step %.4f below longest member %.4f", trial, step, longest)
		}
		// Exact pricing by phase mix.
		want := longest * (1 + c.cfg.batchOverhead()*float64(n-1))
		if !anyPrefill {
			want = engine.DecodeStepTime(longest, n, c.cfg.decodeOverhead())
		}
		if math.Abs(step-want) > 1e-12 {
			t.Fatalf("trial %d: step %.6f, want %.6f (prefill=%v, n=%d)", trial, step, want, anyPrefill, n)
		}
		// Monotone in batch size: append one member of either phase.
		for _, decoding := range []bool{false, true} {
			grown := append(append([]*member{}, batch...),
				&member{unit: 0.01 + g.Float64(), decoding: decoding})
			if gs := c.stepTime(grown); gs < step-1e-12 {
				t.Fatalf("trial %d: adding a member (decoding=%v) shrank the step: %.6f -> %.6f",
					trial, decoding, step, gs)
			}
		}
	}
}

// TestStepTimeSolo pins the unbatched degenerate cases: a lone prefill
// step costs exactly its unit, a lone decode step exactly the per-token
// decode time — no batch overhead of either kind.
func TestStepTimeSolo(t *testing.T) {
	c := stepCluster(0.35, 0.08)
	if got := c.stepTime([]*member{{unit: 0.2}}); got != 0.2 {
		t.Fatalf("solo prefill step %.4f, want 0.2", got)
	}
	if got := c.stepTime([]*member{{unit: 0.025, decoding: true}}); got != 0.025 {
		t.Fatalf("solo decode step %.4f, want 0.025", got)
	}
}

// TestDecodeStepTimeModel pins the engine's decode-step cost: width 1 is
// the bare per-token time, each extra sequence adds the marginal factor,
// and widths below 1 clamp.
func TestDecodeStepTimeModel(t *testing.T) {
	const perToken, marginal = 0.025, 0.08
	if got := engine.DecodeStepTime(perToken, 1, marginal); got != perToken {
		t.Fatalf("width 1: %.4f, want %.4f", got, perToken)
	}
	if got := engine.DecodeStepTime(perToken, 0, marginal); got != perToken {
		t.Fatalf("width 0 must clamp to 1: %.4f", got)
	}
	prev := 0.0
	for w := 1; w <= 64; w++ {
		got := engine.DecodeStepTime(perToken, w, marginal)
		if got <= prev {
			t.Fatalf("width %d: %.6f not strictly above width %d's %.6f", w, got, w-1, prev)
		}
		want := perToken * (1 + marginal*float64(w-1))
		if math.Abs(got-want) > 1e-15 {
			t.Fatalf("width %d: %.8f, want %.8f", w, got, want)
		}
		prev = got
	}
	// Decode batching amortises: per-sequence cost falls with width.
	perSeq8 := engine.DecodeStepTime(perToken, 8, marginal) / 8
	if perSeq8 >= perToken {
		t.Fatalf("width-8 per-sequence cost %.5f not below unbatched %.5f", perSeq8, perToken)
	}
}

// TestWarmupCutoffConsistent is the satellite acceptance: every metric
// applies TTFT's warmup cutoff. A long-running warmup request finishing
// long before the measured window must leave no trace in the batch-size
// histogram, the queue-depth samples, or replica utilization.
func TestWarmupCutoffConsistent(t *testing.T) {
	cfg := baseConfig(baselines.FullRecompute)
	// Request 0: a 12-chunk heavyweight at t=0, alone. Requests 1..4:
	// 2-chunk requests at t=1000+i, far apart (no queueing, batch of 1).
	reqs := []workload.Request{{Arrival: 0, Chunks: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}}}
	for i := 0; i < 4; i++ {
		reqs = append(reqs, workload.Request{Arrival: 1000 + 10*float64(i), Chunks: []int{0, 1}})
	}
	res, err := RunWorkload(cfg, workload.Trace{Label: "warm", Reqs: reqs}, len(reqs), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Only the 4 measured requests' steps may be observed: 3 steps each
	// (2 chunks + query), all solo.
	var steps int64
	for size, n := range res.BatchSizes {
		if size != 1 {
			t.Fatalf("spread-out measured requests ran a batch of %d: %v", size, res.BatchSizes)
		}
		steps += n
	}
	if steps != 4*3 {
		t.Fatalf("batch histogram holds %d steps, want the 12 post-warmup ones only (warmup leaked in): %v",
			steps, res.BatchSizes)
	}
	if res.MeanQueueDepth != 0 {
		t.Fatalf("queue depth %.3f, want 0 — warmup arrival sampled?", res.MeanQueueDepth)
	}
	// Utilization over the post-warmup window: 4 requests × their prefill
	// time, measured from the first post-warmup arrival (t=1000) to the
	// last completion.
	service := cfg.Spec.FullPrefillTTFT(2*cfg.ChunkTokens + cfg.QueryTokens)
	end := 1030 + service
	wantUtil := 4 * service / (end - 1000)
	if math.Abs(res.ReplicaUtil[0]-wantUtil) > 1e-9 {
		t.Fatalf("replica util %.6f, want %.6f over the post-warmup window (warmup busy time leaked in?)",
			res.ReplicaUtil[0], wantUtil)
	}
}
