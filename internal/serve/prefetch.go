// The asynchronous prefetch layer: per-replica loader processes on the
// simulation clock that promote a request's chunks out of the cold tiers
// while the request is still queued, so prefill finds them hot (or joins
// a transfer already in flight and pays only the residual wait). This is
// the serving-side half of CacheBlend's loading controller: the
// controller picks how much recompute a tier's loading delay hides, the
// loader moves the chunks early enough that there is less delay to hide.
// The transfer model itself — arrival-time completion, in-flight joins,
// waste accounting — lives in kvstore (kvstore/prefetch.go); this file
// decides when transfers are worth issuing.
package serve

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/chunk"
	"repro/internal/sim"
)

// Prefetch policy names accepted by Config.PrefetchPolicy.
const (
	// PrefetchOff runs the legacy synchronous loading but populates the
	// prefetch telemetry in Result (tier-read stall, effective HBM hit
	// rate) — the baseline the sweep compares the async policies against.
	// The empty default is the same schedule with the telemetry off,
	// keeping legacy Results byte-identical.
	PrefetchOff = "off"
	// PrefetchOnEnqueue starts a loader per replica and prefetches each
	// arriving request's own chunks the moment the request enters the
	// admission queue: the queueing delay becomes transfer overlap.
	PrefetchOnEnqueue = "on-enqueue"
	// PrefetchPredictive is PrefetchOnEnqueue plus a demand signal: when
	// arrivals find the admission queue backed up past the replica count,
	// the loaders additionally promote the most popular cold chunks by
	// decayed hit count, so the hot set is resident before the requests
	// that want it are even admitted. This is what tracks the workload
	// generators' popularity drift.
	PrefetchPredictive = "predictive"
)

const (
	// predictiveFanout is how many popular cold chunks one queue-depth
	// signal promotes. Deliberately small: every speculative promotion
	// evicts a top-tier resident, and the queue-depth trigger fires on
	// every backed-up arrival anyway, so a small fanout drip-feeds the hot
	// set upward instead of churning the (much smaller) HBM tier wholesale.
	predictiveFanout = 2
	// popHalflife is the popularity estimator's decay half-life in
	// seconds of virtual time — long enough to rank a stable hot set,
	// short enough to follow the generators' drift periods (tens to
	// hundreds of seconds).
	popHalflife = 64.0
	// popMaxEntries caps the estimator's tracked chunks.
	popMaxEntries = 4096
)

// prefetchJob is one unit of loader work: promote these chunk ids on
// behalf of request req — or, with req < 0, whatever the popularity
// estimator ranks hottest among the cold-tier residents (the predictive
// queue-depth signal). Carrying the request index is what makes the job
// cancellable: once the request is admitted its tier reads are already
// paid, and promoting its chunks afterwards is pure waste.
type prefetchJob struct {
	req int
	ids []int
}

// prefetchOn reports whether the prefetch telemetry is active (any
// explicit policy, the synchronous "off" baseline included).
func (c Config) prefetchOn() bool { return c.PrefetchPolicy != "" }

// prefetchActive reports whether loader processes actually run.
func (c Config) prefetchActive() bool {
	return c.PrefetchPolicy == PrefetchOnEnqueue || c.PrefetchPolicy == PrefetchPredictive
}

// prefetchBW returns the effective loader bandwidth fraction.
func (c Config) prefetchBW() float64 {
	if c.PrefetchBW <= 0 {
		return 1
	}
	return c.PrefetchBW
}

// loader is replica r's prefetch process: it drains its node's prefetch
// queue and issues tier promotions, sleeping each transfer to completion
// before issuing the next — one transfer in flight per loader is the
// bandwidth budget's serialisation point (the budget itself scales each
// transfer's duration). Jobs whose request was admitted while they queued
// are dropped, and a mid-job admission stops the remaining keys: the
// request's tier reads are already priced against wherever its chunks
// are, so further promotion only displaces top-tier residents and bills
// PrefetchWastedBytes. Popping a predictive job releases its node's
// dedupe slot before the promotions run.
func (c *cluster) loader(p *sim.Proc, r int) {
	bw := c.cfg.prefetchBW()
	qi := c.qi(r)
	store := c.stores[qi]
	for {
		job, ok := c.pfQueues[qi].Pop(p)
		if !ok {
			return
		}
		if job.req < 0 {
			c.predPend[qi]--
		} else if c.admitted[job.req] {
			continue // stale: the request no longer benefits
		}
		for _, key := range c.jobKeys(job, p.Now(), qi) {
			if job.req >= 0 && c.admitted[job.req] {
				break // admitted mid-job: stop moving its chunks
			}
			if arrival, started := store.Prefetch(key, p.Now(), bw); started {
				p.SleepUntil(arrival)
			}
		}
	}
}

// jobKeys resolves a job to store keys on node qi: a request job names
// its own chunks; a predictive job asks the node's popularity estimator
// for the hottest chunks currently stranded on a cold tier.
func (c *cluster) jobKeys(job prefetchJob, now float64, qi int) []chunk.ID {
	if job.req < 0 {
		return c.pops[qi].Top(now, predictiveFanout, func(id chunk.ID) bool {
			return c.stores[qi].TierOf(id) > 0
		})
	}
	keys := make([]chunk.ID, len(job.ids))
	for i, id := range job.ids {
		keys[i] = c.chunkKeyOf(id)
	}
	return keys
}

// lookup resolves one chunk lookup against node si's store at virtual
// time now: the legacy synchronous Get when prefetch is off, the
// transfer-aware GetAt — which may join an in-flight promotion and report
// a residual wait — plus a popularity touch when a prefetch policy is set.
func (c *cluster) lookup(si int, key chunk.ID, now float64) (tier int, wait float64, ok bool) {
	if !c.prefetchOn {
		_, tier, ok := c.stores[si].Get(key)
		return tier, 0, ok
	}
	c.pops[si].Touch(key, now)
	_, tier, wait, ok = c.stores[si].GetAt(key, now)
	return tier, wait, ok
}

// validatePrefetch is the Config.Validate slice for the prefetch fields.
func (c Config) validatePrefetch() error {
	switch c.PrefetchPolicy {
	case "", PrefetchOff, PrefetchOnEnqueue, PrefetchPredictive:
	default:
		return fmt.Errorf("prefetch policy %q: want %s, %s or %s",
			c.PrefetchPolicy, PrefetchOff, PrefetchOnEnqueue, PrefetchPredictive)
	}
	if c.PrefetchBW < 0 || c.PrefetchBW > 1 {
		return fmt.Errorf("prefetch bandwidth %v: must be a fraction in [0, 1]", c.PrefetchBW)
	}
	if c.PrefetchBW > 0 && !c.prefetchActive() {
		return fmt.Errorf("prefetch bandwidth %v requires an active prefetch policy (got %q)",
			c.PrefetchBW, c.PrefetchPolicy)
	}
	if c.prefetchActive() {
		if len(c.tierConfigs()) < 2 {
			return fmt.Errorf("prefetch policy %q needs a multi-tier hierarchy to move chunks across", c.PrefetchPolicy)
		}
		switch c.Scheme {
		case baselines.FullKVReuse, baselines.CacheBlend:
		default:
			return fmt.Errorf("prefetch policy %q only applies to chunk-reusing schemes (got %q)",
				c.PrefetchPolicy, c.Scheme)
		}
	}
	return nil
}
