package serve

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/timing"
	"repro/internal/workload"
)

func testWorkloadChunks(cfg Config) workload.Chunks {
	return workload.Chunks{Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest, Skew: cfg.Skew}
}

// TestRunMatchesRunWorkload pins Run's contract as a thin wrapper: apart
// from Rate (offered vs realised), Run and RunWorkload with the
// equivalent Poisson generator must return the identical Result.
func TestRunMatchesRunWorkload(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.Replicas = 2
	cfg.MaxBatch = 3
	a := Run(cfg, 0.8, 300, 100, 21)
	b, err := RunWorkload(cfg, workload.Poisson{Rate: 0.8, Chunks: testWorkloadChunks(cfg)}, 300, 100, 21)
	if err != nil {
		t.Fatal(err)
	}
	a.Rate = b.Rate
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("wrapper diverged from RunWorkload:\n%+v\n%+v", a, b)
	}
}

// TestTraceReplayReproducesResult is the record/replay acceptance check:
// a bursty multi-replica run, exported through the JSONL trace format and
// replayed, must reproduce the generating run's Result field for field.
func TestTraceReplayReproducesResult(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.Replicas = 2
	cfg.MaxBatch = 3
	cfg.StoreCapacity = int64(80) * cfg.Spec.KVBytes(cfg.ChunkTokens)
	w := workload.Bursty{Rate: 1.5, Burst: 8, Chunks: testWorkloadChunks(cfg)}
	const n, warmup, seed = 400, 100, 33

	orig, err := RunWorkload(cfg, w, n, warmup, seed)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := workload.Record(&buf, w.Generate(n, seed)); err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := RunWorkload(cfg, workload.Trace{Label: "t", Reqs: reqs}, n, warmup, 999 /* seed must not matter */)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, replay) {
		t.Fatalf("trace replay drifted from generating run:\n%+v\n%+v", orig, replay)
	}
}

// TestBurstsInflateTailLatency: equal mean rate, same seed — the bursty
// stream's p95 TTFT must clearly exceed the Poisson stream's.
func TestBurstsInflateTailLatency(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	ch := testWorkloadChunks(cfg)
	const rate = 1.2
	smooth, err := RunWorkload(cfg, workload.Poisson{Rate: rate, Chunks: ch}, 600, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := RunWorkload(cfg, workload.Bursty{Rate: rate, Burst: 12, Chunks: ch}, 600, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	if bursty.P95TTFT < 2*smooth.P95TTFT {
		t.Fatalf("bursty p95 %.3f not clearly above poisson p95 %.3f at equal mean rate",
			bursty.P95TTFT, smooth.P95TTFT)
	}
}

// TestPerTenantStats: a multi-tenant mix reports a per-tenant breakdown
// consistent with the aggregate, ordered by tenant; single-tenant runs
// report none.
func TestPerTenantStats(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.StoreCapacity = int64(60) * cfg.Spec.KVBytes(cfg.ChunkTokens)
	m := workload.TenantMix(3, 1.0, workload.Chunks{Pool: 150, PerRequest: 6, Skew: 0.9}, 80, workload.Decode{})
	res, err := RunWorkload(cfg, m, 600, 150, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 3 {
		t.Fatalf("want 3 tenant entries, got %+v", res.Tenants)
	}
	total := 0
	for i, tu := range res.Tenants {
		if tu.Tenant != i {
			t.Fatalf("tenant entries out of order: %+v", res.Tenants)
		}
		if tu.Requests == 0 {
			t.Fatalf("tenant %d completed no requests", i)
		}
		if tu.MeanTTFT <= 0 || tu.P95TTFT < tu.MeanTTFT/2 {
			t.Fatalf("tenant %d TTFT stats implausible: %+v", i, tu)
		}
		if tu.HitRate < 0 || tu.HitRate > 1 || tu.Lookups == 0 {
			t.Fatalf("tenant %d hit stats implausible: %+v", i, tu)
		}
		total += tu.Requests
	}
	if total != res.Requests {
		t.Fatalf("tenant requests sum to %d, aggregate %d", total, res.Requests)
	}

	solo := Run(baseConfig(baselines.CacheBlend), 0.5, 300, 100, 14)
	if solo.Tenants != nil {
		t.Fatalf("single-tenant run grew a tenant breakdown: %+v", solo.Tenants)
	}
}

// TestSkewSeparatesTenantHitRates: with a tight shared store, the
// head-heavy tenant should enjoy a higher hit rate than the near-uniform
// one — the per-tenant telemetry the breakdown exists to expose.
func TestSkewSeparatesTenantHitRates(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.StoreCapacity = int64(40) * cfg.Spec.KVBytes(cfg.ChunkTokens)
	m := workload.MultiTenant{Tenants: []workload.Workload{
		workload.Poisson{Rate: 0.5, Chunks: workload.Chunks{Pool: 150, PerRequest: 6, Skew: 0.1}},
		workload.Poisson{Rate: 0.5, Chunks: workload.Chunks{Pool: 150, PerRequest: 6, Skew: 1.4, Offset: 150}},
	}}
	res, err := RunWorkload(cfg, m, 900, 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("want 2 tenants, got %+v", res.Tenants)
	}
	uniform, skewed := res.Tenants[0], res.Tenants[1]
	if skewed.HitRate <= uniform.HitRate {
		t.Fatalf("skewed tenant hit rate %.2f should beat uniform tenant's %.2f",
			skewed.HitRate, uniform.HitRate)
	}
}

// TestRunWorkloadValidation covers the error paths that used to panic
// deep inside sim, with recognisable messages.
func TestRunWorkloadValidation(t *testing.T) {
	good := baseConfig(baselines.CacheBlend)
	ch := testWorkloadChunks(good)
	w := workload.Poisson{Rate: 1, Chunks: ch}

	mut := func(f func(*Config)) Config { c := good; f(&c); return c }
	cases := []struct {
		name string
		cfg  Config
		w    workload.Workload
		n    int
		warm int
		want string
	}{
		{"zero chunk pool", good, workload.Poisson{Rate: 1, Chunks: workload.Chunks{Pool: 0, PerRequest: 6}}, 100, 10, "chunk pool"},
		{"negative skew", good, workload.Poisson{Rate: 1, Chunks: workload.Chunks{Pool: 10, PerRequest: 6, Skew: -1}}, 100, 10, "skew"},
		{"zero rate", good, workload.Poisson{Rate: 0, Chunks: ch}, 100, 10, "rate"},
		{"n below warmup", good, w, 100, 100, "warmup"},
		{"negative warmup", good, w, 100, -1, "warmup"},
		{"zero n", good, w, 0, 0, "at least one request"},
		{"bad scheme", mut(func(c *Config) { c.Scheme = baselines.MapReduce }), w, 100, 10, "not a serving mode"},
		{"zero chunk tokens", mut(func(c *Config) { c.ChunkTokens = 0 }), w, 100, 10, "chunk tokens"},
		{"bad ratio", mut(func(c *Config) { c.Ratio = 1.5 }), w, 100, 10, "ratio"},
		{"no spec", mut(func(c *Config) { c.Spec = timing.Spec{} }), w, 100, 10, "spec"},
		{"negative replicas", mut(func(c *Config) { c.Replicas = -2 }), w, 100, 10, "replicas"},
		{"no device", mut(func(c *Config) { c.Device = device.Device{} }), w, 100, 10, "device"},
		{"unbounded middle tier", mut(func(c *Config) {
			c.Tiers = []TierConfig{{Device: device.CPURAM, Capacity: 0}, {Device: device.NVMeSSD}}
		}), w, 100, 10, "bottom tier"},
		{"empty trace", good, workload.Trace{}, 100, 10, "no requests"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := RunWorkload(c.cfg, c.w, c.n, c.warm, 1)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}

	if _, err := RunWorkload(good, w, 100, 10, 1); err != nil {
		t.Fatalf("valid inputs rejected: %v", err)
	}
}

// TestRunWorkloadRejectsBrokenStreams: a custom Workload yielding an
// out-of-order or invalid stream is caught before the simulation starts.
func TestRunWorkloadRejectsBrokenStreams(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	disordered := workload.Trace{Label: "x", Reqs: []workload.Request{
		{Arrival: 2, Chunks: []int{1}},
		{Arrival: 1, Chunks: []int{2}},
	}}
	// Trace{} validation passes (non-empty), the stream scan must catch it.
	if _, err := RunWorkload(cfg, disordered, 2, 0, 1); err == nil ||
		!strings.Contains(err.Error(), "before request") {
		t.Fatalf("out-of-order stream accepted: %v", err)
	}
	invalid := workload.Trace{Label: "x", Reqs: []workload.Request{{Arrival: 1, Chunks: nil}}}
	if _, err := RunWorkload(cfg, invalid, 1, 0, 1); err == nil ||
		!strings.Contains(err.Error(), "no chunks") {
		t.Fatalf("chunkless request accepted: %v", err)
	}
}

// TestVariableChunkCountsPerRequest: trace replay may retrieve a
// different chunk count per request; service times and steps must follow
// the request's own chunk list.
func TestVariableChunkCountsPerRequest(t *testing.T) {
	cfg := baseConfig(baselines.FullRecompute)
	// Two requests far apart (no queueing): TTFT = own prefill time.
	tr := workload.Trace{Label: "var", Reqs: []workload.Request{
		{Arrival: 0, Chunks: []int{0, 1}},
		{Arrival: 1000, Chunks: []int{0, 1, 2, 3, 4, 5, 6, 7}},
	}}
	res, err := RunWorkload(cfg, tr, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	small := cfg.Spec.FullPrefillTTFT(2*cfg.ChunkTokens + cfg.QueryTokens)
	large := cfg.Spec.FullPrefillTTFT(8*cfg.ChunkTokens + cfg.QueryTokens)
	wantMean := (small + large) / 2
	if res.MeanTTFT < 0.99*wantMean || res.MeanTTFT > 1.01*wantMean {
		t.Fatalf("mean TTFT %.4f, want ≈%.4f (per-request chunk counts ignored?)", res.MeanTTFT, wantMean)
	}
}
