package serve

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/timing"
)

// tieredConfig returns a CacheBlend config whose KV store spans
// HBM→RAM→NVMe with the given byte budgets.
func tieredConfig(hbm, ram, nvme int64) Config {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.Tiers = []TierConfig{
		{Device: device.GPUHBM, Capacity: hbm},
		{Device: device.CPURAM, Capacity: ram},
		{Device: device.NVMeSSD, Capacity: nvme},
	}
	return cfg
}

// TestTieredBeatsSingleSlowTier is the acceptance check: at equal total
// capacity, an HBM+RAM+NVMe hierarchy must serve a lower mean TTFT than
// the same budget on NVMe alone — upper-tier hits pay cheaper loads.
func TestTieredBeatsSingleSlowTier(t *testing.T) {
	total := int64(120) * timing.Mistral7B.KVBytes(512) // 120 of 200 pool chunks
	flat := baseConfig(baselines.CacheBlend)
	flat.StoreCapacity = total
	tiered := tieredConfig(total/8, total/4, total-total/8-total/4)
	for _, rate := range []float64{0.1, 0.4} {
		fr := Run(flat, rate, 900, 300, 11)
		tr := Run(tiered, rate, 900, 300, 11)
		if tr.MeanTTFT >= fr.MeanTTFT {
			t.Fatalf("rate %.1f: tiered mean TTFT %.4f not below nvme-only %.4f",
				rate, tr.MeanTTFT, fr.MeanTTFT)
		}
		if len(tr.Tiers) != 3 {
			t.Fatalf("want 3 tier usage entries, got %d", len(tr.Tiers))
		}
		if tr.Tiers[0].Hits == 0 {
			t.Fatal("hot chunks should hit the HBM tier")
		}
	}
}

// TestTierHitRatesSumToLookups: per-tier hits plus misses account for
// every store lookup, and the reported per-tier hit rates add up to the
// aggregate hit rate.
func TestTierHitRatesSumToLookups(t *testing.T) {
	cfg := tieredConfig(
		40*timing.Mistral7B.KVBytes(512),
		80*timing.Mistral7B.KVBytes(512),
		0, // unbounded bottom
	)
	res := Run(cfg, 0.3, 800, 200, 9)
	if res.Lookups == 0 {
		t.Fatal("no lookups recorded")
	}
	var hits int64
	var rateSum float64
	for _, tu := range res.Tiers {
		hits += tu.Hits
		rateSum += tu.HitRate
	}
	if hits+res.Misses != res.Lookups {
		t.Fatalf("tier hits %d + misses %d != lookups %d", hits, res.Misses, res.Lookups)
	}
	if diff := rateSum - res.HitRate; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("tier hit rates sum %.6f != aggregate %.6f", rateSum, res.HitRate)
	}
	// Demoted chunks must land somewhere: movement telemetry is coherent.
	if res.Tiers[0].Demotions == 0 {
		t.Fatal("bounded top tier under pressure should demote")
	}
	var resident int64
	for _, tu := range res.Tiers {
		resident += tu.BytesResident
	}
	if resident == 0 {
		t.Fatal("no bytes resident after a warm run")
	}
}

// TestSingleTierMatchesLegacyConfig: expressing the flat store as a
// one-entry Tiers list must reproduce the legacy Device/StoreCapacity
// run bit-identically (the schemes whose ratio does not depend on the
// controller's tier-aware choice).
func TestSingleTierMatchesLegacyConfig(t *testing.T) {
	for _, scheme := range []baselines.Scheme{baselines.PrefixCaching, baselines.FullKVReuse} {
		legacy := baseConfig(scheme)
		legacy.StoreCapacity = 64 * timing.Mistral7B.KVBytes(512)
		single := legacy
		single.Tiers = []TierConfig{{Device: legacy.Device, Capacity: legacy.StoreCapacity}}
		lr := Run(legacy, 0.3, 400, 100, 4)
		sr := Run(single, 0.3, 400, 100, 4)
		if lr.MeanTTFT != sr.MeanTTFT || lr.P95TTFT != sr.P95TTFT ||
			lr.Throughput != sr.Throughput || lr.HitRate != sr.HitRate {
			t.Fatalf("%s: single-tier run diverged from legacy: %+v vs %+v", scheme, sr, lr)
		}
	}
}

// TestFasterTopTierNeverHurts: adding a faster tier in front of the same
// bottom capacity must not raise TTFT for the load-dominated scheme.
func TestFasterTopTierNeverHurts(t *testing.T) {
	flat := baseConfig(baselines.FullKVReuse)
	flat.StoreCapacity = 100 * timing.Mistral7B.KVBytes(512)
	layered := baseConfig(baselines.FullKVReuse)
	layered.Tiers = []TierConfig{
		{Device: device.CPURAM, Capacity: flat.StoreCapacity / 4},
		{Device: device.NVMeSSD, Capacity: flat.StoreCapacity - flat.StoreCapacity/4},
	}
	fr := Run(flat, 0.2, 600, 200, 8)
	lr := Run(layered, 0.2, 600, 200, 8)
	if lr.MeanTTFT > fr.MeanTTFT {
		t.Fatalf("RAM front tier raised TTFT: %.4f vs %.4f", lr.MeanTTFT, fr.MeanTTFT)
	}
}
