package serve

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/workload"
)

// closedLoopW is the shared closed-loop scenario for these tests: three
// tenant pools of concurrent clients over the schedConfig corpus.
func closedLoopW(clients int) workload.ClosedLoop {
	return workload.ClosedLoop{
		Tenants: 3,
		Clients: clients,
		Think:   2,
		Chunks:  workload.Chunks{Pool: 120, PerRequest: 6, Skew: 0.8},
		Decode:  workload.Decode{Mean: 32},
	}
}

// TestClosedLoopServe runs a closed-loop session end to end: the run
// completes exactly the budgeted request count, the realised rate is an
// output, and per-tenant telemetry covers every tenant pool.
func TestClosedLoopServe(t *testing.T) {
	w := closedLoopW(4)
	res, err := RunWorkload(schedConfig(SchedFIFO), w, 300, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 240 {
		t.Fatalf("measured %d requests, want n-warmup = 240", res.Requests)
	}
	if res.Rate <= 0 || math.IsInf(res.Rate, 0) {
		t.Fatalf("realised rate %v, want a positive finite output", res.Rate)
	}
	if res.Throughput <= 0 || res.MeanTTFT <= 0 {
		t.Fatalf("degenerate telemetry: throughput %v ttft %v", res.Throughput, res.MeanTTFT)
	}
	if len(res.Tenants) != 3 {
		t.Fatalf("%d tenant rows, want 3", len(res.Tenants))
	}
}

// TestClosedLoopDeterministic: feedback-driven arrivals depend on the
// schedule, but the schedule is deterministic — identical config and seed
// must reproduce the Result byte for byte; a different seed must not.
func TestClosedLoopDeterministic(t *testing.T) {
	w := closedLoopW(4)
	run := func(seed int64) string {
		res, err := RunWorkload(schedConfig(SchedChunkedPrefill), w, 200, 40, seed)
		if err != nil {
			t.Fatal(err)
		}
		j, _ := json.Marshal(res)
		return string(j)
	}
	a, b := run(11), run(11)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if run(12) == a {
		t.Fatal("different seed reproduced the same Result")
	}
}

// TestClosedLoopRejectsEvents: membership churn replays in-flight work
// with original arrivals, which has no meaning under feedback arrivals.
func TestClosedLoopRejectsEvents(t *testing.T) {
	cfg := schedConfig(SchedFIFO)
	cfg.Replicas = 2
	cfg.Events = []MembershipEvent{{At: 5, Kill: 0}}
	_, err := RunWorkload(cfg, closedLoopW(4), 200, 40, 7)
	if err == nil {
		t.Fatal("closed-loop run with membership events did not fail")
	}
	if _, err := RunWorkload(schedConfig(SchedFIFO), closedLoopW(4), 100, 100, 7); err == nil {
		t.Fatal("warmup >= n did not fail for a closed-loop run")
	}
}

// TestClosedLoopSelfThrottling is the load-control property the closed
// loop exists for: arrivals wait for completions, so the admission queue
// can never hold more than the client pool, no matter how slow the
// server. An open-loop stream at overload keeps arriving regardless and
// its queue grows without bound.
func TestClosedLoopSelfThrottling(t *testing.T) {
	closed, err := RunWorkload(schedConfig(SchedFIFO), closedLoopW(8), 400, 80, 7)
	if err != nil {
		t.Fatal(err)
	}
	pool := 3 * 8 // Tenants × Clients
	if closed.MeanQueueDepth > float64(pool) {
		t.Fatalf("closed-loop mean queue depth %.1f exceeds the %d-client pool", closed.MeanQueueDepth, pool)
	}
	open, err := RunWorkload(schedConfig(SchedFIFO), burstyDecode(3), 400, 80, 7)
	if err != nil {
		t.Fatal(err)
	}
	if open.MeanQueueDepth <= closed.MeanQueueDepth {
		t.Fatalf("open-loop overload queue depth %.1f not above closed-loop's %.1f — overload scenario too light",
			open.MeanQueueDepth, closed.MeanQueueDepth)
	}
}

// TestSLOTelemetryGating: SLO fields appear only when targets are set
// alongside an explicit policy, and stay exactly zero otherwise — the
// same gating that keeps the legacy goldens byte-identical.
func TestSLOTelemetryGating(t *testing.T) {
	w := burstyDecode(0.6)
	plain, err := RunWorkload(schedConfig(SchedFIFO), w, 300, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if plain.SLOAttainment != 0 || plain.Goodput != 0 || plain.SLOViolations != 0 {
		t.Fatalf("no targets set but SLO telemetry populated: %+v", plain)
	}
	cfg := schedConfig(SchedFIFO)
	cfg.SLOTTFT, cfg.SLOTBT = 2, 0.1
	slo, err := RunWorkload(cfg, w, 300, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if slo.SLOAttainment <= 0 || slo.SLOAttainment > 1 {
		t.Fatalf("attainment %v outside (0,1]", slo.SLOAttainment)
	}
	if slo.SLOTTFTAttainment < slo.SLOAttainment || slo.SLOTBTAttainment < slo.SLOAttainment {
		t.Fatalf("joint attainment %v above a per-dimension rate (ttft %v, tbt %v)",
			slo.SLOAttainment, slo.SLOTTFTAttainment, slo.SLOTBTAttainment)
	}
	met := int64(math.Round(slo.SLOAttainment * float64(slo.Requests)))
	if slo.SLOViolations != int64(slo.Requests)-met {
		t.Fatalf("violations %d inconsistent with attainment %v over %d requests",
			slo.SLOViolations, slo.SLOAttainment, slo.Requests)
	}
	// Targets no run can miss: attainment 1, goodput == throughput.
	cfg.SLOTTFT, cfg.SLOTBT = 1e9, 0
	easy, err := RunWorkload(cfg, w, 300, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if easy.SLOAttainment != 1 || easy.SLOViolations != 0 {
		t.Fatalf("unmissable target missed: attainment %v, %d violations", easy.SLOAttainment, easy.SLOViolations)
	}
	if math.Abs(easy.Goodput-easy.Throughput) > 1e-9 {
		t.Fatalf("goodput %v != throughput %v with every request meeting SLO", easy.Goodput, easy.Throughput)
	}
	// Telemetry must not perturb the schedule itself.
	strip := func(r Result) string {
		r.SLOAttainment, r.SLOTTFTAttainment, r.SLOTBTAttainment, r.Goodput, r.SLOViolations = 0, 0, 0, 0, 0
		for i := range r.Tenants {
			r.Tenants[i].SLOAttainment = 0
		}
		j, _ := json.Marshal(r)
		return string(j)
	}
	if strip(slo) != strip(plain) {
		t.Fatalf("setting SLO targets changed the fifo schedule:\n%s\n%s", strip(slo), strip(plain))
	}
}

// TestSLOPolicyClosedLoop runs the slo policy on the traffic it is built
// for — closed-loop multi-tenant — and checks the per-tenant attainment
// telemetry is populated and sane.
func TestSLOPolicyClosedLoop(t *testing.T) {
	cfg := sloConfig()
	cfg.SLOTBT = 0.1
	res, err := RunWorkload(cfg, closedLoopW(6), 300, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOAttainment <= 0 || res.SLOAttainment > 1 {
		t.Fatalf("attainment %v outside (0,1]", res.SLOAttainment)
	}
	if len(res.Tenants) != 3 {
		t.Fatalf("%d tenant rows, want 3", len(res.Tenants))
	}
	for _, tu := range res.Tenants {
		if tu.SLOAttainment < 0 || tu.SLOAttainment > 1 {
			t.Fatalf("tenant %d attainment %v outside [0,1]", tu.Tenant, tu.SLOAttainment)
		}
	}
}

// TestSLOPolicyStarvationBound mirrors the decode-priority bound: the
// slo policy deprioritises late requests, but the aging class (waiting
// past StarveLimit×SLOTTFT) jumps the queue, so no request's prefill
// delay can run away even at sustained overload.
func TestSLOPolicyStarvationBound(t *testing.T) {
	w := burstyDecode(1.5) // well past capacity: the queue is never empty for long
	fifo, err := RunWorkload(schedConfig(SchedFIFO), w, 300, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sloConfig()
	cfg.StarveLimit = 6
	slo, err := RunWorkload(cfg, w, 300, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if slo.Requests != fifo.Requests {
		t.Fatalf("slo completed %d of the stream's requests, FIFO %d", slo.Requests, fifo.Requests)
	}
	if math.IsInf(slo.P95PrefillDelay, 0) || math.IsNaN(slo.P95PrefillDelay) || slo.P95PrefillDelay <= 0 {
		t.Fatalf("slo p95 prefill delay degenerate: %v", slo.P95PrefillDelay)
	}
	if slo.P95PrefillDelay > 4*fifo.P95PrefillDelay {
		t.Fatalf("slo p95 prefill delay %.3f blew past the starvation bound (FIFO %.3f)",
			slo.P95PrefillDelay, fifo.P95PrefillDelay)
	}
}
