package serve

import (
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/baselines"
	"repro/internal/chunk"
	"repro/internal/device"
	"repro/internal/timing"
	"repro/internal/workload"
)

// routerTestConfig is the router sweep's acceptance scenario at test
// scale: four replicas with their own HBM/DRAM/slow-SSD stacks, each
// tenant corpus 6× one replica's HBM tier.
func routerTestConfig(router string) Config {
	chunkBytes := timing.Mistral7B.KVBytes(512)
	return Config{
		Spec:     timing.Mistral7B,
		Scheme:   baselines.CacheBlend,
		Ratio:    0.15,
		Replicas: 4,
		MaxBatch: 4,
		Tiers: []TierConfig{
			{Device: device.GPUHBM, Capacity: 8 * chunkBytes},
			{Device: device.CPURAM, Capacity: 48 * chunkBytes},
			{Device: device.SlowSSD},
		},
		ChunkTokens: 512,
		QueryTokens: 128,
		Router:      router,
	}
}

// routerTestMix is four bursty tenants over disjoint 48-chunk corpora.
func routerTestMix(rate float64) workload.Workload {
	mix := make([]workload.Workload, 4)
	for i := range mix {
		mix[i] = workload.Bursty{Rate: rate, Burst: 4,
			Chunks: workload.Chunks{Pool: 48, PerRequest: 6, Skew: 1.1, Offset: i * 48}}
	}
	return workload.MultiTenant{Tenants: mix}
}

func TestRouterValidate(t *testing.T) {
	cfg := routerTestConfig("round-robin")
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown router policy accepted")
	}
	for _, router := range []string{"", RouterShared, RouterHash, RouterAffinity} {
		cfg := routerTestConfig(router)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("router %q rejected: %v", router, err)
		}
	}
	// Routed policies place by chunk identity, so chunkless schemes make
	// no sense; the shared baseline is topology-neutral and stays legal.
	cfg = routerTestConfig(RouterAffinity)
	cfg.Scheme = baselines.FullRecompute
	if err := cfg.Validate(); err == nil {
		t.Fatal("affinity routing accepted for a non-chunk-reusing scheme")
	}
	cfg.Router = RouterShared
	if err := cfg.Validate(); err != nil {
		t.Fatalf("shared baseline rejected for full recompute: %v", err)
	}
}

// TestHashRingBalance: 64 vnodes per replica must spread chunk ownership
// to within a few percent of uniform — the property that makes hash
// routing's load balance worth its duplication cost.
func TestHashRingBalance(t *testing.T) {
	const replicas, ids = 4, 20000
	ring := newHashRing(replicas)
	counts := make([]int, replicas)
	for i := 0; i < ids; i++ {
		counts[ring.owner(chunk.Hash("ring-balance", []int{i}))]++
	}
	for r, n := range counts {
		share := float64(n) / ids
		if share < 0.15 || share > 0.35 {
			t.Errorf("replica %d owns %.1f%% of ids, want 15%%–35%%", r, share*100)
		}
	}
}

// TestHashRingStability: ownership under n replicas must be a subset of
// the points, not a reshuffle — growing the ring may only move a chunk to
// the new replica, never between old ones. That is the consistent-hashing
// property the scale-out roadmap item depends on.
func TestHashRingStability(t *testing.T) {
	small, big := newHashRing(4), newHashRing(5)
	moved, total := 0, 5000
	for i := 0; i < total; i++ {
		id := chunk.Hash("ring-stability", []int{i})
		was, is := small.owner(id), big.owner(id)
		if was != is {
			if is != 4 {
				t.Fatalf("id %d moved between old replicas %d→%d on scale-out", i, was, is)
			}
			moved++
		}
	}
	// The new replica should claim roughly 1/5 of the keyspace.
	if share := float64(moved) / float64(total); share < 0.10 || share > 0.30 {
		t.Errorf("scale-out moved %.1f%% of ids, want 10%%–30%%", share*100)
	}
}

// TestRouterDeterminism: a routed run is a function of (config, workload,
// seed) — replaying it must reproduce every Result field bit for bit.
func TestRouterDeterminism(t *testing.T) {
	w := routerTestMix(2.0)
	for _, router := range []string{RouterShared, RouterHash, RouterAffinity} {
		cfg := routerTestConfig(router)
		a, err := RunWorkload(cfg, w, 200, 40, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunWorkload(cfg, w, 200, 40, 7)
		if err != nil {
			t.Fatal(err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Errorf("router %q: same seed diverged:\n a %s\n b %s", router, aj, bj)
		}
	}
}

// TestRouterSharedMatchesLegacy: naming the shared baseline may only add
// telemetry — the schedule, and with it every pre-router Result field,
// must stay byte-identical to the legacy empty default.
func TestRouterSharedMatchesLegacy(t *testing.T) {
	w := routerTestMix(2.0)
	legacy, err := RunWorkload(routerTestConfig(""), w, 200, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunWorkload(routerTestConfig(RouterShared), w, 200, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	// One store (one hit-rate row), but admission counts stay per replica:
	// shared replicas still pull work from the common queue independently.
	if shared.Router != RouterShared || len(shared.ReplicaHitRates) != 1 ||
		len(shared.ReplicaRequests) != 4 || shared.DuplicationBytes != 0 {
		t.Errorf("shared telemetry malformed: router=%q hitrates=%v reqs=%v dup=%d",
			shared.Router, shared.ReplicaHitRates, shared.ReplicaRequests, shared.DuplicationBytes)
	}
	if legacy.Router != "" || legacy.ReplicaHitRates != nil || legacy.ReplicaRequests != nil ||
		legacy.LoadSkew != 0 || legacy.QueueSkew != 0 || legacy.DuplicationBytes != 0 {
		t.Errorf("legacy run populated router telemetry: %+v", legacy)
	}
	shared.Router, shared.ReplicaHitRates, shared.ReplicaRequests = "", nil, nil
	shared.LoadSkew, shared.QueueSkew, shared.DuplicationBytes = 0, 0, 0
	lj, _ := json.Marshal(legacy)
	sj, _ := json.Marshal(shared)
	if string(lj) != string(sj) {
		t.Errorf("shared baseline drifted from legacy:\n legacy %s\n shared %s", lj, sj)
	}
}

// TestAffinityBeatsHashAndShared is the acceptance property of the
// router: on multi-tenant bursty Zipf traffic whose corpora exceed a
// replica's HBM tier, affinity routing must beat both the shared
// single-store baseline and consistent hashing on mean TTFT and on
// top-tier hit rate. Seeds are averaged because single bursty traces are
// noisy on a ~5% margin.
func TestAffinityBeatsHashAndShared(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed routed simulations")
	}
	w := routerTestMix(2.0)
	mean := func(router string) (ttft, hbm float64) {
		for _, seed := range []int64{1, 2, 3} {
			res, err := RunWorkload(routerTestConfig(router), w, 600, 100, seed)
			if err != nil {
				t.Fatal(err)
			}
			ttft += res.MeanTTFT
			hbm += res.Tiers[0].HitRate
		}
		return ttft / 3, hbm / 3
	}
	sharedTTFT, sharedHBM := mean(RouterShared)
	hashTTFT, hashHBM := mean(RouterHash)
	affTTFT, affHBM := mean(RouterAffinity)
	if affTTFT >= sharedTTFT || affTTFT >= hashTTFT {
		t.Errorf("affinity mean TTFT %.3f not best (shared %.3f, hash %.3f)",
			affTTFT, sharedTTFT, hashTTFT)
	}
	if affHBM <= sharedHBM || affHBM <= hashHBM {
		t.Errorf("affinity HBM hit rate %.3f not best (shared %.3f, hash %.3f)",
			affHBM, sharedHBM, hashHBM)
	}
}

// TestRouterRaceStress runs the routed policies concurrently so the race
// detector can see per-replica stores, loaders and popularity views
// operating in parallel. Results are discarded; the assertions are the
// ones -race injects.
func TestRouterRaceStress(t *testing.T) {
	w := routerTestMix(2.0)
	var wg sync.WaitGroup
	for _, router := range []string{RouterShared, RouterHash, RouterAffinity} {
		for seed := int64(1); seed <= 2; seed++ {
			router, seed := router, seed
			wg.Add(1)
			go func() {
				defer wg.Done()
				cfg := routerTestConfig(router)
				cfg.PrefetchPolicy = PrefetchPredictive
				if _, err := RunWorkload(cfg, w, 120, 20, seed); err != nil {
					t.Error(err)
				}
			}()
		}
	}
	wg.Wait()
}

// TestWarmupTieMeasured pins the unified warmup rule: a request is
// measured iff it arrives at or after the cutoff — the arrival of the
// first post-warmup request — so requests tied with the cutoff count even
// when their index falls inside the warmup prefix. Six requests arrive at
// [0,0,1,1,1,2] with warmup=3: the cutoff is reqs[3].Arrival = 1, and the
// four requests arriving at t≥1 (the index-2 tie included) are measured.
func TestWarmupTieMeasured(t *testing.T) {
	reqs := make([]workload.Request, 0, 6)
	for i, at := range []float64{0, 0, 1, 1, 1, 2} {
		reqs = append(reqs, workload.Request{Arrival: at, Chunks: []int{i, i + 6}})
	}
	cfg := routerTestConfig("")
	res, err := RunWorkload(cfg, workload.Trace{Label: "warmup-tie", Reqs: reqs}, len(reqs), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 4 {
		t.Errorf("measured %d requests, want 4 (arrival ties at the cutoff count)", res.Requests)
	}
}
