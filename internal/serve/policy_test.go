package serve

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// schedConfig is the shared scenario for the policy tests: CacheBlend
// with a real batch cap, so mixed prefill/decode batches are the norm.
func schedConfig(sched string) Config {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.MaxBatch = 8
	cfg.Sched = sched
	return cfg
}

func burstyDecode(rate float64) workload.Workload {
	return workload.Bursty{Rate: rate, Burst: 8,
		Chunks: workload.Chunks{Pool: 200, PerRequest: 6, Skew: 0.8},
		Decode: workload.Decode{Mean: 32}}
}

func tenantDecode(rate float64) workload.Workload {
	return workload.TenantMix(3, rate,
		workload.Chunks{Pool: 200, PerRequest: 6, Skew: 0.8}, 120,
		workload.Decode{Mean: 32})
}

// sloConfig is schedConfig for the slo policy, which requires a TTFT
// target to schedule against.
func sloConfig() Config {
	cfg := schedConfig(SchedSLO)
	cfg.SLOTTFT = 2
	return cfg
}

// TestSchedValidate pins the policy-axis validation: unknown names and
// knobs paired with policies that ignore them must fail loudly, every
// valid policy name must pass.
func TestSchedValidate(t *testing.T) {
	for _, sched := range []string{"", SchedFIFO, SchedChunkedPrefill, SchedDecodePriority} {
		cfg := schedConfig(sched)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("policy %q rejected: %v", sched, err)
		}
	}
	if err := sloConfig().Validate(); err != nil {
		t.Fatalf("slo policy with a TTFT target rejected: %v", err)
	}
	bad := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"unknown policy", func(c *Config) { c.Sched = "sarathi" }, "scheduling policy"},
		{"negative budget", func(c *Config) { c.PrefillBudget = -1 }, "prefill budget"},
		{"negative starve", func(c *Config) { c.StarveLimit = -1 }, "starve limit"},
		{"budget without chunked", func(c *Config) { c.Sched = SchedFIFO; c.PrefillBudget = 64 }, "prefill budget"},
		{"budget on legacy default", func(c *Config) { c.PrefillBudget = 64 }, "prefill budget"},
		{"starve without decode-priority", func(c *Config) { c.Sched = SchedChunkedPrefill; c.StarveLimit = 4 }, "starve limit"},
		{"slo without target", func(c *Config) { c.Sched = SchedSLO }, "TTFT target"},
		{"targets without policy", func(c *Config) { c.SLOTTFT = 2 }, "explicit scheduling policy"},
		{"tbt target without policy", func(c *Config) { c.SLOTBT = 0.05 }, "explicit scheduling policy"},
		{"negative ttft target", func(c *Config) { c.Sched = SchedFIFO; c.SLOTTFT = -1 }, "TTFT SLO target"},
		{"nan tbt target", func(c *Config) { c.Sched = SchedFIFO; c.SLOTBT = math.NaN() }, "TBT SLO target"},
	}
	for _, tc := range bad {
		cfg := schedConfig("")
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: want error mentioning %q, got %v", tc.name, tc.want, err)
		}
	}
}

// TestFIFOPolicyMatchesLegacy: naming "fifo" must reproduce the legacy
// default schedule exactly — same TTFT, TBT, throughput, step mix, every
// shared field — adding only the scheduling telemetry the default leaves
// zero.
func TestFIFOPolicyMatchesLegacy(t *testing.T) {
	w := burstyDecode(0.6)
	legacy, err := RunWorkload(schedConfig(""), w, 300, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.StallTime != 0 || legacy.MeanPrefillDelay != 0 || legacy.P95PrefillDelay != 0 {
		t.Fatalf("legacy default populated scheduling telemetry: stall=%v delay=%v/%v",
			legacy.StallTime, legacy.MeanPrefillDelay, legacy.P95PrefillDelay)
	}
	got, err := RunWorkload(schedConfig(SchedFIFO), w, 300, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got.StallTime <= 0 || got.MeanPrefillDelay <= 0 {
		t.Fatalf("fifo: scheduling telemetry missing under load: stall=%v delay=%v",
			got.StallTime, got.MeanPrefillDelay)
	}
	// Strip the telemetry and the rest must be byte-identical.
	stripped := got
	stripped.StallTime, stripped.MeanPrefillDelay, stripped.P95PrefillDelay = 0, 0, 0
	gj, _ := json.Marshal(stripped)
	lj, _ := json.Marshal(legacy)
	if string(gj) != string(lj) {
		t.Fatalf("fifo drifted from the legacy schedule:\n got %s\nwant %s", gj, lj)
	}
}

// TestPolicyTokenConservation: scheduling reorders and splits work, it
// must never create or lose it. Every policy on the same stream has to
// complete the same requests and emit the same generated tokens.
func TestPolicyTokenConservation(t *testing.T) {
	for _, mk := range []func(float64) workload.Workload{burstyDecode, tenantDecode} {
		w := mk(0.6)
		base, err := RunWorkload(schedConfig(""), w, 300, 100, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, sched := range []string{SchedFIFO, SchedChunkedPrefill, SchedDecodePriority, SchedSLO} {
			cfg := schedConfig(sched)
			if sched == SchedSLO {
				cfg.SLOTTFT = 2
			}
			res, err := RunWorkload(cfg, w, 300, 100, 3)
			if err != nil {
				t.Fatal(err)
			}
			if res.Requests != base.Requests || res.OutputTokens != base.OutputTokens {
				t.Fatalf("%s on %s: completed %d requests / %d tokens, legacy %d / %d — scheduling must conserve work",
					sched, w.Name(), res.Requests, res.OutputTokens, base.Requests, base.OutputTokens)
			}
		}
	}
}

// TestChunkedPrefillRelievesDecoders is the run-level satellite: on the
// bursty and multi-tenant decode workloads, chunked prefill must cut
// mean and tail TBT and the measured stall against FIFO while keeping
// throughput — the TBT win has to come from removing head-of-line
// blocking, not from shedding or deferring work.
func TestChunkedPrefillRelievesDecoders(t *testing.T) {
	for _, mk := range []func(float64) workload.Workload{burstyDecode, tenantDecode} {
		w := mk(0.6)
		fifo, err := RunWorkload(schedConfig(SchedFIFO), w, 300, 100, 7)
		if err != nil {
			t.Fatal(err)
		}
		chunked, err := RunWorkload(schedConfig(SchedChunkedPrefill), w, 300, 100, 7)
		if err != nil {
			t.Fatal(err)
		}
		if chunked.MeanTBT > fifo.MeanTBT || chunked.P95TBT > fifo.P95TBT {
			t.Fatalf("%s: chunked TBT %.4f/%.4f above FIFO's %.4f/%.4f",
				w.Name(), chunked.MeanTBT, chunked.P95TBT, fifo.MeanTBT, fifo.P95TBT)
		}
		if chunked.StallTime >= fifo.StallTime {
			t.Fatalf("%s: chunked stall %.2fs not below FIFO's %.2fs", w.Name(), chunked.StallTime, fifo.StallTime)
		}
		if chunked.Throughput < 0.95*fifo.Throughput {
			t.Fatalf("%s: chunked throughput %.3f fell below FIFO's %.3f", w.Name(), chunked.Throughput, fifo.Throughput)
		}
	}
}

// TestChunkedStepNeverSlowsDecode is the step-level property behind the
// run-level TBT win, in its well-defined form: for any batch, every
// resident decoder emits exactly one token per step under both the
// whole-chunk and the budgeted regime (same per-step decode progress),
// and as long as the budget grants slices no longer than the legacy
// whole-chunk step, the budgeted step never outlasts the legacy one —
// so a decoder's share of each step spent at decode cadence can only
// rise. (The *count* of decode-only steps can fall under chunking —
// prefill spreads over more, shorter steps — which is why the property
// is per-step, not a share of step counts.)
func TestChunkedStepNeverSlowsDecode(t *testing.T) {
	g := tensor.NewRNG(23)
	cfg := schedConfig(SchedChunkedPrefill)
	c := &cluster{cfg: cfg, decodeUnit: cfg.Spec.DecodeSecPerToken}
	// Budget at most 272 tokens: with this geometry (512-token chunks,
	// 32-token query, ≥1 chunk) a legacy step spans at least 272 tokens'
	// worth of service time, so every granted slice fits inside it.
	for trial := 0; trial < 2000; trial++ {
		c.budget = 1 + g.Intn(272)
		n := 1 + g.Intn(8)
		batch := make([]*member, n)
		decoders := 0
		for i := range batch {
			chunks := 1 + g.Intn(8)
			service := 0.05 + g.Float64()
			steps := chunks + 1
			prefTotal := chunks*cfg.ChunkTokens + cfg.QueryTokens
			m := &member{
				unit:      service / float64(steps),
				remaining: steps,
				prefTotal: prefTotal,
				prefDone:  g.Intn(prefTotal),
				perTok:    service / float64(prefTotal),
				decoding:  g.Float64() < 0.5,
			}
			if m.decoding {
				// Mirror the runtime's phase-transition invariant: a
				// decoding member's unit is the per-token decode time.
				m.unit = c.decodeUnit
				decoders++
			}
			batch[i] = m
		}
		budgeted, _ := c.planStep(batch, 0)
		legacy := c.stepTime(batch)
		// Same decode progress either way: one token per resident
		// decoder per step, by construction of the advance loop — so
		// comparing step durations compares per-step decode throughput.
		if decoders == n {
			if math.Abs(budgeted-legacy) > 1e-12 {
				t.Fatalf("trial %d: decode-only step priced differently: %.6f vs %.6f", trial, budgeted, legacy)
			}
			continue
		}
		if budgeted > legacy+1e-12 {
			t.Fatalf("trial %d: budgeted step %.6f outlasts whole-chunk step %.6f (budget %d, %d decoders / %d)",
				trial, budgeted, legacy, c.budget, decoders, n)
		}
	}
}

// TestDecodePriorityStarvationBound: at overload, with decoders present
// at essentially every boundary, decode-priority defers prefills — but
// the aging bound must keep prefill delay finite and within a small
// factor of FIFO's own queueing delay, rather than letting prefills
// starve behind an unbounded decode stream.
func TestDecodePriorityStarvationBound(t *testing.T) {
	w := burstyDecode(1.5) // well past capacity: the queue is never empty for long
	fifo, err := RunWorkload(schedConfig(SchedFIFO), w, 300, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := schedConfig(SchedDecodePriority)
	cfg.StarveLimit = 6
	dp, err := RunWorkload(cfg, w, 300, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Requests != fifo.Requests {
		t.Fatalf("decode-priority completed %d of the stream's requests, FIFO %d", dp.Requests, fifo.Requests)
	}
	if math.IsInf(dp.P95PrefillDelay, 0) || math.IsNaN(dp.P95PrefillDelay) || dp.P95PrefillDelay <= 0 {
		t.Fatalf("decode-priority p95 prefill delay degenerate: %v", dp.P95PrefillDelay)
	}
	if dp.MeanPrefillDelay <= fifo.MeanPrefillDelay {
		t.Fatalf("decode-priority prefill delay %.3f not above FIFO's %.3f — it never deferred anything?",
			dp.MeanPrefillDelay, fifo.MeanPrefillDelay)
	}
	if dp.P95PrefillDelay > 4*fifo.P95PrefillDelay {
		t.Fatalf("decode-priority p95 prefill delay %.3f blew past the starvation bound (FIFO %.3f)",
			dp.P95PrefillDelay, fifo.P95PrefillDelay)
	}
}

// TestAdmitQuotaContracts pins the policies' admission arithmetic,
// including the aging guarantee the starvation bound rests on.
func TestAdmitQuotaContracts(t *testing.T) {
	cfg := schedConfig(SchedDecodePriority)
	cfg.StarveLimit = 3
	dp := cfg.policy()
	if q := dp.AdmitQuota(2, 0, 5, 0); q != 5 {
		t.Fatalf("decode-free batch must admit greedily: quota %d, want 5", q)
	}
	if q := dp.AdmitQuota(0, 4, 5, 0); q != 0 {
		t.Fatalf("fresh decoding batch must defer: quota %d, want 0", q)
	}
	if q := dp.AdmitQuota(0, 4, 5, 2); q != 0 {
		t.Fatalf("below the starve limit must still defer: quota %d", q)
	}
	if q := dp.AdmitQuota(0, 4, 5, 3); q != 1 {
		t.Fatalf("aged past the starve limit must admit one: quota %d", q)
	}
	for _, sched := range []string{SchedFIFO, SchedChunkedPrefill, SchedSLO} {
		c := schedConfig(sched)
		p := c.policy()
		if q := p.AdmitQuota(1, 7, 3, 0); q != 3 {
			t.Fatalf("%s: quota %d, want headroom 3", sched, q)
		}
	}
	for _, sched := range []string{SchedChunkedPrefill, SchedSLO} {
		if b := schedConfig(sched).policy().PrefillBudget(); b != 256 {
			t.Fatalf("%s default budget %d, want 256", sched, b)
		}
		c := schedConfig(sched)
		c.PrefillBudget = 64
		if b := c.policy().PrefillBudget(); b != 64 {
			t.Fatalf("%s configured budget %d, want 64", sched, b)
		}
	}
	for _, sched := range []string{"", SchedFIFO, SchedDecodePriority} {
		c := schedConfig(sched)
		if b := c.policy().PrefillBudget(); b != 0 {
			t.Fatalf("%s: whole-chunk policy reports budget %d", sched, b)
		}
	}
}
