package serve

import (
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/timing"
)

func baseConfig(s baselines.Scheme) Config {
	return Config{
		Spec:             timing.Mistral7B,
		Scheme:           s,
		Ratio:            0.15,
		Device:           device.NVMeSSD,
		StoreCapacity:    0, // unbounded
		ChunkPool:        200,
		ChunksPerRequest: 6,
		ChunkTokens:      512,
		QueryTokens:      32,
		Skew:             0.8,
	}
}

func TestLowRateTTFTOrdering(t *testing.T) {
	// At a low request rate (no queueing), the TTFT ordering must be
	// reuse < cacheblend < prefix caching < full recompute, the paper's
	// Figure 12/14 ordering.
	rate := 0.05
	get := func(s baselines.Scheme) float64 {
		return Run(baseConfig(s), rate, 600, 200, 1).MeanTTFT
	}
	reuse := get(baselines.FullKVReuse)
	blendT := get(baselines.CacheBlend)
	prefix := get(baselines.PrefixCaching)
	full := get(baselines.FullRecompute)
	if !(reuse <= blendT && blendT < prefix && prefix < full) {
		t.Fatalf("ordering wrong: reuse %.3f, blend %.3f, prefix %.3f, full %.3f",
			reuse, blendT, prefix, full)
	}
	// Headline: 2.2–3.3× faster than full recompute once the store is
	// warm. Allow a wider band since hit rates depend on the workload.
	speedup := full / blendT
	if speedup < 1.8 {
		t.Fatalf("speedup %.2f× too small (full %.3f blend %.3f)", speedup, full, blendT)
	}
}

func TestTTFTGrowsWithRate(t *testing.T) {
	cfg := baseConfig(baselines.FullRecompute)
	low := Run(cfg, 0.05, 400, 100, 2).MeanTTFT
	high := Run(cfg, 0.9, 400, 100, 2).MeanTTFT
	if high <= low {
		t.Fatalf("queueing should raise TTFT: low-rate %.3f vs high-rate %.3f", low, high)
	}
}

func TestBlendSustainsHigherRate(t *testing.T) {
	// The throughput claim: at a rate that saturates full recompute,
	// CacheBlend still serves with bounded TTFT.
	rate := 0.8
	full := Run(baseConfig(baselines.FullRecompute), rate, 500, 150, 3)
	bl := Run(baseConfig(baselines.CacheBlend), rate, 500, 150, 3)
	if bl.MeanTTFT >= full.MeanTTFT/2 {
		t.Fatalf("blend at saturating rate should be far faster: blend %.3f vs full %.3f",
			bl.MeanTTFT, full.MeanTTFT)
	}
	if bl.Throughput < full.Throughput {
		t.Fatalf("blend throughput %.2f below full %.2f", bl.Throughput, full.Throughput)
	}
}

func TestCapacityOrdering(t *testing.T) {
	full := Capacity(baseConfig(baselines.FullRecompute), 4)
	prefix := Capacity(baseConfig(baselines.PrefixCaching), 4)
	bl := Capacity(baseConfig(baselines.CacheBlend), 4)
	if !(full < prefix && prefix < bl) {
		t.Fatalf("capacity ordering wrong: full %.2f prefix %.2f blend %.2f", full, prefix, bl)
	}
	// Paper: 2.8–5× over full recompute, up to 3.3× over prefix caching.
	if bl/full < 2 {
		t.Fatalf("blend capacity gain %.2f× over full too small", bl/full)
	}
}

func TestChunkHitRateBeatsPrefixHitRate(t *testing.T) {
	// Same storage budget: per-chunk reuse hits far more often than
	// position-0 prefix reuse (§7.2 "prefix caching will incur a higher
	// miss rate").
	capBytes := int64(100) * timing.Mistral7B.KVBytes(512)
	pc := baseConfig(baselines.PrefixCaching)
	pc.StoreCapacity = capBytes
	cb := baseConfig(baselines.CacheBlend)
	cb.StoreCapacity = capBytes
	prefix := Run(pc, 0.2, 1500, 500, 5)
	bl := Run(cb, 0.2, 1500, 500, 5)
	if bl.HitRate <= prefix.HitRate {
		t.Fatalf("chunk hit rate %.2f should beat prefix hit rate %.2f", bl.HitRate, prefix.HitRate)
	}
}

func TestRateSweepMonotoneRates(t *testing.T) {
	rates := []float64{0.05, 0.2, 0.4}
	res := RateSweep(baseConfig(baselines.CacheBlend), rates, 300, 100, 6)
	if len(res) != 3 {
		t.Fatalf("want 3 results, got %d", len(res))
	}
	for i, r := range res {
		if r.Rate != rates[i] || r.Requests != 200 {
			t.Fatalf("result %d malformed: %+v", i, r)
		}
	}
	if !strings.Contains(res[0].String(), "mean_ttft") {
		t.Fatal("result string malformed")
	}
}

func TestSlowDeviceHurtsReuseMoreThanBlend(t *testing.T) {
	// On a very slow device, full reuse pays the whole loading cost while
	// CacheBlend... also loads everything. Their gap narrows (§7.3
	// Figure 17: "the delay gap between CacheBlend and Full KV reuse is
	// smaller for slower storage"); check the gap ratio shrinks.
	fast := device.CPURAM
	slow := device.SlowDisk
	gap := func(d device.Device) float64 {
		cfgR := baseConfig(baselines.FullKVReuse)
		cfgR.Device = d
		cfgB := baseConfig(baselines.CacheBlend)
		cfgB.Device = d
		r := Run(cfgR, 0.05, 400, 100, 7).MeanTTFT
		b := Run(cfgB, 0.05, 400, 100, 7).MeanTTFT
		return b / r
	}
	if gap(slow) >= gap(fast) {
		t.Fatalf("blend/reuse TTFT ratio should shrink on slow storage: fast %.2f slow %.2f",
			gap(fast), gap(slow))
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Config{}, 1, 10, 0, 1)
}

func TestNonServingSchemePanics(t *testing.T) {
	cfg := baseConfig(baselines.MapReduce)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(cfg, 1, 10, 0, 1)
}
