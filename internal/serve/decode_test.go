package serve

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/timing"
	"repro/internal/workload"
)

// TestDecodeDisabledResultUnchanged: a prefill-only stream must produce a
// Result whose JSON carries none of the decode fields — the property that
// keeps legacy goldens byte-identical.
func TestDecodeDisabledResultUnchanged(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	res, err := RunWorkload(cfg, workload.Poisson{Rate: 0.5, Chunks: testWorkloadChunks(cfg)}, 200, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(res)
	for _, field := range []string{"MeanTBT", "P95TBT", "MeanE2E", "P95E2E",
		"OutputTokens", "TokenThroughput", "PrefillStepShare", "DecodeStepShare", "MixedStepShare"} {
		if strings.Contains(string(blob), field) {
			t.Fatalf("prefill-only Result leaked decode field %s:\n%s", field, blob)
		}
	}
	if strings.Contains(res.String(), "tbt=") {
		t.Fatalf("prefill-only Result line grew decode columns: %s", res)
	}
}

// TestTTFTAtTransitionAndE2E pins the two-phase timing math on an
// uncontended single request: TTFT is recorded when prefill finishes (the
// first token), not at retirement, and end-to-end latency adds exactly
// DecodeTokens unbatched decode steps.
func TestTTFTAtTransitionAndE2E(t *testing.T) {
	cfg := baseConfig(baselines.FullRecompute)
	const D = 40
	tr := workload.Trace{Label: "one", Reqs: []workload.Request{
		{Arrival: 0, Chunks: []int{0, 1, 2}, DecodeTokens: D},
	}}
	res, err := RunWorkload(cfg, tr, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantTTFT := cfg.Spec.FullPrefillTTFT(3*cfg.ChunkTokens + cfg.QueryTokens)
	if math.Abs(res.MeanTTFT-wantTTFT) > 1e-9 {
		t.Fatalf("TTFT %.6f, want prefill-only %.6f (recorded at retirement?)", res.MeanTTFT, wantTTFT)
	}
	wantE2E := wantTTFT + D*cfg.Spec.DecodeSecPerToken
	if math.Abs(res.MeanE2E-wantE2E) > 1e-9 {
		t.Fatalf("E2E %.6f, want %.6f", res.MeanE2E, wantE2E)
	}
	if math.Abs(res.MeanTBT-cfg.Spec.DecodeSecPerToken) > 1e-12 {
		t.Fatalf("solo TBT %.6f, want the unbatched decode step %.6f", res.MeanTBT, cfg.Spec.DecodeSecPerToken)
	}
	if res.OutputTokens != D+1 {
		t.Fatalf("OutputTokens %d, want %d (first token + %d decode steps)", res.OutputTokens, D+1, D)
	}
	if res.DecodeStepShare == 0 || res.PrefillStepShare == 0 {
		t.Fatalf("step shares missing: %+v", res)
	}
	if s := res.PrefillStepShare + res.DecodeStepShare + res.MixedStepShare; math.Abs(s-1) > 1e-12 {
		t.Fatalf("step shares sum to %v", s)
	}
}

// TestDecodeSlowsCompletionNotTTFT: giving every request a generation
// budget must raise end-to-end latency and keep emitting tokens, while
// at a near-idle arrival rate TTFT stays in the same regime — decode
// occupancy adds some queueing (a request can land behind a neighbour's
// generation), but nowhere near the full generation time per request.
func TestDecodeSlowsCompletionNotTTFT(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	ch := testWorkloadChunks(cfg)
	const rate, n, warmup = 0.05, 200, 50
	plain, err := RunWorkload(cfg, workload.Poisson{Rate: rate, Chunks: ch}, n, warmup, 9)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := RunWorkload(cfg, workload.Poisson{Rate: rate, Chunks: ch,
		Decode: workload.Decode{Mean: 20, Deterministic: true}}, n, warmup, 9)
	if err != nil {
		t.Fatal(err)
	}
	genTime := 20 * cfg.Spec.DecodeSecPerToken
	if dec.MeanTTFT > plain.MeanTTFT+genTime/2 {
		t.Fatalf("idle-rate TTFT absorbed the generation time: %.4f vs %.4f (+%.4f gen)",
			dec.MeanTTFT, plain.MeanTTFT, genTime)
	}
	if dec.MeanE2E < dec.MeanTTFT+15*cfg.Spec.DecodeSecPerToken {
		t.Fatalf("E2E %.4f barely above TTFT %.4f for 20-token generations", dec.MeanE2E, dec.MeanTTFT)
	}
	if dec.TokenThroughput <= dec.Throughput {
		t.Fatalf("token throughput %.2f should exceed request throughput %.2f", dec.TokenThroughput, dec.Throughput)
	}
}

// TestDecodeKVPressureDrivesDemotions is the generation-aware KV pressure
// acceptance check: at tight HBM capacity, enabling decode must strictly
// increase top-tier demotions versus the identical run without decode —
// growing generation KV competes with cached chunks for the fast tier.
func TestDecodeKVPressureDrivesDemotions(t *testing.T) {
	kv := timing.Mistral7B.KVBytes(512)
	cfg := tieredConfig(6*kv, 30*kv, 0)
	cfg.Replicas = 2
	cfg.MaxBatch = 4
	ch := testWorkloadChunks(cfg)
	const rate, n, warmup, seed = 1.0, 400, 100, 21

	run := func(mean float64) Result {
		w := workload.Poisson{Rate: rate, Chunks: ch}
		if mean > 0 {
			w.Decode = workload.Decode{Mean: mean, Deterministic: true}
		}
		res, err := RunWorkload(cfg, w, n, warmup, seed)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(0)
	dec := run(64)
	if dec.Tiers[0].Demotions <= plain.Tiers[0].Demotions {
		t.Fatalf("decode KV growth did not raise HBM demotions: %d (decode) vs %d (prefill-only)",
			dec.Tiers[0].Demotions, plain.Tiers[0].Demotions)
	}
}

// TestMixedBatchesInflateTBT: under load with batching, decode tokens get
// paced by neighbours' prefill chunk steps, so the observed TBT must sit
// clearly above the unbatched decode step time — and mixed steps must
// actually occur.
func TestMixedBatchesInflateTBT(t *testing.T) {
	cfg := baseConfig(baselines.FullRecompute)
	cfg.MaxBatch = 8
	ch := testWorkloadChunks(cfg)
	res, err := RunWorkload(cfg, workload.Poisson{Rate: 3, Chunks: ch,
		Decode: workload.Decode{Mean: 12, Deterministic: true}}, 300, 75, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.MixedStepShare == 0 {
		t.Fatalf("overloaded prefill+decode run executed no mixed steps: %+v", res)
	}
	if res.MeanTBT < 1.5*cfg.Spec.DecodeSecPerToken {
		t.Fatalf("contended TBT %.4f not inflated above the unbatched step %.4f",
			res.MeanTBT, cfg.Spec.DecodeSecPerToken)
	}
}

// TestDecodePerTenantTelemetry: a decode-enabled tenant mix reports
// per-tenant TBT/E2E/token counts consistent with the aggregate, and the
// tenant with the longer generations accumulates more output tokens per
// request.
func TestDecodePerTenantTelemetry(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	m := workload.TenantMix(3, 1.0, workload.Chunks{Pool: 150, PerRequest: 6, Skew: 0.9}, 0,
		workload.Decode{Mean: 24})
	res, err := RunWorkload(cfg, m, 600, 150, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 3 {
		t.Fatalf("want 3 tenants, got %+v", res.Tenants)
	}
	var tokens int64
	for _, tu := range res.Tenants {
		if tu.OutputTokens <= 0 || tu.MeanTBT <= 0 || tu.MeanE2E < tu.MeanTTFT {
			t.Fatalf("tenant %d decode telemetry implausible: %+v", tu.Tenant, tu)
		}
		tokens += tu.OutputTokens
	}
	if tokens != res.OutputTokens {
		t.Fatalf("tenant tokens sum to %d, aggregate %d", tokens, res.OutputTokens)
	}
	perReq := func(tu TenantUsage) float64 { return float64(tu.OutputTokens) / float64(tu.Requests) }
	if perReq(res.Tenants[2]) <= perReq(res.Tenants[0]) {
		t.Fatalf("fanned-out decode means not visible per tenant: %+v", res.Tenants)
	}
}

// TestDecodeTraceReplayReproducesResult extends the record/replay
// acceptance to decode-carrying traces: the JSONL round trip must
// reproduce the generating run's Result — decode telemetry included —
// field for field.
func TestDecodeTraceReplayReproducesResult(t *testing.T) {
	cfg := baseConfig(baselines.CacheBlend)
	cfg.Replicas = 2
	cfg.MaxBatch = 4
	w := workload.Bursty{Rate: 1.5, Burst: 6, Chunks: testWorkloadChunks(cfg),
		Decode: workload.Decode{Mean: 16}}
	const n, warmup, seed = 300, 75, 33
	orig, err := RunWorkload(cfg, w, n, warmup, seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := workload.Record(&buf, w.Generate(n, seed)); err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := RunWorkload(cfg, workload.Trace{Label: "t", Reqs: reqs}, n, warmup, 999)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(orig)
	b, _ := json.Marshal(replay)
	if string(a) != string(b) {
		t.Fatalf("decode trace replay drifted:\n%s\n%s", a, b)
	}
	if orig.OutputTokens == 0 {
		t.Fatal("decode trace produced no output tokens")
	}
}
