package dataset

import (
	"fmt"

	"repro/internal/qamodel"
	"repro/internal/tensor"
)

// ExtendedConfig controls the shared-corpus variant of a dataset: the
// paper's "Musique extended" / "2WikiMQA extended" workloads (§7.1), where
// many queries retrieve from ONE chunk pool, so the same chunk's KV cache
// is reused across requests — the regime the KV store and the serving
// simulation live in.
type ExtendedConfig struct {
	// Name labels the workload.
	Name string
	// Queries is the number of query cases to generate.
	Queries int
	// Chunks is the shared pool size.
	Chunks int
	// FactsPerChunk sets chunk length.
	FactsPerChunk int
	// SplitFraction is the probability a query's hop-2 fact is split
	// across two chunks.
	SplitFraction float64
	// Seed makes generation deterministic.
	Seed int64
}

// MusiqueExtended mirrors the paper's extended RAG workload at the scale
// this substrate supports.
func MusiqueExtended() ExtendedConfig {
	return ExtendedConfig{Name: "musique-extended", Queries: 60, Chunks: 16,
		FactsPerChunk: 6, SplitFraction: 0.7, Seed: 7001}
}

// TwoWikiExtended is the second extended workload.
func TwoWikiExtended() ExtendedConfig {
	return ExtendedConfig{Name: "2wikimqa-extended", Queries: 60, Chunks: 18,
		FactsPerChunk: 5, SplitFraction: 0.55, Seed: 7002}
}

// GenerateExtended builds a shared-corpus dataset: every case references
// the same chunk pool (identical backing slices), so an evaluator that
// memoises chunk KV caches by content hash reuses them across queries
// exactly like the paper's KV store.
//
// The world is planned up front: answer paths (hop-1 fact, hop-2 fact or
// split pair, query) are placed into the shared pool without record
// conflicts, then distractor facts fill the remaining space.
func GenerateExtended(v *qamodel.Vocab, cfg ExtendedConfig) *Dataset {
	if cfg.Queries <= 0 || cfg.Chunks < 4 || cfg.FactsPerChunk < 2 {
		panic(fmt.Sprintf("dataset %q: degenerate extended config %+v", cfg.Name, cfg))
	}
	g := tensor.NewRNG(cfg.Seed)

	// Entity partition for the whole corpus.
	perm := g.Perm(len(v.Entities))
	var persons, objects []int
	for i, p := range perm {
		if i%2 == 0 {
			persons = append(persons, v.Entities[p])
		} else {
			objects = append(objects, v.Entities[p])
		}
	}

	// Plan answer paths. Each path consumes a unique qent (so the hop-1
	// record is unambiguous) and a unique (bridge, relB) pair.
	type path struct {
		qent, bridge, ans, relA, relB int
		split                         bool
		role                          int
	}
	type key struct{ subj, rel int }
	used := map[key]bool{}
	usedQent := map[int]bool{}
	var paths []path
	maxPaths := len(persons) / 2
	if maxPaths > qamodel.L {
		maxPaths = qamodel.L // each split path needs its own role code
	}
	for i := 0; i < maxPaths; i++ {
		qent := persons[i]
		bridge := persons[len(persons)-1-i]
		if qent == bridge || usedQent[qent] {
			continue
		}
		relA := v.RelA[g.Intn(len(v.RelA))]
		relB := v.RelB[g.Intn(len(v.RelB))]
		if used[key{qent, relA}] || used[key{bridge, relB}] {
			continue
		}
		used[key{qent, relA}] = true
		used[key{bridge, relB}] = true
		usedQent[qent] = true
		paths = append(paths, path{
			qent: qent, bridge: bridge, ans: objects[i%len(objects)],
			relA: relA, relB: relB,
			split: g.Float64() < cfg.SplitFraction, role: i,
		})
	}

	// Place path facts into the pool.
	slots := make([][][]int, cfg.Chunks) // per chunk: list of fact token seqs
	place := func(f []int) int {
		c := g.Intn(cfg.Chunks)
		slots[c] = append(slots[c], f)
		return c
	}
	type placement struct{ hop1, anchor, value int }
	places := make([]placement, len(paths))
	for i, p := range paths {
		pl := placement{hop1: place(v.Fact(p.bridge, p.relA, p.qent))}
		if p.split {
			pl.anchor = place(v.Anchor(p.role, p.relB, p.bridge))
			pl.value = place(v.ValueHalf(p.ans, p.role))
		} else {
			pl.anchor = place(v.Fact(p.ans, p.relB, p.bridge))
			pl.value = pl.anchor
		}
		places[i] = pl
	}

	// Distractor facts fill the rest of the pool.
	rels := append(append([]int{}, v.RelA...), v.RelB...)
	want := cfg.Chunks * cfg.FactsPerChunk
	have := 0
	for _, s := range slots {
		have += len(s)
	}
	for tries := 0; have < want && tries < want*10; tries++ {
		subj := persons[g.Intn(len(persons))]
		rel := rels[g.Intn(len(rels))]
		if used[key{subj, rel}] || usedQent[subj] {
			continue
		}
		var val int
		if rel == v.RelA[0] || rel == v.RelA[1] {
			val = persons[g.Intn(len(persons))]
		} else {
			val = objects[g.Intn(len(objects))]
		}
		if val == subj {
			continue
		}
		used[key{subj, rel}] = true
		place(v.Fact(val, rel, subj))
		have++
	}

	// Render chunks: a topic header then the facts.
	topics := g.Perm(len(v.Topics))
	chunks := make([][]int, cfg.Chunks)
	texts := make([]string, cfg.Chunks)
	for ci := range chunks {
		t := v.Topics[topics[ci%len(topics)]]
		chunks[ci] = append(chunks[ci], t, v.Period)
		for _, f := range slots[ci] {
			chunks[ci] = append(chunks[ci], f...)
		}
		texts[ci] = v.Text(chunks[ci])
	}

	// Queries cycle through the paths (chunk reuse across queries is the
	// whole point of the extended workload).
	ds := &Dataset{Name: cfg.Name, Metric: "f1"}
	for qi := 0; qi < cfg.Queries; qi++ {
		p := paths[qi%len(paths)]
		pl := places[qi%len(paths)]
		rel := map[int]bool{pl.hop1: true, pl.anchor: true, pl.value: true}
		var relList []int
		for ci := range chunks {
			if rel[ci] {
				relList = append(relList, ci)
			}
		}
		// The query text carries the relevant chunks' topic words so
		// retrieval has a signal, plus the question tokens.
		var q []int
		for _, ci := range relList {
			q = append(q, chunks[ci][0])
		}
		q = append(q, v.Period)
		q = append(q, v.QueryTokens(p.relA, p.qent, p.relB)...)
		ds.Cases = append(ds.Cases, Case{
			Chunks:     chunks,
			ChunkTexts: texts,
			Query:      q,
			QueryText:  v.Text(q),
			Answer:     v.Name(p.ans),
			Relevant:   relList,
		})
	}
	return ds
}
