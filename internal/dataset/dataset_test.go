package dataset

import (
	"testing"

	"repro/internal/qamodel"
	"repro/internal/retrieval"
)

func gen(t *testing.T, cfg Config) *Dataset {
	t.Helper()
	_, v := qamodel.Build()
	return Generate(v, cfg)
}

func TestPresetsGenerate(t *testing.T) {
	for _, cfg := range Configs() {
		cfg.Cases = 5
		ds := gen(t, cfg)
		if len(ds.Cases) != 5 {
			t.Fatalf("%s: %d cases", cfg.Name, len(ds.Cases))
		}
		if ds.Metric != "f1" && ds.Metric != "rouge-l" {
			t.Fatalf("%s: bad metric %q", cfg.Name, ds.Metric)
		}
		for i, c := range ds.Cases {
			if len(c.Chunks) != cfg.ChunksPerCase {
				t.Fatalf("%s case %d: %d chunks want %d", cfg.Name, i, len(c.Chunks), cfg.ChunksPerCase)
			}
			if len(c.Relevant) < 1 || len(c.Relevant) > 3 {
				t.Fatalf("%s case %d: %d relevant chunks", cfg.Name, i, len(c.Relevant))
			}
			if c.Answer == "" || len(c.Query) < 8 {
				t.Fatalf("%s case %d: empty answer or short query", cfg.Name, i)
			}
			if len(c.ChunkTexts) != len(c.Chunks) {
				t.Fatal("chunk texts misaligned")
			}
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	cfg := MusiqueConfig()
	cfg.Cases = 3
	a := gen(t, cfg)
	b := gen(t, cfg)
	for i := range a.Cases {
		if a.Cases[i].QueryText != b.Cases[i].QueryText || a.Cases[i].Answer != b.Cases[i].Answer {
			t.Fatal("generation must be deterministic")
		}
	}
	cfg.Seed++
	c := gen(t, cfg)
	same := 0
	for i := range a.Cases {
		if a.Cases[i].QueryText == c.Cases[i].QueryText {
			same++
		}
	}
	if same == len(a.Cases) {
		t.Fatal("different seeds should differ")
	}
}

func TestRetrievalFindsRelevantChunks(t *testing.T) {
	cfg := MusiqueConfig()
	cfg.Cases = 20
	ds := gen(t, cfg)
	foundAll, total := 0, 0
	for _, c := range ds.Cases {
		r := retrieval.NewRetriever(128, c.ChunkTexts)
		top := r.TopK(c.QueryText, 6)
		got := map[int]bool{}
		for _, id := range top {
			got[id] = true
		}
		ok := true
		for _, rc := range c.Relevant {
			if !got[rc] {
				ok = false
			}
		}
		if ok {
			foundAll++
		}
		total++
	}
	// Retrieval should usually succeed at k=6 but not always (that
	// imperfection is what makes Figure 2's curve rise with k).
	if foundAll < total*6/10 {
		t.Fatalf("retrieval recall too low: %d/%d", foundAll, total)
	}
	if foundAll == total {
		t.Log("note: perfect recall at k=6 on this sample (acceptable)")
	}
}

func TestDegenerateConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	gen(t, Config{Name: "bad", Cases: 0})
}

func TestAnswerableByConstruction(t *testing.T) {
	// With ALL chunks given (no retrieval), full prefill must answer
	// almost every case — generation bugs would show up here.
	m, v := qamodel.Build()
	cfg := MusiqueConfig()
	cfg.Cases = 10
	cfg.ChunksPerCase = 6
	cfg.FactsPerChunk = 4
	ds := Generate(v, cfg)
	correct := 0
	for _, c := range ds.Cases {
		var toks []int
		for _, ch := range c.Chunks {
			toks = append(toks, ch...)
		}
		toks = append(toks, c.Query...)
		res := m.Prefill(toks, 0, false)
		got := qamodel.Answer(m, res.Cache, res.Hidden.Row(len(toks)-1))
		if v.Name(got) == c.Answer {
			correct++
		}
	}
	if correct < 9 {
		t.Fatalf("only %d/10 cases answerable with full context", correct)
	}
}

func TestExtendedSharedPool(t *testing.T) {
	_, v := qamodel.Build()
	ds := GenerateExtended(v, MusiqueExtended())
	if len(ds.Cases) != 60 {
		t.Fatalf("want 60 cases, got %d", len(ds.Cases))
	}
	// All cases reference the same chunk pool (shared backing arrays).
	for i := 1; i < len(ds.Cases); i++ {
		if &ds.Cases[i].Chunks[0][0] != &ds.Cases[0].Chunks[0][0] {
			t.Fatal("extended cases must share one chunk pool")
		}
	}
	// Relevant chunks exist and queries parse.
	for i, c := range ds.Cases {
		if len(c.Relevant) < 1 || len(c.Relevant) > 3 {
			t.Fatalf("case %d: %d relevant chunks", i, len(c.Relevant))
		}
		if _, _, _, ok := v.ParseQuery(c.Query); !ok {
			t.Fatalf("case %d: query does not parse", i)
		}
	}
}

func TestExtendedAnswerable(t *testing.T) {
	// With all pool chunks as context, full prefill must answer most
	// queries (the shared world is consistent by construction).
	m, v := qamodel.Build()
	cfg := MusiqueExtended()
	cfg.Queries = 10
	cfg.Chunks = 8
	cfg.FactsPerChunk = 4
	ds := GenerateExtended(v, cfg)
	correct := 0
	for _, c := range ds.Cases {
		var toks []int
		for _, ch := range c.Chunks {
			toks = append(toks, ch...)
		}
		toks = append(toks, c.Query...)
		res := m.Prefill(toks, 0, false)
		if v.Name(qamodel.Answer(m, res.Cache, res.Hidden.Row(len(toks)-1))) == c.Answer {
			correct++
		}
	}
	if correct < 8 {
		t.Fatalf("only %d/10 extended cases answerable with the full pool", correct)
	}
}

func TestExtendedChunkReuseAcrossQueries(t *testing.T) {
	// The evaluator's chunk-KV memoisation must hit across queries: after
	// answering all cases, far fewer distinct chunk prefills than
	// (cases × retrieved chunks) should have happened. We detect this
	// structurally: distinct chunk contents in the pool bound the cache.
	_, v := qamodel.Build()
	cfg := MusiqueExtended()
	cfg.Queries = 20
	ds := GenerateExtended(v, cfg)
	distinct := map[string]bool{}
	for _, c := range ds.Cases {
		for _, ch := range c.Chunks {
			distinct[v.Text(ch)] = true
		}
	}
	if len(distinct) != cfg.Chunks {
		t.Fatalf("pool should have %d distinct chunks, got %d", cfg.Chunks, len(distinct))
	}
}
