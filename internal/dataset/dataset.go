// Package dataset generates the four synthetic evaluation datasets that
// stand in for the paper's Musique, 2WikiMQA, SAMSum and MultiNews
// workloads. Each case is a self-contained RAG instance: a pool of text
// chunks (facts over the constructed QA world of package qamodel, plus
// topic and filler tokens), a two-hop query, the ground-truth answer and
// the indices of the chunks actually needed.
//
// The structural knobs mirror what makes the real datasets hard:
//
//   - answers require joining facts spread across multiple chunks
//     (SplitFraction of the cases split the answer-bearing fact across two
//     chunks via the role indirection, which is exactly the cross-chunk
//     attention full KV reuse loses);
//   - retrieval is imperfect: topic words give the vector index a signal,
//     TopicNoise lets distractor chunks share query topics, so small k
//     misses relevant chunks and quality rises with k (paper Figure 2);
//   - distractor facts and dangling split halves populate every chunk.
package dataset

import (
	"fmt"

	"repro/internal/qamodel"
	"repro/internal/tensor"
)

// Case is one RAG evaluation instance.
type Case struct {
	// Chunks is the per-case chunk pool (token sequences).
	Chunks [][]int
	// ChunkTexts renders each chunk for the retriever.
	ChunkTexts []string
	// Query is the model-input suffix (topics + question tokens).
	Query []int
	// QueryText renders the query for the retriever.
	QueryText string
	// Answer is the single ground-truth answer word.
	Answer string
	// Relevant lists the chunk indices needed to answer.
	Relevant []int
}

// Dataset is a named collection of cases with its quality metric.
type Dataset struct {
	Name   string
	Metric string // "f1" or "rouge-l"
	Cases  []Case
}

// Config controls generation.
type Config struct {
	// Name labels the dataset.
	Name string
	// Metric is "f1" or "rouge-l".
	Metric string
	// Cases is the number of cases to generate.
	Cases int
	// ChunksPerCase is the chunk-pool size per case.
	ChunksPerCase int
	// FactsPerChunk sets chunk length (each fact is 4 tokens plus
	// occasional filler).
	FactsPerChunk int
	// SplitFraction is the probability the answer-bearing hop-2 fact is
	// split across two chunks.
	SplitFraction float64
	// TopicNoise is the probability a distractor chunk carries one of the
	// query's topic words.
	TopicNoise float64
	// Seed makes generation deterministic.
	Seed int64
}

// Presets for the four paper datasets. Cases counts follow the paper
// (§7.1) and can be overridden by the caller before Generate.
func MusiqueConfig() Config {
	return Config{Name: "musique", Metric: "f1", Cases: 150, ChunksPerCase: 12,
		FactsPerChunk: 8, SplitFraction: 0.75, TopicNoise: 0.3, Seed: 101}
}

func TwoWikiConfig() Config {
	return Config{Name: "2wikimqa", Metric: "f1", Cases: 200, ChunksPerCase: 14,
		FactsPerChunk: 7, SplitFraction: 0.6, TopicNoise: 0.25, Seed: 202}
}

func SamsumConfig() Config {
	return Config{Name: "samsum", Metric: "rouge-l", Cases: 200, ChunksPerCase: 8,
		FactsPerChunk: 5, SplitFraction: 0.5, TopicNoise: 0.2, Seed: 303}
}

func MultiNewsConfig() Config {
	return Config{Name: "multinews", Metric: "rouge-l", Cases: 60, ChunksPerCase: 10,
		FactsPerChunk: 10, SplitFraction: 0.65, TopicNoise: 0.35, Seed: 404}
}

// Configs lists the four presets in paper order.
func Configs() []Config {
	return []Config{TwoWikiConfig(), MusiqueConfig(), SamsumConfig(), MultiNewsConfig()}
}

// Generate builds a dataset against the constructed QA vocabulary.
func Generate(v *qamodel.Vocab, cfg Config) *Dataset {
	if cfg.Cases <= 0 || cfg.ChunksPerCase < 3 || cfg.FactsPerChunk < 2 {
		panic(fmt.Sprintf("dataset %q: degenerate config %+v", cfg.Name, cfg))
	}
	ds := &Dataset{Name: cfg.Name, Metric: cfg.Metric}
	for i := 0; i < cfg.Cases; i++ {
		g := tensor.NewRNG(cfg.Seed*1_000_003 + int64(i))
		ds.Cases = append(ds.Cases, generateCase(v, cfg, g))
	}
	return ds
}

// factSlot is a queued fact for some chunk.
type factSlot struct {
	chunk  int
	tokens []int
}

func generateCase(v *qamodel.Vocab, cfg Config, g *tensor.RNG) Case {
	// Split the entity inventory into persons and objects for this case.
	perm := g.Perm(len(v.Entities))
	persons := make([]int, 0, 10)
	objects := make([]int, 0, 10)
	for i, p := range perm {
		if i%2 == 0 && len(persons) < 10 {
			persons = append(persons, v.Entities[p])
		} else if len(objects) < 10 {
			objects = append(objects, v.Entities[p])
		}
	}
	qent, bridge := persons[0], persons[1]
	ans := objects[0]
	relA := v.RelA[g.Intn(len(v.RelA))]
	relB := v.RelB[g.Intn(len(v.RelB))]

	nChunks := cfg.ChunksPerCase
	// Pick distinct chunks for the relevant facts.
	cp := g.Perm(nChunks)
	hop1Chunk := cp[0]
	anchorChunk := cp[1]
	valueChunk := cp[2]

	split := g.Float64() < cfg.SplitFraction
	var slots []factSlot
	relevant := map[int]bool{hop1Chunk: true}
	slots = append(slots, factSlot{hop1Chunk, v.Fact(bridge, relA, qent)})
	// Role codes must be unique within a case or joins become ambiguous;
	// draw them from a permutation.
	rolePerm := g.Perm(qamodel.L)
	nextRole := 0
	if split {
		role := rolePerm[nextRole]
		nextRole++
		slots = append(slots,
			factSlot{anchorChunk, v.Anchor(role, relB, bridge)},
			factSlot{valueChunk, v.ValueHalf(ans, role)})
		relevant[anchorChunk] = true
		relevant[valueChunk] = true
	} else {
		// A share of whole-fact cases co-locates both hops in one chunk:
		// real corpora have single-document answers, and per-chunk schemes
		// (MapRerank) can only ever answer those.
		if g.Float64() < 0.35 {
			anchorChunk = hop1Chunk
		}
		slots = append(slots, factSlot{anchorChunk, v.Fact(ans, relB, bridge)})
		relevant[anchorChunk] = true
	}

	// Track used (subject, relation) pairs so records never conflict, and
	// never give qent or bridge additional records.
	type key struct{ subj, rel int }
	used := map[key]bool{
		{qent, relA}:   true,
		{bridge, relB}: true,
	}
	forbiddenSubjects := map[int]bool{qent: true}

	// Distractor whole facts.
	nDistract := nChunks*cfg.FactsPerChunk - len(slots) - 4
	rels := append(append([]int{}, v.RelA...), v.RelB...)
	for i := 0; i < nDistract; i++ {
		rel := rels[g.Intn(len(rels))]
		isHop1 := rel == v.RelA[0] || rel == v.RelA[1]
		var subj, val int
		if isHop1 {
			subj = persons[2+g.Intn(len(persons)-2)]
			val = persons[g.Intn(len(persons))]
		} else {
			subj = persons[2+g.Intn(len(persons)-2)]
			val = objects[1+g.Intn(len(objects)-1)]
		}
		k := key{subj, rel}
		if used[k] || forbiddenSubjects[subj] || subj == val {
			continue
		}
		used[k] = true
		slots = append(slots, factSlot{g.Intn(nChunks), v.Fact(val, rel, subj)})
	}
	// Distractor split facts on the remaining roles (some cross-chunk,
	// some intra-chunk, some dangling halves).
	for n := 0; n < 3 && nextRole < qamodel.L; n++ {
		role := rolePerm[nextRole]
		nextRole++
		subj := persons[2+g.Intn(len(persons)-2)]
		val := objects[1+g.Intn(len(objects)-1)]
		rel := v.RelB[g.Intn(len(v.RelB))]
		k := key{subj, rel}
		if used[k] || forbiddenSubjects[subj] {
			continue
		}
		used[k] = true
		ca := g.Intn(nChunks)
		cb := g.Intn(nChunks)
		switch g.Intn(3) {
		case 0: // full split pair
			slots = append(slots,
				factSlot{ca, v.Anchor(role, rel, subj)},
				factSlot{cb, v.ValueHalf(val, role)})
		case 1: // dangling anchor
			slots = append(slots, factSlot{ca, v.Anchor(role, rel, subj)})
		default: // dangling value half
			slots = append(slots, factSlot{cb, v.ValueHalf(val, role)})
		}
	}

	// Assemble chunks: a topic headline, then the chunk's facts with
	// occasional filler words (varying fact spacing also breaks any
	// periodic alignment in the attention kernels).
	topics := g.Perm(len(v.Topics))
	queryTopics := []int{v.Topics[topics[0]], v.Topics[topics[1]]}
	chunks := make([][]int, nChunks)
	for ci := 0; ci < nChunks; ci++ {
		var stamp []int
		if relevant[ci] {
			stamp = []int{queryTopics[0], queryTopics[1]}
		} else {
			t := v.Topics[topics[2+ci%(len(topics)-2)]]
			stamp = []int{t, t}
			if g.Float64() < cfg.TopicNoise {
				stamp[1] = queryTopics[g.Intn(2)]
			}
		}
		chunks[ci] = append(chunks[ci], stamp...)
		chunks[ci] = append(chunks[ci], v.Period)
	}
	for _, s := range slots {
		c := s.chunk
		chunks[c] = append(chunks[c], s.tokens...)
		if g.Float64() < 0.3 {
			chunks[c] = append(chunks[c], v.Fillers[g.Intn(len(v.Fillers))])
		}
	}

	query := append([]int{queryTopics[0], queryTopics[1], v.Period}, v.QueryTokens(relA, qent, relB)...)

	var rel []int
	for ci := range chunks {
		if relevant[ci] {
			rel = append(rel, ci)
		}
	}
	texts := make([]string, nChunks)
	for ci, c := range chunks {
		texts[ci] = v.Text(c)
	}
	return Case{
		Chunks:     chunks,
		ChunkTexts: texts,
		Query:      query,
		QueryText:  v.Text(query),
		Answer:     v.Name(ans),
		Relevant:   rel,
	}
}
