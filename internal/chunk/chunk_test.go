package chunk

import (
	"testing"
	"testing/quick"
)

func TestHashDeterministicAndDistinct(t *testing.T) {
	a := Hash("m1", []int{1, 2, 3})
	b := Hash("m1", []int{1, 2, 3})
	if a != b {
		t.Fatal("same input must hash identically")
	}
	if Hash("m1", []int{1, 2, 4}) == a {
		t.Fatal("different tokens must hash differently")
	}
	if Hash("m2", []int{1, 2, 3}) == a {
		t.Fatal("different models must hash differently")
	}
	if a.String() == "" || len(a.String()) != 16 {
		t.Fatalf("String() should be 8 hex bytes, got %q", a.String())
	}
}

func TestHashNoLengthConfusion(t *testing.T) {
	// [1,2]+[3] vs [1]+[2,3] style boundary confusion must not collide.
	if Hash("m", []int{12}) == Hash("m", []int{1, 2}) {
		t.Fatal("token boundary confusion")
	}
}

func TestSplitTokens(t *testing.T) {
	toks := []int{0, 1, 2, 3, 4, 5, 6}
	got := SplitTokens(toks, 3)
	if len(got) != 3 || len(got[0]) != 3 || len(got[2]) != 1 {
		t.Fatalf("split shapes wrong: %v", got)
	}
	if got[2][0] != 6 {
		t.Fatal("last chunk content wrong")
	}
}

func TestSplitTokensRoundTrip(t *testing.T) {
	f := func(raw []uint8, size8 uint8) bool {
		size := int(size8%32) + 1
		toks := make([]int, len(raw))
		for i, b := range raw {
			toks[i] = int(b)
		}
		var joined []int
		for _, c := range SplitTokens(toks, size) {
			if len(c) == 0 || len(c) > size {
				return false
			}
			joined = append(joined, c...)
		}
		if len(joined) != len(toks) {
			return false
		}
		for i := range toks {
			if toks[i] != joined[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitTokensPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SplitTokens([]int{1}, 0)
}

func TestSplitAtBoundaries(t *testing.T) {
	// Sentence of 5 tokens ending in boundary 99, repeated.
	var toks []int
	for i := 0; i < 6; i++ {
		toks = append(toks, 1, 2, 3, 4, 99)
	}
	chunks := SplitAtBoundaries(toks, 12, 99)
	// Every chunk except possibly the last must end on the boundary.
	for i, c := range chunks[:len(chunks)-1] {
		if c[len(c)-1] != 99 {
			t.Fatalf("chunk %d does not end at a boundary: %v", i, c)
		}
		if len(c) > 12 {
			t.Fatalf("chunk %d exceeds size: %d", i, len(c))
		}
	}
	// Round trip.
	var joined []int
	for _, c := range chunks {
		joined = append(joined, c...)
	}
	if len(joined) != len(toks) {
		t.Fatal("boundary split lost tokens")
	}
}

func TestSplitAtBoundariesNoBoundary(t *testing.T) {
	toks := make([]int, 20)
	chunks := SplitAtBoundaries(toks, 8, 99)
	if len(chunks) != 3 || len(chunks[0]) != 8 || len(chunks[2]) != 4 {
		t.Fatalf("fallback to fixed split wrong: %d chunks", len(chunks))
	}
}
