// Package chunk provides text chunking and content-addressed chunk
// identity. A chunk's ID is the SHA-256 of its token ids (plus the model
// name, since a KV cache is only valid for the model that produced it) —
// the same hashing idea vLLM uses for paged-KV block lookup and the paper
// adopts for its KV cache store (§5.1).
package chunk

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// ID is a content hash identifying a (model, token sequence) pair.
type ID [32]byte

// String returns the hex form (for logs and map keys in tools).
func (id ID) String() string { return hex.EncodeToString(id[:8]) }

// Hash computes the ID of a token sequence for a given model.
func Hash(model string, tokens []int) ID {
	h := sha256.New()
	h.Write([]byte(model))
	h.Write([]byte{0})
	var buf [8]byte
	for _, t := range tokens {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(t)))
		h.Write(buf[:])
	}
	var id ID
	copy(id[:], h.Sum(nil))
	return id
}

// SplitTokens slices tokens into consecutive chunks of at most size
// tokens. The last chunk may be shorter; size must be positive.
func SplitTokens(tokens []int, size int) [][]int {
	if size <= 0 {
		panic("chunk: non-positive chunk size")
	}
	var out [][]int
	for start := 0; start < len(tokens); start += size {
		end := start + size
		if end > len(tokens) {
			end = len(tokens)
		}
		out = append(out, tokens[start:end])
	}
	return out
}

// SplitAtBoundaries slices tokens into chunks of at most size tokens,
// preferring to cut right after a boundary token (e.g. a sentence period)
// when one occurs in the second half of the window — the behaviour of
// sentence-aware chunkers like LangChain's, which the paper uses.
func SplitAtBoundaries(tokens []int, size int, boundary int) [][]int {
	if size <= 0 {
		panic("chunk: non-positive chunk size")
	}
	var out [][]int
	start := 0
	for start < len(tokens) {
		end := start + size
		if end >= len(tokens) {
			out = append(out, tokens[start:])
			break
		}
		cut := end
		for j := end - 1; j > start+size/2; j-- {
			if tokens[j] == boundary {
				cut = j + 1
				break
			}
		}
		out = append(out, tokens[start:cut])
		start = cut
	}
	return out
}
