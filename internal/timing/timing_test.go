package timing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
)

func TestCalibrationAnchors(t *testing.T) {
	// The paper's §2 anchors: ~3 s for a 34B-class model and ~6 s for a
	// 70B at a 4 K-token prefill; a 7B-class model well under 1 s.
	if p := Yi34B.Prefill(4096); p < 2.5 || p > 3.5 {
		t.Fatalf("Yi-34B 4K prefill = %.2fs, want ≈3s", p)
	}
	if p := Llama70B.Prefill(4096); p < 5.0 || p > 7.0 {
		t.Fatalf("Llama-70B 4K prefill = %.2fs, want ≈6s", p)
	}
	if p := Mistral7B.Prefill(4096); p < 0.5 || p > 1.2 {
		t.Fatalf("Mistral-7B 4K prefill = %.2fs, want ≈0.8s", p)
	}
}

func TestPaperWalkthroughNumbers(t *testing.T) {
	// §5: "Take the Llama-7B model and a 4K-long context, recomputing 15%
	// of the tokens only takes 3 ms per layer, while loading one layer's
	// KV cache takes 16 ms from an [1 GB/s] SSD."
	comp := Mistral7B.RecomputeLayer(0.15, 4096) * 1000
	if comp < 2 || comp > 5 {
		t.Fatalf("7B per-layer 15%% recompute = %.1fms, want ≈3ms", comp)
	}
	load := Mistral7B.LoadLayer(4096, device.SlowSSD) * 1000
	if load < 14 || load > 19 {
		t.Fatalf("7B per-layer load from 1GB/s SSD = %.1fms, want ≈16ms", load)
	}
	// "with Llama-70B, recomputing 15% of tokens takes 7 ms [per layer],
	// but it only takes 4 ms to load one layer's KV from an NVMe SSD" —
	// loading no longer hides recompute.
	comp70 := Llama70B.RecomputeLayer(0.15, 4096) * 1000
	load70 := Llama70B.LoadLayer(4096, device.NVMeSSD) * 1000
	if comp70 <= load70 {
		t.Fatalf("70B recompute/layer (%.1fms) should exceed NVMe load/layer (%.1fms)", comp70, load70)
	}
}

func TestPrefillSuperlinear(t *testing.T) {
	// Doubling context length must more than double prefill time.
	for _, s := range Specs() {
		if s.Prefill(8192) <= 2*s.Prefill(4096) {
			t.Fatalf("%s prefill not superlinear", s.Name)
		}
	}
}

func TestRecomputeProportional(t *testing.T) {
	f := func(rRaw uint8) bool {
		r := float64(rRaw%101) / 100
		got := Yi34B.Recompute(r, 3072)
		return math.Abs(got-r*Yi34B.Prefill(3072)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKVSizes(t *testing.T) {
	// Mistral-7B fp16 GQA: 4 KiB/token/layer × 32 layers = 128 KiB/token.
	if got := Mistral7B.KVBytesPerToken(); got != 4096*32 {
		t.Fatalf("7B KV/token = %d want %d", got, 4096*32)
	}
	if Mistral7B.KVBytes(4096) != int64(4096)*4096*32 {
		t.Fatal("KVBytes wrong")
	}
	if Mistral7B.LayerBytes(4096) != 4096*4096 {
		t.Fatal("LayerBytes wrong")
	}
}

func TestTTFTPipeliningHelps(t *testing.T) {
	for _, s := range Specs() {
		for _, d := range []device.Device{device.CPURAM, device.NVMeSSD, device.SlowDisk} {
			with := s.TTFT(0.15, 4096, d, true)
			without := s.TTFT(0.15, 4096, d, false)
			if with >= without {
				t.Fatalf("%s on %s: pipelined TTFT %.3f not better than sequential %.3f",
					s.Name, d.Name, with, without)
			}
		}
	}
}

func TestTTFTPipelinedBounds(t *testing.T) {
	// Pipelined TTFT is at least max(total load, total recompute) and at
	// most their sum.
	s := Yi34B
	d := device.NVMeSSD
	L := 4096
	r := 0.15
	got := s.TTFT(r, L, d, true)
	load := s.Load(L, d)
	comp := s.Recompute(r, L)
	lower := math.Max(load, comp)
	if got < lower-1e-9 || got > load+comp+s.DecodeSecPerToken+1e-9 {
		t.Fatalf("pipelined TTFT %.3f outside [%.3f, %.3f]", got, lower, load+comp)
	}
}

func TestBlendBeatsFullPrefill(t *testing.T) {
	// The headline claim at the default operating point: CacheBlend TTFT
	// from NVMe at r=15% is 2.2–3.3× lower than full prefill.
	for _, s := range Specs() {
		full := s.FullPrefillTTFT(3072)
		bl := s.TTFT(0.15, 3072, device.NVMeSSD, true)
		speedup := full / bl
		if speedup < 1.8 {
			t.Fatalf("%s: speedup %.2f× too small", s.Name, speedup)
		}
	}
}

func TestPrefixCachingBetweenBlendAndFull(t *testing.T) {
	// With 6 chunks, prefix caching saves only the first chunk: slower
	// than CacheBlend, faster than full prefill.
	for _, s := range Specs() {
		full := s.FullPrefillTTFT(3072)
		prefix := s.PrefixCachingTTFT(3072, 6)
		bl := s.TTFT(0.15, 3072, device.NVMeSSD, true)
		if !(bl < prefix && prefix < full) {
			t.Fatalf("%s: want blend %.3f < prefix %.3f < full %.3f", s.Name, bl, prefix, full)
		}
	}
	if Yi34B.PrefixCachingTTFT(1000, 0) != Yi34B.FullPrefillTTFT(1000) {
		t.Fatal("0 chunks must degenerate to full prefill")
	}
}

func TestFullReuseFastest(t *testing.T) {
	s := Mistral7B
	reuse := s.FullReuseTTFT(3072, device.NVMeSSD)
	bl := s.TTFT(0.15, 3072, device.NVMeSSD, true)
	if reuse > bl {
		t.Fatalf("full reuse %.3f should be ≤ blend %.3f", reuse, bl)
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("Yi-34B")
	if err != nil || s.Layers != 60 {
		t.Fatalf("SpecByName failed: %v", err)
	}
	if _, err := SpecByName("GPT-5"); err == nil {
		t.Fatal("unknown model must error")
	}
}
