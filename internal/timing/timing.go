// Package timing is the calibrated analytic delay model behind every
// TTFT/throughput experiment. It answers the two questions the paper's
// loading controller asks (§5.1):
//
//	T_recompute(r%, LLM, L) = r% × Prefill(LLM, L)          (footnote 5)
//	T_load(LLM, L, device)  = PerTokenKVSize(LLM) × L / BW  (footnote 6)
//
// and the pipelined-TTFT schedule of §5: per-layer loading overlapped with
// per-layer selective recompute.
//
// The model specs are the paper's real evaluation models (Mistral-7B,
// Yi-34B 8-bit, Llama-70B 8-bit) with prefill times calibrated to the
// published anchors: ~3 s (34B) and ~6 s (70B) for a 4 K-token prefill on
// A40s (§2), and KV sizes from the architectures' layer/head geometry.
// This repository's quality experiments run on scaled-down transformers;
// the timing model speaks for the full-size systems the paper measured, so
// the reproduced TTFT numbers land in the paper's ranges.
package timing

import (
	"fmt"

	"repro/internal/device"
)

// Spec describes a served model for delay estimation.
type Spec struct {
	// Name identifies the model in tables.
	Name string
	// Layers is the transformer depth (drives per-layer pipelining).
	Layers int
	// KVBytesPerTokenLayer is the K+V footprint of one token on one layer
	// (2 × KVHeads × HeadDim × bytes-per-element).
	KVBytesPerTokenLayer int64
	// PrefillLin and PrefillQuad give full-prefill seconds for L tokens as
	// PrefillLin·L + PrefillQuad·L² (the quadratic term is attention).
	PrefillLin, PrefillQuad float64
	// DecodeSecPerToken is the per-output-token decode time.
	DecodeSecPerToken float64
}

// The paper's three evaluation models. Calibration anchors:
//   - Mistral-7B: ~0.8 s full prefill at 4 K on one A40; fp16 KV
//     (32 layers × 2 × 8 KV heads × 128 dims × 2 B = 8 KiB/token/layer is
//     the full-width figure; grouped-query attention gives 4 KiB).
//   - Yi-34B: ~3 s at 4 K (paper §2, Llama-34B class); 8-bit KV.
//   - Llama-70B: ~6 s at 4 K across two A40s; 8-bit KV.
var (
	Mistral7B = Spec{
		Name: "Mistral-7B", Layers: 32, KVBytesPerTokenLayer: 4096,
		PrefillLin: 1.56e-4, PrefillQuad: 9.5e-9, DecodeSecPerToken: 0.025,
	}
	Yi34B = Spec{
		Name: "Yi-34B", Layers: 60, KVBytesPerTokenLayer: 2048,
		PrefillLin: 5.86e-4, PrefillQuad: 3.6e-8, DecodeSecPerToken: 0.060,
	}
	Llama70B = Spec{
		Name: "Llama-70B", Layers: 80, KVBytesPerTokenLayer: 2048,
		PrefillLin: 1.17e-3, PrefillQuad: 7.2e-8, DecodeSecPerToken: 0.090,
	}
)

// Specs lists the evaluation models in paper order.
func Specs() []Spec { return []Spec{Mistral7B, Yi34B, Llama70B} }

// SpecByName returns the named spec.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("timing: unknown model %q", name)
}

// Prefill returns the full-prefill seconds for a context of L tokens.
func (s Spec) Prefill(L int) float64 {
	l := float64(L)
	return s.PrefillLin*l + s.PrefillQuad*l*l
}

// PrefillLayer returns the per-layer prefill seconds for L tokens.
func (s Spec) PrefillLayer(L int) float64 { return s.Prefill(L) / float64(s.Layers) }

// Recompute returns T_recompute(r, LLM, L) = r × Prefill(LLM, L): the
// selective-recompute cost at ratio r (paper footnote 5).
func (s Spec) Recompute(r float64, L int) float64 { return r * s.Prefill(L) }

// RecomputeLayer returns the per-layer selective-recompute seconds.
func (s Spec) RecomputeLayer(r float64, L int) float64 {
	return s.Recompute(r, L) / float64(s.Layers)
}

// KVBytesPerToken returns the whole-model KV footprint of one token.
func (s Spec) KVBytesPerToken() int64 {
	return s.KVBytesPerTokenLayer * int64(s.Layers)
}

// KVBytes returns the KV cache size of an L-token context.
func (s Spec) KVBytes(L int) int64 { return s.KVBytesPerToken() * int64(L) }

// LayerBytes returns the KV size of one layer of an L-token context.
func (s Spec) LayerBytes(L int) int64 { return s.KVBytesPerTokenLayer * int64(L) }

// Load returns T_load(LLM, L, device): seconds to fetch the whole KV cache
// (paper footnote 6).
func (s Spec) Load(L int, d device.Device) float64 { return d.ReadTime(s.KVBytes(L)) }

// LoadLayer returns the seconds to fetch one layer's KV.
func (s Spec) LoadLayer(L int, d device.Device) float64 { return d.ReadTime(s.LayerBytes(L)) }

// TTFT computes the time-to-first-token of a CacheBlend request at
// recompute ratio r with the KV stored on d, with or without the
// §5 per-layer pipelining of loading and recompute.
//
// Pipelined: loading layer i+1 overlaps recomputing layer i. Layer i's
// recompute can start once its KV is loaded and layer i-1's recompute is
// done; TTFT is when the last layer's recompute finishes, plus one decode
// step for the first token.
func (s Spec) TTFT(r float64, L int, d device.Device, pipelined bool) float64 {
	loadLayer := s.LoadLayer(L, d)
	compLayer := s.RecomputeLayer(r, L)
	if !pipelined {
		return float64(s.Layers)*(loadLayer+compLayer) + s.DecodeSecPerToken
	}
	loadDone := 0.0
	compDone := 0.0
	for i := 0; i < s.Layers; i++ {
		loadDone += loadLayer
		start := loadDone
		if compDone > start {
			start = compDone
		}
		compDone = start + compLayer
	}
	return compDone + s.DecodeSecPerToken
}

// FullPrefillTTFT returns the TTFT of full KV recompute (no cache reuse).
func (s Spec) FullPrefillTTFT(L int) float64 {
	return s.Prefill(L) + s.DecodeSecPerToken
}

// FullReuseTTFT returns the TTFT of full KV reuse: pure loading (plus one
// layer-equivalent of positional re-alignment, which is negligible) and
// the suffix prefill is ignored as in the paper's model.
func (s Spec) FullReuseTTFT(L int, d device.Device) float64 {
	return s.Load(L, d) + s.DecodeSecPerToken
}

// PrefixCachingTTFT returns the TTFT of prefix caching where only the
// first of nChunks chunks hits the prefix cache (§3.2): the remaining
// context must be fully prefilled. Following the paper's idealised
// assumption in favour of prefix caching, the prefix's KV loads for free.
func (s Spec) PrefixCachingTTFT(L int, nChunks int) float64 {
	if nChunks <= 0 {
		return s.FullPrefillTTFT(L)
	}
	rest := L - L/nChunks
	return s.Prefill(rest) + s.DecodeSecPerToken
}
