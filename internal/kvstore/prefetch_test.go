package kvstore

import (
	"math"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/device"
	"repro/internal/tensor"
)

// demoteTo pushes id down to the given tier by stuffing the tiers above
// it with filler chunks, then asserts the placement.
func demoteTo(t *testing.T, ts *Tiered, id chunk.ID, tier int, bytes int64) {
	t.Helper()
	filler := 0
	for tierOf(t, ts, id) < tier {
		if err := ts.Put(chunk.Hash("filler", []int{filler}), Bytes(bytes)); err != nil {
			t.Fatalf("filler put: %v", err)
		}
		filler++
		if filler > 1000 {
			t.Fatalf("chunk stuck on tier %d, want %d", tierOf(t, ts, id), tier)
		}
	}
}

func TestPrefetchPromotesAtArrival(t *testing.T) {
	ts := MustTiered(threeTiers(100, 200, 0), LRU)
	defer ts.Close()
	c := id(1)
	if err := ts.Put(c, Bytes(100)); err != nil {
		t.Fatal(err)
	}
	demoteTo(t, ts, c, 1, 100)

	now := 1.0
	arrival, started := ts.Prefetch(c, now, 1)
	if !started {
		t.Fatal("prefetch of a tier-1 chunk must start a transfer")
	}
	want := now + device.CPURAM.ReadTime(100)
	if math.Abs(arrival-want) > 1e-12 {
		t.Fatalf("arrival %v, want %v", arrival, want)
	}
	if ts.Inflight() != 1 {
		t.Fatalf("inflight %d, want 1", ts.Inflight())
	}
	// Re-issuing while in flight is a no-op reporting the same arrival.
	again, restarted := ts.Prefetch(c, now, 1)
	if restarted || again != arrival {
		t.Fatalf("duplicate prefetch: (%v, %v), want (%v, false)", again, restarted, arrival)
	}
	// The chunk stays readable on its source tier until arrival.
	if got := tierOf(t, ts, c); got != 1 {
		t.Fatalf("chunk moved early: tier %d, want 1", got)
	}
	// A lookup past the arrival time applies the promotion first.
	payload, tier, wait, ok := ts.GetAt(c, arrival+1e-9)
	if !ok || tier != 0 || wait != 0 {
		t.Fatalf("post-arrival GetAt = (%v, %d, %v, %v), want hit on tier 0 with no wait", payload, tier, wait, ok)
	}
	if got := tierOf(t, ts, c); got != 0 {
		t.Fatalf("chunk on tier %d after arrival, want 0", got)
	}
	pf := ts.PrefetchStats()
	if pf.Issued != 1 || pf.Completed != 1 || pf.Hits != 1 || pf.InflightJoins != 0 {
		t.Fatalf("stats %+v: want 1 issued, 1 completed, 1 hit (the first read of the promoted copy), 0 joins", pf)
	}
	if pf.BytesMoved != 100 || pf.BytesWasted != 0 {
		t.Fatalf("stats %+v: want 100 bytes moved, none wasted", pf)
	}
}

func TestPrefetchInflightJoinChargesResidualWait(t *testing.T) {
	ts := MustTiered(threeTiers(100, 0, 0)[:2], LRU) // HBM → unbounded RAM
	defer ts.Close()
	c := id(2)
	if err := ts.Put(c, Bytes(100)); err != nil {
		t.Fatal(err)
	}
	demoteTo(t, ts, c, 1, 100)

	arrival, started := ts.Prefetch(c, 0, 1)
	if !started {
		t.Fatal("prefetch must start")
	}
	mid := arrival / 2
	_, tier, wait, ok := ts.GetAt(c, mid)
	if !ok || tier != 1 {
		t.Fatalf("mid-flight GetAt = tier %d ok=%v, want source-tier hit", tier, ok)
	}
	if math.Abs(wait-(arrival-mid)) > 1e-12 {
		t.Fatalf("residual wait %v, want %v", wait, arrival-mid)
	}
	if wait > device.CPURAM.ReadTime(100) {
		t.Fatalf("join charged %v, more than a full source read %v", wait, device.CPURAM.ReadTime(100))
	}
	// A later join pays strictly less.
	_, _, wait2, _ := ts.GetAt(c, mid+arrival/4)
	if wait2 >= wait {
		t.Fatalf("residual wait grew: %v then %v", wait, wait2)
	}
	pf := ts.PrefetchStats()
	if pf.InflightJoins != 2 || pf.Hits != 2 {
		t.Fatalf("stats %+v: want both lookups counted as in-flight joins", pf)
	}
	// At arrival the promotion lands; the read already counted, so the
	// transfer adds no further hits and wastes nothing.
	if _, tier, _, _ := ts.GetAt(c, arrival); tier != 0 {
		t.Fatalf("chunk on tier %d after arrival, want 0", tier)
	}
	pf = ts.PrefetchStats()
	if pf.Completed != 1 || pf.Hits != 2 || pf.BytesWasted != 0 {
		t.Fatalf("stats %+v: want completed transfer, hits unchanged, no waste", pf)
	}
}

func TestPrefetchBandwidthBudget(t *testing.T) {
	ts := MustTiered(threeTiers(100, 0, 0)[:2], LRU)
	defer ts.Close()
	c := id(3)
	ts.Put(c, Bytes(100)) //nolint:errcheck
	demoteTo(t, ts, c, 1, 100)
	full, _ := ts.Prefetch(c, 0, 1)
	ts.Remove(c)
	ts.Put(c, Bytes(100)) //nolint:errcheck
	demoteTo(t, ts, c, 1, 100)
	half, _ := ts.Prefetch(c, 0, 0.5)
	if math.Abs(half-2*full) > 1e-12 {
		t.Fatalf("half-bandwidth transfer %v, want twice the full-bandwidth %v", half, full)
	}
}

func TestPrefetchNoopCases(t *testing.T) {
	ts := MustTiered(threeTiers(100, 200, 0), LRU)
	defer ts.Close()
	if _, started := ts.Prefetch(id(4), 0, 1); started {
		t.Fatal("prefetch of an absent chunk must not start")
	}
	hot := id(5)
	ts.Put(hot, Bytes(50)) //nolint:errcheck
	if _, started := ts.Prefetch(hot, 0, 1); started {
		t.Fatal("prefetch of a top-tier chunk must not start")
	}
	if pf := ts.PrefetchStats(); pf.Issued != 0 {
		t.Fatalf("no-op prefetches issued transfers: %+v", pf)
	}
}

func TestPrefetchRemoveNeverResurrects(t *testing.T) {
	ts := MustTiered(threeTiers(100, 0, 0)[:2], LRU)
	defer ts.Close()
	c := id(6)
	ts.Put(c, Bytes(100)) //nolint:errcheck
	demoteTo(t, ts, c, 1, 100)
	arrival, _ := ts.Prefetch(c, 0, 1)
	if !ts.Remove(c) {
		t.Fatal("remove must find the chunk")
	}
	if ts.Inflight() != 0 {
		t.Fatal("remove must cancel the in-flight transfer")
	}
	if _, _, _, ok := ts.GetAt(c, arrival+1); ok {
		t.Fatal("removed chunk resurrected by a late transfer arrival")
	}
	if got := ts.TierOf(c); got != -1 {
		t.Fatalf("removed chunk on tier %d", got)
	}
	pf := ts.PrefetchStats()
	if pf.BytesWasted != 100 || pf.Completed != 0 {
		t.Fatalf("stats %+v: want the cancelled transfer's bytes wasted", pf)
	}
}

func TestPrefetchEvictedMidflightNotReinserted(t *testing.T) {
	// Two bounded tiers: the bottom CAN evict the in-flight chunk out of
	// the hierarchy entirely before its transfer lands.
	ts := MustTiered([]Tier{
		{Device: device.GPUHBM, Capacity: 100},
		{Device: device.CPURAM, Capacity: 100},
	}, LRU)
	defer ts.Close()
	c := id(7)
	ts.Put(c, Bytes(100)) //nolint:errcheck
	demoteTo(t, ts, c, 1, 100)
	arrival, _ := ts.Prefetch(c, 0, 1)
	// Fill both tiers with fresh chunks: c is the bottom tier's LRU victim
	// and leaves the hierarchy while its transfer is still in flight.
	ts.Put(chunk.Hash("fresh", []int{1}), Bytes(100)) //nolint:errcheck
	ts.Put(chunk.Hash("fresh", []int{2}), Bytes(100)) //nolint:errcheck
	if got := ts.TierOf(c); got != -1 {
		t.Fatalf("setup: chunk still on tier %d", got)
	}
	if _, _, _, ok := ts.GetAt(c, arrival+1); ok {
		t.Fatal("evicted chunk resurrected at transfer arrival")
	}
	pf := ts.PrefetchStats()
	if pf.BytesWasted != 100 {
		t.Fatalf("stats %+v: want the orphaned transfer's bytes wasted", pf)
	}
}

func TestPrefetchUnreadDemotionCountsWaste(t *testing.T) {
	ts := MustTiered(threeTiers(100, 0, 0)[:2], LRU)
	defer ts.Close()
	c := id(8)
	ts.Put(c, Bytes(100)) //nolint:errcheck
	demoteTo(t, ts, c, 1, 100)
	arrival, _ := ts.Prefetch(c, 0, 1)
	// Land the transfer without reading c (a lookup of an absent chunk
	// advances the clock), then demote c off the top before any read.
	ts.GetAt(chunk.Hash("absent", []int{3}), arrival+1)
	if got := ts.TierOf(c); got != 0 {
		t.Fatalf("setup: chunk on tier %d, want promoted to 0", got)
	}
	ts.Put(chunk.Hash("fresh", []int{4}), Bytes(100)) //nolint:errcheck — demotes c
	pf := ts.PrefetchStats()
	if pf.Completed != 1 || pf.BytesWasted != 100 {
		t.Fatalf("stats %+v: want completed-but-unread promotion counted wasted on demotion", pf)
	}
}

func TestPrefetchStatsAccuracy(t *testing.T) {
	var pf PrefetchStats
	if pf.Accuracy() != 0 {
		t.Fatal("accuracy with no transfers must be 0")
	}
	pf = PrefetchStats{Issued: 4, Hits: 3}
	if pf.Accuracy() != 0.75 {
		t.Fatalf("accuracy %v, want 0.75", pf.Accuracy())
	}
}

func TestPopularityDecayAndRanking(t *testing.T) {
	p := NewPopularity(10, 0)
	a, b := id(10), id(11)
	for i := 0; i < 3; i++ {
		p.Touch(a, 0)
	}
	if got := p.Score(a, 0); got != 3 {
		t.Fatalf("score %v, want 3", got)
	}
	if got := p.Score(a, 10); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("score after one halflife %v, want 1.5", got)
	}
	// Recency beats stale volume: two fresh touches of b outrank a's
	// three decayed ones after two halflives.
	p.Touch(b, 20)
	p.Touch(b, 20)
	top := p.Top(20, 1, nil)
	if len(top) != 1 || top[0] != b {
		t.Fatalf("top at t=20 = %v, want [%s]", top, b)
	}
	// The keep filter drops ids.
	top = p.Top(20, 2, func(c chunk.ID) bool { return c != b })
	if len(top) != 1 || top[0] != a {
		t.Fatalf("filtered top = %v, want [%s]", top, a)
	}
	// Scores never go negative, no matter how stale.
	if got := p.Score(a, 1e6); got < 0 {
		t.Fatalf("score went negative: %v", got)
	}
}

func TestPopularityCapCompaction(t *testing.T) {
	p := NewPopularity(0, 8)
	hot := id(20)
	for i := 0; i < 5; i++ {
		p.Touch(hot, float64(i))
	}
	for i := 0; i < 16; i++ {
		p.Touch(chunk.Hash("cold", []int{i}), float64(i))
	}
	if p.Len() > 8 {
		t.Fatalf("tracked %d chunks, cap is 8", p.Len())
	}
	if p.Score(hot, 16) < 5 {
		t.Fatalf("compaction evicted the hottest chunk (score %v)", p.Score(hot, 16))
	}
}

func TestPopularityStaleNowDoesNotInflate(t *testing.T) {
	p := NewPopularity(10, 0)
	c := id(21)
	p.Touch(c, 100)
	if got := p.Score(c, 50); got != 1 {
		t.Fatalf("stale-clock score %v, want 1 (no inverse decay)", got)
	}
}

// TestPrefetchRaceStress hammers the transfer model from concurrent
// goroutines (run with -race). Each goroutine keeps its own monotonic
// clock; the invariants checked inline are the clock-independent ones.
func TestPrefetchRaceStress(t *testing.T) {
	ts := MustTiered(threeTiers(1<<12, 1<<13, 0), LRU)
	defer ts.Close()
	pop := NewPopularity(32, 256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := tensor.NewRNG(int64(1000 + w))
			now := 0.0
			for i := 0; i < 2000; i++ {
				now += g.Float64() * 1e-3
				key := chunk.Hash("race", []int{g.Intn(64)})
				switch uint64(g.Intn(5)) {
				case 0:
					ts.Put(key, Bytes(64)) //nolint:errcheck
				case 1:
					ts.Remove(key)
				case 2:
					ts.Prefetch(key, now, 1)
				case 3:
					pop.Touch(key, now)
					pop.Top(now, 8, func(c chunk.ID) bool { return ts.TierOf(c) > 0 })
				default:
					_, _, wait, _ := ts.GetAt(key, now)
					if wait < 0 {
						t.Errorf("negative residual wait %v", wait)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	pf := ts.PrefetchStats()
	if pf.BytesWasted > pf.BytesMoved {
		t.Fatalf("wasted %d bytes of %d moved", pf.BytesWasted, pf.BytesMoved)
	}
	if pf.Completed > pf.Issued {
		t.Fatalf("completed %d of %d issued", pf.Completed, pf.Issued)
	}
}

// FuzzPrefetch drives random op sequences with a monotonic clock against
// the transfer model and checks its core invariants: a join is charged at
// most the transfer duration and the residual wait only shrinks; a
// removed key never resurrects until the next Put; popularity scores stay
// non-negative; the waste/moved and hit/miss ledgers stay consistent.
func FuzzPrefetch(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4, 5, 250, 7})
	f.Add(int64(7), []byte{2, 2, 4, 1, 4, 2, 4, 200, 4})
	f.Add(int64(42), []byte{3, 0, 2, 255, 4, 1, 2, 4})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		ts := MustTiered(threeTiers(512, 1024, 0), LRU)
		defer ts.Close()
		pop := NewPopularity(16, 64)
		g := tensor.NewRNG(seed)
		now := 0.0
		lookups, removedAt := 0, make(map[chunk.ID]bool) // removed, no Put since
		inflight := make(map[chunk.ID]float64)           // key → arrival
		for _, b := range ops {
			now += float64(b%16) * 1e-3 // monotonic virtual clock
			key := chunk.Hash("fuzz", []int{g.Intn(24)})
			switch b % 5 {
			case 0:
				ts.Put(key, Bytes(64+int64(b)%192)) //nolint:errcheck
				delete(removedAt, key)
				delete(inflight, key)
			case 1:
				ts.Remove(key)
				removedAt[key] = true
				delete(inflight, key)
			case 2:
				if arrival, started := ts.Prefetch(key, now, 1); started {
					if arrival < now {
						t.Fatalf("transfer arrives in the past: %v < %v", arrival, now)
					}
					inflight[key] = arrival
					if removedAt[key] {
						t.Fatal("prefetch started for a removed key")
					}
				}
			case 3:
				pop.Touch(key, now)
				if s := pop.Score(key, now+float64(b)); s < 0 {
					t.Fatalf("negative popularity score %v", s)
				}
			default:
				_, _, wait, ok := ts.GetAt(key, now)
				lookups++
				if ok {
					pop.Touch(key, now)
				}
				if wait < 0 {
					t.Fatalf("negative residual wait %v", wait)
				}
				if arrival, fly := inflight[key]; fly && ok && wait > 0 {
					if want := arrival - now; math.Abs(wait-want) > 1e-9 {
						t.Fatalf("join charged %v, want residual %v", wait, want)
					}
				}
				if ok && removedAt[key] {
					t.Fatal("lookup hit a key removed with no Put since")
				}
				if arrival, fly := inflight[key]; fly && arrival <= now {
					delete(inflight, key) // landed (or was orphaned) by now
				}
			}
		}
		pf := ts.PrefetchStats()
		if pf.BytesWasted > pf.BytesMoved {
			t.Fatalf("wasted %d bytes of %d moved", pf.BytesWasted, pf.BytesMoved)
		}
		if pf.Completed > pf.Issued {
			t.Fatalf("completed %d transfers of %d issued", pf.Completed, pf.Issued)
		}
		if pf.InflightJoins > pf.Hits {
			t.Fatalf("joins %d exceed prefetch hits %d", pf.InflightJoins, pf.Hits)
		}
		st := ts.Stats()
		if st.Hits+st.Misses != int64(lookups) {
			t.Fatalf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, lookups)
		}
	})
}
