// Asynchronous tier prefetch: the in-flight transfer model behind the
// serving runtime's loader processes. CacheBlend's loading controller
// (§5.1) hides NVMe→RAM→HBM transfer under recompute; Prefetch models
// the transfer itself as a first-class object with a completion time, so
// a loader running on the simulation clock can start promoting a chunk
// long before prefill needs it. While a transfer is in flight the chunk
// stays readable on its source tier; a lookup that arrives mid-transfer
// "joins" it and is charged only the residual wait (arrival − now)
// instead of a full cold read, and once the arrival time passes the
// payload lands on the top tier — completion is applied lazily by
// whichever timed operation observes the clock first, so the store needs
// no clock of its own.
//
// Invariants the model keeps (fuzzed by FuzzPrefetch):
//   - a join is never charged more than the full source-tier read, and
//     the residual wait only shrinks as time advances;
//   - Remove cancels an in-flight transfer — a removed key is never
//     resurrected by a late completion;
//   - a chunk evicted from the hierarchy mid-flight is not re-inserted
//     at completion (the transfer's bytes are counted wasted instead).
package kvstore

import (
	"sort"

	"repro/internal/chunk"
)

// transfer is one in-flight prefetch promotion: id's payload is being
// copied from tier src to the top tier, completing at arrival.
type transfer struct {
	id        chunk.ID
	payload   Sized
	src       int
	bytes     int64
	arrival   float64
	seq       int  // issue order, breaking equal-arrival completion ties
	read      bool // a lookup joined the transfer in flight
	cancelled bool // superseded by Put or cancelled by Remove
}

// PrefetchStats counts the in-flight transfer model's activity.
type PrefetchStats struct {
	// Issued counts transfers started; Completed those whose payload
	// reached the top tier.
	Issued, Completed int64
	// Hits counts lookups a prefetch served: reads that found their chunk
	// promoted by a completed transfer (first read only), plus the
	// in-flight joins below.
	Hits int64
	// InflightJoins is the subset of Hits that arrived before the
	// transfer finished and paid only the residual wait.
	InflightJoins int64
	// BytesMoved is the payload bytes of all issued transfers.
	BytesMoved int64
	// BytesWasted counts moved bytes that never served a read: transfers
	// cancelled or orphaned mid-flight, and completed promotions undone
	// (demoted or removed) before any lookup touched them.
	BytesWasted int64
}

// Accuracy is Hits over Issued — the fraction of transfers that served at
// least one read. 0 with no transfers.
func (p PrefetchStats) Accuracy() float64 {
	if p.Issued == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Issued)
}

// Prefetch schedules an asynchronous promotion of id from the cold tier
// it lives on to the top tier. The transfer is in flight until the
// returned arrival time: reads before then join it via GetAt and pay only
// the residual wait. bw is the loader's bandwidth budget as a fraction of
// the source tier's read bandwidth (0 or 1 = the full device). started is
// false when there is nothing to do — id absent, already on the top tier,
// or already in flight (arrival then reports the existing transfer's
// completion time).
func (t *Tiered) Prefetch(id chunk.ID, now, bw float64) (arrival float64, started bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.advanceLocked(now)
	if tr, ok := t.flights[id]; ok {
		return tr.arrival, false
	}
	src := -1
	var payload Sized
	for i, tier := range t.tiers {
		if p, ok := tier.Peek(id); ok {
			src, payload = i, p
			break
		}
	}
	if src <= 0 {
		return 0, false // absent, or already hot
	}
	if bw <= 0 {
		bw = 1
	}
	bytes := payload.SizeBytes()
	t.flightSeq++
	tr := &transfer{
		id: id, payload: payload, src: src, bytes: bytes,
		arrival: now + t.cfg[src].Device.ReadTime(bytes)/bw,
		seq:     t.flightSeq,
	}
	t.flights[id] = tr
	t.flightQ = append(t.flightQ, tr)
	t.pf.Issued++
	t.pf.BytesMoved += bytes
	return tr.arrival, true
}

// GetAt is the prefetch-aware Get: it first applies every transfer due by
// now, then looks id up. A lookup that finds its chunk still in flight
// joins the transfer — it returns the residual wait (arrival − now), the
// only time the read should be charged, counts a hit on the source tier,
// and leaves the promotion to the transfer's completion. Any other lookup
// behaves exactly like Get.
func (t *Tiered) GetAt(id chunk.ID, now float64) (payload Sized, tier int, wait float64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.advanceLocked(now)
	if tr, ok := t.flights[id]; ok {
		t.hits[tr.src]++
		t.pf.Hits++
		t.pf.InflightJoins++
		tr.read = true
		return tr.payload, tr.src, tr.arrival - now, true
	}
	payload, tier, ok = t.getLocked(id)
	if ok {
		if _, unread := t.unread[id]; unread {
			t.pf.Hits++ // first read of a completed prefetch: it paid off
			delete(t.unread, id)
		}
	}
	return payload, tier, 0, ok
}

// TierOf reports the tier index id currently lives on (-1 if absent)
// without touching recency, statistics or placement. The predictive
// prefetcher uses it to pick popular-but-cold candidates.
func (t *Tiered) TierOf(id chunk.ID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, tier := range t.tiers {
		if tier.Contains(id) {
			return i
		}
	}
	return -1
}

// Inflight reports how many transfers are currently in flight.
func (t *Tiered) Inflight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.flights)
}

// PrefetchStats snapshots the transfer-model counters.
func (t *Tiered) PrefetchStats() PrefetchStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pf
}

// advanceLocked applies every transfer due by now, in (arrival, issue)
// order so concurrent loaders complete deterministically.
func (t *Tiered) advanceLocked(now float64) {
	if len(t.flightQ) == 0 {
		return
	}
	var due []*transfer
	rest := t.flightQ[:0]
	for _, tr := range t.flightQ {
		switch {
		case tr.cancelled: // dropped from the queue
		case tr.arrival <= now:
			due = append(due, tr)
		default:
			rest = append(rest, tr)
		}
	}
	t.flightQ = rest
	sort.Slice(due, func(i, j int) bool {
		if due[i].arrival != due[j].arrival {
			return due[i].arrival < due[j].arrival
		}
		return due[i].seq < due[j].seq
	})
	for _, tr := range due {
		t.completeLocked(tr)
	}
}

// completeLocked lands one due transfer: the payload moves from wherever
// the chunk now lives to the top tier (the residence may have shifted
// under demotion cascades while in flight). A chunk that left the
// hierarchy mid-flight is NOT re-inserted — its bytes moved for nothing.
func (t *Tiered) completeLocked(tr *transfer) {
	delete(t.flights, tr.id)
	src := -1
	for i, tier := range t.tiers {
		if tier.Contains(tr.id) {
			src = i
			break
		}
	}
	switch {
	case src < 0:
		// Evicted while in flight: never resurrect.
		t.pf.BytesWasted += tr.bytes
		return
	case src == 0:
		// Already hot (re-inserted ahead of the transfer): nothing to move.
		t.pf.Completed++
		return
	}
	payload, _ := t.tiers[src].Remove(tr.id)
	if err := t.tiers[0].Put(tr.id, payload); err != nil {
		t.tiers[src].Put(tr.id, payload) //nolint:errcheck // it fit before
		t.pf.BytesWasted += tr.bytes
		return
	}
	t.promos[src]++
	t.pf.Completed++
	if !tr.read {
		t.unread[tr.id] = tr.bytes
	}
}

// Drain cancels every in-flight transfer and reports how many it
// aborted — the close semantics for a node that dies mid-run: its
// loader stops issuing, and the bytes already streaming toward the top
// tier count as wasted unless a join read them. The store itself stays
// readable (run-end statistics still aggregate over dead nodes); only
// the transfer table empties. Transfers are cancelled in issue order so
// the waste accounting is deterministic.
func (t *Tiered) Drain() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, tr := range t.flightQ {
		if tr.cancelled {
			continue
		}
		t.cancelLocked(tr.id)
		n++
	}
	t.flightQ = t.flightQ[:0]
	return n
}

// cancelLocked aborts id's in-flight transfer, if any: Put supersedes the
// copy being moved, Remove releases the key outright. Bytes already
// streaming count as wasted unless a join read them.
func (t *Tiered) cancelLocked(id chunk.ID) {
	tr, ok := t.flights[id]
	if !ok {
		return
	}
	tr.cancelled = true
	delete(t.flights, id)
	if !tr.read {
		t.pf.BytesWasted += tr.bytes
	}
}

// wasteUnreadLocked marks a completed-but-unread prefetch of id as undone
// — called when demotion, eviction or removal takes the promoted copy off
// the top tier before any lookup touched it.
func (t *Tiered) wasteUnreadLocked(id chunk.ID) {
	if b, ok := t.unread[id]; ok {
		t.pf.BytesWasted += b
		delete(t.unread, id)
	}
}
