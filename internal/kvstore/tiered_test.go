package kvstore

import (
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// threeTiers is the canonical HBM→RAM→NVMe test stack.
func threeTiers(hbm, ram, nvme int64) []Tier {
	return []Tier{
		{Device: device.GPUHBM, Capacity: hbm},
		{Device: device.CPURAM, Capacity: ram},
		{Device: device.NVMeSSD, Capacity: nvme},
	}
}

// tierOf returns the index of the single tier holding id, or -1 if the
// chunk is absent — and fails the test if it straddles tiers.
func tierOf(t *testing.T, ts *Tiered, id chunk.ID) int {
	t.Helper()
	found := -1
	for i, tier := range ts.tiers {
		if tier.Contains(id) {
			if found >= 0 {
				t.Fatalf("chunk %s lives on tiers %d and %d", id, found, i)
			}
			found = i
		}
	}
	return found
}

func TestTieredValidation(t *testing.T) {
	if _, err := NewTiered(nil, LRU); err == nil {
		t.Fatal("empty tier stack must be rejected")
	}
	// Unbounded upper tier never demotes — reject.
	if _, err := NewTiered([]Tier{
		{Device: device.CPURAM, Capacity: 0},
		{Device: device.NVMeSSD, Capacity: 100},
	}, LRU); err == nil {
		t.Fatal("unbounded upper tier must be rejected")
	}
	if _, err := NewTiered([]Tier{{Device: device.Device{}, Capacity: 10}}, LRU); err == nil {
		t.Fatal("invalid device must be rejected")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustTiered must panic on a bad stack")
		}
	}()
	MustTiered(nil, LRU)
}

func TestTieredPutLandsOnTop(t *testing.T) {
	ts := MustTiered(threeTiers(100, 100, 0), LRU)
	defer ts.Close()
	ts.Put(id(1), Bytes(50)) //nolint:errcheck
	if got := tierOf(t, ts, id(1)); got != 0 {
		t.Fatalf("fresh chunk on tier %d, want 0", got)
	}
	// Oversize for HBM and RAM: lands on the unbounded bottom.
	ts.Put(id(2), Bytes(500)) //nolint:errcheck
	if got := tierOf(t, ts, id(2)); got != 2 {
		t.Fatalf("oversize chunk on tier %d, want 2", got)
	}
	if ts.Depth() != 3 || ts.TierDevice(0).Name != "gpu-hbm" {
		t.Fatal("Depth/TierDevice accessors wrong")
	}
}

// TestTieredRemove: removal releases the entry from whichever tier holds
// it without firing the demotion cascade or touching lookup statistics —
// the contract the serving runtime relies on when freeing a retired
// request's generated KV.
func TestTieredRemove(t *testing.T) {
	ts := MustTiered(threeTiers(100, 100, 0), LRU)
	defer ts.Close()
	ts.Put(id(1), Bytes(50))  //nolint:errcheck // lands on top
	ts.Put(id(2), Bytes(500)) //nolint:errcheck // bottom only
	statsBefore := ts.Stats()
	demosBefore := ts.TierStats()[0].Demotions
	for _, cid := range []chunk.ID{id(1), id(2)} {
		if !ts.Remove(cid) {
			t.Fatalf("Remove(%s) reported absent", cid)
		}
		if got := tierOf(t, ts, cid); got != -1 {
			t.Fatalf("%s still resident on tier %d after Remove", cid, got)
		}
		if ts.Remove(cid) {
			t.Fatalf("second Remove(%s) reported present", cid)
		}
	}
	if ts.Used() != 0 || ts.Len() != 0 {
		t.Fatalf("store not empty after removals: used=%d len=%d", ts.Used(), ts.Len())
	}
	after := ts.Stats()
	if after.Hits != statsBefore.Hits || after.Misses != statsBefore.Misses ||
		after.Evictions != statsBefore.Evictions {
		t.Fatalf("Remove distorted stats: %+v vs %+v", after, statsBefore)
	}
	if ts.TierStats()[0].Demotions != demosBefore {
		t.Fatal("Remove triggered a demotion cascade")
	}
}

func TestTieredGetReportsHitTierAndPromotes(t *testing.T) {
	ts := MustTiered(threeTiers(100, 100, 0), LRU)
	defer ts.Close()
	ts.Put(id(1), Bytes(500)) //nolint:errcheck // bottom only
	payload, tier, ok := ts.Get(id(1))
	if !ok || tier != 2 || payload.SizeBytes() != 500 {
		t.Fatalf("Get=(%v,%d,%v), want (500,2,true)", payload, tier, ok)
	}
	// Too big to promote: stays at the bottom.
	if got := tierOf(t, ts, id(1)); got != 2 {
		t.Fatalf("oversize chunk moved to tier %d", got)
	}
	ts.Put(id(2), Bytes(80)) //nolint:errcheck
	// Push id(2) down by filling the upper tiers.
	ts.Put(id(3), Bytes(80)) //nolint:errcheck
	ts.Put(id(4), Bytes(80)) //nolint:errcheck
	if got := tierOf(t, ts, id(2)); got != 2 {
		t.Fatalf("id(2) should have been demoted twice, on tier %d", got)
	}
	// A hit promotes it back to the top.
	if _, tier, ok := ts.Get(id(2)); !ok || tier != 2 {
		t.Fatalf("expected bottom-tier hit, got tier %d ok=%v", tier, ok)
	}
	if got := tierOf(t, ts, id(2)); got != 0 {
		t.Fatalf("id(2) promoted to tier %d, want 0", got)
	}
	stats := ts.TierStats()
	if stats[2].Promotions != 1 {
		t.Fatalf("tier-2 promotions=%d want 1", stats[2].Promotions)
	}
	if stats[0].Demotions == 0 {
		t.Fatal("filling the top tier must demote")
	}
}

func TestTieredDemotionCascadeAndBottomEviction(t *testing.T) {
	ts := MustTiered(threeTiers(100, 100, 100), LRU)
	defer ts.Close()
	for i := 0; i < 12; i++ {
		if err := ts.Put(id(i), Bytes(50)); err != nil {
			t.Fatal(err)
		}
	}
	// 12×50 bytes through a 100/100/100 stack: 2 live per tier, 6 evicted
	// off the bottom.
	if ts.Len() != 6 || ts.Used() != 300 {
		t.Fatalf("Len=%d Used=%d, want 6/300", ts.Len(), ts.Used())
	}
	stats := ts.TierStats()
	if stats[0].Evictions != 0 || stats[1].Evictions != 0 {
		t.Fatalf("upper tiers must never evict: %+v", stats)
	}
	if stats[2].Evictions != 6 {
		t.Fatalf("bottom evictions=%d want 6", stats[2].Evictions)
	}
	if stats[0].Demotions != 10 || stats[1].Demotions != 8 {
		t.Fatalf("demotion cascade wrong: tier0=%d tier1=%d want 10/8", stats[0].Demotions, stats[1].Demotions)
	}
	for i := range stats {
		if stats[i].BytesResident != 100 {
			t.Fatalf("tier %d resident %d, want 100", i, stats[i].BytesResident)
		}
		if stats[i].Capacity != 100 {
			t.Fatalf("tier %d capacity %d, want 100", i, stats[i].Capacity)
		}
	}
	// The most recent inserts live highest: id(11),id(10) on top.
	if tierOf(t, ts, id(11)) != 0 || tierOf(t, ts, id(10)) != 0 {
		t.Fatal("most recent chunks should sit on the top tier")
	}
	if tierOf(t, ts, id(0)) != -1 {
		t.Fatal("oldest chunk should have been evicted entirely")
	}
}

func TestTieredStatsAccounting(t *testing.T) {
	ts := MustTiered(threeTiers(100, 100, 0), LRU)
	defer ts.Close()
	lookups := 0
	for i := 0; i < 20; i++ {
		key := id(i % 7)
		if _, _, ok := ts.Get(key); !ok {
			ts.Put(key, Bytes(30)) //nolint:errcheck
		}
		lookups++
	}
	st := ts.Stats()
	if st.Hits+st.Misses != int64(lookups) {
		t.Fatalf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, lookups)
	}
	var tierHits int64
	for _, s := range ts.TierStats() {
		tierHits += s.Hits
	}
	if tierHits != st.Hits {
		t.Fatalf("per-tier hits %d != aggregate %d", tierHits, st.Hits)
	}
	if st.BytesStored != ts.Used() {
		t.Fatalf("BytesStored %d != Used %d", st.BytesStored, ts.Used())
	}
	if ts.LoadTime(id(0)) <= 0 {
		t.Fatal("resident chunk must have positive load time")
	}
	if ts.LoadTime(id(100)) != 0 {
		t.Fatal("absent chunk must load in 0")
	}
	if !ts.Contains(id(0)) || ts.Contains(id(100)) {
		t.Fatal("Contains wrong")
	}
}

func TestTieredPutReplaceNeverStraddles(t *testing.T) {
	ts := MustTiered(threeTiers(100, 100, 0), LRU)
	defer ts.Close()
	ts.Put(id(1), Bytes(500)) //nolint:errcheck // bottom
	ts.Put(id(1), Bytes(40))  //nolint:errcheck // now fits on top
	if got := tierOf(t, ts, id(1)); got != 0 {
		t.Fatalf("replaced chunk on tier %d, want 0 (and exactly one tier)", got)
	}
	if ts.Len() != 1 || ts.Used() != 40 {
		t.Fatalf("Len=%d Used=%d after replace, want 1/40", ts.Len(), ts.Used())
	}
	// No tier can hold a 1e9 payload when all are bounded.
	bounded := MustTiered(threeTiers(50, 50, 50), LRU)
	defer bounded.Close()
	if err := bounded.Put(id(2), Bytes(1000)); err == nil {
		t.Fatal("payload exceeding every tier must be rejected")
	}
}

// FuzzTieredGetPut drives a tier stack with an arbitrary op tape and
// asserts the structural invariants after every op: a chunk lives on at
// most one tier, no bounded tier exceeds its budget, promotions and
// demotions conserve entries (an id is resident iff it was inserted and
// never evicted off the bottom), and hit/miss accounting matches the
// lookup count.
func FuzzTieredGetPut(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x80, 0x17})
	f.Add([]byte("put-get-put-get-evict"))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0x13, 0x37})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tiers := []Tier{
			{Device: device.GPUHBM, Capacity: 1 << 8, Shards: 2},
			{Device: device.CPURAM, Capacity: 1 << 9},
			{Device: device.NVMeSSD, Capacity: 1 << 10, Shards: 3},
		}
		ts := MustTiered(tiers, LRU)
		defer ts.Close()
		live := map[chunk.ID]bool{} // model: inserted and not yet bottom-evicted
		var lookups, hits int64
		for i := 0; i+1 < len(ops); i += 2 {
			key := id(int(ops[i]) % 37)
			switch op, arg := ops[i]>>6, ops[i+1]; op {
			case 0, 1: // Put with a size that always fits somewhere
				size := int64(arg)%200 + 1
				if err := ts.Put(key, Bytes(size)); err != nil {
					t.Fatalf("Put(%d bytes) failed: %v", size, err)
				}
				live[key] = true
			case 2: // Get
				lookups++
				if _, tier, ok := ts.Get(key); ok {
					hits++
					if tier < 0 || tier >= len(tiers) {
						t.Fatalf("hit tier %d out of range", tier)
					}
					if !live[key] {
						t.Fatalf("hit on %s which was never inserted", key)
					}
				}
			default: // passive probes
				ts.Contains(key)
				ts.LoadTime(key)
				ts.Used()
			}
			// Invariants after every op.
			for ti, tier := range ts.tiers {
				if cap := tiers[ti].Capacity; cap > 0 && tier.Used() > cap {
					t.Fatalf("tier %d used %d exceeds capacity %d", ti, tier.Used(), cap)
				}
			}
			total := 0
			for key := range live {
				switch on := tierOf(t, ts, key); {
				case on >= 0:
					total++
				default:
					delete(live, key) // evicted off the bottom
				}
			}
			if total != ts.Len() {
				t.Fatalf("entry conservation broken: %d resident ids but Len=%d", total, ts.Len())
			}
		}
		st := ts.Stats()
		if st.Hits != hits || st.Hits+st.Misses != lookups {
			t.Fatalf("accounting: store hits=%d misses=%d, test saw hits=%d lookups=%d",
				st.Hits, st.Misses, hits, lookups)
		}
	})
}

// TestTieredRaceStress hammers one tier stack from many real goroutines —
// go test -race is the assertion; the final checks confirm the capacity
// and single-residence invariants survived.
func TestTieredRaceStress(t *testing.T) {
	tiers := threeTiers(16<<10, 32<<10, 64<<10)
	ts := MustTiered(tiers, LRU)
	defer ts.Close()
	const workers = 16
	const opsPer = 1500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := tensor.NewRNG(int64(w + 1))
			for i := 0; i < opsPer; i++ {
				key := chunk.Hash("stress", []int{sim.Zipf(g, 256, 0.9)})
				switch i % 3 {
				case 0:
					ts.Put(key, Bytes(64)) //nolint:errcheck
				case 1:
					ts.Get(key)
				default:
					ts.Contains(key)
					ts.Used()
					ts.Stats()
					ts.TierStats()
				}
			}
		}()
	}
	wg.Wait()
	for i, tier := range ts.tiers {
		if cap := tiers[i].Capacity; tier.Used() > cap {
			t.Fatalf("tier %d used %d exceeds capacity %d", i, tier.Used(), cap)
		}
	}
	for i := 0; i < 256; i++ {
		tierOf(t, ts, chunk.Hash("stress", []int{i})) // fails on straddle
	}
	st := ts.Stats()
	if st.Hits+st.Misses == 0 || st.Puts == 0 {
		t.Fatalf("no activity recorded: %+v", st)
	}
}
