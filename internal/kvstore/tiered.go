// Tiered store: CacheBlend's loading controller (§5.1) picks *where* a KV
// cache lives so loading delay hides selective recompute. Tiered realises
// the placement side of that decision as a stack of per-tier Sharded
// stores — e.g. GPU-HBM → CPU-RAM → NVMe — searched top-down on Get. Hits
// on a lower tier promote the chunk to the top (it is hot); capacity
// pressure on a tier demotes its LRU victims to the next tier down via
// the Store evict handler instead of dropping them; entries leave the
// hierarchy only off the bottom tier. The result approximates one global
// LRU over the summed capacity while keeping hot chunks on fast devices.
package kvstore

import (
	"fmt"
	"sync"

	"repro/internal/chunk"
	"repro/internal/device"
)

// Tier configures one level of a Tiered store, fastest first.
type Tier struct {
	// Device is the tier's storage device (drives ReadTime charging).
	Device device.Device
	// Capacity is the tier's byte budget; 0 = unbounded (sensible only
	// for the bottom tier).
	Capacity int64
	// Shards splits the tier into independently locked shards (0 = 1).
	Shards int
}

// TierStats is one tier's placement telemetry.
type TierStats struct {
	// Device names the tier.
	Device string
	// Capacity is the configured byte budget (0 = unbounded).
	Capacity int64
	// Hits counts lookups served from this tier.
	Hits int64
	// Promotions counts chunks moved from this tier up to the top on hit.
	Promotions int64
	// Demotions counts LRU victims pushed from this tier to the next.
	Demotions int64
	// Evictions counts entries dropped from the hierarchy at this tier:
	// LRU victims of the bottom tier, plus the rare demotion a lower tier
	// could not absorb.
	Evictions int64
	// BytesResident is the tier's current footprint.
	BytesResident int64
}

// Tiered is a multi-tier KV store. It is safe for concurrent use: one
// structural mutex serialises Get/Put so a chunk lives on at most one
// tier at any observable moment (the serving runtime's virtual clock
// serialises access anyway; the mutex makes the invariant hold for real
// concurrent callers too).
type Tiered struct {
	mu     sync.Mutex
	tiers  []*Sharded
	cfg    []Tier
	hits   []int64 // lookups served per tier
	promos []int64 // promotions out of each tier
	demos  []int64 // demotions out of each tier
	drops  []int64 // demotions the next tier rejected (oversize payload)
	misses int64
	puts   int64

	// In-flight prefetch transfer model (prefetch.go).
	flights   map[chunk.ID]*transfer // keys currently being promoted
	flightQ   []*transfer            // issue-ordered queue advanceLocked drains
	flightSeq int
	unread    map[chunk.ID]int64 // completed prefetches no lookup has touched
	pf        PrefetchStats
}

// NewTiered builds a tier stack, fastest tier first. Every tier above the
// bottom must be capacity-bounded (an unbounded upper tier would never
// demote, starving the tiers below it).
func NewTiered(tiers []Tier, policy Policy) (*Tiered, error) {
	if len(tiers) == 0 {
		return nil, fmt.Errorf("kvstore: tiered store needs at least one tier")
	}
	t := &Tiered{
		tiers:   make([]*Sharded, len(tiers)),
		cfg:     append([]Tier(nil), tiers...),
		hits:    make([]int64, len(tiers)),
		promos:  make([]int64, len(tiers)),
		demos:   make([]int64, len(tiers)),
		drops:   make([]int64, len(tiers)),
		flights: make(map[chunk.ID]*transfer),
		unread:  make(map[chunk.ID]int64),
	}
	for i, tc := range tiers {
		if err := tc.Device.Validate(); err != nil {
			return nil, err
		}
		if tc.Capacity <= 0 && i < len(tiers)-1 {
			return nil, fmt.Errorf("kvstore: tier %d (%s) above the bottom must be bounded", i, tc.Device.Name)
		}
		n := tc.Shards
		if n <= 0 {
			n = 1
		}
		t.tiers[i] = NewSharded(tc.Device, tc.Capacity, policy, n)
	}
	// Demotion cascade: tier i's LRU victims land on tier i+1 (which may
	// evict in turn, recursing at most len(tiers)-1 deep). The bottom
	// tier keeps the default drop-on-evict. Handlers run with the store
	// lock released but under t.mu, held by the public entry points.
	for i := 0; i < len(t.tiers)-1; i++ {
		i, next := i, t.tiers[i+1]
		t.tiers[i].SetEvictHandler(func(id chunk.ID, payload Sized) {
			if i == 0 {
				// Demoted off the top before any lookup used it: an
				// unread prefetch promotion was undone.
				t.wasteUnreadLocked(id)
			}
			if err := next.Put(id, payload); err != nil {
				t.drops[i]++ // next tier's shard cannot hold it: drop
				return
			}
			t.demos[i]++
		})
	}
	return t, nil
}

// MustTiered is NewTiered for static configurations known to be valid.
func MustTiered(tiers []Tier, policy Policy) *Tiered {
	t, err := NewTiered(tiers, policy)
	if err != nil {
		panic(err)
	}
	return t
}

// Depth returns the number of tiers.
func (t *Tiered) Depth() int { return len(t.tiers) }

// TierDevice returns tier i's device.
func (t *Tiered) TierDevice(i int) device.Device { return t.cfg[i].Device }

// Get searches the tiers top-down. On a hit it returns the payload and
// the tier index it was found on (the tier whose loading delay the
// caller should charge), then promotes the chunk to the top tier — the
// promotion may cascade demotions downward. A chunk the top tier cannot
// hold stays where it is.
func (t *Tiered) Get(id chunk.ID) (Sized, int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.getLocked(id)
}

func (t *Tiered) getLocked(id chunk.ID) (Sized, int, bool) {
	for i, tier := range t.tiers {
		payload, ok := tier.Get(id)
		if !ok {
			continue
		}
		t.hits[i]++
		if i > 0 {
			// Remove before re-inserting at the top: the promotion's
			// demotion cascade could otherwise push another chunk into
			// tier i and evict this one to i+1, leaving it on two tiers.
			tier.Remove(id)
			if err := t.tiers[0].Put(id, payload); err != nil {
				// Top tier can never hold it: put it back where it was.
				tier.Put(id, payload) //nolint:errcheck // it fit before
			} else {
				t.promos[i]++
			}
		}
		return payload, i, true
	}
	t.misses++
	return nil, -1, false
}

// Contains reports presence on any tier without touching recency, stats
// or placement.
func (t *Tiered) Contains(id chunk.ID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tier := range t.tiers {
		if tier.Contains(id) {
			return true
		}
	}
	return false
}

// Put inserts or replaces id on the highest tier that accepts it (new
// chunks are presumed hot). A previous copy on another tier is removed
// first so the chunk never straddles tiers. If no tier can hold the
// payload an error is returned.
func (t *Tiered) Put(id chunk.ID, payload Sized) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cancelLocked(id) // the new payload supersedes any copy in flight
	// Fast path for the per-token decode-KV append: an id already resident
	// on the top tier updates in place — entry and list element reused,
	// recency refreshed, growth evicting exactly as a reinsert would —
	// instead of remove-and-reinsert allocating a fresh entry per token.
	if t.tiers[0].Update(id, payload) {
		t.puts++
		return nil
	}
	for _, tier := range t.tiers {
		tier.Remove(id)
	}
	var err error
	for _, tier := range t.tiers {
		if err = tier.Put(id, payload); err == nil {
			t.puts++
			return nil
		}
	}
	return fmt.Errorf("kvstore: no tier can hold %d bytes: %w", payload.SizeBytes(), err)
}

// Remove deletes id from whichever tier holds it, reporting whether it
// was present. Removal is a release, not an eviction: it fires no evict
// handler and touches no hit/miss statistics. The serving runtime uses
// it to free a retired request's generated KV.
func (t *Tiered) Remove(id chunk.ID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cancelLocked(id) // a removed key must never resurrect at arrival
	t.wasteUnreadLocked(id)
	removed := false
	for _, tier := range t.tiers {
		if _, ok := tier.Remove(id); ok {
			removed = true
		}
	}
	return removed
}

// LoadTime returns the simulated seconds to read id's payload from the
// tier it currently lives on (0 if absent). It does not count as a Get
// and does not promote.
func (t *Tiered) LoadTime(id chunk.ID) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tier := range t.tiers {
		if lt := tier.LoadTime(id); lt > 0 {
			return lt
		}
	}
	return 0
}

// Used returns the total resident bytes across tiers.
func (t *Tiered) Used() int64 {
	var n int64
	for _, tier := range t.tiers {
		n += tier.Used()
	}
	return n
}

// Len returns the total entry count across tiers.
func (t *Tiered) Len() int {
	n := 0
	for _, tier := range t.tiers {
		n += tier.Len()
	}
	return n
}

// Each calls fn for every entry resident in the hierarchy with its id and
// byte size, tier by tier from the top. A chunk lives on at most one tier,
// so ids are distinct. The affinity router's duplication accounting walks
// per-replica stores with it; fn must not call back into the store.
func (t *Tiered) Each(fn func(id chunk.ID, bytes int64)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tier := range t.tiers {
		tier.Each(fn)
	}
}

// TierStats snapshots per-tier placement telemetry, top tier first.
func (t *Tiered) TierStats() []TierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tierStatsLocked()
}

func (t *Tiered) tierStatsLocked() []TierStats {
	out := make([]TierStats, len(t.tiers))
	for i, tier := range t.tiers {
		out[i] = TierStats{
			Device:        t.cfg[i].Device.Name,
			Capacity:      t.cfg[i].Capacity,
			Hits:          t.hits[i],
			Promotions:    t.promos[i],
			Demotions:     t.demos[i],
			Evictions:     t.drops[i],
			BytesResident: tier.Used(),
		}
		if i == len(t.tiers)-1 {
			out[i].Evictions += tier.Stats().Evictions
		}
	}
	return out
}

// Stats aggregates the hierarchy into the flat Stats shape: hits and
// misses are whole-hierarchy lookups (per-tier probe noise excluded),
// evictions count only entries that left the hierarchy. The snapshot is
// taken under one lock hold, so Hits+Misses always equals the lookup
// count even with concurrent callers.
func (t *Tiered) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Stats{Misses: t.misses, Puts: t.puts}
	for _, s := range t.tierStatsLocked() {
		st.Hits += s.Hits
		st.Evictions += s.Evictions
		st.BytesStored += s.BytesResident
	}
	return st
}

// Close stops every tier's background writers.
func (t *Tiered) Close() {
	for _, tier := range t.tiers {
		tier.Close()
	}
}
