// Sharded store: the multi-replica serving runtime's shared KV cache.
// Chunk IDs are content hashes, so routing on the ID's leading bytes
// spreads entries uniformly across independent Stores, each with its own
// lock, writer goroutine and capacity slice — removing the single-mutex /
// single-writer bottleneck when many replica workers hit the store at
// once.
package kvstore

import (
	"encoding/binary"

	"repro/internal/chunk"
	"repro/internal/device"
)

// Sharded is a capacity-bounded KV store split across independently
// locked shards. It is safe for concurrent use.
type Sharded struct {
	shards []*Store
}

// NewSharded creates a store of n shards on dev with the total capacity
// split evenly (capacity ≤ 0 means unbounded; n ≤ 0 means one shard).
// Shard 0 absorbs the capacity-division remainder so the shard budgets
// sum to exactly capacity (each shard still gets at least 1 byte).
func NewSharded(dev device.Device, capacity int64, policy Policy, n int) *Sharded {
	if n <= 0 {
		n = 1
	}
	s := &Sharded{shards: make([]*Store, n)}
	for i := range s.shards {
		per := int64(0)
		if capacity > 0 {
			per = capacity / int64(n)
			if i == 0 {
				per += capacity % int64(n)
			}
			if per <= 0 {
				per = 1
			}
		}
		s.shards[i] = New(dev, per, policy)
	}
	return s
}

// shard routes id to its shard. Chunk IDs are SHA-256 output, so the
// leading 8 bytes are already uniformly distributed.
func (s *Sharded) shard(id chunk.ID) *Store {
	return s.shards[binary.LittleEndian.Uint64(id[:8])%uint64(len(s.shards))]
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Device returns the backing device (shared by all shards).
func (s *Sharded) Device() device.Device { return s.shards[0].Device() }

// Capacity returns the summed shard byte budgets (0 = unbounded).
func (s *Sharded) Capacity() int64 {
	var n int64
	for _, sh := range s.shards {
		if sh.Capacity() <= 0 {
			return 0
		}
		n += sh.Capacity()
	}
	return n
}

// SetEvictHandler registers fn on every shard; see Store.SetEvictHandler.
func (s *Sharded) SetEvictHandler(fn func(chunk.ID, Sized)) {
	for _, sh := range s.shards {
		sh.SetEvictHandler(fn)
	}
}

// Remove deletes id from its shard without touching hit/miss/eviction
// counters, returning the payload if present.
func (s *Sharded) Remove(id chunk.ID) (Sized, bool) { return s.shard(id).Remove(id) }

// Get looks id up in its shard.
func (s *Sharded) Get(id chunk.ID) (Sized, bool) { return s.shard(id).Get(id) }

// Contains reports presence without touching recency or stats.
func (s *Sharded) Contains(id chunk.ID) bool { return s.shard(id).Contains(id) }

// Peek returns id's payload without touching recency or stats.
func (s *Sharded) Peek(id chunk.ID) (Sized, bool) { return s.shard(id).Peek(id) }

// Put inserts into id's shard, evicting within that shard as needed.
func (s *Sharded) Put(id chunk.ID, payload Sized) error { return s.shard(id).Put(id, payload) }

// Update replaces id's payload in place if resident; see Store.Update.
func (s *Sharded) Update(id chunk.ID, payload Sized) bool { return s.shard(id).Update(id, payload) }

// PutAsync queues the write on id's shard's background writer.
func (s *Sharded) PutAsync(id chunk.ID, payload Sized) { s.shard(id).PutAsync(id, payload) }

// LoadTime returns the simulated read time of id's payload (0 if absent).
func (s *Sharded) LoadTime(id chunk.ID) float64 { return s.shard(id).LoadTime(id) }

// Used returns the total stored bytes across shards.
func (s *Sharded) Used() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.Used()
	}
	return n
}

// Len returns the total entry count across shards.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Each calls fn for every resident entry across shards (shard by shard,
// recency order within each). See Store.Each.
func (s *Sharded) Each(fn func(id chunk.ID, bytes int64)) {
	for _, sh := range s.shards {
		sh.Each(fn)
	}
}

// Stats returns the summed counters of all shards.
func (s *Sharded) Stats() Stats {
	var t Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		t.Hits += st.Hits
		t.Misses += st.Misses
		t.Puts += st.Puts
		t.Evictions += st.Evictions
		t.BytesStored += st.BytesStored
	}
	return t
}

// Close stops every shard's background writer.
func (s *Sharded) Close() {
	for _, sh := range s.shards {
		sh.Close()
	}
}
