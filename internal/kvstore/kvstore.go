// Package kvstore implements the KV cache store of §5.1: a hash-addressed
// map from chunk IDs to stored KV caches with capacity accounting, LRU (or
// FIFO) eviction and hit/miss statistics. Each store sits on one simulated
// storage device; loading delay is the device's read time for the entry.
//
// Writes can be performed asynchronously by a background writer goroutine,
// mirroring the paper's implementation note that newly computed KV caches
// are handed to a thread that persists them to disk in the background.
package kvstore

import (
	"fmt"
	"sync"

	"repro/internal/chunk"
	"repro/internal/device"
)

// Sized is anything whose storage footprint is known. *kvcache.Cache
// implements it; the serving simulator stores plain byte sizes.
type Sized interface{ SizeBytes() int64 }

// Bytes is a payload that is just a size (used when only capacity
// behaviour matters, e.g. in the serving simulator).
type Bytes int64

// SizeBytes returns the payload size.
func (b Bytes) SizeBytes() int64 { return int64(b) }

// Policy selects the eviction policy.
type Policy int

const (
	// LRU evicts the least recently used entry (the paper's choice).
	LRU Policy = iota
	// FIFO evicts the oldest entry regardless of use (ablation).
	FIFO
)

// Stats counts store activity.
type Stats struct {
	Hits, Misses, Puts, Evictions int64
	BytesStored                   int64
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one resident chunk, threaded onto the store's intrusive
// recency list — no container/list element allocation per insert, and
// removed entries recycle through a freelist instead of churning the GC.
type entry struct {
	id         chunk.ID
	payload    Sized
	bytes      int64
	prev, next *entry // recency list when resident; next chains the freelist
}

// evicted is a victim handed to the evict handler after the lock drops:
// the fields are copied out so the entry itself can be recycled
// immediately.
type evicted struct {
	id      chunk.ID
	payload Sized
}

// Store is a capacity-bounded KV cache store on one device. It is safe
// for concurrent use.
type Store struct {
	mu       sync.Mutex
	dev      device.Device
	capacity int64
	used     int64
	policy   Policy
	head     *entry // most recently used
	tail     *entry // eviction end
	index    map[chunk.ID]*entry
	free     *entry // recycled entries, chained via next
	stats    Stats
	onEvict  func(chunk.ID, Sized)

	writeCh chan writeReq
	wg      sync.WaitGroup
	closed  bool
}

type writeReq struct {
	id      chunk.ID
	payload Sized
}

// New creates a store on dev holding at most capacity bytes. A
// non-positive capacity means unbounded.
func New(dev device.Device, capacity int64, policy Policy) *Store {
	s := &Store{
		dev:      dev,
		capacity: capacity,
		policy:   policy,
		index:    make(map[chunk.ID]*entry),
		writeCh:  make(chan writeReq, 64),
	}
	s.wg.Add(1)
	go s.writer()
	return s
}

// writer drains asynchronous Put requests in the background.
func (s *Store) writer() {
	defer s.wg.Done()
	for req := range s.writeCh {
		s.Put(req.id, req.payload)
	}
}

// Close stops the background writer after draining pending writes.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.writeCh)
	s.wg.Wait()
}

// Device returns the store's backing device.
func (s *Store) Device() device.Device { return s.dev }

// Capacity returns the store's byte budget (≤ 0 = unbounded).
func (s *Store) Capacity() int64 { return s.capacity }

// pushFront links e at the recency head. e must be unlinked.
func (s *Store) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	} else {
		s.tail = e
	}
	s.head = e
}

// unlink detaches e from the recency list.
func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront refreshes e's recency.
func (s *Store) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// allocEntry takes an entry off the freelist, or heap-allocates one.
func (s *Store) allocEntry() *entry {
	if e := s.free; e != nil {
		s.free = e.next
		e.next = nil
		return e
	}
	return &entry{}
}

// freeEntry clears e (dropping its payload reference) and recycles it.
func (s *Store) freeEntry(e *entry) {
	*e = entry{next: s.free}
	s.free = e
}

// SetEvictHandler registers fn to receive entries evicted under capacity
// pressure instead of dropping them silently — the hook the tiered store
// uses to demote victims to the next tier. fn runs on the evicting
// goroutine with the store lock released, so it may insert into other
// stores (or even back into this one). Set it before sharing the store.
func (s *Store) SetEvictHandler(fn func(chunk.ID, Sized)) {
	s.mu.Lock()
	s.onEvict = fn
	s.mu.Unlock()
}

// Get returns the payload for id if present, marking a hit and refreshing
// recency; otherwise it records a miss.
func (s *Store) Get(id chunk.ID) (Sized, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[id]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	if s.policy == LRU {
		s.moveToFront(e)
	}
	return e.payload, true
}

// Contains reports presence without touching recency or stats.
func (s *Store) Contains(id chunk.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[id]
	return ok
}

// Peek returns id's payload without touching recency, hit/miss statistics
// or placement — the read the tiered store's prefetch scheduler uses to
// size a transfer without perturbing LRU order.
func (s *Store) Peek(id chunk.ID) (Sized, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[id]
	if !ok {
		return nil, false
	}
	return e.payload, true
}

// Put inserts or replaces the payload for id, evicting per policy until
// the entry fits. Payloads larger than the whole capacity are rejected.
func (s *Store) Put(id chunk.ID, payload Sized) error {
	n := payload.SizeBytes()
	s.mu.Lock()
	if s.capacity > 0 && n > s.capacity {
		s.mu.Unlock()
		return fmt.Errorf("kvstore: payload %d bytes exceeds capacity %d", n, s.capacity)
	}
	if e, ok := s.index[id]; ok {
		s.used += n - e.bytes
		e.payload = payload
		e.bytes = n
		if s.policy == LRU {
			s.moveToFront(e)
		}
	} else {
		s.stats.Puts++
		e := s.allocEntry()
		e.id, e.payload, e.bytes = id, payload, n
		s.index[id] = e
		s.pushFront(e)
		s.used += n
	}
	victims := s.evictLocked()
	s.stats.BytesStored = s.used
	onEvict := s.onEvict
	s.mu.Unlock()
	for _, v := range victims {
		onEvict(v.id, v.payload)
	}
	return nil
}

// Update replaces id's payload in place when id is resident — recency
// refreshes and growth evicts per policy, exactly like a Put of a
// resident id — and reports ok=false (store untouched) when id is absent
// or the payload exceeds capacity, for the caller to fall back to a full
// Put. The hot caller is the serving runtime's per-token decode-KV
// append, which rewrites the same key every generated token.
func (s *Store) Update(id chunk.ID, payload Sized) bool {
	n := payload.SizeBytes()
	s.mu.Lock()
	if s.capacity > 0 && n > s.capacity {
		s.mu.Unlock()
		return false
	}
	e, ok := s.index[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	s.used += n - e.bytes
	e.payload = payload
	e.bytes = n
	if s.policy == LRU {
		s.moveToFront(e)
	}
	victims := s.evictLocked()
	s.stats.BytesStored = s.used
	onEvict := s.onEvict
	s.mu.Unlock()
	for _, v := range victims {
		onEvict(v.id, v.payload)
	}
	return true
}

// Remove deletes id and returns its payload. It touches neither hit/miss
// nor eviction counters — the tiered store uses it to move entries
// between tiers without distorting placement statistics.
func (s *Store) Remove(id chunk.ID) (Sized, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[id]
	if !ok {
		return nil, false
	}
	payload := e.payload
	s.unlink(e)
	delete(s.index, id)
	s.used -= e.bytes
	s.stats.BytesStored = s.used
	s.freeEntry(e)
	return payload, true
}

// PutAsync queues the write for the background writer (fire and forget),
// like the paper's background torch.save thread. Falls back to a
// synchronous Put once the store is closed.
func (s *Store) PutAsync(id chunk.ID, payload Sized) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		s.Put(id, payload) //nolint:errcheck // best effort after close
		return
	}
	s.writeCh <- writeReq{id: id, payload: payload}
}

// evictLocked evicts from the back until within capacity, returning the
// victims when an evict handler is registered (nil otherwise; the victim
// slice is freshly allocated because the handler may re-enter this
// store). The caller must invoke the handler after releasing the lock.
func (s *Store) evictLocked() []evicted {
	if s.capacity <= 0 {
		return nil
	}
	var victims []evicted
	for s.used > s.capacity {
		e := s.tail
		if e == nil {
			break
		}
		s.unlink(e)
		delete(s.index, e.id)
		s.used -= e.bytes
		s.stats.Evictions++
		if s.onEvict != nil {
			victims = append(victims, evicted{id: e.id, payload: e.payload})
		}
		s.freeEntry(e)
	}
	return victims
}

// Used returns the current stored bytes.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Each calls fn for every resident entry with its id and byte size, in
// recency order (most recently used first). It touches neither recency
// nor statistics; fn must not call back into the store.
func (s *Store) Each(fn func(id chunk.ID, bytes int64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for e := s.head; e != nil; e = e.next {
		fn(e.id, e.bytes)
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.BytesStored = s.used
	return st
}

// LoadTime returns the simulated seconds to read id's payload from the
// backing device (0 if absent). It does not count as a Get.
func (s *Store) LoadTime(id chunk.ID) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[id]
	if !ok {
		return 0
	}
	return s.dev.ReadTime(e.bytes)
}
