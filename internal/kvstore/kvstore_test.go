package kvstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/device"
)

func id(i int) chunk.ID { return chunk.Hash("m", []int{i}) }

func newTest(capacity int64, p Policy) *Store {
	return New(device.NVMeSSD, capacity, p)
}

func TestPutGetHitMiss(t *testing.T) {
	s := newTest(0, LRU)
	defer s.Close()
	if _, ok := s.Get(id(1)); ok {
		t.Fatal("empty store must miss")
	}
	if err := s.Put(id(1), Bytes(100)); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(id(1))
	if !ok || got.SizeBytes() != 100 {
		t.Fatal("get after put failed")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate %v want 0.5", st.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	s := newTest(300, LRU)
	defer s.Close()
	for i := 1; i <= 3; i++ {
		if err := s.Put(id(i), Bytes(100)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 so 2 becomes least recently used.
	s.Get(id(1))
	if err := s.Put(id(4), Bytes(100)); err != nil {
		t.Fatal(err)
	}
	if s.Contains(id(2)) {
		t.Fatal("LRU should have evicted id 2")
	}
	if !s.Contains(id(1)) || !s.Contains(id(3)) || !s.Contains(id(4)) {
		t.Fatal("wrong eviction victim")
	}
	if s.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d want 1", s.Stats().Evictions)
	}
}

func TestFIFOEvictionIgnoresRecency(t *testing.T) {
	s := newTest(300, FIFO)
	defer s.Close()
	for i := 1; i <= 3; i++ {
		s.Put(id(i), Bytes(100))
	}
	s.Get(id(1)) // should NOT protect id 1 under FIFO
	s.Put(id(4), Bytes(100))
	if s.Contains(id(1)) {
		t.Fatal("FIFO should have evicted the oldest entry regardless of use")
	}
}

func TestPutReplaceAdjustsBytes(t *testing.T) {
	s := newTest(0, LRU)
	defer s.Close()
	s.Put(id(1), Bytes(100))
	s.Put(id(1), Bytes(250))
	if s.Used() != 250 {
		t.Fatalf("used = %d want 250", s.Used())
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d want 1", s.Len())
	}
	if s.Stats().Puts != 1 {
		t.Fatal("replace must not count as a new put")
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	s := newTest(100, LRU)
	defer s.Close()
	if err := s.Put(id(1), Bytes(101)); err == nil {
		t.Fatal("oversize payload must be rejected")
	}
}

func TestEvictionKeepsWithinCapacity(t *testing.T) {
	s := newTest(1000, LRU)
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Put(id(i), Bytes(90))
	}
	if s.Used() > 1000 {
		t.Fatalf("used %d exceeds capacity", s.Used())
	}
	if s.Len() > 11 {
		t.Fatalf("too many entries survived: %d", s.Len())
	}
}

func TestPutAsyncLands(t *testing.T) {
	s := newTest(0, LRU)
	for i := 0; i < 20; i++ {
		s.PutAsync(id(i), Bytes(10))
	}
	s.Close() // drains the writer
	if s.Len() != 20 {
		t.Fatalf("async writes lost: %d/20", s.Len())
	}
	// PutAsync after close degrades to synchronous put.
	s.PutAsync(id(99), Bytes(10))
	if !s.Contains(id(99)) {
		t.Fatal("post-close PutAsync must still land")
	}
}

func TestLoadTime(t *testing.T) {
	s := New(device.SlowSSD, 0, LRU)
	defer s.Close()
	s.Put(id(1), Bytes(1e9))
	got := s.LoadTime(id(1))
	want := device.SlowSSD.ReadTime(1e9)
	if got != want {
		t.Fatalf("LoadTime=%v want %v", got, want)
	}
	if s.LoadTime(id(2)) != 0 {
		t.Fatal("missing entry must load in 0")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := newTest(10000, LRU)
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := id(i % 37)
				if i%3 == 0 {
					s.Put(k, Bytes(50))
				} else {
					s.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Used() > 10000 {
		t.Fatal("capacity violated under concurrency")
	}
}

func TestPutReplaceUpdatesBytesStored(t *testing.T) {
	// Regression: the replace path used to return before refreshing
	// Stats.BytesStored, and evictLocked bails out early on unbounded
	// stores — so the counter stayed stale. Stats() masks the field by
	// re-deriving it, so assert on the raw counter.
	s := newTest(0, LRU) // unbounded: eviction never runs
	defer s.Close()
	s.Put(id(1), Bytes(100))
	s.Put(id(1), Bytes(250))
	s.mu.Lock()
	got := s.stats.BytesStored
	s.mu.Unlock()
	if got != 250 {
		t.Fatalf("BytesStored=%d after unbounded replace, want 250", got)
	}
}

func TestRemove(t *testing.T) {
	s := newTest(0, LRU)
	defer s.Close()
	s.Put(id(1), Bytes(40))
	s.Put(id(2), Bytes(60))
	p, ok := s.Remove(id(1))
	if !ok || p.SizeBytes() != 40 {
		t.Fatalf("Remove returned %v,%v want 40,true", p, ok)
	}
	if s.Contains(id(1)) || s.Len() != 1 || s.Used() != 60 {
		t.Fatalf("store inconsistent after Remove: len=%d used=%d", s.Len(), s.Used())
	}
	if _, ok := s.Remove(id(99)); ok {
		t.Fatal("Remove of absent id must report false")
	}
	st := s.Stats()
	if st.Evictions != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Remove must not touch hit/miss/eviction counters: %+v", st)
	}
}

func TestEvictHandlerReceivesVictims(t *testing.T) {
	s := newTest(250, LRU)
	defer s.Close()
	var evicted []chunk.ID
	s.SetEvictHandler(func(id chunk.ID, p Sized) {
		if p.SizeBytes() != 100 {
			t.Fatalf("victim payload %d bytes, want 100", p.SizeBytes())
		}
		evicted = append(evicted, id)
	})
	for i := 1; i <= 4; i++ {
		if err := s.Put(id(i), Bytes(100)); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 250 holds 2 entries: ids 1 then 2 fall off the back.
	if len(evicted) != 2 || evicted[0] != id(1) || evicted[1] != id(2) {
		t.Fatalf("evict handler saw %v, want [id(1) id(2)]", evicted)
	}
	if s.Stats().Evictions != 2 {
		t.Fatalf("evictions=%d want 2", s.Stats().Evictions)
	}
}

func TestStatsBytesStored(t *testing.T) {
	s := newTest(0, LRU)
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.Put(id(i), Bytes(7))
	}
	if got := s.Stats().BytesStored; got != 35 {
		t.Fatalf("BytesStored=%d want 35", got)
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := newTest(0, LRU)
	s.Close()
	s.Close() // must not panic
}

func TestManyDistinctIDs(t *testing.T) {
	// Hash distinctness sanity at store scale.
	s := newTest(0, LRU)
	defer s.Close()
	for i := 0; i < 1000; i++ {
		s.Put(chunk.Hash("m", []int{i, i * 7, i * 13}), Bytes(1))
	}
	if s.Len() != 1000 {
		t.Fatalf("collisions or lost entries: %d/1000", s.Len())
	}
}

func TestDeviceAccessor(t *testing.T) {
	s := New(device.CPURAM, 0, LRU)
	defer s.Close()
	if s.Device().Name != "cpu-ram" {
		t.Fatal("Device accessor wrong")
	}
	_ = fmt.Sprintf("%v", s.Stats())
}
