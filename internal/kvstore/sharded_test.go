package kvstore

import (
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/tensor"
)

func TestShardedBasics(t *testing.T) {
	s := NewSharded(device.NVMeSSD, 0, LRU, 8)
	defer s.Close()
	if s.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", s.Shards())
	}
	if s.Device().Name != device.NVMeSSD.Name {
		t.Fatalf("wrong device %q", s.Device().Name)
	}
	ids := make([]chunk.ID, 100)
	for i := range ids {
		ids[i] = chunk.Hash("m", []int{i})
		if err := s.Put(ids[i], Bytes(10)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 100 || s.Used() != 1000 {
		t.Fatalf("Len=%d Used=%d, want 100/1000", s.Len(), s.Used())
	}
	for _, id := range ids {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("lost id %s", id)
		}
		if !s.Contains(id) {
			t.Fatalf("Contains(%s) false", id)
		}
		if s.LoadTime(id) <= 0 {
			t.Fatalf("LoadTime(%s) not positive", id)
		}
	}
	st := s.Stats()
	if st.Hits != 100 || st.Puts != 100 || st.BytesStored != 1000 {
		t.Fatalf("stats %+v malformed", st)
	}
}

func TestShardedSpreadsAcrossShards(t *testing.T) {
	s := NewSharded(device.NVMeSSD, 0, LRU, 8)
	defer s.Close()
	for i := 0; i < 800; i++ {
		s.Put(chunk.Hash("m", []int{i}), Bytes(1)) //nolint:errcheck
	}
	// SHA-256 routing: each shard should hold a nontrivial share.
	for i, sh := range s.shards {
		if n := sh.Len(); n < 50 {
			t.Fatalf("shard %d holds only %d of 800 entries — routing is skewed", i, n)
		}
	}
}

func TestShardedCapacitySumsToBudget(t *testing.T) {
	// Regression: capacity/n used to drop the remainder, silently
	// shrinking the budget by up to n-1 bytes. Shard 0 absorbs it now.
	for _, tc := range []struct {
		capacity int64
		n        int
	}{
		{103, 4}, {1<<20 + 13, 7}, {17, 3}, {64, 8}, {5, 5},
	} {
		s := NewSharded(device.NVMeSSD, tc.capacity, LRU, tc.n)
		var sum int64
		for _, sh := range s.shards {
			sum += sh.Capacity()
		}
		if sum != tc.capacity {
			t.Errorf("capacity=%d n=%d: shard budgets sum to %d", tc.capacity, tc.n, sum)
		}
		if got := s.Capacity(); got != tc.capacity {
			t.Errorf("capacity=%d n=%d: Capacity()=%d", tc.capacity, tc.n, got)
		}
		s.Close()
	}
	// Unbounded stays unbounded.
	u := NewSharded(device.NVMeSSD, 0, LRU, 4)
	defer u.Close()
	if u.Capacity() != 0 {
		t.Fatalf("unbounded Capacity()=%d want 0", u.Capacity())
	}
}

func TestShardedCapacityEvicts(t *testing.T) {
	// 4 shards × 25 bytes each; inserting 200 one-byte entries must evict
	// within shards and never exceed the total budget.
	s := NewSharded(device.NVMeSSD, 100, LRU, 4)
	defer s.Close()
	for i := 0; i < 200; i++ {
		if err := s.Put(chunk.Hash("m", []int{i}), Bytes(1)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Used() > 100 {
		t.Fatalf("Used %d exceeds capacity 100", s.Used())
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("expected evictions under capacity pressure")
	}
}

// TestShardedRaceStress hammers one sharded store from many real
// goroutines — the race detector (go test -race) is the assertion; the
// final invariants just confirm no updates were lost.
func TestShardedRaceStress(t *testing.T) {
	s := NewSharded(device.NVMeSSD, 64<<10, LRU, 8)
	defer s.Close()
	const workers = 16
	const opsPer = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := tensor.NewRNG(int64(w + 1))
			for i := 0; i < opsPer; i++ {
				id := chunk.Hash("stress", []int{sim.Zipf(g, 512, 0.9)})
				switch i % 4 {
				case 0:
					s.PutAsync(id, Bytes(64))
				case 1:
					s.Put(id, Bytes(64)) //nolint:errcheck
				case 2:
					s.Get(id)
				default:
					s.Contains(id)
					s.Used()
					s.Stats()
				}
			}
		}()
	}
	wg.Wait()
	s.Close() // drain async writers before checking invariants
	if s.Used() > 64<<10 {
		t.Fatalf("Used %d exceeds capacity", s.Used())
	}
	st := s.Stats()
	if st.Hits+st.Misses == 0 || st.Puts == 0 {
		t.Fatalf("no activity recorded: %+v", st)
	}
}
