// Popularity estimator for predictive prefetch: exponentially decayed hit
// counts per chunk, shared by a replica group's loaders. The workload
// generators drift their Zipf ranking over time, so raw cumulative counts
// would keep prefetching yesterday's hot set; halving each score every
// Halflife seconds of virtual time makes the ranking follow the drift.
package kvstore

import (
	"bytes"
	"math"
	"sort"
	"sync"

	"repro/internal/chunk"
)

// Popularity tracks per-chunk access scores with exponential time decay.
// It is safe for concurrent use.
type Popularity struct {
	mu       sync.Mutex
	halflife float64
	max      int
	scores   map[chunk.ID]*popEntry
}

type popEntry struct {
	score float64 // decayed count as of last
	last  float64 // virtual time of the last update
}

// NewPopularity creates an estimator whose scores halve every halflife
// seconds (≤ 0 disables decay) and that caps tracked chunks at maxEntries
// (≤ 0 = unbounded), batch-evicting the coldest quarter when full.
func NewPopularity(halflife float64, maxEntries int) *Popularity {
	return &Popularity{
		halflife: halflife,
		max:      maxEntries,
		scores:   make(map[chunk.ID]*popEntry),
	}
}

// decayed returns e's score brought forward to now. The clock never runs
// backwards in a run, but a stale now (concurrent callers racing) must not
// inflate the score, so negative elapsed time decays nothing.
func (p *Popularity) decayed(e *popEntry, now float64) float64 {
	if p.halflife <= 0 {
		return e.score
	}
	dt := now - e.last
	if dt <= 0 {
		return e.score
	}
	return e.score * math.Exp2(-dt/p.halflife)
}

// Touch records one access to id at virtual time now.
func (p *Popularity) Touch(id chunk.ID, now float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.scores[id]; ok {
		e.score = p.decayed(e, now) + 1
		if now > e.last {
			e.last = now
		}
		return
	}
	if p.max > 0 && len(p.scores) >= p.max {
		p.compactLocked(now)
	}
	p.scores[id] = &popEntry{score: 1, last: now}
}

// Score returns id's decayed score at now (0 if untracked).
func (p *Popularity) Score(id chunk.ID, now float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.scores[id]
	if !ok {
		return 0
	}
	return p.decayed(e, now)
}

// Len returns the number of tracked chunks.
func (p *Popularity) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.scores)
}

// Top returns up to k tracked ids passing keep (nil = all), hottest first.
// Ties break on id bytes so the ranking is deterministic.
func (p *Popularity) Top(now float64, k int, keep func(chunk.ID) bool) []chunk.ID {
	p.mu.Lock()
	defer p.mu.Unlock()
	type ranked struct {
		id    chunk.ID
		score float64
	}
	all := make([]ranked, 0, len(p.scores))
	for id, e := range p.scores {
		if keep != nil && !keep(id) {
			continue
		}
		all = append(all, ranked{id, p.decayed(e, now)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return bytes.Compare(all[i].id[:], all[j].id[:]) < 0
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	out := make([]chunk.ID, len(all))
	for i, r := range all {
		out[i] = r.id
	}
	return out
}

// compactLocked evicts the coldest tracked chunks down to 3/4 of the cap,
// deterministically (score asc, then id bytes) so capped runs stay
// seed-stable.
func (p *Popularity) compactLocked(now float64) {
	type ranked struct {
		id    chunk.ID
		score float64
	}
	all := make([]ranked, 0, len(p.scores))
	for id, e := range p.scores {
		all = append(all, ranked{id, p.decayed(e, now)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score < all[j].score
		}
		return bytes.Compare(all[i].id[:], all[j].id[:]) < 0
	})
	target := p.max * 3 / 4
	for _, r := range all {
		if len(p.scores) <= target {
			break
		}
		delete(p.scores, r.id)
	}
}
