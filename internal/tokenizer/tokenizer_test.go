package tokenizer

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestSplitBasics(t *testing.T) {
	got := Split("Hello, World!")
	want := []string{"hello", ",", "world", "!"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Split=%v want %v", got, want)
	}
}

func TestSplitHyphenAndDigits(t *testing.T) {
	got := Split("top-6 chunks of 512 tokens")
	want := []string{"top-6", "chunks", "of", "512", "tokens"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Split=%v want %v", got, want)
	}
}

func TestInternStableIDs(t *testing.T) {
	tok := New()
	a := tok.Intern("alpha")
	b := tok.Intern("beta")
	if a != 0 || b != 1 {
		t.Fatalf("ids %d %d, want 0 1", a, b)
	}
	if tok.Intern("alpha") != 0 {
		t.Fatal("re-intern must return same id")
	}
	if tok.Size() != 2 {
		t.Fatalf("size %d want 2", tok.Size())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tok := New()
	text := "the quick brown fox jumps over the lazy dog"
	ids := tok.Encode(text)
	if tok.Decode(ids) != text {
		t.Fatalf("round trip got %q", tok.Decode(ids))
	}
	// Same text must encode to same ids.
	if !reflect.DeepEqual(ids, tok.Encode(text)) {
		t.Fatal("re-encode differs")
	}
}

func TestEncodeKnownUnknownIsMinusOne(t *testing.T) {
	tok := New()
	tok.Encode("known words only")
	ids := tok.EncodeKnown("known mystery")
	if ids[0] < 0 {
		t.Fatal("known word mapped to -1")
	}
	if ids[1] != -1 {
		t.Fatalf("unknown word must map to -1, got %d", ids[1])
	}
	if tok.Size() != 3 {
		t.Fatal("EncodeKnown must not grow vocabulary")
	}
}

func TestLookupAndWord(t *testing.T) {
	tok := New()
	id := tok.Intern("x")
	if got, ok := tok.Lookup("x"); !ok || got != id {
		t.Fatal("lookup failed")
	}
	if _, ok := tok.Lookup("y"); ok {
		t.Fatal("lookup of missing word must fail")
	}
	if tok.Word(id) != "x" {
		t.Fatal("Word wrong")
	}
	if tok.Word(999) != "<unk>" || tok.Word(-1) != "<unk>" {
		t.Fatal("out-of-range Word must be <unk>")
	}
}

func TestDeterminismAcrossInstances(t *testing.T) {
	text := "alpha beta gamma alpha delta"
	a := New().Encode(text)
	b := New().Encode(text)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two tokenizers fed identical text must agree")
	}
}

func TestSplitIdempotentProperty(t *testing.T) {
	// Splitting the re-joined split of any string yields the same tokens:
	// Split(join(Split(s))) == Split(s).
	f := func(s string) bool {
		first := Split(s)
		tok := New()
		joined := tok.Decode(tok.Encode(s))
		second := Split(joined)
		return reflect.DeepEqual(first, second)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
