// Package tokenizer provides a deterministic word-level tokenizer.
//
// Real LLM stacks use learned subword vocabularies (BPE, SentencePiece);
// for this reproduction the text itself is synthetic, so a word-level
// vocabulary interned in first-appearance order is both deterministic and
// sufficient. Token ids are stable for a given sequence of Encode calls,
// which keeps chunk hashes (and therefore KV-store keys) reproducible.
package tokenizer

import (
	"strings"
	"unicode"
)

// Tokenizer interns words into dense integer ids.
//
// A Tokenizer is not safe for concurrent mutation; build the vocabulary
// up front (datasets do this during generation) and treat it as read-only
// afterwards.
type Tokenizer struct {
	ids   map[string]int
	words []string
}

// New returns an empty tokenizer.
func New() *Tokenizer {
	return &Tokenizer{ids: make(map[string]int)}
}

// Size returns the number of distinct tokens interned so far.
func (t *Tokenizer) Size() int { return len(t.words) }

// Intern returns the id for word, assigning the next free id on first use.
func (t *Tokenizer) Intern(word string) int {
	if id, ok := t.ids[word]; ok {
		return id
	}
	id := len(t.words)
	t.ids[word] = id
	t.words = append(t.words, word)
	return id
}

// Lookup returns the id for word and whether it is known.
func (t *Tokenizer) Lookup(word string) (int, bool) {
	id, ok := t.ids[word]
	return id, ok
}

// Word returns the word for id, or "<unk>" if out of range.
func (t *Tokenizer) Word(id int) string {
	if id < 0 || id >= len(t.words) {
		return "<unk>"
	}
	return t.words[id]
}

// Encode splits text into words (see Split) and interns each one.
func (t *Tokenizer) Encode(text string) []int {
	words := Split(text)
	out := make([]int, len(words))
	for i, w := range words {
		out[i] = t.Intern(w)
	}
	return out
}

// EncodeKnown is like Encode but maps unknown words to -1 instead of
// growing the vocabulary. Use it for query-time text once a model's
// embedding table has been sized.
func (t *Tokenizer) EncodeKnown(text string) []int {
	words := Split(text)
	out := make([]int, len(words))
	for i, w := range words {
		if id, ok := t.ids[w]; ok {
			out[i] = id
		} else {
			out[i] = -1
		}
	}
	return out
}

// Decode joins the words for ids with single spaces.
func (t *Tokenizer) Decode(ids []int) string {
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.Word(id))
	}
	return b.String()
}

// Split lower-cases text and splits it into word tokens. Punctuation
// becomes its own token so that sentence structure survives round-trips.
func Split(text string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-':
			cur.WriteRune(unicode.ToLower(r))
		case unicode.IsSpace(r):
			flush()
		default:
			flush()
			words = append(words, string(r))
		}
	}
	flush()
	return words
}
