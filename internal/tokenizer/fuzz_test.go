package tokenizer

import "testing"

// FuzzSplitRoundTrip: Split must be total on arbitrary UTF-8, and
// splitting the rejoined token stream must be idempotent.
func FuzzSplitRoundTrip(f *testing.F) {
	f.Add("hello, world!")
	f.Add("")
	f.Add("top-6 chunks of 512 tokens…")
	f.Fuzz(func(t *testing.T, s string) {
		first := Split(s)
		tok := New()
		joined := tok.Decode(tok.Encode(s))
		second := Split(joined)
		if len(first) != len(second) {
			t.Fatalf("idempotence broken: %d vs %d tokens", len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("token %d changed: %q vs %q", i, first[i], second[i])
			}
		}
	})
}
