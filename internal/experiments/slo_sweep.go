package experiments

import (
	"strconv"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/serve"
	"repro/internal/timing"
	"repro/internal/workload"
)

// SLOSweep evaluates deadline-aware scheduling on the traffic SLOs are
// written for: closed-loop multi-tenant client pools, where arrivals wait
// for completions and the per-tenant concurrency limit is the load knob.
// Policy × load grid over three pool sizes (light / moderate / overload),
// every cell measured against the same TTFT+TBT targets. Two effects to
// read off: (1) at overload the slo policy's admission order — aged
// first, then feasible by at-risk tenant and deadline, late deprioritised
// — holds attainment and goodput above FIFO, chunked prefill and
// decode-priority, which keep spending capacity on requests that are
// already past their targets; (2) the open-loop rows run FIFO at the
// matching offered rate, and where the closed loop self-throttles (its
// realised rate and queue depth flatten as the server saturates) the
// open-loop queue grows without bound and attainment collapses.
func SLOSweep(requests int) *Table {
	if requests <= 0 {
		requests = 600
	}
	warmup := requests / 3
	cfg := serve.Config{
		Spec:             timing.Mistral7B,
		Scheme:           baselines.CacheBlend,
		Ratio:            0.15,
		Device:           device.NVMeSSD,
		MaxBatch:         8,
		ChunkPool:        1500,
		ChunksPerRequest: 6,
		ChunkTokens:      512,
		QueryTokens:      32,
		Skew:             0.8,
		SLOTTFT:          2.0,  // first token within 2 s of arrival
		SLOTBT:           0.05, // mean inter-token gap under 50 ms
	}
	const tenants, think, decodeMean = 3, 2.0, 32
	chunks := workload.Chunks{Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest, Skew: cfg.Skew}
	dec := workload.Decode{Mean: decodeMean}
	loads := []struct {
		name    string
		clients int // per tenant
	}{
		{"light", 2},
		{"moderate", 6},
		{"overload", 12},
	}
	policies := []string{serve.SchedFIFO, serve.SchedChunkedPrefill, serve.SchedDecodePriority, serve.SchedSLO}

	t := &Table{
		Title: "SLO sweep: deadline-aware scheduling on closed-loop multi-tenant traffic (Mistral-7B, CacheBlend)",
		Header: []string{"loop", "policy", "load", "attain", "ttft-att", "tbt-att",
			"goodput(r/s)", "rate(r/s)", "p95-ttft(s)", "p95-tbt(s)", "queue"},
		Notes: []string{
			"targets: TTFT ≤ " + f2(cfg.SLOTTFT) + " s, mean TBT ≤ " + f3(cfg.SLOTBT) +
				" s; attain = fraction of measured requests meeting both",
			strconv.Itoa(tenants) + " tenant pools × {2, 6, 12} closed-loop clients, think time " +
				f2(think) + " s, geometric decode mean " + strconv.Itoa(decodeMean),
			"closed-loop rate is realised (an output): arrivals wait for completions, so the pool self-throttles at saturation",
			"open-loop rows: FIFO fed a Poisson stream at the pool's zero-service offered rate (clients/think) — the queue is unbounded",
			"slo policy: aged requests (waiting > starve-limit × TTFT target) first, then feasible by at-risk tenant and deadline, late deprioritised",
			"requests per cell: " + strconv.Itoa(requests) + ", first " + strconv.Itoa(warmup) + " excluded as warmup",
		},
	}

	closed := func(clients int) workload.Workload {
		return workload.ClosedLoop{Tenants: tenants, Clients: clients, Think: think, Chunks: chunks, Decode: dec}
	}
	// The open-loop analogue arrives at the pool's zero-service offered
	// rate regardless of completions — the load a closed pool only reaches
	// if the server keeps up.
	open := func(clients int) workload.Workload {
		rate := float64(tenants*clients) / think
		return workload.TenantMix(tenants, rate, chunks, 0, dec)
	}

	// Grid: policies × loads closed-loop, then one open-loop FIFO row per
	// load. All cells run on the worker pool; rows assemble in grid order.
	nClosed := len(policies) * len(loads)
	cells := pmap(nClosed+len(loads), func(i int) serve.Result {
		c := cfg
		var w workload.Workload
		if i < nClosed {
			c.Sched = policies[i/len(loads)]
			w = closed(loads[i%len(loads)].clients)
		} else {
			c.Sched = serve.SchedFIFO
			w = open(loads[i-nClosed].clients)
		}
		res, err := serve.RunWorkload(c, w, requests, warmup, 42)
		if err != nil {
			panic("experiments: slo sweep: " + err.Error())
		}
		return res
	})
	row := func(loop, policy, load string, r serve.Result) []string {
		return []string{loop, policy, load, f3(r.SLOAttainment), f3(r.SLOTTFTAttainment),
			f3(r.SLOTBTAttainment), f3(r.Goodput), f3(r.Rate), f3(r.P95TTFT), f3(r.P95TBT),
			f2(r.MeanQueueDepth)}
	}
	for pi, policy := range policies {
		for li, load := range loads {
			t.Rows = append(t.Rows, row("closed", policy, load.name, cells[pi*len(loads)+li]))
		}
	}
	for li, load := range loads {
		t.Rows = append(t.Rows, row("open", serve.SchedFIFO, load.name, cells[nClosed+li]))
	}
	return t
}
