package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/timing"
)

// Fig14 reproduces Figure 14: mean TTFT versus request rate for
// CacheBlend, full KV recompute, and two prefix-caching capacity
// configurations (RAM only vs RAM+SSD) on the extended RAG workloads.
func Fig14(requests int) *Table {
	if requests <= 0 {
		requests = 1500
	}
	warmup := requests / 3
	t := &Table{
		Title:  "Figure 14: TTFT vs request rate (extended RAG workload)",
		Header: []string{"workload", "model", "scheme", "rate(req/s)", "mean-ttft(s)", "p95(s)", "hit-rate"},
		Notes: []string{
			"prefix-caching(ram): store capped at 16 contexts; prefix-caching(ram+ssd): 256 contexts",
			fmt.Sprintf("%d requests per point, first %d excluded as warmup", requests, warmup),
		},
	}
	type variant struct {
		name     string
		scheme   baselines.Scheme
		capacity func(spec timing.Spec) int64
	}
	unbounded := func(timing.Spec) int64 { return 0 }
	variants := []variant{
		{"cacheblend", baselines.CacheBlend, unbounded},
		{"full-recompute", baselines.FullRecompute, unbounded},
		{"prefix-caching(ram)", baselines.PrefixCaching,
			func(s timing.Spec) int64 { return 16 * s.KVBytes(6*512) }},
		{"prefix-caching(ram+ssd)", baselines.PrefixCaching,
			func(s timing.Spec) int64 { return 256 * s.KVBytes(6*512) }},
	}
	workloads := []struct {
		name string
		pool int
		skew float64
	}{
		{"musique-extended", 1500, 0.8},
		{"2wikimqa-extended", 2000, 0.8},
	}
	// Rate multipliers around each model's full-recompute capacity so the
	// hockey-stick is visible for every scheme.
	mults := []float64{0.4, 0.8, 1.6, 3.2}
	specs := timing.Specs()
	// The full (workload, model, variant, rate) grid — the package's
	// largest — runs on the worker pool; rows assemble in grid order.
	type fig14Cell struct {
		rate float64
		res  serve.Result
	}
	cells := pmap(len(workloads)*len(specs)*len(variants)*len(mults), func(i int) fig14Cell {
		wl := workloads[i/(len(specs)*len(variants)*len(mults))]
		spec := specs[i/(len(variants)*len(mults))%len(specs)]
		v := variants[i/len(mults)%len(variants)]
		rate := mults[i%len(mults)] / spec.FullPrefillTTFT(6*512+32)
		cfg := serve.Config{
			Spec:             spec,
			Scheme:           v.scheme,
			Ratio:            0.15,
			Device:           device.NVMeSSD,
			StoreCapacity:    v.capacity(spec),
			Replicas:         1, // the paper's single-GPU testbed
			ChunkPool:        wl.pool,
			ChunksPerRequest: 6,
			ChunkTokens:      512,
			QueryTokens:      32,
			Skew:             wl.skew,
		}
		return fig14Cell{rate: rate, res: serve.Run(cfg, rate, requests, warmup, 42)}
	})
	i := 0
	for _, wl := range workloads {
		for _, spec := range specs {
			for _, v := range variants {
				for range mults {
					cell := cells[i]
					i++
					t.Rows = append(t.Rows, []string{
						wl.name, spec.Name, v.name,
						f3(cell.rate), f3(cell.res.MeanTTFT), f3(cell.res.P95TTFT), pct(cell.res.HitRate),
					})
				}
			}
		}
	}
	return t
}

// Fig14Scaling extends Figure 14 beyond the paper's single-GPU testbed:
// the same CacheBlend rate sweep across replica counts with continuous
// batching, showing how the serving runtime's saturation point moves as
// the cluster scales out over one shared sharded KV store.
func Fig14Scaling(requests int) *Table {
	if requests <= 0 {
		requests = 900
	}
	warmup := requests / 3
	spec := timing.Mistral7B
	t := &Table{
		Title: "Figure 14 (scaling): CacheBlend TTFT vs rate across replicas (Mistral-7B)",
		Header: []string{"replicas", "rate(req/s)", "mean-ttft(s)", "p95(s)",
			"tput(req/s)", "mean-batch", "mean-util"},
		Notes: []string{
			"continuous batching, cap 4; one sharded KV store shared by all replicas",
			fmt.Sprintf("%d requests per point, first %d excluded as warmup", requests, warmup),
		},
	}
	base := serve.Config{
		Spec:             spec,
		Scheme:           baselines.CacheBlend,
		Ratio:            0.15,
		Device:           device.NVMeSSD,
		MaxBatch:         4,
		ChunkPool:        1500,
		ChunksPerRequest: 6,
		ChunkTokens:      512,
		QueryTokens:      32,
		Skew:             0.8,
	}
	// The capacity probe anchors every cell's rate, so it runs first; the
	// (replicas, rate) grid then runs on the worker pool in grid order.
	soloCap := serve.Capacity(base, 42)
	rates := []float64{soloCap, 2 * soloCap, 4 * soloCap, 8 * soloCap}
	counts := []int{1, 2, 4}
	cells := pmap(len(counts)*len(rates), func(i int) serve.Result {
		cfg := base
		cfg.Replicas = counts[i/len(rates)]
		return serve.Run(cfg, rates[i%len(rates)], requests, warmup, 42)
	})
	for ci, replicas := range counts {
		for ri := range rates {
			res := cells[ci*len(rates)+ri]
			util := metrics.Mean(res.ReplicaUtil)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(replicas), f3(res.Rate), f3(res.MeanTTFT), f3(res.P95TTFT),
				f2(res.Throughput), f2(res.MeanBatch), pct(util),
			})
		}
	}
	return t
}

// Fig15 reproduces Figure 15: CacheBlend versus full recompute TTFT while
// varying (a) the number of chunks, (b) chunk length and (c) batch size.
func Fig15() *Table {
	spec := timing.Mistral7B
	d := device.NVMeSSD
	t := &Table{
		Title:  "Figure 15: sensitivity to chunks, chunk length, batch size (Mistral-7B)",
		Header: []string{"sweep", "value", "cacheblend(s)", "full-recompute(s)", "speedup"},
	}
	row := func(sweep string, val int, L int, batch int) {
		bl := float64(batch) * (spec.TTFT(0.15, L, d, true) - spec.DecodeSecPerToken)
		full := float64(batch) * spec.Prefill(L)
		t.Rows = append(t.Rows, []string{
			sweep, fmt.Sprint(val), f3(bl + spec.DecodeSecPerToken),
			f3(full + spec.DecodeSecPerToken), f2(full / bl),
		})
	}
	for _, n := range []int{3, 6, 9, 12} {
		row("chunks(×512tok)", n, n*512, 1)
	}
	for _, cl := range []int{300, 600, 900} {
		row("chunk-length(6 chunks)", cl, 6*cl, 1)
	}
	for _, b := range []int{2, 6, 10} {
		row("batch-size(6×512)", b, 6*512, b)
	}
	return t
}

// Fig16 reproduces Figure 16: quality versus TTFT as the recompute ratio
// sweeps — the knee where a small recompute ratio recovers full-prefill
// quality. The constructed model concentrates cross-chunk dependence in
// very few tokens, so its knee sits below the paper's 5%; the 0% row shows
// the collapse.
func Fig16(maxCases int) *Table {
	ev, v := NewQAWorld()
	spec := timing.Yi34B
	t := &Table{
		Title:  "Figure 16: quality vs TTFT across recompute ratios (Yi-34B)",
		Header: []string{"dataset", "ratio", "quality", "metric", "ttft(s)"},
	}
	ratios := []float64{0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.18, 0.30, 1.0}
	for _, cfg := range dataset.Configs() {
		if maxCases > 0 {
			cfg.Cases = maxCases
		}
		ds := dataset.Generate(v, cfg)
		for _, r := range ratios {
			ev.Ratio = r
			q := QualityEval{Ev: ev, DS: ds, TopK: 6, MaxCases: maxCases}
			quality := q.Score(baselines.CacheBlend)
			ttft := spec.TTFT(r, 6*512, device.NVMeSSD, true) + spec.Prefill(32)
			t.Rows = append(t.Rows, []string{cfg.Name, pct(r), f2(quality), ds.Metric, f3(ttft)})
		}
	}
	ev.Ratio = 0.15 // restore the default
	return t
}

// Fig17 reproduces Figure 17: quality vs TTFT with the KV store on CPU
// RAM versus a 4 Gbps slow disk (Yi-34B, 2WikiMQA).
func Fig17(maxCases int) *Table {
	ev, v := NewQAWorld()
	spec := timing.Yi34B
	t := &Table{
		Title:  "Figure 17: storage-device sensitivity (Yi-34B, 2wikimqa)",
		Header: []string{"device", "scheme", "quality", "ttft(s)"},
	}
	cfg := dataset.TwoWikiConfig()
	if maxCases > 0 {
		cfg.Cases = maxCases
	}
	ds := dataset.Generate(v, cfg)
	q := QualityEval{Ev: ev, DS: ds, TopK: 6, MaxCases: maxCases}
	quality := map[baselines.Scheme]float64{}
	for _, s := range []baselines.Scheme{
		baselines.CacheBlend, baselines.FullKVReuse, baselines.PrefixCaching, baselines.FullRecompute,
	} {
		quality[s] = q.Score(s)
	}
	const ctx, queryL = 6 * 512, 32
	for _, d := range []device.Device{device.CPURAM, device.SlowDisk} {
		rows := []struct {
			s    baselines.Scheme
			ttft float64
		}{
			{baselines.CacheBlend, spec.TTFT(0.15, ctx, d, true) + spec.Prefill(queryL)},
			{baselines.FullKVReuse, spec.FullReuseTTFT(ctx, d) + spec.Prefill(queryL)},
			{baselines.PrefixCaching, spec.PrefixCachingTTFT(ctx+queryL, 6)},
			{baselines.FullRecompute, spec.FullPrefillTTFT(ctx + queryL)},
		}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{d.Name, string(r.s), f2(quality[r.s]), f3(r.ttft)})
		}
	}
	return t
}

// Fig14Quality is the quality companion to Figure 14: scheme quality on
// the shared-corpus extended workloads (the paper reports Figure 14 "for
// baselines with similar quality"; this table shows which those are).
// The evaluator's chunk-KV memoisation plays the role of the warm KV
// store: chunk caches computed for one query are reused by the next.
func Fig14Quality(maxCases int) *Table {
	ev, v := NewQAWorld()
	t := &Table{
		Title:  "Figure 14 (companion): quality on the extended workloads",
		Header: []string{"workload", "scheme", "quality"},
	}
	for _, cfg := range []dataset.ExtendedConfig{dataset.MusiqueExtended(), dataset.TwoWikiExtended()} {
		if maxCases > 0 {
			cfg.Queries = maxCases
		}
		ds := dataset.GenerateExtended(v, cfg)
		q := QualityEval{Ev: ev, DS: ds, TopK: 6, MaxCases: maxCases}
		for _, s := range []baselines.Scheme{
			baselines.CacheBlend, baselines.FullRecompute, baselines.PrefixCaching, baselines.FullKVReuse,
		} {
			t.Rows = append(t.Rows, []string{cfg.Name, string(s), f2(q.Score(s))})
		}
	}
	return t
}
