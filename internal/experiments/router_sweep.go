package experiments

import (
	"strconv"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/serve"
	"repro/internal/timing"
	"repro/internal/workload"
)

// RouterSweep compares the cluster-routing policies — the legacy shared
// single-store topology, consistent chunk→replica hashing, and
// overlap-scored cache affinity — on multi-tenant bursty Zipf traffic
// over per-replica HBM/DRAM/slow-SSD hierarchies. Each of four tenants
// works a disjoint corpus that exceeds a replica's HBM tier by 6× (and
// exactly fills its DRAM tier), so where a request lands decides whether
// its chunks are resident at all: affinity learns the tenant→replica
// assignment from chunk overlap and routed-traffic popularity, hashing
// splits every tenant's corpus across owners (duplicating what the
// landing replica must re-insert), and the shared baseline keeps one
// store whose aggregate capacity is a quarter of the routed cluster's.
// The bottom tier is deliberately the paper's slow-disk device: with
// ~67 ms/chunk reads, CacheBlend's pipelining cannot hide a cold read
// behind ~12 ms of selective recompute, so cache locality — not just
// queue balance — is what moves TTFT.
func RouterSweep(requests int) *Table {
	if requests <= 0 {
		requests = 600
	}
	warmup := requests / 6
	const (
		tenants = 4
		pool    = 48 // chunks per tenant corpus: 6× a replica's HBM tier
		per     = 6
		skew    = 1.1
	)
	spec := timing.Mistral7B
	chunkBytes := spec.KVBytes(512)
	cfg := serve.Config{
		Spec:     spec,
		Scheme:   baselines.CacheBlend,
		Ratio:    0.15,
		Replicas: tenants,
		MaxBatch: 4,
		Tiers: []serve.TierConfig{
			{Device: device.GPUHBM, Capacity: 8 * chunkBytes},
			{Device: device.CPURAM, Capacity: pool * chunkBytes},
			{Device: device.SlowSSD},
		},
		ChunkTokens: 512,
		QueryTokens: 128,
	}
	rates := []float64{2.0, 2.5}
	policies := []string{serve.RouterShared, serve.RouterHash, serve.RouterAffinity}

	t := &Table{
		Title: "Router sweep: replica-routing policy vs per-tenant rate on multi-tenant bursty Zipf (Mistral-7B, CacheBlend, per-replica HBM/DRAM/slow-SSD)",
		Header: []string{"router", "rate/tenant", "mean-ttft(s)", "p95-ttft(s)", "hbm-hit",
			"hit", "load-skew", "queue-skew", "dup(GB)"},
		Notes: []string{
			strconv.Itoa(tenants) + " tenants × disjoint " + strconv.Itoa(pool) + "-chunk corpora (Zipf " +
				f2(skew) + ", burst 4); each corpus is 6× a replica's 8-chunk HBM tier",
			"shared = one store at single-node capacity; hash/affinity give each of the " +
				strconv.Itoa(tenants) + " replicas its own full tier stack",
			"load-skew / queue-skew = coefficient of variation of per-replica busy time / mean queue depth (0 = balanced)",
			"dup = bytes resident on more than one replica store (the price of routing misses under partitioned caches)",
			"slow-SSD bottom tier: ~67 ms/chunk reads exceed what pipelining hides behind recompute, so residency drives TTFT",
			"requests per cell: " + strconv.Itoa(requests) + ", first " + strconv.Itoa(warmup) +
				" excluded as warmup; every cell averages 3 seeds",
		},
	}
	// Averaging a few seeds matters here: bursty multi-tenant merges are
	// noisy enough that one seed can reorder policies on a ~5% margin.
	// Every (policy, rate, seed) cell is an independent simulation, so the
	// whole grid runs on the worker pool and the per-row seed averages are
	// folded in grid order.
	seeds := []int64{1, 2, 3}
	cells := pmap(len(policies)*len(rates)*len(seeds), func(i int) serve.Result {
		policy := policies[i/(len(rates)*len(seeds))]
		rate := rates[i/len(seeds)%len(rates)]
		seed := seeds[i%len(seeds)]
		c := cfg
		c.Router = policy
		mix := make([]workload.Workload, tenants)
		for j := range mix {
			mix[j] = workload.Bursty{Rate: rate, Burst: 4,
				Chunks: workload.Chunks{Pool: pool, PerRequest: per, Skew: skew, Offset: j * pool}}
		}
		res, err := serve.RunWorkload(c, workload.MultiTenant{Tenants: mix}, requests, warmup, seed)
		if err != nil {
			panic("experiments: router sweep: " + err.Error())
		}
		return res
	})
	for pi, policy := range policies {
		for ri, rate := range rates {
			var ttft, p95, hbm, hit, lskew, qskew, dup float64
			for si := range seeds {
				res := cells[(pi*len(rates)+ri)*len(seeds)+si]
				ttft += res.MeanTTFT
				p95 += res.P95TTFT
				hbm += res.Tiers[0].HitRate
				hit += res.HitRate
				lskew += res.LoadSkew
				qskew += res.QueueSkew
				dup += float64(res.DuplicationBytes)
			}
			n := float64(len(seeds))
			t.Rows = append(t.Rows, []string{
				policy, f2(rate), f3(ttft / n), f3(p95 / n),
				pct(hbm / n), pct(hit / n), f2(lskew / n), f2(qskew / n),
				f2(dup / n / 1e9),
			})
		}
	}
	return t
}
