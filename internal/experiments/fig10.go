package experiments

import (
	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/timing"
)

// Fig10 reproduces Figure 10: (a) TTFT versus recompute ratio with and
// without pipelining loading and recompute — below the device's hiding
// threshold extra recompute is free; (b) per-device loading delay against
// the 15% recompute delay, and the controller's cheapest-viable choice.
func Fig10() *Table {
	const L = 4096
	spec := timing.Mistral7B
	t := &Table{
		Title:  "Figure 10(a): TTFT vs recompute ratio (Mistral-7B, 4K ctx, 1 GB/s SSD)",
		Header: []string{"ratio", "ttft-pipelined(s)", "ttft-sequential(s)", "extra-vs-loading"},
	}
	d := device.SlowSSD
	ctrl := controller.Controller{Spec: spec}
	for _, r := range []float64{0.05, 0.10, 0.15, 0.20, 0.30, 0.50, 0.80, 1.0} {
		with := spec.TTFT(r, L, d, true)
		without := spec.TTFT(r, L, d, false)
		t.Rows = append(t.Rows, []string{
			pct(r), f3(with), f3(without), f3(ctrl.ExtraDelay(r, L, d)),
		})
	}
	best := ctrl.PickRatio(L, d)
	t.Notes = append(t.Notes,
		"controller's no-extra-delay ratio for this device: "+pct(best))
	return t
}

// Fig10b is the device-choice half of Figure 10: which storage devices a
// fixed 15% recompute ratio can hide, and which the controller picks.
func Fig10b() *Table {
	const L = 4096
	t := &Table{
		Title:  "Figure 10(b): storage device choice at 15% recompute",
		Header: []string{"model", "device", "load/layer(ms)", "recompute/layer(ms)", "hidden", "$/GB/mo"},
	}
	for _, spec := range timing.Specs() {
		ctrl := controller.Controller{Spec: spec}
		comp := spec.RecomputeLayer(0.15, L)
		for _, d := range device.Tiers() {
			load := spec.LoadLayer(L, d)
			hidden := "no"
			if load <= comp {
				hidden = "yes"
			}
			t.Rows = append(t.Rows, []string{
				spec.Name, d.Name,
				f3(load * 1000), f3(comp * 1000), hidden, f3(d.CostPerGBMonth),
			})
		}
		pick, ok := ctrl.PickDevice(device.Tiers(), L, 0.15)
		note := spec.Name + ": controller picks " + pick.Name
		if !ok {
			note += " (no device fully hides loading)"
		}
		t.Notes = append(t.Notes, note)
	}
	return t
}
