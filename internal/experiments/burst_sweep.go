package experiments

import (
	"strconv"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/serve"
	"repro/internal/timing"
	"repro/internal/workload"
)

// BurstSweep holds the offered mean rate fixed and raises burstiness: a
// plain Poisson stream against MMPP on/off streams whose ON windows run
// at 4× and 16× the mean rate. Queueing delay is convex in the arrival
// process, so bursts inflate tail TTFT even though the average load never
// changes — and the spread separates the schemes: CacheBlend's short
// service times drain a burst's backlog within the window, while full
// recompute (already near saturation at this mean rate) turns each ON
// window into a queue it can't work off. This is the serving-side story
// of the paper's real-traffic claim, measurable only with the workload
// subsystem.
func BurstSweep(requests int) *Table {
	if requests <= 0 {
		requests = 900
	}
	warmup := requests / 3
	spec := timing.Mistral7B
	base := serve.Config{
		Spec:             spec,
		Scheme:           baselines.CacheBlend,
		Ratio:            0.15,
		Device:           device.NVMeSSD,
		ChunkPool:        1500,
		ChunksPerRequest: 6,
		ChunkTokens:      512,
		QueryTokens:      32,
		Skew:             0.8,
	}
	// Equal mean rate for every cell: 80% of full recompute's capacity,
	// so the slowest scheme is close to saturation and burst sensitivity
	// is visible, while cached schemes have headroom to absorb bursts.
	fullCfg := base
	fullCfg.Scheme = baselines.FullRecompute
	rate := 0.8 * serve.Capacity(fullCfg, 42)

	chunks := workload.Chunks{Pool: base.ChunkPool, PerRequest: base.ChunksPerRequest, Skew: base.Skew}
	loads := []struct {
		name string
		w    workload.Workload
	}{
		{"poisson", workload.Poisson{Rate: rate, Chunks: chunks}},
		{"bursty×4", workload.Bursty{Rate: rate, Burst: 4, Chunks: chunks}},
		{"bursty×16", workload.Bursty{Rate: rate, Burst: 16, Chunks: chunks}},
	}
	schemes := []baselines.Scheme{baselines.CacheBlend, baselines.PrefixCaching, baselines.FullRecompute}

	t := &Table{
		Title: "Burst sweep: TTFT vs burstiness at equal mean rate (Mistral-7B)",
		Header: []string{"scheme", "workload", "rate(req/s)", "mean-ttft(s)", "p95(s)",
			"tput(req/s)", "hit-rate", "qdepth"},
		Notes: []string{
			f3(rate) + " req/s mean rate for every cell (80% of full recompute's capacity)",
			"bursty×k = MMPP on/off arrivals with ON windows at k× the mean rate, same long-run mean",
			"requests per cell: " + strconv.Itoa(requests) + ", first " + strconv.Itoa(warmup) + " excluded as warmup",
		},
	}
	// The capacity probe above runs first (every cell's rate depends on
	// it); the (scheme, load) grid itself runs on the worker pool with
	// rows assembled in grid order.
	cells := pmap(len(schemes)*len(loads), func(i int) serve.Result {
		cfg := base
		cfg.Scheme = schemes[i/len(loads)]
		res, err := serve.RunWorkload(cfg, loads[i%len(loads)].w, requests, warmup, 42)
		if err != nil {
			panic("experiments: burst sweep: " + err.Error())
		}
		return res
	})
	for si, scheme := range schemes {
		for li, load := range loads {
			res := cells[si*len(loads)+li]
			t.Rows = append(t.Rows, []string{
				string(scheme), load.name, f3(res.Rate), f3(res.MeanTTFT), f3(res.P95TTFT),
				f3(res.Throughput), pct(res.HitRate), f2(res.MeanQueueDepth),
			})
		}
	}
	return t
}
