package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/baselines"
)

func TestTableFormatAndCSV(t *testing.T) {
	tab := &Table{
		Title:  "t",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	out := tab.Format()
	if !strings.Contains(out, "== t ==") || !strings.Contains(out, "long-header") ||
		!strings.Contains(out, "note: n1") {
		t.Fatalf("format output malformed:\n%s", out)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,long-header\n1,2\n") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"2", "6", "7", "8", "10", "12", "13", "14", "15", "16", "17", "burst", "decode", "sched", "prefetch", "router", "failover", "slo"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("entry %d is %q want %q", i, all[i].ID, id)
		}
		if all[i].Desc == "" || all[i].Run == nil {
			t.Fatalf("entry %q incomplete", id)
		}
	}
	if _, ok := ByID("12"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("99"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func cell(t *testing.T, tab *Table, row int, col string) string {
	t.Helper()
	for i, h := range tab.Header {
		if h == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("column %q not found", col)
	return ""
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad number %q", s)
	}
	return v
}

func TestFig06Shape(t *testing.T) {
	tab := Fig06()
	// Per model: deviation at 15% HKVD must be far below ratio 0 and below
	// random selection at the same ratio.
	for i, row := range tab.Rows {
		if row[1] != "15%" {
			continue
		}
		h := num(t, cell(t, tab, i, "hkvd-selection"))
		r := num(t, cell(t, tab, i, "random-selection"))
		if h >= 0.8 {
			t.Fatalf("%s: 15%% HKVD deviation %.2f barely moved from 1.0", row[0], h)
		}
		if h >= r {
			t.Fatalf("%s: HKVD %.2f should beat random %.2f", row[0], h, r)
		}
	}
}

func TestFig07HeavyTail(t *testing.T) {
	tab := Fig07()
	for i := range tab.Rows {
		p50 := num(t, cell(t, tab, i, "p50"))
		p95 := num(t, cell(t, tab, i, "p95"))
		if p95 < 1.5*p50 {
			t.Fatalf("row %d: deviation distribution not heavy-tailed (p50 %.3f p95 %.3f)", i, p50, p95)
		}
	}
}

func TestFig08Correlation(t *testing.T) {
	tab := Fig08()
	var sum float64
	for i := range tab.Rows {
		sum += num(t, cell(t, tab, i, "spearman"))
	}
	avg := sum / float64(len(tab.Rows))
	if avg < 0.6 {
		t.Fatalf("mean neighbouring-layer rank correlation %.2f too low for Insight 2", avg)
	}
}

func TestFig10NoExtraDelayBelowThreshold(t *testing.T) {
	tab := Fig10()
	// At 15% on the 1 GB/s SSD the extra delay column must be ~0.
	for i, row := range tab.Rows {
		if row[0] == "15%" {
			if num(t, cell(t, tab, i, "extra-vs-loading")) > 1e-3 {
				t.Fatalf("15%% should be hidden by loading: %v", row)
			}
		}
	}
	b := Fig10b()
	if len(b.Notes) != 3 {
		t.Fatalf("device-choice notes missing: %v", b.Notes)
	}
}

func TestFig15SpeedupsReasonable(t *testing.T) {
	tab := Fig15()
	for i := range tab.Rows {
		sp := num(t, cell(t, tab, i, "speedup"))
		if sp < 1.5 || sp > 20 {
			t.Fatalf("row %d speedup %.2f out of plausible range", i, sp)
		}
	}
}

func TestFig12SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full model quality runs")
	}
	tab := Fig12(6)
	// 4 datasets × 3 models × 4 schemes rows.
	if len(tab.Rows) != 4*3*4 {
		t.Fatalf("unexpected row count %d", len(tab.Rows))
	}
	// For every dataset/model, cacheblend quality ≥ reuse quality and
	// cacheblend TTFT < full TTFT.
	byKey := map[string]map[baselines.Scheme][]string{}
	for _, row := range tab.Rows {
		key := row[0] + "/" + row[1]
		if byKey[key] == nil {
			byKey[key] = map[baselines.Scheme][]string{}
		}
		byKey[key][baselines.Scheme(row[2])] = row
	}
	for key, group := range byKey {
		blendQ := num(t, group[baselines.CacheBlend][3])
		reuseQ := num(t, group[baselines.FullKVReuse][3])
		if blendQ < reuseQ {
			t.Fatalf("%s: blend quality %.2f below reuse %.2f", key, blendQ, reuseQ)
		}
		blendT := num(t, group[baselines.CacheBlend][5])
		fullT := num(t, group[baselines.FullRecompute][5])
		if blendT >= fullT {
			t.Fatalf("%s: blend TTFT %.3f not below full %.3f", key, blendT, fullT)
		}
	}
}

func TestFig17TieredShape(t *testing.T) {
	tab := Fig17Tiered(600)
	if len(tab.Rows) != 3*3 {
		t.Fatalf("want 9 rows (3 splits × 3 rates), got %d", len(tab.Rows))
	}
	// Acceptance: at every rate, the HBM+RAM+NVMe stack must beat
	// NVMe-only mean TTFT at equal total capacity.
	ttft := map[string]map[string]float64{}
	for i, row := range tab.Rows {
		if ttft[row[0]] == nil {
			ttft[row[0]] = map[string]float64{}
		}
		ttft[row[0]][row[1]] = num(t, cell(t, tab, i, "mean-ttft(s)"))
	}
	for rate, flat := range ttft["nvme-only"] {
		deep := ttft["hbm+ram+nvme"][rate]
		if deep >= flat {
			t.Fatalf("rate %s: hbm+ram+nvme TTFT %.4f not below nvme-only %.4f", rate, deep, flat)
		}
	}
}

// TestBurstSweepShape is the workload-subsystem acceptance check: at
// equal mean rate, rising burstiness must measurably inflate p95 TTFT for
// every scheme, and CacheBlend must absorb the heaviest bursts far better
// than full recompute.
func TestBurstSweepShape(t *testing.T) {
	tab := BurstSweep(600)
	if len(tab.Rows) != 3*3 {
		t.Fatalf("want 9 rows (3 schemes × 3 workloads), got %d", len(tab.Rows))
	}
	p95 := map[string]map[string]float64{}
	for i, row := range tab.Rows {
		if p95[row[0]] == nil {
			p95[row[0]] = map[string]float64{}
		}
		p95[row[0]][row[1]] = num(t, cell(t, tab, i, "p95(s)"))
	}
	for scheme, byLoad := range p95 {
		if byLoad["bursty×16"] <= 1.2*byLoad["poisson"] {
			t.Fatalf("%s: burst×16 p95 %.3f not measurably above poisson %.3f",
				scheme, byLoad["bursty×16"], byLoad["poisson"])
		}
	}
	blend := p95["cacheblend"]["bursty×16"]
	full := p95["full-recompute"]["bursty×16"]
	if blend >= full/2 {
		t.Fatalf("under heavy bursts cacheblend p95 %.3f should be far below full recompute's %.3f", blend, full)
	}
}

// TestDecodeSweepShape is the decode-phase acceptance check: CacheBlend's
// mean-TTFT advantage over full recompute stays roughly constant across
// generation lengths, while per-token cost converges — the schemes sit
// far closer on mean TBT than on TTFT, and normalized latency (e2e per
// token) tightens as decode comes to dominate.
func TestDecodeSweepShape(t *testing.T) {
	tab := DecodeSweep(600)
	if len(tab.Rows) != 3*4 {
		t.Fatalf("want 12 rows (3 schemes × 4 lengths), got %d", len(tab.Rows))
	}
	get := func(scheme, decode, col string) float64 {
		for i, row := range tab.Rows {
			if row[0] == scheme && row[1] == decode {
				return num(t, cell(t, tab, i, col))
			}
		}
		t.Fatalf("row %s/%s missing", scheme, decode)
		return 0
	}
	// TTFT advantage roughly constant across generation lengths.
	var lo, hi float64
	for _, d := range []string{"0", "16", "64", "256"} {
		adv := get("full-recompute", d, "mean-ttft(s)") / get("cacheblend", d, "mean-ttft(s)")
		if adv < 2 {
			t.Fatalf("decode %s: TTFT advantage %.2f× collapsed", d, adv)
		}
		if lo == 0 || adv < lo {
			lo = adv
		}
		if adv > hi {
			hi = adv
		}
	}
	if hi > 1.5*lo {
		t.Fatalf("TTFT advantage not roughly constant across generation lengths: %.2f×–%.2f×", lo, hi)
	}
	// Per-token convergence: at the longest generations the schemes sit
	// far closer on TBT than on TTFT…
	ttftRatio := get("full-recompute", "256", "mean-ttft(s)") / get("cacheblend", "256", "mean-ttft(s)")
	tbtRatio := get("full-recompute", "256", "mean-tbt(s)") / get("cacheblend", "256", "mean-tbt(s)")
	if tbtRatio > ttftRatio/1.5 {
		t.Fatalf("decode 256: TBT gap %.2f× not far below TTFT gap %.2f×", tbtRatio, ttftRatio)
	}
	// …and normalized latency converges as decode dominates.
	r16 := get("full-recompute", "16", "e2e/tok(s)") / get("cacheblend", "16", "e2e/tok(s)")
	r256 := get("full-recompute", "256", "e2e/tok(s)") / get("cacheblend", "256", "e2e/tok(s)")
	if r256 >= r16 {
		t.Fatalf("normalized-latency gap widened with generation length: %.2f× at 16 vs %.2f× at 256", r16, r256)
	}
}

// TestSchedSweepShape is the scheduling-policy acceptance check: on the
// bursty workload, chunked prefill must cut P95 TBT against FIFO at
// equal completed throughput (the gain comes from removing stall, not
// from shedding load), with the StallTime column collapsing accordingly;
// decode-priority must pay for its (milder) TBT relief with a higher
// prefill delay than FIFO's.
func TestSchedSweepShape(t *testing.T) {
	tab := SchedSweep(400)
	if len(tab.Rows) != 3*3 {
		t.Fatalf("want 9 rows (3 policies × 3 workloads), got %d", len(tab.Rows))
	}
	get := func(policy, load, col string) float64 {
		for i, row := range tab.Rows {
			if row[0] == policy && row[1] == load {
				return num(t, cell(t, tab, i, col))
			}
		}
		t.Fatalf("row %s/%s missing", policy, load)
		return 0
	}
	for _, load := range []string{"bursty×4", "bursty×16"} {
		fifoTBT := get("fifo", load, "p95-tbt(s)")
		chunkTBT := get("chunked-prefill", load, "p95-tbt(s)")
		if chunkTBT >= 0.7*fifoTBT {
			t.Fatalf("%s: chunked-prefill p95 TBT %.4f not well below FIFO's %.4f", load, chunkTBT, fifoTBT)
		}
		fifoTput := get("fifo", load, "tput(req/s)")
		chunkTput := get("chunked-prefill", load, "tput(req/s)")
		if chunkTput < 0.95*fifoTput {
			t.Fatalf("%s: chunked-prefill throughput %.3f fell below FIFO's %.3f — TBT win must come at equal throughput",
				load, chunkTput, fifoTput)
		}
		if stall := get("chunked-prefill", load, "stall(s)"); stall >= get("fifo", load, "stall(s)")/2 {
			t.Fatalf("%s: chunked-prefill stall %.1fs not well below FIFO's %.1fs",
				load, stall, get("fifo", load, "stall(s)"))
		}
	}
	// Decode-priority trades prefill delay for decoder relief.
	if dp, fifo := get("decode-priority", "bursty×16", "prefill-delay(s)"), get("fifo", "bursty×16", "prefill-delay(s)"); dp <= fifo {
		t.Fatalf("decode-priority prefill delay %.3f should exceed FIFO's %.3f (that is the trade)", dp, fifo)
	}
	if dp, fifo := get("decode-priority", "bursty×16", "mean-tbt(s)"), get("fifo", "bursty×16", "mean-tbt(s)"); dp > fifo {
		t.Fatalf("decode-priority mean TBT %.4f above FIFO's %.4f — deferring prefills bought nothing", dp, fifo)
	}
}

func TestFig14ScalingShape(t *testing.T) {
	tab := Fig14Scaling(400)
	if len(tab.Rows) != 3*4 {
		t.Fatalf("want 12 rows (3 replica counts × 4 rates), got %d", len(tab.Rows))
	}
	// At the top (most saturating) rate, the 4-replica cluster must
	// complete requests faster than the single replica.
	tput := map[string]float64{}
	for i, row := range tab.Rows {
		if (i+1)%4 == 0 { // last rate of each replica block
			tput[row[0]] = num(t, cell(t, tab, i, "tput(req/s)"))
		}
	}
	if tput["4"] <= tput["1"] {
		t.Fatalf("4-replica saturated throughput %.2f not above 1-replica %.2f", tput["4"], tput["1"])
	}
}

func TestPrefetchSweepShape(t *testing.T) {
	tab := PrefetchSweep(600)
	if len(tab.Rows) != 3*2 {
		t.Fatalf("want 6 rows (3 policies × 2 workloads), got %d", len(tab.Rows))
	}
	get := func(policy, load, col string) float64 {
		for i, row := range tab.Rows {
			if row[0] == policy && row[1] == load {
				return num(t, cell(t, tab, i, col))
			}
		}
		t.Fatalf("row %s/%s missing", policy, load)
		return 0
	}
	// The headline claim: on heavily bursty traffic the async policies
	// turn queueing delay into transfer overlap — less tier-read stall,
	// lower mean TTFT, a hotter top tier — at unchanged throughput.
	const load = "bursty×24"
	offStall, offTTFT := get("off", load, "stall(s)"), get("off", load, "mean-ttft(s)")
	for _, policy := range []string{"on-enqueue", "predictive"} {
		if s := get(policy, load, "stall(s)"); s >= 0.85*offStall {
			t.Fatalf("%s stall %.3f not well below synchronous %.3f", policy, s, offStall)
		}
		if ttft := get(policy, load, "mean-ttft(s)"); ttft >= offTTFT {
			t.Fatalf("%s mean TTFT %.3f not below synchronous %.3f", policy, ttft, offTTFT)
		}
		if h, o := get(policy, load, "hbm-hit"), get("off", load, "hbm-hit"); h <= o {
			t.Fatalf("%s HBM hit %.0f%% not above synchronous %.0f%%", policy, h, o)
		}
		if tp, o := get(policy, load, "tput(req/s)"), get("off", load, "tput(req/s)"); tp < 0.99*o {
			t.Fatalf("%s throughput %.3f fell below synchronous %.3f", policy, tp, o)
		}
		// Speculation is never free: accuracy and waste must be reported.
		if acc := get(policy, load, "accuracy"); acc <= 0 || acc > 100 {
			t.Fatalf("%s accuracy %.0f%% out of range", policy, acc)
		}
		if w := get(policy, load, "wasted(MB)"); w <= 0 {
			t.Fatalf("%s wasted bytes not reported", policy)
		}
	}
	// The synchronous baseline issues no transfers at all.
	for _, row := range tab.Rows {
		if row[0] == "off" && cell(t, tab, 0, "accuracy") != "-" && row[6] != "-" {
			t.Fatalf("off row reports prefetch accuracy %q", row[6])
		}
	}
}

func TestFailoverSweepShape(t *testing.T) {
	tab := FailoverSweep(600)
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 rows (one per routing policy), got %d", len(tab.Rows))
	}
	get := func(policy, col string) float64 {
		for i, row := range tab.Rows {
			if row[0] == policy {
				return num(t, cell(t, tab, i, col))
			}
		}
		t.Fatalf("row %s missing", policy)
		return 0
	}
	// Every policy sees the same kill, and the routed policies drain a
	// real backlog off the dead node.
	for _, policy := range []string{"hash", "affinity"} {
		if r := get(policy, "rerouted"); r <= 0 {
			t.Fatalf("%s re-routed %.1f requests, want > 0 (the kill drains a backlog)", policy, r)
		}
		if rec := get(policy, "recovery(s)"); rec <= 0 {
			t.Fatalf("%s recovery %.2f, want > 0", policy, rec)
		}
	}
	// The headline claim: affinity re-scores the orphaned tenant onto
	// overlapping survivors, so it re-warms cheaper and recovers faster
	// than ring-successor hashing.
	if a, h := get("affinity", "recovery(s)"), get("hash", "recovery(s)"); a >= h {
		t.Fatalf("affinity recovery %.2f s not below hash %.2f s", a, h)
	}
	if a, h := get("affinity", "rewarm(s)"), get("hash", "rewarm(s)"); a >= h {
		t.Fatalf("affinity re-warm stall %.2f s not below hash %.2f s", a, h)
	}
}

// TestSLOSweepShape is the deadline-aware-scheduling acceptance check.
// At overload (the largest closed-loop client pool) the slo policy must
// beat FIFO and decode-priority on SLO attainment — holding late
// requests back so feasible ones make their targets is the whole point —
// and the open-loop rows must show the self-throttling contrast: a
// closed pool's admission queue is bounded by its client count while the
// open-loop queue at the same offered rate grows far past it.
func TestSLOSweepShape(t *testing.T) {
	tab := SLOSweep(400)
	if len(tab.Rows) != 4*3+3 {
		t.Fatalf("want 15 rows (4 policies × 3 loads closed + 3 open), got %d", len(tab.Rows))
	}
	get := func(loop, policy, load, col string) float64 {
		for i, row := range tab.Rows {
			if row[0] == loop && row[1] == policy && row[2] == load {
				return num(t, cell(t, tab, i, col))
			}
		}
		t.Fatalf("row %s/%s/%s missing", loop, policy, load)
		return 0
	}
	for _, load := range []string{"moderate", "overload"} {
		slo := get("closed", "slo", load, "attain")
		for _, rival := range []string{"fifo", "decode-priority", "chunked-prefill"} {
			if r := get("closed", rival, load, "attain"); slo <= r {
				t.Fatalf("%s: slo attainment %.3f not above %s's %.3f", load, slo, rival, r)
			}
		}
		if sg, fg := get("closed", "slo", load, "goodput(r/s)"), get("closed", "fifo", load, "goodput(r/s)"); sg <= fg {
			t.Fatalf("%s: slo goodput %.3f not above fifo's %.3f", load, sg, fg)
		}
	}
	// Self-throttling: the closed overload pool (3 tenants × 12 clients)
	// bounds its queue at the client count; the open-loop stream at the
	// matching offered rate does not.
	if q := get("closed", "fifo", "overload", "queue"); q > 36 {
		t.Fatalf("closed-loop mean queue depth %.1f exceeds the 36-client pool", q)
	}
	if oq, cq := get("open", "fifo", "overload", "queue"), get("closed", "fifo", "overload", "queue"); oq <= 2*cq {
		t.Fatalf("open-loop queue depth %.1f not well above closed-loop's %.1f", oq, cq)
	}
	// The closed loop's realised rate flattens at saturation instead of
	// tracking the offered rate the open-loop rows are fed.
	if cr, or := get("closed", "fifo", "overload", "rate(r/s)"), get("open", "fifo", "overload", "rate(r/s)"); cr >= or/2 {
		t.Fatalf("closed-loop realised rate %.2f did not self-throttle below the offered %.2f", cr, or)
	}
}
