package experiments

import (
	"strconv"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/serve"
	"repro/internal/timing"
	"repro/internal/workload"
)

// PrefetchSweep compares the tier-prefetch policies — synchronous loading,
// prefetch-on-enqueue, predictive popularity prefetch — on bursty Zipf
// traffic over an HBM/DRAM/NVMe hierarchy whose top tier is far smaller
// than the working set. CacheBlend's pipelining hides a cold read behind
// recompute only partially (the residual is the stall column); the loaders
// instead spend the request's own queueing delay moving its chunks up the
// hierarchy, so prefill starts hot. The predictive policy adds a
// queue-depth-triggered promotion of the decayed-popularity top set, which
// is what keeps the hot tier aligned with the generator's popularity
// drift; the accuracy and wasted columns report how well that speculation
// pays for the bytes it moves.
func PrefetchSweep(requests int) *Table {
	if requests <= 0 {
		requests = 600
	}
	warmup := requests / 3
	cfg := serve.Config{
		Spec:             timing.Mistral7B,
		Scheme:           baselines.CacheBlend,
		Ratio:            0.15,
		Replicas:         2,
		MaxBatch:         3,
		ChunkPool:        150,
		ChunksPerRequest: 6,
		ChunkTokens:      512,
		QueryTokens:      32,
		Skew:             0.9,
	}
	total := int64(60) * cfg.Spec.KVBytes(cfg.ChunkTokens)
	cfg.Tiers = []serve.TierConfig{
		{Device: device.GPUHBM, Capacity: total / 6},
		{Device: device.CPURAM, Capacity: total / 3},
		{Device: device.NVMeSSD, Capacity: total - total/6 - total/3},
	}
	// One fixed mean rate; burstiness is the sweep axis because queueing
	// delay is the only overlap window the loaders get — under smooth
	// arrivals there is nothing to hide transfers behind.
	const rate = 0.5
	chunks := workload.Chunks{Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest,
		Skew: cfg.Skew, DriftPeriod: 60}
	loads := []struct {
		name  string
		burst float64
	}{
		{"bursty×8", 8},
		{"bursty×24", 24},
	}
	policies := []string{serve.PrefetchOff, serve.PrefetchOnEnqueue, serve.PrefetchPredictive}

	t := &Table{
		Title: "Prefetch sweep: tier-prefetch policy vs burstiness on a drifting Zipf working set (Mistral-7B, CacheBlend, HBM/DRAM/NVMe)",
		Header: []string{"policy", "workload", "mean-ttft(s)", "p95-ttft(s)", "stall(s)",
			"hbm-hit", "accuracy", "wasted(MB)", "tput(req/s)"},
		Notes: []string{
			f2(rate) + " req/s mean rate, popularity drift period 60 s, HBM holds ~1/6 of the chunk pool",
			"stall = post-warmup prefill seconds lost to non-HBM tier reads (residual after pipelining)",
			"hbm-hit = fraction of lookups served from HBM or an in-flight promotion joined at HBM cost or better",
			"accuracy = prefetched chunks later read in flight or from HBM / transfers issued; wasted = promoted bytes never read",
			"requests per cell: " + strconv.Itoa(requests) + ", first " + strconv.Itoa(warmup) +
				" excluded as warmup; every cell averages 3 seeds",
		},
	}
	// Each cell averages a few seeds: single bursty traces are noisy enough
	// that one lucky arrival pattern can hide a ~5% TTFT effect. The
	// (policy, load, seed) grid runs on the worker pool; averages fold in
	// grid order.
	seeds := []int64{1, 7, 42}
	cells := pmap(len(policies)*len(loads)*len(seeds), func(i int) serve.Result {
		c := cfg
		c.PrefetchPolicy = policies[i/(len(loads)*len(seeds))]
		load := loads[i/len(seeds)%len(loads)]
		w := workload.Bursty{Rate: rate, Burst: load.burst, Chunks: chunks}
		res, err := serve.RunWorkload(c, w, requests, warmup, seeds[i%len(seeds)])
		if err != nil {
			panic("experiments: prefetch sweep: " + err.Error())
		}
		return res
	})
	for pi, policy := range policies {
		for li, load := range loads {
			var ttft, p95, stall, hbm, tput, wasted float64
			var issued, hits int64
			for si := range seeds {
				res := cells[(pi*len(loads)+li)*len(seeds)+si]
				ttft += res.MeanTTFT
				p95 += res.P95TTFT
				stall += res.TierStallTime
				hbm += res.HBMHitRate
				tput += res.Throughput
				wasted += float64(res.PrefetchWastedBytes)
				issued += res.PrefetchIssued
				hits += res.PrefetchHits
			}
			n := float64(len(seeds))
			accuracy := "-"
			if issued > 0 {
				accuracy = pct(float64(hits) / float64(issued))
			}
			t.Rows = append(t.Rows, []string{
				policy, load.name, f3(ttft / n), f3(p95 / n), f3(stall / n),
				pct(hbm / n), accuracy,
				f2(wasted / n / (1 << 20)), f3(tput / n),
			})
		}
	}
	return t
}
