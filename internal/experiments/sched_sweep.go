package experiments

import (
	"strconv"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/serve"
	"repro/internal/timing"
	"repro/internal/workload"
)

// SchedSweep compares the scheduling policies — FIFO, Sarathi-style
// chunked prefill, decode-priority admission — on decode-enabled traffic
// across burstiness levels at one fixed mean rate. The point CacheBlend's
// TTFT evaluation leaves implicit: the prefill seconds selective
// recompute saves are only delivered if the batch scheduler doesn't
// re-inflate them, and under FIFO any prefill joining a decoding batch
// paces every decoder for whole chunk steps (the StallTime column counts
// those decoder-seconds). Bounding the per-step prefill slice removes
// nearly all of that stall: chunked prefill cuts P95 TBT severalfold at
// byte-identical throughput and token counts, and — because shorter
// steps also interleave queued prefills sooner — lowers TTFT under
// bursts too. Decode-priority instead trades prefill delay (bounded by
// the starvation limit) for a milder TBT improvement.
func SchedSweep(requests int) *Table {
	if requests <= 0 {
		requests = 600
	}
	warmup := requests / 3
	cfg := serve.Config{
		Spec:             timing.Mistral7B,
		Scheme:           baselines.CacheBlend,
		Ratio:            0.15,
		Device:           device.NVMeSSD,
		MaxBatch:         8,
		ChunkPool:        1500,
		ChunksPerRequest: 6,
		ChunkTokens:      512,
		QueryTokens:      32,
		Skew:             0.8,
	}
	// One fixed mean rate with decode-heavy requests: mixed batches are
	// the norm, so the policies differ on how much a joining prefill
	// stalls the resident decoders, not on raw capacity.
	const rate, decodeMean = 0.5, 64
	chunks := workload.Chunks{Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest, Skew: cfg.Skew}
	dec := workload.Decode{Mean: decodeMean}
	loads := []struct {
		name string
		w    workload.Workload
	}{
		{"poisson", workload.Poisson{Rate: rate, Chunks: chunks, Decode: dec}},
		{"bursty×4", workload.Bursty{Rate: rate, Burst: 4, Chunks: chunks, Decode: dec}},
		{"bursty×16", workload.Bursty{Rate: rate, Burst: 16, Chunks: chunks, Decode: dec}},
	}
	policies := []string{serve.SchedFIFO, serve.SchedChunkedPrefill, serve.SchedDecodePriority}

	t := &Table{
		Title: "Sched sweep: scheduling policy vs burstiness at equal mean rate (Mistral-7B, CacheBlend)",
		Header: []string{"policy", "workload", "mean-ttft(s)", "p95-ttft(s)", "mean-tbt(s)",
			"p95-tbt(s)", "e2e(s)", "tput(req/s)", "stall(s)", "prefill-delay(s)"},
		Notes: []string{
			f2(rate) + " req/s mean rate, geometric decode mean " + strconv.Itoa(decodeMean) +
				", batch cap 8 for every cell",
			"chunked-prefill budget: 256 tokens/step (half a 512-token chunk); decode-priority starve limit: 8 boundaries",
			"stall = post-warmup decoder-seconds spent paced by a neighbour's prefill beyond decode cadence",
			"prefill-delay = mean arrival → batch-admission wait (decode-priority trades it for TBT)",
			"requests per cell: " + strconv.Itoa(requests) + ", first " + strconv.Itoa(warmup) + " excluded as warmup",
		},
	}
	// The (policy, load) cells run on the worker pool; rows assemble in
	// grid order.
	cells := pmap(len(policies)*len(loads), func(i int) serve.Result {
		c := cfg
		c.Sched = policies[i/len(loads)]
		res, err := serve.RunWorkload(c, loads[i%len(loads)].w, requests, warmup, 42)
		if err != nil {
			panic("experiments: sched sweep: " + err.Error())
		}
		return res
	})
	for pi, policy := range policies {
		for li, load := range loads {
			res := cells[pi*len(loads)+li]
			t.Rows = append(t.Rows, []string{
				policy, load.name, f3(res.MeanTTFT), f3(res.P95TTFT), f3(res.MeanTBT),
				f3(res.P95TBT), f3(res.MeanE2E), f3(res.Throughput),
				f2(res.StallTime), f3(res.MeanPrefillDelay),
			})
		}
	}
	return t
}
