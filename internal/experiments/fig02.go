package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/dataset"
)

// Fig02 reproduces Figure 2: generation quality as a function of the
// number of retrieved chunks, contrasting full KV recompute (with
// cross-attention) against full KV reuse (without). Quality rises with k
// as more of the answer path is retrieved, and the gap between the two
// schemes grows — the paper's motivation for needing cross-attention.
func Fig02(maxCases int) *Table {
	ev, _ := NewQAWorld()
	t := &Table{
		Title:  "Figure 2: quality vs number of retrieved chunks",
		Header: []string{"dataset", "k", "full-recompute", "full-kv-reuse", "gap"},
		Notes: []string{
			"paper: Musique/2WikiMQA, k=5..45 chunks of 128 tokens; here the synthetic pools are smaller so k=1..8",
		},
	}
	for _, cfg := range []dataset.Config{dataset.MusiqueConfig(), dataset.TwoWikiConfig()} {
		if maxCases > 0 {
			cfg.Cases = maxCases
		}
		ds := dataset.Generate(ev.V, cfg)
		for _, k := range []int{1, 2, 3, 4, 6, 8} {
			q := QualityEval{Ev: ev, DS: ds, TopK: k, MaxCases: maxCases}
			full := q.Score(baselines.FullRecompute)
			reuse := q.Score(baselines.FullKVReuse)
			t.Rows = append(t.Rows, []string{
				cfg.Name, fmt.Sprint(k), f2(full), f2(reuse), f2(full - reuse),
			})
		}
	}
	return t
}
