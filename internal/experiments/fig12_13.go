package experiments

import (
	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/timing"
)

// paperScaleTTFT returns the modelled TTFT of each scheme at the paper's
// workload scale (6 chunks × 512 tokens + query) for a given model spec,
// KV caches on NVMe.
func paperScaleTTFT(spec timing.Spec, s baselines.Scheme) float64 {
	const (
		nChunks = 6
		chunkL  = 512
		queryL  = 32
		L       = nChunks*chunkL + queryL
	)
	d := device.NVMeSSD
	switch s {
	case baselines.FullRecompute:
		return spec.FullPrefillTTFT(L)
	case baselines.PrefixCaching:
		return spec.PrefixCachingTTFT(L, nChunks)
	case baselines.FullKVReuse:
		return spec.FullReuseTTFT(nChunks*chunkL, d) + spec.Prefill(queryL)
	case baselines.CacheBlend:
		return spec.TTFT(0.15, nChunks*chunkL, d, true) + spec.Prefill(queryL)
	case baselines.MapReduce:
		// Map calls run as one batch (one chunk-sized prefill plus the
		// summary decode), then the reduce call prefills the concatenated
		// summaries (~30% of the context).
		mapStage := spec.Prefill(chunkL) + 30*spec.DecodeSecPerToken
		reduceStage := spec.Prefill(3*L/10+queryL) + spec.DecodeSecPerToken
		return mapStage + reduceStage
	case baselines.MapRerank:
		// One batched chunk-sized prefill plus the per-chunk answer decode.
		return spec.Prefill(chunkL+queryL) + 8*spec.DecodeSecPerToken
	default:
		return 0
	}
}

// Fig12 reproduces Figure 12: generation quality and TTFT of five schemes
// across the four datasets and three model scales. Quality is measured on
// the constructed QA model (identical across model scales — the paper's
// models differ only mildly in quality); TTFT comes from the calibrated
// per-model timing specs at the paper's context scale.
func Fig12(maxCases int) *Table {
	ev, v := NewQAWorld()
	t := &Table{
		Title:  "Figure 12: quality and TTFT across datasets, models and schemes",
		Header: []string{"dataset", "model", "scheme", "quality", "metric", "ttft(s)", "vs-full"},
		Notes: []string{
			"quality: constructed QA model, top-6 retrieval; identical across model scales by construction",
			"ttft: calibrated timing model at the paper's 6×512-token workload, KV on NVMe",
		},
	}
	schemes := []baselines.Scheme{
		baselines.CacheBlend, baselines.FullRecompute, baselines.PrefixCaching, baselines.FullKVReuse,
	}
	for _, cfg := range dataset.Configs() {
		if maxCases > 0 {
			cfg.Cases = maxCases
		}
		ds := dataset.Generate(v, cfg)
		q := QualityEval{Ev: ev, DS: ds, TopK: 6, MaxCases: maxCases}
		quality := map[baselines.Scheme]float64{}
		for _, s := range schemes {
			quality[s] = q.Score(s)
		}
		for _, spec := range timing.Specs() {
			full := paperScaleTTFT(spec, baselines.FullRecompute)
			for _, s := range schemes {
				ttft := paperScaleTTFT(spec, s)
				t.Rows = append(t.Rows, []string{
					cfg.Name, spec.Name, string(s),
					f2(quality[s]), ds.Metric, f3(ttft), f2(full / ttft),
				})
			}
		}
	}
	return t
}

// Fig13 reproduces Figure 13: CacheBlend against the LangChain RAG
// alternatives MapReduce and MapRerank (quality and TTFT, Yi-34B scale).
func Fig13(maxCases int) *Table {
	ev, v := NewQAWorld()
	spec := timing.Yi34B
	t := &Table{
		Title:  "Figure 13: CacheBlend vs MapReduce / MapRerank (Yi-34B)",
		Header: []string{"dataset", "scheme", "quality", "metric", "ttft(s)"},
	}
	schemes := []baselines.Scheme{baselines.CacheBlend, baselines.MapReduce, baselines.MapRerank}
	for _, cfg := range dataset.Configs() {
		if maxCases > 0 {
			cfg.Cases = maxCases
		}
		ds := dataset.Generate(v, cfg)
		q := QualityEval{Ev: ev, DS: ds, TopK: 6, MaxCases: maxCases}
		for _, s := range schemes {
			t.Rows = append(t.Rows, []string{
				cfg.Name, string(s), f2(q.Score(s)), ds.Metric, f3(paperScaleTTFT(spec, s)),
			})
		}
	}
	return t
}
