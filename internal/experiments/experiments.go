// Package experiments contains one runner per figure of the paper's
// evaluation (§3 and §7). Each runner returns a Table whose rows carry the
// same series the paper plots; cmd/cacheblend prints them and
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Two measurement domains are combined, as documented in DESIGN.md:
// generation quality is measured for real on the constructed QA model
// (scaled-down contexts, real attention math), while TTFT/throughput come
// from the calibrated timing model and the discrete-event serving
// simulator speaking for the paper's full-size models.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/qamodel"
	"repro/internal/retrieval"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// QualityEval measures one scheme's mean quality on a dataset with top-k
// retrieval, using at most maxCases cases (0 = all).
type QualityEval struct {
	Ev *baselines.Evaluator
	DS *dataset.Dataset
	// TopK is the number of retrieved chunks per query.
	TopK int
	// MaxCases truncates the dataset (0 = all cases).
	MaxCases int
}

// cases returns the evaluation slice.
func (q QualityEval) cases() []dataset.Case {
	cs := q.DS.Cases
	if q.MaxCases > 0 && q.MaxCases < len(cs) {
		cs = cs[:q.MaxCases]
	}
	return cs
}

// Score returns the dataset-metric mean for scheme s. Cases run in
// parallel; the evaluator memoises chunk KV caches across schemes.
func (q QualityEval) Score(s baselines.Scheme) float64 {
	cs := q.cases()
	scores := make([]float64, len(cs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for i := range cs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			scores[i] = q.scoreCase(cs[i], s)
		}(i)
	}
	wg.Wait()
	return metrics.Mean(scores)
}

func (q QualityEval) scoreCase(c dataset.Case, s baselines.Scheme) float64 {
	r := retrieval.NewRetriever(128, c.ChunkTexts)
	ids := r.TopK(c.QueryText, q.TopK)
	chunks := make([][]int, 0, len(ids))
	for _, id := range ids {
		chunks = append(chunks, c.Chunks[id])
	}
	run := q.Ev.Answer(chunks, c.Query, s)
	pred := strings.Fields(run.Pred)
	ref := strings.Fields(c.Answer)
	if q.DS.Metric == "rouge-l" {
		return metrics.RougeL(pred, ref)
	}
	return metrics.F1(pred, ref)
}

// NewQAWorld builds the shared constructed model, vocabulary and
// evaluator used by the quality experiments.
func NewQAWorld() (*baselines.Evaluator, *qamodel.Vocab) {
	m, v := qamodel.Build()
	return baselines.NewEvaluator(m, v), v
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
