package experiments

import (
	"strconv"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/serve"
	"repro/internal/timing"
	"repro/internal/workload"
)

// FailoverSweep measures elasticity under the RouterSweep scenario: the
// same four-tenant bursty Zipf traffic over per-replica tier stacks, but
// with a membership schedule — replica 1 is killed at 40% of the trace
// and a cold replica joins at 70% — applied identically under each
// routing policy. The tenant rate is hotter than RouterSweep's so the
// cluster carries a real backlog: a kill against idle queues has nothing
// to re-route, and a cold joined node only attracts traffic once the
// incumbents' in-flight penalty outweighs their resident-chunk affinity.
//
// What the table shows: hashing reroutes the dead node's traffic to ring
// successors that have never seen those chunks, so every re-routed
// request pays cold tier reads (re-warm stall) until the survivors'
// caches converge; affinity re-scores the orphaned tenant onto the
// survivor with the most overlap — usually a node already serving
// neighbouring chunks of the same corpus — so its windowed TTFT returns
// to the pre-kill band sooner. The shared baseline loses a worker but no
// cache state, the bound for how much of the disruption is capacity loss
// versus locality loss.
func FailoverSweep(requests int) *Table {
	if requests <= 0 {
		requests = 600
	}
	warmup := requests / 6
	const (
		tenants = 4
		pool    = 48
		per     = 6
		skew    = 1.1
		rate    = 4.0 // per tenant; hot enough that queues back up
	)
	spec := timing.Mistral7B
	chunkBytes := spec.KVBytes(512)
	cfg := serve.Config{
		Spec:     spec,
		Scheme:   baselines.CacheBlend,
		Ratio:    0.15,
		Replicas: tenants,
		MaxBatch: 4,
		Tiers: []serve.TierConfig{
			{Device: device.GPUHBM, Capacity: 8 * chunkBytes},
			{Device: device.CPURAM, Capacity: pool * chunkBytes},
			{Device: device.SlowSSD},
		},
		ChunkTokens: 512,
		QueryTokens: 128,
	}
	policies := []string{serve.RouterShared, serve.RouterHash, serve.RouterAffinity}

	t := &Table{
		Title: "Failover sweep: kill at 40% + cold join at 70% of the trace, per routing policy (multi-tenant bursty Zipf, Mistral-7B, CacheBlend)",
		Header: []string{"router", "mean-ttft(s)", "p95-ttft(s)", "rerouted",
			"rewarm(s)", "recovery(s)", "hit"},
		Notes: []string{
			strconv.Itoa(tenants) + " tenants × disjoint " + strconv.Itoa(pool) + "-chunk corpora (Zipf " +
				f2(skew) + ", burst 4, " + f2(rate) + " req/s per tenant)",
			"replica 1 killed at 40% of the trace; one cold replica joins at 70% (same schedule under every policy)",
			"rerouted = requests drained from the dead node's queues and re-admitted through the router, original arrivals kept",
			"rewarm = tier-read stall attributable to re-routed requests — the cost of warming the survivors' caches",
			"recovery = time from the kill until 1 s-windowed mean TTFT returns within 20% of the pre-kill mean",
			"shared = one store, so a kill is pure capacity loss: the bound separating capacity from locality damage",
			"requests per cell: " + strconv.Itoa(requests) + ", first " + strconv.Itoa(warmup) +
				" excluded as warmup; every cell averages 3 seeds",
		},
	}
	// Each (policy, seed) cell computes its own horizon and membership
	// schedule from just the cell's seed, so the grid runs on the worker
	// pool and the per-policy seed averages fold in grid order.
	seeds := []int64{1, 2, 3}
	cells := pmap(len(policies)*len(seeds), func(i int) serve.Result {
		c := cfg
		c.Router = policies[i/len(seeds)]
		seed := seeds[i%len(seeds)]
		mix := make([]workload.Workload, tenants)
		for j := range mix {
			mix[j] = workload.Bursty{Rate: rate, Burst: 4,
				Chunks: workload.Chunks{Pool: pool, PerRequest: per, Skew: skew, Offset: j * pool}}
		}
		w := workload.MultiTenant{Tenants: mix}
		// The membership schedule tracks each seed's own horizon so the
		// kill and join land at the same trace fractions for every seed.
		horizon := lastArrival(w, requests, seed)
		c.Events = []serve.MembershipEvent{
			{At: 0.4 * horizon, Kill: 1},
			{At: 0.7 * horizon, Join: 1},
		}
		res, err := serve.RunWorkload(c, w, requests, warmup, seed)
		if err != nil {
			panic("experiments: failover sweep: " + err.Error())
		}
		return res
	})
	for pi, policy := range policies {
		var ttft, p95, rerouted, rewarm, recovery, hit float64
		for si := range seeds {
			res := cells[pi*len(seeds)+si]
			ttft += res.MeanTTFT
			p95 += res.P95TTFT
			rerouted += float64(res.ReroutedRequests)
			rewarm += res.ReWarmStall
			recovery += res.RecoveryTime
			hit += res.HitRate
		}
		n := float64(len(seeds))
		t.Rows = append(t.Rows, []string{
			policy, f3(ttft / n), f3(p95 / n), f2(rerouted / n),
			f2(rewarm / n), f2(recovery / n), pct(hit / n),
		})
	}
	return t
}

// lastArrival reports the horizon of the first n requests w yields under
// seed — the anchor the membership schedule's trace fractions scale from.
func lastArrival(w workload.Workload, n int, seed int64) float64 {
	reqs := w.Generate(n, seed)
	return reqs[len(reqs)-1].Arrival
}
