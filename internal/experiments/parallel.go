// Parallel sweep execution: every serving sweep in this package is a
// grid of independent simulation cells — one serve.Run/RunWorkload call
// per (config, workload, seed) tuple — whose only coupling is the order
// their aggregates appear in the output table. pmap runs those cells on
// a bounded worker pool and hands the results back in grid order, so a
// sweep's rendered table is byte-identical to the sequential loops it
// replaced: each cell is a self-contained simulation (own sim engine,
// own cluster, own RNGs seeded from the cell's seed), and aggregation
// stays sequential over the indexed result slice.
package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxParallel bounds how many simulation cells run concurrently across
// a sweep: 0 (the default) uses GOMAXPROCS workers, 1 forces the
// sequential order cells were scheduled in, any other positive value is
// an explicit cap. It is read once per pmap call; tests flip it to
// compare parallel against sequential output.
var MaxParallel = 0

// workers resolves MaxParallel against the cell count n.
func workers(n int) int {
	w := MaxParallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// pmap evaluates f(0) … f(n-1) on a bounded worker pool and returns the
// results indexed by argument — deterministic assembly regardless of
// completion order. With one worker it degenerates to a plain loop. A
// panic inside f is re-raised on the calling goroutine after the pool
// drains, so sweep cells keep their fail-fast behaviour under
// parallelism.
func pmap[T any](n int, f func(int) T) []T {
	out := make([]T, n)
	if w := workers(n); w > 1 {
		var (
			next     atomic.Int64
			wg       sync.WaitGroup
			panicMu  sync.Mutex
			panicked any
		)
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if panicked == nil {
							panicked = r
						}
						panicMu.Unlock()
					}
				}()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					out[i] = f(i)
				}
			}()
		}
		wg.Wait()
		if panicked != nil {
			panic(panicked)
		}
		return out
	}
	for i := range out {
		out[i] = f(i)
	}
	return out
}
