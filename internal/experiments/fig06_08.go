package experiments

import (
	"fmt"

	"repro/internal/blend"
	"repro/internal/dataset"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/qamodel"
	"repro/internal/tensor"
)

// devModels returns the three model depths used by the deviation studies
// (Figures 6–8): the constructed QA model with 4, 8 and 12 layers. Random
// transformers cannot reproduce these figures — their attention is
// unstructured so every token deviates equally; the constructed model has
// the trained-model property that matters, namely that cross-chunk
// influence concentrates in a small set of tokens (joins and chunk
// boundaries).
func devModels() []struct {
	name string
	m    *model.Model
	v    *qamodel.Vocab
} {
	out := make([]struct {
		name string
		m    *model.Model
		v    *qamodel.Vocab
	}, 0, 3)
	for _, extra := range []int{0, 4, 8} {
		m, v := qamodel.BuildDeep(extra)
		out = append(out, struct {
			name string
			m    *model.Model
			v    *qamodel.Vocab
		}{fmt.Sprintf("qa-%dlayer", qamodel.Layers+extra), m, v})
	}
	return out
}

// devInputs builds blend inputs from dataset cases (all chunks, no
// retrieval — the deviation studies measure cache math, not recall).
func devInputs(m *model.Model, v *qamodel.Vocab, n int) []blend.Input {
	cfg := dataset.MusiqueConfig()
	cfg.Cases = n
	cfg.ChunksPerCase = 5
	cfg.FactsPerChunk = 6
	ds := dataset.Generate(v, cfg)
	var ins []blend.Input
	for _, c := range ds.Cases {
		in := blend.Input{Model: m, SuffixTokens: c.Query}
		for _, ch := range c.Chunks {
			in.ChunkTokens = append(in.ChunkTokens, ch)
			in.Chunks = append(in.Chunks, m.Prefill(ch, 0, false).Cache)
		}
		ins = append(ins, in)
	}
	return ins
}

func fullTokens(in blend.Input) []int {
	var toks []int
	for _, c := range in.ChunkTokens {
		toks = append(toks, c...)
	}
	return append(toks, in.SuffixTokens...)
}

// attnDeviation averages the per-layer forward-attention deviation of the
// suffix rows against the full-prefill reference.
func attnDeviation(res *blend.Result, ref *model.PrefillResult) float64 {
	var sum float64
	for li := range res.Attn {
		refRows := tensor.New(res.Attn[li].Rows, res.Attn[li].Cols)
		for r := 0; r < refRows.Rows; r++ {
			copy(refRows.Row(r), ref.Attn[li].Row(res.SuffixStart+r))
		}
		sum += kvcache.AttentionDeviation(res.Attn[li], refRows)
	}
	return sum / float64(len(res.Attn))
}

// Fig06 reproduces Figure 6: forward-attention deviation versus recompute
// ratio, normalised to the full-reuse deviation (ratio 0 ⇒ 1.0). The
// random-selection column demonstrates Insight 1: the biggest drops come
// from recomputing the highest-KV-deviation tokens.
func Fig06() *Table {
	t := &Table{
		Title:  "Figure 6: attention deviation vs recompute ratio",
		Header: []string{"model", "ratio", "hkvd-selection", "random-selection"},
		Notes: []string{
			"values normalised to the ratio-0 (full reuse) deviation per model",
		},
	}
	flat := []float64{1.0}
	const nCases = 4
	for _, dm := range devModels() {
		ins := devInputs(dm.m, dm.v, nCases)
		refs := make([]*model.PrefillResult, len(ins))
		bases := make([]float64, len(ins))
		for i, in := range ins {
			refs[i] = dm.m.Prefill(fullTokens(in), 0, true)
			reuse := blend.Fuse(in, blend.Options{Mode: blend.ModeFullReuse, CollectAttention: true})
			bases[i] = attnDeviation(reuse, refs[i])
			if bases[i] == 0 {
				bases[i] = 1
			}
		}
		eval := func(r float64, random bool) float64 {
			if r == 0 {
				return 1
			}
			var sum float64
			for i, in := range ins {
				res := blend.Fuse(in, blend.Options{
					Mode: blend.ModeBlend, RecomputeRatio: r,
					ScheduleDecay: flat, CollectAttention: true,
					SelectionLayer:  qamodel.SelectionLayer,
					RandomSelection: random, RandomSeed: int64(i),
				})
				sum += attnDeviation(res, refs[i]) / bases[i]
			}
			return sum / float64(len(ins))
		}
		for _, r := range []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50} {
			t.Rows = append(t.Rows, []string{
				dm.name, pct(r), f3(eval(r, false)), f3(eval(r, true)),
			})
		}
	}
	return t
}

// Fig07 reproduces Figure 7: the distribution (CDF summary) of per-token
// KV deviation between the reused and fully recomputed caches on three
// consecutive layers of each model. A small fraction of tokens carries
// much higher deviation than the rest — the attention-sparsity argument
// for recomputing only 10–20% of tokens.
func Fig07() *Table {
	t := &Table{
		Title:  "Figure 7: per-token KV deviation distribution",
		Header: []string{"model", "layer", "p50", "p95", "p99", "max", "frac>10%-of-max"},
	}
	for _, dm := range devModels() {
		ins := devInputs(dm.m, dm.v, 3)
		layers := recordLayers(dm.m.Cfg.Layers)
		for _, li := range layers {
			var dev []float64
			for _, in := range ins {
				ref := dm.m.Prefill(fullTokens(in), 0, false)
				reuse := blend.Fuse(in, blend.Options{Mode: blend.ModeFullReuse})
				dev = append(dev, kvcache.KVDeviation(reuse.Cache, ref.Cache, li)[:reuse.SuffixStart]...)
			}
			max := metrics.Percentile(dev, 100)
			heavy := 0
			for _, d := range dev {
				if d > max/10 {
					heavy++
				}
			}
			t.Rows = append(t.Rows, []string{
				dm.name, fmt.Sprint(li),
				f3(metrics.Percentile(dev, 50)), f3(metrics.Percentile(dev, 95)),
				f3(metrics.Percentile(dev, 99)), f3(max),
				pct(float64(heavy) / float64(len(dev))),
			})
		}
	}
	return t
}

// recordLayers picks three representative record-bearing layers for a
// model depth (all layers ≥ 2 carry records in the constructed model).
func recordLayers(total int) []int {
	if total <= 4 {
		return []int{2, 3}
	}
	mid := (2 + total - 1) / 2
	return []int{2, mid, total - 1}
}

// Fig08 reproduces Figure 8: Spearman rank correlation of per-token KV
// deviation between neighbouring layers (Insight 2 — HKVD tokens persist
// across layers, which is what makes gradual filtering work).
func Fig08() *Table {
	t := &Table{
		Title:  "Figure 8: rank correlation of KV deviation between layer pairs",
		Header: []string{"model", "layer-pair", "spearman"},
	}
	for _, dm := range devModels() {
		ins := devInputs(dm.m, dm.v, 3)
		total := dm.m.Cfg.Layers
		var pairs [][2]int
		for li := 2; li < total-1; li++ {
			pairs = append(pairs, [2]int{li, li + 1})
		}
		if len(pairs) > 4 {
			pairs = []([2]int){pairs[0], pairs[len(pairs)/3], pairs[2*len(pairs)/3], pairs[len(pairs)-1]}
		}
		for _, p := range pairs {
			var a, b []float64
			for _, in := range ins {
				ref := dm.m.Prefill(fullTokens(in), 0, false)
				reuse := blend.Fuse(in, blend.Options{Mode: blend.ModeFullReuse})
				a = append(a, kvcache.KVDeviation(reuse.Cache, ref.Cache, p[0])[:reuse.SuffixStart]...)
				b = append(b, kvcache.KVDeviation(reuse.Cache, ref.Cache, p[1])[:reuse.SuffixStart]...)
			}
			t.Rows = append(t.Rows, []string{
				dm.name,
				fmt.Sprintf("%d vs %d", p[0], p[1]),
				f3(metrics.Spearman(a, b)),
			})
		}
	}
	return t
}
