package experiments

import (
	"strconv"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/serve"
	"repro/internal/timing"
	"repro/internal/workload"
)

// DecodeSweep holds the arrival rate fixed and raises the mean generation
// length from 0 (the legacy prefill-only runtime) to decode-dominated
// requests. It is the continuous-batching story RAGCache tells about RAG
// caching: CacheBlend's win is prefill — its mean-TTFT advantage over
// full recompute holds roughly constant (~3×) at every generation length
// — while per-token cost is paid by the decode phase all schemes share,
// so where the schemes sit 3× apart on TTFT they sit within ~1.2–1.4× on
// mean TBT, and normalized latency (end-to-end seconds per generated
// token) converges across schemes as decode comes to dominate the step
// mix. The per-phase step shares in the last column show the batch
// composition shifting from prefill-pure to decode-heavy.
func DecodeSweep(requests int) *Table {
	if requests <= 0 {
		requests = 600
	}
	warmup := requests / 3
	cfg := serve.Config{
		Spec:             timing.Mistral7B,
		Scheme:           baselines.CacheBlend,
		Ratio:            0.15,
		Device:           device.NVMeSSD,
		MaxBatch:         16,
		ChunkPool:        1500,
		ChunksPerRequest: 6,
		ChunkTokens:      512,
		QueryTokens:      32,
		Skew:             0.8,
	}
	// One fixed rate for every cell, low enough that even full recompute
	// with the longest generations keeps headroom (decode throughput is
	// batch-amortised; TTFT differences then reflect prefill cost, not
	// saturation collapse).
	const rate = 0.25
	chunks := workload.Chunks{Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest, Skew: cfg.Skew}
	schemes := []baselines.Scheme{baselines.CacheBlend, baselines.PrefixCaching, baselines.FullRecompute}
	lengths := []float64{0, 16, 64, 256}

	t := &Table{
		Title: "Decode sweep: TTFT vs TBT as generation length grows (Mistral-7B)",
		Header: []string{"scheme", "decode", "mean-ttft(s)", "p95-ttft(s)", "mean-tbt(s)",
			"p95-tbt(s)", "e2e(s)", "e2e/tok(s)", "tok/s", "steps p/d/m"},
		Notes: []string{
			"fixed " + f2(rate) + " req/s arrival rate and batch cap 16 for every cell",
			"decode = mean generation length (geometric); 0 = legacy prefill-only runtime",
			"e2e/tok = normalized latency (end-to-end seconds per generated token)",
			"steps p/d/m = share of executed steps that were prefill-only / decode-only / mixed",
			"requests per cell: " + strconv.Itoa(requests) + ", first " + strconv.Itoa(warmup) + " excluded as warmup",
		},
	}
	// The (scheme, length) cells run on the worker pool; rows assemble in
	// grid order.
	cells := pmap(len(schemes)*len(lengths), func(i int) serve.Result {
		c := cfg
		c.Scheme = schemes[i/len(lengths)]
		w := workload.Poisson{Rate: rate, Chunks: chunks}
		if mean := lengths[i%len(lengths)]; mean > 0 {
			w.Decode = workload.Decode{Mean: mean}
		}
		res, err := serve.RunWorkload(c, w, requests, warmup, 42)
		if err != nil {
			panic("experiments: decode sweep: " + err.Error())
		}
		return res
	})
	for si, scheme := range schemes {
		for li, mean := range lengths {
			res := cells[si*len(lengths)+li]
			shares, perTok := "-", "-"
			if res.OutputTokens > 0 {
				shares = pct(res.PrefillStepShare) + "/" + pct(res.DecodeStepShare) + "/" + pct(res.MixedStepShare)
				perTok = f3(res.MeanE2E / (1 + mean))
			}
			t.Rows = append(t.Rows, []string{
				string(scheme), strconv.Itoa(int(mean)), f3(res.MeanTTFT), f3(res.P95TTFT),
				f3(res.MeanTBT), f3(res.P95TBT), f3(res.MeanE2E), perTok, f2(res.TokenThroughput), shares,
			})
		}
	}
	return t
}
