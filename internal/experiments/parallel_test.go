package experiments

import (
	"strings"
	"testing"
)

func TestPmapOrderAndWorkers(t *testing.T) {
	defer func(old int) { MaxParallel = old }(MaxParallel)
	for _, mp := range []int{1, 2, 0} {
		MaxParallel = mp
		got := pmap(37, func(i int) int { return i * i })
		if len(got) != 37 {
			t.Fatalf("MaxParallel=%d: %d results, want 37", mp, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("MaxParallel=%d: result %d = %d, want %d", mp, i, v, i*i)
			}
		}
	}
	if out := pmap(0, func(int) int { return 0 }); len(out) != 0 {
		t.Fatalf("pmap(0) returned %d results", len(out))
	}
}

func TestPmapPanicPropagates(t *testing.T) {
	defer func(old int) { MaxParallel = old }(MaxParallel)
	for _, mp := range []int{1, 4} {
		MaxParallel = mp
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("MaxParallel=%d: panic did not propagate", mp)
				}
				if s, ok := r.(string); !ok || !strings.Contains(s, "cell 3") {
					t.Fatalf("MaxParallel=%d: unexpected panic value %v", mp, r)
				}
			}()
			pmap(8, func(i int) int {
				if i == 3 {
					panic("cell 3 failed")
				}
				return i
			})
		}()
	}
}

// TestParallelSequentialEquivalence is the sweep-parallelism acceptance
// check: every registered experiment, run sequentially (MaxParallel=1)
// and on the default worker pool, must render byte-identical text —
// each cell is an independent deterministic simulation, and the tables
// assemble in grid order either way.
func TestParallelSequentialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registered experiment twice")
	}
	opts := RunOpts{MaxCases: 2, Requests: 120}
	render := func(tabs []*Table) string {
		var b strings.Builder
		for _, tab := range tabs {
			b.WriteString(tab.Format())
			b.WriteByte('\n')
		}
		return b.String()
	}
	defer func(old int) { MaxParallel = old }(MaxParallel)
	for _, e := range All() {
		MaxParallel = 1
		seq := render(e.Run(opts))
		MaxParallel = 0
		par := render(e.Run(opts))
		if seq != par {
			t.Errorf("figure %s: parallel output diverges from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
				e.ID, seq, par)
		}
	}
}
