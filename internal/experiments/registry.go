package experiments

// RunOpts tunes experiment sizes: smaller values keep smoke runs fast,
// zero values mean "paper-scale defaults".
type RunOpts struct {
	// MaxCases caps dataset cases per quality experiment (0 = preset).
	MaxCases int
	// Requests sets the serving-simulation length (0 = default 1500).
	Requests int
}

// Entry describes one reproducible experiment.
type Entry struct {
	// ID is the figure identifier ("2", "6", ... "17").
	ID string
	// Desc is a one-line description.
	Desc string
	// Run produces the result tables.
	Run func(o RunOpts) []*Table
}

// All lists every reproduced figure in paper order.
func All() []Entry {
	return []Entry{
		{"2", "quality vs number of retrieved chunks (full recompute vs full reuse)",
			func(o RunOpts) []*Table { return []*Table{Fig02(o.MaxCases)} }},
		{"6", "attention deviation vs recompute ratio (+ random-selection ablation)",
			func(o RunOpts) []*Table { return []*Table{Fig06()} }},
		{"7", "per-token KV deviation distribution",
			func(o RunOpts) []*Table { return []*Table{Fig07()} }},
		{"8", "KV deviation rank correlation between layers",
			func(o RunOpts) []*Table { return []*Table{Fig08()} }},
		{"10", "pipelining and storage-device choice",
			func(o RunOpts) []*Table { return []*Table{Fig10(), Fig10b()} }},
		{"12", "quality and TTFT across datasets, models and schemes",
			func(o RunOpts) []*Table { return []*Table{Fig12(o.MaxCases)} }},
		{"13", "CacheBlend vs MapReduce / MapRerank",
			func(o RunOpts) []*Table { return []*Table{Fig13(o.MaxCases)} }},
		{"14", "TTFT vs request rate (serving simulation) + replica scaling + extended-workload quality",
			func(o RunOpts) []*Table {
				return []*Table{Fig14(o.Requests), Fig14Scaling(o.Requests), Fig14Quality(o.MaxCases)}
			}},
		{"15", "sensitivity to chunk count, chunk length, batch size",
			func(o RunOpts) []*Table { return []*Table{Fig15()} }},
		{"16", "quality vs TTFT across recompute ratios",
			func(o RunOpts) []*Table { return []*Table{Fig16(o.MaxCases)} }},
		{"17", "storage-device sensitivity (RAM vs slow disk) + tiered KV placement sweep",
			func(o RunOpts) []*Table { return []*Table{Fig17(o.MaxCases), Fig17Tiered(o.Requests)} }},
		{"burst", "TTFT vs burstiness at equal mean rate (workload-generator extension)",
			func(o RunOpts) []*Table { return []*Table{BurstSweep(o.Requests)} }},
		{"decode", "TTFT vs TBT as generation length grows (decode-phase continuous batching)",
			func(o RunOpts) []*Table { return []*Table{DecodeSweep(o.Requests)} }},
		{"sched", "scheduling policies vs burstiness: chunked prefill and decode-priority admission",
			func(o RunOpts) []*Table { return []*Table{SchedSweep(o.Requests)} }},
		{"prefetch", "async tier prefetch: compute overlap and predictive promotion under popularity drift",
			func(o RunOpts) []*Table { return []*Table{PrefetchSweep(o.Requests)} }},
		{"router", "cache-affinity replica routing: shared vs hash vs affinity on multi-tenant bursty traffic",
			func(o RunOpts) []*Table { return []*Table{RouterSweep(o.Requests)} }},
		{"failover", "replica failure and scale-out: membership kill/join, re-routing and re-warm cost per routing policy",
			func(o RunOpts) []*Table { return []*Table{FailoverSweep(o.Requests)} }},
		{"slo", "deadline-aware scheduling on closed-loop multi-tenant traffic: SLO attainment and goodput vs policy and load",
			func(o RunOpts) []*Table { return []*Table{SLOSweep(o.Requests)} }},
	}
}

// ByID returns the entry for a figure id.
func ByID(id string) (Entry, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}
