package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/serve"
	"repro/internal/timing"
)

// Fig17Tiered extends Figure 17's slow-device story from a single device
// choice to a placement hierarchy: the serving simulation replayed over
// tier splits of one fixed total KV budget (NVMe only, RAM+NVMe,
// HBM+RAM+NVMe) across request rates. Hot chunks get promoted onto the
// fast tiers, so at equal capacity the deeper stacks serve lower TTFT —
// the multi-tier generalisation of the paper's "faster storage helps
// until recompute hides it" observation.
func Fig17Tiered(requests int) *Table {
	if requests <= 0 {
		requests = 900
	}
	warmup := requests / 3
	spec := timing.Mistral7B
	const pool, chunks, chunkTokens = 1500, 6, 512
	total := int64(pool/2) * spec.KVBytes(chunkTokens) // half the corpus fits
	splits := []struct {
		name  string
		tiers []serve.TierConfig
	}{
		{"nvme-only", []serve.TierConfig{
			{Device: device.NVMeSSD, Capacity: total},
		}},
		{"ram+nvme", []serve.TierConfig{
			{Device: device.CPURAM, Capacity: total / 4},
			{Device: device.NVMeSSD, Capacity: total - total/4},
		}},
		{"hbm+ram+nvme", []serve.TierConfig{
			{Device: device.GPUHBM, Capacity: total / 8},
			{Device: device.CPURAM, Capacity: total / 4},
			{Device: device.NVMeSSD, Capacity: total - total/8 - total/4},
		}},
	}
	t := &Table{
		Title: "Figure 17 (tiered): TTFT vs request rate across KV placement hierarchies (Mistral-7B)",
		Header: []string{"placement", "rate(req/s)", "mean-ttft(s)", "p95(s)",
			"hit-rate", "tier-hits", "promotions", "demotions"},
		Notes: []string{
			fmt.Sprintf("equal total KV budget per split: %d contexts (%.1f GB)",
				pool/2, float64(total)/1e9),
			"CacheBlend, per-tier recompute ratio from the loading controller (floor 15%)",
			fmt.Sprintf("%d requests per point, first %d excluded as warmup", requests, warmup),
		},
	}
	base := serve.Config{
		Spec:             spec,
		Scheme:           baselines.CacheBlend,
		Ratio:            0.15,
		Device:           device.NVMeSSD,
		ChunkPool:        pool,
		ChunksPerRequest: chunks,
		ChunkTokens:      chunkTokens,
		QueryTokens:      32,
		Skew:             1.0,
	}
	// The capacity probe anchors every cell's rate, so it runs first; the
	// (split, rate) grid then runs on the worker pool in grid order.
	soloCap := serve.Capacity(base, 42)
	rates := []float64{soloCap * 0.5, soloCap, 2 * soloCap}
	cells := pmap(len(splits)*len(rates), func(i int) serve.Result {
		cfg := base
		cfg.Tiers = splits[i/len(rates)].tiers
		return serve.Run(cfg, rates[i%len(rates)], requests, warmup, 42)
	})
	for si, split := range splits {
		for ri := range rates {
			res := cells[si*len(rates)+ri]
			var promos, demos int64
			hits := make([]string, len(res.Tiers))
			for i, tu := range res.Tiers {
				hits[i] = fmt.Sprintf("%s:%d", tu.Device, tu.Hits)
				promos += tu.Promotions
				demos += tu.Demotions
			}
			t.Rows = append(t.Rows, []string{
				split.name, f3(res.Rate), f3(res.MeanTTFT), f3(res.P95TTFT),
				pct(res.HitRate), strings.Join(hits, " "),
				fmt.Sprint(promos), fmt.Sprint(demos),
			})
		}
	}
	return t
}
