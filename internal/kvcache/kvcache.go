// Package kvcache defines the KV-cache data structure shared by the
// transformer substrate, the CacheBlend fusor, the KV store and the
// serving simulator.
//
// A Cache holds, for every transformer layer, the key and value vectors of
// every token (already flattened across KV heads, i.e. each token's K row
// has KVHeads×HeadDim entries). Keys are stored *with RoPE applied*, the
// way production serving systems store them; re-using a cache at a
// different position therefore requires the rotation-shift of §4.3 /
// Appendix A, implemented here as ShiftPositions.
package kvcache

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/rope"
	"repro/internal/tensor"
)

// Cache is the KV cache of a token sequence across all layers.
type Cache struct {
	// NumLayers is the number of transformer layers.
	NumLayers int
	// KVDim is the flattened KV width per token (KVHeads × HeadDim).
	KVDim int
	// Tokens is the sequence length.
	Tokens int
	// BasePos is the absolute position of token 0 when the cache was
	// computed. Pre-computed chunk caches have BasePos 0; fusing them into
	// a longer input shifts them (see ShiftPositions).
	BasePos int
	// K[i] and V[i] are Tokens×KVDim matrices for layer i.
	K []*tensor.Matrix
	V []*tensor.Matrix
}

// New returns a zero-filled cache with the given geometry.
func New(numLayers, kvDim, tokens int) *Cache {
	c := &Cache{
		NumLayers: numLayers,
		KVDim:     kvDim,
		Tokens:    tokens,
		K:         make([]*tensor.Matrix, numLayers),
		V:         make([]*tensor.Matrix, numLayers),
	}
	for i := 0; i < numLayers; i++ {
		c.K[i] = tensor.New(tokens, kvDim)
		c.V[i] = tensor.New(tokens, kvDim)
	}
	return c
}

// Clone returns a deep copy of c.
func (c *Cache) Clone() *Cache {
	out := New(c.NumLayers, c.KVDim, c.Tokens)
	out.BasePos = c.BasePos
	for i := 0; i < c.NumLayers; i++ {
		out.K[i].CopyFrom(c.K[i])
		out.V[i].CopyFrom(c.V[i])
	}
	return out
}

// RowK returns the key row for token j on layer i (aliases storage).
func (c *Cache) RowK(i, j int) []float32 { return c.K[i].Row(j) }

// RowV returns the value row for token j on layer i (aliases storage).
func (c *Cache) RowV(i, j int) []float32 { return c.V[i].Row(j) }

// SetToken stores k and v for token j on layer i.
func (c *Cache) SetToken(i, j int, k, v []float32) {
	copy(c.K[i].Row(j), k)
	copy(c.V[i].Row(j), v)
}

// Concat concatenates caches along the token axis. All caches must share
// geometry. The result's BasePos is taken from the first cache.
func Concat(caches ...*Cache) *Cache {
	if len(caches) == 0 {
		panic("kvcache: Concat of zero caches")
	}
	layers, kvDim := caches[0].NumLayers, caches[0].KVDim
	total := 0
	for _, c := range caches {
		if c.NumLayers != layers || c.KVDim != kvDim {
			panic(fmt.Sprintf("kvcache: geometry mismatch %d/%d vs %d/%d",
				c.NumLayers, c.KVDim, layers, kvDim))
		}
		total += c.Tokens
	}
	out := New(layers, kvDim, total)
	out.BasePos = caches[0].BasePos
	for i := 0; i < layers; i++ {
		off := 0
		for _, c := range caches {
			copy(out.K[i].Data[off*kvDim:], c.K[i].Data)
			copy(out.V[i].Data[off*kvDim:], c.V[i].Data)
			off += c.Tokens
		}
	}
	return out
}

// Slice returns a deep copy of tokens [from, to) across all layers. The
// slice's BasePos is adjusted so absolute positions are preserved.
func (c *Cache) Slice(from, to int) *Cache {
	if from < 0 || to > c.Tokens || from > to {
		panic(fmt.Sprintf("kvcache: slice [%d,%d) out of range %d", from, to, c.Tokens))
	}
	out := New(c.NumLayers, c.KVDim, to-from)
	out.BasePos = c.BasePos + from
	for i := 0; i < c.NumLayers; i++ {
		copy(out.K[i].Data, c.K[i].Data[from*c.KVDim:to*c.KVDim])
		copy(out.V[i].Data, c.V[i].Data[from*c.KVDim:to*c.KVDim])
	}
	return out
}

// ShiftPositions re-rotates every stored key so the cache, originally
// computed with token 0 at BasePos, becomes valid with token 0 at newBase.
// kvHeads is the number of KV heads the flattened rows contain and headDim
// the per-head width; tab's dimension is the number of rotary dims per
// head (≤ headDim, supporting partial-rotary models). Values are
// position-independent and are not touched. This is CacheBlend's
// positional-recovery step — a single cheap rotation per key (paper §4.3
// footnote 3, Appendix A).
func (c *Cache) ShiftPositions(tab *rope.Table, kvHeads, headDim, newBase int) {
	if c.BasePos == newBase {
		return
	}
	rot := tab.HeadDim()
	if rot > headDim {
		panic(fmt.Sprintf("kvcache: rotary dims %d > head dim %d", rot, headDim))
	}
	if kvHeads*headDim != c.KVDim {
		panic(fmt.Sprintf("kvcache: %d heads × %d dim != kv dim %d", kvHeads, headDim, c.KVDim))
	}
	for i := 0; i < c.NumLayers; i++ {
		for j := 0; j < c.Tokens; j++ {
			row := c.K[i].Row(j)
			from := c.BasePos + j
			to := newBase + j
			for h := 0; h < kvHeads; h++ {
				tab.Shift(row[h*headDim:h*headDim+rot], from, to)
			}
		}
	}
	c.BasePos = newBase
}

// Grow extends the cache by extra zero-filled token rows on every layer.
// Decode uses this to append one position per generated token before the
// layer forward passes fill the new rows in.
func (c *Cache) Grow(extra int) {
	if extra <= 0 {
		return
	}
	newTokens := c.Tokens + extra
	for i := 0; i < c.NumLayers; i++ {
		nk := tensor.New(newTokens, c.KVDim)
		copy(nk.Data, c.K[i].Data)
		c.K[i] = nk
		nv := tensor.New(newTokens, c.KVDim)
		copy(nv.Data, c.V[i].Data)
		c.V[i] = nv
	}
	c.Tokens = newTokens
}

// SizeBytes returns the serialised size of the cache payload (K and V
// float32 data across all layers), the quantity that matters for storage
// devices and loading-delay estimation.
func (c *Cache) SizeBytes() int64 {
	return int64(c.NumLayers) * int64(c.Tokens) * int64(c.KVDim) * 4 * 2
}

// LayerBytes returns the serialised size of one layer's K+V data.
func (c *Cache) LayerBytes() int64 {
	return int64(c.Tokens) * int64(c.KVDim) * 4 * 2
}

const magic = uint32(0x4b564342) // "KVCB"

// MarshalBinary serialises the cache with a fixed header followed by raw
// little-endian float32 K and V planes, layer by layer.
func (c *Cache) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 24+c.SizeBytes())
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(c.NumLayers))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(c.KVDim))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(c.Tokens))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(int64(c.BasePos)))
	buf = append(buf, hdr[:]...)
	var scratch [4]byte
	appendPlane := func(m *tensor.Matrix) {
		for _, v := range m.Data {
			binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(v))
			buf = append(buf, scratch[:]...)
		}
	}
	for i := 0; i < c.NumLayers; i++ {
		appendPlane(c.K[i])
		appendPlane(c.V[i])
	}
	return buf, nil
}

// UnmarshalBinary parses data produced by MarshalBinary.
func (c *Cache) UnmarshalBinary(data []byte) error {
	if len(data) < 24 {
		return fmt.Errorf("kvcache: truncated header (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != magic {
		return fmt.Errorf("kvcache: bad magic %#x", binary.LittleEndian.Uint32(data[0:]))
	}
	layers := int(binary.LittleEndian.Uint32(data[4:]))
	kvDim := int(binary.LittleEndian.Uint32(data[8:]))
	tokens := int(binary.LittleEndian.Uint32(data[12:]))
	base := int(int64(binary.LittleEndian.Uint64(data[16:])))
	want := 24 + int64(layers)*int64(tokens)*int64(kvDim)*8
	if int64(len(data)) != want {
		return fmt.Errorf("kvcache: payload %d bytes, want %d", len(data), want)
	}
	*c = *New(layers, kvDim, tokens)
	c.BasePos = base
	off := 24
	readPlane := func(m *tensor.Matrix) {
		for i := range m.Data {
			m.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
	}
	for i := 0; i < layers; i++ {
		readPlane(c.K[i])
		readPlane(c.V[i])
	}
	return nil
}
