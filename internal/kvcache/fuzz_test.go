package kvcache

import (
	"testing"
)

// FuzzUnmarshalBinary: arbitrary bytes must never panic the decoder —
// either a valid cache comes back or an error does.
func FuzzUnmarshalBinary(f *testing.F) {
	good, _ := randomCache(1, 2, 4, 3).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:25])
	truncated := append([]byte(nil), good...)
	truncated = truncated[:len(truncated)-1]
	f.Add(truncated)
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Cache
		if err := c.UnmarshalBinary(data); err != nil {
			return
		}
		// A successfully decoded cache must round-trip identically.
		out, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if len(out) != len(data) {
			t.Fatalf("round trip changed length: %d -> %d", len(data), len(out))
		}
	})
}
