package kvcache

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rope"
	"repro/internal/tensor"
)

func randomCache(seed int64, layers, kvDim, tokens int) *Cache {
	g := tensor.NewRNG(seed)
	c := New(layers, kvDim, tokens)
	for i := 0; i < layers; i++ {
		g.FillNormal(c.K[i], 1)
		g.FillNormal(c.V[i], 1)
	}
	return c
}

func TestNewGeometry(t *testing.T) {
	c := New(3, 8, 5)
	if c.NumLayers != 3 || c.KVDim != 8 || c.Tokens != 5 {
		t.Fatalf("geometry wrong: %+v", c)
	}
	if len(c.K) != 3 || c.K[0].Rows != 5 || c.K[0].Cols != 8 {
		t.Fatal("layer matrices wrong shape")
	}
}

func TestSetTokenRowAccessors(t *testing.T) {
	c := New(2, 4, 3)
	k := []float32{1, 2, 3, 4}
	v := []float32{5, 6, 7, 8}
	c.SetToken(1, 2, k, v)
	if !reflect.DeepEqual(c.RowK(1, 2), k) || !reflect.DeepEqual(c.RowV(1, 2), v) {
		t.Fatal("SetToken/Row round trip failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := randomCache(1, 2, 4, 3)
	c.BasePos = 7
	d := c.Clone()
	if d.BasePos != 7 {
		t.Fatal("clone must keep BasePos")
	}
	d.K[0].Data[0] = 999
	if c.K[0].Data[0] == 999 {
		t.Fatal("clone must deep-copy")
	}
}

func TestConcatOrderAndSizes(t *testing.T) {
	a := randomCache(1, 2, 4, 3)
	b := randomCache(2, 2, 4, 2)
	c := Concat(a, b)
	if c.Tokens != 5 {
		t.Fatalf("concat tokens %d want 5", c.Tokens)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if !reflect.DeepEqual(c.RowK(i, j), a.RowK(i, j)) {
				t.Fatal("concat prefix rows differ")
			}
		}
		for j := 0; j < 2; j++ {
			if !reflect.DeepEqual(c.RowK(i, 3+j), b.RowK(i, j)) {
				t.Fatal("concat suffix rows differ")
			}
		}
	}
}

func TestConcatGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Concat(New(2, 4, 1), New(3, 4, 1))
}

func TestSliceAbsolutePositions(t *testing.T) {
	c := randomCache(3, 2, 4, 6)
	c.BasePos = 10
	s := c.Slice(2, 5)
	if s.Tokens != 3 || s.BasePos != 12 {
		t.Fatalf("slice tokens=%d base=%d", s.Tokens, s.BasePos)
	}
	if !reflect.DeepEqual(s.RowV(1, 0), c.RowV(1, 2)) {
		t.Fatal("slice rows differ")
	}
	// Slice is a deep copy.
	s.V[1].Data[0] = 42
	if c.RowV(1, 2)[0] == 42 {
		t.Fatal("slice must deep-copy")
	}
}

func TestConcatOfSlicesIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCache(seed, 2, 6, 8)
		r := Concat(c.Slice(0, 3), c.Slice(3, 8))
		for i := 0; i < 2; i++ {
			if tensor.MaxAbsDiff(r.K[i].Data, c.K[i].Data) != 0 {
				return false
			}
			if tensor.MaxAbsDiff(r.V[i].Data, c.V[i].Data) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeBytes(t *testing.T) {
	c := New(4, 16, 10)
	want := int64(4) * 10 * 16 * 4 * 2
	if c.SizeBytes() != want {
		t.Fatalf("SizeBytes=%d want %d", c.SizeBytes(), want)
	}
	if c.LayerBytes() != want/4 {
		t.Fatalf("LayerBytes=%d want %d", c.LayerBytes(), want/4)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := randomCache(9, 3, 8, 5)
	c.BasePos = 123
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != 24+c.SizeBytes() {
		t.Fatalf("marshal length %d want %d", len(data), 24+c.SizeBytes())
	}
	var d Cache
	if err := d.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if d.BasePos != 123 || d.Tokens != 5 || d.NumLayers != 3 || d.KVDim != 8 {
		t.Fatalf("header fields lost: %+v", d)
	}
	for i := 0; i < 3; i++ {
		if tensor.MaxAbsDiff(c.K[i].Data, d.K[i].Data) != 0 ||
			tensor.MaxAbsDiff(c.V[i].Data, d.V[i].Data) != 0 {
			t.Fatal("payload differs after round trip")
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var c Cache
	if err := c.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer must error")
	}
	good, _ := randomCache(1, 1, 2, 1).MarshalBinary()
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if err := c.UnmarshalBinary(bad); err == nil {
		t.Fatal("bad magic must error")
	}
	if err := c.UnmarshalBinary(good[:len(good)-4]); err == nil {
		t.Fatal("truncated payload must error")
	}
}

func TestShiftPositionsMatchesDirectRope(t *testing.T) {
	// A cache whose keys were RoPE'd at base 0, shifted to base 50, must
	// equal a cache whose keys were RoPE'd at base 50 directly.
	const headDim, kvHeads, tokens = 8, 2, 4
	tab := rope.NewTable(headDim, 10000)
	g := tensor.NewRNG(5)
	raw := make([][]float32, tokens)
	for j := range raw {
		raw[j] = make([]float32, kvHeads*headDim)
		for i := range raw[j] {
			raw[j][i] = g.Normal(0, 1)
		}
	}
	build := func(base int) *Cache {
		c := New(1, kvHeads*headDim, tokens)
		c.BasePos = base
		for j := 0; j < tokens; j++ {
			row := append([]float32(nil), raw[j]...)
			for h := 0; h < kvHeads; h++ {
				tab.Apply(row[h*headDim:(h+1)*headDim], base+j)
			}
			copy(c.K[0].Row(j), row)
		}
		return c
	}
	shifted := build(0)
	shifted.ShiftPositions(tab, kvHeads, headDim, 50)
	direct := build(50)
	if shifted.BasePos != 50 {
		t.Fatalf("BasePos=%d want 50", shifted.BasePos)
	}
	if tensor.MaxAbsDiff(shifted.K[0].Data, direct.K[0].Data) > 1e-4 {
		t.Fatal("shifted keys differ from directly positioned keys")
	}
}

func TestShiftPositionsNoopWhenSameBase(t *testing.T) {
	tab := rope.NewTable(4, 10000)
	c := randomCache(2, 1, 4, 3)
	before := c.K[0].Clone()
	c.ShiftPositions(tab, 1, 4, 0) // BasePos already 0
	if tensor.MaxAbsDiff(before.Data, c.K[0].Data) != 0 {
		t.Fatal("no-op shift must not modify keys")
	}
}

func TestKVDeviationZeroForIdentical(t *testing.T) {
	c := randomCache(3, 2, 4, 5)
	dev := KVDeviation(c, c.Clone(), 1)
	for _, d := range dev {
		if d != 0 {
			t.Fatal("identical caches must have zero deviation")
		}
	}
}

func TestKVDeviationLocalisesChange(t *testing.T) {
	a := randomCache(3, 2, 4, 5)
	b := a.Clone()
	b.K[1].Row(3)[0] += 10
	dev := KVDeviation(a, b, 1)
	for j, d := range dev {
		if j == 3 && d < 9 {
			t.Fatalf("token 3 deviation %v too small", d)
		}
		if j != 3 && d != 0 {
			t.Fatalf("token %d deviation %v should be 0", j, d)
		}
	}
	// Other layers unaffected.
	for _, d := range KVDeviation(a, b, 0) {
		if d != 0 {
			t.Fatal("layer 0 must be unaffected")
		}
	}
}

func TestAttentionDeviationBasics(t *testing.T) {
	ref := tensor.NewFrom(2, 2, []float32{1, 0, 0, 1})
	if AttentionDeviation(ref, ref) != 0 {
		t.Fatal("self deviation must be 0")
	}
	a := tensor.NewFrom(2, 2, []float32{0, 1, 1, 0})
	d := AttentionDeviation(a, ref)
	if d <= 0 {
		t.Fatal("different matrices must deviate")
	}
	// Known value: ||a-ref|| = 2, ||ref|| = sqrt(2) → sqrt(4/2)=sqrt2.
	if math.Abs(d-math.Sqrt2) > 1e-6 {
		t.Fatalf("deviation %v want sqrt(2)", d)
	}
}

func TestAttentionDeviationZeroRef(t *testing.T) {
	z := tensor.New(2, 2)
	if AttentionDeviation(z, z) != 0 {
		t.Fatal("0 vs 0 must be 0")
	}
	a := tensor.NewFrom(2, 2, []float32{1, 0, 0, 0})
	if !math.IsInf(AttentionDeviation(a, z), 1) {
		t.Fatal("nonzero vs zero ref must be +Inf")
	}
}

func TestMeanDeviation(t *testing.T) {
	if MeanDeviation(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if MeanDeviation([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestTopKIndices(t *testing.T) {
	dev := []float64{0.1, 5, 3, 5, 0.2}
	got := TopKIndices(dev, 3)
	// Highest first; tie between index 1 and 3 breaks toward lower index.
	want := []int{1, 3, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK=%v want %v", got, want)
	}
	if len(TopKIndices(dev, 99)) != len(dev) {
		t.Fatal("k must clamp to len")
	}
	if TopKIndices(dev, 0) != nil {
		t.Fatal("k=0 must return nil")
	}
}

func TestTopKContainsMaximaProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		dev := make([]float64, 20)
		for i := range dev {
			dev[i] = g.Float64()
		}
		k := 5
		top := TopKIndices(dev, k)
		if len(top) != k {
			return false
		}
		minTop := math.Inf(1)
		chosen := map[int]bool{}
		for _, i := range top {
			chosen[i] = true
			if dev[i] < minTop {
				minTop = dev[i]
			}
		}
		for i, d := range dev {
			if !chosen[i] && d > minTop {
				return false // an unchosen element beats a chosen one
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGrow(t *testing.T) {
	c := randomCache(4, 2, 3, 2)
	k0 := append([]float32(nil), c.RowK(1, 1)...)
	c.Grow(3)
	if c.Tokens != 5 {
		t.Fatalf("Tokens=%d want 5", c.Tokens)
	}
	if tensor.MaxAbsDiff(c.RowK(1, 1), k0) != 0 {
		t.Fatal("Grow must preserve existing rows")
	}
	for _, v := range c.RowK(0, 4) {
		if v != 0 {
			t.Fatal("new rows must be zero")
		}
	}
	c.Grow(0) // no-op
	if c.Tokens != 5 {
		t.Fatal("Grow(0) must be a no-op")
	}
}

func TestShiftPositionsPartialRotary(t *testing.T) {
	// With rotary dims < head dim, only the rotary prefix of each head
	// may change.
	tab := rope.NewTable(4, 10000) // 4 rotary dims
	const headDim, kvHeads = 8, 2
	c := randomCache(8, 1, kvHeads*headDim, 2)
	before := c.K[0].Clone()
	c.ShiftPositions(tab, kvHeads, headDim, 10)
	for j := 0; j < 2; j++ {
		row := c.K[0].Row(j)
		old := before.Row(j)
		for h := 0; h < kvHeads; h++ {
			for d := 4; d < headDim; d++ {
				if row[h*headDim+d] != old[h*headDim+d] {
					t.Fatal("non-rotary dims must be untouched")
				}
			}
		}
	}
	if tensor.MaxAbsDiff(c.K[0].Data, before.Data) == 0 {
		t.Fatal("rotary dims should have changed")
	}
}
