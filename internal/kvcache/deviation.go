package kvcache

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// KVDeviation returns the per-token KV deviation between caches a and b on
// layer i: Δkv(KVᵢ, KVᵢᶠᵘˡˡ)[j] in the paper's notation (Table 1). Each
// token's deviation is the L2 norm of the concatenated (K,V) difference,
// measuring how far that token's stored KV is from the ground truth.
func KVDeviation(a, b *Cache, layer int) []float64 {
	if a.Tokens != b.Tokens || a.KVDim != b.KVDim {
		panic(fmt.Sprintf("kvcache: deviation geometry mismatch %d/%d vs %d/%d",
			a.Tokens, a.KVDim, b.Tokens, b.KVDim))
	}
	out := make([]float64, a.Tokens)
	for j := 0; j < a.Tokens; j++ {
		dk := tensor.L2Diff(a.RowK(layer, j), b.RowK(layer, j))
		dv := tensor.L2Diff(a.RowV(layer, j), b.RowV(layer, j))
		out[j] = math.Sqrt(dk*dk + dv*dv)
	}
	return out
}

// AttentionDeviation returns Δattn(A, Afull): the L2 norm of the difference
// between two forward-attention matrices, normalised by the norm of the
// reference so values are comparable across models and sequence lengths
// (0 = identical, ~1 = uncorrelated).
func AttentionDeviation(a, ref *tensor.Matrix) float64 {
	if a.Rows != ref.Rows || a.Cols != ref.Cols {
		panic(fmt.Sprintf("kvcache: attention shape mismatch %dx%d vs %dx%d",
			a.Rows, a.Cols, ref.Rows, ref.Cols))
	}
	var diff, norm float64
	for i := range ref.Data {
		d := float64(a.Data[i]) - float64(ref.Data[i])
		diff += d * d
		norm += float64(ref.Data[i]) * float64(ref.Data[i])
	}
	if norm == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(diff / norm)
}

// MeanDeviation returns the average of per-token deviations — the scalar
// used when a single "how wrong is this cache" number is needed.
func MeanDeviation(dev []float64) float64 {
	if len(dev) == 0 {
		return 0
	}
	var s float64
	for _, d := range dev {
		s += d
	}
	return s / float64(len(dev))
}

// TopKIndices returns the indices of the k largest deviations, in
// decreasing order of deviation. Ties break toward the lower index so
// selection is deterministic. k is clamped to len(dev).
func TopKIndices(dev []float64, k int) []int {
	if k > len(dev) {
		k = len(dev)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(dev))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k is small relative to n in practice
	// (10–20% of tokens), and determinism matters more than asymptotics
	// at the sizes the simulator runs.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if dev[idx[j]] > dev[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
