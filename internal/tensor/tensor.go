// Package tensor provides the small set of dense float32 linear-algebra
// kernels needed by the transformer substrate: row-major matrices, matrix
// multiplication, softmax, RMS normalisation and activation functions.
//
// The package is deliberately minimal — it is a substrate for a scaled-down
// but real transformer, not a general numerics library. All operations are
// deterministic; random initialisation takes an explicit seed.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
//
// The zero value is an empty matrix. Use New or NewFrom to construct one
// with a defined shape.
type Matrix struct {
	Rows int
	Cols int
	Data []float32
}

// New returns a zero-filled rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewFrom wraps data as a rows×cols matrix without copying.
// len(data) must equal rows*cols.
func NewFrom(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set stores v at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: copy shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul returns a×b. a is n×k, b is k×m, result is n×m.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes a×b into dst, which must be a.Rows × b.Cols.
// The ikj loop order keeps the inner loop streaming over contiguous rows.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch dst %dx%d = %dx%d × %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// MatVec returns a×x where x is treated as a column vector of length a.Cols.
func MatVec(a *Matrix, x []float32) []float32 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: matvec shape mismatch %dx%d × %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float32, a.Rows)
	for i := 0; i < a.Rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}

// VecMat returns xᵀ×a where x has length a.Rows; the result has length a.Cols.
func VecMat(x []float32, a *Matrix) []float32 {
	if a.Rows != len(x) {
		panic(fmt.Sprintf("tensor: vecmat shape mismatch %d × %dx%d", len(x), a.Rows, a.Cols))
	}
	out := make([]float32, a.Cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := a.Row(i)
		for j := range out {
			out[j] += xv * row[j]
		}
	}
	return out
}

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Add computes dst[i] += src[i] element-wise.
func Add(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: add length mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(x []float32, alpha float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Softmax normalises x in place into a probability distribution using the
// numerically stable max-subtraction form.
func Softmax(x []float32) {
	if len(x) == 0 {
		return
	}
	maxv := x[0]
	for _, v := range x[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - maxv))
		x[i] = float32(e)
		sum += e
	}
	inv := float32(1.0 / sum)
	for i := range x {
		x[i] *= inv
	}
}

// RMSNorm applies root-mean-square layer normalisation with elementwise gain:
// out[i] = x[i] / rms(x) * gain[i]. If gain is nil a gain of 1 is used.
func RMSNorm(out, x, gain []float32, eps float32) {
	if len(out) != len(x) || (gain != nil && len(gain) != len(x)) {
		panic("tensor: rmsnorm length mismatch")
	}
	var ss float64
	for _, v := range x {
		ss += float64(v) * float64(v)
	}
	inv := float32(1.0 / math.Sqrt(ss/float64(len(x))+float64(eps)))
	if gain == nil {
		for i, v := range x {
			out[i] = v * inv
		}
		return
	}
	for i, v := range x {
		out[i] = v * inv * gain[i]
	}
}

// SiLU applies the sigmoid-linear unit x*sigmoid(x) element-wise in place.
func SiLU(x []float32) {
	for i, v := range x {
		x[i] = v / (1 + float32(math.Exp(float64(-v))))
	}
}

// Argmax returns the index of the largest element of x, or -1 if x is empty.
// Ties break toward the lower index, keeping decode deterministic.
func Argmax(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// L2 returns the Euclidean norm of x.
func L2(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// L2Diff returns the Euclidean norm of (a-b).
func L2Diff(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: l2diff length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the largest absolute element-wise difference between a
// and b.
func MaxAbsDiff(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: maxabsdiff length mismatch %d vs %d", len(a), len(b)))
	}
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}
