package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapes(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFrom(2, 2, []float32{1, 2, 3})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2)=%v want 7", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row aliasing broken: %v", row)
	}
	row[0] = 3
	if m.At(1, 0) != 3 {
		t.Fatal("Row must alias storage")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := NewFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := NewFrom(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("c[%d]=%v want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	g := NewRNG(1)
	a := g.NewNormal(4, 4, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if !almostEq(float64(c.Data[i]), float64(a.Data[i]), 1e-6) {
			t.Fatalf("identity multiply changed data at %d", i)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatVecVecMatAgree(t *testing.T) {
	g := NewRNG(2)
	a := g.NewNormal(5, 7, 1)
	x := make([]float32, 7)
	for i := range x {
		x[i] = g.Normal(0, 1)
	}
	got := MatVec(a, x)
	// Compare with explicit matmul against a column vector.
	xv := NewFrom(7, 1, append([]float32(nil), x...))
	want := MatMul(a, xv)
	for i := range got {
		if !almostEq(float64(got[i]), float64(want.Data[i]), 1e-5) {
			t.Fatalf("matvec[%d]=%v want %v", i, got[i], want.Data[i])
		}
	}
	y := make([]float32, 5)
	for i := range y {
		y[i] = g.Normal(0, 1)
	}
	got2 := VecMat(y, a)
	yv := NewFrom(1, 5, append([]float32(nil), y...))
	want2 := MatMul(yv, a)
	for i := range got2 {
		if !almostEq(float64(got2[i]), float64(want2.Data[i]), 1e-5) {
			t.Fatalf("vecmat[%d]=%v want %v", i, got2[i], want2.Data[i])
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	x := []float32{1, 2, 3, 4}
	Softmax(x)
	var sum float64
	prev := float64(-1)
	for _, v := range x {
		if v < 0 || v > 1 {
			t.Fatalf("softmax out of range: %v", v)
		}
		if float64(v) < prev {
			t.Fatal("softmax must be monotone in inputs")
		}
		prev = float64(v)
		sum += float64(v)
	}
	if !almostEq(sum, 1, 1e-5) {
		t.Fatalf("softmax sum=%v", sum)
	}
}

func TestSoftmaxStability(t *testing.T) {
	x := []float32{1000, 1001, 1002}
	Softmax(x)
	var sum float64
	for _, v := range x {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflow")
		}
		sum += float64(v)
	}
	if !almostEq(sum, 1, 1e-5) {
		t.Fatalf("softmax sum=%v", sum)
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	Softmax(nil) // must not panic
}

func TestSoftmaxSumProperty(t *testing.T) {
	f := func(in []float32) bool {
		if len(in) == 0 {
			return true
		}
		x := make([]float32, len(in))
		for i, v := range in {
			// Clamp to a sane range; quick generates extreme float32s.
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			if v > 100 {
				v = 100
			}
			if v < -100 {
				v = -100
			}
			x[i] = v
		}
		Softmax(x)
		var sum float64
		for _, v := range x {
			if v < 0 {
				return false
			}
			sum += float64(v)
		}
		return almostEq(sum, 1, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRMSNorm(t *testing.T) {
	x := []float32{3, 4}
	out := make([]float32, 2)
	RMSNorm(out, x, nil, 0)
	// rms = sqrt((9+16)/2) = sqrt(12.5)
	rms := math.Sqrt(12.5)
	if !almostEq(float64(out[0]), 3/rms, 1e-5) || !almostEq(float64(out[1]), 4/rms, 1e-5) {
		t.Fatalf("rmsnorm got %v", out)
	}
	// With gain.
	gain := []float32{2, 0.5}
	RMSNorm(out, x, gain, 0)
	if !almostEq(float64(out[0]), 2*3/rms, 1e-5) || !almostEq(float64(out[1]), 0.5*4/rms, 1e-5) {
		t.Fatalf("rmsnorm with gain got %v", out)
	}
}

func TestRMSNormUnitOutputNorm(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		x := make([]float32, 16)
		for i := range x {
			x[i] = g.Normal(0, 3)
		}
		out := make([]float32, 16)
		RMSNorm(out, x, nil, 1e-6)
		// After RMS norm the mean square is ~1, so L2 ≈ sqrt(n).
		return almostEq(L2(out), math.Sqrt(16), 0.05)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSiLU(t *testing.T) {
	x := []float32{0}
	SiLU(x)
	if x[0] != 0 {
		t.Fatalf("silu(0)=%v", x[0])
	}
	x = []float32{10}
	SiLU(x)
	if !almostEq(float64(x[0]), 10, 1e-3) {
		t.Fatalf("silu(10)=%v want ≈10", x[0])
	}
	x = []float32{-10}
	SiLU(x)
	if !almostEq(float64(x[0]), 0, 1e-3) {
		t.Fatalf("silu(-10)=%v want ≈0", x[0])
	}
}

func TestArgmax(t *testing.T) {
	if Argmax(nil) != -1 {
		t.Fatal("argmax(nil) != -1")
	}
	if Argmax([]float32{1, 5, 3}) != 1 {
		t.Fatal("argmax wrong")
	}
	// Tie breaks low.
	if Argmax([]float32{5, 5}) != 0 {
		t.Fatal("argmax tie must break low")
	}
}

func TestL2AndDiff(t *testing.T) {
	if !almostEq(L2([]float32{3, 4}), 5, 1e-9) {
		t.Fatal("L2 wrong")
	}
	if !almostEq(L2Diff([]float32{1, 1}, []float32{1, 1}), 0, 1e-9) {
		t.Fatal("L2Diff of equal vectors must be 0")
	}
	if !almostEq(L2Diff([]float32{0, 0}, []float32{3, 4}), 5, 1e-9) {
		t.Fatal("L2Diff wrong")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	got := MaxAbsDiff([]float32{1, 2, 3}, []float32{1, 5, 2})
	if !almostEq(got, 3, 1e-9) {
		t.Fatalf("MaxAbsDiff=%v want 3", got)
	}
}

func TestAXPYAddScale(t *testing.T) {
	y := []float32{1, 2}
	AXPY(2, []float32{3, 4}, y)
	if y[0] != 7 || y[1] != 10 {
		t.Fatalf("axpy got %v", y)
	}
	Add(y, []float32{1, 1})
	if y[0] != 8 || y[1] != 11 {
		t.Fatalf("add got %v", y)
	}
	Scale(y, 0.5)
	if y[0] != 4 || y[1] != 5.5 {
		t.Fatalf("scale got %v", y)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).NewNormal(3, 3, 1)
	b := NewRNG(42).NewNormal(3, 3, 1)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must produce identical weights")
		}
	}
	c := NewRNG(43).NewNormal(3, 3, 1)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should produce different weights")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewFrom(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestMatMulAssociativityWithVector(t *testing.T) {
	// (A×B)×x == A×(B×x) — property test over random seeds.
	f := func(seed int64) bool {
		g := NewRNG(seed)
		a := g.NewNormal(4, 5, 1)
		b := g.NewNormal(5, 6, 1)
		x := make([]float32, 6)
		for i := range x {
			x[i] = g.Normal(0, 1)
		}
		left := MatVec(MatMul(a, b), x)
		right := MatVec(a, MatVec(b, x))
		for i := range left {
			if !almostEq(float64(left[i]), float64(right[i]), 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
