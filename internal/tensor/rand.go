package tensor

import "math/rand"

// RNG is a deterministic random source for weight initialisation. All model
// weights in this repository are derived from explicit seeds so that every
// experiment is exactly reproducible across runs and machines.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Normal returns a sample from N(mean, std²).
func (g *RNG) Normal(mean, std float64) float32 {
	return float32(g.r.NormFloat64()*std + mean)
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// FillNormal fills m with samples from N(0, std²).
func (g *RNG) FillNormal(m *Matrix, std float64) {
	for i := range m.Data {
		m.Data[i] = g.Normal(0, std)
	}
}

// NewNormal returns a rows×cols matrix filled with N(0, std²) samples.
func (g *RNG) NewNormal(rows, cols int, std float64) *Matrix {
	m := New(rows, cols)
	g.FillNormal(m, std)
	return m
}
