package controller_test

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/timing"
)

// Example shows the loading controller's two decisions for a 4K-token
// context: which recompute ratio a device affords, and which device to
// store KV caches on for the quality-floor ratio.
func Example() {
	ctrl := controller.Controller{Spec: timing.Llama70B}

	// A fast tier cannot hide more than the quality floor.
	fmt.Printf("ratio on cpu-ram: %.0f%%\n", ctrl.PickRatio(4096, device.CPURAM)*100)

	// The cheapest device whose loading hides under 15% recompute.
	pick, ok := ctrl.PickDevice(device.Tiers(), 4096, 0.15)
	fmt.Printf("device for 15%%: %s (viable=%v)\n", pick.Name, ok)
	// Output:
	// ratio on cpu-ram: 15%
	// device for 15%: slow-ssd (viable=true)
}
