// Package controller implements CacheBlend's loading controller (§5.1):
// given delay estimators for selective recompute and KV loading, it picks
// (a) the recompute ratio a storage device can hide at no extra TTFT cost
// and (b) the cheapest storage device that hides a fixed recompute ratio.
package controller

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/timing"
)

// DefaultQualityFloor is r*, the minimal recompute ratio that empirically
// keeps generation quality indistinguishable from full prefill (the paper
// reads 15% off Figure 16).
const DefaultQualityFloor = 0.15

// Controller owns the estimator inputs.
type Controller struct {
	// Spec is the served model.
	Spec timing.Spec
	// QualityFloor is r*; zero means DefaultQualityFloor.
	QualityFloor float64
}

// floor returns the effective r*.
func (c Controller) floor() float64 {
	if c.QualityFloor > 0 {
		return c.QualityFloor
	}
	return DefaultQualityFloor
}

// PickRatio returns the recompute ratio for a context of L tokens stored
// on d: the largest ratio whose per-layer recompute delay stays hidden
// under the per-layer loading delay, but never below the quality floor r*
// (§5.1: "takes the max of r% and r*%"). The result is capped at 1.
func (c Controller) PickRatio(L int, d device.Device) float64 {
	// Per-layer pipelining hides recompute iff
	// RecomputeLayer(r) ≤ LoadLayer  ⇔  r ≤ Layers·LoadLayer/Prefill.
	prefill := c.Spec.Prefill(L)
	var r float64
	if prefill > 0 {
		r = float64(c.Spec.Layers) * c.Spec.LoadLayer(L, d) / prefill
	}
	if r < c.floor() {
		r = c.floor()
	}
	if r > 1 {
		r = 1
	}
	return r
}

// ExtraDelay returns the TTFT increase of running ratio r on device d
// relative to the pure loading floor — zero when loading fully hides the
// recompute.
func (c Controller) ExtraDelay(r float64, L int, d device.Device) float64 {
	pipelined := c.Spec.TTFT(r, L, d, true)
	// The loading floor issues one read per layer (as the pipeline does),
	// so it pays the per-operation latency Layers times.
	floor := float64(c.Spec.Layers)*c.Spec.LoadLayer(L, d) +
		c.Spec.RecomputeLayer(r, L) + c.Spec.DecodeSecPerToken
	if pipelined < floor {
		return 0
	}
	return pipelined - floor
}

// PickDevice returns the cheapest device from candidates whose loading
// delay is hidden by recomputing at ratio r, i.e. T_recompute ≥ T_load
// per layer (§5.1, Figure 10(b)). If no candidate qualifies it returns
// the fastest candidate and ok=false.
func (c Controller) PickDevice(candidates []device.Device, L int, r float64) (device.Device, bool) {
	if len(candidates) == 0 {
		panic("controller: no candidate devices")
	}
	byCost := append([]device.Device(nil), candidates...)
	sort.Slice(byCost, func(i, j int) bool {
		return byCost[i].CostPerGBMonth < byCost[j].CostPerGBMonth
	})
	comp := c.Spec.RecomputeLayer(r, L)
	for _, d := range byCost {
		if c.Spec.LoadLayer(L, d) <= comp {
			return d, true
		}
	}
	fastest := candidates[0]
	for _, d := range candidates[1:] {
		if c.Spec.LoadLayer(L, d) < c.Spec.LoadLayer(L, fastest) {
			fastest = d
		}
	}
	return fastest, false
}

// Plan is the controller's decision for one request.
type Plan struct {
	Device   device.Device
	Ratio    float64
	TTFT     float64 // pipelined TTFT estimate
	StoreUSD float64 // storage cost of the context's KV for StoreHours
}

// StoreHours is the accounting window for Plan.StoreUSD.
const StoreHours = 24 * 30

// PlanRequest runs both controller decisions for a context of L tokens:
// choose the cheapest viable device at the quality-floor ratio, then relax
// the ratio up to whatever that device's loading can hide.
func (c Controller) PlanRequest(candidates []device.Device, L int) Plan {
	d, ok := c.PickDevice(candidates, L, c.floor())
	r := c.floor()
	if ok {
		r = c.PickRatio(L, d)
	}
	return Plan{
		Device:   d,
		Ratio:    r,
		TTFT:     c.Spec.TTFT(r, L, d, true),
		StoreUSD: d.StorageCost(c.Spec.KVBytes(L), StoreHours),
	}
}

// String renders a plan for logs.
func (p Plan) String() string {
	return fmt.Sprintf("device=%s ratio=%.0f%% ttft=%.3fs store=$%.4f/mo",
		p.Device.Name, p.Ratio*100, p.TTFT, p.StoreUSD)
}
