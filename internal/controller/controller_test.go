package controller

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/timing"
)

func TestPickRatioFloorsAtQualityMinimum(t *testing.T) {
	// A very fast device (RAM) loads faster than any useful recompute, so
	// the ratio must floor at r* (the paper: "even if the storage device
	// is a fast device (ex. CPU RAM), the delay will be lower-bounded by
	// the minimal recomputation to guarantee quality").
	c := Controller{Spec: timing.Llama70B}
	r := c.PickRatio(4096, device.GPUHBM)
	if r != DefaultQualityFloor {
		t.Fatalf("ratio on HBM = %v, want floor %v", r, DefaultQualityFloor)
	}
}

func TestPickRatioGrowsOnSlowDevices(t *testing.T) {
	c := Controller{Spec: timing.Mistral7B}
	slow := c.PickRatio(4096, device.SlowDisk)
	nvme := c.PickRatio(4096, device.NVMeSSD)
	if slow <= nvme {
		t.Fatalf("slower device should afford more recompute: disk %v vs nvme %v", slow, nvme)
	}
	if slow > 1 {
		t.Fatal("ratio must cap at 1")
	}
}

func TestPickRatioHidesRecompute(t *testing.T) {
	// Wherever the picked ratio exceeds the floor, the per-layer
	// recompute must be (approximately) hidden by per-layer loading.
	c := Controller{Spec: timing.Mistral7B}
	for _, d := range []device.Device{device.NVMeSSD, device.SlowSSD, device.SlowDisk} {
		r := c.PickRatio(4096, d)
		if r <= DefaultQualityFloor {
			continue
		}
		comp := c.Spec.RecomputeLayer(r, 4096)
		load := c.Spec.LoadLayer(4096, d)
		if comp > load*1.01 {
			t.Fatalf("%s: recompute/layer %.4f not hidden by load/layer %.4f", d.Name, comp, load)
		}
	}
}

func TestCustomQualityFloor(t *testing.T) {
	c := Controller{Spec: timing.Yi34B, QualityFloor: 0.3}
	if r := c.PickRatio(4096, device.GPUHBM); r != 0.3 {
		t.Fatalf("custom floor ignored: %v", r)
	}
}

func TestPickDeviceCheapestViable(t *testing.T) {
	// At r=15% for Llama-70B, recompute/layer ≈ 7ms: NVMe (≈1.8ms/layer)
	// and even slower tiers qualify; the controller must take the
	// cheapest qualifying one, not the fastest.
	c := Controller{Spec: timing.Llama70B}
	cands := []device.Device{device.CPURAM, device.NVMeSSD, device.SlowSSD}
	d, ok := c.PickDevice(cands, 4096, 0.15)
	if !ok {
		t.Fatal("expected a viable device")
	}
	comp := c.Spec.RecomputeLayer(0.15, 4096)
	if c.Spec.LoadLayer(4096, d) > comp {
		t.Fatalf("picked device %s does not hide loading", d.Name)
	}
	// Among viable candidates, the pick must be the cheapest.
	for _, cand := range cands {
		if c.Spec.LoadLayer(4096, cand) <= comp && cand.CostPerGBMonth < d.CostPerGBMonth {
			t.Fatalf("cheaper viable device %s not picked over %s", cand.Name, d.Name)
		}
	}
}

func TestPickDeviceFallsBackToFastest(t *testing.T) {
	// A tiny model recomputing 1% leaves almost no loading budget; if no
	// candidate hides it, the controller returns the fastest and ok=false.
	c := Controller{Spec: timing.Mistral7B}
	cands := []device.Device{device.SlowDisk, device.ObjectStore}
	d, ok := c.PickDevice(cands, 4096, 0.01)
	if ok {
		t.Fatal("no device should hide 1% recompute for a 7B")
	}
	if d.Name != device.SlowDisk.Name {
		t.Fatalf("fallback must be the fastest candidate, got %s", d.Name)
	}
}

func TestPlanRequest(t *testing.T) {
	c := Controller{Spec: timing.Yi34B}
	p := c.PlanRequest(device.Tiers(), 3072)
	if p.Ratio < DefaultQualityFloor {
		t.Fatalf("plan ratio %v below floor", p.Ratio)
	}
	if p.TTFT <= 0 || p.StoreUSD < 0 {
		t.Fatalf("plan has nonsense numbers: %+v", p)
	}
	if !strings.Contains(p.String(), "device=") {
		t.Fatal("plan string must mention the device")
	}
	// The plan must beat full prefill.
	if p.TTFT >= c.Spec.FullPrefillTTFT(3072) {
		t.Fatalf("planned TTFT %.3f not better than full prefill", p.TTFT)
	}
}

func TestExtraDelayZeroWhenHidden(t *testing.T) {
	c := Controller{Spec: timing.Mistral7B}
	// 15% on a 1 GB/s SSD is the paper's "no extra delay" example.
	if d := c.ExtraDelay(0.15, 4096, device.SlowSSD); d > 1e-6 {
		t.Fatalf("15%% on slow SSD should be hidden, extra=%v", d)
	}
}
