package device

import (
	"math"
	"testing"
)

func TestReadWriteTime(t *testing.T) {
	d := Device{Name: "x", ReadBW: 1e9, WriteBW: 0.5e9, Latency: 0.001}
	if got := d.ReadTime(1e9); math.Abs(got-1.001) > 1e-9 {
		t.Fatalf("ReadTime=%v want 1.001", got)
	}
	if got := d.WriteTime(1e9); math.Abs(got-2.001) > 1e-9 {
		t.Fatalf("WriteTime=%v want 2.001", got)
	}
	if d.ReadTime(0) != 0 || d.WriteTime(-5) != 0 {
		t.Fatal("zero/negative sizes must cost nothing")
	}
}

func TestStorageCost(t *testing.T) {
	d := Device{Name: "x", ReadBW: 1, WriteBW: 1, CostPerGBMonth: 3}
	// 1 GB for a month = $3.
	if got := d.StorageCost(1e9, 30*24); math.Abs(got-3) > 1e-9 {
		t.Fatalf("StorageCost=%v want 3", got)
	}
	// Half a month = $1.5.
	if got := d.StorageCost(1e9, 15*24); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("StorageCost=%v want 1.5", got)
	}
}

func TestTiersValidAndOrdered(t *testing.T) {
	tiers := Tiers()
	if len(tiers) < 5 {
		t.Fatalf("want ≥5 tiers, got %d", len(tiers))
	}
	for i, d := range tiers {
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			// Faster tiers cost more; the inventory is ordered by speed.
			if tiers[i-1].ReadBW < d.ReadBW {
				t.Fatalf("tiers not speed-ordered at %d", i)
			}
			if tiers[i-1].CostPerGBMonth < d.CostPerGBMonth {
				t.Fatalf("faster tier %s should not be cheaper than %s", tiers[i-1].Name, d.Name)
			}
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("nvme-ssd")
	if err != nil || d.Name != "nvme-ssd" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("floppy"); err == nil {
		t.Fatal("unknown tier must error")
	}
}

func TestValidateRejectsBadDevices(t *testing.T) {
	bad := []Device{
		{},
		{Name: "x", ReadBW: 0, WriteBW: 1},
		{Name: "x", ReadBW: 1, WriteBW: 1, Latency: -1},
		{Name: "x", ReadBW: 1, WriteBW: 1, CostPerGBMonth: -1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}
