// Package device models the storage tiers a KV cache can live on: GPU
// memory, CPU RAM, NVMe SSD, slower disks and object storage. Each device
// has a read/write bandwidth, a per-operation latency and a capacity
// cost; the loading controller (§5.1) uses these to decide where KV caches
// should be stored and how much recompute a device's loading delay can
// hide.
//
// Bandwidth figures follow the paper's testbed where given (NVMe measured
// at 4.8 GB/s, a "slower disk" at 4 Gbps in Figure 17, a 1 GB/s SSD in the
// Figure 10 discussion); costs are representative cloud prices, only their
// ordering matters for the controller's choices.
package device

import "fmt"

// Device describes one storage tier.
type Device struct {
	// Name identifies the device in tables and configs.
	Name string
	// ReadBW and WriteBW are sustained bandwidths in bytes/second.
	ReadBW, WriteBW float64
	// Latency is the fixed per-operation latency in seconds.
	Latency float64
	// CostPerGBMonth is the storage price in $/GB/month.
	CostPerGBMonth float64
}

// ReadTime returns the seconds needed to read n bytes.
func (d Device) ReadTime(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return d.Latency + float64(n)/d.ReadBW
}

// WriteTime returns the seconds needed to write n bytes.
func (d Device) WriteTime(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return d.Latency + float64(n)/d.WriteBW
}

// StorageCost returns the dollar cost of holding n bytes for hours h.
func (d Device) StorageCost(n int64, hours float64) float64 {
	const hoursPerMonth = 30 * 24
	gb := float64(n) / 1e9
	return gb * d.CostPerGBMonth * hours / hoursPerMonth
}

// Validate reports the first structural problem.
func (d Device) Validate() error {
	switch {
	case d.Name == "":
		return fmt.Errorf("device: empty name")
	case d.ReadBW <= 0 || d.WriteBW <= 0:
		return fmt.Errorf("device %q: bandwidths must be positive", d.Name)
	case d.Latency < 0:
		return fmt.Errorf("device %q: negative latency", d.Name)
	case d.CostPerGBMonth < 0:
		return fmt.Errorf("device %q: negative cost", d.Name)
	}
	return nil
}

// The standard tier inventory used across experiments.
var (
	// GPUHBM is on-accelerator memory: KV already resident, no transfer.
	GPUHBM = Device{Name: "gpu-hbm", ReadBW: 1.5e12, WriteBW: 1.5e12, Latency: 1e-6, CostPerGBMonth: 30}
	// CPURAM is host memory reached over PCIe.
	CPURAM = Device{Name: "cpu-ram", ReadBW: 25e9, WriteBW: 25e9, Latency: 10e-6, CostPerGBMonth: 4}
	// NVMeSSD matches the paper's measured 4.8 GB/s drive.
	NVMeSSD = Device{Name: "nvme-ssd", ReadBW: 4.8e9, WriteBW: 2.0e9, Latency: 100e-6, CostPerGBMonth: 0.25}
	// SlowSSD is the 1 GB/s device of the Figure 10 walkthrough.
	SlowSSD = Device{Name: "slow-ssd", ReadBW: 1.0e9, WriteBW: 0.8e9, Latency: 150e-6, CostPerGBMonth: 0.12}
	// SlowDisk is Figure 17's 4 Gbps (0.5 GB/s) tier.
	SlowDisk = Device{Name: "slow-disk", ReadBW: 0.5e9, WriteBW: 0.4e9, Latency: 2e-3, CostPerGBMonth: 0.04}
	// ObjectStore is a remote blob store.
	ObjectStore = Device{Name: "object-store", ReadBW: 0.2e9, WriteBW: 0.1e9, Latency: 30e-3, CostPerGBMonth: 0.02}
)

// Tiers lists the inventory from fastest to cheapest.
func Tiers() []Device {
	return []Device{GPUHBM, CPURAM, NVMeSSD, SlowSSD, SlowDisk, ObjectStore}
}

// ByName returns the named tier from Tiers.
func ByName(name string) (Device, error) {
	for _, d := range Tiers() {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("device: unknown tier %q", name)
}
