// Package qamodel builds a transformer with hand-constructed weights that
// performs two-hop entity question answering through attention alone. It is
// the reproduction's stand-in for a pretrained LLM: answer quality is a real
// measurement (F1 against ground truth), not a proxy, and — crucially — the
// quality *causally depends on cross-chunk attention*, which is exactly the
// effect CacheBlend's selective recompute must preserve (paper §3.3, Figures
// 3 and 4).
//
// # World model
//
// Text is built from facts of the form "<value> <rel> <subject> ." meaning
// rel(subject) = value. A two-hop question "query relA - : qent relB ?" asks
// for relB(relA(qent)): hop 1 finds the bridge entity via a fact
// "<bridge> <relA> <qent> .", hop 2 finds the answer via
// "<answer> <relB> <bridge> .".
//
// A hop-2 fact can be *split* across two chunks through a role indirection:
//
//	anchor: "<chief-i> <relB> <bridge> ."    (key + relation, one chunk)
//	value:  "<answer> fills <the-chief-i> ." (the answer, another chunk)
//
// The anchor half carries the record key (bridge, relB) but an empty value;
// the value half carries the answer but neither key nor queried relation
// ("fills" is never looked up). Joining the halves requires attention
// BETWEEN chunks: whichever half appears later in the fused input attends
// to the earlier half at layer 1 and completes its record. Chunk-local KV
// precompute (full KV reuse) cannot perform this join, so the lookup either
// hits a key with an empty payload or never sees the answer at all;
// CacheBlend recomputes the joining token (it has the highest KV deviation)
// and recovers the answer.
//
// # Mechanism by layer
//
//	L0 GATHER:  each fact's subject token collects its fact's value and
//	            relation via short-range attention (RoPE phase-shifted
//	            kernels peaked at the right relative offset). The query's
//	            "?" token collects qent / relA / relB the same way.
//	L1 JOIN:    role references and declarations find each other by role
//	            code (content match) and exchange fields; both orders work.
//	L2 RECORDS+HOP1: every token's K/V expose its (key, rel) → value
//	            record; "?" looks up (qent, relA) and stores the bridge.
//	L3 RECORDS+HOP2: "?" looks up (bridge, relB) and stores the answer,
//	            which the LM head reads out as a single generated token.
//
// Cross-chunk information first lands in the residual stream at L1, so the
// blend fusor must use SelectionLayer 2 for this model (KV deviation is
// first visible in L2's record projections).
package qamodel

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// Geometry of the constructed model.
const (
	// E is the entity code width (one-hot): at most E distinct entities.
	E = 24
	// R is the relation code width (one-hot).
	R = 6
	// L is the role code width (one-hot): at most L split facts per input.
	L = 5

	// Heads and HeadDim define the hidden width Heads*HeadDim = 160.
	Heads   = 4
	HeadDim = 40
	// RotaryDims rotates 4 planes per head; the gather kernels use planes
	// 0 (θ=1), 1 (θ≈0.105) and 2 (θ≈0.011).
	RotaryDims = 8
	// RopeBase gives θ₁ = base^(-1/4) ≈ 0.105.
	RopeBase = 8200
	// Layers: gather, join, records+hop1, records+hop2.
	Layers = 4
	// SelectionLayer is where the blend fusor should measure KV deviation
	// for this model (see the package comment).
	SelectionLayer = 2
)

// Residual-stream field offsets (hidden width 160).
const (
	offEID      = 0   // E: entity identity (embedding)
	offRID      = 24  // R: relation identity (embedding)
	offRole     = 30  // L: role code (chief-i and the-chief-i embeddings)
	offRoleR    = 35  // L: role code, only on the-chief-i (reference) tokens
	offFlagGVal = 40  // 1: gatherable-value flag (entities, role tokens)
	offFlagRel  = 41  // 1: relation token flag
	offFlagRelA = 42  // 1: hop-1-class relation flag
	offFlagQ    = 43  // 1: "?" token flag
	offFlagOne  = 44  // 1: constant 1 on every token (self-anchor driver)
	offSCVal    = 45  // E: gathered fact value       (L0)
	offSCRel    = 69  // R: gathered fact relation    (L0)
	offSCRole   = 75  // L: gathered role code        (L0)
	offPKey     = 80  // E: joined partner key        (L1)
	offPVal     = 104 // E: joined partner value      (L1)
	offPRel     = 128 // R: joined/gathered hop-1 rel (L0+L1)
	offBridge   = 134 // E: lookup results            (L2+L3)
	offFlagSink = 158 // 1: attention-sink token (periods, topics, fillers)

	hidden = Heads * HeadDim
)

// Attention-logit construction constants. Margins were chosen so that with
// the softmax scale 1/√HeadDim ≈ 0.158 every intended match beats its
// nearest competitor by ≥3 nats; the tests verify the resulting behaviour
// end to end.
const (
	kernelB  = 150.0  // plane-0 weight (θ=1): sharp short-range discrimination
	kernelA  = 900.0  // plane-1 weight (θ≈0.105): main distance kernel
	kernelC  = 450.0  // plane-2 weight (θ≈0.011): anti-aliasing
	classG   = 500.0  // class content match (e.g. "is a relation token")
	nullN    = 500.0  // self/null match: absorbs attention when no target
	joinK    = 1200.0 // role-code join match (must dominate the sink anchor)
	sinkN    = 100.0  // join-head sink-anchor content match
	sinkKern = 0.25   // join-head sink-anchor kernel scale
	lookupK  = 40.0   // record lookup match per matching unit
	joinGain = 1.75   // joined key/rel strength vs the anchor's bare record
	hop2Out  = 3.0    // L3 output gain so the answer dominates the bridge
)

// Per-head content dim layout (dims 0..RotaryDims-1 are rotary).
const (
	dimClass   = 8  // class marker (K) / class query (Q)
	dimNull    = 9  // null/self marker
	payloadE   = 10 // 24 dims of entity payload (V)
	payloadR   = 34 // 6 dims of relation/role payload (V)
	jMatch     = 8  // join heads: 6 dims of role-code match (K/Q)
	jPayloadE  = 14 // join heads: entity payload (V)
	recEID     = 8  // record heads: entity key part (K/Q), 24 dims
	recRel     = 32 // record heads: relation key part (K/Q), 6 dims
	recPayload = 8  // record heads: value payload (V), 24 dims
)

// Vocab is the token inventory of the constructed model.
type Vocab struct {
	// Period doubles as the "no answer" readout (token 0).
	Period, Query, Dash, Colon, QMark int
	// RelA are hop-1 relations (code slots 0..len-1).
	RelA []int
	// RelB are hop-2 relations (code slots len(RelA)..).
	RelB []int
	// Fills is the reserved relation of a split fact's value half (last
	// code slot, never queried).
	Fills int
	// RoleD[i] and RoleR[i] are the paired declaration/reference tokens.
	RoleD, RoleR []int
	// Entities are the E entity name tokens (code slot = index).
	Entities []int
	// Fillers are flag-free noise tokens.
	Fillers []int
	// Topics are flag-free tokens used purely as retrieval signals: the
	// dataset stamps each chunk and each query with topic words so the
	// vector index has something to match on, the way real RAG corpora
	// share vocabulary between queries and relevant documents.
	Topics []int

	names []string
}

// Size returns the vocabulary size.
func (v *Vocab) Size() int { return len(v.names) }

// Name returns the surface form of a token id.
func (v *Vocab) Name(id int) string {
	if id < 0 || id >= len(v.names) {
		return "<unk>"
	}
	return v.names[id]
}

// EntityCode returns the code slot of an entity token id, or -1.
func (v *Vocab) EntityCode(tok int) int {
	for i, e := range v.Entities {
		if e == tok {
			return i
		}
	}
	return -1
}

func newVocab() *Vocab {
	v := &Vocab{}
	add := func(name string) int {
		v.names = append(v.names, name)
		return len(v.names) - 1
	}
	v.Period = add(".")
	v.Query = add("query")
	v.Dash = add("-")
	v.Colon = add(":")
	v.QMark = add("?")
	for _, n := range []string{"managed-by", "advised-by"} {
		v.RelA = append(v.RelA, add(n))
	}
	for _, n := range []string{"based-in", "born-in", "works-on"} {
		v.RelB = append(v.RelB, add(n))
	}
	v.Fills = add("fills")
	for i := 0; i < L; i++ {
		v.RoleD = append(v.RoleD, add(fmt.Sprintf("chief-%d", i)))
	}
	for i := 0; i < L; i++ {
		v.RoleR = append(v.RoleR, add(fmt.Sprintf("the-chief-%d", i)))
	}
	entityNames := []string{
		"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
		"ivan", "judy", "mallory", "niaj", "paris", "london", "tokyo",
		"berlin", "oslo", "cairo", "quantum", "fusion", "robotics",
		"genomics", "crypto", "optics",
	}
	for _, n := range entityNames {
		v.Entities = append(v.Entities, add(n))
	}
	for _, n := range []string{
		"meanwhile", "report", "notes", "update", "today", "team",
		"internal", "memo", "status", "digest",
	} {
		v.Fillers = append(v.Fillers, add(n))
	}
	for i := 0; i < 24; i++ {
		v.Topics = append(v.Topics, add(fmt.Sprintf("topic-%02d", i)))
	}
	return v
}

// relCode returns the relation code slot for a relation token id.
func (v *Vocab) relCode(tok int) int {
	for i, r := range v.RelA {
		if r == tok {
			return i
		}
	}
	for i, r := range v.RelB {
		if r == tok {
			return len(v.RelA) + i
		}
	}
	if tok == v.Fills {
		return R - 1
	}
	return -1
}

// Build constructs the model and its vocabulary. The same (deterministic)
// model is returned on every call.
func Build() (*model.Model, *Vocab) { return BuildDeep(0) }

// BuildDeep builds the QA model with extra record-exposure layers between
// the join layer and the two lookup layers: every additional layer
// projects the same records into its K/V (with inert attention), giving
// deeper models whose per-layer KV deviation structure matches the
// shallow one — the knob used to vary model depth in the Figure 6–8
// deviation studies.
func BuildDeep(extraRecordLayers int) (*model.Model, *Vocab) {
	if extraRecordLayers < 0 {
		panic("qamodel: negative record layers")
	}
	v := newVocab()
	layers := Layers + extraRecordLayers
	cfg := model.Config{
		Name:   fmt.Sprintf("qa-constructed-d%d", layers),
		Layers: layers, Heads: Heads, KVHeads: Heads, HeadDim: HeadDim,
		FFNDim: 0, Vocab: v.Size(),
		RotaryDims: RotaryDims, RopeBase: RopeBase,
		Norm: model.NormNone,
	}
	m := model.NewZero(cfg)
	buildEmbeddings(m, v)
	buildLayer0(m)
	buildLayer1(m)
	for li := 2; li < layers-2; li++ {
		buildRecordLayer(m, li, recordOnly)
	}
	buildRecordLayer(m, layers-2, lookupL2)
	buildRecordLayer(m, layers-1, lookupL3)
	buildLMHead(m, v)
	return m, v
}

func buildEmbeddings(m *model.Model, v *Vocab) {
	set := func(tok, off int, vals ...float32) {
		copy(m.Embed.Row(tok)[off:], vals)
	}
	one := func(tok, off, slot int) { m.Embed.Row(tok)[off+slot] = 1 }
	for i, e := range v.Entities {
		one(e, offEID, i)
		set(e, offFlagGVal, 1)
	}
	rels := append(append([]int{}, v.RelA...), v.RelB...)
	rels = append(rels, v.Fills)
	for _, r := range rels {
		one(r, offRID, v.relCode(r))
		set(r, offFlagRel, 1)
	}
	for _, r := range v.RelA {
		set(r, offFlagRelA, 1)
	}
	for i, d := range v.RoleD {
		one(d, offRole, i)
		set(d, offFlagGVal, 1)
	}
	for i, r := range v.RoleR {
		one(r, offRole, i)
		one(r, offRoleR, i)
		set(r, offFlagGVal, 1)
	}
	set(v.QMark, offFlagQ, 1)
	// Every token carries the always-on self-anchor driver: without it,
	// tokens with no other query content would attend uniformly over the
	// whole prefix and accumulate context-dependent smear — spurious KV
	// deviation that would drown out the real cross-chunk signals. (Real
	// transformers solve the same problem with attention sinks.)
	for tok := 0; tok < v.Size(); tok++ {
		set(tok, offFlagOne, 1)
	}
	// Payload-free tokens are attention sinks: the join layer anchors all
	// idle queries onto the nearest sink, whose zero payload keeps pKey /
	// pVal clean (a uniform fallback would smear context averages in, and
	// a self fallback would write a token's own identity into its record
	// key). Chunks should therefore begin with a sink token — the
	// datasets' topic headers and the sentence periods provide them.
	sinks := append([]int{v.Period, v.Query, v.Dash, v.Colon}, v.Fillers...)
	sinks = append(sinks, v.Topics...)
	for _, tok := range sinks {
		set(tok, offFlagSink, 1)
	}
}

// thetas returns the rotary frequencies of the four planes.
func thetas() [4]float64 {
	var t [4]float64
	for i := 0; i < 4; i++ {
		t[i] = math.Pow(RopeBase, -2*float64(i)/float64(RotaryDims))
	}
	return t
}

// setKernelQ writes the phase-shifted distance kernel into the query rows
// of head h for driver dimension driverDim, peaked at relative distance lt.
// The kernel is w·cos(θ(l-lt)) summed over planes 0..2 with weights
// kernelB/A/C; phases implement the peak shift (q at angle -lt·θ matches k
// at angle 0 when the key is lt positions back).
func setKernelQ(wq *matrixAt, driverDim, h, lt int) {
	setKernelQScaled(wq, driverDim, h, lt, 1)
}

// setKernelQScaled is setKernelQ with the plane weights scaled by s².
func setKernelQScaled(wq *matrixAt, driverDim, h, lt int, scale float64) {
	t := thetas()
	weights := [3]float64{kernelB, kernelA, kernelC}
	for p := 0; p < 3; p++ {
		mag := math.Sqrt(weights[p]) * scale
		phase := -float64(lt) * t[p]
		wq.set(driverDim, h*HeadDim+2*p, float32(mag*math.Cos(phase)))
		wq.set(driverDim, h*HeadDim+2*p+1, float32(mag*math.Sin(phase)))
	}
}

// addKernelQDelta adds, into the query rows of driver dimension driverDim
// on head h, the difference between the kernel phased at lt and the kernel
// phased at 0. Combined with the always-on self-anchor row (phase 0), the
// net query of a token carrying the driver flag is the kernel peaked at
// lt.
func addKernelQDelta(wq *matrixAt, driverDim, h, lt int) {
	t := thetas()
	weights := [3]float64{kernelB, kernelA, kernelC}
	for p := 0; p < 3; p++ {
		mag := math.Sqrt(weights[p])
		phase := -float64(lt) * t[p]
		wq.set(driverDim, h*HeadDim+2*p, float32(mag*(math.Cos(phase)-1)))
		wq.set(driverDim, h*HeadDim+2*p+1, float32(mag*math.Sin(phase)))
	}
}

// setKernelK writes the kernel key template (angle 0) for candidate tokens
// flagged at flagDim on head h.
func setKernelK(wk *matrixAt, flagDim, h int) {
	setKernelKScaled(wk, flagDim, h, 1)
}

// setKernelKScaled is setKernelK with the plane weights scaled by s².
func setKernelKScaled(wk *matrixAt, flagDim, h int, scale float64) {
	weights := [3]float64{kernelB, kernelA, kernelC}
	for p := 0; p < 3; p++ {
		wk.set(flagDim, h*HeadDim+2*p, float32(math.Sqrt(weights[p])*scale))
	}
}

// matrixAt is a tiny adapter so the builders read like coordinate writes.
type matrixAt struct {
	m interface{ Set(i, j int, v float32) }
}

func (a *matrixAt) set(i, j int, v float32) { a.m.Set(i, j, v) }

// copyBlock wires an identity copy of n dims from matrix row-offset src to
// column-offset dst.
func copyBlock(w *matrixAt, src, dst, n int, gain float32) {
	for i := 0; i < n; i++ {
		w.set(src+i, dst+i, gain)
	}
}

// buildLayer0 wires the gather layer: three active heads.
//
//	head 0: gather fact value (class = gatherable tokens, peak at l=2);
//	        payloads: entity id → sCVal, role code → sCRole
//	head 1: gather fact relation (class = relation tokens, peak l=1);
//	        payload: relation id → sCRel
//	head 2: gather hop-1 relation (class = relA tokens; peak l=1 for fact
//	        subjects, l=5 for "?"); payload: relation id → pRel
//
// Each head also has a null/self template so a gatherer with no in-range
// target absorbs its own attention and receives a zero payload instead of
// locking onto a distant false match.
func buildLayer0(m *model.Model) {
	lw := &m.Layer[0]
	wq := &matrixAt{lw.Wq}
	wk := &matrixAt{lw.Wk}
	wv := &matrixAt{lw.Wv}
	wo := &matrixAt{lw.Wo}
	g := float32(math.Sqrt(classG))
	n := float32(math.Sqrt(nullN))

	type gatherHead struct {
		h        int
		classDim int // embedding flag marking class (K side)
		ltGVal   int // kernel peak for gatherable-token drivers
		ltQ      int // kernel peak for the "?" driver
	}
	heads := []gatherHead{
		{h: 0, classDim: offFlagGVal, ltGVal: 2, ltQ: 2},
		{h: 1, classDim: offFlagRel, ltGVal: 1, ltQ: 1},
		{h: 2, classDim: offFlagRelA, ltGVal: 1, ltQ: 5},
	}
	for _, gh := range heads {
		// Keys: every token carries the kernel template and the null
		// marker (via the always-on flag); class tokens add their class
		// marker on top.
		setKernelK(wk, offFlagOne, gh.h)
		wk.set(offFlagOne, gh.h*HeadDim+dimNull, n)
		wk.set(gh.classDim, gh.h*HeadDim+dimClass, g)
		// Class tokens already compete through their class marker; cancel
		// their null marker (rows sum) so they are not double-counted.
		wk.set(gh.classDim, gh.h*HeadDim+dimNull, -n)

		// Queries. The always-on flag gives every token a self-anchored
		// query (kernel peaked at distance 0 plus the null marker): a
		// token with nothing to gather attends to itself and receives a
		// zero payload instead of a context-dependent smear. Driver flags
		// then *re-phase* the kernel toward their target distance by
		// adding the difference (rows sum), and add the class marker.
		setKernelQ(wq, offFlagOne, gh.h, 0)
		wq.set(offFlagOne, gh.h*HeadDim+dimNull, n)
		addKernelQDelta(wq, offFlagGVal, gh.h, gh.ltGVal)
		addKernelQDelta(wq, offFlagQ, gh.h, gh.ltQ)
		wq.set(offFlagGVal, gh.h*HeadDim+dimClass, g)
		wq.set(offFlagQ, gh.h*HeadDim+dimClass, g)
	}
	// Payload routing (V) and output routing (Wo).
	copyBlock(wv, offEID, 0*HeadDim+payloadE, E, 1)
	copyBlock(wv, offRole, 0*HeadDim+payloadR, L, 1)
	copyBlock(wo, 0*HeadDim+payloadE, offSCVal, E, 1)
	copyBlock(wo, 0*HeadDim+payloadR, offSCRole, L, 1)

	copyBlock(wv, offRID, 1*HeadDim+payloadR, R, 1)
	copyBlock(wo, 1*HeadDim+payloadR, offSCRel, R, 1)

	// Head 2's payload is restricted to the hop-1 relation code slots:
	// a hop-2 relation token can win this head's attention when no relA
	// is in range (it sits at the kernel peak with a null match), and it
	// must deliver nothing when it does.
	copyBlock(wv, offRID, 2*HeadDim+payloadR, 2, 1)
	copyBlock(wo, 2*HeadDim+payloadR, offPRel, 2, 1)
}

// buildLayer1 wires the join layer: the two halves of a split fact find
// each other by role code and exchange fields (content-only matching; no
// positional kernel, so chunk order does not matter — whichever half is
// later does the join).
//
//	head 0 (J1): the-chief-i (value half) ← anchor subject:
//	             payloads entity → pKey, sCRel → pRel
//	head 1 (J2): anchor subject ← the-chief-i (value half):
//	             payload sCVal → pVal
func buildLayer1(m *model.Model) {
	lw := &m.Layer[1]
	wq := &matrixAt{lw.Wq}
	wk := &matrixAt{lw.Wk}
	wv := &matrixAt{lw.Wv}
	wo := &matrixAt{lw.Wo}
	k := float32(math.Sqrt(joinK))

	// Sink anchors on both join heads: every token carries a weak query
	// (kernel peaked at distance 0 plus a sink marker) and sink tokens
	// carry the matching key. A token with no genuine join partner lands
	// on the nearest sink and receives a zero payload; real role-code
	// matches are wired far above the anchor so joins always win.
	const jSinkDim = 14 // key-side sink marker (V payload dims are separate)
	nj := float32(math.Sqrt(sinkN))
	for h := 0; h < 2; h++ {
		setKernelQScaled(wq, offFlagOne, h, 0, sinkKern)
		wq.set(offFlagOne, h*HeadDim+jSinkDim, nj)
		setKernelKScaled(wk, offFlagSink, h, sinkKern)
		wk.set(offFlagSink, h*HeadDim+jSinkDim, nj)
	}

	// J1: value half ← anchor half. q = roleR code (only reference
	// tokens carry offRoleR); k = gathered role code minus the token's own
	// role code — anchor subjects gathered the role from their fact's
	// chief-i token, while a chunk-initial chief-i that self-gathered its
	// own code cancels to zero and a reference token goes negative, so
	// neither can be mistaken for an anchor. The payload hands the value
	// half its record key and relation.
	copyBlock(wq, offRoleR, 0*HeadDim+jMatch, L, k)
	copyBlock(wk, offSCRole, 0*HeadDim+jMatch, L, k)
	copyBlock(wk, offRole, 0*HeadDim+jMatch, L, -k)
	copyBlock(wv, offEID, 0*HeadDim+jPayloadE, E, 1)
	copyBlock(wv, offSCRel, 0*HeadDim+jMatch, R, 1) // reuse match dims as V payload
	// joinGain makes the completed record of the value half outrank the
	// anchor's own key-matching-but-empty record at lookup time.
	copyBlock(wo, 0*HeadDim+jPayloadE, offPKey, E, joinGain)
	copyBlock(wo, 0*HeadDim+jMatch, offPRel, R, joinGain)

	// J2: anchor half ← value half. The anchor subject (q = gathered role
	// code, with the same self-cancellation) pulls the answer out of the
	// value half's gathered sCVal.
	copyBlock(wq, offSCRole, 1*HeadDim+jMatch, L, k)
	copyBlock(wq, offRole, 1*HeadDim+jMatch, L, -k)
	copyBlock(wk, offRoleR, 1*HeadDim+jMatch, L, k)
	copyBlock(wv, offSCVal, 1*HeadDim+jPayloadE, E, 1)
	copyBlock(wo, 1*HeadDim+jPayloadE, offPVal, E, 1)
}

type lookupSpec struct {
	qEID, qRel int     // residual fields the query reads
	outGain    float32 // Wo gain into sBridge
}

var (
	lookupL2 = lookupSpec{qEID: offSCVal, qRel: offPRel, outGain: 1}
	lookupL3 = lookupSpec{qEID: offBridge, qRel: offSCRel, outGain: hop2Out}
	// recordOnly exposes records in K/V without performing any lookup
	// (inert attention): the filler layers of BuildDeep.
	recordOnly = lookupSpec{qEID: -1}
)

// buildRecordLayer wires a record-exposure + lookup layer (L2 and L3).
// Every token's K encodes its record key (entity identity ∪ joined key,
// relation ∪ joined relation) and its V the record value; head 0 performs
// the hop lookup and accumulates the result into sBridge.
func buildRecordLayer(m *model.Model, layer int, spec lookupSpec) {
	lw := &m.Layer[layer]
	wq := &matrixAt{lw.Wq}
	wk := &matrixAt{lw.Wk}
	wv := &matrixAt{lw.Wv}
	wo := &matrixAt{lw.Wo}
	kr := float32(math.Sqrt(lookupK))

	// Record keys.
	copyBlock(wk, offEID, 0*HeadDim+recEID, E, kr)
	copyBlock(wk, offPKey, 0*HeadDim+recEID, E, kr)
	copyBlock(wk, offSCRel, 0*HeadDim+recRel, R, kr)
	copyBlock(wk, offPRel, 0*HeadDim+recRel, R, kr)
	// Record values.
	copyBlock(wv, offSCVal, 0*HeadDim+recPayload, E, 1)
	copyBlock(wv, offPVal, 0*HeadDim+recPayload, E, 1)
	if spec.qEID < 0 {
		// Record-exposure only: no lookup query, no output routing.
		return
	}
	// Lookup query.
	copyBlock(wq, spec.qEID, 0*HeadDim+recEID, E, kr)
	copyBlock(wq, spec.qRel, 0*HeadDim+recRel, R, kr)
	// Result routing.
	copyBlock(wo, 0*HeadDim+recPayload, offBridge, E, spec.outGain)
}

// buildLMHead maps the bridge/answer field to entity-token logits.
func buildLMHead(m *model.Model, v *Vocab) {
	for i, e := range v.Entities {
		m.LMHead.Set(offBridge+i, e, 1)
	}
}
