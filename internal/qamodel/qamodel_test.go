package qamodel

import (
	"testing"

	"repro/internal/blend"
	"repro/internal/kvcache"
)

func concat(seqs ...[]int) []int {
	var out []int
	for _, s := range seqs {
		out = append(out, s...)
	}
	return out
}

func TestVocabBasics(t *testing.T) {
	_, v := Build()
	if v.Size() < 40 {
		t.Fatalf("vocab too small: %d", v.Size())
	}
	if v.Period != 0 {
		t.Fatal("token 0 must be the period (failure readout)")
	}
	if len(v.Entities) != E {
		t.Fatalf("want %d entities, got %d", E, len(v.Entities))
	}
	if v.EntityCode(v.Entities[5]) != 5 {
		t.Fatal("entity code mapping wrong")
	}
	if v.EntityCode(v.Period) != -1 {
		t.Fatal("non-entity must have code -1")
	}
	if v.Name(v.Entities[0]) != "alice" || v.Name(-1) != "<unk>" {
		t.Fatal("Name lookup wrong")
	}
}

func TestBuildDeterministic(t *testing.T) {
	m1, _ := Build()
	m2, _ := Build()
	for li := range m1.Layer {
		for i, x := range m1.Layer[li].Wq.Data {
			if m2.Layer[li].Wq.Data[i] != x {
				t.Fatal("Build must be deterministic")
			}
		}
	}
}

func TestGatherLayerCollectsFactFields(t *testing.T) {
	m, v := Build()
	alice, bob := v.Entities[0], v.Entities[1]
	relB := v.RelB[0]
	// "bob based-in alice ." : based-in(alice) = bob.
	toks := v.Fact(bob, relB, alice)
	res := m.Prefill(toks, 0, false)
	subj := res.Hidden.Row(2) // alice

	gotVal, mag := fieldArgmax(subj, offSCVal, E)
	if gotVal != v.EntityCode(bob) || mag < 0.8 {
		t.Fatalf("subject gathered value slot %d (mag %.2f), want %d strong", gotVal, mag, v.EntityCode(bob))
	}
	gotRel, magR := fieldArgmax(subj, offSCRel, R)
	if gotRel != len(v.RelA) || magR < 0.8 { // relB[0] has code slot len(RelA)
		t.Fatalf("subject gathered rel slot %d (mag %.2f), want %d strong", gotRel, magR, len(v.RelA))
	}
}

func TestGatherNullAbsorbsWhenNoTarget(t *testing.T) {
	// A fact-initial value token has no in-range relation/value target; the
	// null/self template must keep its gathered fields near zero instead
	// of locking onto a distant token.
	m, v := Build()
	alice, bob, carol, dave := v.Entities[0], v.Entities[1], v.Entities[2], v.Entities[3]
	toks := concat(
		v.Fact(bob, v.RelB[0], alice),
		v.Fact(dave, v.RelB[1], carol),
	)
	res := m.Prefill(toks, 0, false)
	val2 := res.Hidden.Row(4) // "dave" (fact-initial of second fact)
	_, mag := fieldArgmax(val2, offSCRel, R)
	if mag > 0.25 {
		t.Fatalf("fact-initial token gathered a stale relation (mag %.2f)", mag)
	}
}

func TestAnchorKeyGathersRoleCode(t *testing.T) {
	m, v := Build()
	bridge := v.Entities[1]
	toks := v.Anchor(3, v.RelB[0], bridge)
	res := m.Prefill(toks, 0, false)
	key := res.Hidden.Row(2)
	slot, mag := fieldArgmax(key, offSCRole, L)
	if slot != 3 || mag < 0.8 {
		t.Fatalf("anchor key gathered role %d (mag %.2f), want 3 strong", slot, mag)
	}
	rslot, rmag := fieldArgmax(key, offSCRel, R)
	if rslot != len(v.RelA) || rmag < 0.8 {
		t.Fatalf("anchor key gathered rel %d (mag %.2f), want %d strong", rslot, rmag, len(v.RelA))
	}
}

func TestJoinBothOrders(t *testing.T) {
	m, v := Build()
	bridge, answer := v.Entities[1], v.Entities[12]
	relB := v.RelB[0]
	role := 2

	// Anchor first, value half later: the-chief joins and gains the
	// record key and relation.
	toks := concat(v.Anchor(role, relB, bridge), v.ValueHalf(answer, role))
	res := m.Prefill(toks, 0, false)
	chiefRef := res.Hidden.Row(6) // the-chief token (position 4+2)
	slot, mag := fieldArgmax(chiefRef, offPKey, E)
	if slot != v.EntityCode(bridge) || mag < 0.7 {
		t.Fatalf("the-chief joined key slot %d (mag %.2f), want %d", slot, mag, v.EntityCode(bridge))
	}
	prslot, prmag := fieldArgmax(chiefRef, offPRel, R)
	if prslot != len(v.RelA) || prmag < 0.7 {
		t.Fatalf("the-chief joined rel slot %d (mag %.2f), want %d", prslot, prmag, len(v.RelA))
	}

	// Value half first, anchor later: the anchor key gains pVal.
	toks2 := concat(v.ValueHalf(answer, role), v.Anchor(role, relB, bridge))
	res2 := m.Prefill(toks2, 0, false)
	key := res2.Hidden.Row(6) // bridge entity in the anchor
	vslot, vmag := fieldArgmax(key, offPVal, E)
	if vslot != v.EntityCode(answer) || vmag < 0.7 {
		t.Fatalf("anchor key joined value slot %d (mag %.2f), want %d", vslot, vmag, v.EntityCode(answer))
	}
}

// buildTwoHop builds a context with a whole hop-1 fact and a hop-2 fact
// (split or whole), plus distractor facts, and returns tokens + expected
// answer token.
func buildTwoHop(v *Vocab, split bool) (context []int, query []int, answer int) {
	qent := v.Entities[0]   // alice
	bridge := v.Entities[1] // bob
	ans := v.Entities[12]   // paris
	relA := v.RelA[0]
	relB := v.RelB[0]

	distract := concat(
		v.Fact(v.Entities[13], v.RelB[1], v.Entities[2]),
		v.Fact(v.Entities[3], v.RelA[1], v.Entities[4]),
		v.Fact(v.Entities[14], v.RelB[0], v.Entities[5]),
	)
	hop1 := v.Fact(bridge, relA, qent)
	var hop2 []int
	if split {
		hop2 = concat(v.Anchor(4, relB, bridge), distract[:4], v.ValueHalf(ans, 4))
	} else {
		hop2 = v.Fact(ans, relB, bridge)
	}
	context = concat(distract, hop1, hop2, v.Fact(v.Entities[15], v.RelB[2], v.Entities[6]))
	return context, v.QueryTokens(relA, qent, relB), ans
}

func TestTwoHopWholeFactAnswer(t *testing.T) {
	m, v := Build()
	ctx, query, want := buildTwoHop(v, false)
	toks := concat(ctx, query)
	res := m.Prefill(toks, 0, false)
	got := Answer(m, res.Cache, res.Hidden.Row(len(toks)-1))
	if got != want {
		t.Fatalf("two-hop answer = %q, want %q", v.Name(got), v.Name(want))
	}
}

func TestTwoHopSplitFactAnswer(t *testing.T) {
	m, v := Build()
	ctx, query, want := buildTwoHop(v, true)
	toks := concat(ctx, query)
	res := m.Prefill(toks, 0, false)
	got := Answer(m, res.Cache, res.Hidden.Row(len(toks)-1))
	if got != want {
		t.Fatalf("split two-hop answer = %q, want %q", v.Name(got), v.Name(want))
	}
}

func TestCrossChunkSplitReuseFailsBlendRecovers(t *testing.T) {
	// The headline mechanism: a split hop-2 fact whose halves live in
	// different chunks. Full prefill answers correctly; full KV reuse
	// (chunk-local caches) loses the join and fails; CacheBlend with the
	// model's selection layer recovers the answer.
	m, v := Build()
	qent, bridge, ans := v.Entities[0], v.Entities[1], v.Entities[12]
	relA, relB := v.RelA[0], v.RelB[0]

	// Chunk layout: declaration and usage in *different* chunks, with
	// distractor split facts so the reuse failure can't luck into the
	// right answer.
	chunkA := concat(
		v.Fact(v.Entities[13], v.RelB[1], v.Entities[2]),
		v.Anchor(1, relB, bridge),
		v.Fact(bridge, relA, qent),
	)
	chunkB := concat(
		v.ValueHalf(ans, 1),
		v.Fact(v.Entities[3], v.RelA[1], v.Entities[4]),
		v.ValueHalf(v.Entities[14], 2), // dangling value half (distractor)
	)
	chunkC := concat(
		v.Anchor(3, v.RelB[1], v.Entities[5]),
		v.ValueHalf(v.Entities[15], 3),
		v.Fact(v.Entities[16], v.RelB[2], v.Entities[6]),
	)
	chunks := [][]int{chunkA, chunkB, chunkC}
	query := v.QueryTokens(relA, qent, relB)

	var caches []*kvcache.Cache
	for _, ch := range chunks {
		caches = append(caches, m.Prefill(ch, 0, false).Cache)
	}
	in := blend.Input{Model: m, Chunks: caches, ChunkTokens: chunks, SuffixTokens: query}

	ask := func(opts blend.Options) int {
		res := blend.Fuse(in, opts)
		return Answer(m, res.Cache, res.Hidden.Row(res.Hidden.Rows-1))
	}

	full := ask(blend.Options{Mode: blend.ModeFullRecompute})
	if full != ans {
		t.Fatalf("full recompute answered %q, want %q", v.Name(full), v.Name(ans))
	}
	reuse := ask(blend.Options{Mode: blend.ModeFullReuse})
	if reuse == ans {
		t.Fatalf("full KV reuse should lose the cross-chunk join but answered correctly")
	}
	blended := ask(blend.Options{
		Mode: blend.ModeBlend, RecomputeRatio: 0.15, SelectionLayer: SelectionLayer,
	})
	if blended != ans {
		t.Fatalf("cacheblend answered %q, want %q", v.Name(blended), v.Name(ans))
	}
}

func TestHKVDSelectionFindsJoinToken(t *testing.T) {
	// The usage half comes last, so its the-chief token performs the join;
	// it must rank among the highest KV deviations on the selection layer.
	m, v := Build()
	bridge, ans := v.Entities[1], v.Entities[12]
	chunkA := concat(v.Fact(v.Entities[13], v.RelB[1], v.Entities[2]), v.Anchor(1, v.RelB[0], bridge))
	chunkB := concat(v.Fact(v.Entities[3], v.RelA[1], v.Entities[4]), v.ValueHalf(ans, 1))
	chunks := [][]int{chunkA, chunkB}
	var caches []*kvcache.Cache
	for _, ch := range chunks {
		caches = append(caches, m.Prefill(ch, 0, false).Cache)
	}
	res := blend.Fuse(blend.Input{
		Model: m, Chunks: caches, ChunkTokens: chunks,
		SuffixTokens: v.QueryTokens(v.RelA[0], v.Entities[0], v.RelB[0]),
	}, blend.Options{Mode: blend.ModeBlend, RecomputeRatio: 0.25, SelectionLayer: SelectionLayer})

	// the-chief-1 sits at position len(chunkA) + 4 + 2.
	joinPos := len(chunkA) + 6
	found := false
	for _, j := range res.HKVD[SelectionLayer] {
		if j == joinPos {
			found = true
		}
	}
	if !found {
		t.Fatalf("join token at %d not selected as HKVD; selected %v (deviation %.3f, max %.3f)",
			joinPos, res.HKVD[SelectionLayer], res.DeviationByToken[joinPos], maxOf(res.DeviationByToken))
	}
}

func maxOf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	return m
}

func TestAnswerFailureReadsPeriod(t *testing.T) {
	// With no relevant facts at all, the lookup diffuses and the readout
	// must not hallucinate a strong entity: token 0 (".") or a wrong
	// entity with near-zero logit is acceptable; the key property is that
	// the correct-answer path is what produces the right token, tested
	// above. Here we just pin the no-context behaviour.
	m, v := Build()
	query := v.QueryTokens(v.RelA[0], v.Entities[0], v.RelB[0])
	res := m.Prefill(query, 0, false)
	got := Answer(m, res.Cache, res.Hidden.Row(len(query)-1))
	if got == -1 {
		t.Fatal("Answer must produce a token")
	}
	if got == v.Entities[12] {
		t.Fatal("no-context query answered the test answer entity — suspicious")
	}
}

func TestBuildDeepAnswersCorrectly(t *testing.T) {
	for _, extra := range []int{0, 4, 8} {
		m, v := BuildDeep(extra)
		if m.Cfg.Layers != Layers+extra {
			t.Fatalf("deep model has %d layers want %d", m.Cfg.Layers, Layers+extra)
		}
		ctx, query, want := buildTwoHop(v, true)
		toks := concat(ctx, query)
		res := m.Prefill(toks, 0, false)
		got := Answer(m, res.Cache, res.Hidden.Row(len(toks)-1))
		if got != want {
			t.Fatalf("depth +%d: answer %q want %q", extra, v.Name(got), v.Name(want))
		}
	}
}

func TestBuildDeepBlendRecovery(t *testing.T) {
	// The cross-chunk recovery property must hold at depth too.
	m, v := BuildDeep(4)
	bridge, ans, qent := v.Entities[1], v.Entities[12], v.Entities[0]
	relA, relB := v.RelA[0], v.RelB[0]
	chunkA := concat(v.Fact(v.Entities[13], v.RelB[1], v.Entities[2]),
		v.Anchor(1, relB, bridge), v.Fact(bridge, relA, qent))
	chunkB := concat(v.ValueHalf(ans, 1), v.Fact(v.Entities[3], v.RelA[1], v.Entities[4]))
	chunks := [][]int{chunkA, chunkB}
	var caches []*kvcache.Cache
	for _, ch := range chunks {
		caches = append(caches, m.Prefill(ch, 0, false).Cache)
	}
	in := blend.Input{Model: m, Chunks: caches, ChunkTokens: chunks,
		SuffixTokens: v.QueryTokens(relA, qent, relB)}
	reuse := blend.Fuse(in, blend.Options{Mode: blend.ModeFullReuse})
	gotReuse := Answer(m, reuse.Cache, reuse.Hidden.Row(reuse.Hidden.Rows-1))
	bl := blend.Fuse(in, blend.Options{Mode: blend.ModeBlend, RecomputeRatio: 0.2, SelectionLayer: SelectionLayer})
	gotBlend := Answer(m, bl.Cache, bl.Hidden.Row(bl.Hidden.Rows-1))
	if gotReuse == ans {
		t.Fatal("deep model: reuse should fail on cross-chunk split")
	}
	if gotBlend != ans {
		t.Fatalf("deep model: blend answered %q want %q", v.Name(gotBlend), v.Name(ans))
	}
}
