package qamodel

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// These tests pin the individual attention mechanisms of the constructed
// model, beyond the end-to-end answers covered in qamodel_test.go.

func TestSinkAbsorbsJoinLayerIdleQueries(t *testing.T) {
	// A chunk-initial entity preceded by a sink must keep pKey/pVal clean
	// (no self-delivery); without the preceding sink its own identity
	// leaks in — the failure mode the sink design removes.
	m, v := Build()
	bob := v.Entities[1]
	fact := v.Fact(v.Entities[12], v.RelB[0], bob)

	withSink := append([]int{v.Period}, fact...)
	res := m.Prefill(withSink, 0, false)
	_, mag := fieldArgmax(res.Hidden.Row(1), offPKey, E) // "paris" value token
	if mag > 0.1 {
		t.Fatalf("sink-prefixed chunk leaked pKey %.2f", mag)
	}

	bare := fact // no sink: position 0 can only attend itself
	res2 := m.Prefill(bare, 0, false)
	_, mag2 := fieldArgmax(res2.Hidden.Row(0), offPKey, E)
	if mag2 < 0.5 {
		t.Fatalf("expected self-delivery without a leading sink, got %.2f", mag2)
	}
}

func TestQueryGatherDistances(t *testing.T) {
	// The "?" must pick up exactly its own query's qent / relA / relB,
	// even with a decoy query-shaped token run earlier in the context.
	m, v := Build()
	decoy := v.QueryTokens(v.RelA[1], v.Entities[5], v.RelB[2])
	ctx := append([]int{v.Period}, v.Fact(v.Entities[13], v.RelB[1], v.Entities[2])...)
	ctx = append(ctx, decoy...)
	query := v.QueryTokens(v.RelA[0], v.Entities[0], v.RelB[0])
	toks := append(append([]int{}, ctx...), query...)

	res := m.Prefill(toks, 0, false)
	q := res.Hidden.Row(len(toks) - 1)
	if slot, mag := fieldArgmax(q, offSCVal, E); slot != 0 || mag < 0.8 {
		t.Fatalf("qent gather wrong: slot %d mag %.2f", slot, mag)
	}
	if slot, mag := fieldArgmax(q, offSCRel, R); slot != len(v.RelA) || mag < 0.8 {
		t.Fatalf("relB gather wrong: slot %d mag %.2f", slot, mag)
	}
	if slot, mag := fieldArgmax(q, offPRel, R); slot != 0 || mag < 0.8 {
		t.Fatalf("relA gather wrong: slot %d mag %.2f", slot, mag)
	}
}

func TestRecordsSurviveDistractorPressure(t *testing.T) {
	// Pile distractor facts around the answer path; full prefill must
	// still answer for any distractor arrangement.
	f := func(seed int64) bool {
		m, v := Build()
		g := tensor.NewRNG(seed)
		qent, bridge, ans := v.Entities[0], v.Entities[1], v.Entities[12]
		relA, relB := v.RelA[0], v.RelB[0]
		var toks []int
		toks = append(toks, v.Period)
		addDistract := func() {
			subj := v.Entities[2+g.Intn(8)]
			val := v.Entities[13+g.Intn(8)]
			rel := v.RelB[1+g.Intn(2)] // never the query's relB
			toks = append(toks, v.Fact(val, rel, subj)...)
		}
		for i := 0; i < 2+g.Intn(3); i++ {
			addDistract()
		}
		toks = append(toks, v.Fact(bridge, relA, qent)...)
		for i := 0; i < 1+g.Intn(3); i++ {
			addDistract()
		}
		toks = append(toks, v.Fact(ans, relB, bridge)...)
		for i := 0; i < g.Intn(3); i++ {
			addDistract()
		}
		toks = append(toks, v.QueryTokens(relA, qent, relB)...)
		res := m.Prefill(toks, 0, false)
		return Answer(m, res.Cache, res.Hidden.Row(len(toks)-1)) == ans
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkPositionInvariance(t *testing.T) {
	// The same fused input must give the same answer whether the answer
	// facts sit early or late in the context (RoPE re-rotation and
	// content-based lookups make records position-independent).
	m, v := Build()
	qent, bridge, ans := v.Entities[0], v.Entities[1], v.Entities[12]
	relA, relB := v.RelA[0], v.RelB[0]
	path := append(v.Fact(bridge, relA, qent), v.Fact(ans, relB, bridge)...)
	pad := append([]int{v.Period}, v.Fact(v.Entities[13], v.RelB[1], v.Entities[2])...)
	pad = append(pad, v.Fact(v.Entities[14], v.RelB[2], v.Entities[3])...)

	early := append(append([]int{v.Period}, path...), pad...)
	late := append(append([]int{}, pad...), path...)
	query := v.QueryTokens(relA, qent, relB)

	for name, ctx := range map[string][]int{"early": early, "late": late} {
		toks := append(append([]int{}, ctx...), query...)
		res := m.Prefill(toks, 0, false)
		if got := Answer(m, res.Cache, res.Hidden.Row(len(toks)-1)); got != ans {
			t.Fatalf("%s placement answered %q want %q", name, v.Name(got), v.Name(ans))
		}
	}
}

func TestDanglingHalvesAreInert(t *testing.T) {
	// An anchor whose value half never appears (or vice versa) must not
	// corrupt an unrelated whole-fact answer.
	m, v := Build()
	qent, bridge, ans := v.Entities[0], v.Entities[1], v.Entities[12]
	relA, relB := v.RelA[0], v.RelB[0]
	toks := []int{v.Period}
	toks = append(toks, v.Anchor(2, relB, v.Entities[5])...) // dangling anchor
	toks = append(toks, v.Fact(bridge, relA, qent)...)
	toks = append(toks, v.ValueHalf(v.Entities[15], 3)...) // dangling value half
	toks = append(toks, v.Fact(ans, relB, bridge)...)
	toks = append(toks, v.QueryTokens(relA, qent, relB)...)
	res := m.Prefill(toks, 0, false)
	if got := Answer(m, res.Cache, res.Hidden.Row(len(toks)-1)); got != ans {
		t.Fatalf("dangling halves corrupted the answer: got %q want %q", v.Name(got), v.Name(ans))
	}
}

func TestTwoSplitFactsIndependentRoles(t *testing.T) {
	// Two split facts with different roles in interleaved chunks must
	// both resolve to their own partners.
	m, v := Build()
	k1, a1 := v.Entities[1], v.Entities[12]
	k2, a2 := v.Entities[2], v.Entities[13]
	relB := v.RelB[0]
	toks := []int{v.Period}
	toks = append(toks, v.Anchor(0, relB, k1)...)
	toks = append(toks, v.Anchor(1, v.RelB[1], k2)...)
	toks = append(toks, v.ValueHalf(a1, 0)...)
	toks = append(toks, v.ValueHalf(a2, 1)...)
	res := m.Prefill(toks, 0, false)

	// The value halves joined to their own anchors.
	vh1 := res.Hidden.Row(11) // the-chief-0
	if slot, mag := fieldArgmax(vh1, offPKey, E); slot != v.EntityCode(k1) || mag < 1.0 {
		t.Fatalf("role-0 joined key slot %d mag %.2f", slot, mag)
	}
	vh2 := res.Hidden.Row(15) // the-chief-1
	if slot, mag := fieldArgmax(vh2, offPKey, E); slot != v.EntityCode(k2) || mag < 1.0 {
		t.Fatalf("role-1 joined key slot %d mag %.2f", slot, mag)
	}
}

func TestParseQuery(t *testing.T) {
	_, v := Build()
	q := v.QueryTokens(v.RelA[1], v.Entities[7], v.RelB[2])
	relA, qent, relB, ok := v.ParseQuery(append([]int{v.Topics[0], v.Period}, q...))
	if !ok || relA != v.RelA[1] || qent != v.Entities[7] || relB != v.RelB[2] {
		t.Fatalf("ParseQuery got %d %d %d ok=%v", relA, qent, relB, ok)
	}
	if _, _, _, ok := v.ParseQuery([]int{v.Period}); ok {
		t.Fatal("short input must not parse")
	}
	bad := append([]int{}, q...)
	bad[len(bad)-5] = v.Period // corrupt the dash
	if _, _, _, ok := v.ParseQuery(bad); ok {
		t.Fatal("malformed query must not parse")
	}
}

func TestTextRendering(t *testing.T) {
	_, v := Build()
	got := v.Text(v.Fact(v.Entities[12], v.RelB[0], v.Entities[0]))
	if got != "paris based-in alice ." {
		t.Fatalf("Text rendering wrong: %q", got)
	}
}
