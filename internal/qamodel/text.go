package qamodel

import (
	"strings"

	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Fact renders "<value> <rel> <subject> ." — the statement rel(subject) =
// value.
func (v *Vocab) Fact(value, rel, subject int) []int {
	return []int{value, rel, subject, v.Period}
}

// Anchor renders the anchor half of a split fact: "<chief-i> <rel> <key> ."
// carrying the record key and relation but no value.
func (v *Vocab) Anchor(role, rel, key int) []int {
	return []int{v.RoleD[role], rel, key, v.Period}
}

// ValueHalf renders the value half of a split fact: "<value> fills
// <the-chief-i> ." — together with Anchor(role, rel, key) it means
// rel(key) = value.
func (v *Vocab) ValueHalf(value, role int) []int {
	return []int{value, v.Fills, v.RoleR[role], v.Period}
}

// QueryTokens renders the two-hop question "query <relA> - : <qent> <relB>
// ?" asking for relB(relA(qent)). The dash spacer keeps qent's own gather
// kernel away from relA so the query tokens do not form a false record
// (see the gather-head margins in the package comment).
func (v *Vocab) QueryTokens(relA, qent, relB int) []int {
	return []int{v.Query, relA, v.Dash, v.Colon, qent, relB, v.QMark}
}

// ParseQuery recovers (relA, qent, relB) from a token sequence ending in
// the QueryTokens pattern (any prefix, e.g. topic stamps, is ignored).
// ok is false if the tail does not look like a query.
func (v *Vocab) ParseQuery(tokens []int) (relA, qent, relB int, ok bool) {
	n := len(tokens)
	if n < 7 || tokens[n-1] != v.QMark {
		return 0, 0, 0, false
	}
	relA, qent, relB = tokens[n-6], tokens[n-3], tokens[n-2]
	if tokens[n-7] != v.Query || tokens[n-5] != v.Dash || tokens[n-4] != v.Colon {
		return 0, 0, 0, false
	}
	return relA, qent, relB, true
}

// Text renders token ids as a space-joined string (for retrieval
// embeddings and debugging).
func (v *Vocab) Text(tokens []int) string {
	var b strings.Builder
	for i, t := range tokens {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.Name(t))
	}
	return b.String()
}

// Answer greedily decodes the single answer token from a prepared cache
// and the final residual of the last input token ("?").
func Answer(m *model.Model, c *kvcache.Cache, lastHidden []float32) int {
	out := m.Generate(c, lastHidden, 1, nil)
	if len(out) == 0 {
		return -1
	}
	return out[0]
}

// field extracts a residual-stream field from a hidden row (testing and
// diagnostics).
func field(h []float32, off, n int) []float32 { return h[off : off+n] }

// fieldArgmax returns the strongest slot of a field and its value.
func fieldArgmax(h []float32, off, n int) (int, float32) {
	f := field(h, off, n)
	i := tensor.Argmax(f)
	if i < 0 {
		return -1, 0
	}
	return i, f[i]
}
