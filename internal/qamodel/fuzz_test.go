package qamodel

import "testing"

// FuzzParseQuery: ParseQuery must be total on arbitrary token id slices.
func FuzzParseQuery(f *testing.F) {
	_, v := Build()
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7})
	f.Fuzz(func(t *testing.T, raw []byte) {
		toks := make([]int, len(raw))
		for i, b := range raw {
			toks[i] = int(b) % v.Size()
		}
		relA, qent, relB, ok := v.ParseQuery(toks)
		if !ok {
			return
		}
		// A positive parse must identify real relation/entity tokens.
		if v.relCode(relA) < 0 || v.relCode(relB) < 0 && relB != v.Fills {
			// relB could be any token id at that position; ParseQuery only
			// validates structure, so just ensure indices were in range.
			_ = qent
		}
	})
}
