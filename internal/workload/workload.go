// Package workload generates and replays the request streams the serving
// runtime consumes. The paper measures its gains on real RAG traffic,
// which is neither smooth nor single-tenant: arrivals are bursty, follow
// diurnal rate curves, and mix tenants whose chunk popularity is skewed
// differently and drifts over time. Each generator here yields the same
// deterministic (arrival time, tenant, chunk ids) stream for a given
// seed, and any generated stream can be exported as a JSONL trace and
// replayed bit-identically through serve.RunWorkload.
package workload

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/tensor"
)

// Request is one serving request of a workload stream: when it arrives,
// which tenant issued it, which context chunks it retrieves, and how many
// output tokens it generates.
type Request struct {
	// Arrival is the request's arrival time in seconds of virtual time.
	Arrival float64 `json:"t"`
	// Tenant identifies the issuing tenant (0 in single-tenant streams).
	Tenant int `json:"tenant,omitempty"`
	// Chunks are the retrieved chunk ids, in prompt order.
	Chunks []int `json:"chunks"`
	// DecodeTokens is the request's generation length: how many decode
	// steps it runs after its first token. 0 is the legacy prefill-only
	// behaviour (the runtime retires the request at first token), and the
	// field is omitted from traces, so pre-decode traces and goldens stay
	// byte-identical.
	DecodeTokens int `json:"decode,omitempty"`
}

// Validate reports the first structural problem with the request.
func (r Request) Validate() error {
	if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) || r.Arrival < 0 {
		return fmt.Errorf("arrival %v: must be finite and non-negative", r.Arrival)
	}
	if r.Tenant < 0 {
		return fmt.Errorf("tenant %d: negative", r.Tenant)
	}
	if len(r.Chunks) == 0 {
		return fmt.Errorf("no chunks retrieved")
	}
	for i, id := range r.Chunks {
		if id < 0 {
			return fmt.Errorf("chunk %d: negative id %d", i, id)
		}
	}
	if r.DecodeTokens < 0 {
		return fmt.Errorf("decode tokens %d: negative", r.DecodeTokens)
	}
	return nil
}

// Workload yields a deterministic request stream for the serving runtime.
type Workload interface {
	// Name identifies the generator (or trace) in telemetry and errors.
	Name() string
	// Validate reports a descriptive error for degenerate parameters
	// before any request is generated.
	Validate() error
	// Generate returns up to n requests in nondecreasing arrival order,
	// bit-identically for the same seed.
	Generate(n int, seed int64) []Request
}

// Chunks describes how a stream samples each request's context chunks: a
// Zipf-skewed draw over Pool ids, optionally offset into a tenant-private
// id range, with the popularity ranking optionally drifting over time.
type Chunks struct {
	// Pool is the number of distinct chunks in the corpus slice.
	Pool int
	// PerRequest is how many chunks each request retrieves.
	PerRequest int
	// Skew is the popularity skew (sim.Zipf exponent; 0 = uniform).
	Skew float64
	// Offset shifts sampled ids, giving tenants disjoint corpora.
	Offset int
	// DriftPeriod rotates the popularity ranking by DriftStep ids every
	// DriftPeriod seconds of virtual time, so the hot set wanders the way
	// trending documents do — 0 disables drift.
	DriftPeriod float64
	// DriftStep is how many ids one drift period shifts the ranking
	// (default Pool/4 when drifting).
	DriftStep int
}

// Validate reports the first degenerate sampling parameter.
func (c Chunks) Validate() error {
	switch {
	case c.Pool <= 0:
		return fmt.Errorf("chunk pool %d: need at least one chunk", c.Pool)
	case c.PerRequest <= 0:
		return fmt.Errorf("chunks per request %d: need at least one", c.PerRequest)
	case c.Skew < 0:
		return fmt.Errorf("chunk skew %v: negative", c.Skew)
	case c.Offset < 0:
		return fmt.Errorf("chunk offset %d: negative", c.Offset)
	case c.DriftPeriod < 0:
		return fmt.Errorf("drift period %v: negative", c.DriftPeriod)
	case c.DriftStep < 0:
		return fmt.Errorf("drift step %d: negative", c.DriftStep)
	}
	return nil
}

// Sample draws one request's chunk ids at virtual time at. Without offset
// and drift the draw is exactly the runtime's original per-request Zipf
// sampling, consuming g identically.
func (c Chunks) Sample(g *tensor.RNG, at float64) []int {
	shift := 0
	if c.DriftPeriod > 0 {
		step := c.DriftStep
		if step <= 0 {
			step = (c.Pool + 3) / 4
		}
		shift = int(at/c.DriftPeriod) * step
	}
	ids := make([]int, c.PerRequest)
	for j := range ids {
		r := sim.Zipf(g, c.Pool, c.Skew)
		if shift != 0 {
			r = (r + shift) % c.Pool
		}
		ids[j] = c.Offset + r
	}
	return ids
}

// Decode describes how a stream samples each request's generation length
// (the DecodeTokens carried on every Request). The zero value disables
// decode entirely: no request gets a decode budget and — critically — no
// randomness is consumed, so a generator with Decode{} yields the exact
// byte-identical stream it yielded before decode existed.
type Decode struct {
	// Mean is the mean generation length in output tokens; 0 disables
	// decode (the legacy prefill-only stream).
	Mean float64
	// Deterministic emits exactly round(Mean) tokens per request instead
	// of a geometric draw — useful for exact-latency tests and sweeps.
	Deterministic bool
}

// Validate reports the first degenerate decode parameter.
func (d Decode) Validate() error {
	if math.IsNaN(d.Mean) || math.IsInf(d.Mean, 0) || d.Mean < 0 {
		return fmt.Errorf("decode mean %v: must be finite and non-negative", d.Mean)
	}
	return nil
}

// Sample draws one request's generation length. Geometric on {1, 2, …}
// with mean Mean (the empirical shape of output lengths: many short
// answers, a long tail), consuming exactly one uniform draw. On both
// branches a positive mean below one token clamps to a constant one
// token. Mean 0 returns 0 without touching g, preserving pre-decode
// streams bit for bit.
func (d Decode) Sample(g *tensor.RNG) int {
	if d.Mean <= 0 {
		return 0
	}
	if d.Deterministic {
		if d.Mean < 1 {
			return 1
		}
		return int(d.Mean + 0.5)
	}
	u := g.Float64()
	if u <= 0 {
		u = 1e-12
	}
	if d.Mean <= 1 {
		return 1
	}
	// 1 + Geometric(p) on {0,1,…} with p = 1/Mean has mean exactly Mean.
	return 1 + int(math.Log(u)/math.Log(1-1/d.Mean))
}

// expo draws an exponential sample with the given mean.
func expo(g *tensor.RNG, mean float64) float64 {
	u := g.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return -math.Log(u) * mean
}
