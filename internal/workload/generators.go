package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/tensor"
)

// Poisson is the memoryless single-tenant generator the runtime was born
// with: exponential inter-arrival gaps at Rate, i.i.d. Zipf chunk draws.
// It consumes the seed exactly the way the pre-workload runtime did (all
// arrivals first, then chunk ids in arrival order), so serve.Run keeps
// its historical bit-identical results.
type Poisson struct {
	// Rate is the arrival rate in requests/second.
	Rate   float64
	Chunks Chunks
	// Decode samples each request's generation length (zero value =
	// prefill-only, consuming the seed exactly as before decode existed).
	Decode Decode
}

// Name implements Workload.
func (p Poisson) Name() string { return "poisson" }

// Validate implements Workload.
func (p Poisson) Validate() error {
	if p.Rate <= 0 {
		return fmt.Errorf("poisson: rate %v: must be positive", p.Rate)
	}
	if err := p.Chunks.Validate(); err != nil {
		return fmt.Errorf("poisson: %w", err)
	}
	if err := p.Decode.Validate(); err != nil {
		return fmt.Errorf("poisson: %w", err)
	}
	return nil
}

// Generate implements Workload.
func (p Poisson) Generate(n int, seed int64) []Request {
	if n <= 0 {
		return nil
	}
	g := tensor.NewRNG(seed)
	arrivals := sim.PoissonArrivals(g, p.Rate, n)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Arrival: arrivals[i], Chunks: p.Chunks.Sample(g, arrivals[i]),
			DecodeTokens: p.Decode.Sample(g)}
	}
	return reqs
}

// Bursty is a two-state MMPP-style on/off generator: ON windows emit
// Poisson arrivals at Burst× the mean rate, OFF windows are silent, and
// exponentially distributed window lengths keep the long-run mean rate at
// exactly Rate. Burst=1 degenerates to a plain Poisson process. Equal
// mean rate with rising Burst is the experiment queueing theory cares
// about: waiting time is convex in the arrival process, so bursts inflate
// tail TTFT even when the average load is unchanged.
type Bursty struct {
	// Rate is the long-run mean arrival rate in requests/second.
	Rate float64
	// Burst is the peak-to-mean rate factor (≥ 1).
	Burst float64
	// Cycle is the mean ON+OFF cycle length in seconds (default 32/Rate,
	// i.e. a mean of 32 requests per cycle).
	Cycle  float64
	Chunks Chunks
	// Decode samples each request's generation length (zero = prefill-only).
	Decode Decode
}

// Name implements Workload.
func (b Bursty) Name() string { return fmt.Sprintf("bursty×%g", b.Burst) }

// Validate implements Workload.
func (b Bursty) Validate() error {
	switch {
	case b.Rate <= 0:
		return fmt.Errorf("bursty: rate %v: must be positive", b.Rate)
	case b.Burst < 1:
		return fmt.Errorf("bursty: burst factor %v: must be ≥ 1", b.Burst)
	case b.Cycle < 0:
		return fmt.Errorf("bursty: cycle %v: negative", b.Cycle)
	}
	if err := b.Chunks.Validate(); err != nil {
		return fmt.Errorf("bursty: %w", err)
	}
	if err := b.Decode.Validate(); err != nil {
		return fmt.Errorf("bursty: %w", err)
	}
	return nil
}

// Generate implements Workload. Overshooting gaps at a window's end are
// discarded and redrawn at the next window — exact for a Poisson process
// by memorylessness.
func (b Bursty) Generate(n int, seed int64) []Request {
	if n <= 0 {
		return nil
	}
	g := tensor.NewRNG(seed)
	cycle := b.Cycle
	if cycle <= 0 {
		cycle = 32 / b.Rate
	}
	meanOn := cycle / b.Burst
	meanOff := cycle - meanOn
	onRate := b.Rate * b.Burst
	reqs := make([]Request, 0, n)
	t := 0.0
	for len(reqs) < n {
		end := t + expo(g, meanOn)
		for {
			t += expo(g, 1/onRate)
			if t > end || len(reqs) == n {
				break
			}
			reqs = append(reqs, Request{Arrival: t, Chunks: b.Chunks.Sample(g, t),
				DecodeTokens: b.Decode.Sample(g)})
		}
		t = end
		if meanOff > 0 {
			t += expo(g, meanOff)
		}
	}
	return reqs
}

// Diurnal modulates arrivals with a sinusoidal rate curve,
// rate(t) = Rate·(1 + Amplitude·sin(2πt/Period)) — the day/night swing of
// user-facing traffic — via Lewis-Shedler thinning of a Poisson process
// at the peak rate, which samples the inhomogeneous process exactly.
type Diurnal struct {
	// Rate is the mean arrival rate in requests/second.
	Rate float64
	// Amplitude is the relative swing around the mean, in [0, 1].
	Amplitude float64
	// Period is the seconds per simulated "day" (default 64/Rate).
	Period float64
	Chunks Chunks
	// Decode samples each request's generation length (zero = prefill-only).
	Decode Decode
}

// Name implements Workload.
func (d Diurnal) Name() string { return fmt.Sprintf("diurnal×%g", d.Amplitude) }

// Validate implements Workload.
func (d Diurnal) Validate() error {
	switch {
	case d.Rate <= 0:
		return fmt.Errorf("diurnal: rate %v: must be positive", d.Rate)
	case d.Amplitude < 0 || d.Amplitude > 1:
		return fmt.Errorf("diurnal: amplitude %v: must be in [0, 1]", d.Amplitude)
	case d.Period < 0:
		return fmt.Errorf("diurnal: period %v: negative", d.Period)
	}
	if err := d.Chunks.Validate(); err != nil {
		return fmt.Errorf("diurnal: %w", err)
	}
	if err := d.Decode.Validate(); err != nil {
		return fmt.Errorf("diurnal: %w", err)
	}
	return nil
}

// Generate implements Workload.
func (d Diurnal) Generate(n int, seed int64) []Request {
	if n <= 0 {
		return nil
	}
	g := tensor.NewRNG(seed)
	period := d.Period
	if period <= 0 {
		period = 64 / d.Rate
	}
	peak := d.Rate * (1 + d.Amplitude)
	reqs := make([]Request, 0, n)
	t := 0.0
	for len(reqs) < n {
		t += expo(g, 1/peak)
		rate := d.Rate * (1 + d.Amplitude*math.Sin(2*math.Pi*t/period))
		if g.Float64()*peak <= rate {
			reqs = append(reqs, Request{Arrival: t, Chunks: d.Chunks.Sample(g, t),
				DecodeTokens: d.Decode.Sample(g)})
		}
	}
	return reqs
}

// MultiTenant interleaves per-tenant streams into one arrival-ordered
// stream: each tenant generates n requests from a tenant-derived seed,
// the merged stream keeps the earliest n overall, and requests are
// stamped with their tenant's index. Generating n per tenant (rather
// than n/k) keeps every tenant active across the whole simulated span
// even when their rates differ.
type MultiTenant struct {
	// Tenants holds one request stream per tenant; Tenants[i]'s requests
	// are stamped Tenant=i.
	Tenants []Workload
}

// Name implements Workload.
func (m MultiTenant) Name() string { return fmt.Sprintf("multi-tenant(%d)", len(m.Tenants)) }

// Validate implements Workload.
func (m MultiTenant) Validate() error {
	if len(m.Tenants) == 0 {
		return errors.New("multi-tenant: no tenants")
	}
	for i, w := range m.Tenants {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("multi-tenant: tenant %d: %w", i, err)
		}
	}
	return nil
}

// Generate implements Workload. The stable merge breaks equal-arrival
// ties by tenant index, keeping the stream deterministic.
func (m MultiTenant) Generate(n int, seed int64) []Request {
	if n <= 0 {
		return nil
	}
	var all []Request
	for i, w := range m.Tenants {
		// Stamp tenants on copies: a sub-workload may hand out a slice it
		// still owns (Trace.Generate returns its recorded stream).
		for _, r := range w.Generate(n, seed+int64(i)*1_000_003) {
			r.Tenant = i
			all = append(all, r)
		}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].Arrival < all[b].Arrival })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// TenantMix builds a k-tenant Poisson mix over one shared total rate and
// corpus: each tenant gets an equal rate share and a disjoint 1/k slice
// of the pool, per-tenant skew fans out across [0.5, 1.5]× the base skew
// (tenant 0 most uniform, tenant k−1 most head-heavy), and odd tenants'
// popularity rankings drift a quarter of their slice every driftPeriod
// seconds (0 = no drift). Per-tenant mean generation lengths fan out the
// same way across [0.5, 1.5]× dec.Mean — tenant 0 gives terse answers,
// tenant k−1 long ones — clamped to at least one token; Decode{} keeps
// the whole mix prefill-only and seed-compatible with the pre-decode
// streams. It is the mix the serving CLI's -tenants flag and the golden
// multi-tenant traces use.
func TenantMix(k int, rate float64, ch Chunks, driftPeriod float64, dec Decode) MultiTenant {
	if k < 1 {
		k = 1
	}
	slice := ch.Pool / k
	tenants := make([]Workload, k)
	for i := 0; i < k; i++ {
		tc := ch
		tc.Pool = slice
		tc.Offset = ch.Offset + i*slice
		td := dec
		if k > 1 {
			fan := 0.5 + float64(i)/float64(k-1)
			tc.Skew = ch.Skew * fan
			if dec.Mean > 0 {
				td.Mean = dec.Mean * fan
				if td.Mean < 1 {
					td.Mean = 1
				}
			}
		}
		if i%2 == 1 {
			tc.DriftPeriod = driftPeriod
		}
		tenants[i] = Poisson{Rate: rate / float64(k), Chunks: tc, Decode: td}
	}
	return MultiTenant{Tenants: tenants}
}
