package workload

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tensor"
)

func testChunks() Chunks {
	return Chunks{Pool: 200, PerRequest: 6, Skew: 0.8}
}

// gaps returns the inter-arrival gaps of a stream.
func gaps(reqs []Request) []float64 {
	out := make([]float64, 0, len(reqs))
	prev := 0.0
	for _, r := range reqs {
		out = append(out, r.Arrival-prev)
		prev = r.Arrival
	}
	return out
}

func meanRate(reqs []Request) float64 {
	if len(reqs) == 0 || reqs[len(reqs)-1].Arrival <= 0 {
		return 0
	}
	return float64(len(reqs)) / reqs[len(reqs)-1].Arrival
}

// TestPoissonMatchesLegacySampling pins the seed compatibility serve.Run
// depends on: Poisson.Generate must consume the RNG exactly like the
// pre-workload runtime (all arrivals first, then chunk ids in order).
func TestPoissonMatchesLegacySampling(t *testing.T) {
	const n, seed = 50, 9
	ch := testChunks()
	got := Poisson{Rate: 2, Chunks: ch}.Generate(n, seed)

	g := tensor.NewRNG(seed)
	arrivals := sim.PoissonArrivals(g, 2, n)
	for i := 0; i < n; i++ {
		if got[i].Arrival != arrivals[i] {
			t.Fatalf("request %d arrival %v, legacy %v", i, got[i].Arrival, arrivals[i])
		}
		for j := 0; j < ch.PerRequest; j++ {
			want := sim.Zipf(g, ch.Pool, ch.Skew)
			if got[i].Chunks[j] != want {
				t.Fatalf("request %d chunk %d = %d, legacy %d", i, j, got[i].Chunks[j], want)
			}
		}
		if got[i].Tenant != 0 {
			t.Fatalf("single-tenant stream stamped tenant %d", got[i].Tenant)
		}
	}
}

// TestGeneratorsCommonProperties checks every generator yields valid,
// arrival-ordered, deterministic streams at roughly its nominal rate.
func TestGeneratorsCommonProperties(t *testing.T) {
	ch := testChunks()
	const rate = 4.0
	cases := []Workload{
		Poisson{Rate: rate, Chunks: ch},
		Bursty{Rate: rate, Burst: 8, Chunks: ch},
		Diurnal{Rate: rate, Amplitude: 0.8, Chunks: ch},
		TenantMix(4, rate, ch, 50, Decode{}),
	}
	for _, w := range cases {
		t.Run(w.Name(), func(t *testing.T) {
			if err := w.Validate(); err != nil {
				t.Fatal(err)
			}
			const n = 4000
			reqs := w.Generate(n, 3)
			if len(reqs) != n {
				t.Fatalf("generated %d requests, want %d", len(reqs), n)
			}
			prev := math.Inf(-1)
			for i, r := range reqs {
				if err := r.Validate(); err != nil {
					t.Fatalf("request %d invalid: %v", i, err)
				}
				if r.Arrival < prev {
					t.Fatalf("request %d arrival %v before %v", i, r.Arrival, prev)
				}
				prev = r.Arrival
			}
			// Long-run mean rate within 15% of nominal.
			if m := meanRate(reqs); m < 0.85*rate || m > 1.15*rate {
				t.Fatalf("measured mean rate %.2f, nominal %v", m, rate)
			}
			if !reflect.DeepEqual(reqs, w.Generate(n, 3)) {
				t.Fatal("same seed must reproduce the stream")
			}
			again := w.Generate(n, 4)
			if reflect.DeepEqual(reqs, again) {
				t.Fatal("different seeds produced identical streams")
			}
		})
	}
}

// TestBurstyInflatesVariability: at equal mean rate, the bursty stream's
// inter-arrival coefficient of variation must far exceed Poisson's ≈1,
// and grow with the burst factor.
func TestBurstyInflatesVariability(t *testing.T) {
	ch := testChunks()
	const n, rate = 8000, 4.0
	cv := func(w Workload) float64 { return metrics.CoefVar(gaps(w.Generate(n, 5))) }
	poisson := cv(Poisson{Rate: rate, Chunks: ch})
	if poisson < 0.8 || poisson > 1.2 {
		t.Fatalf("poisson inter-arrival CV %.2f, want ≈1", poisson)
	}
	b4 := cv(Bursty{Rate: rate, Burst: 4, Chunks: ch})
	b16 := cv(Bursty{Rate: rate, Burst: 16, Chunks: ch})
	if b4 < 1.3*poisson {
		t.Fatalf("burst×4 CV %.2f not clearly above poisson %.2f", b4, poisson)
	}
	if b16 <= b4 {
		t.Fatalf("CV must grow with burstiness: ×16 %.2f vs ×4 %.2f", b16, b4)
	}
}

// TestBurstyDegeneratesToPoisson: Burst=1 has no OFF windows, so the
// stream is statistically Poisson (CV ≈ 1).
func TestBurstyDegeneratesToPoisson(t *testing.T) {
	cvv := metrics.CoefVar(gaps(Bursty{Rate: 4, Burst: 1, Chunks: testChunks()}.Generate(8000, 6)))
	if cvv < 0.8 || cvv > 1.2 {
		t.Fatalf("burst=1 inter-arrival CV %.2f, want ≈1", cvv)
	}
}

// TestDiurnalRateCurve: the first half of each period (sin > 0) must
// carry visibly more arrivals than the second half.
func TestDiurnalRateCurve(t *testing.T) {
	d := Diurnal{Rate: 4, Amplitude: 0.9, Period: 100, Chunks: testChunks()}
	reqs := d.Generate(6000, 7)
	var up, down int
	for _, r := range reqs {
		if math.Mod(r.Arrival, d.Period) < d.Period/2 {
			up++
		} else {
			down++
		}
	}
	if up < down*2 {
		t.Fatalf("day half %d arrivals vs night half %d: curve too flat", up, down)
	}
}

// TestMultiTenantMerge: tenants are stamped, the merge is
// arrival-ordered, and every tenant appears across the whole span.
func TestMultiTenantMerge(t *testing.T) {
	m := TenantMix(3, 6, Chunks{Pool: 300, PerRequest: 4, Skew: 0.8}, 0, Decode{})
	const n = 3000
	reqs := m.Generate(n, 8)
	if len(reqs) != n {
		t.Fatalf("generated %d, want %d", len(reqs), n)
	}
	seen := map[int]int{}
	for _, r := range reqs {
		seen[r.Tenant]++
	}
	if len(seen) != 3 {
		t.Fatalf("tenants seen: %v, want 3", seen)
	}
	for tenant, count := range seen {
		if count < n/6 {
			t.Fatalf("tenant %d only %d/%d requests — equal rate shares should balance", tenant, count, n)
		}
	}
	// Disjoint corpora: tenant i draws only from its pool slice.
	for i, r := range reqs {
		lo, hi := r.Tenant*100, (r.Tenant+1)*100
		for _, id := range r.Chunks {
			if id < lo || id >= hi {
				t.Fatalf("request %d (tenant %d) chunk %d outside slice [%d,%d)", i, r.Tenant, id, lo, hi)
			}
		}
	}
	// Late tenants still arrive near the stream's end.
	last := map[int]float64{}
	for _, r := range reqs {
		last[r.Tenant] = r.Arrival
	}
	end := reqs[n-1].Arrival
	for tenant, at := range last {
		if at < 0.9*end {
			t.Fatalf("tenant %d went quiet at %.1f of %.1f — truncation starved it", tenant, at, end)
		}
	}
}

// TestMultiTenantDoesNotMutateSubStreams: a Trace reused as several
// tenants hands out its own backing slice; stamping tenants must copy,
// not write through it.
func TestMultiTenantDoesNotMutateSubStreams(t *testing.T) {
	tr := Trace{Label: "shared", Reqs: []Request{
		{Arrival: 1, Chunks: []int{1}},
		{Arrival: 2, Chunks: []int{2}},
	}}
	m := MultiTenant{Tenants: []Workload{tr, tr}}
	reqs := m.Generate(4, 1)
	seen := map[int]int{}
	for _, r := range reqs {
		seen[r.Tenant]++
	}
	if seen[0] != 2 || seen[1] != 2 {
		t.Fatalf("tenant stamping leaked across aliased sub-streams: %v", seen)
	}
	for i, r := range tr.Reqs {
		if r.Tenant != 0 {
			t.Fatalf("Generate mutated the shared trace: request %d now tenant %d", i, r.Tenant)
		}
	}
}

// TestTenantMixSkewFansOut: higher-index tenants get heavier-headed
// popularity — their top decile of the slice draws a larger share.
func TestTenantMixSkewFansOut(t *testing.T) {
	m := TenantMix(3, 6, Chunks{Pool: 300, PerRequest: 4, Skew: 0.8}, 0, Decode{})
	reqs := m.Generate(9000, 11)
	headShare := func(tenant int) float64 {
		head, total := 0, 0
		for _, r := range reqs {
			if r.Tenant != tenant {
				continue
			}
			for _, id := range r.Chunks {
				total++
				if id-tenant*100 < 10 { // top decile of the tenant's slice
					head++
				}
			}
		}
		return float64(head) / float64(total)
	}
	t0, t2 := headShare(0), headShare(2)
	if t2 <= t0 {
		t.Fatalf("tenant 2 (skew 1.2×base) head share %.2f not above tenant 0 (0.4×base) %.2f", t2, t0)
	}
}

// TestPopularityDrift: with drift enabled, the most popular chunks of the
// stream's first quarter differ from the last quarter's.
func TestPopularityDrift(t *testing.T) {
	ch := Chunks{Pool: 100, PerRequest: 4, Skew: 1.2, DriftPeriod: 40}
	reqs := Poisson{Rate: 4, Chunks: ch}.Generate(4000, 12)
	top := func(part []Request) int {
		counts := map[int]int{}
		for _, r := range part {
			for _, id := range r.Chunks {
				counts[id]++
			}
		}
		best, bestN := -1, -1
		ids := make([]int, 0, len(counts))
		for id := range counts {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if counts[id] > bestN {
				best, bestN = id, counts[id]
			}
		}
		return best
	}
	early := top(reqs[:1000])
	late := top(reqs[3000:])
	if early == late {
		t.Fatalf("hot chunk %d did not drift over %d periods", early, int(reqs[len(reqs)-1].Arrival/ch.DriftPeriod))
	}

	still := Poisson{Rate: 4, Chunks: Chunks{Pool: 100, PerRequest: 4, Skew: 1.2}}.Generate(4000, 12)
	if top(still[:1000]) != top(still[3000:]) {
		t.Fatal("without drift the hot chunk should be stable")
	}
}

// TestValidateRejectsDegenerateParameters covers every generator's
// validation error paths with recognisable messages.
func TestValidateRejectsDegenerateParameters(t *testing.T) {
	ch := testChunks()
	cases := []struct {
		w    Workload
		want string
	}{
		{Poisson{Rate: 0, Chunks: ch}, "rate"},
		{Poisson{Rate: 1, Chunks: Chunks{Pool: 0, PerRequest: 6}}, "chunk pool"},
		{Poisson{Rate: 1, Chunks: Chunks{Pool: 10, PerRequest: 0}}, "chunks per request"},
		{Poisson{Rate: 1, Chunks: Chunks{Pool: 10, PerRequest: 2, Skew: -0.5}}, "skew"},
		{Poisson{Rate: 1, Chunks: Chunks{Pool: 10, PerRequest: 2, Offset: -1}}, "offset"},
		{Poisson{Rate: 1, Chunks: Chunks{Pool: 10, PerRequest: 2, DriftPeriod: -1}}, "drift period"},
		{Bursty{Rate: -1, Burst: 4, Chunks: ch}, "rate"},
		{Bursty{Rate: 1, Burst: 0.5, Chunks: ch}, "burst factor"},
		{Bursty{Rate: 1, Burst: 2, Cycle: -3, Chunks: ch}, "cycle"},
		{Diurnal{Rate: 1, Amplitude: 1.5, Chunks: ch}, "amplitude"},
		{Diurnal{Rate: 0, Chunks: ch}, "rate"},
		{MultiTenant{}, "no tenants"},
		{MultiTenant{Tenants: []Workload{Poisson{Rate: 0, Chunks: ch}}}, "tenant 0"},
		{Trace{}, "no requests"},
	}
	for _, c := range cases {
		err := c.w.Validate()
		if err == nil {
			t.Fatalf("%T %+v: expected error", c.w, c.w)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%T error %q does not mention %q", c.w, err, c.want)
		}
	}
	if err := (Poisson{Rate: 1, Chunks: ch}).Validate(); err != nil {
		t.Fatalf("valid generator rejected: %v", err)
	}
}
