// Closed-loop clients: the generators elsewhere in this package are
// open-loop — arrivals are a fixed function of the seed, so offered load
// never reacts to how the system is doing, and behaviour at saturation is
// an artifact of unbounded queue growth. Real serving clients are
// closed-loop: a finite pool of users each issue a request, wait for the
// answer, think, and only then ask again, so overload self-throttles at
// clients/(service+think). The ClosedLoop workload models that pool; its
// arrivals depend on request completions, which only the serving runtime
// knows, so it extends the Workload contract with a per-run Session the
// runtime feeds completion times back into.
package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Issue is one closed-loop issuance: the request plus the client slot
// that issued it. The runtime reports the request's completion back to
// the session under the same client index to get that client's next
// request.
type Issue struct {
	// Client is the pool-wide client index in [0, Clients()).
	Client int
	// Req is the issued request.
	Req Request
}

// Session is the stateful arrival side of one closed-loop run: it hands
// out each client's first request up front and every later request in
// response to a completion. A session is consumed by exactly one run and
// is not safe for concurrent use (the deterministic simulator drives it
// from a single virtual-time thread).
type Session interface {
	// Clients returns the pool-wide client count.
	Clients() int
	// Initial returns every client's first request in nondecreasing
	// arrival order, truncated to the session's request budget.
	Initial() []Issue
	// Complete records that the given client's outstanding request
	// finished at virtual time `at` and returns the client's next issue,
	// whose arrival is `at` plus a think-time draw. ok is false once the
	// session has issued its full request budget — the client retires.
	Complete(client int, at float64) (Issue, bool)
}

// ClosedLoopWorkload is the optional closed-loop extension of Workload.
// serve.RunWorkload detects it and drives arrivals from request
// completions instead of pre-materialising the stream with Generate;
// plain open-loop workloads (and every existing golden) are untouched.
type ClosedLoopWorkload interface {
	Workload
	// Session opens the stateful arrival session for one run, budgeted to
	// at most n requests in total across all clients.
	Session(n int, seed int64) Session
}

// ClosedLoop is a closed-loop client pool: Tenants tenant pools of
// Clients concurrent clients each. Every client issues one request,
// waits for its completion, thinks for an exponentially distributed
// Think seconds, then issues its next — so each client has at most one
// request outstanding and a tenant never exceeds Clients in-flight
// requests. Tenants slice the chunk pool the way TenantMix does:
// disjoint corpus slices with per-tenant skew fanned across [0.5, 1.5]×
// the base skew, and per-tenant decode means fanned the same way.
type ClosedLoop struct {
	// Tenants is the number of tenant pools (0 = 1, single-tenant).
	Tenants int
	// Clients is the per-tenant concurrency limit: how many clients of
	// each tenant can have a request outstanding at once.
	Clients int
	// Think is the mean think time in seconds between a client's request
	// completing and its next request being issued. Must be positive: the
	// think gap is what makes a closed loop stable (and keeps per-client
	// arrivals strictly after completions).
	Think float64
	// Chunks describes the shared corpus the tenant slices divide.
	Chunks Chunks
	// Decode samples generation lengths (zero value = prefill-only).
	Decode Decode
}

// tenants returns the effective tenant count.
func (c ClosedLoop) tenants() int {
	if c.Tenants <= 0 {
		return 1
	}
	return c.Tenants
}

// Name implements Workload.
func (c ClosedLoop) Name() string {
	return fmt.Sprintf("closed-loop(%d×%d)", c.tenants(), c.Clients)
}

// Validate implements Workload.
func (c ClosedLoop) Validate() error {
	switch {
	case c.Tenants < 0:
		return fmt.Errorf("closed-loop: tenants %d: negative", c.Tenants)
	case c.Clients <= 0:
		return fmt.Errorf("closed-loop: clients %d: need at least one per tenant", c.Clients)
	case math.IsNaN(c.Think) || math.IsInf(c.Think, 0) || c.Think <= 0:
		return fmt.Errorf("closed-loop: think time %v: must be positive and finite", c.Think)
	}
	if err := c.Chunks.Validate(); err != nil {
		return fmt.Errorf("closed-loop: %w", err)
	}
	if c.Chunks.Pool < c.tenants() {
		return fmt.Errorf("closed-loop: chunk pool %d below %d tenants: every tenant needs a corpus slice",
			c.Chunks.Pool, c.tenants())
	}
	if err := c.Decode.Validate(); err != nil {
		return fmt.Errorf("closed-loop: %w", err)
	}
	return nil
}

// Generate implements Workload. Without completion feedback only the
// initial wave exists — each client's first request — so Generate returns
// exactly that, up to n requests. It makes the pool inspectable (and
// recordable) but is NOT the closed-loop stream: run the workload through
// serve.RunWorkload to get feedback-driven arrivals.
func (c ClosedLoop) Generate(n int, seed int64) []Request {
	issues := c.Session(n, seed).Initial()
	reqs := make([]Request, len(issues))
	for i, iss := range issues {
		reqs[i] = iss.Req
	}
	return reqs
}

// Session implements ClosedLoopWorkload.
func (c ClosedLoop) Session(n int, seed int64) Session {
	k := c.tenants()
	slice := c.Chunks.Pool / k
	s := &clientPool{budget: n}
	s.clients = make([]client, k*c.Clients)
	for i := range s.clients {
		tenant := i / c.Clients
		ch := c.Chunks
		ch.Pool = slice
		ch.Offset = c.Chunks.Offset + tenant*slice
		dec := c.Decode
		if k > 1 {
			// The TenantMix fan-out: tenant 0 most uniform and terse,
			// tenant k−1 most head-heavy and long-winded.
			fan := 0.5 + float64(tenant)/float64(k-1)
			ch.Skew = c.Chunks.Skew * fan
			if dec.Mean > 0 {
				dec.Mean = c.Decode.Mean * fan
				if dec.Mean < 1 {
					dec.Mean = 1
				}
			}
		}
		s.clients[i] = client{
			// A private stream per client keeps think times and chunk
			// draws independent of every other client's progress (the
			// MultiTenant per-tenant seed idiom, at client granularity).
			g:      tensor.NewRNG(seed + int64(i)*7_368_787),
			tenant: tenant,
			chunks: ch,
			decode: dec,
			think:  c.Think,
		}
	}
	return s
}

// client is one closed-loop client's sampling state.
type client struct {
	g      *tensor.RNG
	tenant int
	chunks Chunks
	decode Decode
	think  float64
}

// clientPool is the Session a ClosedLoop opens: the per-client RNG
// streams plus the remaining request budget.
type clientPool struct {
	clients []client
	budget  int // requests left to issue
}

// Clients implements Session.
func (s *clientPool) Clients() int { return len(s.clients) }

// issue draws client ci's next request, arriving a think-time draw after
// `after`. ok is false once the budget is spent.
func (s *clientPool) issue(ci int, after float64) (Issue, bool) {
	if s.budget <= 0 {
		return Issue{}, false
	}
	s.budget--
	c := &s.clients[ci]
	t := after + expo(c.g, c.think)
	return Issue{Client: ci, Req: Request{
		Arrival:      t,
		Tenant:       c.tenant,
		Chunks:       c.chunks.Sample(c.g, t),
		DecodeTokens: c.decode.Sample(c.g),
	}}, true
}

// Initial implements Session: every client's first request (each starts
// mid-think, so the pool ramps in rather than stampeding at t=0), sorted
// by arrival with client index breaking ties deterministically.
func (s *clientPool) Initial() []Issue {
	out := make([]Issue, 0, len(s.clients))
	for ci := range s.clients {
		iss, ok := s.issue(ci, 0)
		if !ok {
			break // budget below the pool size: the rest never start
		}
		out = append(out, iss)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Req.Arrival != out[b].Req.Arrival {
			return out[a].Req.Arrival < out[b].Req.Arrival
		}
		return out[a].Client < out[b].Client
	})
	return out
}

// Complete implements Session.
func (s *clientPool) Complete(ci int, at float64) (Issue, bool) {
	if ci < 0 || ci >= len(s.clients) {
		panic(fmt.Sprintf("workload: closed-loop completion for unknown client %d of %d", ci, len(s.clients)))
	}
	return s.issue(ci, at)
}
