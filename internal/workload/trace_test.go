package workload

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleStream(t *testing.T) []Request {
	t.Helper()
	reqs := TenantMix(2, 4, Chunks{Pool: 100, PerRequest: 3, Skew: 0.9}, 25, Decode{}).Generate(200, 2)
	if len(reqs) != 200 {
		t.Fatalf("sample stream has %d requests", len(reqs))
	}
	return reqs
}

func TestTraceRoundTrip(t *testing.T) {
	reqs := sampleStream(t)
	var buf bytes.Buffer
	if err := Record(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatal("decoded trace differs from recorded stream")
	}
	// Canonical encoding: a second encode pass is byte-identical.
	var again bytes.Buffer
	if err := Record(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-encoding a decoded trace changed the bytes")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	reqs := sampleStream(t)
	path := filepath.Join(t.TempDir(), "stream.jsonl")
	if err := RecordFile(path, reqs); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Label != "stream.jsonl" {
		t.Fatalf("label %q", tr.Label)
	}
	if !reflect.DeepEqual(tr.Reqs, reqs) {
		t.Fatal("file round trip differs")
	}
	if got := tr.Generate(50, 999); !reflect.DeepEqual(got, reqs[:50]) {
		t.Fatal("Trace.Generate(50) should return the first 50 requests")
	}
	if got := tr.Generate(10_000, 0); !reflect.DeepEqual(got, reqs) {
		t.Fatal("Trace.Generate past the end should return everything")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("missing file should error")
	}
}

// TestLoadRejectsCorruptTraces: every malformed input yields a
// descriptive error naming the offending line.
func TestLoadRejectsCorruptTraces(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"bad json", "{not json\n", "line 1"},
		{"unknown field", `{"t":1,"chunks":[0],"extra":1}` + "\n", "line 1"},
		{"trailing data", `{"t":1,"chunks":[0]} {"t":2,"chunks":[0]}` + "\n", "trailing"},
		{"negative arrival", `{"t":-1,"chunks":[0]}` + "\n", "arrival"},
		{"nan arrival", `{"t":"x","chunks":[0]}` + "\n", "line 1"},
		{"negative tenant", `{"t":1,"tenant":-2,"chunks":[0]}` + "\n", "tenant"},
		{"no chunks", `{"t":1,"chunks":[]}` + "\n", "no chunks"},
		{"negative chunk", `{"t":1,"chunks":[3,-4]}` + "\n", "negative id"},
		{"out of order", `{"t":2,"chunks":[0]}` + "\n" + `{"t":1,"chunks":[0]}` + "\n", "line 2"},
		{"empty", "", "no requests"},
		{"blank lines only", "\n\n  \n", "no requests"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("accepted corrupt trace %q", c.in)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestLoadTolerates: whitespace and blank lines between records are fine;
// an explicit tenant 0 decodes like an omitted one.
func TestLoadTolerates(t *testing.T) {
	in := "\n" + `  {"t":1,"chunks":[5]}  ` + "\n\n" + `{"t":2,"tenant":0,"chunks":[6,7]}` + "\n"
	got, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Request{{Arrival: 1, Chunks: []int{5}}, {Arrival: 2, Chunks: []int{6, 7}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestRecordRejectsInvalidRequests(t *testing.T) {
	var buf bytes.Buffer
	err := Record(&buf, []Request{{Arrival: 1, Chunks: nil}})
	if err == nil || !strings.Contains(err.Error(), "request 0") {
		t.Fatalf("Record accepted an invalid request: %v", err)
	}
}
