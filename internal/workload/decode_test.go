package workload

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// TestDecodeZeroPreservesLegacyStreams is the seed-compatibility
// guarantee the golden suite rides on: a generator with the zero Decode
// must yield the exact stream it yielded before decode existed —
// Decode{}.Sample consumes no randomness at all.
func TestDecodeZeroPreservesLegacyStreams(t *testing.T) {
	ch := testChunks()
	cases := []struct {
		name           string
		plain, decoded Workload
	}{
		{"poisson", Poisson{Rate: 2, Chunks: ch}, Poisson{Rate: 2, Chunks: ch, Decode: Decode{}}},
		{"bursty", Bursty{Rate: 2, Burst: 8, Chunks: ch}, Bursty{Rate: 2, Burst: 8, Chunks: ch, Decode: Decode{}}},
		{"diurnal", Diurnal{Rate: 2, Amplitude: 0.7, Chunks: ch}, Diurnal{Rate: 2, Amplitude: 0.7, Chunks: ch, Decode: Decode{}}},
	}
	for _, c := range cases {
		a := c.plain.Generate(300, 5)
		b := c.decoded.Generate(300, 5)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: zero Decode changed the stream", c.name)
		}
		for i, r := range a {
			if r.DecodeTokens != 0 {
				t.Fatalf("%s: request %d has decode budget %d without a Decode config", c.name, i, r.DecodeTokens)
			}
		}
	}
}

// TestDecodeGeometricMean: the geometric sampler's empirical mean must
// land near the configured mean, every draw at least one token.
func TestDecodeGeometricMean(t *testing.T) {
	g := tensor.NewRNG(7)
	const mean, n = 48.0, 20000
	d := Decode{Mean: mean}
	sum, min := 0, 1<<30
	for i := 0; i < n; i++ {
		k := d.Sample(g)
		if k < 1 {
			t.Fatalf("draw %d: %d tokens, want ≥ 1", i, k)
		}
		if k < min {
			min = k
		}
		sum += k
	}
	got := float64(sum) / n
	if math.Abs(got-mean) > 0.05*mean {
		t.Fatalf("empirical mean %.2f, want ≈ %.0f", got, mean)
	}
	if min != 1 {
		t.Fatalf("20k geometric draws never hit the 1-token floor (min %d)", min)
	}
}

// TestDecodeDeterministic: the fixed distribution emits exactly
// round(Mean) without consuming randomness.
func TestDecodeDeterministic(t *testing.T) {
	d := Decode{Mean: 32.4, Deterministic: true}
	g := tensor.NewRNG(1)
	before := g.Float64()
	g = tensor.NewRNG(1)
	for i := 0; i < 5; i++ {
		if k := d.Sample(g); k != 32 {
			t.Fatalf("draw %d: %d tokens, want 32", i, k)
		}
	}
	if g.Float64() != before {
		t.Fatal("deterministic sampling consumed randomness")
	}
	// A positive sub-token mean clamps to one token on both branches —
	// never silently back to the prefill-only 0.
	if k := (Decode{Mean: 0.4, Deterministic: true}).Sample(g); k != 1 {
		t.Fatalf("deterministic mean 0.4 sampled %d tokens, want 1", k)
	}
	if k := (Decode{Mean: 0.4}).Sample(g); k != 1 {
		t.Fatalf("geometric mean 0.4 sampled %d tokens, want 1", k)
	}
}

// TestDecodeValidate rejects non-finite and negative means.
func TestDecodeValidate(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := (Decode{Mean: bad}).Validate(); err == nil {
			t.Fatalf("mean %v accepted", bad)
		}
		w := Poisson{Rate: 1, Chunks: testChunks(), Decode: Decode{Mean: bad}}
		if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "decode") {
			t.Fatalf("poisson with decode mean %v: %v", bad, err)
		}
	}
	if err := (Decode{Mean: 0}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratorsCarryDecode: every generator stamps sampled budgets on
// its requests when decode is enabled.
func TestGeneratorsCarryDecode(t *testing.T) {
	ch := testChunks()
	dec := Decode{Mean: 16}
	cases := []Workload{
		Poisson{Rate: 3, Chunks: ch, Decode: dec},
		Bursty{Rate: 3, Burst: 6, Chunks: ch, Decode: dec},
		Diurnal{Rate: 3, Amplitude: 0.5, Chunks: ch, Decode: dec},
		TenantMix(3, 3, ch, 0, dec),
	}
	for _, w := range cases {
		reqs := w.Generate(600, 11)
		sum := 0
		for i, r := range reqs {
			if r.DecodeTokens < 1 {
				t.Fatalf("%s: request %d has no decode budget", w.Name(), i)
			}
			sum += r.DecodeTokens
		}
		mean := float64(sum) / float64(len(reqs))
		if mean < 8 || mean > 32 {
			t.Fatalf("%s: mean decode budget %.1f implausible for configured mean 16", w.Name(), mean)
		}
	}
}

// TestTenantMixDecodeFansOut: per-tenant mean generation lengths fan out
// like the skew — the last tenant generates markedly more than the first.
func TestTenantMixDecodeFansOut(t *testing.T) {
	m := TenantMix(3, 6, Chunks{Pool: 300, PerRequest: 4, Skew: 0.8}, 0, Decode{Mean: 40})
	reqs := m.Generate(3000, 4)
	sums := map[int]int{}
	counts := map[int]int{}
	for _, r := range reqs {
		sums[r.Tenant] += r.DecodeTokens
		counts[r.Tenant]++
	}
	mean := func(tn int) float64 { return float64(sums[tn]) / float64(counts[tn]) }
	if mean(2) < 1.5*mean(0) {
		t.Fatalf("decode means did not fan out: tenant0 %.1f tenant2 %.1f", mean(0), mean(2))
	}
}

// TestTraceDecodeBackwardCompat: the "decode" field round-trips, is
// omitted when zero (pre-decode traces re-record byte-identically), and
// legacy trace lines without it load as prefill-only requests.
func TestTraceDecodeBackwardCompat(t *testing.T) {
	// A legacy-format line (no decode field) loads with DecodeTokens 0.
	legacy := "{\"t\":0.5,\"chunks\":[1,2]}\n"
	reqs, err := Load(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].DecodeTokens != 0 {
		t.Fatalf("legacy line decoded with budget %d", reqs[0].DecodeTokens)
	}
	// Re-recording it reproduces the legacy bytes: no decode key appears.
	var buf bytes.Buffer
	if err := Record(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	if buf.String() != legacy {
		t.Fatalf("re-recorded legacy line changed:\n%q\n%q", buf.String(), legacy)
	}

	// Decode-carrying requests round-trip exactly.
	stream := Poisson{Rate: 2, Chunks: testChunks(), Decode: Decode{Mean: 24}}.Generate(100, 3)
	buf.Reset()
	if err := Record(&buf, stream); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"decode\":") {
		t.Fatal("decode budgets missing from the recorded trace")
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, stream) {
		t.Fatal("decode-carrying trace did not round-trip")
	}

	// Negative budgets are rejected with a line number.
	if _, err := Load(strings.NewReader("{\"t\":0,\"chunks\":[1],\"decode\":-3}\n")); err == nil ||
		!strings.Contains(err.Error(), "line 1") {
		t.Fatalf("negative decode accepted: %v", err)
	}
}
