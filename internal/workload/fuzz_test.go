package workload

import (
	"bytes"
	"testing"
)

// FuzzTraceRoundTrip throws arbitrary bytes at the JSONL trace decoder:
// it must never panic, and whenever it accepts an input, the encoding
// must be canonical — encode→decode→encode is byte-stable and the decoded
// requests survive unchanged.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte(`{"t":0.5,"chunks":[3,0,17]}` + "\n" + `{"t":1.25,"tenant":2,"chunks":[51]}` + "\n"))
	f.Add([]byte(`{"t":0,"chunks":[0]}`))
	f.Add([]byte(`{"t":1e-3,"chunks":[1,2,3,4,5,6]}` + "\n"))
	f.Add([]byte("{not json\n"))
	f.Add([]byte(`{"t":-1,"chunks":[0]}`))
	f.Add([]byte(`{"t":0.5,"chunks":[2],"decode":40}` + "\n"))
	f.Add([]byte(`{"t":0.5,"chunks":[2],"decode":-7}`))
	f.Add([]byte(""))
	var buf bytes.Buffer
	if err := Record(&buf, Bursty{Rate: 3, Burst: 6, Chunks: Chunks{Pool: 40, PerRequest: 2, Skew: 1.1},
		Decode: Decode{Mean: 12}}.Generate(30, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		var enc1 bytes.Buffer
		if err := Record(&enc1, reqs); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		again, err := Load(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if len(again) != len(reqs) {
			t.Fatalf("round trip changed request count: %d → %d", len(reqs), len(again))
		}
		var enc2 bytes.Buffer
		if err := Record(&enc2, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("encoding not canonical:\n%q\n%q", enc1.Bytes(), enc2.Bytes())
		}
	})
}
