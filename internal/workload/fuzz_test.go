package workload

import (
	"bytes"
	"testing"
)

// FuzzTraceRoundTrip throws arbitrary bytes at the JSONL trace decoder:
// it must never panic, and whenever it accepts an input, the encoding
// must be canonical — encode→decode→encode is byte-stable and the decoded
// requests survive unchanged.
// FuzzClosedLoop drives a closed-loop session with arbitrary pool shapes
// and completion schedules and checks the contract the serving runtime
// leans on: the session always answers (no deadlock — every Complete
// either issues or reports the budget spent), per-client arrivals are
// strictly after the completion that triggered them and strictly
// increase, no client ever has more than one request outstanding (so a
// tenant never exceeds its Clients concurrency limit), and exactly n
// requests are issued in total.
func FuzzClosedLoop(f *testing.F) {
	f.Add(int64(1), 3, 4, uint8(20), []byte{0, 1, 2, 3, 4, 5})
	f.Add(int64(7), 1, 1, uint8(5), []byte{0, 0, 0, 0})
	f.Add(int64(42), 5, 2, uint8(40), []byte{9, 3, 7, 1, 250})
	f.Add(int64(-3), 2, 8, uint8(2), []byte{})

	f.Fuzz(func(t *testing.T, seed int64, tenants, clients int, n uint8, picks []byte) {
		if tenants < 0 || tenants > 8 || clients < 1 || clients > 8 {
			return
		}
		w := ClosedLoop{Tenants: tenants, Clients: clients, Think: 0.5,
			Chunks: Chunks{Pool: 64, PerRequest: 2, Skew: 0.8}, Decode: Decode{Mean: 4}}
		if err := w.Validate(); err != nil {
			t.Fatalf("fuzz workload invalid: %v", err)
		}
		sess := w.Session(int(n), seed)

		// outstanding[ci] is the client's in-flight arrival (NaN = idle).
		outstanding := make([]float64, sess.Clients())
		last := make([]float64, sess.Clients())
		for ci := range outstanding {
			outstanding[ci] = -1
		}
		issued := 0
		note := func(iss Issue) {
			if iss.Client < 0 || iss.Client >= sess.Clients() {
				t.Fatalf("issue from client %d of %d", iss.Client, sess.Clients())
			}
			if outstanding[iss.Client] >= 0 {
				t.Fatalf("client %d issued while a request was outstanding: concurrency limit broken", iss.Client)
			}
			if iss.Req.Arrival <= last[iss.Client] {
				t.Fatalf("client %d arrival %v not after %v", iss.Client, iss.Req.Arrival, last[iss.Client])
			}
			if err := iss.Req.Validate(); err != nil {
				t.Fatalf("issued invalid request: %v", err)
			}
			outstanding[iss.Client] = iss.Req.Arrival
			last[iss.Client] = iss.Req.Arrival
			issued++
		}
		for _, iss := range sess.Initial() {
			note(iss)
		}
		now := 0.0
		// Complete in an arbitrary (fuzzer-chosen) order among in-flight
		// clients; the session must keep answering regardless.
		for step := 0; issued < int(n) || anyOutstanding(outstanding); step++ {
			busy := make([]int, 0, len(outstanding))
			for ci, a := range outstanding {
				if a >= 0 {
					busy = append(busy, ci)
				}
			}
			if len(busy) == 0 {
				break // budget spent and everything completed
			}
			var pick int
			if len(picks) > 0 {
				pick = int(picks[step%len(picks)]) % len(busy)
			}
			ci := busy[pick]
			if outstanding[ci] > now {
				now = outstanding[ci]
			}
			now += 0.125 // service time
			outstanding[ci] = -1
			if iss, ok := sess.Complete(ci, now); ok {
				note(iss)
			} else if issued != int(n) {
				t.Fatalf("session refused at %d of %d issued", issued, n)
			}
		}
		if issued != int(n) {
			t.Fatalf("session issued %d requests, budget %d", issued, n)
		}
		if _, ok := sess.Complete(0, now+1); ok {
			t.Fatal("session issued past its budget")
		}
	})
}

func anyOutstanding(outstanding []float64) bool {
	for _, a := range outstanding {
		if a >= 0 {
			return true
		}
	}
	return false
}

func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte(`{"t":0.5,"chunks":[3,0,17]}` + "\n" + `{"t":1.25,"tenant":2,"chunks":[51]}` + "\n"))
	f.Add([]byte(`{"t":0,"chunks":[0]}`))
	f.Add([]byte(`{"t":1e-3,"chunks":[1,2,3,4,5,6]}` + "\n"))
	f.Add([]byte("{not json\n"))
	f.Add([]byte(`{"t":-1,"chunks":[0]}`))
	f.Add([]byte(`{"t":0.5,"chunks":[2],"decode":40}` + "\n"))
	f.Add([]byte(`{"t":0.5,"chunks":[2],"decode":-7}`))
	f.Add([]byte(""))
	var buf bytes.Buffer
	if err := Record(&buf, Bursty{Rate: 3, Burst: 6, Chunks: Chunks{Pool: 40, PerRequest: 2, Skew: 1.1},
		Decode: Decode{Mean: 12}}.Generate(30, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		var enc1 bytes.Buffer
		if err := Record(&enc1, reqs); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		again, err := Load(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if len(again) != len(reqs) {
			t.Fatalf("round trip changed request count: %d → %d", len(reqs), len(again))
		}
		var enc2 bytes.Buffer
		if err := Record(&enc2, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("encoding not canonical:\n%q\n%q", enc1.Bytes(), enc2.Bytes())
		}
	})
}
