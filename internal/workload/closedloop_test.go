package workload

import (
	"encoding/json"
	"math"
	"reflect"
	"sort"
	"testing"
)

func testClosedLoop() ClosedLoop {
	return ClosedLoop{Tenants: 3, Clients: 4, Think: 2, Chunks: testChunks(), Decode: Decode{Mean: 16}}
}

func TestClosedLoopValidate(t *testing.T) {
	base := testClosedLoop()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid closed loop rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*ClosedLoop)
	}{
		{"negative tenants", func(c *ClosedLoop) { c.Tenants = -1 }},
		{"zero clients", func(c *ClosedLoop) { c.Clients = 0 }},
		{"zero think", func(c *ClosedLoop) { c.Think = 0 }},
		{"negative think", func(c *ClosedLoop) { c.Think = -1 }},
		{"nan think", func(c *ClosedLoop) { c.Think = math.NaN() }},
		{"inf think", func(c *ClosedLoop) { c.Think = math.Inf(1) }},
		{"bad chunks", func(c *ClosedLoop) { c.Chunks.PerRequest = 0 }},
		{"pool below tenants", func(c *ClosedLoop) { c.Chunks.Pool = 2 }},
		{"bad decode", func(c *ClosedLoop) { c.Decode.Mean = -1 }},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
}

// TestClosedLoopInitial pins the initial wave: one request per client
// (pool-wide), sorted by arrival, stamped with the client's tenant, and
// drawing chunks from the tenant's disjoint corpus slice.
func TestClosedLoopInitial(t *testing.T) {
	w := testClosedLoop()
	sess := w.Session(1000, 7)
	if got, want := sess.Clients(), 12; got != want {
		t.Fatalf("Clients() = %d, want %d", got, want)
	}
	init := sess.Initial()
	if len(init) != 12 {
		t.Fatalf("initial wave has %d issues, want one per client", len(init))
	}
	slice := w.Chunks.Pool / 3
	seen := make(map[int]bool)
	for i, iss := range init {
		if seen[iss.Client] {
			t.Fatalf("client %d issued twice in the initial wave", iss.Client)
		}
		seen[iss.Client] = true
		r := iss.Req
		if err := r.Validate(); err != nil {
			t.Fatalf("initial issue %d invalid: %v", i, err)
		}
		if i > 0 && r.Arrival < init[i-1].Req.Arrival {
			t.Fatalf("initial wave out of order at %d: %v after %v", i, r.Arrival, init[i-1].Req.Arrival)
		}
		if want := iss.Client / w.Clients; r.Tenant != want {
			t.Fatalf("client %d stamped tenant %d, want %d", iss.Client, r.Tenant, want)
		}
		lo, hi := r.Tenant*slice, (r.Tenant+1)*slice
		for _, id := range r.Chunks {
			if id < lo || id >= hi {
				t.Fatalf("tenant %d drew chunk %d outside its slice [%d, %d)", r.Tenant, id, lo, hi)
			}
		}
		if r.DecodeTokens < 1 {
			t.Fatalf("decode-enabled client issued %d decode tokens", r.DecodeTokens)
		}
	}
}

// TestClosedLoopBudget pins the n budget: a session issues exactly n
// requests across Initial and Complete, then refuses.
func TestClosedLoopBudget(t *testing.T) {
	const n = 30
	sess := testClosedLoop().Session(n, 3)
	issued := len(sess.Initial())
	at := 100.0
	for issued < n+5 {
		iss, ok := sess.Complete(issued%sess.Clients(), at)
		if !ok {
			break
		}
		if iss.Req.Arrival <= at {
			t.Fatalf("arrival %v not after completion %v", iss.Req.Arrival, at)
		}
		at = iss.Req.Arrival
		issued++
	}
	if issued != n {
		t.Fatalf("session issued %d requests, budget %d", issued, n)
	}
	if _, ok := sess.Complete(0, at); ok {
		t.Fatal("session issued past its budget")
	}
}

// TestClosedLoopSmallBudget: a budget below the pool size truncates the
// initial wave — surplus clients never start.
func TestClosedLoopSmallBudget(t *testing.T) {
	sess := testClosedLoop().Session(5, 3)
	if got := len(sess.Initial()); got != 5 {
		t.Fatalf("initial wave has %d issues under budget 5", got)
	}
}

// TestClosedLoopDeterminism: same seed ⇒ byte-identical session
// trajectory; different seed ⇒ a different one.
func TestClosedLoopDeterminism(t *testing.T) {
	drive := func(seed int64) []Request {
		sess := testClosedLoop().Session(200, seed)
		var out []Request
		var pending []Issue
		pending = append(pending, sess.Initial()...)
		for len(pending) > 0 {
			// Complete in arrival order, as the simulator would.
			sort.SliceStable(pending, func(a, b int) bool {
				return pending[a].Req.Arrival < pending[b].Req.Arrival
			})
			iss := pending[0]
			pending = pending[1:]
			out = append(out, iss.Req)
			if next, ok := sess.Complete(iss.Client, iss.Req.Arrival+0.25); ok {
				pending = append(pending, next)
			}
		}
		return out
	}
	a, _ := json.Marshal(drive(11))
	b, _ := json.Marshal(drive(11))
	c, _ := json.Marshal(drive(12))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different closed-loop trajectories")
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical trajectories")
	}
}

// TestClosedLoopClientIndependence pins the per-client RNG streams: one
// client's draws don't depend on how often other clients complete, so
// the policy under test can't perturb the traffic it's measured on.
func TestClosedLoopClientIndependence(t *testing.T) {
	// Trajectory of client 0 when only client 0 runs vs when every other
	// client also completes between its requests.
	solo := testClosedLoop().Session(1000, 5)
	solo.Initial()
	var soloArr []float64
	at := 10.0
	for i := 0; i < 20; i++ {
		iss, ok := solo.Complete(0, at)
		if !ok {
			t.Fatal("budget exhausted early")
		}
		soloArr = append(soloArr, iss.Req.Arrival)
		at = iss.Req.Arrival
	}

	mixed := testClosedLoop().Session(1000, 5)
	mixed.Initial()
	at = 10.0
	for i := 0; i < 20; i++ {
		for ci := 1; ci < mixed.Clients(); ci++ {
			mixed.Complete(ci, at)
		}
		iss, ok := mixed.Complete(0, at)
		if !ok {
			t.Fatal("budget exhausted early")
		}
		if iss.Req.Arrival != soloArr[i] {
			t.Fatalf("issue %d: client 0 arrival %v with interleaving, %v without",
				i, iss.Req.Arrival, soloArr[i])
		}
		at = iss.Req.Arrival
	}
}

// TestClosedLoopGenerate: Generate returns exactly the initial wave.
func TestClosedLoopGenerate(t *testing.T) {
	w := testClosedLoop()
	reqs := w.Generate(1000, 7)
	init := w.Session(1000, 7).Initial()
	if len(reqs) != len(init) {
		t.Fatalf("Generate returned %d requests, initial wave %d", len(reqs), len(init))
	}
	for i := range reqs {
		if !reflect.DeepEqual(reqs[i], init[i].Req) {
			t.Fatalf("Generate[%d] = %+v, initial %+v", i, reqs[i], init[i].Req)
		}
	}
}

func TestClosedLoopSingleTenantDefault(t *testing.T) {
	w := ClosedLoop{Clients: 2, Think: 1, Chunks: testChunks()}
	if err := w.Validate(); err != nil {
		t.Fatalf("single-tenant zero value rejected: %v", err)
	}
	for _, iss := range w.Session(100, 1).Initial() {
		if iss.Req.Tenant != 0 {
			t.Fatalf("single-tenant stream stamped tenant %d", iss.Req.Tenant)
		}
	}
}
