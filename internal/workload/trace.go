package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// The trace format is JSONL: one Request per line, e.g.
//
//	{"t":0.413,"chunks":[3,0,17]}
//	{"t":0.878,"tenant":2,"chunks":[51,48],"decode":64}
//
// Lines are strict (unknown fields rejected), arrivals must be
// nondecreasing, and encoding is canonical: Record(Load(Record(x)))
// reproduces Record(x) byte for byte, which FuzzTraceRoundTrip enforces.
// The "decode" field (the request's generation length in output tokens)
// is optional and omitted when zero: traces recorded before decode
// existed load unchanged and replay with the legacy prefill-only
// behaviour, and re-recording them reproduces their bytes exactly.

// Record writes a request stream as a JSONL trace.
func Record(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			return fmt.Errorf("trace: request %d: %w", i, err)
		}
		blob, err := json.Marshal(reqs[i])
		if err != nil {
			return fmt.Errorf("trace: request %d: %w", i, err)
		}
		bw.Write(blob)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Load parses a JSONL trace, validating every request and the arrival
// order. Corrupt input yields a descriptive error, never a panic.
func Load(r io.Reader) ([]Request, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var reqs []Request
	line := 0
	last := math.Inf(-1)
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var req Request
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		// Trailing garbage after the JSON object on the same line.
		if dec.More() {
			return nil, fmt.Errorf("trace: line %d: trailing data after request", line)
		}
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		if req.Arrival < last {
			return nil, fmt.Errorf("trace: line %d: arrival %v before previous arrival %v", line, req.Arrival, last)
		}
		last = req.Arrival
		reqs = append(reqs, req)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(reqs) == 0 {
		return nil, errors.New("trace: no requests")
	}
	return reqs, nil
}

// Trace replays a recorded request stream as a Workload.
type Trace struct {
	// Label names the trace's origin (e.g. its file name) in telemetry.
	Label string
	// Reqs is the recorded stream, in arrival order.
	Reqs []Request
}

// Name implements Workload.
func (t Trace) Name() string {
	if t.Label != "" {
		return "trace:" + t.Label
	}
	return "trace"
}

// Validate implements Workload. Per-request checks happen in Load (and
// again in serve.RunWorkload), so only emptiness is checked here.
func (t Trace) Validate() error {
	if len(t.Reqs) == 0 {
		return errors.New("trace: no requests")
	}
	return nil
}

// Generate implements Workload: the first n recorded requests (all of
// them when the trace is shorter). A trace is already materialised, so
// the seed is ignored.
func (t Trace) Generate(n int, _ int64) []Request {
	if n <= 0 || n >= len(t.Reqs) {
		return t.Reqs
	}
	return t.Reqs[:n]
}

// RecordFile writes reqs as a JSONL trace file.
func RecordFile(path string, reqs []Request) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := Record(f, reqs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a JSONL trace file into a replayable Trace labelled
// with the file's base name.
func LoadFile(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	reqs, err := Load(f)
	if err != nil {
		return Trace{}, fmt.Errorf("%s: %w", path, err)
	}
	return Trace{Label: filepath.Base(path), Reqs: reqs}, nil
}
