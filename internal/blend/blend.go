// Package blend implements CacheBlend's core contribution: fusing the
// independently pre-computed KV caches of multiple text chunks into one
// cache that approximates full prefill, by selectively recomputing the KV
// of a small fraction of High-KV-Deviation (HKVD) tokens on each layer
// (paper §4).
//
// The fusion pipeline per request is:
//
//  1. Re-position every chunk cache to its offset in the fused input via
//     RoPE re-rotation (§4.3 footnote 3, Appendix A) and concatenate them
//     with empty rows for the fresh suffix (the user query).
//  2. Layer 0: recompute every token fully. Layer-0 KV depends only on
//     embeddings, so the stored KV is already exact (tests assert this) —
//     what this pass buys is correct *layer-1 inputs* for every token,
//     which is where cross-chunk attention first flows.
//  3. Selection layer (layer 1): project fresh K/V for every token, measure
//     each context token's KV deviation against the loaded cache, and keep
//     the top r₁ fraction as HKVD tokens (r₁ slightly above the target r).
//  4. Layers ≥ 2: gradual filtering (§4.3, Figure 9). Only the surviving
//     HKVD set is recomputed; its deviation on each layer picks the next,
//     slightly smaller set, converging to the target ratio r.
//
// Suffix tokens have no pre-computed KV and are recomputed on every layer
// unconditionally, exactly like the tail of a prefix-cache hit.
package blend

import (
	"fmt"
	"sort"

	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Mode selects the fusion strategy.
type Mode int

const (
	// ModeBlend is CacheBlend's selective KV recompute.
	ModeBlend Mode = iota
	// ModeFullReuse reuses every chunk's KV untouched (PromptCache-style,
	// §3.3): only suffix tokens are computed. Fast, ignores cross-attention.
	ModeFullReuse
	// ModeFullRecompute ignores the stored caches and prefills everything
	// (the quality gold standard, §2).
	ModeFullRecompute
)

// String returns the scheme name used in experiment output.
func (m Mode) String() string {
	switch m {
	case ModeBlend:
		return "cacheblend"
	case ModeFullReuse:
		return "full-kv-reuse"
	case ModeFullRecompute:
		return "full-recompute"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configure the fusor.
type Options struct {
	// Mode selects the strategy; ModeBlend is the default.
	Mode Mode
	// RecomputeRatio is the target fraction r of context tokens whose KV
	// is recomputed per layer (the paper's default operating point is
	// 0.15). Clamped to [0,1].
	RecomputeRatio float64
	// ScheduleDecay holds the gradual-filtering multipliers applied to r
	// on the first selection layers: the i-th selection uses
	// r×ScheduleDecay[i] (clamped to 1.0), converging to r once the list
	// is exhausted. Nil uses DefaultSchedule.
	ScheduleDecay []float64
	// CollectAttention records each layer's forward-attention matrix for
	// the suffix tokens (needed by the deviation experiments). Costs
	// memory; leave false in serving paths.
	CollectAttention bool
	// DisableGradualFilter, when true, selects HKVD tokens once on the
	// selection layer and keeps that set for all deeper layers (the
	// ablation discussed in §4.3: layer-1-only selection).
	DisableGradualFilter bool
	// SelectionLayer is the layer on which the all-token KV deviation is
	// measured and the first HKVD set picked. Layers below it are fully
	// recomputed. 0 (the zero value) means the default of layer 1, which
	// matches the paper's models where cross-chunk content reaches KV
	// projections after one attention layer. The constructed QA model
	// (package qamodel) stages its cross-chunk joins through two
	// attention layers, so its experiments select on layer 2.
	SelectionLayer int
	// RandomSelection replaces HKVD ranking with a seeded random token
	// choice of the same size — the ablation behind Insight 1: random
	// recompute needs a much larger budget to reach the same attention
	// deviation.
	RandomSelection bool
	// RandomSeed seeds RandomSelection.
	RandomSeed int64
	// DisableReposition skips the RoPE re-rotation of reused chunk keys
	// (§4.3 footnote 3 / Appendix A), leaving every chunk's keys at their
	// precompute positions — the positional-accuracy failure PromptCache
	// had to solve with dummy prefixes. Ablation only.
	DisableReposition bool
}

// DefaultSchedule is the gradual-filtering ratio schedule: the first
// selection keeps slightly more tokens than the target, then tightens.
var DefaultSchedule = []float64{1.5, 1.25, 1.1}

// Input bundles what the fusor needs for one request.
type Input struct {
	// Model is the transformer to run.
	Model *model.Model
	// Chunks holds the pre-computed KV cache of each context chunk, in
	// input order, each computed with BasePos 0 (chunk alone).
	Chunks []*kvcache.Cache
	// ChunkTokens holds the token ids of each chunk (same order).
	ChunkTokens [][]int
	// SuffixTokens is the fresh tail of the input (user query); it has no
	// pre-computed KV.
	SuffixTokens []int
}

// Result reports the fused cache and fusion statistics.
type Result struct {
	// Cache is the fused full-sequence KV cache.
	Cache *kvcache.Cache
	// Hidden holds the final-layer residual rows of the suffix tokens;
	// generation starts from its last row.
	Hidden *tensor.Matrix
	// SuffixStart is the index of the first suffix token.
	SuffixStart int
	// Tokens is the fused token sequence (contexts ++ suffix).
	Tokens []int
	// SelectedPerLayer[i] is the number of *context* tokens whose KV was
	// recomputed on layer i (suffix tokens excluded).
	SelectedPerLayer []int
	// HKVD[i] lists the context token indices recomputed on layer i.
	HKVD [][]int
	// DeviationByToken is the per-context-token KV deviation measured on
	// the selection layer (index = token position; suffix positions 0).
	DeviationByToken []float64
	// Attn, when requested, holds per-layer forward-attention matrices of
	// the suffix rows.
	Attn []*tensor.Matrix
	// ComputedTokenLayers counts token×layer units actually recomputed
	// (attention+FFN), the basis for honest compute accounting.
	ComputedTokenLayers int
	// ProjectedTokenLayers counts token×layer units where only the KV
	// projection ran (the selection layer's all-token projection).
	ProjectedTokenLayers int
}

// Fuse combines the chunk caches and suffix into one KV cache according to
// opts. The input chunk caches are not modified.
func Fuse(in Input, opts Options) *Result {
	if len(in.Chunks) != len(in.ChunkTokens) {
		panic(fmt.Sprintf("blend: %d chunk caches but %d chunk token lists", len(in.Chunks), len(in.ChunkTokens)))
	}
	m := in.Model
	cfg := m.Cfg
	r := opts.RecomputeRatio
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	sched := opts.ScheduleDecay
	if sched == nil {
		sched = DefaultSchedule
	}

	// Assemble the fused token sequence and the loaded (pre-computed)
	// cache: each chunk re-positioned to its offset, suffix rows empty.
	var tokens []int
	parts := make([]*kvcache.Cache, 0, len(in.Chunks)+1)
	off := 0
	for ci, cc := range in.Chunks {
		if cc.Tokens != len(in.ChunkTokens[ci]) {
			panic(fmt.Sprintf("blend: chunk %d cache has %d tokens, text has %d", ci, cc.Tokens, len(in.ChunkTokens[ci])))
		}
		shifted := cc.Clone()
		if m.Rope != nil && !opts.DisableReposition {
			shifted.ShiftPositions(m.Rope, cfg.KVHeads, cfg.HeadDim, off)
		} else {
			shifted.BasePos = off
		}
		parts = append(parts, shifted)
		tokens = append(tokens, in.ChunkTokens[ci]...)
		off += cc.Tokens
	}
	suffixStart := off
	parts = append(parts, m.NewCache(len(in.SuffixTokens)))
	tokens = append(tokens, in.SuffixTokens...)
	fused := kvcache.Concat(parts...)
	fused.BasePos = 0

	res := &Result{
		Cache:            fused,
		SuffixStart:      suffixStart,
		Tokens:           tokens,
		SelectedPerLayer: make([]int, cfg.Layers),
		HKVD:             make([][]int, cfg.Layers),
		DeviationByToken: make([]float64, len(tokens)),
	}

	switch opts.Mode {
	case ModeFullRecompute:
		fuseFullRecompute(m, res, opts)
	case ModeFullReuse:
		fuseFullReuse(m, res, opts)
	default:
		fuseBlend(m, res, r, sched, opts)
	}
	return res
}

// suffixIdx returns [suffixStart, len(tokens)).
func (r *Result) suffixIdx() []int {
	idx := make([]int, len(r.Tokens)-r.SuffixStart)
	for i := range idx {
		idx[i] = r.SuffixStart + i
	}
	return idx
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func fuseFullRecompute(m *model.Model, res *Result, opts Options) {
	idx := allIdx(len(res.Tokens))
	h := m.EmbedTokens(res.Tokens)
	for li := 0; li < m.Cfg.Layers; li++ {
		var attn *tensor.Matrix
		h, attn = m.ForwardLayerPartial(li, h, idx, res.Cache, opts.CollectAttention)
		res.appendSuffixAttn(attn, idx, opts)
		res.SelectedPerLayer[li] = res.SuffixStart
		res.HKVD[li] = idx[:res.SuffixStart]
		res.ComputedTokenLayers += len(idx)
	}
	res.Hidden = extractRows(h, idx, res.suffixIdx())
}

func fuseFullReuse(m *model.Model, res *Result, opts Options) {
	idx := res.suffixIdx()
	h := m.EmbedTokens(res.Tokens[res.SuffixStart:])
	for li := 0; li < m.Cfg.Layers; li++ {
		var attn *tensor.Matrix
		h, attn = m.ForwardLayerPartial(li, h, idx, res.Cache, opts.CollectAttention)
		if opts.CollectAttention {
			res.Attn = append(res.Attn, attn)
		}
		res.ComputedTokenLayers += len(idx)
	}
	res.Hidden = h
}

func fuseBlend(m *model.Model, res *Result, r float64, sched []float64, opts Options) {
	cfg := m.Cfg
	total := len(res.Tokens)
	ctxLen := res.SuffixStart
	selLayer := opts.SelectionLayer
	if selLayer <= 0 {
		selLayer = 1
	}
	if selLayer >= cfg.Layers {
		selLayer = cfg.Layers - 1
	}

	// Layers below the selection layer: full recompute of every token.
	// This establishes correct selection-layer inputs; on layer 0 the
	// written KV matches the loaded KV (position-recovered) because
	// layer-0 K/V depend only on embeddings.
	idx := allIdx(total)
	h := m.EmbedTokens(res.Tokens)
	var attn *tensor.Matrix
	for li := 0; li < selLayer; li++ {
		h, attn = m.ForwardLayerPartial(li, h, idx, res.Cache, opts.CollectAttention)
		res.appendSuffixAttn(attn, idx, opts)
		res.SelectedPerLayer[li] = ctxLen
		res.HKVD[li] = idx[:ctxLen]
		res.ComputedTokenLayers += total
	}

	// Selection layer: fresh K/V for every token to measure the
	// per-token KV deviation against the loaded cache, then pick HKVD.
	pre := res.Cache.K[selLayer].Clone()
	preV := res.Cache.V[selLayer].Clone()
	m.ProjectKV(selLayer, h, idx, res.Cache)
	res.ProjectedTokenLayers += total
	dev := make([]float64, ctxLen)
	for j := 0; j < ctxLen; j++ {
		dk := tensor.L2Diff(res.Cache.K[selLayer].Row(j), pre.Row(j))
		dv := tensor.L2Diff(res.Cache.V[selLayer].Row(j), preV.Row(j))
		dev[j] = dk + dv
		res.DeviationByToken[j] = dev[j]
	}

	ratioAt := func(step int) float64 {
		mult := 1.0
		if step < len(sched) {
			mult = sched[step]
		}
		rr := r * mult
		if rr > 1 {
			rr = 1
		}
		return rr
	}
	// First selection over all context tokens.
	keep := int(ratioAt(0)*float64(ctxLen) + 0.5)
	var hkvd []int
	if opts.RandomSelection {
		g := tensor.NewRNG(opts.RandomSeed)
		perm := g.Perm(ctxLen)
		if keep > ctxLen {
			keep = ctxLen
		}
		hkvd = append(hkvd, perm[:keep]...)
	} else {
		hkvd = kvcache.TopKIndices(dev, keep)
	}
	sort.Ints(hkvd)

	// Recompute attention+FFN on the selection layer for HKVD ∪ suffix.
	sel := append(append([]int{}, hkvd...), res.suffixIdx()...)
	hs := extractRows(h, idx, sel)
	hs, attn = m.ForwardLayerPartial(selLayer, hs, sel, res.Cache, opts.CollectAttention)
	res.appendSuffixAttn(attn, sel, opts)
	res.SelectedPerLayer[selLayer] = len(hkvd)
	res.HKVD[selLayer] = hkvd
	res.ComputedTokenLayers += len(sel)

	// Layers past the selection layer: gradual filtering.
	cur := sel
	curCtx := hkvd
	for li, step := selLayer+1, 1; li < cfg.Layers; li, step = li+1, step+1 {
		if len(curCtx) > 0 {
			// Measure deviation of the surviving candidates on this layer
			// before overwriting their KV.
			preK := make([][]float32, len(curCtx))
			preVv := make([][]float32, len(curCtx))
			for i, j := range curCtx {
				preK[i] = append([]float32(nil), res.Cache.RowK(li, j)...)
				preVv[i] = append([]float32(nil), res.Cache.RowV(li, j)...)
			}
			var next []int
			if opts.DisableGradualFilter || opts.RandomSelection {
				// Random selection keeps its set fixed so the ablation
				// isolates *which* tokens are recomputed, not how many.
				next = curCtx
			} else {
				// Project fresh KV for the candidate rows (their hidden
				// rows are the prefix of hs since sel is sorted with
				// context first — recover by position).
				ctxRows := rowsFor(hs, cur, curCtx)
				m.ProjectKV(li, ctxRows, curCtx, res.Cache)
				res.ProjectedTokenLayers += len(curCtx)
				devs := make([]float64, len(curCtx))
				for i, j := range curCtx {
					dk := tensor.L2Diff(res.Cache.RowK(li, j), preK[i])
					dv := tensor.L2Diff(res.Cache.RowV(li, j), preVv[i])
					devs[i] = dk + dv
				}
				keep := int(ratioAt(step)*float64(ctxLen) + 0.5)
				if keep > len(curCtx) {
					keep = len(curCtx)
				}
				top := kvcache.TopKIndices(devs, keep)
				next = make([]int, len(top))
				for i, t := range top {
					next[i] = curCtx[t]
				}
				sort.Ints(next)
				// Restore the loaded KV of dropped candidates: their fresh
				// projection was only needed for the deviation measurement.
				dropped := diffSorted(curCtx, next)
				for _, j := range dropped {
					i := indexOf(curCtx, j)
					copy(res.Cache.K[li].Row(j), preK[i])
					copy(res.Cache.V[li].Row(j), preVv[i])
				}
			}
			curCtx = next
		}
		sel = append(append([]int{}, curCtx...), res.suffixIdx()...)
		hs = rowsFor(hs, cur, sel)
		hs, attn = m.ForwardLayerPartial(li, hs, sel, res.Cache, opts.CollectAttention)
		res.appendSuffixAttn(attn, sel, opts)
		res.SelectedPerLayer[li] = len(curCtx)
		res.HKVD[li] = curCtx
		res.ComputedTokenLayers += len(sel)
		cur = sel
	}
	res.Hidden = rowsFor(hs, cur, res.suffixIdx())
}

// appendSuffixAttn stores the suffix rows of a layer attention matrix.
func (r *Result) appendSuffixAttn(attn *tensor.Matrix, idx []int, opts Options) {
	if !opts.CollectAttention || attn == nil {
		return
	}
	r.Attn = append(r.Attn, rowsFor(attn, idx, r.suffixIdx()))
}

// extractRows returns the rows of h (whose rows correspond to from) for
// the positions in want, which must be a subset of from.
func extractRows(h *tensor.Matrix, from, want []int) *tensor.Matrix {
	return rowsFor(h, from, want)
}

// rowsFor maps positions to rows: h's rows correspond to sorted positions
// `from`; the result holds the rows for positions `want` ⊆ from.
func rowsFor(h *tensor.Matrix, from, want []int) *tensor.Matrix {
	out := tensor.New(len(want), h.Cols)
	fi := 0
	for wi, w := range want {
		for fi < len(from) && from[fi] < w {
			fi++
		}
		if fi >= len(from) || from[fi] != w {
			panic(fmt.Sprintf("blend: position %d not in source row set", w))
		}
		copy(out.Row(wi), h.Row(fi))
	}
	return out
}

// diffSorted returns the elements of a (sorted) not present in b (sorted).
func diffSorted(a, b []int) []int {
	var out []int
	bi := 0
	for _, x := range a {
		for bi < len(b) && b[bi] < x {
			bi++
		}
		if bi >= len(b) || b[bi] != x {
			out = append(out, x)
		}
	}
	return out
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
