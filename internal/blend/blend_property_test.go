package blend

import (
	"testing"
	"testing/quick"

	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/tensor"
)

// TestFuseDeterministicProperty: fusing the same input twice produces
// bit-identical caches and hidden states for every mode.
func TestFuseDeterministicProperty(t *testing.T) {
	m := model.NewRandom(testCfg, 41)
	f := func(seed int64, mode8 uint8) bool {
		in := makeInputSeed(m, 3, 8, 4, seed)
		opts := Options{
			Mode:           Mode(int(mode8) % 3),
			RecomputeRatio: 0.2,
		}
		a := Fuse(in, opts)
		b := Fuse(in, opts)
		for li := 0; li < testCfg.Layers; li++ {
			if tensor.MaxAbsDiff(a.Cache.K[li].Data, b.Cache.K[li].Data) != 0 {
				return false
			}
		}
		return tensor.MaxAbsDiff(a.Hidden.Data, b.Hidden.Data) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// makeInputSeed is makeInput without the testing.T dependency.
func makeInputSeed(m *model.Model, nChunks, chunkLen, suffixLen int, seed int64) Input {
	g := tensor.NewRNG(seed)
	in := Input{Model: m}
	for c := 0; c < nChunks; c++ {
		toks := make([]int, chunkLen)
		for i := range toks {
			toks[i] = g.Intn(m.Cfg.Vocab)
		}
		in.ChunkTokens = append(in.ChunkTokens, toks)
		in.Chunks = append(in.Chunks, m.Prefill(toks, 0, false).Cache)
	}
	suffix := make([]int, suffixLen)
	for i := range suffix {
		suffix[i] = g.Intn(m.Cfg.Vocab)
	}
	in.SuffixTokens = suffix
	return in
}

// TestRatioClampProperty: any ratio outside [0,1] behaves like its clamp
// and never panics.
func TestRatioClampProperty(t *testing.T) {
	m := model.NewRandom(testCfg, 43)
	in := makeInputSeed(m, 2, 8, 4, 44)
	f := func(r float64) bool {
		res := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: r})
		for li, n := range res.SelectedPerLayer {
			if n < 0 || n > res.SuffixStart {
				t.Logf("layer %d selected %d of %d", li, n, res.SuffixStart)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectedMonotoneInRatioProperty: a larger recompute ratio never
// selects fewer tokens on the final layer.
func TestSelectedMonotoneInRatioProperty(t *testing.T) {
	m := model.NewRandom(testCfg, 45)
	in := makeInputSeed(m, 3, 10, 4, 46)
	last := -1
	for _, r := range []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.0} {
		res := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: r})
		n := res.SelectedPerLayer[testCfg.Layers-1]
		if n < last {
			t.Fatalf("ratio %v selected %d < previous %d", r, n, last)
		}
		last = n
	}
}

// TestFuseDoesNotMutateInputs: the chunk caches passed in must be left
// untouched by fusion (they belong to the shared KV store).
func TestFuseDoesNotMutateInputs(t *testing.T) {
	m := model.NewRandom(testCfg, 47)
	in := makeInputSeed(m, 3, 8, 4, 48)
	var before []*kvcache.Cache
	for _, c := range in.Chunks {
		before = append(before, c.Clone())
	}
	Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: 0.3})
	Fuse(in, Options{Mode: ModeFullReuse})
	for i, c := range in.Chunks {
		for li := 0; li < testCfg.Layers; li++ {
			if tensor.MaxAbsDiff(c.K[li].Data, before[i].K[li].Data) != 0 ||
				tensor.MaxAbsDiff(c.V[li].Data, before[i].V[li].Data) != 0 {
				t.Fatalf("chunk %d cache mutated on layer %d", i, li)
			}
		}
		if c.BasePos != before[i].BasePos {
			t.Fatalf("chunk %d BasePos mutated", i)
		}
	}
}

// TestSuffixAlwaysComputed: whatever the ratio, every suffix position's KV
// in the fused cache must be non-zero on every layer (the query is always
// fresh).
func TestSuffixAlwaysComputed(t *testing.T) {
	m := model.NewRandom(testCfg, 49)
	in := makeInputSeed(m, 2, 8, 5, 50)
	for _, r := range []float64{0, 0.1, 1} {
		res := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: r})
		for li := 0; li < testCfg.Layers; li++ {
			for j := res.SuffixStart; j < len(res.Tokens); j++ {
				if tensor.L2(res.Cache.RowK(li, j)) == 0 {
					t.Fatalf("ratio %v: suffix token %d has zero K on layer %d", r, j, li)
				}
			}
		}
	}
}

// TestHKVDWithinContext: selected HKVD indices are always context
// positions, never suffix positions.
func TestHKVDWithinContext(t *testing.T) {
	m := model.NewRandom(testCfg, 51)
	in := makeInputSeed(m, 3, 9, 6, 52)
	res := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: 0.3})
	for li, set := range res.HKVD {
		for _, j := range set {
			if j < 0 || j >= res.SuffixStart {
				t.Fatalf("layer %d: HKVD index %d outside context [0,%d)", li, j, res.SuffixStart)
			}
		}
	}
}
