package blend_test

import (
	"fmt"

	"repro/internal/blend"
	"repro/internal/kvcache"
	"repro/internal/qamodel"
)

// Example demonstrates the core CacheBlend flow: pre-compute each chunk's
// KV cache once, then fuse them with selective recompute when a request
// arrives.
func Example() {
	m, v := qamodel.Build()

	// Two knowledge chunks, cached independently (chunks start with a
	// sink token; see the qamodel package documentation).
	alice, bob, paris := v.Entities[0], v.Entities[1], v.Entities[12]
	chunk1 := append([]int{v.Period}, v.Fact(bob, v.RelA[0], alice)...)
	chunk2 := append([]int{v.Period}, v.Fact(paris, v.RelB[0], bob)...)
	var caches []*kvcache.Cache
	for _, c := range [][]int{chunk1, chunk2} {
		caches = append(caches, m.Prefill(c, 0, false).Cache)
	}

	// Fuse at request time with 15% selective recompute.
	res := blend.Fuse(blend.Input{
		Model:        m,
		Chunks:       caches,
		ChunkTokens:  [][]int{chunk1, chunk2},
		SuffixTokens: v.QueryTokens(v.RelA[0], alice, v.RelB[0]),
	}, blend.Options{
		Mode:           blend.ModeBlend,
		RecomputeRatio: 0.15,
		SelectionLayer: qamodel.SelectionLayer,
	})

	answer := qamodel.Answer(m, res.Cache, res.Hidden.Row(res.Hidden.Rows-1))
	fmt.Println(v.Name(answer))
	// Output: paris
}
