package blend

import (
	"testing"

	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/tensor"
)

var testCfg = model.Config{
	Name: "blend-test", Layers: 6, Heads: 4, KVHeads: 2, HeadDim: 8,
	FFNDim: 32, Vocab: 64, RotaryDims: 8, RopeBase: 10000, Norm: model.NormRMS, Eps: 1e-5,
}

// makeInput precomputes nChunks chunk caches of chunkLen tokens plus a
// suffix, mimicking a RAG request.
func makeInput(t *testing.T, m *model.Model, nChunks, chunkLen, suffixLen int, seed int64) Input {
	t.Helper()
	g := tensor.NewRNG(seed)
	in := Input{Model: m}
	for c := 0; c < nChunks; c++ {
		toks := make([]int, chunkLen)
		for i := range toks {
			toks[i] = g.Intn(m.Cfg.Vocab)
		}
		in.ChunkTokens = append(in.ChunkTokens, toks)
		in.Chunks = append(in.Chunks, m.Prefill(toks, 0, false).Cache)
	}
	suffix := make([]int, suffixLen)
	for i := range suffix {
		suffix[i] = g.Intn(m.Cfg.Vocab)
	}
	in.SuffixTokens = suffix
	return in
}

func fullTokens(in Input) []int {
	var toks []int
	for _, ct := range in.ChunkTokens {
		toks = append(toks, ct...)
	}
	return append(toks, in.SuffixTokens...)
}

func suffixAttnDeviation(t *testing.T, m *model.Model, res *Result, ref *model.PrefillResult) float64 {
	t.Helper()
	var sum float64
	for li := range res.Attn {
		refSuffix := tensor.New(res.Attn[li].Rows, res.Attn[li].Cols)
		for r := 0; r < refSuffix.Rows; r++ {
			copy(refSuffix.Row(r), ref.Attn[li].Row(res.SuffixStart+r))
		}
		sum += kvcache.AttentionDeviation(res.Attn[li], refSuffix)
	}
	return sum / float64(len(res.Attn))
}

func TestBlendRatioOneEqualsFullPrefill(t *testing.T) {
	m := model.NewRandom(testCfg, 1)
	in := makeInput(t, m, 3, 10, 5, 2)
	ref := m.Prefill(fullTokens(in), 0, false)

	res := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: 1.0})
	for li := 0; li < testCfg.Layers; li++ {
		if tensor.MaxAbsDiff(res.Cache.K[li].Data, ref.Cache.K[li].Data) > 1e-4 {
			t.Fatalf("layer %d keys differ at ratio 1.0", li)
		}
		if tensor.MaxAbsDiff(res.Cache.V[li].Data, ref.Cache.V[li].Data) > 1e-4 {
			t.Fatalf("layer %d values differ at ratio 1.0", li)
		}
	}
	for r := 0; r < len(in.SuffixTokens); r++ {
		if tensor.MaxAbsDiff(res.Hidden.Row(r), ref.Hidden.Row(res.SuffixStart+r)) > 1e-4 {
			t.Fatalf("suffix hidden row %d differs at ratio 1.0", r)
		}
	}
}

func TestFullRecomputeModeEqualsPrefill(t *testing.T) {
	m := model.NewRandom(testCfg, 3)
	in := makeInput(t, m, 2, 8, 4, 4)
	ref := m.Prefill(fullTokens(in), 0, false)
	res := Fuse(in, Options{Mode: ModeFullRecompute})
	for li := 0; li < testCfg.Layers; li++ {
		if tensor.MaxAbsDiff(res.Cache.K[li].Data, ref.Cache.K[li].Data) != 0 {
			t.Fatalf("layer %d keys differ", li)
		}
	}
	for r := 0; r < len(in.SuffixTokens); r++ {
		if tensor.MaxAbsDiff(res.Hidden.Row(r), ref.Hidden.Row(res.SuffixStart+r)) != 0 {
			t.Fatal("full-recompute hidden differs from prefill")
		}
	}
}

func TestFullReuseSingleChunkIsExact(t *testing.T) {
	// With a single chunk the "reused" cache is a true prefix cache, so
	// full KV reuse must match full prefill exactly (§3.2).
	m := model.NewRandom(testCfg, 5)
	in := makeInput(t, m, 1, 12, 4, 6)
	ref := m.Prefill(fullTokens(in), 0, false)
	res := Fuse(in, Options{Mode: ModeFullReuse})
	for r := 0; r < len(in.SuffixTokens); r++ {
		if tensor.MaxAbsDiff(res.Hidden.Row(r), ref.Hidden.Row(res.SuffixStart+r)) > 1e-4 {
			t.Fatal("single-chunk full reuse should equal full prefill")
		}
	}
}

func TestFullReuseMultiChunkDeviates(t *testing.T) {
	// With several chunks, ignoring cross-attention must show up as
	// non-trivial divergence in the suffix hidden states (§3.3).
	m := model.NewRandom(testCfg, 7)
	in := makeInput(t, m, 3, 10, 5, 8)
	ref := m.Prefill(fullTokens(in), 0, false)
	res := Fuse(in, Options{Mode: ModeFullReuse})
	var diff float64
	for r := 0; r < len(in.SuffixTokens); r++ {
		diff += tensor.L2Diff(res.Hidden.Row(r), ref.Hidden.Row(res.SuffixStart+r))
	}
	if diff < 1e-3 {
		t.Fatalf("multi-chunk full reuse suspiciously close to full prefill (diff=%g)", diff)
	}
}

func TestLayerZeroKVMatchesLoaded(t *testing.T) {
	// The positional-recovery claim: after RoPE re-rotation, the loaded
	// layer-0 KV equals freshly recomputed layer-0 KV, because layer-0
	// K/V depend only on embeddings and positions.
	m := model.NewRandom(testCfg, 9)
	in := makeInput(t, m, 3, 10, 5, 10)
	ref := m.Prefill(fullTokens(in), 0, false)
	res := Fuse(in, Options{Mode: ModeFullReuse}) // context rows untouched
	ctx := res.SuffixStart
	for j := 0; j < ctx; j++ {
		if tensor.L2Diff(res.Cache.RowK(0, j), ref.Cache.RowK(0, j)) > 1e-3 {
			t.Fatalf("token %d layer-0 loaded K differs from full prefill", j)
		}
		if tensor.L2Diff(res.Cache.RowV(0, j), ref.Cache.RowV(0, j)) > 1e-3 {
			t.Fatalf("token %d layer-0 loaded V differs from full prefill", j)
		}
	}
}

func TestAttentionDeviationDecreasesWithRatio(t *testing.T) {
	// Figure 6's shape: more recompute → lower forward-attention
	// deviation, with full reuse worst and ratio 1 ≈ 0.
	m := model.NewRandom(testCfg, 11)
	in := makeInput(t, m, 4, 10, 6, 12)
	ref := m.Prefill(fullTokens(in), 0, true)

	reuse := Fuse(in, Options{Mode: ModeFullReuse, CollectAttention: true})
	devReuse := suffixAttnDeviation(t, m, reuse, ref)

	devAt := func(r float64) float64 {
		res := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: r, CollectAttention: true})
		return suffixAttnDeviation(t, m, res, ref)
	}
	dev15 := devAt(0.15)
	dev50 := devAt(0.5)
	dev100 := devAt(1.0)

	if !(devReuse > dev15 && dev15 >= dev50 && dev50 >= dev100) {
		t.Fatalf("deviation not monotone: reuse=%g r15=%g r50=%g r100=%g", devReuse, dev15, dev50, dev100)
	}
	if dev100 > 1e-4 {
		t.Fatalf("ratio-1 deviation should be ~0, got %g", dev100)
	}
}

func TestSelectedCountsFollowSchedule(t *testing.T) {
	m := model.NewRandom(testCfg, 13)
	in := makeInput(t, m, 3, 10, 5, 14)
	ctx := 30
	r := 0.2
	res := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: r})
	if res.SelectedPerLayer[0] != ctx {
		t.Fatalf("layer 0 must recompute all %d context tokens, got %d", ctx, res.SelectedPerLayer[0])
	}
	// Selection layer keeps r*1.5, then tightens monotonically to r.
	want1 := int(r*1.5*float64(ctx) + 0.5)
	if res.SelectedPerLayer[1] != want1 {
		t.Fatalf("layer 1 selected %d want %d", res.SelectedPerLayer[1], want1)
	}
	for li := 2; li < testCfg.Layers; li++ {
		if res.SelectedPerLayer[li] > res.SelectedPerLayer[li-1] {
			t.Fatalf("gradual filtering must be non-increasing: layer %d has %d > %d",
				li, res.SelectedPerLayer[li], res.SelectedPerLayer[li-1])
		}
	}
	last := res.SelectedPerLayer[testCfg.Layers-1]
	if last != int(r*float64(ctx)+0.5) {
		t.Fatalf("final layers should converge to r·ctx=%d, got %d", int(r*float64(ctx)+0.5), last)
	}
}

func TestGradualFilterSubsets(t *testing.T) {
	m := model.NewRandom(testCfg, 15)
	in := makeInput(t, m, 3, 12, 4, 16)
	res := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: 0.25})
	for li := 2; li < testCfg.Layers; li++ {
		prev := map[int]bool{}
		for _, j := range res.HKVD[li-1] {
			prev[j] = true
		}
		for _, j := range res.HKVD[li] {
			if !prev[j] {
				t.Fatalf("layer %d HKVD token %d not in layer %d's set", li, j, li-1)
			}
		}
	}
}

func TestDisableGradualFilterKeepsSet(t *testing.T) {
	m := model.NewRandom(testCfg, 17)
	in := makeInput(t, m, 3, 10, 4, 18)
	res := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: 0.2, DisableGradualFilter: true})
	for li := 2; li < testCfg.Layers; li++ {
		if len(res.HKVD[li]) != len(res.HKVD[1]) {
			t.Fatalf("layer %d set size %d differs from selection layer %d", li, len(res.HKVD[li]), len(res.HKVD[1]))
		}
		for i := range res.HKVD[li] {
			if res.HKVD[li][i] != res.HKVD[1][i] {
				t.Fatal("disabled gradual filter must keep the layer-1 set")
			}
		}
	}
}

func TestBlendBetterThanReuseOnKV(t *testing.T) {
	// The fused cache at the default ratio must be closer to full prefill
	// than the untouched reused cache, layer by layer (deep layers).
	m := model.NewRandom(testCfg, 19)
	in := makeInput(t, m, 4, 10, 5, 20)
	ref := m.Prefill(fullTokens(in), 0, false)

	reuse := Fuse(in, Options{Mode: ModeFullReuse})
	blend := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: 0.3})

	var reuseDev, blendDev float64
	for li := 2; li < testCfg.Layers; li++ {
		reuseDev += kvcache.MeanDeviation(kvcache.KVDeviation(reuse.Cache, ref.Cache, li))
		blendDev += kvcache.MeanDeviation(kvcache.KVDeviation(blend.Cache, ref.Cache, li))
	}
	if blendDev >= reuseDev {
		t.Fatalf("blend KV deviation %g not better than reuse %g", blendDev, reuseDev)
	}
}

func TestComputeAccounting(t *testing.T) {
	m := model.NewRandom(testCfg, 21)
	in := makeInput(t, m, 2, 10, 5, 22)
	total := 25
	full := Fuse(in, Options{Mode: ModeFullRecompute})
	if full.ComputedTokenLayers != total*testCfg.Layers {
		t.Fatalf("full recompute units %d want %d", full.ComputedTokenLayers, total*testCfg.Layers)
	}
	reuse := Fuse(in, Options{Mode: ModeFullReuse})
	if reuse.ComputedTokenLayers != 5*testCfg.Layers {
		t.Fatalf("reuse units %d want %d", reuse.ComputedTokenLayers, 5*testCfg.Layers)
	}
	bl := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: 0.15})
	if bl.ComputedTokenLayers <= reuse.ComputedTokenLayers || bl.ComputedTokenLayers >= full.ComputedTokenLayers {
		t.Fatalf("blend units %d should be between reuse %d and full %d",
			bl.ComputedTokenLayers, reuse.ComputedTokenLayers, full.ComputedTokenLayers)
	}
	if bl.ProjectedTokenLayers < total {
		t.Fatalf("selection layer must project all %d tokens, got %d", total, bl.ProjectedTokenLayers)
	}
}

func TestModeString(t *testing.T) {
	if ModeBlend.String() != "cacheblend" || ModeFullReuse.String() != "full-kv-reuse" ||
		ModeFullRecompute.String() != "full-recompute" {
		t.Fatal("mode names wrong")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode must still print")
	}
}

func TestFusePanicsOnMismatchedChunks(t *testing.T) {
	m := model.NewRandom(testCfg, 23)
	in := makeInput(t, m, 2, 8, 3, 24)
	in.ChunkTokens = in.ChunkTokens[:1]
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fuse(in, Options{})
}

func TestRowsForPanicsOnMissing(t *testing.T) {
	h := tensor.New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rowsFor(h, []int{1, 3}, []int{2})
}

func TestDiffSorted(t *testing.T) {
	got := diffSorted([]int{1, 2, 4, 7}, []int{2, 7})
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("diffSorted got %v", got)
	}
	if diffSorted([]int{1}, []int{1}) != nil {
		t.Fatal("full overlap must be nil")
	}
}

func TestNoChunksPureSuffix(t *testing.T) {
	// Degenerate input: no reused chunks at all. Blend must behave like a
	// plain prefill of the suffix.
	m := model.NewRandom(testCfg, 25)
	suffix := []int{1, 2, 3, 4, 5}
	ref := m.Prefill(suffix, 0, false)
	res := Fuse(Input{Model: m, SuffixTokens: suffix}, Options{Mode: ModeBlend, RecomputeRatio: 0.15})
	if tensor.MaxAbsDiff(res.Hidden.Data, ref.Hidden.Data) > 1e-5 {
		t.Fatal("pure-suffix fuse differs from prefill")
	}
}

func TestRandomSelectionWorseThanHKVD(t *testing.T) {
	// Insight 1: recomputing the highest-KV-deviation tokens reduces
	// attention deviation more than recomputing a random set of the same
	// size.
	m := model.NewRandom(testCfg, 27)
	in := makeInput(t, m, 4, 12, 6, 28)
	ref := m.Prefill(fullTokens(in), 0, true)

	flat := []float64{1.0}
	hkvd := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: 0.15,
		ScheduleDecay: flat, CollectAttention: true})
	devH := suffixAttnDeviation(t, m, hkvd, ref)

	var devRandSum float64
	for seed := int64(0); seed < 3; seed++ {
		rnd := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: 0.15,
			ScheduleDecay: flat, CollectAttention: true,
			RandomSelection: true, RandomSeed: seed})
		devRandSum += suffixAttnDeviation(t, m, rnd, ref)
	}
	devRand := devRandSum / 3
	if devH >= devRand {
		t.Fatalf("HKVD deviation %.4f should beat random %.4f", devH, devRand)
	}
}

func TestRandomSelectionCountsMatch(t *testing.T) {
	m := model.NewRandom(testCfg, 29)
	in := makeInput(t, m, 3, 10, 4, 30)
	r := 0.2
	res := Fuse(in, Options{Mode: ModeBlend, RecomputeRatio: r,
		ScheduleDecay: []float64{1.0}, RandomSelection: true, RandomSeed: 5})
	want := int(r*30 + 0.5)
	for li := 1; li < testCfg.Layers; li++ {
		if res.SelectedPerLayer[li] != want {
			t.Fatalf("layer %d selected %d want %d", li, res.SelectedPerLayer[li], want)
		}
	}
}

func TestDispositionAblationHurts(t *testing.T) {
	// Skipping the positional re-rotation of reused keys must push the
	// reused cache further from full prefill than correct repositioning
	// does (the error PromptCache's dummy-prefix trick exists to avoid).
	m := model.NewRandom(testCfg, 31)
	in := makeInput(t, m, 3, 12, 4, 32)
	ref := m.Prefill(fullTokens(in), 0, false)

	good := Fuse(in, Options{Mode: ModeFullReuse})
	bad := Fuse(in, Options{Mode: ModeFullReuse, DisableReposition: true})

	// Layer 0 is the crisp signal: with correct re-rotation the reused
	// keys are exact there (K depends only on embeddings and position);
	// without it they are not.
	goodDev := kvcache.MeanDeviation(kvcache.KVDeviation(good.Cache, ref.Cache, 0)[:good.SuffixStart])
	badDev := kvcache.MeanDeviation(kvcache.KVDeviation(bad.Cache, ref.Cache, 0)[:bad.SuffixStart])
	if goodDev > 1e-3 {
		t.Fatalf("repositioned reuse should be exact on layer 0, deviation %.4f", goodDev)
	}
	if badDev < 0.1 {
		t.Fatalf("unpositioned reuse should visibly deviate on layer 0, got %.4f", badDev)
	}
	// Deeper layers: positional error adds on top of the missing
	// cross-attention.
	var goodSum, badSum float64
	for li := 1; li < testCfg.Layers; li++ {
		goodSum += kvcache.MeanDeviation(kvcache.KVDeviation(good.Cache, ref.Cache, li))
		badSum += kvcache.MeanDeviation(kvcache.KVDeviation(bad.Cache, ref.Cache, li))
	}
	if badSum <= goodSum {
		t.Fatalf("unpositioned reuse (%.3f) should deviate beyond repositioned reuse (%.3f)",
			badSum, goodSum)
	}
}
