// Package metrics implements the evaluation metrics the paper reports:
// token-overlap F1 (QA), Rouge-L (summarisation), plus the statistical
// helpers used by the deviation studies (Spearman rank correlation, CDFs,
// percentiles).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// F1 returns the token-overlap F1 score between a predicted and a
// reference token sequence, the standard SQuAD-style measure the paper
// uses for 2WikiMQA and Musique. Multiset overlap: repeated tokens count
// as many times as they appear in both.
func F1(pred, ref []string) float64 {
	if len(pred) == 0 || len(ref) == 0 {
		if len(pred) == 0 && len(ref) == 0 {
			return 1
		}
		return 0
	}
	counts := map[string]int{}
	for _, t := range ref {
		counts[t]++
	}
	overlap := 0
	for _, t := range pred {
		if counts[t] > 0 {
			counts[t]--
			overlap++
		}
	}
	if overlap == 0 {
		return 0
	}
	precision := float64(overlap) / float64(len(pred))
	recall := float64(overlap) / float64(len(ref))
	return 2 * precision * recall / (precision + recall)
}

// RougeL returns the Rouge-L F-measure between a predicted and a reference
// token sequence: the harmonic mean of LCS-precision and LCS-recall, the
// measure the paper uses for SAMSum and MultiNews.
func RougeL(pred, ref []string) float64 {
	if len(pred) == 0 || len(ref) == 0 {
		if len(pred) == 0 && len(ref) == 0 {
			return 1
		}
		return 0
	}
	l := lcs(pred, ref)
	if l == 0 {
		return 0
	}
	precision := float64(l) / float64(len(pred))
	recall := float64(l) / float64(len(ref))
	return 2 * precision * recall / (precision + recall)
}

// lcs returns the length of the longest common subsequence using the
// rolling single-row DP.
func lcs(a, b []string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Spearman returns Spearman's rank correlation coefficient between two
// equal-length samples (the statistic of the paper's Figure 8). Ties get
// fractional (average) ranks. Returns 0 for degenerate inputs.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	rx := ranks(x)
	ry := ranks(y)
	return pearson(rx, ry)
}

// ranks assigns average ranks (1-based) with tie handling.
func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	out := make([]float64, len(x))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Mean returns the arithmetic mean. Degenerate inputs are well-defined —
// the serving runtime's decode metrics hit them routinely (a stream of
// zero-generation requests yields no TBT samples at all): an empty slice
// returns 0, a single-element slice returns that element.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// CoefVar returns the coefficient of variation (population std/mean) of
// x, or 0 when x is degenerate. It is the burstiness measure the workload
// generators are tested against: a Poisson process's inter-arrival gaps
// have CV ≈ 1, on/off (MMPP) arrivals push it well above.
func CoefVar(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	if m == 0 {
		return 0
	}
	var v float64
	for _, s := range x {
		d := s - m
		v += d * d
	}
	return math.Sqrt(v/float64(len(x))) / m
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between order statistics. Degenerate inputs are
// well-defined — the serving runtime's decode metrics hit them routinely
// (zero-generation requests produce no TBT samples, one decode step
// produces exactly one): an empty slice returns 0 for every p, a
// single-element slice returns that element for every p, and p is
// clamped to [0, 100] (p ≤ 0 returns the minimum, p ≥ 100 the maximum).
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability at X
}

// CDF returns the empirical CDF of x as sorted (value, probability) pairs,
// one per sample.
func CDF(x []float64) []CDFPoint {
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{X: v, P: float64(i+1) / float64(len(s))}
	}
	return out
}

// Histogram counts integer-valued observations — the serving runtime
// uses it for batch-size distributions. The zero value is ready to use.
type Histogram struct {
	counts map[int]int64
	n, sum int64
}

// Observe records one observation of v.
func (h *Histogram) Observe(v int) {
	if h.counts == nil {
		h.counts = map[int]int64{}
	}
	h.counts[v]++
	h.n++
	h.sum += int64(v)
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Count returns how often v was observed.
func (h *Histogram) Count(v int) int64 { return h.counts[v] }

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest observed value, or 0 when empty.
func (h *Histogram) Max() int {
	m := 0
	for v := range h.counts {
		if v > m {
			m = v
		}
	}
	return m
}

// Counts returns a copy of the value→count map.
func (h *Histogram) Counts() map[int]int64 {
	out := make(map[int]int64, len(h.counts))
	for v, c := range h.counts {
		out[v] = c
	}
	return out
}

// String renders "v:count" pairs in ascending value order.
func (h *Histogram) String() string { return FormatCounts(h.counts) }

// FormatCounts renders a value→count map as "v:count" pairs in ascending
// value order — the shared rendering for batch-size histograms.
func FormatCounts(counts map[int]int64) string {
	vals := make([]int, 0, len(counts))
	for v := range counts {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	s := ""
	for i, v := range vals {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%d", v, counts[v])
	}
	return s
}

// Ratio returns num/den as a float, or 0 when den is 0 — the shared
// guard for hit-rate style fractions (e.g. per-tier hits over lookups).
func Ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Utilization returns busy/total, clamped to [0, 1] (0 when total ≤ 0) —
// the per-replica GPU utilization measure of the serving runtime.
func Utilization(busy, total float64) float64 {
	if total <= 0 {
		return 0
	}
	u := busy / total
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// CDFAt interpolates the cumulative probability of v on an empirical CDF.
func CDFAt(cdf []CDFPoint, v float64) float64 {
	if len(cdf) == 0 {
		return 0
	}
	if v < cdf[0].X {
		return 0
	}
	for i := len(cdf) - 1; i >= 0; i-- {
		if v >= cdf[i].X {
			return cdf[i].P
		}
	}
	return 0
}
