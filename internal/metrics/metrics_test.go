package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func eq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestF1Basics(t *testing.T) {
	if F1(nil, nil) != 1 {
		t.Fatal("empty vs empty must be 1")
	}
	if F1([]string{"a"}, nil) != 0 || F1(nil, []string{"a"}) != 0 {
		t.Fatal("empty vs non-empty must be 0")
	}
	if F1([]string{"paris"}, []string{"paris"}) != 1 {
		t.Fatal("exact match must be 1")
	}
	if F1([]string{"london"}, []string{"paris"}) != 0 {
		t.Fatal("disjoint must be 0")
	}
	// Half overlap: pred {a,b}, ref {a}: P=0.5 R=1 → F1=2/3.
	if !eq(F1([]string{"a", "b"}, []string{"a"}), 2.0/3, 1e-9) {
		t.Fatal("partial overlap F1 wrong")
	}
}

func TestF1Multiset(t *testing.T) {
	// Repeated tokens only count as often as they appear in the reference.
	got := F1([]string{"a", "a", "a"}, []string{"a"})
	want := 2 * (1.0 / 3) * 1.0 / (1.0/3 + 1.0)
	if !eq(got, want, 1e-9) {
		t.Fatalf("multiset F1 = %v want %v", got, want)
	}
}

func TestF1Symmetry(t *testing.T) {
	f := func(a, b []string) bool {
		return eq(F1(a, b), F1(b, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRougeLBasics(t *testing.T) {
	if RougeL(nil, nil) != 1 {
		t.Fatal("empty vs empty must be 1")
	}
	if RougeL(strings.Fields("a b c"), strings.Fields("a b c")) != 1 {
		t.Fatal("identical must be 1")
	}
	if RougeL(strings.Fields("x y"), strings.Fields("a b")) != 0 {
		t.Fatal("disjoint must be 0")
	}
	// pred "a c", ref "a b c": LCS=2, P=1, R=2/3 → 0.8
	if !eq(RougeL(strings.Fields("a c"), strings.Fields("a b c")), 0.8, 1e-9) {
		t.Fatal("RougeL value wrong")
	}
}

func TestRougeLOrderSensitive(t *testing.T) {
	ref := strings.Fields("a b c d")
	inOrder := RougeL(strings.Fields("a b d"), ref)
	shuffled := RougeL(strings.Fields("d b a"), ref)
	if inOrder <= shuffled {
		t.Fatalf("Rouge-L must reward order: %v vs %v", inOrder, shuffled)
	}
}

func TestLCSKnown(t *testing.T) {
	if lcs(strings.Fields("a b c b d a b"), strings.Fields("b d c a b a")) != 4 {
		t.Fatal("lcs of classic example must be 4")
	}
}

func TestSpearmanPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	if !eq(Spearman(x, y), 1, 1e-9) {
		t.Fatal("monotone increasing must give 1")
	}
	yr := []float64{50, 40, 30, 20, 10}
	if !eq(Spearman(x, yr), -1, 1e-9) {
		t.Fatal("monotone decreasing must give -1")
	}
}

func TestSpearmanTies(t *testing.T) {
	// With ties the coefficient stays in [-1, 1] and equal vectors give 1.
	x := []float64{1, 2, 2, 3}
	if !eq(Spearman(x, x), 1, 1e-9) {
		t.Fatal("self correlation with ties must be 1")
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if Spearman([]float64{1}, []float64{1}) != 0 {
		t.Fatal("length-1 must be 0")
	}
	if Spearman([]float64{1, 2}, []float64{3}) != 0 {
		t.Fatal("length mismatch must be 0")
	}
	if Spearman([]float64{2, 2, 2}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant input must be 0")
	}
}

func TestSpearmanRange(t *testing.T) {
	f := func(seed int64) bool {
		// Deterministic pseudo-random vectors from the seed.
		n := 20
		x := make([]float64, n)
		y := make([]float64, n)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s%1000) / 1000
		}
		for i := range x {
			x[i] = next()
			y[i] = next()
		}
		r := Spearman(x, y)
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if Mean([]float64{}) != 0 {
		t.Fatal("empty non-nil mean must be 0")
	}
	if Mean([]float64{7.25}) != 7.25 {
		t.Fatal("single-element mean must be the element")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

// TestMeanPercentileDegenerate pins the empty- and single-element-slice
// contract the serving runtime's decode metrics rely on: a stream of
// zero-generation requests yields no TBT samples (empty → 0 everywhere)
// and a one-token generation yields exactly one (singleton → that element
// for every p).
func TestMeanPercentileDegenerate(t *testing.T) {
	for _, p := range []float64{-10, 0, 1, 50, 95, 100, 250} {
		if got := Percentile(nil, p); got != 0 {
			t.Fatalf("Percentile(nil, %v) = %v, want 0", p, got)
		}
		if got := Percentile([]float64{}, p); got != 0 {
			t.Fatalf("Percentile(empty, %v) = %v, want 0", p, got)
		}
		if got := Percentile([]float64{3.5}, p); got != 3.5 {
			t.Fatalf("Percentile([3.5], %v) = %v, want 3.5", p, got)
		}
	}
	// p clamps to the order statistics' range on larger slices too.
	x := []float64{2, 1}
	if Percentile(x, -5) != 1 || Percentile(x, 400) != 2 {
		t.Fatal("out-of-range p must clamp to min/max")
	}
	// The input slice is never mutated (Percentile sorts a copy).
	if x[0] != 2 || x[1] != 1 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if Percentile(x, 0) != 1 || Percentile(x, 100) != 5 {
		t.Fatal("extremes wrong")
	}
	if Percentile(x, 50) != 3 {
		t.Fatal("median wrong")
	}
	if !eq(Percentile(x, 25), 2, 1e-9) {
		t.Fatal("p25 wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	// Interpolation between order statistics.
	if !eq(Percentile([]float64{0, 10}, 75), 7.5, 1e-9) {
		t.Fatal("interpolated percentile wrong")
	}
}

func TestCDF(t *testing.T) {
	c := CDF([]float64{3, 1, 2})
	if len(c) != 3 || c[0].X != 1 || c[2].X != 3 {
		t.Fatalf("CDF not sorted: %+v", c)
	}
	if !eq(c[0].P, 1.0/3, 1e-9) || !eq(c[2].P, 1, 1e-9) {
		t.Fatalf("CDF probabilities wrong: %+v", c)
	}
	if CDFAt(c, 0.5) != 0 {
		t.Fatal("below min must be 0")
	}
	if !eq(CDFAt(c, 2.5), 2.0/3, 1e-9) {
		t.Fatal("interpolated CDF wrong")
	}
	if CDFAt(c, 99) != 1 {
		t.Fatal("above max must be 1")
	}
	if CDFAt(nil, 1) != 0 {
		t.Fatal("empty CDF must be 0")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Max() != 0 || h.String() != "" {
		t.Fatal("zero-value histogram not empty")
	}
	for _, v := range []int{1, 1, 2, 4, 4, 4} {
		h.Observe(v)
	}
	if h.N() != 6 {
		t.Fatalf("N = %d, want 6", h.N())
	}
	if h.Count(4) != 3 || h.Count(3) != 0 {
		t.Fatalf("counts wrong: %v", h.Counts())
	}
	if !eq(h.Mean(), 16.0/6, 1e-9) {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 4 {
		t.Fatalf("Max = %d", h.Max())
	}
	if h.String() != "1:2 2:1 4:3" {
		t.Fatalf("String = %q", h.String())
	}
	c := h.Counts()
	c[1] = 99 // mutating the copy must not touch the histogram
	if h.Count(1) != 2 {
		t.Fatal("Counts() returned a live reference")
	}
}

func TestUtilization(t *testing.T) {
	cases := []struct{ busy, total, want float64 }{
		{0, 10, 0},
		{5, 10, 0.5},
		{10, 10, 1},
		{15, 10, 1}, // clamp high
		{-1, 10, 0}, // clamp low
		{1, 0, 0},   // no elapsed time
	}
	for _, c := range cases {
		if got := Utilization(c.busy, c.total); !eq(got, c.want, 1e-12) {
			t.Fatalf("Utilization(%v, %v) = %v, want %v", c.busy, c.total, got, c.want)
		}
	}
}

func TestCoefVar(t *testing.T) {
	if got := CoefVar([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant sample CV = %v, want 0", got)
	}
	// Population std of {1,3} is 1, mean 2 → CV 0.5.
	if got := CoefVar([]float64{1, 3}); !eq(got, 0.5, 1e-12) {
		t.Fatalf("CV({1,3}) = %v, want 0.5", got)
	}
	// Degenerate inputs: too short or zero mean.
	if CoefVar(nil) != 0 || CoefVar([]float64{7}) != 0 || CoefVar([]float64{-1, 1}) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}
