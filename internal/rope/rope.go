// Package rope implements Rotary Positional Embedding (RoPE, Su et al.) and
// the positional-recovery rotation CacheBlend uses when a pre-computed KV
// cache is placed at a different position in a new LLM input (paper §4.3
// footnote 3 and Appendix A).
//
// RoPE encodes the position m of a query/key vector by rotating each
// consecutive pair of dimensions (2i, 2i+1) by the angle m·θᵢ with
// θᵢ = base^(-2i/d). Because rotations compose additively, a key that was
// embedded at position m can be exactly re-positioned to position m' by
// rotating it a further (m'-m)·θᵢ — this is what lets CacheBlend reuse a KV
// cache computed for a chunk at offset 0 when the chunk lands at an
// arbitrary offset in a fused input, at negligible cost.
package rope

import (
	"fmt"
	"math"
)

// Table holds precomputed per-dimension rotation frequencies for a given
// head dimension and base, so that repeated rotations avoid recomputing
// powers.
type Table struct {
	headDim int
	base    float64
	theta   []float64 // theta[i] is the frequency for dim pair (2i, 2i+1)
}

// NewTable builds a frequency table for head vectors of length headDim
// (which must be even) with the given base (10000 in the original RoFormer
// and in Llama/Mistral-family models).
func NewTable(headDim int, base float64) *Table {
	if headDim <= 0 || headDim%2 != 0 {
		panic(fmt.Sprintf("rope: head dim must be positive and even, got %d", headDim))
	}
	t := &Table{headDim: headDim, base: base, theta: make([]float64, headDim/2)}
	for i := 0; i < headDim/2; i++ {
		t.theta[i] = math.Pow(base, -2*float64(i)/float64(headDim))
	}
	return t
}

// HeadDim returns the head dimension the table was built for.
func (t *Table) HeadDim() int { return t.headDim }

// Base returns the frequency base the table was built for.
func (t *Table) Base() float64 { return t.base }

// Apply rotates x (length headDim) in place to encode position pos.
func (t *Table) Apply(x []float32, pos int) {
	t.rotate(x, float64(pos))
}

// Shift re-positions x in place from position `from` to position `to`.
// Because R(m')·R(m)ᵀ = R(m'-m), this is a single rotation by the position
// delta — the positional-recovery step of CacheBlend (Appendix A).
func (t *Table) Shift(x []float32, from, to int) {
	t.rotate(x, float64(to-from))
}

func (t *Table) rotate(x []float32, m float64) {
	if len(x) != t.headDim {
		panic(fmt.Sprintf("rope: vector length %d != head dim %d", len(x), t.headDim))
	}
	for i := 0; i < t.headDim/2; i++ {
		angle := m * t.theta[i]
		c := float32(math.Cos(angle))
		s := float32(math.Sin(angle))
		a, b := x[2*i], x[2*i+1]
		x[2*i] = a*c - b*s
		x[2*i+1] = a*s + b*c
	}
}

// RotationMatrix returns the explicit d×d block-diagonal rotation matrix
// R^d_{Θ,m} from Definition 1 of the paper's Appendix A, stored row-major.
// It exists to validate the fast pairwise implementation against the
// paper's matrix formulation and is used only in tests and documentation
// examples — Apply/Shift are the production path.
func (t *Table) RotationMatrix(pos int) []float32 {
	d := t.headDim
	m := make([]float32, d*d)
	for i := 0; i < d/2; i++ {
		angle := float64(pos) * t.theta[i]
		c := float32(math.Cos(angle))
		s := float32(math.Sin(angle))
		r, cIdx := 2*i, 2*i
		m[r*d+cIdx] = c
		m[r*d+cIdx+1] = -s
		m[(r+1)*d+cIdx] = s
		m[(r+1)*d+cIdx+1] = c
	}
	return m
}

// Score returns the RoPE-rotated attention logit qᵀ(pos_q)·k(pos_k) for raw
// (unrotated) vectors q and k. Proposition A.1 of the paper shows this
// depends only on pos_q - pos_k; tests verify that property against this
// reference implementation.
func (t *Table) Score(q, k []float32, posQ, posK int) float64 {
	qr := append([]float32(nil), q...)
	kr := append([]float32(nil), k...)
	t.Apply(qr, posQ)
	t.Apply(kr, posK)
	var s float64
	for i := range qr {
		s += float64(qr[i]) * float64(kr[i])
	}
	return s
}
