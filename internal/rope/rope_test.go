package rope

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func randomVec(g *tensor.RNG, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = g.Normal(0, 1)
	}
	return v
}

func TestNewTablePanicsOnOddDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd head dim")
		}
	}()
	NewTable(7, 10000)
}

func TestApplyAtZeroIsIdentity(t *testing.T) {
	tab := NewTable(8, 10000)
	g := tensor.NewRNG(1)
	v := randomVec(g, 8)
	w := append([]float32(nil), v...)
	tab.Apply(w, 0)
	for i := range v {
		if math.Abs(float64(v[i]-w[i])) > 1e-7 {
			t.Fatalf("Apply at pos 0 must be identity: %v vs %v", v, w)
		}
	}
}

func TestApplyPreservesNorm(t *testing.T) {
	tab := NewTable(16, 10000)
	f := func(seed int64, pos uint16) bool {
		g := tensor.NewRNG(seed)
		v := randomVec(g, 16)
		before := tensor.L2(v)
		tab.Apply(v, int(pos))
		return math.Abs(tensor.L2(v)-before) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftEqualsApplyAtTarget(t *testing.T) {
	// The positional-recovery property: applying RoPE at position m and then
	// shifting m→m' must equal applying RoPE at m' directly.
	tab := NewTable(32, 10000)
	f := func(seed int64, m8, mp8 uint8) bool {
		m, mp := int(m8), int(mp8)
		g := tensor.NewRNG(seed)
		raw := randomVec(g, 32)

		shifted := append([]float32(nil), raw...)
		tab.Apply(shifted, m)
		tab.Shift(shifted, m, mp)

		direct := append([]float32(nil), raw...)
		tab.Apply(direct, mp)

		return tensor.MaxAbsDiff(shifted, direct) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreDependsOnlyOnRelativePosition(t *testing.T) {
	// Proposition A.1: q(m+l)·k(m) depends only on l.
	tab := NewTable(16, 10000)
	g := tensor.NewRNG(7)
	q := randomVec(g, 16)
	k := randomVec(g, 16)
	l := 5
	ref := tab.Score(q, k, 0+l, 0)
	for _, m := range []int{1, 13, 100, 999} {
		got := tab.Score(q, k, m+l, m)
		if math.Abs(got-ref) > 1e-3 {
			t.Fatalf("score at offset m=%d is %v, want %v (relative-position invariance)", m, got, ref)
		}
	}
}

func TestRotationMatrixMatchesApply(t *testing.T) {
	// The explicit Appendix-A matrix and the fast pairwise rotation must
	// agree exactly.
	tab := NewTable(8, 10000)
	g := tensor.NewRNG(3)
	for _, pos := range []int{0, 1, 7, 250} {
		v := randomVec(g, 8)
		fast := append([]float32(nil), v...)
		tab.Apply(fast, pos)

		rm := tab.RotationMatrix(pos)
		slow := make([]float32, 8)
		for i := 0; i < 8; i++ {
			var s float64
			for j := 0; j < 8; j++ {
				s += float64(rm[i*8+j]) * float64(v[j])
			}
			slow[i] = float32(s)
		}
		if tensor.MaxAbsDiff(fast, slow) > 1e-5 {
			t.Fatalf("pos %d: pairwise %v vs matrix %v", pos, fast, slow)
		}
	}
}

func TestShiftComposition(t *testing.T) {
	// Shift(a→b) followed by Shift(b→c) equals Shift(a→c).
	tab := NewTable(16, 10000)
	g := tensor.NewRNG(11)
	v := randomVec(g, 16)
	tab.Apply(v, 10)

	two := append([]float32(nil), v...)
	tab.Shift(two, 10, 40)
	tab.Shift(two, 40, 25)

	one := append([]float32(nil), v...)
	tab.Shift(one, 10, 25)

	if tensor.MaxAbsDiff(two, one) > 1e-4 {
		t.Fatalf("shift composition broken: %v vs %v", two, one)
	}
}

func TestDifferentBasesDiffer(t *testing.T) {
	a := NewTable(8, 10000)
	b := NewTable(8, 500000)
	g := tensor.NewRNG(5)
	v := randomVec(g, 8)
	va := append([]float32(nil), v...)
	vb := append([]float32(nil), v...)
	a.Apply(va, 100)
	b.Apply(vb, 100)
	if tensor.MaxAbsDiff(va, vb) < 1e-6 {
		t.Fatal("different RoPE bases should rotate differently")
	}
	if a.Base() != 10000 || b.Base() != 500000 {
		t.Fatal("Base accessor wrong")
	}
	if a.HeadDim() != 8 {
		t.Fatal("HeadDim accessor wrong")
	}
}

func TestApplyLengthPanic(t *testing.T) {
	tab := NewTable(8, 10000)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong vector length")
		}
	}()
	tab.Apply(make([]float32, 6), 1)
}
