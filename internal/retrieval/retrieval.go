// Package retrieval is the RAG substrate: text embeddings and an exact
// L2 nearest-neighbour index. The paper uses SentenceTransformers plus a
// vector database; this reproduction substitutes a deterministic hashed
// bag-of-words embedding (feature hashing, the classic trick behind
// Vowpal-Wabbit-style text models) and exact top-k search, which preserves
// the property that matters for the experiments: queries retrieve chunks
// sharing their vocabulary, ranked by similarity, with imperfect recall.
package retrieval

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/tokenizer"
)

// Embedder maps text to a fixed-dimension L2-normalised vector.
type Embedder struct {
	dim int
}

// NewEmbedder returns an embedder with the given dimensionality.
func NewEmbedder(dim int) *Embedder {
	if dim <= 0 {
		panic(fmt.Sprintf("retrieval: non-positive embedding dim %d", dim))
	}
	return &Embedder{dim: dim}
}

// Dim returns the embedding dimensionality.
func (e *Embedder) Dim() int { return e.dim }

// Embed returns the hashed bag-of-words embedding of text: each word
// hashes to a dimension and a sign, accumulated and L2-normalised.
func (e *Embedder) Embed(text string) []float32 {
	vec := make([]float32, e.dim)
	for _, w := range tokenizer.Split(text) {
		h := fnv.New64a()
		h.Write([]byte(w))
		sum := h.Sum64()
		idx := int(sum % uint64(e.dim))
		sign := float32(1)
		if (sum>>63)&1 == 1 {
			sign = -1
		}
		vec[idx] += sign
	}
	var norm float64
	for _, v := range vec {
		norm += float64(v) * float64(v)
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range vec {
			vec[i] *= inv
		}
	}
	return vec
}

// Result is one retrieval hit.
type Result struct {
	// ID is the caller-assigned identifier of the item.
	ID int
	// Dist is the squared L2 distance to the query.
	Dist float64
}

// Index is an exact L2 nearest-neighbour index over embeddings.
type Index struct {
	dim  int
	ids  []int
	vecs [][]float32
}

// NewIndex returns an empty index for vectors of the given dimension.
func NewIndex(dim int) *Index {
	return &Index{dim: dim}
}

// Len returns the number of indexed items.
func (ix *Index) Len() int { return len(ix.ids) }

// Add inserts a vector under id.
func (ix *Index) Add(id int, vec []float32) {
	if len(vec) != ix.dim {
		panic(fmt.Sprintf("retrieval: vector dim %d != index dim %d", len(vec), ix.dim))
	}
	ix.ids = append(ix.ids, id)
	ix.vecs = append(ix.vecs, append([]float32(nil), vec...))
}

// TopK returns the k nearest items to query by squared L2 distance,
// closest first; ties break by insertion order. k is clamped to Len.
func (ix *Index) TopK(query []float32, k int) []Result {
	if len(query) != ix.dim {
		panic(fmt.Sprintf("retrieval: query dim %d != index dim %d", len(query), ix.dim))
	}
	if k > len(ix.ids) {
		k = len(ix.ids)
	}
	if k <= 0 {
		return nil
	}
	all := make([]Result, len(ix.ids))
	for i, vec := range ix.vecs {
		var d float64
		for j, q := range query {
			diff := float64(q) - float64(vec[j])
			d += diff * diff
		}
		all[i] = Result{ID: ix.ids[i], Dist: d}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].Dist < all[b].Dist })
	return all[:k]
}

// Retriever bundles an embedder with an index over text chunks.
type Retriever struct {
	emb *Embedder
	ix  *Index
}

// NewRetriever builds a retriever over the given chunk texts; chunk i is
// retrievable as ID i.
func NewRetriever(dim int, chunkTexts []string) *Retriever {
	r := &Retriever{emb: NewEmbedder(dim), ix: NewIndex(dim)}
	for i, txt := range chunkTexts {
		r.ix.Add(i, r.emb.Embed(txt))
	}
	return r
}

// TopK retrieves the k most similar chunk ids for a query text.
func (r *Retriever) TopK(query string, k int) []int {
	res := r.ix.TopK(r.emb.Embed(query), k)
	out := make([]int, len(res))
	for i, hit := range res {
		out[i] = hit.ID
	}
	return out
}
