package retrieval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmbedNormalised(t *testing.T) {
	e := NewEmbedder(64)
	v := e.Embed("the quick brown fox")
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Fatalf("embedding norm² = %v want 1", norm)
	}
	if len(v) != 64 || e.Dim() != 64 {
		t.Fatal("dimension wrong")
	}
}

func TestEmbedDeterministic(t *testing.T) {
	e := NewEmbedder(32)
	a := e.Embed("alpha beta gamma")
	b := e.Embed("alpha beta gamma")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding must be deterministic")
		}
	}
}

func TestEmbedEmptyText(t *testing.T) {
	e := NewEmbedder(16)
	v := e.Embed("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty text must embed to zero")
		}
	}
}

func TestSimilarTextsCloser(t *testing.T) {
	e := NewEmbedder(128)
	q := e.Embed("alice paris hometown question")
	near := e.Embed("alice lives near paris her hometown")
	far := e.Embed("quantum flux capacitor maintenance schedule")
	d := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			diff := float64(a[i]) - float64(b[i])
			s += diff * diff
		}
		return s
	}
	if d(q, near) >= d(q, far) {
		t.Fatalf("overlapping text should be closer: near=%v far=%v", d(q, near), d(q, far))
	}
}

func TestTopKOrderingAndClamp(t *testing.T) {
	ix := NewIndex(2)
	ix.Add(10, []float32{0, 0})
	ix.Add(11, []float32{1, 0})
	ix.Add(12, []float32{3, 0})
	res := ix.TopK([]float32{0.9, 0}, 2)
	if len(res) != 2 || res[0].ID != 11 || res[1].ID != 10 {
		t.Fatalf("wrong order: %+v", res)
	}
	if res[0].Dist > res[1].Dist {
		t.Fatal("distances not ascending")
	}
	if got := ix.TopK([]float32{0, 0}, 99); len(got) != 3 {
		t.Fatalf("k must clamp to index size, got %d", len(got))
	}
	if ix.TopK([]float32{0, 0}, 0) != nil {
		t.Fatal("k=0 must return nil")
	}
}

func TestTopKSelfRetrieval(t *testing.T) {
	// Any indexed vector must retrieve itself first.
	f := func(seed int64) bool {
		e := NewEmbedder(64)
		texts := []string{
			"alpha beta gamma", "delta epsilon zeta", "eta theta iota",
			"kappa lambda mu", "nu xi omicron",
		}
		ix := NewIndex(64)
		for i, txt := range texts {
			ix.Add(i, e.Embed(txt))
		}
		pick := int(uint64(seed) % uint64(len(texts)))
		res := ix.TopK(e.Embed(texts[pick]), 1)
		return len(res) == 1 && res[0].ID == pick && res[0].Dist < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRetrieverEndToEnd(t *testing.T) {
	chunks := []string{
		"alice works in the engineering department in paris",
		"weather tomorrow will be sunny with light winds",
		"bob manages the sales team from london",
	}
	r := NewRetriever(128, chunks)
	got := r.TopK("where does alice work engineering", 2)
	if len(got) != 2 || got[0] != 0 {
		t.Fatalf("expected chunk 0 first, got %v", got)
	}
}

func TestIndexDimPanics(t *testing.T) {
	ix := NewIndex(4)
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { ix.Add(1, []float32{1}) })
	mustPanic(func() { ix.TopK([]float32{1}, 1) })
	mustPanic(func() { NewEmbedder(0) })
}
