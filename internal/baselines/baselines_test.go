package baselines

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/qamodel"
	"repro/internal/retrieval"
)

// evalQuality answers every case of ds with scheme s over top-k retrieved
// chunks and returns the mean F1.
func evalQuality(t *testing.T, e *Evaluator, ds *dataset.Dataset, s Scheme, k int) float64 {
	t.Helper()
	var scores []float64
	for _, c := range ds.Cases {
		r := retrieval.NewRetriever(128, c.ChunkTexts)
		ids := r.TopK(c.QueryText, k)
		var chunks [][]int
		for _, id := range ids {
			chunks = append(chunks, c.Chunks[id])
		}
		run := e.Answer(chunks, c.Query, s)
		scores = append(scores, metrics.F1(strings.Fields(run.Pred), strings.Fields(c.Answer)))
	}
	return metrics.Mean(scores)
}

func smallDataset(cases int, seed int64) *dataset.Dataset {
	_, v := qamodel.Build()
	cfg := dataset.MusiqueConfig()
	cfg.Cases = cases
	cfg.ChunksPerCase = 8
	cfg.FactsPerChunk = 5
	cfg.Seed = seed
	return dataset.Generate(v, cfg)
}

func TestSchemeQualityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("quality ordering needs full model runs")
	}
	m, v := qamodel.Build()
	e := NewEvaluator(m, v)
	ds := smallDataset(12, 7)

	q := map[Scheme]float64{}
	for _, s := range Schemes() {
		q[s] = evalQuality(t, e, ds, s, 5)
	}
	t.Logf("quality: %v", q)

	if q[FullRecompute] < 0.5 {
		t.Fatalf("full recompute F1 %.2f too low — the model/dataset is broken", q[FullRecompute])
	}
	if q[PrefixCaching] != q[FullRecompute] {
		t.Fatalf("prefix caching (%.2f) must match full recompute (%.2f) exactly",
			q[PrefixCaching], q[FullRecompute])
	}
	if q[CacheBlend] < q[FullRecompute]-0.1 {
		t.Fatalf("cacheblend F1 %.2f drops more than 0.1 below full recompute %.2f",
			q[CacheBlend], q[FullRecompute])
	}
	if q[FullKVReuse] > q[CacheBlend]-0.15 {
		t.Fatalf("full reuse %.2f should trail cacheblend %.2f by a wide margin",
			q[FullKVReuse], q[CacheBlend])
	}
	if q[MapRerank] > q[CacheBlend] {
		t.Fatalf("maprerank %.2f should not beat cacheblend %.2f", q[MapRerank], q[CacheBlend])
	}
}

func TestRunAccounting(t *testing.T) {
	m, v := qamodel.Build()
	e := NewEvaluator(m, v)
	ds := smallDataset(1, 9)
	c := ds.Cases[0]
	var chunks [][]int
	for _, ch := range c.Chunks[:4] {
		chunks = append(chunks, ch)
	}

	full := e.Answer(chunks, c.Query, FullRecompute)
	reuse := e.Answer(chunks, c.Query, FullKVReuse)
	bl := e.Answer(chunks, c.Query, CacheBlend)
	if !(reuse.ComputedTokenLayers < bl.ComputedTokenLayers &&
		bl.ComputedTokenLayers < full.ComputedTokenLayers) {
		t.Fatalf("compute ordering wrong: reuse %d, blend %d, full %d",
			reuse.ComputedTokenLayers, bl.ComputedTokenLayers, full.ComputedTokenLayers)
	}
	if full.LLMCalls != 1 {
		t.Fatal("single-shot schemes use one call")
	}
	mr := e.Answer(chunks, c.Query, MapReduce)
	if mr.LLMCalls != len(chunks)+1 {
		t.Fatalf("mapreduce calls = %d want %d", mr.LLMCalls, len(chunks)+1)
	}
	rr := e.Answer(chunks, c.Query, MapRerank)
	if rr.LLMCalls != len(chunks) {
		t.Fatalf("maprerank calls = %d want %d", rr.LLMCalls, len(chunks))
	}
	if full.ContextTokens <= 0 || full.ContextTokens != bl.ContextTokens {
		t.Fatal("context accounting wrong")
	}
}

func TestChunkKVMemoised(t *testing.T) {
	m, v := qamodel.Build()
	e := NewEvaluator(m, v)
	toks := v.Fact(v.Entities[0], v.RelB[0], v.Entities[1])
	a := e.chunkKV(toks)
	b := e.chunkKV(toks)
	if a != b {
		t.Fatal("chunk KV must be memoised by content hash")
	}
}

func TestUnknownSchemePanics(t *testing.T) {
	m, v := qamodel.Build()
	e := NewEvaluator(m, v)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Answer(nil, nil, Scheme("bogus"))
}

func TestExtractFacts(t *testing.T) {
	_, v := qamodel.Build()
	c := append(append([]int{v.Topics[0], v.Period},
		v.Fact(v.Entities[0], v.RelB[0], v.Entities[1])...),
		v.ValueHalf(v.Entities[2], 1)...)
	facts := extractFacts(v, c)
	if len(facts) != 2 {
		t.Fatalf("want 2 facts, got %d", len(facts))
	}
	if facts[0][1] != v.RelB[0] || facts[1][1] != v.Fills {
		t.Fatal("fact parsing misaligned")
	}
}

func TestMapRerankAnswersColocatedCase(t *testing.T) {
	// A chunk containing the entire answer path must be answerable by the
	// per-chunk scheme, and its confidence must beat junk chunks.
	m, v := qamodel.Build()
	e := NewEvaluator(m, v)
	qent, bridge, ans := v.Entities[0], v.Entities[1], v.Entities[12]
	relA, relB := v.RelA[0], v.RelB[0]
	colocated := append([]int{v.Topics[0], v.Period},
		append(v.Fact(bridge, relA, qent), v.Fact(ans, relB, bridge)...)...)
	junk1 := append([]int{v.Topics[1], v.Period},
		v.Fact(v.Entities[13], v.RelB[1], v.Entities[2])...)
	junk2 := append([]int{v.Topics[2], v.Period},
		v.Fact(v.Entities[3], v.RelA[1], v.Entities[4])...)
	query := v.QueryTokens(relA, qent, relB)
	run := e.Answer([][]int{junk1, colocated, junk2}, query, MapRerank)
	if run.Pred != v.Name(ans) {
		t.Fatalf("maprerank answered %q want %q", run.Pred, v.Name(ans))
	}
}
