// Package baselines implements the quality paths of every scheme the
// paper compares (§7.1): full KV recompute, prefix caching, full KV reuse
// (PromptCache-style), CacheBlend, and the two LangChain RAG alternatives
// MapReduce and MapRerank. All schemes run on the same constructed QA
// model so their quality differences come from how they treat the KV
// cache, not from different tasks.
package baselines

import (
	"fmt"
	"sync"

	"repro/internal/blend"
	"repro/internal/chunk"
	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/qamodel"
	"repro/internal/tensor"
)

// Scheme identifies a serving scheme.
type Scheme string

// The six schemes of the paper's evaluation.
const (
	FullRecompute Scheme = "full-recompute"
	PrefixCaching Scheme = "prefix-caching"
	FullKVReuse   Scheme = "full-kv-reuse"
	CacheBlend    Scheme = "cacheblend"
	MapReduce     Scheme = "mapreduce"
	MapRerank     Scheme = "maprerank"
)

// Schemes lists all schemes in the paper's comparison order.
func Schemes() []Scheme {
	return []Scheme{CacheBlend, FullRecompute, PrefixCaching, FullKVReuse, MapReduce, MapRerank}
}

// Run reports one answered request.
type Run struct {
	// Pred is the predicted answer word.
	Pred string
	// ComputedTokenLayers counts token×layer attention+FFN units spent —
	// the honest compute measure across schemes.
	ComputedTokenLayers int
	// LLMCalls counts separate inference invocations (MapReduce and
	// MapRerank pay one per chunk plus a final call).
	LLMCalls int
	// ContextTokens is the fused context length.
	ContextTokens int
}

// Evaluator answers requests under each scheme, memoising per-chunk KV
// caches the way a shared KV store would.
type Evaluator struct {
	M *model.Model
	V *qamodel.Vocab
	// Ratio is CacheBlend's recompute ratio (default 0.15 if zero).
	Ratio float64
	// SelectionLayer for the blend fusor; defaults to the QA model's.
	SelectionLayer int

	mu    sync.Mutex
	cache map[chunk.ID]*kvcache.Cache
}

// NewEvaluator builds an evaluator around the constructed QA model.
func NewEvaluator(m *model.Model, v *qamodel.Vocab) *Evaluator {
	return &Evaluator{
		M: m, V: v,
		Ratio:          0.15,
		SelectionLayer: qamodel.SelectionLayer,
		cache:          make(map[chunk.ID]*kvcache.Cache),
	}
}

// chunkKV returns the memoised chunk-local KV cache for tokens.
func (e *Evaluator) chunkKV(tokens []int) *kvcache.Cache {
	id := chunk.Hash(e.M.Cfg.Name, tokens)
	e.mu.Lock()
	c, ok := e.cache[id]
	e.mu.Unlock()
	if ok {
		return c
	}
	c = e.M.Prefill(tokens, 0, false).Cache
	e.mu.Lock()
	e.cache[id] = c
	e.mu.Unlock()
	return c
}

// Answer answers the query over the given context chunks with scheme s.
func (e *Evaluator) Answer(chunks [][]int, query []int, s Scheme) Run {
	switch s {
	case FullRecompute:
		return e.fuseAnswer(chunks, query, blend.Options{Mode: blend.ModeFullRecompute}, false)
	case PrefixCaching:
		return e.prefixAnswer(chunks, query)
	case FullKVReuse:
		return e.fuseAnswer(chunks, query, blend.Options{Mode: blend.ModeFullReuse}, true)
	case CacheBlend:
		return e.fuseAnswer(chunks, query, blend.Options{
			Mode:           blend.ModeBlend,
			RecomputeRatio: e.Ratio,
			SelectionLayer: e.SelectionLayer,
		}, true)
	case MapReduce:
		return e.mapReduce(chunks, query)
	case MapRerank:
		return e.mapRerank(chunks, query)
	default:
		panic(fmt.Sprintf("baselines: unknown scheme %q", s))
	}
}

// fuseAnswer runs the blend fusor in the given mode and decodes one token.
func (e *Evaluator) fuseAnswer(chunks [][]int, query []int, opts blend.Options, cached bool) Run {
	in := blend.Input{Model: e.M, SuffixTokens: query}
	for _, c := range chunks {
		in.ChunkTokens = append(in.ChunkTokens, c)
		if cached {
			in.Chunks = append(in.Chunks, e.chunkKV(c))
		} else {
			// Full recompute ignores cache contents; empty caches keep the
			// geometry without paying prefill twice.
			in.Chunks = append(in.Chunks, e.M.NewCache(len(c)))
		}
	}
	res := blend.Fuse(in, opts)
	tok := qamodel.Answer(e.M, res.Cache, res.Hidden.Row(res.Hidden.Rows-1))
	return Run{
		Pred:                e.V.Name(tok),
		ComputedTokenLayers: res.ComputedTokenLayers,
		LLMCalls:            1,
		ContextTokens:       res.SuffixStart,
	}
}

// prefixAnswer reuses only the first chunk's KV (a true prefix), computing
// the rest — numerically identical to full prefill, which is prefix
// caching's defining property (§3.2).
func (e *Evaluator) prefixAnswer(chunks [][]int, query []int) Run {
	if len(chunks) == 0 {
		return e.fuseAnswer(chunks, query, blend.Options{Mode: blend.ModeFullRecompute}, false)
	}
	var suffix []int
	for _, c := range chunks[1:] {
		suffix = append(suffix, c...)
	}
	suffix = append(suffix, query...)
	in := blend.Input{
		Model:        e.M,
		Chunks:       []*kvcache.Cache{e.chunkKV(chunks[0])},
		ChunkTokens:  [][]int{chunks[0]},
		SuffixTokens: suffix,
	}
	res := blend.Fuse(in, blend.Options{Mode: blend.ModeFullReuse})
	tok := qamodel.Answer(e.M, res.Cache, res.Hidden.Row(res.Hidden.Rows-1))
	ctx := 0
	for _, c := range chunks {
		ctx += len(c)
	}
	return Run{
		Pred:                e.V.Name(tok),
		ComputedTokenLayers: res.ComputedTokenLayers,
		LLMCalls:            1,
		ContextTokens:       ctx,
	}
}

// singleChunkAnswer runs the query against one chunk alone and returns the
// predicted token plus a confidence margin (top-1 minus top-2 answer
// logit), the signal MapRerank ranks by.
func (e *Evaluator) singleChunkAnswer(c []int, query []int) (tok int, margin float64, units int) {
	toks := append(append([]int{}, c...), query...)
	res := e.M.Prefill(toks, 0, false)
	logits := e.M.Logits(res.Hidden.Row(len(toks) - 1))
	best := tensor.Argmax(logits)
	second := float32(-1e30)
	for i, v := range logits {
		if i != best && v > second {
			second = v
		}
	}
	return best, float64(logits[best] - second), len(toks) * e.M.Cfg.Layers
}

// mapReduce emulates LangChain's map-reduce chain (§7.1): each chunk is
// independently reduced to a query-conditioned extractive summary (the
// facts mentioning the query entity, the query relations or a role
// token), then one final inference answers over the concatenated
// summaries. Quality can approach full prefill when the summaries capture
// the right facts, at the cost of one LLM call per chunk.
func (e *Evaluator) mapReduce(chunks [][]int, query []int) Run {
	relA, qent, relB, ok := e.V.ParseQuery(query)
	units := 0
	// The reduce context opens with a sink token, like any well-formed
	// chunk (see the qamodel package comment).
	reduceCtx := []int{e.V.Period}
	for _, c := range chunks {
		// The "map" call: one inference over the chunk (we charge its
		// cost) whose output we model as the extractive summary.
		units += len(c) * e.M.Cfg.Layers
		facts := extractFacts(e.V, c)
		kept := 0
		for _, f := range facts {
			// LangChain's map stage produces short abstractive summaries;
			// the tight budget models their lossiness (keeping every fact
			// would make the reduce stage equivalent to full prefill).
			if kept >= 4 {
				break
			}
			if ok && factRelevant(e.V, f, relA, qent, relB) {
				reduceCtx = append(reduceCtx, f...)
				kept++
			}
		}
	}
	toks := append(append([]int{}, reduceCtx...), query...)
	res := e.M.Prefill(toks, 0, false)
	units += len(toks) * e.M.Cfg.Layers
	tok := qamodel.Answer(e.M, res.Cache, res.Hidden.Row(len(toks)-1))
	ctx := 0
	for _, c := range chunks {
		ctx += len(c)
	}
	return Run{
		Pred:                e.V.Name(tok),
		ComputedTokenLayers: units,
		LLMCalls:            len(chunks) + 1,
		ContextTokens:       ctx,
	}
}

// mapRerank emulates LangChain's map-rerank chain: every chunk answers the
// query independently with a confidence score; the most confident answer
// wins. Cross-chunk dependencies are structurally invisible (§7.2).
func (e *Evaluator) mapRerank(chunks [][]int, query []int) Run {
	_, qent, _, okQ := e.V.ParseQuery(query)
	bestTok, bestMargin := e.V.Period, -1.0
	units := 0
	for _, c := range chunks {
		tok, margin, u := e.singleChunkAnswer(c, query)
		units += u
		// A chunk with no answer path tends to echo the question's own
		// entity with high confidence; the rerank prompt would reject
		// such answers, so they score zero here.
		if okQ && tok == qent {
			margin = 0
		}
		if margin > bestMargin {
			bestMargin = margin
			bestTok = tok
		}
	}
	ctx := 0
	for _, c := range chunks {
		ctx += len(c)
	}
	return Run{
		Pred:                e.V.Name(bestTok),
		ComputedTokenLayers: units,
		LLMCalls:            len(chunks),
		ContextTokens:       ctx,
	}
}

// extractFacts parses a chunk back into its 4-token facts by locating
// relation tokens.
func extractFacts(v *qamodel.Vocab, c []int) [][]int {
	isRel := map[int]bool{v.Fills: true}
	for _, r := range v.RelA {
		isRel[r] = true
	}
	for _, r := range v.RelB {
		isRel[r] = true
	}
	var out [][]int
	for i := 1; i+2 < len(c); i++ {
		if isRel[c[i]] && c[i+2] == v.Period {
			out = append(out, c[i-1:i+3])
		}
	}
	return out
}

// factRelevant reports whether a fact mentions the query entity, a query
// relation, or any role token (the map stage cannot know which role
// matters, so it keeps them all).
func factRelevant(v *qamodel.Vocab, f []int, relA, qent, relB int) bool {
	roles := map[int]bool{}
	for _, r := range v.RoleD {
		roles[r] = true
	}
	for _, r := range v.RoleR {
		roles[r] = true
	}
	for _, t := range f {
		if t == qent || t == relA || t == relB || roles[t] {
			return true
		}
	}
	return false
}
