package sim

// Property tests for the workload samplers: the statistical contracts the
// workload generators and the serving simulation rely on, checked across
// parameter grids rather than single points.

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// TestPoissonArrivalsProperty: across rates and seeds, arrivals must be
// strictly increasing with mean inter-arrival time ≈ 1/rate.
func TestPoissonArrivalsProperty(t *testing.T) {
	const n = 30000
	for _, rate := range []float64{0.1, 0.5, 2, 8, 64} {
		for _, seed := range []int64{1, 2, 3} {
			arr := PoissonArrivals(tensor.NewRNG(seed), rate, n)
			if len(arr) != n {
				t.Fatalf("rate %v seed %d: %d arrivals, want %d", rate, seed, len(arr), n)
			}
			prev := 0.0
			for i, a := range arr {
				if a <= prev {
					t.Fatalf("rate %v seed %d: arrival %d (%v) not strictly after %v", rate, seed, i, a, prev)
				}
				prev = a
			}
			mean := arr[n-1] / float64(n)
			if math.Abs(mean-1/rate) > 0.03/rate {
				t.Fatalf("rate %v seed %d: mean inter-arrival %v, want ≈ %v", rate, seed, mean, 1/rate)
			}
		}
	}
}

// zipfHeadMass returns the fraction of draws landing in the most popular
// decile of an n-sized domain.
func zipfHeadMass(t *testing.T, n int, s float64, draws int) float64 {
	t.Helper()
	g := tensor.NewRNG(17)
	head := 0
	for i := 0; i < draws; i++ {
		v := Zipf(g, n, s)
		if v < 0 || v >= n {
			t.Fatalf("Zipf(n=%d, s=%v) out of range: %d", n, s, v)
		}
		if v < n/10 {
			head++
		}
	}
	return float64(head) / float64(draws)
}

// TestZipfConcentrationMonotone: the head of the popularity distribution
// must grow monotonically with the skew exponent within each sampling
// branch. The sampler intentionally switches formulas at s=1 (inverse-CDF
// power for s<1, a simple power skew for s≥1), so concentration is
// monotone within each branch but not across the switch — both branches
// are exercised here.
func TestZipfConcentrationMonotone(t *testing.T) {
	const n, draws = 200, 60000
	branches := [][]float64{
		{0, 0.25, 0.5, 0.75, 0.95}, // s < 1: inverse-CDF branch
		{1.0, 1.3, 1.7, 2.5},       // s ≥ 1: power-skew branch
	}
	for _, ss := range branches {
		prev := -1.0
		for _, s := range ss {
			head := zipfHeadMass(t, n, s, draws)
			if head <= prev {
				t.Fatalf("head mass not monotone in skew: s=%v gives %.3f, previous had %.3f", s, head, prev)
			}
			prev = head
		}
	}
	// Uniform baseline: s=0 puts ≈10% in the top decile.
	if h := zipfHeadMass(t, n, 0, draws); h < 0.07 || h > 0.13 {
		t.Fatalf("s=0 head mass %.3f, want ≈0.10 (uniform)", h)
	}
	// Both branches must actually skew: clearly above uniform.
	for _, s := range []float64{0.75, 1.7} {
		if h := zipfHeadMass(t, n, s, draws); h < 0.2 {
			t.Fatalf("s=%v head mass %.3f barely above uniform", s, h)
		}
	}
}

// TestZipfDeterministicAcrossBranches: same seed, same draws — for both
// branch exponents.
func TestZipfDeterministicAcrossBranches(t *testing.T) {
	for _, s := range []float64{0.6, 1.4} {
		a, b := tensor.NewRNG(5), tensor.NewRNG(5)
		for i := 0; i < 2000; i++ {
			if Zipf(a, 50, s) != Zipf(b, 50, s) {
				t.Fatalf("s=%v: draw %d diverged across equal seeds", s, i)
			}
		}
	}
}
