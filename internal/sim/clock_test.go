package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestClockProcessOrdering runs table-driven scenarios through the
// process scheduler and checks the exact wake order.
func TestClockProcessOrdering(t *testing.T) {
	cases := []struct {
		name  string
		setup func(c *Clock, trace *[]string)
		want  []string
	}{
		{
			name: "sleeps fire in time order regardless of spawn order",
			setup: func(c *Clock, trace *[]string) {
				for i, d := range []float64{3, 1, 2} {
					i, d := i, d
					c.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
						p.Sleep(d)
						*trace = append(*trace, fmt.Sprintf("p%d@%.0f", i, p.Now()))
					})
				}
			},
			want: []string{"p1@1", "p2@2", "p0@3"},
		},
		{
			name: "equal wake times break ties by schedule order",
			setup: func(c *Clock, trace *[]string) {
				for i := 0; i < 3; i++ {
					i := i
					c.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
						p.Sleep(5)
						*trace = append(*trace, fmt.Sprintf("p%d", i))
					})
				}
			},
			want: []string{"p0", "p1", "p2"},
		},
		{
			name: "queue delivers FIFO to a single consumer",
			setup: func(c *Clock, trace *[]string) {
				q := NewQueue[int](c)
				c.Go("producer", func(p *Proc) {
					for i := 0; i < 4; i++ {
						p.Sleep(1)
						q.Push(i)
					}
					q.Close()
				})
				c.Go("consumer", func(p *Proc) {
					for {
						v, ok := q.Pop(p)
						if !ok {
							return
						}
						*trace = append(*trace, fmt.Sprintf("got%d@%.0f", v, p.Now()))
					}
				})
			},
			want: []string{"got0@1", "got1@2", "got2@3", "got3@4"},
		},
		{
			name: "blocked consumers wake in FIFO order (admission fairness)",
			setup: func(c *Clock, trace *[]string) {
				q := NewQueue[int](c)
				for i := 0; i < 3; i++ {
					i := i
					c.Go(fmt.Sprintf("worker%d", i), func(p *Proc) {
						for {
							v, ok := q.Pop(p)
							if !ok {
								return
							}
							*trace = append(*trace, fmt.Sprintf("w%d<-%d", i, v))
						}
					})
				}
				c.Go("producer", func(p *Proc) {
					for i := 0; i < 3; i++ {
						p.Sleep(1)
						q.Push(10 + i)
					}
					q.Close()
				})
			},
			want: []string{"w0<-10", "w1<-11", "w2<-12"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewClock()
			var trace []string
			tc.setup(c, &trace)
			c.Run()
			if !reflect.DeepEqual(trace, tc.want) {
				t.Fatalf("trace %v, want %v", trace, tc.want)
			}
		})
	}
}

func TestClockDeterministic(t *testing.T) {
	run := func() []string {
		c := NewClock()
		q := NewQueue[int](c)
		var trace []string
		c.Go("producer", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Sleep(0.5)
				q.Push(i)
			}
			q.Close()
		})
		for w := 0; w < 4; w++ {
			w := w
			c.Go(fmt.Sprintf("w%d", w), func(p *Proc) {
				for {
					v, ok := q.Pop(p)
					if !ok {
						return
					}
					p.Sleep(1.3) // busy: forces hand-offs between workers
					trace = append(trace, fmt.Sprintf("w%d:%d@%.1f", w, v, p.Now()))
				}
			})
		}
		c.Run()
		return trace
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%v\n%v", a, b)
	}
	if len(a) != 20 {
		t.Fatalf("expected 20 completions, got %d", len(a))
	}
}

func TestClockRunReturnsFinalTime(t *testing.T) {
	c := NewClock()
	c.Go("p", func(p *Proc) {
		p.Sleep(2)
		p.Sleep(3)
	})
	if end := c.Run(); end != 5 {
		t.Fatalf("final time %v, want 5", end)
	}
	if c.Now() != 5 {
		t.Fatalf("Now() %v after Run", c.Now())
	}
}

func TestClockDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	c := NewClock()
	q := NewQueue[int](c)
	c.Go("stuck", func(p *Proc) {
		q.Pop(p) // never pushed, never closed
	})
	c.Run()
}

func TestQueueTryPopAndLen(t *testing.T) {
	c := NewClock()
	q := NewQueue[string](c)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
	q.Push("a")
	q.Push("b")
	if q.Len() != 2 {
		t.Fatalf("Len %d, want 2", q.Len())
	}
	v, ok := q.TryPop()
	if !ok || v != "a" {
		t.Fatalf("TryPop got %q/%v", v, ok)
	}
}
