package sim

import (
	"fmt"
	"testing"
)

// TestRingFIFOAcrossWrap pushes and pops through many wrap-arounds and
// checks strict FIFO order at every queue depth.
func TestRingFIFOAcrossWrap(t *testing.T) {
	var r ring[int]
	next := 0 // next value to push
	want := 0 // next value expected from pop
	for depth := 0; depth < 13; depth++ {
		for i := 0; i < 50; i++ {
			for j := 0; j < depth; j++ {
				r.push(next)
				next++
			}
			for j := 0; j < depth; j++ {
				if got := r.pop(); got != want {
					t.Fatalf("depth %d: pop = %d, want %d", depth, got, want)
				}
				want++
			}
			if r.len() != 0 {
				t.Fatalf("depth %d: len %d after drain", depth, r.len())
			}
		}
	}
}

// TestQueueDrainedStorageBounded is the regression test for the old
// `items = items[1:]` drift: a queue cycled through many push/pop rounds
// must not grow its backing storage beyond the high-water depth. Under
// the slice-drift implementation the backing array grew with every push
// (the drained head was never reclaimed), so capacity scaled with total
// throughput instead of peak occupancy.
func TestQueueDrainedStorageBounded(t *testing.T) {
	c := NewClock()
	q := NewQueue[int](c)
	const rounds, depth = 10000, 4
	for i := 0; i < rounds; i++ {
		for j := 0; j < depth; j++ {
			q.Push(i*depth + j)
		}
		for j := 0; j < depth; j++ {
			if _, ok := q.TryPop(); !ok {
				t.Fatal("TryPop on non-empty queue failed")
			}
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: len %d", q.Len())
	}
	// Power-of-two growth from a high-water mark of `depth` items can
	// never need more than 2*depth slots; anything larger means storage
	// scaled with throughput again.
	if got := len(q.items.buf); got > 2*depth {
		t.Fatalf("drained queue retains %d slots for peak depth %d: backing storage grew with throughput", got, depth)
	}
}

// TestRingReleasesPoppedRefs checks that pop zeroes the vacated slot so
// popped pointers do not stay reachable from the buffer for the rest of
// the run.
func TestRingReleasesPoppedRefs(t *testing.T) {
	var r ring[*int]
	v := new(int)
	r.push(v)
	r.pop()
	for i, p := range r.buf {
		if p != nil {
			t.Fatalf("slot %d still holds a popped pointer", i)
		}
	}
}

// TestQueueWaitersWrap exercises the waiter ring across a wrap boundary:
// more blocked consumers than the initial ring capacity, woken strictly
// FIFO.
func TestQueueWaitersWrap(t *testing.T) {
	c := NewClock()
	q := NewQueue[int](c)
	const consumers = 20 // > initial ring capacity of 8
	var order []string
	for i := 0; i < consumers; i++ {
		i := i
		c.Go(fmt.Sprintf("c%d", i), func(p *Proc) {
			v, ok := q.Pop(p)
			if !ok {
				return
			}
			order = append(order, fmt.Sprintf("c%d<-%d", i, v))
		})
	}
	c.Go("producer", func(p *Proc) {
		p.Sleep(1)
		for i := 0; i < consumers; i++ {
			q.Push(i)
		}
		q.Close()
	})
	c.Run()
	if len(order) != consumers {
		t.Fatalf("%d deliveries, want %d", len(order), consumers)
	}
	for i, got := range order {
		if want := fmt.Sprintf("c%d<-%d", i, i); got != want {
			t.Fatalf("delivery %d = %q, want %q (waiter FIFO broken)", i, got, want)
		}
	}
}
