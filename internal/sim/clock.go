// Process-oriented layer on top of the event engine: a virtual Clock that
// coordinates goroutine "processes" so concurrent serving runtimes (N
// replica workers pulling from shared queues) simulate deterministically.
//
// Exactly one process runs at any instant: the scheduler hands a run
// token to the process due at the earliest virtual time, and the process
// hands it back when it sleeps, blocks on a Queue, or exits. Processes
// are real goroutines — the race detector sees every hand-off — but the
// single-token discipline plus the (time, seq) event order makes every
// run with the same inputs bit-identical.
package sim

import (
	"container/heap"
	"fmt"
)

// Clock schedules process goroutines over virtual time.
type Clock struct {
	now     float64
	seq     int
	heap    eventHeap
	yielded chan struct{} // a running process signals the scheduler here
	live    int           // registered, not-yet-finished processes
}

// NewClock returns a clock at virtual time 0 with no processes.
func NewClock() *Clock {
	return &Clock{yielded: make(chan struct{})}
}

// Now returns the current virtual time.
func (c *Clock) Now() float64 { return c.now }

// Proc is the handle a process uses to interact with virtual time. It is
// only valid inside the function passed to Go, on that goroutine.
type Proc struct {
	c    *Clock
	name string
	wake chan struct{}
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.c.now }

// Go registers fn as a process starting at the current virtual time.
// Must be called before Run (or from a running process).
func (c *Clock) Go(name string, fn func(p *Proc)) {
	p := &Proc{c: c, name: name, wake: make(chan struct{})}
	c.live++
	go func() {
		<-p.wake // wait for the scheduler's first hand-off
		fn(p)
		c.live--
		c.yielded <- struct{}{} // return the run token for good
	}()
	c.at(c.now, func(float64) { c.resume(p) })
}

// at schedules fn on the raw event heap.
func (c *Clock) at(t float64, fn func(now float64)) {
	if t < c.now {
		t = c.now
	}
	c.seq++
	heap.Push(&c.heap, event{at: t, seq: c.seq, fn: fn})
}

// resume hands the run token to p and waits for it to yield or exit.
// Called only from the scheduler loop (inside an event fn).
func (c *Clock) resume(p *Proc) {
	p.wake <- struct{}{}
	<-c.yielded
}

// park gives the run token back to the scheduler and waits to be resumed.
// Called only from a process goroutine.
func (p *Proc) park() {
	p.c.yielded <- struct{}{}
	<-p.wake
}

// Sleep suspends the process for d seconds of virtual time.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.c.now + d)
}

// SleepUntil suspends the process until absolute virtual time t.
func (p *Proc) SleepUntil(t float64) {
	p.c.at(t, func(float64) { p.c.resume(p) })
	p.park()
}

// Run drives the clock until every process has exited and the event queue
// is drained, returning the final virtual time. It panics on deadlock —
// processes still blocked with no event that could ever wake them.
func (c *Clock) Run() float64 {
	for c.heap.Len() > 0 {
		ev := heap.Pop(&c.heap).(event)
		c.now = ev.at
		ev.fn(c.now)
	}
	if c.live > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked at t=%.3f with no pending events", c.live, c.now))
	}
	return c.now
}

// Queue is a FIFO channel between processes in virtual time. Pop blocks
// the calling process until an item arrives or the queue is closed;
// blocked consumers are woken in FIFO order, so admission is fair and
// deterministic.
type Queue[T any] struct {
	c       *Clock
	items   []T
	waiters []*Proc
	closed  bool
}

// NewQueue makes an empty open queue on c.
func NewQueue[T any](c *Clock) *Queue[T] {
	return &Queue[T]{c: c}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push appends v and wakes the longest-waiting consumer, if any.
func (q *Queue[T]) Push(v T) {
	if q.closed {
		panic("sim: push on closed queue")
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

// Closed reports whether Close has been called. Items already queued
// still drain through Pop/TryPop.
func (q *Queue[T]) Closed() bool { return q.closed }

// Close marks the queue finished: blocked and future Pops return ok=false
// once the items drain.
func (q *Queue[T]) Close() {
	q.closed = true
	for len(q.waiters) > 0 {
		q.wakeOne()
	}
}

func (q *Queue[T]) wakeOne() {
	if len(q.waiters) == 0 {
		return
	}
	p := q.waiters[0]
	q.waiters = q.waiters[1:]
	q.c.at(q.c.now, func(float64) { q.c.resume(p) })
}

// TryPop returns the head item without blocking (ok=false when empty).
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Pop blocks the process until an item is available, returning ok=false
// only once the queue is closed and drained.
func (q *Queue[T]) Pop(p *Proc) (T, bool) {
	for {
		if v, ok := q.TryPop(); ok {
			return v, true
		}
		if q.closed {
			var zero T
			return zero, false
		}
		q.waiters = append(q.waiters, p)
		p.park()
	}
}
