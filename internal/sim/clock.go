// Process-oriented layer on top of the event engine: a virtual Clock that
// coordinates goroutine "processes" so concurrent serving runtimes (N
// replica workers pulling from shared queues) simulate deterministically.
//
// Exactly one process runs at any instant: the scheduler hands a run
// token to the process due at the earliest virtual time, and the process
// hands it back when it sleeps, blocks on a Queue, or exits. Processes
// are real goroutines — the race detector sees every hand-off — but the
// single-token discipline plus the (time, seq) event order makes every
// run with the same inputs bit-identical.
package sim

import (
	"fmt"
)

// Clock schedules process goroutines over virtual time.
type Clock struct {
	now     float64
	seq     int
	heap    eventHeap
	yielded chan struct{} // a running process signals the scheduler here
	live    int           // registered, not-yet-finished processes
}

// NewClock returns a clock at virtual time 0 with no processes.
func NewClock() *Clock {
	return &Clock{yielded: make(chan struct{})}
}

// Now returns the current virtual time.
func (c *Clock) Now() float64 { return c.now }

// Proc is the handle a process uses to interact with virtual time. It is
// only valid inside the function passed to Go, on that goroutine.
type Proc struct {
	c    *Clock
	name string
	wake chan struct{}
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.c.now }

// Go registers fn as a process starting at the current virtual time.
// Must be called before Run (or from a running process).
func (c *Clock) Go(name string, fn func(p *Proc)) {
	p := &Proc{c: c, name: name, wake: make(chan struct{})}
	c.live++
	go func() {
		<-p.wake // wait for the scheduler's first hand-off
		fn(p)
		c.live--
		c.yielded <- struct{}{} // return the run token for good
	}()
	c.atProc(c.now, p)
}

// at schedules fn on the raw event heap.
func (c *Clock) at(t float64, fn func(now float64)) {
	if t < c.now {
		t = c.now
	}
	c.seq++
	c.heap.push(event{at: t, seq: c.seq, fn: fn})
}

// atProc schedules a resume of p — the closure-free fast form for the
// dominant sleep/wake path.
func (c *Clock) atProc(t float64, p *Proc) {
	if t < c.now {
		t = c.now
	}
	c.seq++
	c.heap.push(event{at: t, seq: c.seq, p: p})
}

// resume hands the run token to p and waits for it to yield or exit.
// Called only from the scheduler loop (inside an event fn).
func (c *Clock) resume(p *Proc) {
	p.wake <- struct{}{}
	<-c.yielded
}

// park gives the run token back to the scheduler and waits to be resumed.
// Called only from a process goroutine.
func (p *Proc) park() {
	p.c.yielded <- struct{}{}
	<-p.wake
}

// Sleep suspends the process for d seconds of virtual time.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.c.now + d)
}

// SleepUntil suspends the process until absolute virtual time t.
func (p *Proc) SleepUntil(t float64) {
	c := p.c
	if t < c.now {
		t = c.now
	}
	// Fast path: if the wake event would be the strict heap minimum, this
	// process is the next runnable one — advance the clock and keep
	// running without the park/resume channel round-trip. Strictness
	// matters: an equal-time event already in the heap has a smaller seq
	// and must run first. Skipping the seq increment is safe because the
	// relative push order of all other events (and so their tie-breaking)
	// is unchanged.
	if len(c.heap) == 0 || t < c.heap[0].at {
		c.now = t
		return
	}
	c.atProc(t, p)
	p.park()
}

// Run drives the clock until every process has exited and the event queue
// is drained, returning the final virtual time. It panics on deadlock —
// processes still blocked with no event that could ever wake them.
func (c *Clock) Run() float64 {
	for len(c.heap) > 0 {
		ev := c.heap.pop()
		c.now = ev.at
		if ev.p != nil {
			c.resume(ev.p)
		} else {
			ev.fn(c.now)
		}
	}
	if c.live > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked at t=%.3f with no pending events", c.live, c.now))
	}
	return c.now
}

// ring is a power-of-two circular buffer. Unlike the previous
// `s = s[1:]` FIFO idiom it releases popped slots (no dead head memory
// retained for the run) and reuses its storage across push/pop cycles.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) len() int { return r.n }

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *ring[T]) pop() T {
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero // release the reference in the vacated slot
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// at returns the i-th queued item (0 = head) without removing it.
func (r *ring[T]) at(i int) T {
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// removeAt removes and returns the i-th item, preserving the relative
// order of everything else: the items ahead of i shift back one slot and
// the head advances. O(i), which stays cheap because callers remove the
// minimum of a scan that tie-breaks toward the head.
func (r *ring[T]) removeAt(i int) T {
	mask := len(r.buf) - 1
	v := r.buf[(r.head+i)&mask]
	for j := i; j > 0; j-- {
		r.buf[(r.head+j)&mask] = r.buf[(r.head+j-1)&mask]
	}
	var zero T
	r.buf[r.head] = zero // release the reference in the vacated slot
	r.head = (r.head + 1) & mask
	r.n--
	return v
}

func (r *ring[T]) grow() {
	next := len(r.buf) * 2
	if next == 0 {
		next = 8
	}
	buf := make([]T, next)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// Queue is a FIFO channel between processes in virtual time. Pop blocks
// the calling process until an item arrives or the queue is closed;
// blocked consumers are woken in FIFO order, so admission is fair and
// deterministic.
type Queue[T any] struct {
	c       *Clock
	items   ring[T]
	waiters ring[*Proc]
	closed  bool
}

// NewQueue makes an empty open queue on c.
func NewQueue[T any](c *Clock) *Queue[T] {
	return &Queue[T]{c: c}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return q.items.len() }

// Push appends v and wakes the longest-waiting consumer, if any.
func (q *Queue[T]) Push(v T) {
	if q.closed {
		panic("sim: push on closed queue")
	}
	q.items.push(v)
	q.wakeOne()
}

// Closed reports whether Close has been called. Items already queued
// still drain through Pop/TryPop.
func (q *Queue[T]) Closed() bool { return q.closed }

// Close marks the queue finished: blocked and future Pops return ok=false
// once the items drain.
func (q *Queue[T]) Close() {
	q.closed = true
	for q.waiters.len() > 0 {
		q.wakeOne()
	}
}

func (q *Queue[T]) wakeOne() {
	if q.waiters.len() == 0 {
		return
	}
	q.c.atProc(q.c.now, q.waiters.pop())
}

// TryPop returns the head item without blocking (ok=false when empty).
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if q.items.len() == 0 {
		return zero, false
	}
	return q.items.pop(), true
}

// Pop blocks the process until an item is available, returning ok=false
// only once the queue is closed and drained.
func (q *Queue[T]) Pop(p *Proc) (T, bool) {
	for {
		if v, ok := q.TryPop(); ok {
			return v, true
		}
		if q.closed {
			var zero T
			return zero, false
		}
		q.waiters.push(p)
		p.park()
	}
}

// TryPopMin removes and returns the minimum queued item under less
// without blocking (ok=false when empty). Ties keep the earliest-pushed
// item — a less that never orders anything degrades to exact FIFO — so
// priority consumers stay as deterministic as TryPop.
func (q *Queue[T]) TryPopMin(less func(a, b T) bool) (T, bool) {
	var zero T
	n := q.items.len()
	if n == 0 {
		return zero, false
	}
	best := 0
	for i := 1; i < n; i++ {
		if less(q.items.at(i), q.items.at(best)) {
			best = i
		}
	}
	return q.items.removeAt(best), true
}

// PopMin is the blocking form of TryPopMin: it parks the process like Pop
// until an item is available, then takes the minimum under less,
// returning ok=false only once the queue is closed and drained.
func (q *Queue[T]) PopMin(p *Proc, less func(a, b T) bool) (T, bool) {
	for {
		if v, ok := q.TryPopMin(less); ok {
			return v, true
		}
		if q.closed {
			var zero T
			return zero, false
		}
		q.waiters.push(p)
		p.park()
	}
}
