package sim

import (
	"math"
	"sort"
	"testing"

	"repro/internal/tensor"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var got []float64
	e.At(3, func(now float64) { got = append(got, now) })
	e.At(1, func(now float64) { got = append(got, now) })
	e.At(2, func(now float64) { got = append(got, now) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("end time %v want 3", end)
	}
	if !sort.Float64sAreSorted(got) || len(got) != 3 {
		t.Fatalf("events out of order: %v", got)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []float64
	e.At(1, func(now float64) {
		trace = append(trace, now)
		e.After(2, func(now2 float64) { trace = append(trace, now2) })
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 3 {
		t.Fatalf("nested scheduling wrong: %v", trace)
	}
}

func TestEnginePastEventsClamp(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.At(5, func(now float64) {
		e.At(1, func(now2 float64) { at = now2 }) // in the past → clamps to now
	})
	e.Run()
	if at != 5 {
		t.Fatalf("past event ran at %v, want clamp to 5", at)
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(1, func(float64) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events must run in scheduling order: %v", order)
		}
	}
}

func TestPoissonArrivalsStatistics(t *testing.T) {
	g := tensor.NewRNG(1)
	rate := 4.0
	n := 20000
	arr := PoissonArrivals(g, rate, n)
	if !sort.Float64sAreSorted(arr) {
		t.Fatal("arrivals must be increasing")
	}
	// Mean inter-arrival ≈ 1/rate.
	mean := arr[n-1] / float64(n)
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("mean inter-arrival %v want %v", mean, 1/rate)
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a := PoissonArrivals(tensor.NewRNG(7), 2, 100)
	b := PoissonArrivals(tensor.NewRNG(7), 2, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same arrivals")
		}
	}
}

func TestPoissonPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PoissonArrivals(tensor.NewRNG(1), 0, 1)
}

func TestZipfSkew(t *testing.T) {
	g := tensor.NewRNG(3)
	n := 100
	counts := make([]int, n)
	for i := 0; i < 50000; i++ {
		counts[Zipf(g, n, 0.9)]++
	}
	// Heavy head: the most popular decile should hold well over 10%.
	head := 0
	for _, c := range counts[:10] {
		head += c
	}
	if head < 15000 {
		t.Fatalf("Zipf head too light: %d/50000", head)
	}
	// Uniform when s=0.
	counts0 := make([]int, n)
	for i := 0; i < 50000; i++ {
		counts0[Zipf(g, n, 0)]++
	}
	for _, c := range counts0 {
		if c < 200 || c > 900 {
			t.Fatalf("uniform mode too skewed: %d", c)
		}
	}
}

func TestZipfBounds(t *testing.T) {
	g := tensor.NewRNG(4)
	for i := 0; i < 1000; i++ {
		v := Zipf(g, 7, 1.2)
		if v < 0 || v >= 7 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Zipf(g, 0, 1)
}
