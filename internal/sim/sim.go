// Package sim provides the discrete-event simulation core used by the
// serving experiments: a virtual-time event queue and Poisson arrival
// generation. Virtual time lets the reproduction measure TTFT and
// throughput of GPU-scale serving configurations (Figure 14) without the
// paper's A40 testbed.
package sim

import (
	"math"

	"repro/internal/tensor"
)

// event is a scheduled wakeup. Exactly one of p and fn is set: p resumes
// a parked process directly (the dominant Sleep/queue-wake path, no
// closure allocation), fn runs an arbitrary callback.
type event struct {
	at  float64
	seq int // tiebreaker for deterministic ordering
	p   *Proc
	fn  func(now float64)
}

// before orders events by (at, seq). seq is unique per clock, so this is
// a total order: any correct heap pops the identical sequence.
func (ev event) before(other event) bool {
	if ev.at != other.at {
		return ev.at < other.at
	}
	return ev.seq < other.seq
}

// eventHeap is a concrete binary min-heap on (at, seq). Typed push/pop
// avoid the interface{} boxing of container/heap on every event.
type eventHeap []event

func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[n] = event{} // release closure/proc references in the dead slot
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && s[r].before(s[l]) {
			least = r
		}
		if !s[least].before(s[i]) {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// Engine runs events in virtual-time order.
type Engine struct {
	now  float64
	seq  int
	heap eventHeap
}

// NewEngine returns an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute time t (clamped to now for past times).
func (e *Engine) At(t float64, fn func(now float64)) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.heap.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay float64, fn func(now float64)) {
	e.At(e.now+delay, fn)
}

// Run processes events until the queue drains, returning the final time.
func (e *Engine) Run() float64 {
	for len(e.heap) > 0 {
		ev := e.heap.pop()
		e.now = ev.at
		ev.fn(e.now)
	}
	return e.now
}

// PoissonArrivals returns n arrival times of a Poisson process with the
// given rate (events/second), deterministically from g.
func PoissonArrivals(g *tensor.RNG, rate float64, n int) []float64 {
	if rate <= 0 {
		panic("sim: non-positive arrival rate")
	}
	out := make([]float64, n)
	t := 0.0
	for i := 0; i < n; i++ {
		u := g.Float64()
		if u <= 0 {
			u = 1e-12
		}
		t += -math.Log(u) / rate
		out[i] = t
	}
	return out
}

// Zipf draws an index in [0, n) with a skewed popularity distribution
// (exponent s ≥ 0; s=0 is uniform), deterministically from g. It models
// chunk reuse: a few context chunks are requested far more often than the
// tail, which is what makes KV caches worth storing.
func Zipf(g *tensor.RNG, n int, s float64) int {
	if n <= 0 {
		panic("sim: Zipf over empty domain")
	}
	if s <= 0 {
		return g.Intn(n)
	}
	// Inverse-CDF on the continuous approximation: x ∝ u^(1/(1-s)) for
	// s<1; for s≥1 fall back to a simple power skew.
	u := g.Float64()
	exp := 1.0
	if s < 1 {
		exp = 1 / (1 - s)
	} else {
		exp = 1 + s
	}
	idx := int(math.Pow(u, exp) * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}
