package sim

import (
	"testing"
)

// TestRingRemoveAtPreservesOrder removes interior items across wrap
// boundaries and checks the survivors keep their relative order.
func TestRingRemoveAtPreservesOrder(t *testing.T) {
	var r ring[int]
	// Force a wrapped layout: fill, drain half, refill past the seam.
	for i := 0; i < 8; i++ {
		r.push(i)
	}
	for i := 0; i < 4; i++ {
		r.pop()
	}
	for i := 8; i < 12; i++ {
		r.push(i)
	}
	// Queue is now 4..11 with head past the physical midpoint.
	if got := r.removeAt(3); got != 7 {
		t.Fatalf("removeAt(3) = %d, want 7", got)
	}
	if got := r.removeAt(0); got != 4 {
		t.Fatalf("removeAt(0) = %d, want 4", got)
	}
	want := []int{5, 6, 8, 9, 10, 11}
	if r.len() != len(want) {
		t.Fatalf("len %d, want %d", r.len(), len(want))
	}
	for i, w := range want {
		if got := r.at(i); got != w {
			t.Fatalf("at(%d) = %d, want %d", i, got, w)
		}
	}
	for _, w := range want {
		if got := r.pop(); got != w {
			t.Fatalf("pop = %d, want %d", got, w)
		}
	}
}

// TestQueueTryPopMin checks min extraction and the first-wins tie rule:
// equal keys must come out in push order, so a constant-false less
// degrades TryPopMin to exact FIFO.
func TestQueueTryPopMin(t *testing.T) {
	c := NewClock()
	q := NewQueue[int](c)
	less := func(a, b int) bool { return a < b }
	if _, ok := q.TryPopMin(less); ok {
		t.Fatal("TryPopMin on empty queue returned ok")
	}
	for _, v := range []int{5, 2, 8, 2, 1, 9} {
		q.Push(v)
	}
	for _, want := range []int{1, 2, 2, 5, 8, 9} {
		got, ok := q.TryPopMin(less)
		if !ok || got != want {
			t.Fatalf("TryPopMin = %d,%v, want %d", got, ok, want)
		}
	}
	// Ties keep push order: with a never-true less the queue is pure FIFO.
	for _, v := range []int{3, 1, 4, 1, 5} {
		q.Push(v)
	}
	never := func(a, b int) bool { return false }
	for _, want := range []int{3, 1, 4, 1, 5} {
		got, ok := q.TryPopMin(never)
		if !ok || got != want {
			t.Fatalf("FIFO-degenerate TryPopMin = %d,%v, want %d", got, ok, want)
		}
	}
}

// TestQueuePopMinBlocksAndDrains checks the blocking form: a consumer
// parked on an empty queue wakes on push, takes the minimum of whatever
// is queued by then, and sees ok=false once the queue closes empty.
func TestQueuePopMinBlocksAndDrains(t *testing.T) {
	c := NewClock()
	q := NewQueue[int](c)
	less := func(a, b int) bool { return a < b }
	var got []int
	closed := false
	c.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.PopMin(p, less)
			if !ok {
				closed = true
				return
			}
			got = append(got, v)
		}
	})
	c.Go("producer", func(p *Proc) {
		p.Sleep(1)
		// The consumer is parked; pushing wakes it at t=1 after all three
		// pushes land (wake events run after this process yields), so it
		// drains in min order.
		q.Push(7)
		q.Push(3)
		q.Push(5)
		p.Sleep(1)
		q.Close()
	})
	c.Run()
	if !closed {
		t.Fatal("consumer never saw the queue close")
	}
	// The first wake pops the min of the full backlog {7,3,5}; subsequent
	// iterations drain the rest in min order without parking.
	want := []int{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}
