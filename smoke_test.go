package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// goTool runs the go command from the repository root and returns its
// combined output.
func goTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %s failed: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

// goToolErr is goTool for commands that are expected to fail: it returns
// the combined output and the error.
func goToolErr(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestBuildAllMains builds every main package under cmd/ and examples/,
// so binaries can't silently rot while only library tests run.
func TestBuildAllMains(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	goTool(t, "build", "-o", dir+string(filepath.Separator), "./cmd/...", "./examples/...")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 8 { // 3 cmds + 6 examples at the time of writing
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("expected at least 8 binaries, built %d: %v", len(entries), names)
	}
}

// TestExamplesRunEndToEnd executes the quickstart and rag_pipeline
// examples and checks for their expected output shape.
func TestExamplesRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	cases := []struct {
		pkg  string
		want []string
	}{
		{"./examples/quickstart", []string{"question:", "answer:"}},
		{"./examples/rag_pipeline", []string{"scheme", "cacheblend", "full-recompute"}},
	}
	for _, c := range cases {
		c := c
		t.Run(filepath.Base(c.pkg), func(t *testing.T) {
			t.Parallel()
			out := goTool(t, "run", c.pkg)
			for _, w := range c.want {
				if !strings.Contains(out, w) {
					t.Fatalf("%s output missing %q:\n%s", c.pkg, w, out)
				}
			}
		})
	}
}

// TestServeCLISmoke drives the serving CLI end to end with the new
// replica/batching flags.
func TestServeCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the serve binary")
	}
	out := goTool(t, "run", "./cmd/cacheblend-serve",
		"-replicas", "2", "-batch", "4", "-n", "200", "-rates", "1", "-v")
	for _, w := range []string{"replicas=2", "mean_ttft", "replica-util="} {
		if !strings.Contains(out, w) {
			t.Fatalf("serve CLI output missing %q:\n%s", w, out)
		}
	}
}

// TestServeCLIWorkloadSmoke drives the serving CLI's workload generators:
// a bursty stream and a multi-tenant mix with per-tenant telemetry.
func TestServeCLIWorkloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the serve binary")
	}
	out := goTool(t, "run", "./cmd/cacheblend-serve",
		"-workload", "bursty", "-burst", "8", "-rates", "1", "-n", "200")
	for _, w := range []string{"workload=bursty", "mean_ttft"} {
		if !strings.Contains(out, w) {
			t.Fatalf("bursty serve CLI output missing %q:\n%s", w, out)
		}
	}
	out = goTool(t, "run", "./cmd/cacheblend-serve",
		"-tenants", "3", "-rates", "1", "-n", "300", "-v")
	for _, w := range []string{"tenants=3", "tenant 0", "tenant 2", "hit="} {
		if !strings.Contains(out, w) {
			t.Fatalf("multi-tenant serve CLI output missing %q:\n%s", w, out)
		}
	}
	if out, err := goToolErr(t, "run", "./cmd/cacheblend-serve", "-workload", "sawtooth", "-rates", "1"); err == nil {
		t.Fatalf("unknown workload accepted:\n%s", out)
	}
}

// TestServeCLITraceRecordReplay is the CLI half of the record/replay
// acceptance: a recorded bursty run replayed through -trace must print
// the identical result line, and a malformed trace must fail with a
// line-numbered error.
func TestServeCLITraceRecordReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the serve binary")
	}
	trace := filepath.Join(t.TempDir(), "run.jsonl")
	gen := goTool(t, "run", "./cmd/cacheblend-serve",
		"-workload", "bursty", "-rates", "1", "-n", "200", "-record", trace)
	replay := goTool(t, "run", "./cmd/cacheblend-serve", "-trace", trace)
	resultLine := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "mean_ttft") {
				return line
			}
		}
		t.Fatalf("no result line in:\n%s", out)
		return ""
	}
	if g, r := resultLine(gen), resultLine(replay); g != r {
		t.Fatalf("trace replay result differs:\n gen    %s\n replay %s", g, r)
	}
	if !strings.Contains(replay, "workload=trace:run.jsonl") {
		t.Fatalf("replay output does not name the trace:\n%s", replay)
	}

	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := goToolErr(t, "run", "./cmd/cacheblend-serve", "-trace", bad)
	if err == nil {
		t.Fatalf("malformed trace accepted:\n%s", out)
	}
	if !strings.Contains(out, "line 1") {
		t.Fatalf("malformed-trace error does not name the line:\n%s", out)
	}
}

// TestServeCLIDeterministic is the CLI determinism acceptance: the same
// flags and -seed must print byte-identical output across two runs — the
// whole output, result lines, telemetry and all.
func TestServeCLIDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the serve binary")
	}
	args := []string{"run", "./cmd/cacheblend-serve",
		"-replicas", "2", "-batch", "4", "-decode", "12", "-n", "200",
		"-rates", "1", "-seed", "7", "-v"}
	a := goTool(t, args...)
	b := goTool(t, args...)
	if a != b {
		t.Fatalf("same seed printed different output:\n--- first\n%s--- second\n%s", a, b)
	}
	// A different seed must not reproduce the same result lines.
	args[len(args)-2] = "8"
	if c := goTool(t, args...); c == a {
		t.Fatal("different -seed reproduced identical output — seed ignored")
	}
}

// TestServeCLIDecodeSmoke drives the decode flags end to end and checks
// the TBT/E2E columns and phase-occupancy telemetry reach the output; the
// fixed distribution and a bad distribution name are covered too.
func TestServeCLIDecodeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the serve binary")
	}
	out := goTool(t, "run", "./cmd/cacheblend-serve",
		"-decode", "16", "-batch", "4", "-rates", "1", "-n", "200", "-v")
	for _, w := range []string{"decode=16", "tbt=", "e2e=", "tok/s=", "steps prefill="} {
		if !strings.Contains(out, w) {
			t.Fatalf("decode serve CLI output missing %q:\n%s", w, out)
		}
	}
	out = goTool(t, "run", "./cmd/cacheblend-serve",
		"-decode", "8", "-decode-dist", "fixed", "-rates", "1", "-n", "150")
	if !strings.Contains(out, "tbt=") {
		t.Fatalf("fixed-dist decode output missing tbt:\n%s", out)
	}
	if out, err := goToolErr(t, "run", "./cmd/cacheblend-serve",
		"-decode", "8", "-decode-dist", "zipf", "-rates", "1"); err == nil {
		t.Fatalf("unknown -decode-dist accepted:\n%s", out)
	}
}

// TestServeCLISchedSmoke drives the scheduling-policy flags: a
// chunked-prefill run with an explicit budget must print the scheduling
// telemetry, and the policy/knob validation errors must surface cleanly.
func TestServeCLISchedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the serve binary")
	}
	out := goTool(t, "run", "./cmd/cacheblend-serve",
		"-sched", "chunked-prefill", "-prefill-budget", "128",
		"-decode", "16", "-batch", "4", "-rates", "1", "-n", "200", "-v")
	for _, w := range []string{"sched=chunked-prefill", "tbt=", "sched stall=", "prefill-delay="} {
		if !strings.Contains(out, w) {
			t.Fatalf("chunked-prefill serve CLI output missing %q:\n%s", w, out)
		}
	}
	out = goTool(t, "run", "./cmd/cacheblend-serve",
		"-sched", "decode-priority", "-decode", "16", "-batch", "4", "-rates", "1", "-n", "200", "-v")
	if !strings.Contains(out, "sched=decode-priority") {
		t.Fatalf("decode-priority serve CLI output missing header:\n%s", out)
	}
	if out, err := goToolErr(t, "run", "./cmd/cacheblend-serve",
		"-sched", "sarathi", "-rates", "1"); err == nil || !strings.Contains(out, "scheduling policy") {
		t.Fatalf("unknown -sched accepted or error unclear:\n%s", out)
	}
	if out, err := goToolErr(t, "run", "./cmd/cacheblend-serve",
		"-prefill-budget", "128", "-rates", "1"); err == nil || !strings.Contains(out, "prefill budget") {
		t.Fatalf("-prefill-budget without -sched chunked-prefill accepted or error unclear:\n%s", out)
	}
}

// TestServeCLITraceRejectsWorkloadFlag: -trace fixes the request stream,
// so combining it with an explicit -workload must fail with a clear error
// instead of silently ignoring one of the two.
func TestServeCLITraceRejectsWorkloadFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the serve binary")
	}
	trace := filepath.Join(t.TempDir(), "run.jsonl")
	goTool(t, "run", "./cmd/cacheblend-serve", "-rates", "1", "-n", "100", "-record", trace)
	out, err := goToolErr(t, "run", "./cmd/cacheblend-serve", "-trace", trace, "-workload", "bursty")
	if err == nil {
		t.Fatalf("-trace with -workload accepted:\n%s", out)
	}
	if !strings.Contains(out, "cannot be combined with -workload") {
		t.Fatalf("rejection message unclear:\n%s", out)
	}
	// -decode flags are baked into the recorded stream too.
	out, err = goToolErr(t, "run", "./cmd/cacheblend-serve", "-trace", trace, "-decode", "32")
	if err == nil || !strings.Contains(out, "-decode") {
		t.Fatalf("-trace with -decode accepted or message unclear:\n%s", out)
	}
	// -trace alone still works.
	if out := goTool(t, "run", "./cmd/cacheblend-serve", "-trace", trace); !strings.Contains(out, "mean_ttft") {
		t.Fatalf("plain -trace replay broken:\n%s", out)
	}
}

// TestServeCLITieredSmoke drives the serving CLI with a three-tier KV
// placement and checks the per-tier telemetry reaches the output.
func TestServeCLITieredSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the serve binary")
	}
	out := goTool(t, "run", "./cmd/cacheblend-serve",
		"-tiers", "gpu-hbm:20,cpu-ram:60,nvme-ssd:0", "-n", "200", "-rates", "0.5", "-v")
	for _, w := range []string{"placement=gpu-hbm:20,cpu-ram:60,nvme-ssd:0",
		"tier gpu-hbm", "tier cpu-ram", "tier nvme-ssd", "promotions="} {
		if !strings.Contains(out, w) {
			t.Fatalf("tiered serve CLI output missing %q:\n%s", w, out)
		}
	}
}
