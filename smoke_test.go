package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// goTool runs the go command from the repository root and returns its
// combined output.
func goTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %s failed: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

// TestBuildAllMains builds every main package under cmd/ and examples/,
// so binaries can't silently rot while only library tests run.
func TestBuildAllMains(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	goTool(t, "build", "-o", dir+string(filepath.Separator), "./cmd/...", "./examples/...")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 8 { // 3 cmds + 6 examples at the time of writing
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("expected at least 8 binaries, built %d: %v", len(entries), names)
	}
}

// TestExamplesRunEndToEnd executes the quickstart and rag_pipeline
// examples and checks for their expected output shape.
func TestExamplesRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	cases := []struct {
		pkg  string
		want []string
	}{
		{"./examples/quickstart", []string{"question:", "answer:"}},
		{"./examples/rag_pipeline", []string{"scheme", "cacheblend", "full-recompute"}},
	}
	for _, c := range cases {
		c := c
		t.Run(filepath.Base(c.pkg), func(t *testing.T) {
			t.Parallel()
			out := goTool(t, "run", c.pkg)
			for _, w := range c.want {
				if !strings.Contains(out, w) {
					t.Fatalf("%s output missing %q:\n%s", c.pkg, w, out)
				}
			}
		})
	}
}

// TestServeCLISmoke drives the serving CLI end to end with the new
// replica/batching flags.
func TestServeCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the serve binary")
	}
	out := goTool(t, "run", "./cmd/cacheblend-serve",
		"-replicas", "2", "-batch", "4", "-n", "200", "-rates", "1", "-v")
	for _, w := range []string{"replicas=2", "mean_ttft", "replica-util="} {
		if !strings.Contains(out, w) {
			t.Fatalf("serve CLI output missing %q:\n%s", w, out)
		}
	}
}

// TestServeCLITieredSmoke drives the serving CLI with a three-tier KV
// placement and checks the per-tier telemetry reaches the output.
func TestServeCLITieredSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the serve binary")
	}
	out := goTool(t, "run", "./cmd/cacheblend-serve",
		"-tiers", "gpu-hbm:20,cpu-ram:60,nvme-ssd:0", "-n", "200", "-rates", "0.5", "-v")
	for _, w := range []string{"placement=gpu-hbm:20,cpu-ram:60,nvme-ssd:0",
		"tier gpu-hbm", "tier cpu-ram", "tier nvme-ssd", "promotions="} {
		if !strings.Contains(out, w) {
			t.Fatalf("tiered serve CLI output missing %q:\n%s", w, out)
		}
	}
}
