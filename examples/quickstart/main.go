// Quickstart: fuse the pre-computed KV caches of two text chunks with
// CacheBlend and answer a question over them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/blend"
	"repro/internal/kvcache"
	"repro/internal/qamodel"
)

func main() {
	// The constructed QA model stands in for a served LLM.
	m, v := qamodel.Build()

	// Two knowledge chunks, written in the model's fact language:
	// "bob managed-by alice" and "paris based-in bob" (based-in(bob)=paris).
	// Chunks begin with a sink token (a period here; the datasets use
	// topic headers) so idle attention has a harmless target.
	alice, bob, paris := v.Entities[0], v.Entities[1], v.Entities[12]
	chunk1 := append([]int{v.Period}, v.Fact(bob, v.RelA[0], alice)...)
	chunk2 := append([]int{v.Period}, v.Fact(paris, v.RelB[0], bob)...)

	// Pre-compute each chunk's KV cache once (what a KV store would hold).
	var caches []*kvcache.Cache
	for _, c := range [][]int{chunk1, chunk2} {
		caches = append(caches, m.Prefill(c, 0, false).Cache)
	}

	// A two-hop question: based-in(managed-by(alice)) = ?
	query := v.QueryTokens(v.RelA[0], alice, v.RelB[0])

	// Fuse the cached chunks with selective KV recompute (15%).
	res := blend.Fuse(blend.Input{
		Model:        m,
		Chunks:       caches,
		ChunkTokens:  [][]int{chunk1, chunk2},
		SuffixTokens: query,
	}, blend.Options{
		Mode:           blend.ModeBlend,
		RecomputeRatio: 0.15,
		SelectionLayer: qamodel.SelectionLayer,
	})

	answer := qamodel.Answer(m, res.Cache, res.Hidden.Row(res.Hidden.Rows-1))
	fmt.Printf("question: %s\n", v.Text(query))
	fmt.Printf("answer:   %s\n", v.Name(answer))
	fmt.Printf("recomputed per layer: %v (of %d context tokens)\n",
		res.SelectedPerLayer, res.SuffixStart)
}
