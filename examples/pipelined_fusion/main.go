// Pipelined fusion: the execution engine of §5/§6 with real concurrency —
// a loader goroutine streams each layer's KV cache from (simulated)
// storage while the fusor selectively recomputes the previous layer.
// Compares wall time with and without pipelining on progressively slower
// devices.
//
//	go run ./examples/pipelined_fusion
package main

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/tensor"
)

func main() {
	cfg := model.Config{
		Name: "demo", Layers: 8, Heads: 8, KVHeads: 8, HeadDim: 32,
		FFNDim: 512, Vocab: 128, RotaryDims: 16, RopeBase: 10000,
		Norm: model.NormRMS, Eps: 1e-5,
	}
	m := model.NewRandom(cfg, 1)

	// Build a 3-chunk request.
	g := tensor.NewRNG(2)
	var req engine.Request
	for c := 0; c < 3; c++ {
		toks := make([]int, 48)
		for i := range toks {
			toks[i] = g.Intn(cfg.Vocab)
		}
		req.ChunkTokens = append(req.ChunkTokens, toks)
		req.Chunks = append(req.Chunks, m.Prefill(toks, 0, false).Cache)
	}
	req.SuffixTokens = []int{1, 2, 3, 4, 5, 6}

	var layerBytes int64
	for _, c := range req.Chunks {
		layerBytes += c.LayerBytes()
	}
	fmt.Printf("request: 3×48-token chunks, %d B of KV per layer, %d layers\n\n",
		layerBytes, cfg.Layers)
	fmt.Printf("%-22s %14s %14s %9s\n", "device (per-layer load)", "pipelined", "sequential", "saved")

	for _, loadMS := range []float64{2, 10, 25} {
		dev := device.Device{
			Name:   fmt.Sprintf("%4.0fms/layer", loadMS),
			ReadBW: float64(layerBytes) / (loadMS / 1000), WriteBW: 1e9,
		}
		run := func(pipelined bool) time.Duration {
			res, err := engine.Config{
				Model: m, Device: dev, RecomputeRatio: 0.15,
				Pipelined: pipelined, TimeScale: time.Second,
			}.Run(req)
			if err != nil {
				panic(err)
			}
			return res.Wall
		}
		pip := run(true)
		seq := run(false)
		fmt.Printf("%-22s %14v %14v %8.0f%%\n",
			dev.Name, pip.Round(time.Millisecond), seq.Round(time.Millisecond),
			100*(1-float64(pip)/float64(seq)))
	}
	fmt.Println("\n(when loading and recompute are comparable, pipelining hides one under the other)")
}
