// Attention matrix contrast — the paper's Figure 4 rendered in the
// terminal. For the same two-chunk input it prints the forward-attention
// rows of the query tokens under full KV recompute, full KV reuse and
// CacheBlend, showing the cross-chunk attention that reuse loses and
// selective recompute restores.
//
//	go run ./examples/attention_matrix
package main

import (
	"fmt"
	"strings"

	"repro/internal/blend"
	"repro/internal/kvcache"
	"repro/internal/qamodel"
)

// shade maps an attention weight to a density glyph.
func shade(w float32) byte {
	switch {
	case w >= 0.5:
		return '#'
	case w >= 0.2:
		return '+'
	case w >= 0.05:
		return '.'
	default:
		return ' '
	}
}

func main() {
	m, v := qamodel.Build()
	qent, bridge, ans := v.Entities[0], v.Entities[1], v.Entities[12]
	relA, relB := v.RelA[0], v.RelB[0]

	chunk1 := append([]int{v.Period}, append(v.Anchor(1, relB, bridge), v.Fact(bridge, relA, qent)...)...)
	chunk2 := append([]int{v.Period}, v.ValueHalf(ans, 1)...)
	chunks := [][]int{chunk1, chunk2}
	query := v.QueryTokens(relA, qent, relB)

	var caches []*kvcache.Cache
	for _, c := range chunks {
		caches = append(caches, m.Prefill(c, 0, false).Cache)
	}
	in := blend.Input{Model: m, Chunks: caches, ChunkTokens: chunks, SuffixTokens: query}

	show := func(title string, opts blend.Options) {
		opts.CollectAttention = true
		res := blend.Fuse(in, opts)
		ansTok := qamodel.Answer(m, res.Cache, res.Hidden.Row(res.Hidden.Rows-1))
		fmt.Printf("%s  →  answer %q\n", title, v.Name(ansTok))

		// The last layer's forward attention of the "?" row, averaged
		// over heads (the matrices Figure 4 contrasts).
		attn := res.Attn[len(res.Attn)-1]
		qRow := attn.Row(attn.Rows - 1)
		T := len(res.Tokens)
		heads := m.Cfg.Heads
		avg := make([]float32, T)
		for t := 0; t < T; t++ {
			for h := 0; h < heads; h++ {
				avg[t] += qRow[h*T+t] / float32(heads)
			}
		}
		var line strings.Builder
		for t := 0; t < res.SuffixStart; t++ {
			line.WriteByte(shade(avg[t]))
		}
		fmt.Printf("  '?' row:  [%s]\n", line.String())
		// Annotate the strongest context position.
		best, bw := -1, float32(0)
		for t := 0; t < res.SuffixStart; t++ {
			if avg[t] > bw {
				best, bw = t, avg[t]
			}
		}
		if best >= 0 {
			fmt.Printf("  strongest: position %d %q (weight %.2f)\n\n", best, v.Name(res.Tokens[best]), bw)
		}
	}

	fmt.Printf("context: %q ++ %q\n", v.Text(chunk1), v.Text(chunk2))
	fmt.Printf("query:   %q   (expected answer %q)\n\n", v.Text(query), v.Name(ans))
	fmt.Printf("chunk boundary after position %d\n\n", len(chunk1)-1)

	show("full KV recompute", blend.Options{Mode: blend.ModeFullRecompute})
	show("full KV reuse    ", blend.Options{Mode: blend.ModeFullReuse})
	show("cacheblend r=15% ", blend.Options{
		Mode: blend.ModeBlend, RecomputeRatio: 0.15, SelectionLayer: qamodel.SelectionLayer,
	})
	fmt.Println("legend: '#' ≥0.5   '+' ≥0.2   '.' ≥0.05 attention weight")
	fmt.Println("(under full reuse the hop-2 lookup cannot land on the un-joined record,")
	fmt.Println(" so the '?' row's mass sits on the wrong tokens; CacheBlend restores it)")
}
