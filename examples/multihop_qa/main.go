// Multihop QA: the paper's Figure 3 scenario made executable. A split
// fact spreads the answer across two chunks; full KV reuse loses the
// cross-chunk join and answers wrong, CacheBlend recovers it by
// recomputing the few high-KV-deviation tokens.
//
//	go run ./examples/multihop_qa
package main

import (
	"fmt"
	"sort"

	"repro/internal/blend"
	"repro/internal/kvcache"
	"repro/internal/qamodel"
)

func main() {
	m, v := qamodel.Build()
	alice, bob, paris := v.Entities[0], v.Entities[1], v.Entities[12]
	relA, relB := v.RelA[0], v.RelB[0]

	// Chunk 1: who manages alice, plus the anchor half of the answer fact.
	chunk1 := append([]int{v.Period}, append(v.Anchor(1, relB, bob), v.Fact(bob, relA, alice)...)...)
	// Chunk 2: the value half of the answer fact (in another document).
	chunk2 := append([]int{v.Period}, append(v.ValueHalf(paris, 1), v.Fact(v.Entities[3], v.RelA[1], v.Entities[4])...)...)
	chunks := [][]int{chunk1, chunk2}

	var caches []*kvcache.Cache
	for _, c := range chunks {
		caches = append(caches, m.Prefill(c, 0, false).Cache)
	}
	in := blend.Input{Model: m, Chunks: caches, ChunkTokens: chunks,
		SuffixTokens: v.QueryTokens(relA, alice, relB)}

	fmt.Printf("chunk 1: %s\n", v.Text(chunk1))
	fmt.Printf("chunk 2: %s\n", v.Text(chunk2))
	fmt.Printf("query:   %s   (expect: %s)\n\n", v.Text(in.SuffixTokens), v.Name(paris))

	ask := func(name string, opts blend.Options) *blend.Result {
		res := blend.Fuse(in, opts)
		ans := qamodel.Answer(m, res.Cache, res.Hidden.Row(res.Hidden.Rows-1))
		fmt.Printf("%-22s → %q\n", name, v.Name(ans))
		return res
	}
	ask("full KV recompute", blend.Options{Mode: blend.ModeFullRecompute})
	ask("full KV reuse", blend.Options{Mode: blend.ModeFullReuse})
	res := ask("cacheblend (r=15%)", blend.Options{
		Mode: blend.ModeBlend, RecomputeRatio: 0.15, SelectionLayer: qamodel.SelectionLayer})

	// Show where the KV deviation concentrated: the joining token.
	type td struct {
		pos int
		dev float64
	}
	var tds []td
	for j := 0; j < res.SuffixStart; j++ {
		tds = append(tds, td{j, res.DeviationByToken[j]})
	}
	sort.Slice(tds, func(a, b int) bool { return tds[a].dev > tds[b].dev })
	fmt.Println("\ntop KV-deviation tokens (the ones CacheBlend recomputes):")
	for _, x := range tds[:4] {
		fmt.Printf("  pos %2d %-14q dev %.2f\n", x.pos, v.Name(res.Tokens[x.pos]), x.dev)
	}
}
