// Storage tiering: the loading controller in action (§5.1, Figure 10).
// For each served model it reports which storage tiers can hide the
// quality-floor recompute behind loading, what recompute ratio each tier
// affords, and the controller's cheapest-viable plan.
//
//	go run ./examples/storage_tiering
package main

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/timing"
)

func main() {
	const L = 4096 // context length (tokens)

	for _, spec := range timing.Specs() {
		ctrl := controller.Controller{Spec: spec}
		fmt.Printf("%s — 4K-token context, KV cache %.0f MB, full prefill %.2fs\n",
			spec.Name, float64(spec.KVBytes(L))/1e6, spec.Prefill(L))
		fmt.Printf("  %-14s %14s %14s %12s %10s\n",
			"device", "load/layer", "afforded r", "15% free?", "$/GB/mo")
		// "15% free?" asks whether per-layer loading fully hides the
		// quality-floor recompute (Figure 10(a) direction); the plan picks
		// the cheapest device whose loading hides *under* the recompute
		// (Figure 10(b) direction).
		comp15 := spec.RecomputeLayer(0.15, L)
		for _, d := range device.Tiers() {
			load := spec.LoadLayer(L, d)
			hides := "no"
			if load >= comp15 {
				hides = "yes"
			}
			fmt.Printf("  %-14s %12.2fms %13.0f%% %12s %10.2f\n",
				d.Name, load*1000, ctrl.PickRatio(L, d)*100, hides, d.CostPerGBMonth)
		}
		plan := ctrl.PlanRequest(device.Tiers(), L)
		fmt.Printf("  controller plan: %s\n\n", plan)
	}
}
