// RAG pipeline: the full retrieval-augmented generation loop — generate a
// corpus, retrieve top-k chunks for a query, then answer it under every
// serving scheme and compare answers, quality and compute.
//
//	go run ./examples/rag_pipeline
package main

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/qamodel"
	"repro/internal/retrieval"
)

func main() {
	m, v := qamodel.Build()
	ev := baselines.NewEvaluator(m, v)

	// A small Musique-like corpus: each case carries its own chunk pool.
	cfg := dataset.MusiqueConfig()
	cfg.Cases = 8
	ds := dataset.Generate(v, cfg)

	fmt.Printf("dataset %s: %d cases, metric %s\n\n", ds.Name, len(ds.Cases), ds.Metric)

	schemes := baselines.Schemes()
	sums := map[baselines.Scheme]float64{}
	units := map[baselines.Scheme]int{}

	for ci, c := range ds.Cases {
		// Stage 1: retrieval.
		r := retrieval.NewRetriever(128, c.ChunkTexts)
		ids := r.TopK(c.QueryText, 5)
		var chunks [][]int
		for _, id := range ids {
			chunks = append(chunks, c.Chunks[id])
		}
		if ci == 0 {
			fmt.Printf("example query: %s\n", c.QueryText)
			fmt.Printf("retrieved chunks %v (relevant: %v), gold answer %q\n\n",
				ids, c.Relevant, c.Answer)
		}
		// Stage 2: answer under each scheme.
		for _, s := range schemes {
			run := ev.Answer(chunks, c.Query, s)
			sums[s] += metrics.F1(strings.Fields(run.Pred), strings.Fields(c.Answer))
			units[s] += run.ComputedTokenLayers
		}
	}

	fmt.Printf("%-16s %8s %16s\n", "scheme", "mean-F1", "token-layers")
	for _, s := range schemes {
		fmt.Printf("%-16s %8.2f %16d\n", s, sums[s]/float64(len(ds.Cases)), units[s])
	}
	fmt.Println("\n(cacheblend should match full-recompute quality at a fraction of the compute;")
	fmt.Println(" full-kv-reuse is cheapest but loses cross-chunk answers)")
}
