// Package repro's root benchmark harness: one benchmark per reproduced
// figure (each iteration regenerates a reduced-size version of the
// figure's table) plus micro-benchmarks of the core primitives and
// ablation benches for the design choices called out in DESIGN.md.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/baselines"
	"repro/internal/blend"
	"repro/internal/chunk"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/kvstore"
	"repro/internal/model"
	"repro/internal/qamodel"
	"repro/internal/retrieval"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/timing"
	"repro/internal/workload"
)

// ---- Figure regenerators ------------------------------------------------

func BenchmarkFig02QualityVsChunks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig02(3) == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig06AttentionDeviation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig06() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig07DeviationDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig07() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig08LayerCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig08() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig10Pipelining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig10() == nil || experiments.Fig10b() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig12QualityAndTTFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig12(3) == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig13RAGBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig13(3) == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig14ServingSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig14(300) == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig15Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig15() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig16RatioSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig16(2) == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig17StorageDevices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig17(3) == nil {
			b.Fatal("nil table")
		}
	}
}

// ---- Core-primitive micro-benchmarks -------------------------------------

// benchInput builds one fused RAG request against the constructed model.
func benchInput(b *testing.B) (blend.Input, *qamodel.Vocab) {
	b.Helper()
	m, v := qamodel.Build()
	cfg := dataset.MusiqueConfig()
	cfg.Cases = 1
	cfg.ChunksPerCase = 6
	cfg.FactsPerChunk = 6
	ds := dataset.Generate(v, cfg)
	c := ds.Cases[0]
	in := blend.Input{Model: m, SuffixTokens: c.Query}
	for _, ch := range c.Chunks {
		in.ChunkTokens = append(in.ChunkTokens, ch)
		in.Chunks = append(in.Chunks, m.Prefill(ch, 0, false).Cache)
	}
	return in, v
}

func BenchmarkFusorBlend(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blend.Fuse(in, blend.Options{
			Mode: blend.ModeBlend, RecomputeRatio: 0.15,
			SelectionLayer: qamodel.SelectionLayer,
		})
	}
}

func BenchmarkFusorFullRecompute(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blend.Fuse(in, blend.Options{Mode: blend.ModeFullRecompute})
	}
}

func BenchmarkFusorFullReuse(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blend.Fuse(in, blend.Options{Mode: blend.ModeFullReuse})
	}
}

func BenchmarkPrefill512(b *testing.B) {
	m := model.NewRandom(model.Mistral7BSim, 1)
	g := tensor.NewRNG(2)
	toks := make([]int, 512)
	for i := range toks {
		toks[i] = g.Intn(m.Cfg.Vocab)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Prefill(toks, 0, false)
	}
}

func BenchmarkKVCacheSerialise(b *testing.B) {
	m := model.NewRandom(model.Mistral7BSim, 1)
	c := m.Prefill(make([]int, 128), 0, false).Cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := c.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}

func BenchmarkKVStoreZipf(b *testing.B) {
	s := kvstore.New(device.NVMeSSD, 1<<30, kvstore.LRU)
	defer s.Close()
	g := tensor.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := chunk.Hash("bench", []int{sim.Zipf(g, 4096, 0.8)})
		if _, ok := s.Get(id); !ok {
			s.Put(id, kvstore.Bytes(1<<20)) //nolint:errcheck
		}
	}
}

func BenchmarkRetrievalTopK(b *testing.B) {
	_, v := qamodel.Build()
	cfg := dataset.MusiqueConfig()
	cfg.Cases = 1
	cfg.ChunksPerCase = 64
	ds := dataset.Generate(v, cfg)
	r := retrieval.NewRetriever(128, ds.Cases[0].ChunkTexts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.TopK(ds.Cases[0].QueryText, 6)
	}
}

func BenchmarkServingStep(b *testing.B) {
	cfg := serve.Config{
		Spec: timing.Mistral7B, Scheme: baselines.CacheBlend, Ratio: 0.15,
		Device: device.NVMeSSD, ChunkPool: 500, ChunksPerRequest: 6,
		ChunkTokens: 512, QueryTokens: 32, Skew: 0.8,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serve.Run(cfg, 0.5, 200, 50, int64(i))
	}
}

// BenchmarkServeReplicas sweeps the replica count of the concurrent
// serving runtime at a fixed overload, reporting the sustained
// completion rate — the throughput baseline future scaling PRs compare
// against.
func BenchmarkServeReplicas(b *testing.B) {
	for _, replicas := range []int{1, 2, 4, 8} {
		replicas := replicas
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			cfg := serve.Config{
				Spec: timing.Mistral7B, Scheme: baselines.CacheBlend, Ratio: 0.15,
				Device: device.NVMeSSD, Replicas: replicas, MaxBatch: 4,
				ChunkPool: 500, ChunksPerRequest: 6, ChunkTokens: 512,
				QueryTokens: 32, Skew: 0.8,
			}
			var tput float64
			for i := 0; i < b.N; i++ {
				res := serve.Run(cfg, 8*float64(replicas), 400, 100, 42)
				tput = res.Throughput
			}
			b.ReportMetric(tput, "req/s")
		})
	}
}

// BenchmarkServeTiered compares KV placement hierarchies at a fixed load
// and equal total capacity, reporting mean TTFT — the tiered-placement
// counterpart of BenchmarkServeReplicas.
func BenchmarkServeTiered(b *testing.B) {
	spec := timing.Mistral7B
	total := int64(250) * spec.KVBytes(512)
	stacks := []struct {
		name  string
		tiers []serve.TierConfig
	}{
		{"nvme-only", []serve.TierConfig{
			{Device: device.NVMeSSD, Capacity: total},
		}},
		{"ram+nvme", []serve.TierConfig{
			{Device: device.CPURAM, Capacity: total / 4},
			{Device: device.NVMeSSD, Capacity: total - total/4},
		}},
		{"hbm+ram+nvme", []serve.TierConfig{
			{Device: device.GPUHBM, Capacity: total / 8},
			{Device: device.CPURAM, Capacity: total / 4},
			{Device: device.NVMeSSD, Capacity: total - total/8 - total/4},
		}},
	}
	for _, stack := range stacks {
		stack := stack
		b.Run(stack.name, func(b *testing.B) {
			cfg := serve.Config{
				Spec: spec, Scheme: baselines.CacheBlend, Ratio: 0.15,
				Device: device.NVMeSSD, Tiers: stack.tiers,
				ChunkPool: 500, ChunksPerRequest: 6, ChunkTokens: 512,
				QueryTokens: 32, Skew: 0.9,
			}
			var ttft float64
			for i := 0; i < b.N; i++ {
				res := serve.Run(cfg, 0.5, 400, 100, 42)
				ttft = res.MeanTTFT
			}
			b.ReportMetric(ttft*1000, "ttft-ms")
		})
	}
}

// BenchmarkServeWorkloads runs the serving simulation under each arrival
// generator at equal mean rate, reporting p95 TTFT — the workload
// counterpart of BenchmarkServeReplicas/BenchmarkServeTiered.
func BenchmarkServeWorkloads(b *testing.B) {
	cfg := serve.Config{
		Spec: timing.Mistral7B, Scheme: baselines.CacheBlend, Ratio: 0.15,
		Device: device.NVMeSSD, ChunkPool: 500, ChunksPerRequest: 6,
		ChunkTokens: 512, QueryTokens: 32, Skew: 0.8,
	}
	chunks := workload.Chunks{Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest, Skew: cfg.Skew}
	const rate = 1.0
	loads := []struct {
		name string
		w    workload.Workload
	}{
		{"poisson", workload.Poisson{Rate: rate, Chunks: chunks}},
		{"bursty", workload.Bursty{Rate: rate, Burst: 8, Chunks: chunks}},
		{"diurnal", workload.Diurnal{Rate: rate, Amplitude: 0.8, Chunks: chunks}},
		{"tenants3", workload.TenantMix(3, rate, chunks, 100, workload.Decode{})},
	}
	for _, load := range loads {
		load := load
		b.Run(load.name, func(b *testing.B) {
			var p95 float64
			for i := 0; i < b.N; i++ {
				res, err := serve.RunWorkload(cfg, load.w, 400, 100, 42)
				if err != nil {
					b.Fatal(err)
				}
				p95 = res.P95TTFT
			}
			b.ReportMetric(p95*1000, "p95-ttft-ms")
		})
	}
}

// BenchmarkServeDecode runs the two-phase prefill+decode runtime across
// generation lengths, reporting mean TBT — the decode-phase counterpart
// of BenchmarkServeWorkloads. Longer generations mean many more simulated
// steps (and per-token KV store writes) per request, so this also tracks
// the simulator's own cost per generated token.
func BenchmarkServeDecode(b *testing.B) {
	cfg := serve.Config{
		Spec: timing.Mistral7B, Scheme: baselines.CacheBlend, Ratio: 0.15,
		Device: device.NVMeSSD, MaxBatch: 8, ChunkPool: 500, ChunksPerRequest: 6,
		ChunkTokens: 512, QueryTokens: 32, Skew: 0.8,
	}
	chunks := workload.Chunks{Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest, Skew: cfg.Skew}
	for _, mean := range []float64{16, 64, 256} {
		mean := mean
		b.Run(fmt.Sprintf("decode%d", int(mean)), func(b *testing.B) {
			w := workload.Poisson{Rate: 0.5, Chunks: chunks, Decode: workload.Decode{Mean: mean}}
			var tbt float64
			for i := 0; i < b.N; i++ {
				res, err := serve.RunWorkload(cfg, w, 300, 75, 42)
				if err != nil {
					b.Fatal(err)
				}
				tbt = res.MeanTBT
			}
			b.ReportMetric(tbt*1000, "tbt-ms")
		})
	}
}

// BenchmarkServeSched runs the decode-heavy bursty scenario under each
// scheduling policy, reporting p95 TBT — the policy counterpart of
// BenchmarkServeDecode. Chunked prefill runs many more (much shorter)
// steps per request, so this also tracks the budgeted scheduler's own
// simulation cost.
func BenchmarkServeSched(b *testing.B) {
	cfg := serve.Config{
		Spec: timing.Mistral7B, Scheme: baselines.CacheBlend, Ratio: 0.15,
		Device: device.NVMeSSD, MaxBatch: 8, ChunkPool: 500, ChunksPerRequest: 6,
		ChunkTokens: 512, QueryTokens: 32, Skew: 0.8,
	}
	w := workload.Bursty{Rate: 0.5, Burst: 8,
		Chunks: workload.Chunks{Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest, Skew: cfg.Skew},
		Decode: workload.Decode{Mean: 64}}
	for _, sched := range []string{serve.SchedFIFO, serve.SchedChunkedPrefill, serve.SchedDecodePriority} {
		sched := sched
		b.Run(sched, func(b *testing.B) {
			c := cfg
			c.Sched = sched
			var p95 float64
			for i := 0; i < b.N; i++ {
				res, err := serve.RunWorkload(c, w, 300, 75, 42)
				if err != nil {
					b.Fatal(err)
				}
				p95 = res.P95TBT
			}
			b.ReportMetric(p95*1000, "p95-tbt-ms")
		})
	}
}

// BenchmarkServePrefetch runs the tiered bursty scenario under each
// tier-prefetch policy, reporting tier-read stall — the loader
// counterpart of BenchmarkServeSched. The active policies run loader
// processes and an in-flight transfer table on top of the same schedule,
// so this also tracks the prefetch machinery's own simulation cost.
func BenchmarkServePrefetch(b *testing.B) {
	spec := timing.Mistral7B
	total := int64(60) * spec.KVBytes(512)
	cfg := serve.Config{
		Spec: spec, Scheme: baselines.CacheBlend, Ratio: 0.15,
		Replicas: 2, MaxBatch: 3, ChunkPool: 150, ChunksPerRequest: 6,
		ChunkTokens: 512, QueryTokens: 32, Skew: 0.9,
		Tiers: []serve.TierConfig{
			{Device: device.GPUHBM, Capacity: total / 6},
			{Device: device.CPURAM, Capacity: total / 3},
			{Device: device.NVMeSSD, Capacity: total - total/6 - total/3},
		},
	}
	w := workload.Bursty{Rate: 0.5, Burst: 24,
		Chunks: workload.Chunks{Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest,
			Skew: cfg.Skew, DriftPeriod: 60}}
	for _, policy := range []string{serve.PrefetchOff, serve.PrefetchOnEnqueue, serve.PrefetchPredictive} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			c := cfg
			c.PrefetchPolicy = policy
			var stall float64
			for i := 0; i < b.N; i++ {
				res, err := serve.RunWorkload(c, w, 300, 100, 42)
				if err != nil {
					b.Fatal(err)
				}
				stall = res.TierStallTime
			}
			b.ReportMetric(stall*1000, "tier-stall-ms")
		})
	}
}

func BenchmarkServeRouted(b *testing.B) {
	spec := timing.Mistral7B
	chunkBytes := spec.KVBytes(512)
	cfg := serve.Config{
		Spec: spec, Scheme: baselines.CacheBlend, Ratio: 0.15,
		Replicas: 4, MaxBatch: 4, ChunkTokens: 512, QueryTokens: 128,
		Tiers: []serve.TierConfig{
			{Device: device.GPUHBM, Capacity: 8 * chunkBytes},
			{Device: device.CPURAM, Capacity: 48 * chunkBytes},
			{Device: device.SlowSSD},
		},
	}
	mix := make([]workload.Workload, 4)
	for i := range mix {
		mix[i] = workload.Bursty{Rate: 2.0, Burst: 4,
			Chunks: workload.Chunks{Pool: 48, PerRequest: 6, Skew: 1.1, Offset: i * 48}}
	}
	w := workload.MultiTenant{Tenants: mix}
	for _, policy := range []string{serve.RouterShared, serve.RouterHash, serve.RouterAffinity} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			c := cfg
			c.Router = policy
			var ttft float64
			for i := 0; i < b.N; i++ {
				res, err := serve.RunWorkload(c, w, 300, 50, 42)
				if err != nil {
					b.Fatal(err)
				}
				ttft = res.MeanTTFT
			}
			b.ReportMetric(ttft*1000, "ttft-ms")
		})
	}
}

// BenchmarkServeFailover is the routed scenario under membership churn:
// one replica killed mid-run (its queues drain back through the router)
// and a cold replica joined later. The ~37 s stream puts both events in
// the measured window, so the number prices the kill drain, the ring
// surgery and the joined node's spin-up on top of routing itself.
func BenchmarkServeFailover(b *testing.B) {
	spec := timing.Mistral7B
	chunkBytes := spec.KVBytes(512)
	cfg := serve.Config{
		Spec: spec, Scheme: baselines.CacheBlend, Ratio: 0.15,
		Replicas: 4, MaxBatch: 4, ChunkTokens: 512, QueryTokens: 128,
		Tiers: []serve.TierConfig{
			{Device: device.GPUHBM, Capacity: 8 * chunkBytes},
			{Device: device.CPURAM, Capacity: 48 * chunkBytes},
			{Device: device.SlowSSD},
		},
		Events: []serve.MembershipEvent{{At: 15, Kill: 1}, {At: 26, Join: 1}},
	}
	mix := make([]workload.Workload, 4)
	for i := range mix {
		mix[i] = workload.Bursty{Rate: 2.0, Burst: 4,
			Chunks: workload.Chunks{Pool: 48, PerRequest: 6, Skew: 1.1, Offset: i * 48}}
	}
	w := workload.MultiTenant{Tenants: mix}
	for _, policy := range []string{serve.RouterShared, serve.RouterHash, serve.RouterAffinity} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			c := cfg
			c.Router = policy
			var recovery float64
			for i := 0; i < b.N; i++ {
				res, err := serve.RunWorkload(c, w, 300, 50, 42)
				if err != nil {
					b.Fatal(err)
				}
				recovery = res.RecoveryTime
			}
			b.ReportMetric(recovery, "recovery-s")
		})
	}
}

// BenchmarkServeHotPath is the macro allocation benchmark: one iteration
// pushes 100k requests (with a short decode tail each, so the per-token
// store-update path is on the clock too) through the full serving
// runtime on a single shared store. At this scale the harness cost is
// noise and ns/op tracks the simulator's per-request hot path — arrival,
// service-time lookup, batch stepping, per-token KV writes, retirement —
// which is exactly what the allocation work targets; allocs/op here is
// the whole-run figure the CI gate watches. The sim-req/s metric is the
// interactive-speed headline: simulated requests per wall-clock second.
func BenchmarkServeHotPath(b *testing.B) {
	const requests = 100_000
	cfg := serve.Config{
		Spec: timing.Mistral7B, Scheme: baselines.CacheBlend, Ratio: 0.15,
		Device: device.NVMeSSD, MaxBatch: 8, ChunkPool: 1500, ChunksPerRequest: 6,
		ChunkTokens: 512, QueryTokens: 32, Skew: 0.8,
	}
	chunks := workload.Chunks{Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest, Skew: cfg.Skew}
	w := workload.Poisson{Rate: 2.0, Chunks: chunks, Decode: workload.Decode{Mean: 4}}
	b.ReportAllocs()
	var tput float64
	for i := 0; i < b.N; i++ {
		res, err := serve.RunWorkload(cfg, w, requests, requests/4, 42)
		if err != nil {
			b.Fatal(err)
		}
		tput = res.Throughput
	}
	_ = tput
	b.ReportMetric(float64(requests)*float64(b.N)/b.Elapsed().Seconds(), "sim-req/s")
}

// ---- Ablation benches (DESIGN.md design-choice list) ---------------------

func BenchmarkAblationGradualFilterOn(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blend.Fuse(in, blend.Options{
			Mode: blend.ModeBlend, RecomputeRatio: 0.15,
			SelectionLayer: qamodel.SelectionLayer,
		})
	}
}

func BenchmarkAblationGradualFilterOff(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blend.Fuse(in, blend.Options{
			Mode: blend.ModeBlend, RecomputeRatio: 0.15,
			SelectionLayer: qamodel.SelectionLayer, DisableGradualFilter: true,
		})
	}
}

func BenchmarkAblationRandomSelection(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blend.Fuse(in, blend.Options{
			Mode: blend.ModeBlend, RecomputeRatio: 0.15,
			SelectionLayer:  qamodel.SelectionLayer,
			RandomSelection: true, RandomSeed: int64(i),
		})
	}
}

func BenchmarkAblationNoReposition(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blend.Fuse(in, blend.Options{Mode: blend.ModeFullReuse, DisableReposition: true})
	}
}

func BenchmarkAblationEvictionLRU(b *testing.B) {
	benchEviction(b, kvstore.LRU)
}

func BenchmarkAblationEvictionFIFO(b *testing.B) {
	benchEviction(b, kvstore.FIFO)
}

func benchEviction(b *testing.B, p kvstore.Policy) {
	b.Helper()
	s := kvstore.New(device.NVMeSSD, 64<<20, p)
	defer s.Close()
	g := tensor.NewRNG(7)
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := chunk.Hash("bench", []int{sim.Zipf(g, 1024, 0.9)})
		if _, ok := s.Get(id); ok {
			hits++
		} else {
			s.Put(id, kvstore.Bytes(1<<20)) //nolint:errcheck
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "hit-rate")
}

func BenchmarkAblationPipeliningOn(b *testing.B) {
	spec := timing.Yi34B
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += spec.TTFT(0.15, 4096, device.NVMeSSD, true)
	}
	_ = sink
}

func BenchmarkAblationPipeliningOff(b *testing.B) {
	spec := timing.Yi34B
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += spec.TTFT(0.15, 4096, device.NVMeSSD, false)
	}
	_ = sink
}

func BenchmarkEnginePipelined(b *testing.B) {
	benchEngine(b, true)
}

func BenchmarkEngineSequential(b *testing.B) {
	benchEngine(b, false)
}

func benchEngine(b *testing.B, pipelined bool) {
	b.Helper()
	m, v := qamodel.Build()
	in, _ := benchInput(b)
	_ = v
	req := engine.Request{
		Chunks: in.Chunks, ChunkTokens: in.ChunkTokens, SuffixTokens: in.SuffixTokens,
	}
	cfg := engine.Config{
		Model: m, Device: device.NVMeSSD, RecomputeRatio: 0.15,
		SelectionLayer: qamodel.SelectionLayer, Pipelined: pipelined,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Run(req); err != nil {
			b.Fatal(err)
		}
	}
}
