// Command cacheblend regenerates the paper's evaluation figures as tables.
//
// Usage:
//
//	cacheblend -list                 # list reproducible figures
//	cacheblend -fig 12               # run one figure
//	cacheblend -fig all              # run everything
//	cacheblend -fig 12 -cases 50     # bigger quality sample
//	cacheblend -fig 14 -requests 3000
//	cacheblend -fig 7 -csv           # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure id to run (2,6,7,8,10,12,13,14,15,16,17,burst or 'all')")
		list     = flag.Bool("list", false, "list reproducible figures")
		cases    = flag.Int("cases", 25, "max dataset cases per quality experiment (0 = preset size)")
		requests = flag.Int("requests", 1500, "requests per serving-simulation point")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel = flag.Int("parallel", 0, "max simulation cells running concurrently (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "cacheblend: -parallel %d: must be ≥ 0\n", *parallel)
		os.Exit(2)
	}
	experiments.MaxParallel = *parallel

	if *list || *fig == "" {
		fmt.Println("reproducible figures:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-3s %s\n", e.ID, e.Desc)
		}
		if *fig == "" {
			fmt.Println("\nrun one with: cacheblend -fig <id>   (or -fig all)")
		}
		return
	}

	opts := experiments.RunOpts{MaxCases: *cases, Requests: *requests}
	var entries []experiments.Entry
	if *fig == "all" {
		entries = experiments.All()
	} else {
		e, ok := experiments.ByID(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "cacheblend: unknown figure %q (use -list)\n", *fig)
			os.Exit(2)
		}
		entries = []experiments.Entry{e}
	}

	for _, e := range entries {
		start := time.Now()
		tables := e.Run(opts)
		for _, t := range tables {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Print(t.Format())
			}
			fmt.Println()
		}
		fmt.Printf("(figure %s finished in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
