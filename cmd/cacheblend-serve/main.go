// Command cacheblend-serve runs the discrete-event serving simulation for
// one configuration and prints a TTFT/throughput profile across request
// rates — an interactive version of the Figure 14 experiment, extended
// with workload generators and trace record/replay.
//
// Usage:
//
//	cacheblend-serve -model Mistral-7B -scheme cacheblend -rates 0.2,0.5,1,2
//	cacheblend-serve -model Yi-34B -scheme prefix-caching -capacity 64
//	cacheblend-serve -replicas 4 -batch 8 -shards 16
//	cacheblend-serve -tiers gpu-hbm:8,cpu-ram:64,nvme-ssd:0 -v
//	cacheblend-serve -workload bursty -burst 8 -rates 1
//	cacheblend-serve -tenants 3 -rates 1 -v
//	cacheblend-serve -decode 64 -batch 8 -rates 0.5 -v
//	cacheblend-serve -decode 32 -decode-dist fixed -rates 1
//	cacheblend-serve -sched chunked-prefill -prefill-budget 128 -decode 64 -batch 8 -rates 0.5 -v
//	cacheblend-serve -sched decode-priority -decode 64 -batch 8 -rates 0.5 -v
//	cacheblend-serve -tiers gpu-hbm:8,cpu-ram:24,nvme-ssd:0 -prefetch predictive -workload bursty -burst 24 -rates 0.5 -v
//	cacheblend-serve -tiers gpu-hbm:8,cpu-ram:24,nvme-ssd:0 -prefetch on-enqueue -prefetch-bw 0.5 -rates 0.5
//	cacheblend-serve -router affinity -replicas 4 -tiers gpu-hbm:8,cpu-ram:48,slow-ssd:0 -tenants 4 -rates 8 -v
//	cacheblend-serve -router affinity -replicas 4 -tiers gpu-hbm:8,cpu-ram:48,slow-ssd:0 -tenants 4 -rates 16 -kill 15:1 -join 26:1 -v
//	cacheblend-serve -workload bursty -rates 1 -record run.jsonl
//	cacheblend-serve -trace run.jsonl     # bit-identical replay
//	cacheblend-serve -closed-loop 6 -tenants 3 -think 2 -decode 32 -batch 8 -v
//	cacheblend-serve -closed-loop 12 -tenants 3 -sched slo -slo-ttft 2 -slo-tbt 0.05 -decode 32 -batch 8 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/timing"
	"repro/internal/workload"
)

func main() {
	var (
		modelName = flag.String("model", "Mistral-7B", "served model (Mistral-7B, Yi-34B, Llama-70B)")
		scheme    = flag.String("scheme", "cacheblend", "serving scheme (cacheblend, full-recompute, prefix-caching, full-kv-reuse)")
		ratesCSV  = flag.String("rates", "", "comma-separated request rates (req/s); default spans the model's capacity")
		devName   = flag.String("device", "nvme-ssd", "KV storage device")
		ratio     = flag.Float64("ratio", 0.15, "CacheBlend recompute ratio")
		capacity  = flag.Int("capacity", 0, "store capacity in contexts (0 = unbounded)")
		tiersSpec = flag.String("tiers", "", "tiered KV placement as device:contexts pairs, fastest first, e.g. gpu-hbm:8,cpu-ram:64,nvme-ssd:0 (0 = unbounded, bottom only); overrides -device/-capacity")
		pool      = flag.Int("pool", 1500, "distinct chunks in the corpus")
		chunks    = flag.Int("chunks", 6, "chunks per request")
		chunkTok  = flag.Int("chunk-tokens", 512, "tokens per chunk")
		replicas  = flag.Int("replicas", 1, "model replicas pulling from the shared queue")
		batch     = flag.Int("batch", 1, "continuous-batching cap per replica step")
		sched     = flag.String("sched", "", "scheduling policy (fifo, chunked-prefill, decode-priority, slo); empty = legacy FIFO without scheduling telemetry")
		budget    = flag.Int("prefill-budget", 0, "chunked-prefill per-step prefill token budget (0 = default 256; requires -sched chunked-prefill or slo)")
		sloTTFT   = flag.Float64("slo-ttft", 0, "TTFT SLO target in seconds (requires -sched; the slo policy schedules against it, any policy reports attainment)")
		sloTBT    = flag.Float64("slo-tbt", 0, "mean-TBT SLO target in seconds (requires -sched)")
		prefetch  = flag.String("prefetch", "", "tier prefetch policy (off, on-enqueue, predictive); empty = legacy synchronous loading without prefetch telemetry")
		router    = flag.String("router", "", "replica-routing policy (shared, hash, affinity); empty = legacy shared store without router telemetry; hash/affinity give each replica its own tier stack")
		prefBW    = flag.Float64("prefetch-bw", 0, "loader bandwidth budget as a fraction of the source tier's read bandwidth in (0,1] (0 = full bandwidth; requires an active -prefetch policy)")
		shards    = flag.Int("shards", 0, "KV store shards (0 = default)")
		killSpec  = flag.String("kill", "", "membership kills as time:replica pairs, e.g. 15:1,40:2 (times in simulated seconds)")
		joinSpec  = flag.String("join", "", "membership joins as time:count pairs, e.g. 26:1 (cold replicas added at the time)")
		n         = flag.Int("n", 1500, "requests per rate point")
		seed      = flag.Int64("seed", 42, "workload seed")
		verbose   = flag.Bool("v", false, "print per-replica utilization, batch histograms and per-tenant stats")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation runs to this file")
		memProf   = flag.String("memprofile", "", "write a pprof allocation profile (after the runs) to this file")

		workloadName = flag.String("workload", "poisson", "arrival generator (poisson, bursty, diurnal)")
		burst        = flag.Float64("burst", 8, "bursty workload's peak-to-mean rate factor")
		amplitude    = flag.Float64("amplitude", 0.8, "diurnal workload's relative rate swing in [0,1]")
		tenants      = flag.Int("tenants", 1, "tenant count: >1 runs a multi-tenant Poisson mix (disjoint corpus slices, fanned-out skew, drifting popularity)")
		decodeMean   = flag.Float64("decode", 0, "mean generation length in output tokens (0 = prefill-only legacy behaviour)")
		decodeDist   = flag.String("decode-dist", "geometric", "generation-length distribution: geometric or fixed")
		tracePath    = flag.String("trace", "", "replay a recorded JSONL trace instead of generating a workload")
		recordPath   = flag.String("record", "", "record the generated request stream to a JSONL trace (requires exactly one rate)")
		closedLoop   = flag.Int("closed-loop", 0, "closed-loop clients per tenant (0 = open-loop arrivals); each client waits for its completion plus a think-time draw before the next request, so the realised rate is an output and -rates does not apply")
		think        = flag.Float64("think", 2, "closed-loop mean think time in seconds between a client's completion and its next request (requires -closed-loop)")
	)
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *tracePath != "" && set["workload"] {
		fatal(fmt.Errorf("-trace replays a recorded stream and cannot be combined with -workload %s: drop one of the two flags", *workloadName))
	}
	if *tracePath != "" && (set["decode"] || set["decode-dist"]) {
		fatal(fmt.Errorf("-trace replays a recorded stream (its decode budgets included) and cannot be combined with -decode/-decode-dist"))
	}
	if *closedLoop > 0 {
		for _, conflict := range []string{"rates", "workload", "burst", "amplitude", "record", "trace"} {
			if set[conflict] {
				fatal(fmt.Errorf("-closed-loop drives arrivals from completions and cannot be combined with -%s", conflict))
			}
		}
	} else if set["think"] {
		fatal(fmt.Errorf("-think is the closed-loop think time and needs -closed-loop"))
	}
	// Profiling hooks for the performance work: the CPU profile brackets
	// everything from here (setup cost is noise next to the runs), the
	// allocation profile is written on the way out after a final GC so it
	// reflects total allocations, not the live heap.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}

	dec := workload.Decode{Mean: *decodeMean}
	switch *decodeDist {
	case "geometric":
	case "fixed":
		dec.Deterministic = true
	default:
		fatal(fmt.Errorf("unknown -decode-dist %q (want geometric or fixed)", *decodeDist))
	}

	spec, err := timing.SpecByName(*modelName)
	if err != nil {
		fatal(err)
	}
	dev, err := device.ByName(*devName)
	if err != nil {
		fatal(err)
	}
	cfg := serve.Config{
		Spec:             spec,
		Scheme:           baselines.Scheme(*scheme),
		Ratio:            *ratio,
		Device:           dev,
		StoreShards:      *shards,
		Replicas:         *replicas,
		MaxBatch:         *batch,
		Sched:            *sched,
		PrefillBudget:    *budget,
		SLOTTFT:          *sloTTFT,
		SLOTBT:           *sloTBT,
		PrefetchPolicy:   *prefetch,
		PrefetchBW:       *prefBW,
		Router:           *router,
		ChunkPool:        *pool,
		ChunksPerRequest: *chunks,
		ChunkTokens:      *chunkTok,
		QueryTokens:      32,
		Skew:             0.8,
	}
	if *killSpec != "" || *joinSpec != "" {
		events, err := parseEvents(*killSpec, *joinSpec)
		if err != nil {
			fatal(err)
		}
		cfg.Events = events
	}
	if *capacity > 0 {
		cfg.StoreCapacity = int64(*capacity) * spec.KVBytes(*chunks**chunkTok)
	}
	if *tiersSpec != "" {
		tiers, err := parseTiers(*tiersSpec, spec.KVBytes(*chunks**chunkTok))
		if err != nil {
			fatal(err)
		}
		cfg.Tiers = tiers
	}

	placement := dev.Name
	if len(cfg.Tiers) > 0 {
		placement = *tiersSpec
	}
	schedName := *sched
	if schedName == "" {
		schedName = "fifo" // the legacy default (scheduling telemetry off)
	}

	// Trace replay: the recorded stream fixes arrivals, tenants and chunk
	// ids, so rates/workload flags don't apply and the run reproduces the
	// recording run's Result field for field.
	if *tracePath != "" {
		tr, err := workload.LoadFile(*tracePath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("model=%s scheme=%s placement=%s workload=%s requests=%d replicas=%d batch-cap=%d sched=%s\n",
			spec.Name, cfg.Scheme, placement, tr.Name(), len(tr.Reqs), *replicas, *batch, schedName)
		res, err := serve.RunWorkload(cfg, tr, len(tr.Reqs), len(tr.Reqs)/3, *seed)
		if err != nil {
			fatal(err)
		}
		printResult(res, *verbose)
		return
	}

	// Closed-loop run: the client pool is the load knob, so there is no
	// rates loop — one run, with the realised arrival rate in the Result.
	if *closedLoop > 0 {
		w := workload.ClosedLoop{
			Tenants: *tenants,
			Clients: *closedLoop,
			Think:   *think,
			Chunks:  workload.Chunks{Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest, Skew: cfg.Skew},
			Decode:  dec,
		}
		fmt.Printf("model=%s scheme=%s placement=%s workload=%s tenants=%d decode=%g pool=%d chunks=%d×%d tokens replicas=%d batch-cap=%d sched=%s\n",
			spec.Name, cfg.Scheme, placement, w.Name(), *tenants, *decodeMean, *pool, *chunks, *chunkTok, *replicas, *batch, schedName)
		res, err := serve.RunWorkload(cfg, w, *n, *n/3, *seed)
		if err != nil {
			fatal(err)
		}
		printResult(res, *verbose)
		return
	}

	var rates []float64
	if *ratesCSV == "" {
		cap0 := float64(*replicas) / spec.FullPrefillTTFT(*chunks**chunkTok+32)
		rates = []float64{cap0 * 0.25, cap0 * 0.5, cap0, cap0 * 2, cap0 * 4}
	} else {
		for _, part := range strings.Split(*ratesCSV, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatal(fmt.Errorf("bad rate %q: %v", part, err))
			}
			rates = append(rates, r)
		}
	}
	if *recordPath != "" && len(rates) != 1 {
		fatal(fmt.Errorf("-record needs exactly one rate, got %d", len(rates)))
	}

	fmt.Printf("model=%s scheme=%s placement=%s workload=%s tenants=%d decode=%g pool=%d chunks=%d×%d tokens replicas=%d batch-cap=%d sched=%s\n",
		spec.Name, cfg.Scheme, placement, *workloadName, *tenants, *decodeMean, *pool, *chunks, *chunkTok, *replicas, *batch, schedName)
	for _, rate := range rates {
		w, err := buildWorkload(*workloadName, rate, *burst, *amplitude, *tenants, dec, cfg)
		if err != nil {
			fatal(err)
		}
		if *recordPath != "" {
			// Validate before generating so broken flags fail with the
			// generator's error instead of an orphaned, half-broken trace.
			if err := w.Validate(); err != nil {
				fatal(err)
			}
			reqs := w.Generate(*n, *seed)
			if err := workload.RecordFile(*recordPath, reqs); err != nil {
				fatal(err)
			}
			fmt.Printf("recorded %d requests to %s\n", len(reqs), *recordPath)
			// Run the recorded stream itself — same Result, no regeneration.
			w = workload.Trace{Label: w.Name(), Reqs: reqs}
		}
		res, err := serve.RunWorkload(cfg, w, *n, *n/3, *seed)
		if err != nil {
			fatal(err)
		}
		printResult(res, *verbose)
	}
}

// buildWorkload constructs the request-stream generator the flags ask
// for. Multi-tenant mixes are Poisson per tenant (disjoint corpus slices,
// fanned-out skew and decode means, drifting popularity on odd tenants).
func buildWorkload(name string, rate, burst, amplitude float64, tenants int, dec workload.Decode, cfg serve.Config) (workload.Workload, error) {
	chunks := workload.Chunks{Pool: cfg.ChunkPool, PerRequest: cfg.ChunksPerRequest, Skew: cfg.Skew}
	if tenants > 1 {
		if name != "poisson" {
			return nil, fmt.Errorf("-tenants %d implies -workload poisson (got %q)", tenants, name)
		}
		// Drift period: a few popularity rotations across a typical run.
		return workload.TenantMix(tenants, rate, chunks, 100/rate, dec), nil
	}
	switch name {
	case "poisson":
		return workload.Poisson{Rate: rate, Chunks: chunks, Decode: dec}, nil
	case "bursty":
		return workload.Bursty{Rate: rate, Burst: burst, Chunks: chunks, Decode: dec}, nil
	case "diurnal":
		return workload.Diurnal{Rate: rate, Amplitude: amplitude, Chunks: chunks, Decode: dec}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (want poisson, bursty or diurnal)", name)
	}
}

// printResult renders one run, with per-tier and per-tenant detail when
// verbose.
func printResult(res serve.Result, verbose bool) {
	fmt.Println(res)
	if !verbose {
		return
	}
	fmt.Printf("  replica-util=%s batch-sizes=%s\n",
		fmtUtils(res.ReplicaUtil), metrics.FormatCounts(res.BatchSizes))
	for _, tu := range res.Tiers {
		fmt.Printf("  tier %-12s hits=%d (%.0f%%) promotions=%d demotions=%d resident=%.1fGB\n",
			tu.Device, tu.Hits, tu.HitRate*100, tu.Promotions, tu.Demotions,
			float64(tu.BytesResident)/1e9)
	}
	for _, tu := range res.Tenants {
		line := fmt.Sprintf("  tenant %-3d requests=%d mean_ttft=%.3fs p95=%.3fs hit=%.0f%% lookups=%d",
			tu.Tenant, tu.Requests, tu.MeanTTFT, tu.P95TTFT, tu.HitRate*100, tu.Lookups)
		if tu.OutputTokens > 0 {
			line += fmt.Sprintf(" tbt=%.3fs e2e=%.3fs tokens=%d", tu.MeanTBT, tu.MeanE2E, tu.OutputTokens)
		}
		if tu.SLOAttainment > 0 {
			line += fmt.Sprintf(" slo=%.0f%%", tu.SLOAttainment*100)
		}
		fmt.Println(line)
	}
	if res.OutputTokens > 0 {
		fmt.Printf("  steps prefill=%.0f%% decode=%.0f%% mixed=%.0f%%\n",
			res.PrefillStepShare*100, res.DecodeStepShare*100, res.MixedStepShare*100)
	}
	if res.StallTime > 0 || res.MeanPrefillDelay > 0 {
		fmt.Printf("  sched stall=%.1fs prefill-delay=%.3fs p95=%.3fs\n",
			res.StallTime, res.MeanPrefillDelay, res.P95PrefillDelay)
	}
	if res.SLOAttainment > 0 || res.SLOViolations > 0 {
		fmt.Printf("  slo attain=%.1f%% ttft-attain=%.1f%% tbt-attain=%.1f%% goodput=%.3f req/s violations=%d\n",
			res.SLOAttainment*100, res.SLOTTFTAttainment*100, res.SLOTBTAttainment*100,
			res.Goodput, res.SLOViolations)
	}
	if res.Router != "" {
		line := fmt.Sprintf("  router %-8s load-skew=%.2f replica-hits=%s replica-reqs=%v",
			res.Router, res.LoadSkew, fmtUtils(res.ReplicaHitRates), res.ReplicaRequests)
		if res.DuplicationBytes > 0 || res.QueueSkew > 0 {
			line += fmt.Sprintf(" queue-skew=%.2f dup=%.1fGB",
				res.QueueSkew, float64(res.DuplicationBytes)/1e9)
		}
		fmt.Println(line)
	}
	if res.Failovers > 0 || res.ReroutedRequests > 0 {
		fmt.Printf("  failover kills=%d rerouted=%d rewarm-stall=%.2fs recovery=%.2fs\n",
			res.Failovers, res.ReroutedRequests, res.ReWarmStall, res.RecoveryTime)
	}
	if res.HBMHitRate > 0 || res.TierStallTime > 0 {
		line := fmt.Sprintf("  prefetch tier-stall=%.2fs hbm-hit=%.0f%%",
			res.TierStallTime, res.HBMHitRate*100)
		if res.PrefetchIssued > 0 {
			line += fmt.Sprintf(" issued=%d hits=%d accuracy=%.0f%% wasted=%.1fGB",
				res.PrefetchIssued, res.PrefetchHits,
				float64(res.PrefetchHits)/float64(res.PrefetchIssued)*100,
				float64(res.PrefetchWastedBytes)/1e9)
		}
		fmt.Println(line)
	}
}

// parseEvents turns the -kill ("time:replica,...") and -join
// ("time:count,...") specs into one membership schedule sorted by time
// (kills before joins on ties, matching the flags' reading order). The
// schedule itself is validated by Config.Validate.
func parseEvents(killSpec, joinSpec string) ([]serve.MembershipEvent, error) {
	var events []serve.MembershipEvent
	parse := func(spec, what string) ([][2]float64, error) {
		var out [][2]float64
		for _, part := range strings.Split(spec, ",") {
			ts, vs, ok := strings.Cut(strings.TrimSpace(part), ":")
			if !ok {
				return nil, fmt.Errorf("bad %s event %q: want time:%s", what, part, what)
			}
			at, err := strconv.ParseFloat(strings.TrimSpace(ts), 64)
			if err != nil {
				return nil, fmt.Errorf("bad %s time %q: %v", what, ts, err)
			}
			v, err := strconv.Atoi(strings.TrimSpace(vs))
			if err != nil {
				return nil, fmt.Errorf("bad %s value %q: %v", what, vs, err)
			}
			out = append(out, [2]float64{at, float64(v)})
		}
		return out, nil
	}
	if killSpec != "" {
		kills, err := parse(killSpec, "replica")
		if err != nil {
			return nil, err
		}
		for _, k := range kills {
			events = append(events, serve.MembershipEvent{At: k[0], Kill: int(k[1])})
		}
	}
	if joinSpec != "" {
		joins, err := parse(joinSpec, "count")
		if err != nil {
			return nil, err
		}
		for _, j := range joins {
			events = append(events, serve.MembershipEvent{At: j[0], Join: int(j[1])})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

// parseTiers turns "gpu-hbm:8,cpu-ram:64,nvme-ssd:0" into tier configs,
// with capacities counted in contexts of ctxBytes (0 = unbounded).
func parseTiers(s string, ctxBytes int64) ([]serve.TierConfig, error) {
	var tiers []serve.TierConfig
	for _, part := range strings.Split(s, ",") {
		name, contexts, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad tier %q: want device:contexts", part)
		}
		dev, err := device.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		nCtx, err := strconv.Atoi(strings.TrimSpace(contexts))
		if err != nil || nCtx < 0 {
			return nil, fmt.Errorf("bad tier capacity %q: want a context count ≥ 0", contexts)
		}
		tiers = append(tiers, serve.TierConfig{Device: dev, Capacity: int64(nCtx) * ctxBytes})
	}
	for i, tc := range tiers[:len(tiers)-1] {
		if tc.Capacity == 0 {
			return nil, fmt.Errorf("tier %d (%s): capacity 0 (unbounded) is only allowed on the bottom tier", i, tc.Device.Name)
		}
	}
	return tiers, nil
}

func fmtUtils(utils []float64) string {
	parts := make([]string, len(utils))
	for i, u := range utils {
		parts[i] = fmt.Sprintf("%.0f%%", u*100)
	}
	return strings.Join(parts, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cacheblend-serve:", err)
	os.Exit(1)
}
