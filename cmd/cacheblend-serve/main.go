// Command cacheblend-serve runs the discrete-event serving simulation for
// one configuration and prints a TTFT/throughput profile across request
// rates — an interactive version of the Figure 14 experiment.
//
// Usage:
//
//	cacheblend-serve -model Mistral-7B -scheme cacheblend -rates 0.2,0.5,1,2
//	cacheblend-serve -model Yi-34B -scheme prefix-caching -capacity 64
//	cacheblend-serve -replicas 4 -batch 8 -shards 16
//	cacheblend-serve -tiers gpu-hbm:8,cpu-ram:64,nvme-ssd:0 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/baselines"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/timing"
)

func main() {
	var (
		modelName = flag.String("model", "Mistral-7B", "served model (Mistral-7B, Yi-34B, Llama-70B)")
		scheme    = flag.String("scheme", "cacheblend", "serving scheme (cacheblend, full-recompute, prefix-caching, full-kv-reuse)")
		ratesCSV  = flag.String("rates", "", "comma-separated request rates (req/s); default spans the model's capacity")
		devName   = flag.String("device", "nvme-ssd", "KV storage device")
		ratio     = flag.Float64("ratio", 0.15, "CacheBlend recompute ratio")
		capacity  = flag.Int("capacity", 0, "store capacity in contexts (0 = unbounded)")
		tiersSpec = flag.String("tiers", "", "tiered KV placement as device:contexts pairs, fastest first, e.g. gpu-hbm:8,cpu-ram:64,nvme-ssd:0 (0 = unbounded, bottom only); overrides -device/-capacity")
		pool      = flag.Int("pool", 1500, "distinct chunks in the corpus")
		chunks    = flag.Int("chunks", 6, "chunks per request")
		chunkTok  = flag.Int("chunk-tokens", 512, "tokens per chunk")
		replicas  = flag.Int("replicas", 1, "model replicas pulling from the shared queue")
		batch     = flag.Int("batch", 1, "continuous-batching cap per replica step")
		shards    = flag.Int("shards", 0, "KV store shards (0 = default)")
		n         = flag.Int("n", 1500, "requests per rate point")
		seed      = flag.Int64("seed", 42, "workload seed")
		verbose   = flag.Bool("v", false, "print per-replica utilization and batch histograms")
	)
	flag.Parse()

	spec, err := timing.SpecByName(*modelName)
	if err != nil {
		fatal(err)
	}
	dev, err := device.ByName(*devName)
	if err != nil {
		fatal(err)
	}
	cfg := serve.Config{
		Spec:             spec,
		Scheme:           baselines.Scheme(*scheme),
		Ratio:            *ratio,
		Device:           dev,
		StoreShards:      *shards,
		Replicas:         *replicas,
		MaxBatch:         *batch,
		ChunkPool:        *pool,
		ChunksPerRequest: *chunks,
		ChunkTokens:      *chunkTok,
		QueryTokens:      32,
		Skew:             0.8,
	}
	if *capacity > 0 {
		cfg.StoreCapacity = int64(*capacity) * spec.KVBytes(*chunks**chunkTok)
	}
	if *tiersSpec != "" {
		tiers, err := parseTiers(*tiersSpec, spec.KVBytes(*chunks**chunkTok))
		if err != nil {
			fatal(err)
		}
		cfg.Tiers = tiers
	}

	var rates []float64
	if *ratesCSV == "" {
		cap0 := float64(*replicas) / spec.FullPrefillTTFT(*chunks**chunkTok+32)
		rates = []float64{cap0 * 0.25, cap0 * 0.5, cap0, cap0 * 2, cap0 * 4}
	} else {
		for _, part := range strings.Split(*ratesCSV, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatal(fmt.Errorf("bad rate %q: %v", part, err))
			}
			rates = append(rates, r)
		}
	}

	placement := dev.Name
	if len(cfg.Tiers) > 0 {
		placement = *tiersSpec
	}
	fmt.Printf("model=%s scheme=%s placement=%s pool=%d chunks=%d×%d tokens replicas=%d batch-cap=%d\n",
		spec.Name, cfg.Scheme, placement, *pool, *chunks, *chunkTok, *replicas, *batch)
	for _, res := range serve.RateSweep(cfg, rates, *n, *n/3, *seed) {
		fmt.Println(res)
		if *verbose {
			fmt.Printf("  replica-util=%s batch-sizes=%s\n",
				fmtUtils(res.ReplicaUtil), metrics.FormatCounts(res.BatchSizes))
			for _, tu := range res.Tiers {
				fmt.Printf("  tier %-12s hits=%d (%.0f%%) promotions=%d demotions=%d resident=%.1fGB\n",
					tu.Device, tu.Hits, tu.HitRate*100, tu.Promotions, tu.Demotions,
					float64(tu.BytesResident)/1e9)
			}
		}
	}
}

// parseTiers turns "gpu-hbm:8,cpu-ram:64,nvme-ssd:0" into tier configs,
// with capacities counted in contexts of ctxBytes (0 = unbounded).
func parseTiers(s string, ctxBytes int64) ([]serve.TierConfig, error) {
	var tiers []serve.TierConfig
	for _, part := range strings.Split(s, ",") {
		name, contexts, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad tier %q: want device:contexts", part)
		}
		dev, err := device.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		nCtx, err := strconv.Atoi(strings.TrimSpace(contexts))
		if err != nil || nCtx < 0 {
			return nil, fmt.Errorf("bad tier capacity %q: want a context count ≥ 0", contexts)
		}
		tiers = append(tiers, serve.TierConfig{Device: dev, Capacity: int64(nCtx) * ctxBytes})
	}
	for i, tc := range tiers[:len(tiers)-1] {
		if tc.Capacity == 0 {
			return nil, fmt.Errorf("tier %d (%s): capacity 0 (unbounded) is only allowed on the bottom tier", i, tc.Device.Name)
		}
	}
	return tiers, nil
}

func fmtUtils(utils []float64) string {
	parts := make([]string, len(utils))
	for i, u := range utils {
		parts[i] = fmt.Sprintf("%.0f%%", u*100)
	}
	return strings.Join(parts, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cacheblend-serve:", err)
	os.Exit(1)
}
