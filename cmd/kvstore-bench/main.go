// Command kvstore-bench exercises the KV cache store: hit rates under a
// Zipf-skewed chunk workload at several capacities, LRU versus FIFO
// eviction, and the simulated loading delay per storage tier.
//
// Usage:
//
//	kvstore-bench -ops 200000 -pool 5000
package main

import (
	"flag"
	"fmt"

	"repro/internal/chunk"
	"repro/internal/device"
	"repro/internal/kvstore"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/timing"
)

func main() {
	var (
		ops  = flag.Int("ops", 100000, "lookups to simulate")
		pool = flag.Int("pool", 5000, "distinct chunks")
		skew = flag.Float64("skew", 0.8, "popularity skew")
		seed = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	spec := timing.Mistral7B
	chunkBytes := spec.KVBytes(512)
	fmt.Printf("chunk KV size: %.1f MB (Mistral-7B, 512 tokens)\n\n", float64(chunkBytes)/1e6)

	fmt.Println("hit rate by capacity and eviction policy:")
	fmt.Printf("%-12s %-8s %-8s %-10s\n", "capacity", "lru", "fifo", "evictions(lru)")
	for _, frac := range []float64{0.01, 0.05, 0.1, 0.25, 0.5} {
		capBytes := int64(float64(*pool) * frac * float64(chunkBytes))
		lruRate, lruStats := run(*ops, *pool, *skew, *seed, capBytes, kvstore.LRU, chunkBytes)
		fifoRate, _ := run(*ops, *pool, *skew, *seed, capBytes, kvstore.FIFO, chunkBytes)
		fmt.Printf("%-12s %-8.3f %-8.3f %-10d\n",
			fmt.Sprintf("%.0f%% of pool", frac*100), lruRate, fifoRate, lruStats.Evictions)
	}

	fmt.Println("\nper-tier load time for one 6-chunk context:")
	ctxBytes := 6 * chunkBytes
	for _, d := range device.Tiers() {
		fmt.Printf("%-14s %8.1f ms\n", d.Name, d.ReadTime(ctxBytes)*1000)
	}
}

func run(ops, pool int, skew float64, seed int64, capBytes int64, policy kvstore.Policy, chunkBytes int64) (float64, kvstore.Stats) {
	g := tensor.NewRNG(seed)
	s := kvstore.New(device.NVMeSSD, capBytes, policy)
	defer s.Close()
	for i := 0; i < ops; i++ {
		id := chunk.Hash("bench", []int{sim.Zipf(g, pool, skew)})
		if _, ok := s.Get(id); !ok {
			s.Put(id, kvstore.Bytes(chunkBytes)) //nolint:errcheck
		}
	}
	st := s.Stats()
	return st.HitRate(), st
}
