package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkServeReplicas/r1-8         	       3	 401234567 ns/op
BenchmarkServeSched/fifo-8          	       1	  12294749 ns/op	       128.7 p95-tbt-ms
BenchmarkServeSched/chunked-prefill-8         	       1	  13392991 ns/op	        41.75 p95-tbt-ms
BenchmarkFuse-8   	      10	 104857600 ns/op	 5242880 B/op	    1024 allocs/op
PASS
ok  	repro	2.345s
?   	repro/cmd/cacheblend	[no test files]
--- BENCH: BenchmarkOdd
    some free-form log line
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	r1 := got["BenchmarkServeReplicas/r1"]
	if r1.Iterations != 3 || r1.NsPerOp != 401234567 || r1.Metrics != nil {
		t.Fatalf("r1 parsed wrong: %+v", r1)
	}
	sched := got["BenchmarkServeSched/chunked-prefill"]
	if sched.NsPerOp != 13392991 || sched.Metrics["p95-tbt-ms"] != 41.75 {
		t.Fatalf("sched parsed wrong: %+v", sched)
	}
	fuse := got["BenchmarkFuse"]
	if fuse.BytesPerOp != 5242880 || fuse.AllocsPerOp != 1024 {
		t.Fatalf("fuse memory columns parsed wrong: %+v", fuse)
	}
	if len(fuse.Metrics) != 0 {
		t.Fatalf("memory columns should not also land in metrics: %+v", fuse.Metrics)
	}
}

func TestParseRejectsNonBenchLines(t *testing.T) {
	got, err := Parse(strings.NewReader("PASS\nok repro 1.2s\nBenchmarkBroken 3 x ns/op\nBenchmarkNoNs-8 5 12 widgets\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("accepted malformed lines: %v", got)
	}
}

func TestCompareGatesOnlyServingBenchmarks(t *testing.T) {
	base := map[string]Bench{
		"BenchmarkServeReplicas/r1":      {NsPerOp: 100},
		"BenchmarkServeTiered/hbm":       {NsPerOp: 200},
		"BenchmarkServeSched/fifo":       {NsPerOp: 300},
		"BenchmarkFuse":                  {NsPerOp: 10},
		"BenchmarkServeReplicas/retired": {NsPerOp: 50},
	}
	cur := map[string]Bench{
		"BenchmarkServeReplicas/r1": {NsPerOp: 119},  // +19%: within limit
		"BenchmarkServeTiered/hbm":  {NsPerOp: 250},  // +25%: regression
		"BenchmarkServeSched/fifo":  {NsPerOp: 150},  // improvement
		"BenchmarkFuse":             {NsPerOp: 1000}, // micro benchmark: never gates
		"BenchmarkServeSched/new":   {NsPerOp: 999},  // no baseline: skipped
	}
	got := Compare(cur, base, 0.20)
	if len(got) != 1 || !strings.Contains(got[0], "BenchmarkServeTiered/hbm") {
		t.Fatalf("want exactly the tiered regression, got %v", got)
	}
	if got := Compare(cur, base, 0.30); len(got) != 0 {
		t.Fatalf("30%% threshold should pass, got %v", got)
	}
}

func TestCompareBoundary(t *testing.T) {
	base := map[string]Bench{"BenchmarkServeSched/fifo": {NsPerOp: 100}}
	// Exactly at the limit passes; just above fails.
	if got := Compare(map[string]Bench{"BenchmarkServeSched/fifo": {NsPerOp: 120}}, base, 0.20); len(got) != 0 {
		t.Fatalf("exactly +20%% should pass, got %v", got)
	}
	if got := Compare(map[string]Bench{"BenchmarkServeSched/fifo": {NsPerOp: 121}}, base, 0.20); len(got) != 1 {
		t.Fatalf("+21%% should fail, got %v", got)
	}
	// A zero/garbage baseline entry never gates.
	if got := Compare(map[string]Bench{"BenchmarkServeSched/fifo": {NsPerOp: 121}},
		map[string]Bench{"BenchmarkServeSched/fifo": {NsPerOp: 0}}, 0.20); len(got) != 0 {
		t.Fatalf("zero baseline should be skipped, got %v", got)
	}
}

func TestCompareGatesAllocations(t *testing.T) {
	base := map[string]Bench{
		"BenchmarkServeHotPath":     {NsPerOp: 100, AllocsPerOp: 1000},
		"BenchmarkServeReplicas/r1": {NsPerOp: 100}, // pre--benchmem baseline: no alloc data
	}
	// Alloc regression alone fails even with ns/op flat.
	got := Compare(map[string]Bench{
		"BenchmarkServeHotPath":     {NsPerOp: 100, AllocsPerOp: 1300},
		"BenchmarkServeReplicas/r1": {NsPerOp: 100, AllocsPerOp: 999999},
	}, base, 0.20)
	if len(got) != 1 || !strings.Contains(got[0], "allocs/op") ||
		!strings.Contains(got[0], "BenchmarkServeHotPath") {
		t.Fatalf("want exactly the hot-path alloc regression, got %v", got)
	}
	// A baseline without alloc data gates on time alone; fewer allocs pass.
	got = Compare(map[string]Bench{
		"BenchmarkServeHotPath":     {NsPerOp: 100, AllocsPerOp: 500},
		"BenchmarkServeReplicas/r1": {NsPerOp: 90, AllocsPerOp: 42},
	}, base, 0.20)
	if len(got) != 0 {
		t.Fatalf("improvements should pass, got %v", got)
	}
	// One benchmark can regress both ways at once.
	got = Compare(map[string]Bench{
		"BenchmarkServeHotPath": {NsPerOp: 200, AllocsPerOp: 2000},
	}, base, 0.20)
	if len(got) != 2 {
		t.Fatalf("want ns/op and allocs/op regressions, got %v", got)
	}
}

func TestMarkdownTable(t *testing.T) {
	base := map[string]Bench{
		"BenchmarkServeSched/fifo":  {NsPerOp: 100, AllocsPerOp: 1000},
		"BenchmarkServeTiered/hbm":  {NsPerOp: 200},
		"BenchmarkServeReplicas/r1": {NsPerOp: 50},
	}
	cur := map[string]Bench{
		"BenchmarkServeSched/fifo": {NsPerOp: 150, AllocsPerOp: 1100}, // +50% ns: past limit
		"BenchmarkServeTiered/hbm": {NsPerOp: 190},                    // improvement
		"BenchmarkServeSched/new":  {NsPerOp: 999},                    // no baseline
		"BenchmarkFuse":            {NsPerOp: 10},                     // micro: excluded
	}
	md := Markdown(cur, base, "benchdata/BENCH_pr9.json", 0.20)
	if !strings.Contains(md, "benchdata/BENCH_pr9.json") || !strings.Contains(md, "limit +20%") {
		t.Fatalf("header missing baseline or threshold:\n%s", md)
	}
	if !strings.Contains(md, "| `BenchmarkServeSched/fifo` | 100 | 150 | **+50.0%** | 1000 | 1100 | +10.0% |") {
		t.Fatalf("fifo row wrong (regression must be bolded):\n%s", md)
	}
	if !strings.Contains(md, "| `BenchmarkServeTiered/hbm` | 200 | 190 | -5.0% | – | – | – |") {
		t.Fatalf("hbm row wrong (no alloc data must render as dashes):\n%s", md)
	}
	if !strings.Contains(md, "| `BenchmarkServeSched/new` | – | 999 | new |") {
		t.Fatalf("baseline-less benchmark must render as new:\n%s", md)
	}
	if strings.Contains(md, "BenchmarkFuse") {
		t.Fatalf("micro benchmark leaked into the gated table:\n%s", md)
	}
	// Retired benchmarks (baseline-only) don't get rows: the table is the
	// current run's gated set.
	if strings.Contains(md, "BenchmarkServeReplicas/r1") {
		t.Fatalf("retired benchmark leaked into the table:\n%s", md)
	}
}
