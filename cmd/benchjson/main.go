// Command benchjson parses `go test -bench` text output from stdin into
// a stable JSON document on stdout, so CI can upload the per-benchmark
// numbers as an artifact (BENCH_pr.json) instead of discarding them in
// the job log. One entry per benchmark, keyed by its full sub-benchmark
// name with the -cpu suffix stripped:
//
//	{
//	  "BenchmarkServeSched/chunked-prefill": {
//	    "iterations": 1,
//	    "ns_per_op": 13392991,
//	    "metrics": {"p95-tbt-ms": 41.75}
//	  }
//	}
//
// Non-benchmark lines (pass/fail, package headers, cpu banner) are
// ignored, so the raw `go test` stream pipes straight in:
//
//	go test -run=NONE -bench=. -benchtime=1x ./... | benchjson > BENCH_pr.json
//
// With -compare the parsed run is additionally checked against a previous
// PR's committed JSON, and the process exits 1 when a gated serving
// benchmark (ServeHotPath, ServeReplicas, ServeTiered, ServeSched,
// ServeRouted, ServeFailover) regressed
// beyond the threshold in ns/op or (when the baseline carries -benchmem
// data) allocs/op — the in-repo bench trajectory doubles as a CI
// regression gate:
//
//	go test -run=NONE -bench=. -benchtime=1x ./... | benchjson -compare benchdata/BENCH_pr5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	// Iterations is b.N, the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline nanoseconds per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the -benchmem memory columns,
	// promoted out of Metrics so the allocation trajectory is a
	// first-class field. Zero (and omitted from the JSON) when the run
	// lacked -benchmem — older committed baselines stay loadable, they
	// just don't gate allocations.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds the remaining value/unit pairs: any b.ReportMetric
	// custom units (absent when the line has none).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// gatedPrefixes names the serving benchmarks the -compare mode fails on:
// the macro benchmarks whose ns/op is dominated by simulated-cluster work
// rather than harness noise. Micro benchmarks still land in the JSON for
// the trajectory, they just don't gate.
var gatedPrefixes = []string{
	"BenchmarkServeHotPath",
	"BenchmarkServeReplicas",
	"BenchmarkServeTiered",
	"BenchmarkServeSched",
	"BenchmarkServeRouted",
	"BenchmarkServeFailover",
}

func main() {
	comparePath := flag.String("compare", "", "baseline BENCH_pr JSON to compare gated benchmarks against (exit 1 on regression)")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional ns/op growth for gated benchmarks")
	markdownPath := flag.String("markdown", "", "append the gated-benchmark comparison as a markdown table to this file (requires -compare); pass $GITHUB_STEP_SUMMARY to surface it on the CI run page")
	flag.Parse()
	if *markdownPath != "" && *comparePath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -markdown renders the comparison table and needs -compare")
		os.Exit(1)
	}
	out, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(out, "", "  ") // map keys marshal sorted
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(blob))
	if *comparePath == "" {
		return
	}
	base, err := loadBaseline(*comparePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	regressions := Compare(out, base, *threshold)
	// The summary table is written before the regression exit so a failed
	// gate still shows its numbers on the run page.
	if *markdownPath != "" {
		md := Markdown(out, base, *comparePath, *threshold)
		f, err := os.OpenFile(*markdownPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if _, err := f.WriteString(md); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		f.Close()
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d gated benchmark(s) regressed past %.0f%% vs %s\n",
			len(regressions), *threshold*100, *comparePath)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: gated benchmarks within %.0f%% of %s\n", *threshold*100, *comparePath)
}

func loadBaseline(path string) (map[string]Bench, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base map[string]Bench
	if err := json.Unmarshal(blob, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return base, nil
}

// Compare reports every gated benchmark whose current ns/op — or, when
// both sides carry -benchmem data, allocs/op — exceeds the baseline by
// more than threshold. Benchmarks absent from either side are skipped —
// new benchmarks gate from the next PR's baseline on, retired ones stop
// gating — so the checked-in trajectory never blocks adding or removing
// benchmarks, and a baseline recorded before -benchmem was wired in
// gates on time alone.
func Compare(cur, base map[string]Bench, threshold float64) []string {
	var out []string
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !gated(name) {
			continue
		}
		old, ok := base[name]
		if !ok || old.NsPerOp <= 0 {
			continue
		}
		now := cur[name]
		if now.NsPerOp > old.NsPerOp*(1+threshold) {
			out = append(out, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.0f%%, limit +%.0f%%)",
				name, now.NsPerOp, old.NsPerOp, (now.NsPerOp/old.NsPerOp-1)*100, threshold*100))
		}
		if old.AllocsPerOp > 0 && now.AllocsPerOp > old.AllocsPerOp*(1+threshold) {
			out = append(out, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (+%.0f%%, limit +%.0f%%)",
				name, now.AllocsPerOp, old.AllocsPerOp, (now.AllocsPerOp/old.AllocsPerOp-1)*100, threshold*100))
		}
	}
	return out
}

// Markdown renders the gated benchmarks as a GitHub-flavoured table —
// baseline vs current ns/op and allocs/op with the growth percentage,
// deltas past the threshold bolded — for the CI step summary. Benchmarks
// without a baseline entry show "new"; baselines recorded before
// -benchmem show "–" in the allocation columns.
func Markdown(cur, base map[string]Bench, baseName string, threshold float64) string {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if gated(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "### Gated serving benchmarks vs `%s` (limit +%.0f%%)\n\n", baseName, threshold*100)
	b.WriteString("| benchmark | ns/op (base) | ns/op | Δ | allocs/op (base) | allocs/op | Δ |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|\n")
	delta := func(now, old float64) string {
		if now <= 0 {
			return "–"
		}
		if old <= 0 {
			return "new"
		}
		pct := (now/old - 1) * 100
		s := fmt.Sprintf("%+.1f%%", pct)
		if now > old*(1+threshold) {
			return "**" + s + "**"
		}
		return s
	}
	val := func(v float64) string {
		if v <= 0 {
			return "–"
		}
		return fmt.Sprintf("%.0f", v)
	}
	for _, name := range names {
		now, old := cur[name], base[name]
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s | %s | %s |\n",
			name, val(old.NsPerOp), val(now.NsPerOp), delta(now.NsPerOp, old.NsPerOp),
			val(old.AllocsPerOp), val(now.AllocsPerOp), delta(now.AllocsPerOp, old.AllocsPerOp))
	}
	b.WriteString("\n")
	return b.String()
}

func gated(name string) bool {
	for _, p := range gatedPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// Parse extracts every benchmark result line from r. A duplicate name
// (the same benchmark run in several packages, or -count > 1) keeps the
// last occurrence.
func Parse(r io.Reader) (map[string]Bench, error) {
	out := map[string]Bench{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, b, ok := parseLine(sc.Text())
		if ok {
			out[name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine parses one `BenchmarkName-8  N  V ns/op  [V unit]...` line;
// ok is false for anything that isn't a benchmark result.
func parseLine(line string) (string, Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Bench{}, false
	}
	name := fields[0]
	// Strip the GOMAXPROCS suffix (Benchmark/sub-8 → Benchmark/sub) so
	// keys compare across runner shapes.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Bench{}, false
	}
	b := Bench{Iterations: iters}
	seenNs := false
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Bench{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
			continue
		case "B/op":
			b.BytesPerOp = v
			continue
		case "allocs/op":
			b.AllocsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[fields[i+1]] = v
	}
	if !seenNs {
		return "", Bench{}, false
	}
	return name, b, true
}
